#include "bwt/prefix_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bwt/fm_index.h"
#include "bwt/serialize.h"
#include "obs/metrics.h"
#include "search/algorithm_a.h"
#include "search/kerror_search.h"
#include "search/stree_search.h"
#include "search/tau_heuristic.h"
#include "test_util.h"
#include "util/random.h"

namespace bwtk {
namespace {

using ::bwtk::testing::Codes;
using ::bwtk::testing::PeriodicDna;
using ::bwtk::testing::RandomDna;
using ::bwtk::testing::SampleWithFlips;

FmIndex BuildIndex(const std::vector<DnaCode>& text, uint32_t prefix_q,
                   OccTable::RankKernel kernel = OccTable::RankKernel::kAuto) {
  FmIndex::Options options;
  options.prefix_table_q = prefix_q;
  options.rank_kernel = kernel;
  auto built = FmIndex::Build(text, options);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

// Every q-gram's table entry must equal what q Extend steps produce —
// including the all-zero entries of absent q-grams (Lookup returns false
// exactly when the stepped range is empty).
TEST(PrefixTableTest, ExhaustiveQ3AgreesWithStepping) {
  Rng rng(71);
  const auto text = PeriodicDna(700, 13, 0.25, &rng);
  const auto index = BuildIndex(text, 3);
  ASSERT_NE(index.prefix_table(), nullptr);
  const PrefixIntervalTable& table = *index.prefix_table();
  std::array<DnaCode, 3> gram;
  for (uint64_t key = 0; key < PrefixIntervalTable::KeyCount(3); ++key) {
    for (uint32_t i = 0; i < 3; ++i) {
      gram[i] = static_cast<DnaCode>((key >> (2 * (2 - i))) & 3);
    }
    ASSERT_EQ(PrefixIntervalTable::PackKey(gram.data(), 3), key);
    FmIndex::Range stepped = index.WholeRange();
    for (const DnaCode c : gram) stepped = index.Extend(stepped, c);
    SaIndex lo = 0;
    SaIndex hi = 0;
    const bool hit = table.Lookup(key, &lo, &hi);
    EXPECT_EQ(hit, !stepped.empty()) << "key " << key;
    if (hit) {
      EXPECT_EQ(lo, stepped.lo) << "key " << key;
      EXPECT_EQ(hi, stepped.hi) << "key " << key;
    }
  }
}

TEST(PrefixTableTest, VariantEnumerationIsCompleteAndOrdered) {
  Rng rng(72);
  const auto index = BuildIndex(RandomDna(300, &rng), 5);
  const auto gram = Codes("acgta");
  for (int32_t budget = 0; budget <= 2; ++budget) {
    size_t count = 0;
    size_t exact = 0;
    index.prefix_table()->ForEachVariant(
        gram.data(), budget, [&](const PrefixIntervalTable::Variant& v) {
          ++count;
          EXPECT_LE(v.mismatches, budget);
          if (v.mismatches == 0) {
            ++exact;
            EXPECT_EQ(v.key, PrefixIntervalTable::PackKey(gram.data(), 5));
          }
          // Substitutions are reported in position order.
          for (int32_t s = 1; s < v.mismatches; ++s) {
            EXPECT_LT(v.subs[s - 1].first, v.subs[s].first);
          }
        });
    // sum_{j<=budget} C(5,j) * 3^j.
    const size_t expected[] = {1, 1 + 15, 1 + 15 + 90};
    EXPECT_EQ(count, expected[budget]);
    EXPECT_EQ(exact, 1u);
  }
}

TEST(PrefixTableTest, BuildRejectsOversizedQ) {
  FmIndex::Options options;
  options.prefix_table_q = PrefixIntervalTable::kMaxQ + 1;
  const auto built = FmIndex::Build(Codes("acgtacgt"), options);
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

TEST(PrefixTableTest, ExplicitAvx2KernelRejectedWhenUnavailable) {
  if (OccTable::Avx2Available()) GTEST_SKIP() << "host supports AVX2";
  FmIndex::Options options;
  options.rank_kernel = OccTable::RankKernel::kAvx2;
  EXPECT_EQ(FmIndex::Build(Codes("acgtacgt"), options).status().code(),
            StatusCode::kInvalidArgument);
}

// The acceptance-criteria identity test: 1k random reads, k in {0..5},
// q = 0 vs q = 12 must produce byte-identical match sets from both engines,
// on the portable kernel and (when the host has it) the AVX2 kernel.
TEST(PrefixTableTest, RandomizedIdentityQ12VsQ0BothKernels) {
  Rng rng(4242);
  const auto text = PeriodicDna(16384, 257, 0.12, &rng);

  // Reads: mostly planted with flips (so matches exist), some uniform noise.
  constexpr int kReads = 1000;
  std::vector<std::vector<DnaCode>> reads;
  std::vector<int32_t> budgets;
  reads.reserve(kReads);
  for (int i = 0; i < kReads; ++i) {
    const int32_t k = i % 6;
    const size_t len = 20 + rng.NextBounded(9);  // 20..28
    if (i % 5 == 4) {
      reads.push_back(RandomDna(len, &rng));
    } else {
      const size_t pos = rng.NextBounded(text.size() - len);
      reads.push_back(SampleWithFlips(text, pos, len, k, &rng));
    }
    budgets.push_back(k);
  }

  // Reference: q = 0 on the explicit portable kernel.
  const auto reference = BuildIndex(text, 0, OccTable::RankKernel::kWord64);
  const STreeSearch ref_stree(&reference);
  const AlgorithmA ref_alg(&reference);
  std::vector<std::vector<Occurrence>> want_stree(kReads);
  std::vector<std::vector<Occurrence>> want_alg(kReads);
  for (int i = 0; i < kReads; ++i) {
    want_stree[i] = ref_stree.Search(reads[i], budgets[i]);
    want_alg[i] = ref_alg.Search(reads[i], budgets[i]);
    ASSERT_EQ(want_stree[i], want_alg[i]) << "read " << i;
  }

  std::vector<OccTable::RankKernel> kernels = {OccTable::RankKernel::kWord64};
  if (OccTable::Avx2Available()) {
    kernels.push_back(OccTable::RankKernel::kAvx2);
  }
  for (const OccTable::RankKernel kernel : kernels) {
    const auto index = BuildIndex(text, 12, kernel);
    ASSERT_EQ(index.prefix_table_q(), 12u);
    const STreeSearch stree(&index);
    const AlgorithmA alg(&index);
    for (int i = 0; i < kReads; ++i) {
      EXPECT_EQ(stree.Search(reads[i], budgets[i]), want_stree[i])
          << "stree read " << i << " kernel "
          << OccTable::KernelName(kernel);
      EXPECT_EQ(alg.Search(reads[i], budgets[i]), want_alg[i])
          << "algorithm_a read " << i << " kernel "
          << OccTable::KernelName(kernel);
    }
  }
}

TEST(PrefixTableTest, KErrorSearchIdentityAtKZero) {
  Rng rng(77);
  const auto text = PeriodicDna(4096, 33, 0.2, &rng);
  const auto plain = BuildIndex(text, 0);
  const auto tabled = BuildIndex(text, 6);
  const KErrorSearch plain_search(&plain);
  const KErrorSearch tabled_search(&tabled);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t len = 8 + rng.NextBounded(12);
    std::vector<DnaCode> pattern;
    if (trial % 3 == 0) {
      pattern = RandomDna(len, &rng);
    } else {
      const size_t pos = rng.NextBounded(text.size() - len);
      pattern.assign(text.begin() + pos, text.begin() + pos + len);
    }
    EXPECT_EQ(tabled_search.Search(pattern, 0), plain_search.Search(pattern, 0))
        << "trial " << trial;
    // k >= 1 must ignore the table (the shortcut is only sound at k == 0);
    // results still identical because that path never engages.
    EXPECT_EQ(tabled_search.Search(pattern, 1), plain_search.Search(pattern, 1))
        << "trial " << trial;
  }
}

TEST(PrefixTableTest, ComputeTauIdentity) {
  Rng rng(78);
  const auto text = PeriodicDna(8192, 65, 0.15, &rng);
  const auto plain = BuildIndex(text, 0);
  const auto tabled = BuildIndex(text, 7);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t len = 5 + rng.NextBounded(60);  // straddles q = 7
    const size_t pos = rng.NextBounded(text.size() - len);
    std::vector<DnaCode> pattern(text.begin() + pos, text.begin() + pos + len);
    for (size_t f = 0; f < len / 10; ++f) {
      const size_t where = rng.NextBounded(len);
      pattern[where] = static_cast<DnaCode>((pattern[where] + 1) & 3);
    }
    EXPECT_EQ(ComputeTau(tabled, pattern), ComputeTau(plain, pattern))
        << "trial " << trial;
  }
}

TEST(PrefixTableTest, MatchForwardUsesTableAndCountsHits) {
  Rng rng(79);
  const auto text = PeriodicDna(2048, 19, 0.2, &rng);
  const auto index = BuildIndex(text, 8);
  const auto plain = BuildIndex(text, 0);
  const std::vector<DnaCode> present(text.begin(), text.begin() + 30);
  const auto expected_range = plain.MatchForward(present);
  const auto before = obs::MetricsRegistry::Instance().Snapshot();
  EXPECT_EQ(index.MatchForward(present), expected_range);
  const auto delta =
      obs::Diff(obs::MetricsRegistry::Instance().Snapshot(), before);
  EXPECT_EQ(delta.counters[obs::kCounterPrefixTableHits], 1u);
  EXPECT_EQ(delta.counters[obs::kCounterPrefixTableSkippedSteps], 8u);
  // The skipped steps must be missing from the extend tally.
  EXPECT_EQ(delta.counters[obs::kCounterExtendCalls], present.size() - 8);

  // A read whose q-prefix is absent falls back to stepping from scratch and
  // returns the byte-identical (empty) range.
  std::vector<DnaCode> absent = present;
  for (size_t i = 0; i < 8; ++i) {
    // Perturb inside the prefix until it is genuinely absent.
    absent[i] = static_cast<DnaCode>((absent[i] + 1 + rng.NextBounded(3)) & 3);
  }
  if (plain.CountOccurrences(absent) == 0) {
    EXPECT_EQ(index.MatchForward(absent), plain.MatchForward(absent));
  }
}

TEST(PrefixTableTest, SerializationRoundTripWithoutTable) {
  Rng rng(80);
  const auto text = RandomDna(600, &rng);
  const auto index = BuildIndex(text, 0);
  std::stringstream buffer;
  ASSERT_TRUE(index.Save(buffer).ok());
  const auto loaded = FmIndex::Load(buffer).value();
  EXPECT_EQ(loaded.prefix_table(), nullptr);
  EXPECT_EQ(loaded.prefix_table_q(), 0u);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t len = 1 + rng.NextBounded(10);
    const size_t pos = rng.NextBounded(text.size() - len);
    const std::vector<DnaCode> pattern(text.begin() + pos,
                                       text.begin() + pos + len);
    EXPECT_EQ(loaded.CountOccurrences(pattern),
              index.CountOccurrences(pattern));
  }
}

TEST(PrefixTableTest, SerializationRoundTripWithTable) {
  Rng rng(81);
  const auto text = PeriodicDna(900, 17, 0.2, &rng);
  const auto index = BuildIndex(text, 4);
  std::stringstream buffer;
  ASSERT_TRUE(index.Save(buffer).ok());
  const auto loaded = FmIndex::Load(buffer).value();
  ASSERT_NE(loaded.prefix_table(), nullptr);
  EXPECT_EQ(loaded.prefix_table_q(), 4u);
  EXPECT_EQ(loaded.options().prefix_table_q, 4u);
  EXPECT_EQ(loaded.prefix_table()->entries(),
            index.prefix_table()->entries());
  const STreeSearch original_search(&index);
  const STreeSearch loaded_search(&loaded);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t len = 6 + rng.NextBounded(12);
    const size_t pos = rng.NextBounded(text.size() - len);
    const auto pattern = SampleWithFlips(text, pos, len, 1, &rng);
    EXPECT_EQ(loaded_search.Search(pattern, 1),
              original_search.Search(pattern, 1));
  }
}

TEST(PrefixTableTest, LoadRejectsFutureVersion) {
  const auto index = BuildIndex(Codes("acgtacgtacgtacgt"), 0);
  std::stringstream buffer;
  ASSERT_TRUE(index.Save(buffer).ok());
  std::string bytes = buffer.str();
  // Version field sits right after the 4-byte magic.
  const uint32_t future = FmIndexFormat::kVersion + 1;
  std::memcpy(bytes.data() + 4, &future, sizeof(future));
  std::stringstream patched(bytes);
  const auto status = FmIndex::Load(patched).status();
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("version"), std::string::npos);
}

TEST(PrefixTableTest, LoadsVersion1FilesWithoutTable) {
  const auto text = Codes("acgtacgtacgtacgtacgtacgt");
  const auto index = BuildIndex(text, 0);
  std::stringstream buffer;
  ASSERT_TRUE(index.Save(buffer).ok());
  std::string bytes = buffer.str();
  // A v1 file is a v2 q=0 file minus the 4-byte prefix-q field (which sits
  // just before the trailing 8-byte checksum), with the version patched
  // down. The checksum covers only the BWT words, so it stays valid.
  ASSERT_GE(bytes.size(), 12u);
  bytes.erase(bytes.size() - 12, 4);
  const uint32_t v1 = 1;
  std::memcpy(bytes.data() + 4, &v1, sizeof(v1));
  std::stringstream v1_stream(bytes);
  const auto loaded = FmIndex::Load(v1_stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().prefix_table(), nullptr);
  EXPECT_EQ(loaded.value().CountOccurrences(Codes("acgt")),
            index.CountOccurrences(Codes("acgt")));
}

TEST(PrefixTableTest, LoadRejectsTruncationInsideTableEntries) {
  Rng rng(82);
  const auto index = BuildIndex(RandomDna(500, &rng), 4);
  std::stringstream buffer;
  ASSERT_TRUE(index.Save(buffer).ok());
  const std::string full = buffer.str();
  // Cut inside the 4^4-entry table payload (2 KiB before the end removes
  // the checksum and a chunk of entries).
  std::stringstream truncated(full.substr(0, full.size() - 600));
  const auto status = FmIndex::Load(truncated).status();
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("truncated"), std::string::npos);
}

TEST(PrefixTableTest, FromPartsValidatesGeometry) {
  EXPECT_EQ(PrefixIntervalTable::FromParts(3, std::vector<uint64_t>(63))
                .status()
                .code(),
            StatusCode::kCorruption);
  EXPECT_EQ(PrefixIntervalTable::FromParts(0, {}).status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(PrefixIntervalTable::FromParts(PrefixIntervalTable::kMaxQ + 1,
                                           std::vector<uint64_t>(4))
                .status()
                .code(),
            StatusCode::kCorruption);
  EXPECT_TRUE(
      PrefixIntervalTable::FromParts(3, std::vector<uint64_t>(64)).ok());
}

// Patterns shorter than q cannot use the table but must still work.
TEST(PrefixTableTest, ShortPatternsBypassTable) {
  Rng rng(83);
  const auto text = PeriodicDna(2000, 23, 0.2, &rng);
  const auto plain = BuildIndex(text, 0);
  const auto tabled = BuildIndex(text, 10);
  const STreeSearch plain_search(&plain);
  const STreeSearch tabled_search(&tabled);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t len = 1 + rng.NextBounded(9);  // always < q = 10
    const size_t pos = rng.NextBounded(text.size() - len);
    const std::vector<DnaCode> pattern(text.begin() + pos,
                                       text.begin() + pos + len);
    for (int32_t k = 0; k <= 2; ++k) {
      EXPECT_EQ(tabled_search.Search(pattern, k),
                plain_search.Search(pattern, k));
    }
    EXPECT_EQ(tabled.MatchForward(pattern), plain.MatchForward(pattern));
  }
}

// Budgets beyond kMaxSeedMismatches must fall back to the stepped walk
// (covered implicitly by the randomized test, asserted directly here).
TEST(PrefixTableTest, LargeBudgetFallsBackToRootEnumeration) {
  Rng rng(84);
  const auto text = PeriodicDna(4096, 41, 0.15, &rng);
  const auto plain = BuildIndex(text, 0);
  const auto tabled = BuildIndex(text, 6);
  const STreeSearch plain_search(&plain);
  const STreeSearch tabled_search(&tabled);
  const AlgorithmA plain_alg(&plain);
  const AlgorithmA tabled_alg(&tabled);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t len = 18 + rng.NextBounded(8);
    const size_t pos = rng.NextBounded(text.size() - len);
    const auto pattern = SampleWithFlips(text, pos, len, 4, &rng);
    const int32_t k = PrefixIntervalTable::kMaxSeedMismatches + 1 +
                      static_cast<int32_t>(rng.NextBounded(2));
    EXPECT_EQ(tabled_search.Search(pattern, k), plain_search.Search(pattern, k));
    EXPECT_EQ(tabled_alg.Search(pattern, k), plain_alg.Search(pattern, k));
  }
}

}  // namespace
}  // namespace bwtk
