#include <gtest/gtest.h>

#include "alphabet/dna.h"
#include "alphabet/packed_sequence.h"
#include "test_util.h"
#include "util/random.h"

namespace bwtk {
namespace {

using ::bwtk::testing::Codes;
using ::bwtk::testing::RandomDna;

TEST(DnaTest, CharCodeRoundTrip) {
  const std::string chars = "acgt";
  for (size_t i = 0; i < chars.size(); ++i) {
    EXPECT_EQ(CharToCode(chars[i]), static_cast<DnaCode>(i));
    EXPECT_EQ(CodeToChar(static_cast<DnaCode>(i)), chars[i]);
    EXPECT_TRUE(IsDnaChar(chars[i]));
  }
}

TEST(DnaTest, UppercaseAccepted) {
  EXPECT_EQ(CharToCode('A'), CharToCode('a'));
  EXPECT_EQ(CharToCode('T'), CharToCode('t'));
  EXPECT_TRUE(IsDnaChar('G'));
}

TEST(DnaTest, NonDnaRejected) {
  EXPECT_FALSE(IsDnaChar('n'));
  EXPECT_FALSE(IsDnaChar('$'));
  EXPECT_FALSE(IsDnaChar(' '));
  EXPECT_FALSE(IsDnaChar('\0'));
}

TEST(DnaTest, EncodeValidatesInput) {
  auto good = EncodeDna("acgtACGT");
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->size(), 8u);
  auto bad = EncodeDna("acgnt");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("offset 3"), std::string::npos);
}

TEST(DnaTest, DecodeInvertsEncode) {
  const std::string text = "gattacagattaca";
  EXPECT_EQ(DecodeDna(EncodeDna(text).value()), text);
}

TEST(DnaTest, ComplementPairs) {
  EXPECT_EQ(ComplementCode(CharToCode('a')), CharToCode('t'));
  EXPECT_EQ(ComplementCode(CharToCode('c')), CharToCode('g'));
  EXPECT_EQ(ComplementCode(CharToCode('g')), CharToCode('c'));
  EXPECT_EQ(ComplementCode(CharToCode('t')), CharToCode('a'));
}

TEST(DnaTest, ReverseComplement) {
  EXPECT_EQ(DecodeDna(ReverseComplement(Codes("aacgt"))), "acgtt");
  // Involution: rc(rc(x)) == x.
  Rng rng(3);
  const auto random = RandomDna(257, &rng);
  EXPECT_EQ(ReverseComplement(ReverseComplement(random)), random);
}

TEST(PackedSequenceTest, EmptySequence) {
  PackedSequence seq;
  EXPECT_TRUE(seq.empty());
  EXPECT_EQ(seq.size(), 0u);
  EXPECT_TRUE(seq.Unpack().empty());
}

TEST(PackedSequenceTest, RoundTripsRandomContent) {
  Rng rng(17);
  for (const size_t length : {1u, 31u, 32u, 33u, 64u, 1000u}) {
    const auto codes = RandomDna(length, &rng);
    const PackedSequence seq(codes);
    ASSERT_EQ(seq.size(), length);
    EXPECT_EQ(seq.Unpack(), codes);
    for (size_t i = 0; i < length; ++i) EXPECT_EQ(seq.at(i), codes[i]);
  }
}

TEST(PackedSequenceTest, PushBackMatchesBulkBuild) {
  Rng rng(19);
  const auto codes = RandomDna(100, &rng);
  PackedSequence incremental;
  for (const DnaCode c : codes) incremental.push_back(c);
  EXPECT_EQ(incremental.Unpack(), codes);
  EXPECT_EQ(incremental.size(), codes.size());
}

TEST(PackedSequenceTest, SetOverwrites) {
  PackedSequence seq(Codes("aaaaaaaa"));
  seq.set(3, CharToCode('t'));
  seq.set(0, CharToCode('g'));
  EXPECT_EQ(seq.ToString(), "gaataaaa");
}

TEST(PackedSequenceTest, SliceClampsAndExtracts) {
  const PackedSequence seq(Codes("acgtacgt"));
  EXPECT_EQ(DecodeDna(seq.Slice(2, 3)), "gta");
  EXPECT_EQ(DecodeDna(seq.Slice(6, 100)), "gt");  // clamped
  EXPECT_TRUE(seq.Slice(8, 1).empty());
  EXPECT_TRUE(seq.Slice(100, 1).empty());
}

TEST(PackedSequenceTest, WordAdoptionConstructor) {
  const auto codes = Codes("acgtacgtacgt");
  const PackedSequence original(codes);
  const PackedSequence adopted(original.words(), codes.size());
  EXPECT_EQ(adopted.Unpack(), codes);
}

TEST(PackedSequenceTest, ToStringMatchesDecode) {
  Rng rng(23);
  const auto codes = RandomDna(77, &rng);
  EXPECT_EQ(PackedSequence(codes).ToString(), DecodeDna(codes));
}

}  // namespace
}  // namespace bwtk
