#include <gtest/gtest.h>

#include "baselines/naive_search.h"
#include "bwt/fm_index.h"
#include "search/stree_search.h"
#include "search/tau_heuristic.h"
#include "test_util.h"
#include "util/random.h"

namespace bwtk {
namespace {

using ::bwtk::testing::Codes;
using ::bwtk::testing::PeriodicDna;
using ::bwtk::testing::RandomDna;
using ::bwtk::testing::SampleWithFlips;

TEST(TauHeuristicTest, PaperExample) {
  // Section IV.A: s = acagaca, r = tcaca. τ(1) = 2 ("both r[1..1] = t and
  // r[2..4] = cac do not occur in s") and τ(3) = 0 (1-based); our vector is
  // 0-based, so tau[0] == 2 and tau[2] == 0.
  const auto index = FmIndex::Build(Codes("acagaca")).value();
  const auto tau = ComputeTau(index, Codes("tcaca"));
  ASSERT_EQ(tau.size(), 6u);
  EXPECT_EQ(tau[0], 2);
  EXPECT_EQ(tau[2], 0);
  EXPECT_EQ(tau[5], 0);  // empty suffix
}

TEST(TauHeuristicTest, FullyPresentPatternGivesZeros) {
  const auto index = FmIndex::Build(Codes("acagaca")).value();
  const auto tau = ComputeTau(index, Codes("acag"));
  for (const int32_t t : tau) EXPECT_EQ(t, 0);
}

TEST(TauHeuristicTest, IsALowerBoundOnMismatches) {
  // Against every window of s, the Hamming distance of r[i..] must be at
  // least tau[i] — the property that makes the pruning safe.
  Rng rng(21);
  const auto text = RandomDna(500, &rng);
  const auto index = FmIndex::Build(text).value();
  const auto pattern = RandomDna(24, &rng);
  const auto tau = ComputeTau(index, pattern);
  for (size_t i = 0; i < pattern.size(); ++i) {
    const size_t suffix_len = pattern.size() - i;
    int32_t best = static_cast<int32_t>(suffix_len);
    for (size_t pos = 0; pos + suffix_len <= text.size(); ++pos) {
      int32_t distance = 0;
      for (size_t t = 0; t < suffix_len; ++t) {
        distance += text[pos + t] != pattern[i + t];
      }
      best = std::min(best, distance);
    }
    EXPECT_GE(best, tau[i]) << "suffix " << i;
  }
}

TEST(STreeSearchTest, PaperWorkedExample) {
  // Section IV.A / Fig. 3: r = tcaca, s = acagaca, k = 2 -> two occurrences,
  // s[1..5] and s[3..7] (1-based), both with exactly 2 mismatches.
  const auto index = FmIndex::Build(Codes("acagaca")).value();
  const STreeSearch searcher(&index);
  const auto hits = searcher.Search(Codes("tcaca"), 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], (Occurrence{0, 2}));
  EXPECT_EQ(hits[1], (Occurrence{2, 2}));
}

TEST(STreeSearchTest, IntroductionExample) {
  // Section I: s = ccacacagaagcc, r = aaaaacaaac, k = 4 has an occurrence
  // at the third position (0-based 2).
  const auto index = FmIndex::Build(Codes("ccacacagaagcc")).value();
  const STreeSearch searcher(&index);
  const auto hits = searcher.Search(Codes("aaaaacaaac"), 4);
  bool found = false;
  for (const auto& hit : hits) found |= (hit.position == 2);
  EXPECT_TRUE(found);
}

TEST(STreeSearchTest, ExactMatchWithKZero) {
  const auto index = FmIndex::Build(Codes("acagaca")).value();
  const STreeSearch searcher(&index);
  const auto hits = searcher.Search(Codes("aca"), 0);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].position, 0u);
  EXPECT_EQ(hits[1].position, 4u);
  EXPECT_EQ(hits[0].mismatches, 0);
}

TEST(STreeSearchTest, EmptyAndOversizedPatterns) {
  const auto index = FmIndex::Build(Codes("acgt")).value();
  const STreeSearch searcher(&index);
  EXPECT_TRUE(searcher.Search({}, 2).empty());
  EXPECT_TRUE(searcher.Search(Codes("acgtacgt"), 2).empty());
}

struct SweepParam {
  int seed;
  bool use_tau;
};

class STreeRandomTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(STreeRandomTest, MatchesNaiveScanner) {
  Rng rng(1000 + GetParam().seed);
  const size_t n = 200 + rng.NextBounded(600);
  const auto text = GetParam().seed % 2 == 0
                        ? RandomDna(n, &rng)
                        : PeriodicDna(n, 8, 0.1, &rng);
  const auto index = FmIndex::Build(text).value();
  STreeOptions options;
  options.use_tau = GetParam().use_tau;
  const STreeSearch searcher(&index, options);
  const NaiveSearch oracle(&text);
  for (int trial = 0; trial < 8; ++trial) {
    const size_t m = 6 + rng.NextBounded(20);
    const int32_t k = static_cast<int32_t>(rng.NextBounded(4));
    const size_t pos = rng.NextBounded(n - m);
    const auto pattern = trial % 3 == 2
                             ? RandomDna(m, &rng)
                             : SampleWithFlips(text, pos, m, k, &rng);
    EXPECT_EQ(searcher.Search(pattern, k), oracle.Search(pattern, k))
        << "m=" << m << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, STreeRandomTest,
    ::testing::Values(SweepParam{0, true}, SweepParam{1, true},
                      SweepParam{2, false}, SweepParam{3, false},
                      SweepParam{4, true}, SweepParam{5, false},
                      SweepParam{6, true}, SweepParam{7, false}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "seed" + std::to_string(info.param.seed) +
             (info.param.use_tau ? "_tau" : "_notau");
    });

TEST(STreeSearchTest, TauPruningOnlyRemovesDeadWork) {
  // With and without τ the results must be identical, and τ must not
  // increase the number of search() calls.
  Rng rng(77);
  const auto text = RandomDna(2000, &rng);
  const auto index = FmIndex::Build(text).value();
  const STreeSearch with_tau(&index, {.use_tau = true});
  const STreeSearch without_tau(&index, {.use_tau = false});
  const auto pattern = RandomDna(18, &rng);
  SearchStats stats_with;
  SearchStats stats_without;
  EXPECT_EQ(with_tau.Search(pattern, 3, &stats_with),
            without_tau.Search(pattern, 3, &stats_without));
  EXPECT_LE(stats_with.stree_nodes, stats_without.stree_nodes);
}

TEST(STreeSearchTest, StatsAreFilled) {
  const auto index = FmIndex::Build(Codes("acagacacagacat")).value();
  const STreeSearch searcher(&index);
  SearchStats stats;
  const auto hits = searcher.Search(Codes("acaga"), 1, &stats);
  EXPECT_FALSE(hits.empty());
  EXPECT_GT(stats.stree_nodes, 0u);
  EXPECT_GT(stats.extend_calls, 0u);
  EXPECT_GT(stats.completed_paths, 0u);
}

}  // namespace
}  // namespace bwtk
