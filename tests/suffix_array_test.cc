#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "suffix/suffix_array.h"
#include "test_util.h"
#include "util/random.h"

namespace bwtk {
namespace {

using ::bwtk::testing::Codes;
using ::bwtk::testing::PeriodicDna;
using ::bwtk::testing::RandomDna;
using ::bwtk::testing::RandomDnaBiased;

// Checks structural validity: permutation of 0..n and sorted suffix order.
void ExpectValidSuffixArray(const std::vector<DnaCode>& text,
                            const std::vector<SaIndex>& sa) {
  ASSERT_EQ(sa.size(), text.size() + 1);
  std::vector<SaIndex> sorted(sa);
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i], static_cast<SaIndex>(i));
  }
  EXPECT_EQ(sa[0], static_cast<SaIndex>(text.size()));
  for (size_t i = 1; i + 1 < sa.size(); ++i) {
    // suffix(sa[i]) < suffix(sa[i+1]) lexicographically, sentinel smallest.
    // Distinct suffixes compare strictly; a proper prefix sorts first,
    // which matches the sentinel convention.
    EXPECT_TRUE(std::lexicographical_compare(
        text.begin() + sa[i], text.end(), text.begin() + sa[i + 1],
        text.end()))
        << "rank " << i;
  }
}

TEST(SuffixArrayTest, PaperExample) {
  // s = acagaca; suffixes sorted: $, a, aca$, acagaca$, agaca$, ca$,
  // cagaca$, gaca$ -> SA = 7, 6, 4, 0, 2, 5, 1, 3.
  const auto sa = BuildSuffixArrayDna(Codes("acagaca")).value();
  const std::vector<SaIndex> expected = {7, 6, 4, 0, 2, 5, 1, 3};
  EXPECT_EQ(sa, expected);
}

TEST(SuffixArrayTest, EmptyText) {
  const auto sa = BuildSuffixArrayDna({}).value();
  EXPECT_EQ(sa, std::vector<SaIndex>{0});
}

TEST(SuffixArrayTest, SingleCharacter) {
  const auto sa = BuildSuffixArrayDna(Codes("g")).value();
  const std::vector<SaIndex> expected = {1, 0};
  EXPECT_EQ(sa, expected);
}

TEST(SuffixArrayTest, AllSameCharacter) {
  const auto text = Codes("aaaaaaaaaa");
  const auto sa = BuildSuffixArrayDna(text).value();
  // Shorter suffixes sort first: n, n-1, ..., 0.
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i], static_cast<SaIndex>(text.size() - i));
  }
}

TEST(SuffixArrayTest, RejectsOutOfAlphabetSymbol) {
  EXPECT_FALSE(BuildSuffixArray({0, 1, 7}, 4).ok());
}

TEST(SuffixArrayTest, MatchesNaiveOnFixedCases) {
  for (const char* text : {"abracadabra", "mississippi", "tcacg", "acagaca",
                           "gggggggc", "ctctctctct"}) {
    // Map arbitrary letters into the DNA code space first.
    std::vector<DnaCode> codes;
    for (const char* p = text; *p; ++p) {
      codes.push_back(static_cast<DnaCode>(*p & 3));
    }
    EXPECT_EQ(BuildSuffixArrayDna(codes).value(),
              BuildSuffixArrayNaiveDna(codes))
        << text;
  }
}

class SuffixArrayRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SuffixArrayRandomTest, MatchesNaiveOnUniformRandom) {
  Rng rng(1000 + GetParam());
  const size_t length = 1 + rng.NextBounded(400);
  const auto text = RandomDna(length, &rng);
  EXPECT_EQ(BuildSuffixArrayDna(text).value(),
            BuildSuffixArrayNaiveDna(text));
}

TEST_P(SuffixArrayRandomTest, MatchesNaiveOnBinaryAlphabet) {
  Rng rng(2000 + GetParam());
  const size_t length = 1 + rng.NextBounded(300);
  const auto text = RandomDnaBiased(length, 2, &rng);
  EXPECT_EQ(BuildSuffixArrayDna(text).value(),
            BuildSuffixArrayNaiveDna(text));
}

TEST_P(SuffixArrayRandomTest, MatchesNaiveOnPeriodicText) {
  Rng rng(3000 + GetParam());
  const size_t period = 1 + rng.NextBounded(8);
  const auto text = PeriodicDna(50 + rng.NextBounded(250), period, 0.05, &rng);
  EXPECT_EQ(BuildSuffixArrayDna(text).value(),
            BuildSuffixArrayNaiveDna(text));
}

INSTANTIATE_TEST_SUITE_P(Sweep, SuffixArrayRandomTest, ::testing::Range(0, 25));

TEST(SuffixArrayTest, LargeInputIsValid) {
  Rng rng(99);
  const auto text = PeriodicDna(200000, 13, 0.02, &rng);
  const auto sa = BuildSuffixArrayDna(text).value();
  ExpectValidSuffixArray(text, sa);
}

TEST(SuffixArrayTest, InvertRoundTrips) {
  Rng rng(7);
  const auto text = RandomDna(123, &rng);
  const auto sa = BuildSuffixArrayDna(text).value();
  const auto rank = InvertSuffixArray(sa);
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(rank[sa[i]], static_cast<SaIndex>(i));
  }
}

}  // namespace
}  // namespace bwtk
