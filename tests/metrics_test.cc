// Tests for the observability subsystem: SearchStats merge algebra and JSON
// round-trip, histogram bucketing, the metrics registry (counters, phase
// timers, cross-thread aggregation), and the JSON writer/parser pair.
// The sibling TU metrics_disabled_test.cc (compiled into this binary with
// BWTK_DISABLE_METRICS) verifies the hooks compile to no-ops.

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bwtk.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace bwtk {
namespace {

using obs::BucketIndex;
using obs::BucketLowerBound;
using obs::BucketUpperBound;
using obs::Histogram;
using obs::JsonWriter;
using obs::MetricsBlock;
using obs::MetricsRegistry;

static_assert(BWTK_METRICS_ENABLED == 1,
              "this TU must be compiled with metrics enabled");

SearchStats MakeStats(uint64_t base) {
  SearchStats s;
  s.stree_nodes = base + 1;
  s.extend_calls = base + 2;
  s.completed_paths = base + 3;
  s.tau_pruned = base + 4;
  s.budget_pruned = base + 5;
  s.mtree_nodes = base + 6;
  s.mtree_leaves = base + 7;
  s.reused_nodes = base + 8;
  s.derived_runs = base + 9;
  return s;
}

SearchStats Sum(SearchStats a, const SearchStats& b) {
  a += b;
  return a;
}

TEST(SearchStatsTest, MergeIsAssociativeAndCommutative) {
  const SearchStats a = MakeStats(10);
  const SearchStats b = MakeStats(200);
  const SearchStats c = MakeStats(3000);
  EXPECT_EQ(Sum(Sum(a, b), c), Sum(a, Sum(b, c)));
  EXPECT_EQ(Sum(a, b), Sum(b, a));
  // Identity: the default-constructed stats are the neutral element.
  EXPECT_EQ(Sum(a, SearchStats{}), a);
}

TEST(SearchStatsTest, JsonRoundTrip) {
  const SearchStats stats = MakeStats(41);
  const std::string json = obs::SearchStatsToJson(stats);
  const auto parsed = obs::SearchStatsFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, stats);
}

TEST(SearchStatsTest, JsonMissingFieldsDefaultToZero) {
  const auto parsed = obs::SearchStatsFromJson("{\"mtree_leaves\": 7}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->mtree_leaves, 7u);
  EXPECT_EQ(parsed->stree_nodes, 0u);
  EXPECT_TRUE(obs::SearchStatsFromJson("{}").ok());
}

TEST(SearchStatsTest, JsonUnknownFieldFails) {
  EXPECT_FALSE(obs::SearchStatsFromJson("{\"not_a_field\": 1}").ok());
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 is exactly zero; bucket b >= 1 covers [2^(b-1), 2^b - 1].
  EXPECT_EQ(BucketIndex(0), 0u);
  EXPECT_EQ(BucketIndex(1), 1u);
  EXPECT_EQ(BucketIndex(2), 2u);
  EXPECT_EQ(BucketIndex(3), 2u);
  EXPECT_EQ(BucketIndex(4), 3u);
  for (size_t b = 1; b < obs::kHistBuckets; ++b) {
    EXPECT_EQ(BucketIndex(BucketLowerBound(b)), b) << "bucket " << b;
    EXPECT_EQ(BucketIndex(BucketUpperBound(b)), b) << "bucket " << b;
    if (b > 1) {
      EXPECT_EQ(BucketUpperBound(b - 1) + 1, BucketLowerBound(b));
    }
  }
  EXPECT_EQ(BucketUpperBound(64), ~uint64_t{0});
}

TEST(HistogramTest, ObserveCountsSumsAndBuckets) {
  Histogram h;
  for (const uint64_t v : {0ull, 1ull, 5ull, 5ull, 1024ull}) h.Observe(v);
  EXPECT_EQ(h.count, 5u);
  EXPECT_EQ(h.sum, 1035u);
  EXPECT_EQ(h.buckets[0], 1u);   // the zero
  EXPECT_EQ(h.buckets[1], 1u);   // 1
  EXPECT_EQ(h.buckets[3], 2u);   // 5 twice, in [4, 7]
  EXPECT_EQ(h.buckets[11], 1u);  // 1024, in [1024, 2047]
}

TEST(HistogramTest, MergeAndDiff) {
  Histogram a;
  Histogram b;
  a.Observe(3);
  b.Observe(3);
  b.Observe(100);
  Histogram merged = a;
  merged += b;
  EXPECT_EQ(merged.count, 3u);
  EXPECT_EQ(merged.sum, 106u);
  merged -= b;
  EXPECT_EQ(merged, a);
}

TEST(JsonWriterTest, NestedStructure) {
  JsonWriter w;
  w.BeginObject()
      .Key("a")
      .Value(uint64_t{1})
      .Key("b")
      .BeginArray()
      .Value("x")
      .Value(2.5)
      .Value(true)
      .Null()
      .EndArray()
      .Key("c")
      .BeginObject()
      .EndObject()
      .EndObject();
  EXPECT_EQ(std::move(w).TakeString(),
            "{\"a\":1,\"b\":[\"x\",2.5,true,null],\"c\":{}}");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.Value("quote\" back\\ newline\n ctrl\x01");
  EXPECT_EQ(w.str(), "\"quote\\\" back\\\\ newline\\n ctrl\\u0001\"");
}

TEST(JsonParserTest, ParsesFlatObject) {
  const auto parsed =
      obs::ParseFlatUint64Object(" { \"x\" : 12 , \"y\" : 0 } ");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0], (std::pair<std::string, uint64_t>{"x", 12}));
  EXPECT_EQ((*parsed)[1], (std::pair<std::string, uint64_t>{"y", 0}));
  EXPECT_TRUE(obs::ParseFlatUint64Object("{}")->empty());
}

TEST(JsonParserTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "{\"x\"}", "{\"x\": -1}", "{\"x\": 1.5}", "{\"x\": \"s\"}",
        "{\"x\": {}}", "{\"x\": 1} trailing", "[1]",
        "{\"x\": 99999999999999999999999}"}) {
    EXPECT_FALSE(obs::ParseFlatUint64Object(bad).ok()) << bad;
  }
}

TEST(MetricsRegistryTest, CountersTimersAndHistogramsReachSnapshot) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  const MetricsBlock before = registry.Snapshot();
  BWTK_METRIC_COUNT(kCounterMergeCalls);
  BWTK_METRIC_COUNT_N(kCounterMergeCalls, 4);
  BWTK_METRIC_COUNT2(kCounterRijBuilds, 2, kCounterRijCacheHits, 3);
  BWTK_METRIC_OBSERVE(kHistChainLength, 9);
  {
    BWTK_SCOPED_TIMER(kPhaseMerge);
  }
  const MetricsBlock delta = obs::Diff(registry.Snapshot(), before);
  EXPECT_EQ(delta.counters[obs::kCounterMergeCalls], 5u);
  EXPECT_EQ(delta.counters[obs::kCounterRijBuilds], 2u);
  EXPECT_EQ(delta.counters[obs::kCounterRijCacheHits], 3u);
  EXPECT_EQ(delta.hists[obs::kHistChainLength].count, 1u);
  EXPECT_EQ(delta.hists[obs::kHistChainLength].sum, 9u);
  EXPECT_EQ(delta.phase_calls[obs::kPhaseMerge], 1u);
}

TEST(MetricsRegistryTest, ExitedThreadsFoldIntoRetiredTotals) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  const MetricsBlock before = registry.Snapshot();
  std::thread worker([] {
    for (int i = 0; i < 1000; ++i) BWTK_METRIC_COUNT(kCounterBatchQueries);
  });
  worker.join();
  const MetricsBlock delta = obs::Diff(registry.Snapshot(), before);
  EXPECT_EQ(delta.counters[obs::kCounterBatchQueries], 1000u);
}

TEST(MetricsRegistryTest, ResetZeroesEverything) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  BWTK_METRIC_COUNT(kCounterRankCalls);
  registry.Reset();
  const MetricsBlock zeroed = registry.Snapshot();
  EXPECT_EQ(zeroed, MetricsBlock{});
}

TEST(MetricsIntegrationTest, SearchFillsRegistryAndHistograms) {
  const auto searcher =
      KMismatchSearcher::Build("acagacagatacacagacttacagaca").value();
  MetricsRegistry& registry = MetricsRegistry::Instance();
  const MetricsBlock before = registry.Snapshot();
  const auto hits = searcher.Search("acagaca", /*k=*/2).value();
  EXPECT_FALSE(hits.empty());
  const MetricsBlock delta = obs::Diff(registry.Snapshot(), before);
  EXPECT_GT(delta.counters[obs::kCounterExtendAllCalls], 0u);
  EXPECT_GT(delta.counters[obs::kCounterRankAllCalls], 0u);
  EXPECT_GT(delta.counters[obs::kCounterLocateCalls], 0u);
  EXPECT_EQ(delta.phase_calls[obs::kPhaseTreeTraversal], 1u);
  EXPECT_EQ(delta.hists[obs::kHistQueryNanos].count, 1u);
  EXPECT_EQ(delta.hists[obs::kHistHitsPerQuery].count, 1u);
  EXPECT_EQ(delta.hists[obs::kHistHitsPerQuery].sum, hits.size());
}

TEST(MetricsIntegrationTest, BatchSearchRecordsWorkerPhases) {
  const auto searcher =
      KMismatchSearcher::Build("acagacagatacacagacttacagaca").value();
  MetricsRegistry& registry = MetricsRegistry::Instance();
  const MetricsBlock before = registry.Snapshot();
  {
    BatchSearcher batch(searcher, {.num_threads = 2});
    const auto result =
        batch.Search(std::vector<std::string>{"acagaca", "ttacag"}, 1);
    ASSERT_TRUE(result.ok());
  }
  const MetricsBlock delta = obs::Diff(registry.Snapshot(), before);
  EXPECT_EQ(delta.counters[obs::kCounterBatchBatches], 1u);
  EXPECT_EQ(delta.counters[obs::kCounterBatchQueries], 2u);
  EXPECT_GT(delta.phase_calls[obs::kPhaseQueueWait], 0u);
  EXPECT_GT(delta.phase_calls[obs::kPhaseWorkerSearch], 0u);
}

TEST(SearchReportTest, JsonContainsAllSections) {
  obs::SearchReport report;
  report.stats = MakeStats(0);
  report.metrics.counters[obs::kCounterRankCalls] = 3;
  report.metrics.phase_nanos[obs::kPhaseMerge] = 17;
  report.metrics.phase_calls[obs::kPhaseMerge] = 2;
  report.metrics.hists[obs::kHistQueryNanos].Observe(1000);
  const std::string json = report.ToJson();
  for (const char* needle :
       {"\"stats\":", "\"counters\":", "\"phases\":", "\"histograms\":",
        "\"rank_calls\":3", "\"merge\":{\"nanos\":17,\"calls\":2}",
        "\"query_nanos\":{\"count\":1,\"sum\":1000,\"buckets\":[[10,1]]}"}) {
    EXPECT_NE(json.find(needle), std::string::npos)
        << "missing " << needle << " in " << json;
  }
  // The stats section must itself round-trip.
  const size_t start = json.find("\"stats\":") + 8;
  const size_t end = json.find('}', start) + 1;
  const auto parsed =
      obs::SearchStatsFromJson(json.substr(start, end - start));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, report.stats);
}

TEST(MetricsCatalogTest, NamesAreUniqueAndNonEmpty) {
  std::vector<std::string_view> names;
  for (uint32_t i = 0; i < obs::kNumCounters; ++i) {
    names.push_back(obs::CounterName(static_cast<obs::CounterId>(i)));
  }
  for (uint32_t i = 0; i < obs::kNumPhases; ++i) {
    names.push_back(obs::PhaseName(static_cast<obs::PhaseId>(i)));
  }
  for (uint32_t i = 0; i < obs::kNumHists; ++i) {
    names.push_back(obs::HistName(static_cast<obs::HistId>(i)));
  }
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_FALSE(names[i].empty());
    for (size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

}  // namespace
}  // namespace bwtk
