// Verifies that BWTK_DISABLE_METRICS compiles every tracing hook to a no-op.
// Like metrics_disabled_test.cc, this TU defines the macro itself and is
// linked into the trace_test binary; it includes ONLY obs/trace.h (and what
// that pulls in) — the obs classes are defined unconditionally and
// identically in every TU, only the macro expansions differ, so the per-TU
// macro cannot create an ODR violation.

#define BWTK_DISABLE_METRICS

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace bwtk {
namespace {

static_assert(BWTK_METRICS_ENABLED == 0,
              "BWTK_DISABLE_METRICS must zero BWTK_METRICS_ENABLED");

TEST(TraceDisabledTest, ActiveExpandsToCompileTimeNull) {
  // In a disabled TU the hoisted pointer is a literal nullptr, so every
  // downstream hook folds away; this must hold even while a trace is
  // genuinely activated by enabled code elsewhere.
  obs::Trace trace;
  obs::ScopedTraceActivation activation(&trace);
  obs::Trace* const hoisted = BWTK_TRACE_ACTIVE();
  EXPECT_EQ(hoisted, nullptr);
}

TEST(TraceDisabledTest, HooksAreNoOps) {
  obs::Trace trace;
  obs::Trace* const hoisted = BWTK_TRACE_ACTIVE();
  {
    BWTK_TRACE_SPAN(hoisted, "never_recorded");
    BWTK_TRACE_NODE(hoisted, 3);
    BWTK_TRACE_PREFIX_HITS(hoisted, 7);
  }
  // The hooks above must not have touched any trace — not even one that is
  // active on this thread.
  obs::ScopedTraceActivation activation(&trace);
  {
    BWTK_TRACE_SPAN(BWTK_TRACE_ACTIVE(), "still_nothing");
    BWTK_TRACE_NODE(BWTK_TRACE_ACTIVE(), 1);
    BWTK_TRACE_PREFIX_HITS(BWTK_TRACE_ACTIVE(), 1);
  }
  EXPECT_TRUE(trace.spans.empty());
  EXPECT_TRUE(trace.nodes_per_depth.empty());
  EXPECT_EQ(trace.prefix_table_hits, 0u);
}

TEST(TraceDisabledTest, ClassesStillWorkWhenUsedDirectly) {
  // The classes themselves are unconditional API — only the macros go dead.
  // Direct use must behave identically to an enabled build.
  obs::TraceSink sink({.sample_rate = 1.0});
  {
    obs::ScopedQueryTrace qt(&sink, 1, "direct", 0, 10);
    EXPECT_TRUE(qt.active());
  }
  EXPECT_EQ(sink.traces_offered(), 1u);
}

}  // namespace
}  // namespace bwtk
