// The dictionary subsystem: PatternSetTrie construction edge cases, the
// joint trie ∩ FM-descent's byte-identity to the per-pattern naive-scanner
// oracle (randomized, monolithic and sharded, prefix table on and off),
// kaori-style best-hit/ambiguity semantics, the demux helper, the
// kDictionary batch/serve wiring, and the v1-index prefix-table upgrade
// path (FmIndex::RebuildPrefixTable).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/naive_search.h"
#include "bwt/fm_index.h"
#include "dict/demux.h"
#include "dict/dictionary_searcher.h"
#include "dict/pattern_set_trie.h"
#include "search/batch_searcher.h"
#include "serve/session.h"
#include "shard/sharded_index.h"
#include "shard/sharded_searcher.h"
#include "simulate/genome_generator.h"
#include "test_util.h"
#include "util/random.h"

namespace bwtk {
namespace {

using ::bwtk::testing::Codes;
using ::bwtk::testing::RandomDna;
using ::bwtk::testing::SampleWithFlips;

std::vector<DnaCode> TestGenome(size_t length, uint64_t seed) {
  GenomeOptions options;
  options.length = length;
  options.repeat_fraction = 0.3;
  options.seed = seed;
  return GenerateGenome(options).value();
}

// Half planted (with up to `k` flips, so hits exist), half random.
std::vector<std::vector<DnaCode>> MakePatternSet(
    const std::vector<DnaCode>& genome, size_t count, size_t length,
    int32_t k, Rng* rng) {
  std::vector<std::vector<DnaCode>> patterns;
  patterns.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (i % 2 == 0) {
      const size_t pos = rng->NextBounded(genome.size() - length);
      patterns.push_back(SampleWithFlips(genome, pos, length, k, rng));
    } else {
      patterns.push_back(RandomDna(length, rng));
    }
  }
  return patterns;
}

// --- PatternSetTrie construction ----------------------------------------

TEST(PatternSetTrieTest, EmptySet) {
  const auto trie =
      PatternSetTrie::Build(std::vector<std::vector<DnaCode>>{}).value();
  EXPECT_EQ(trie.length(), 0u);
  EXPECT_EQ(trie.num_patterns(), 0u);
  EXPECT_EQ(trie.node_count(), 1u);  // just the root
  for (DnaCode c = 0; c < kDnaAlphabetSize; ++c) {
    EXPECT_EQ(trie.Child(trie.root(), c), -1);
  }
}

TEST(PatternSetTrieTest, SinglePattern) {
  const auto trie = PatternSetTrie::Build({Codes("acgt")}).value();
  EXPECT_EQ(trie.length(), 4u);
  EXPECT_EQ(trie.num_patterns(), 1u);
  // root, "a", "ac", "acg"; the 't' slot of "acg" holds the pattern id.
  EXPECT_EQ(trie.node_count(), 4u);
  int32_t node = trie.root();
  for (const DnaCode c : Codes("acg")) {
    node = trie.Child(node, c);
    ASSERT_GE(node, 0);
  }
  // At the last depth the slot holds the pattern id.
  EXPECT_EQ(trie.Child(node, CharToCode('t')), 0);
  EXPECT_EQ(trie.canonical_of(0), 0);
}

TEST(PatternSetTrieTest, SharedPrefixesShareNodes) {
  const auto trie =
      PatternSetTrie::Build({Codes("aaaa"), Codes("aaac"), Codes("aagt")})
          .value();
  // root, "a", "aa", "aaa", "aag": prefixes shared, leaves are slots.
  EXPECT_EQ(trie.node_count(), 5u);
}

TEST(PatternSetTrieTest, DuplicatesRejectedByDefault) {
  const auto trie =
      PatternSetTrie::Build({Codes("acgt"), Codes("tttt"), Codes("acgt")});
  ASSERT_FALSE(trie.ok());
  EXPECT_EQ(trie.status().code(), StatusCode::kInvalidArgument);
  // The error names both colliding indices.
  EXPECT_NE(trie.status().message().find("pattern 2"), std::string::npos)
      << trie.status().message();
  EXPECT_NE(trie.status().message().find("pattern 0"), std::string::npos)
      << trie.status().message();
}

TEST(PatternSetTrieTest, DuplicatesAllowedMapToCanonical) {
  const auto trie =
      PatternSetTrie::Build({Codes("acgt"), Codes("tttt"), Codes("acgt")},
                            {.allow_duplicates = true})
          .value();
  EXPECT_EQ(trie.num_patterns(), 3u);
  EXPECT_EQ(trie.canonical_of(0), 0);
  EXPECT_EQ(trie.canonical_of(1), 1);
  EXPECT_EQ(trie.canonical_of(2), 0);
}

TEST(PatternSetTrieTest, UnequalLengthsRejectedWithClearError) {
  const auto trie = PatternSetTrie::Build({Codes("acgtacgt"), Codes("acg")});
  ASSERT_FALSE(trie.ok());
  EXPECT_EQ(trie.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(trie.status().message().find("pattern 1"), std::string::npos);
  EXPECT_NE(trie.status().message().find("length 3"), std::string::npos)
      << trie.status().message();
  EXPECT_NE(trie.status().message().find("length 8"), std::string::npos)
      << trie.status().message();
}

TEST(PatternSetTrieTest, EmptyPatternRejected) {
  const auto trie = PatternSetTrie::Build({std::vector<DnaCode>{}});
  ASSERT_FALSE(trie.ok());
  EXPECT_EQ(trie.status().code(), StatusCode::kInvalidArgument);
}

TEST(PatternSetTrieTest, AmbiguousBaseRejectedInAscii) {
  const auto trie = PatternSetTrie::Build(
      std::vector<std::string>{"acgtacgt", "acgnacgt"});
  ASSERT_FALSE(trie.ok());
  EXPECT_EQ(trie.status().code(), StatusCode::kInvalidArgument);
  // Names the pattern and the offending character.
  EXPECT_NE(trie.status().message().find("pattern 1"), std::string::npos)
      << trie.status().message();
  EXPECT_NE(trie.status().message().find("'n'"), std::string::npos)
      << trie.status().message();
}

TEST(PatternSetTrieTest, NonDnaCodeRejected) {
  std::vector<DnaCode> bad = Codes("acgt");
  bad[2] = 4;  // e.g. a wildcard code leaking in
  const auto trie = PatternSetTrie::Build({bad});
  ASSERT_FALSE(trie.ok());
  EXPECT_EQ(trie.status().code(), StatusCode::kInvalidArgument);
}

TEST(PatternSetTrieTest, AsciiOverloadBuilds) {
  const auto trie = PatternSetTrie::Build(
      std::vector<std::string>{"ACGT", "tttt"}).value();
  EXPECT_EQ(trie.num_patterns(), 2u);
  EXPECT_EQ(trie.pattern(0), Codes("acgt"));
  EXPECT_EQ(trie.pattern(1), Codes("tttt"));
}

// --- SearchAll vs the per-pattern naive oracle --------------------------

void CrossValidate(size_t pattern_count, size_t length, int32_t k,
                   uint32_t prefix_q, uint64_t seed) {
  const auto genome = TestGenome(6000, seed);
  FmIndex::Options index_options;
  index_options.prefix_table_q = prefix_q;
  const auto index = FmIndex::Build(genome, index_options).value();
  Rng rng(seed + 1);
  const auto patterns = MakePatternSet(genome, pattern_count, length, k, &rng);
  const auto trie =
      PatternSetTrie::Build(patterns, {.allow_duplicates = true}).value();
  const DictionarySearcher searcher(&index);
  const auto all = searcher.SearchAll(trie, k);
  ASSERT_EQ(all.size(), patterns.size());
  const NaiveSearch oracle(&genome);
  for (size_t i = 0; i < patterns.size(); ++i) {
    EXPECT_EQ(all[i], oracle.Search(patterns[i], k))
        << "pattern " << i << " count=" << pattern_count << " k=" << k
        << " q=" << prefix_q;
  }
}

TEST(DictionarySearcherTest, MatchesNaiveOracleAcrossSetSizesAndK) {
  uint64_t seed = 1000;
  for (const size_t count : {1u, 16u, 256u}) {
    for (const int32_t k : {0, 1, 2}) {
      CrossValidate(count, 20, k, /*prefix_q=*/0, ++seed);
    }
  }
}

TEST(DictionarySearcherTest, MatchesNaiveOracleWithPrefixTableSeeding) {
  uint64_t seed = 2000;
  for (const size_t count : {1u, 16u, 256u}) {
    for (const int32_t k : {0, 1, 2}) {
      CrossValidate(count, 20, k, /*prefix_q=*/6, ++seed);
    }
  }
}

TEST(DictionarySearcherTest, PatternLengthEqualToQCompletesAtSeed) {
  // m == q: the depth-q trie slot already holds pattern ids and every
  // variant hit is a completed path — the seeding-only code path.
  uint64_t seed = 3000;
  for (const int32_t k : {0, 1, 2}) {
    CrossValidate(64, 6, k, /*prefix_q=*/6, ++seed);
  }
}

TEST(DictionarySearcherTest, PrefixTableOnOffIdentity) {
  const auto genome = TestGenome(5000, 41);
  FmIndex::Options index_options;
  index_options.prefix_table_q = 6;
  const auto index = FmIndex::Build(genome, index_options).value();
  Rng rng(42);
  const auto patterns = MakePatternSet(genome, 64, 16, 2, &rng);
  const auto trie =
      PatternSetTrie::Build(patterns, {.allow_duplicates = true}).value();
  const DictionarySearcher seeded(&index);
  const DictionarySearcher stepped(&index, {.use_prefix_table = false});
  for (const int32_t k : {0, 1, 2}) {
    EXPECT_EQ(seeded.SearchAll(trie, k), stepped.SearchAll(trie, k))
        << "k=" << k;
  }
}

TEST(DictionarySearcherTest, EmptyTrieAndDegenerateInputs) {
  const auto genome = TestGenome(500, 47);
  const auto index = FmIndex::Build(genome).value();
  const DictionarySearcher searcher(&index);
  const auto empty = PatternSetTrie::Build(
      std::vector<std::vector<DnaCode>>{}).value();
  EXPECT_TRUE(searcher.SearchAll(empty, 2).empty());
  EXPECT_EQ(searcher.SearchBest(empty, 2).pattern, -1);
  // Pattern longer than the text: empty everywhere, no crash.
  const auto longer =
      PatternSetTrie::Build({std::vector<DnaCode>(501, DnaCode{0})}).value();
  const auto all = searcher.SearchAll(longer, 2);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(all[0].empty());
  // Negative budget (the decode-failed placeholder) searches nothing.
  const auto trie = PatternSetTrie::Build({Codes("acgt")}).value();
  const auto none = searcher.SearchAll(trie, -1);
  ASSERT_EQ(none.size(), 1u);
  EXPECT_TRUE(none[0].empty());
}

TEST(DictionarySearcherTest, DuplicatePatternsGetCanonicalResults) {
  const auto genome = TestGenome(3000, 53);
  const auto index = FmIndex::Build(genome).value();
  Rng rng(54);
  const auto planted = SampleWithFlips(genome, 100, 12, 1, &rng);
  const auto trie = PatternSetTrie::Build(
      {planted, RandomDna(12, &rng), planted},
      {.allow_duplicates = true}).value();
  const DictionarySearcher searcher(&index);
  const auto all = searcher.SearchAll(trie, 2);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], all[2]);
  EXPECT_FALSE(all[0].empty());
}

// --- SearchBest (kaori capping + ambiguity) -----------------------------

TEST(DictionarySearcherTest, SearchBestMatchesBruteForce) {
  Rng rng(71);
  for (int trial = 0; trial < 30; ++trial) {
    const auto genome = TestGenome(800, 600 + trial);
    const auto index = FmIndex::Build(genome).value();
    const int32_t k = trial % 3;
    auto patterns = MakePatternSet(genome, 8, 10, k, &rng);
    const auto trie =
        PatternSetTrie::Build(patterns, {.allow_duplicates = true}).value();
    const DictionarySearcher searcher(&index);
    const DictionaryBestHit best = searcher.SearchBest(trie, k);

    // Brute force: per-canonical-pattern oracle minima.
    const NaiveSearch oracle(&genome);
    int32_t best_mm = k + 1;
    std::set<int32_t> winners;
    std::vector<std::vector<Occurrence>> hits(patterns.size());
    for (size_t i = 0; i < patterns.size(); ++i) {
      if (trie.canonical_of(static_cast<int32_t>(i)) !=
          static_cast<int32_t>(i)) {
        continue;  // duplicates can never be reported — leaves hold
                   // canonical ids
      }
      hits[i] = oracle.Search(patterns[i], k);
      for (const Occurrence& o : hits[i]) {
        if (o.mismatches < best_mm) {
          best_mm = o.mismatches;
          winners.clear();
        }
        if (o.mismatches == best_mm) winners.insert(static_cast<int32_t>(i));
      }
    }
    if (winners.empty()) {
      EXPECT_EQ(best.pattern, -1) << "trial " << trial;
      continue;
    }
    ASSERT_GE(best.pattern, 0) << "trial " << trial;
    EXPECT_EQ(best.mismatches, best_mm) << "trial " << trial;
    EXPECT_TRUE(winners.count(best.pattern)) << "trial " << trial;
    EXPECT_EQ(best.ambiguous, winners.size() > 1) << "trial " << trial;
    // The reported position is the smallest best-count position of the
    // reported winner.
    size_t min_pos = static_cast<size_t>(-1);
    for (const Occurrence& o : hits[static_cast<size_t>(best.pattern)]) {
      if (o.mismatches == best_mm) min_pos = std::min(min_pos, o.position);
    }
    EXPECT_EQ(best.position, min_pos) << "trial " << trial;
  }
}

// --- Demux ---------------------------------------------------------------

TEST(DemuxTest, AssignsAmbiguousAndUnassignedOutcomes) {
  const auto barcodes = PatternSetTrie::Build(
      std::vector<std::string>{"aaaacccc", "ggggtttt"}).value();
  const std::vector<std::vector<DnaCode>> reads = {
      Codes("tgtgtgtgaaaaccccgtgtgtgt"),  // barcode 0 exact at offset 8
      Codes("tgtgtgtggggattttgtgtgtgt"),  // barcode 1 with one flip
      Codes("acacacacacacacacacacacac"),  // neither within 1 mismatch
      Codes("aaaaccccggggggtttt"),        // both exact: ambiguous
      Codes("aaaa"),                      // shorter than the barcode length
  };
  const auto result = DemuxReads(barcodes, reads, {.max_mismatches = 1});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 5u);
  EXPECT_EQ((*result)[0].outcome, DemuxAssignment::Outcome::kAssigned);
  EXPECT_EQ((*result)[0].barcode, 0);
  EXPECT_EQ((*result)[0].mismatches, 0);
  EXPECT_EQ((*result)[0].position, 8u);
  EXPECT_EQ((*result)[1].outcome, DemuxAssignment::Outcome::kAssigned);
  EXPECT_EQ((*result)[1].barcode, 1);
  EXPECT_EQ((*result)[1].mismatches, 1);
  EXPECT_EQ((*result)[2].outcome, DemuxAssignment::Outcome::kUnassigned);
  EXPECT_EQ((*result)[2].barcode, -1);
  EXPECT_EQ((*result)[3].outcome, DemuxAssignment::Outcome::kAmbiguous);
  EXPECT_EQ((*result)[3].mismatches, 0);
  EXPECT_EQ((*result)[4].outcome, DemuxAssignment::Outcome::kUnassigned);
}

TEST(DemuxTest, RejectsNegativeBudget) {
  const auto barcodes =
      PatternSetTrie::Build(std::vector<std::string>{"acgt"}).value();
  const auto result = DemuxReads(barcodes, {Codes("acgtacgt")},
                                 {.max_mismatches = -1});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// --- BatchEngine::kDictionary -------------------------------------------

TEST(DictBatchTest, GroupedBatchMatchesOracle) {
  const auto genome = TestGenome(6000, 81);
  const auto index = FmIndex::Build(genome).value();
  const NaiveSearch oracle(&genome);
  Rng rng(82);
  // Mixed lengths and budgets force multiple trie groups; repeated patterns
  // exercise in-group deduplication; an empty pattern and a k < 0
  // placeholder must yield empty slots like the per-query engines.
  std::vector<BatchQuery> queries;
  for (int i = 0; i < 40; ++i) {
    const size_t len = (i % 2 == 0) ? 14 : 22;
    const int32_t k = i % 3;
    const size_t pos = rng.NextBounded(genome.size() - len);
    queries.push_back({SampleWithFlips(genome, pos, len, k, &rng), k});
  }
  queries.push_back(queries[0]);                    // duplicate
  queries.push_back({std::vector<DnaCode>{}, 2});   // empty pattern
  queries.push_back({Codes("acgtacgtacgt"), -1});   // decode-failed marker
  BatchOptions options;
  options.num_threads = 3;
  options.engine = BatchEngine::kDictionary;
  BatchSearcher batch(&index, options);
  const BatchResult result = batch.Search(queries);
  ASSERT_EQ(result.occurrences.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (queries[i].k < 0 || queries[i].pattern.empty()) {
      EXPECT_TRUE(result.occurrences[i].empty()) << "query " << i;
      continue;
    }
    EXPECT_EQ(result.occurrences[i],
              oracle.Search(queries[i].pattern, queries[i].k))
        << "query " << i;
  }
}

TEST(DictBatchTest, AsciiBatchDecodesAndCountsFailures) {
  const auto genome = TestGenome(2000, 91);
  const auto index = FmIndex::Build(genome).value();
  std::string planted(20, 'a');
  for (size_t i = 0; i < planted.size(); ++i) {
    planted[i] = CodeToChar(genome[300 + i]);
  }
  BatchOptions options;
  options.num_threads = 2;
  options.engine = BatchEngine::kDictionary;
  BatchSearcher batch(&index, options);
  const auto result = batch.Search({planted, "acgtnacgt"}, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->failed_queries, 1u);
  EXPECT_FALSE(result->occurrences[0].empty());
  EXPECT_TRUE(result->occurrences[1].empty());
}

TEST(DictBatchTest, EngineBankSinglePatternForm) {
  // The ticket-at-a-time path serve::Session drives: one-pattern tries.
  const auto genome = TestGenome(3000, 97);
  const auto index = FmIndex::Build(genome).value();
  const NaiveSearch oracle(&genome);
  BatchOptions options;
  options.engine = BatchEngine::kDictionary;
  EngineBank bank({&index}, options);
  EXPECT_EQ(bank.engine_name(), "dictionary");
  Rng rng(98);
  for (int i = 0; i < 10; ++i) {
    const int32_t k = i % 3;
    const auto pattern =
        SampleWithFlips(genome, rng.NextBounded(genome.size() - 15), 15, k,
                        &rng);
    SearchStats stats;
    EXPECT_EQ(bank.Run({pattern, k}, 0, &stats), oracle.Search(pattern, k));
  }
}

TEST(DictServeTest, SessionServesDictionaryQueries) {
  const auto genome = TestGenome(3000, 101);
  const auto index = FmIndex::Build(genome).value();
  const NaiveSearch oracle(&genome);
  serve::SessionOptions options;
  options.num_threads = 2;
  options.batch.engine = BatchEngine::kDictionary;
  serve::Session session(&index, options);
  Rng rng(102);
  for (int i = 0; i < 8; ++i) {
    const int32_t k = i % 3;
    const auto pattern =
        SampleWithFlips(genome, rng.NextBounded(genome.size() - 18), 18, k,
                        &rng);
    const auto ticket = session.Submit(BatchQuery{pattern, k});
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    const auto result = session.Wait(*ticket);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->hits, oracle.Search(pattern, k)) << "query " << i;
  }
}

// --- Sharded seam fuzz ---------------------------------------------------

TEST(DictShardTest, SeamFuzzMatchesMonolithicAndOracle) {
  const auto genome = TestGenome(4000, 103);
  const auto mono_index = FmIndex::Build(genome).value();
  ShardedIndexOptions shard_options;
  shard_options.num_shards = 3;
  shard_options.overlap = 32;
  const auto sharded = ShardedIndex::Build(genome, shard_options).value();

  // Patterns planted to straddle every shard boundary, plus flipped and
  // random fill; windows (== pattern length for this Hamming engine) stay
  // within the overlap.
  Rng rng(104);
  std::vector<BatchQuery> queries;
  for (size_t s = 0; s + 1 < sharded.plan().num_shards(); ++s) {
    const size_t boundary = sharded.plan().slice(s).core_end;
    for (const size_t len : {20u, 24u}) {
      for (int32_t k = 0; k < 3; ++k) {
        queries.push_back(
            {SampleWithFlips(genome, boundary - len / 2, len, k, &rng), k});
      }
    }
  }
  for (int i = 0; i < 20; ++i) {
    const int32_t k = i % 3;
    const size_t pos = rng.NextBounded(genome.size() - 24);
    queries.push_back({SampleWithFlips(genome, pos, 24, k, &rng), k});
  }

  BatchOptions options;
  options.num_threads = 4;
  options.engine = BatchEngine::kDictionary;
  BatchSearcher mono(&mono_index, options);
  ShardedBatchSearcher router(&sharded, options);
  const BatchResult expected = mono.Search(queries);
  const auto actual = router.Search(queries);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  ASSERT_EQ(actual->occurrences.size(), queries.size());
  const NaiveSearch oracle(&genome);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(actual->occurrences[i], expected.occurrences[i])
        << "query " << i;
    EXPECT_EQ(actual->occurrences[i],
              oracle.Search(queries[i].pattern, queries[i].k))
        << "query " << i;
  }
}

// --- RebuildPrefixTable (v1-index upgrade path) -------------------------

TEST(RebuildPrefixTableTest, UpgradeIsResultIdenticalAndPersists) {
  const auto genome = TestGenome(2500, 107);
  auto index = FmIndex::Build(genome).value();  // no table, like a v1 load
  ASSERT_EQ(index.prefix_table_q(), 0u);
  Rng rng(108);
  const auto patterns = MakePatternSet(genome, 32, 12, 2, &rng);
  const auto trie =
      PatternSetTrie::Build(patterns, {.allow_duplicates = true}).value();
  const DictionarySearcher searcher(&index);
  const auto before = searcher.SearchAll(trie, 2);

  ASSERT_TRUE(index.RebuildPrefixTable(5).ok());
  EXPECT_EQ(index.prefix_table_q(), 5u);
  EXPECT_EQ(index.options().prefix_table_q, 5u);
  EXPECT_EQ(searcher.SearchAll(trie, 2), before);

  // The rebuilt table round-trips through serialization (format v2).
  std::stringstream buffer;
  ASSERT_TRUE(index.Save(buffer).ok());
  const auto loaded = FmIndex::Load(buffer).value();
  EXPECT_EQ(loaded.prefix_table_q(), 5u);
  const DictionarySearcher loaded_searcher(&loaded);
  EXPECT_EQ(loaded_searcher.SearchAll(trie, 2), before);

  // q = 0 strips the table; out-of-range q is rejected.
  ASSERT_TRUE(index.RebuildPrefixTable(0).ok());
  EXPECT_EQ(index.prefix_table_q(), 0u);
  EXPECT_EQ(searcher.SearchAll(trie, 2), before);
  EXPECT_EQ(index.RebuildPrefixTable(PrefixIntervalTable::kMaxQ + 1).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace bwtk
