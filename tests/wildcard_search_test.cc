#include <gtest/gtest.h>

#include "bwt/fm_index.h"
#include "search/wildcard_search.h"
#include "test_util.h"
#include "util/random.h"

namespace bwtk {
namespace {

using ::bwtk::testing::Codes;
using ::bwtk::testing::PeriodicDna;
using ::bwtk::testing::RandomDna;

TEST(WildcardParseTest, AcceptsWildcardSpellings) {
  const auto pattern = ParseWildcardPattern("a?g.tN").value();
  ASSERT_EQ(pattern.size(), 6u);
  EXPECT_EQ(pattern[0], CharToCode('a'));
  EXPECT_EQ(pattern[1], kWildcardCode);
  EXPECT_EQ(pattern[3], kWildcardCode);
  EXPECT_EQ(pattern[5], kWildcardCode);
}

TEST(WildcardParseTest, RejectsGarbage) {
  EXPECT_FALSE(ParseWildcardPattern("ac-g").ok());
}

TEST(WildcardSearchTest, PureWildcardsMatchEverywhere) {
  const auto text = Codes("acgtacg");
  const auto index = FmIndex::Build(text).value();
  const WildcardSearch searcher(&index);
  const std::vector<DnaCode> pattern(3, kWildcardCode);
  EXPECT_EQ(searcher.Search(pattern).size(), 5u);
}

TEST(WildcardSearchTest, MixedPattern) {
  const auto text = Codes("acagaca");
  const auto index = FmIndex::Build(text).value();
  const WildcardSearch searcher(&index);
  // a?a matches aca (x2) and aga.
  const auto hits = searcher.Search(ParseWildcardPattern("a?a").value());
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].position, 0u);
  EXPECT_EQ(hits[1].position, 2u);
  EXPECT_EQ(hits[2].position, 4u);
}

TEST(WildcardSearchTest, WildcardsDoNotConsumeMismatchBudget) {
  const auto text = Codes("acagaca");
  const auto index = FmIndex::Build(text).value();
  const WildcardSearch searcher(&index);
  // t?aca with k=1: the wildcard absorbs position 2 freely, the budget
  // absorbs the leading t.
  const auto hits = searcher.Search(ParseWildcardPattern("t?aca").value(), 1);
  ASSERT_FALSE(hits.empty());
  for (const auto& hit : hits) EXPECT_LE(hit.mismatches, 1);
}

class WildcardRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(WildcardRandomTest, MatchesNaiveOracle) {
  Rng rng(9500 + GetParam());
  const size_t n = 100 + rng.NextBounded(300);
  const auto text = GetParam() % 2 == 0 ? RandomDna(n, &rng)
                                        : PeriodicDna(n, 5, 0.1, &rng);
  const auto index = FmIndex::Build(text).value();
  const WildcardSearch searcher(&index);
  for (int trial = 0; trial < 6; ++trial) {
    const size_t m = 3 + rng.NextBounded(10);
    std::vector<DnaCode> pattern = RandomDna(m, &rng);
    // Sprinkle wildcards.
    for (auto& c : pattern) {
      if (rng.NextBool(0.25)) c = kWildcardCode;
    }
    const int32_t k = static_cast<int32_t>(rng.NextBounded(3));
    EXPECT_EQ(searcher.Search(pattern, k),
              WildcardSearchNaive(text, pattern, k))
        << "m=" << m << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, WildcardRandomTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace bwtk
