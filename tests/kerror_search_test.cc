#include <gtest/gtest.h>

#include "bwt/fm_index.h"
#include "search/kerror_search.h"
#include "test_util.h"
#include "util/random.h"

namespace bwtk {
namespace {

using ::bwtk::testing::Codes;
using ::bwtk::testing::PeriodicDna;
using ::bwtk::testing::RandomDna;
using ::bwtk::testing::SampleWithFlips;

TEST(KErrorSearchTest, ExactMatchIsZeroEdits) {
  const auto text = Codes("acagaca");
  const auto index = FmIndex::Build(text).value();
  const KErrorSearch searcher(&index);
  const auto hits = searcher.Search(Codes("aca"), 0);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], (EditOccurrence{0, 3, 0}));
  EXPECT_EQ(hits[1], (EditOccurrence{4, 3, 0}));
}

TEST(KErrorSearchTest, FindsInsertionsAndDeletions) {
  // Target contains "acgGta" where the pattern is "acgta": one inserted g.
  const auto text = Codes("ttacggtatt");
  const auto index = FmIndex::Build(text).value();
  const KErrorSearch searcher(&index);
  const auto hits = searcher.Search(Codes("acgta"), 1);
  bool found = false;
  for (const auto& hit : hits) {
    // The alignment starting at position 2 must need exactly one edit.
    if (hit.position == 2) {
      EXPECT_EQ(hit.edits, 1);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(KErrorSearchTest, DegenerateInputs) {
  const auto index = FmIndex::Build(Codes("acgt")).value();
  const KErrorSearch searcher(&index);
  EXPECT_TRUE(searcher.Search({}, 2).empty());
  EXPECT_TRUE(searcher.Search(Codes("ac"), -1).empty());
}

class KErrorRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(KErrorRandomTest, MatchesBandedDpOracle) {
  Rng rng(9000 + GetParam());
  const size_t n = 60 + rng.NextBounded(160);
  const auto text = GetParam() % 2 == 0 ? RandomDna(n, &rng)
                                        : PeriodicDna(n, 6, 0.15, &rng);
  const auto index = FmIndex::Build(text).value();
  const KErrorSearch searcher(&index);
  for (int trial = 0; trial < 4; ++trial) {
    const size_t m = 4 + rng.NextBounded(12);
    const int32_t k = static_cast<int32_t>(rng.NextBounded(3));
    const size_t pos = rng.NextBounded(n - m);
    const auto pattern = trial % 2 == 0
                             ? RandomDna(m, &rng)
                             : SampleWithFlips(text, pos, m, k, &rng);
    EXPECT_EQ(searcher.Search(pattern, k),
              KErrorSearchNaive(text, pattern, k))
        << "m=" << m << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, KErrorRandomTest, ::testing::Range(0, 14));

TEST(KErrorSearchTest, EditDistanceSubsumesHamming) {
  // Every k-mismatch occurrence is also a k-error occurrence.
  Rng rng(77);
  const auto text = RandomDna(300, &rng);
  const auto index = FmIndex::Build(text).value();
  const KErrorSearch searcher(&index);
  const auto pattern = SampleWithFlips(text, 50, 20, 2, &rng);
  const auto edit_hits = searcher.Search(pattern, 2);
  bool covers = false;
  for (const auto& hit : edit_hits) covers |= (hit.position == 50);
  EXPECT_TRUE(covers);
}

}  // namespace
}  // namespace bwtk
