// Loopback TCP tests for the serving front-end: byte-identity of served
// results against the direct engine, pipelined out-of-order completion,
// connection-level admission control, protocol-violation handling, and the
// stats round-trip. Servers bind 127.0.0.1 port 0 (kernel-assigned), so
// these run anywhere without port coordination.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "search/algorithm_a.h"
#include "bidir/bi_fm_index.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/session.h"
#include "test_util.h"
#include "util/random.h"

namespace bwtk {
namespace {

using serve::Client;
using serve::Server;
using serve::ServerOptions;
using serve::Session;
using serve::SessionOptions;
using serve::WireStatus;

struct NetFixture {
  std::vector<DnaCode> text;
  FmIndex index;
  std::vector<std::string> patterns;  // ASCII, as a client would send them
  std::vector<int32_t> budgets;
};

NetFixture MakeNetFixture(size_t text_length, size_t num_queries,
                          uint64_t seed) {
  Rng rng(seed);
  std::vector<DnaCode> text = testing::RandomDna(text_length, &rng);
  FmIndex index = FmIndex::Build(text).value();
  std::vector<std::string> patterns;
  std::vector<int32_t> budgets;
  for (size_t i = 0; i < num_queries; ++i) {
    const size_t m = 8 + rng.NextBounded(12);
    const size_t pos = rng.NextBounded(text_length - m);
    std::string pattern;
    for (size_t j = 0; j < m; ++j) {
      pattern.push_back(CodeToChar(text[pos + j]));
    }
    patterns.push_back(std::move(pattern));
    budgets.push_back(static_cast<int32_t>(rng.NextBounded(3)));
  }
  return NetFixture{std::move(text), std::move(index), std::move(patterns),
                    std::move(budgets)};
}

TEST(ServeNetTest, ServedResultsAreByteIdenticalToDirectEngine) {
  NetFixture fixture = MakeNetFixture(20000, 25, 61);
  Session session(&fixture.index, {.num_threads = 2});
  Server server(&session);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_EQ((*client)->hello().engine, "algorithm_a");
  EXPECT_FALSE((*client)->hello().sharded);

  const AlgorithmA serial(&fixture.index);
  AlgorithmAScratch scratch;
  for (size_t i = 0; i < fixture.patterns.size(); ++i) {
    const auto response =
        (*client)->Query(fixture.patterns[i], fixture.budgets[i]);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->status, WireStatus::kOk) << response->message;
    const auto codes = EncodeDna(fixture.patterns[i]);
    ASSERT_TRUE(codes.ok());
    std::vector<Occurrence> expected =
        serial.Search(codes.value(), fixture.budgets[i], nullptr, &scratch);
    NormalizeOccurrences(&expected);
    EXPECT_EQ(response->hits, expected) << "query " << i;
  }
  EXPECT_EQ(server.num_connections(), 1u);
}

TEST(ServeNetTest, PipelinedResponsesMatchedByRequestId) {
  NetFixture fixture = MakeNetFixture(20000, 30, 67);
  Session session(&fixture.index, {.num_threads = 3});
  Server server(&session);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  // Fire everything, then collect: responses arrive in completion order;
  // every request id must come back exactly once with the right payload.
  std::vector<uint64_t> ids;
  for (size_t i = 0; i < fixture.patterns.size(); ++i) {
    const auto id =
        (*client)->SendQuery(fixture.patterns[i], fixture.budgets[i]);
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  const AlgorithmA serial(&fixture.index);
  AlgorithmAScratch scratch;
  std::vector<bool> answered(fixture.patterns.size(), false);
  for (size_t n = 0; n < ids.size(); ++n) {
    auto response = (*client)->ReceiveResponse();
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->status, WireStatus::kOk);
    // Recover the query from the id (ids are assigned 1,2,3,... by the
    // client in submission order).
    const size_t slot = static_cast<size_t>(response->request_id - ids[0]);
    ASSERT_LT(slot, fixture.patterns.size());
    EXPECT_FALSE(answered[slot]) << "duplicate response";
    answered[slot] = true;
    const auto codes = EncodeDna(fixture.patterns[slot]);
    std::vector<Occurrence> expected =
        serial.Search(codes.value(), fixture.budgets[slot], nullptr, &scratch);
    NormalizeOccurrences(&expected);
    EXPECT_EQ(response->hits, expected);
  }
  for (const bool got : answered) EXPECT_TRUE(got);
}

TEST(ServeNetTest, ConnectionInflightCapAnswersOverloaded) {
  NetFixture fixture = MakeNetFixture(8000, 4, 71);
  Session session(&fixture.index, {.num_threads = 1});
  session.Pause();  // queries stay queued: the cap is hit deterministically
  ServerOptions options;
  options.max_inflight_per_connection = 2;
  Server server(&session, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  EXPECT_EQ((*client)->hello().max_inflight, 2u);

  ASSERT_TRUE((*client)->SendQuery(fixture.patterns[0], 0).ok());
  ASSERT_TRUE((*client)->SendQuery(fixture.patterns[1], 0).ok());
  ASSERT_TRUE((*client)->SendQuery(fixture.patterns[2], 0).ok());
  // The third answer arrives first — rejected immediately while the two
  // admitted ones sit in the paused session.
  auto response = (*client)->ReceiveResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, WireStatus::kOverloaded);
  session.Resume();
  for (int i = 0; i < 2; ++i) {
    response = (*client)->ReceiveResponse();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, WireStatus::kOk) << response->message;
  }
}

TEST(ServeNetTest, InvalidPatternAndBadBudgetAnswerInvalidArgument) {
  NetFixture fixture = MakeNetFixture(8000, 1, 73);
  Session session(&fixture.index, {.num_threads = 1});
  Server server(&session);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  // Undecodable pattern under the default engine.
  auto response = (*client)->Query("not dna!", 1);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, WireStatus::kInvalidArgument);
  // Negative budget.
  response = (*client)->Query("acgt", -1);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, WireStatus::kInvalidArgument);
  // The connection survives rejected queries.
  response = (*client)->Query(fixture.patterns[0], 1);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, WireStatus::kOk);
}

// Opens a raw TCP connection (no Client handshake) so tests can push
// arbitrary bytes at the server. Returns -1 on failure.
int RawConnect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Blocks until the peer closes (recv == 0) or errors; true if closed.
bool PeerClosed(int fd) {
  char buffer[256];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n == 0) return true;
    if (n < 0) return errno == ECONNRESET;
  }
}

TEST(ServeNetTest, BadMagicAndMalformedFramesCloseConnection) {
  NetFixture fixture = MakeNetFixture(8000, 1, 79);
  Session session(&fixture.index, {.num_threads = 1});
  Server server(&session);
  ASSERT_TRUE(server.Start().ok());

  {
    // HELLO with a corrupt magic: server must drop the connection without
    // answering.
    const int fd = RawConnect(server.port());
    ASSERT_GE(fd, 0);
    std::string hello;
    serve::AppendHelloFrame(&hello);
    hello[5] ^= 0xff;  // flip a magic byte inside the payload
    ASSERT_EQ(::send(fd, hello.data(), hello.size(), 0),
              static_cast<ssize_t>(hello.size()));
    EXPECT_TRUE(PeerClosed(fd));
    ::close(fd);
  }
  {
    // QUERY before HELLO is a protocol violation: same tear-down path.
    const int fd = RawConnect(server.port());
    ASSERT_GE(fd, 0);
    std::string query;
    serve::AppendQueryFrame({1, 1, "acgt"}, &query);
    ASSERT_EQ(::send(fd, query.data(), query.size(), 0),
              static_cast<ssize_t>(query.size()));
    EXPECT_TRUE(PeerClosed(fd));
    ::close(fd);
  }
  {
    // Oversized declared frame length: server must refuse to buffer it.
    const int fd = RawConnect(server.port());
    ASSERT_GE(fd, 0);
    const uint32_t huge = 0x7fffffff;
    char header[5];
    std::memcpy(header, &huge, 4);
    header[4] = 1;  // kHello
    ASSERT_EQ(::send(fd, header, sizeof(header), 0),
              static_cast<ssize_t>(sizeof(header)));
    EXPECT_TRUE(PeerClosed(fd));
    ::close(fd);
  }

  // A well-behaved client on the same server still works after all that.
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const auto response = (*client)->Query(fixture.patterns[0], 0);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, WireStatus::kOk);
}

TEST(ServeNetTest, StatsRoundTripSeesServerSideCounters) {
  NetFixture fixture = MakeNetFixture(8000, 3, 83);
  Session session(&fixture.index, {.num_threads = 1});
  Server server(&session);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  for (const std::string& pattern : fixture.patterns) {
    ASSERT_TRUE((*client)->Query(pattern, 1).ok());
  }
  const auto stats = (*client)->GetStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->submitted, fixture.patterns.size());
  EXPECT_EQ(stats->completed, fixture.patterns.size());
  EXPECT_EQ(stats->inflight, 0u);
}

TEST(ServeNetTest, PerQueryStatsTrailerOverTcp) {
  // Opt-in per-query stats: a QUERY with the want_stats flag gets the
  // RESULT trailer (engine counters, timings, cache flag); one without
  // stays trailer-free. Hits are byte-identical either way.
  NetFixture fixture = MakeNetFixture(12000, 3, 91);
  SessionOptions session_options;
  session_options.num_threads = 1;
  session_options.batch.result_cache.enabled = true;
  Session session(&fixture.index, session_options);
  Server server(&session);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  // Cold, with stats: real execution — counters populated, not
  // cache-served.
  auto cold = (*client)->Query(fixture.patterns[0], 1, /*want_stats=*/true);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_EQ(cold->status, WireStatus::kOk) << cold->message;
  ASSERT_TRUE(cold->has_stats);
  EXPECT_FALSE(cold->cache_served);
  EXPECT_GT(cold->stats.extend_calls, 0u);
  EXPECT_GT(cold->search_ns, 0u);

  // Same query again: served from the result cache with the original
  // execution's stats and identical hits.
  const auto warm =
      (*client)->Query(fixture.patterns[0], 1, /*want_stats=*/true);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->has_stats);
  EXPECT_TRUE(warm->cache_served);
  EXPECT_EQ(warm->stats, cold->stats);
  EXPECT_EQ(warm->hits, cold->hits);

  // Flagless query: no trailer, same hits — existing clients see the
  // exact pre-trailer byte stream.
  const auto plain = (*client)->Query(fixture.patterns[0], 1);
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->has_stats);
  EXPECT_EQ(plain->hits, cold->hits);
}

TEST(ServeNetTest, RequestTimeoutAnswersTimedOutExactlyOnce) {
  NetFixture fixture = MakeNetFixture(8000, 2, 89);
  Session session(&fixture.index, {.num_threads = 1});
  session.Pause();  // the query can never finish before the deadline
  ServerOptions options;
  options.request_timeout = std::chrono::milliseconds(30);
  Server server(&session, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->SendQuery(fixture.patterns[0], 0).ok());
  auto response = (*client)->ReceiveResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, WireStatus::kTimedOut);
  // The late real completion must be swallowed: the next response on the
  // wire belongs to the next query, not a duplicate of the timed-out one.
  session.Resume();
  const auto id2 = (*client)->SendQuery(fixture.patterns[1], 0);
  ASSERT_TRUE(id2.ok());
  response = (*client)->ReceiveResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->request_id, id2.value());
  EXPECT_EQ(response->status, WireStatus::kOk);
}

TEST(ServeNetTest, ServerStopWhileClientsConnectedIsClean) {
  NetFixture fixture = MakeNetFixture(8000, 2, 97);
  Session session(&fixture.index, {.num_threads = 2});
  Server server(&session);
  ASSERT_TRUE(server.Start().ok());
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < 3; ++i) {
    auto client = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE((*client)->Query(fixture.patterns[0], 1).ok());
    clients.push_back(std::move(client.value()));
  }
  server.Stop();  // severs all three mid-session; must not hang or crash
  for (auto& client : clients) {
    EXPECT_FALSE(client->Query(fixture.patterns[1], 1).ok());
  }
  // The session itself is untouched by the front-end stopping.
  EXPECT_TRUE(session.Submit(BatchQuery{{0, 1, 2, 3}, 1}).ok());
}

TEST(ServeNetTest, PerQueryEngineOverrideOverTcp) {
  NetFixture fixture = MakeNetFixture(15000, 10, 211);
  const auto bidir = BiFmIndex::Build(fixture.text).value();
  SessionOptions options;
  options.num_threads = 2;
  options.batch.bidir_indexes = {&bidir};  // engine stays kAlgorithmA
  Session session(&fixture.index, options);
  Server server(&session);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  const AlgorithmA serial(&fixture.index);
  AlgorithmAScratch scratch;
  for (size_t i = 0; i < fixture.patterns.size(); ++i) {
    // Every Hamming engine must serve the same bytes over the wire.
    const auto codes = EncodeDna(fixture.patterns[i]).value();
    std::vector<Occurrence> expected =
        serial.Search(codes, fixture.budgets[i], nullptr, &scratch);
    NormalizeOccurrences(&expected);
    for (const auto engine :
         {std::optional<BatchEngine>{}, std::optional<BatchEngine>{
                                            BatchEngine::kBidirectional},
          std::optional<BatchEngine>{BatchEngine::kSTree},
          std::optional<BatchEngine>{BatchEngine::kAuto}}) {
      const auto response = (*client)->Query(
          fixture.patterns[i], fixture.budgets[i], /*want_stats=*/false,
          engine);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      ASSERT_EQ(response->status, WireStatus::kOk) << response->message;
      EXPECT_EQ(response->hits, expected) << "query " << i;
    }
  }
}

TEST(ServeNetTest, UnavailableEngineOverrideAnswersInvalidArgument) {
  NetFixture fixture = MakeNetFixture(8000, 1, 223);
  Session session(&fixture.index, {.num_threads = 1});  // no bidir indexes
  Server server(&session);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto response = (*client)->Query(fixture.patterns[0], 1,
                                   /*want_stats=*/false,
                                   BatchEngine::kBidirectional);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, WireStatus::kInvalidArgument);
  EXPECT_NE(response->message.find("bidirectional"), std::string::npos)
      << response->message;
  // The connection survives; kAuto degrades instead of failing.
  response = (*client)->Query(fixture.patterns[0], 1, /*want_stats=*/false,
                              BatchEngine::kAuto);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, WireStatus::kOk);
}

}  // namespace
}  // namespace bwtk
