#include <gtest/gtest.h>

#include <algorithm>

#include "suffix/suffix_tree.h"
#include "test_util.h"
#include "util/random.h"

namespace bwtk {
namespace {

using ::bwtk::testing::Codes;
using ::bwtk::testing::PeriodicDna;
using ::bwtk::testing::RandomDna;

std::vector<SaIndex> NaiveFind(const std::vector<DnaCode>& text,
                               const std::vector<DnaCode>& pattern) {
  std::vector<SaIndex> out;
  if (pattern.empty() || pattern.size() > text.size()) return out;
  for (size_t pos = 0; pos + pattern.size() <= text.size(); ++pos) {
    if (std::equal(pattern.begin(), pattern.end(), text.begin() + pos)) {
      out.push_back(static_cast<SaIndex>(pos));
    }
  }
  return out;
}

std::vector<SaIndex> Sorted(std::vector<SaIndex> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(SuffixTreeTest, LeafCountEqualsSuffixCount) {
  const auto text = Codes("acagaca");
  const auto tree = SuffixTree::Build(text).value();
  std::vector<SaIndex> leaves;
  tree.CollectLeaves(tree.root(), &leaves);
  // One leaf per suffix of text$ (including the sentinel suffix).
  EXPECT_EQ(leaves.size(), text.size() + 1);
  std::sort(leaves.begin(), leaves.end());
  for (size_t i = 0; i < leaves.size(); ++i) {
    EXPECT_EQ(leaves[i], static_cast<SaIndex>(i));
  }
}

TEST(SuffixTreeTest, NodeCountIsLinear) {
  Rng rng(31);
  const auto text = RandomDna(1000, &rng);
  const auto tree = SuffixTree::Build(text).value();
  // A suffix tree on n+1 leaves has at most 2(n+1) nodes (root included).
  EXPECT_LE(tree.node_count(), 2 * (text.size() + 1));
  EXPECT_GE(tree.node_count(), text.size() + 1);
}

TEST(SuffixTreeTest, FindExactOnFixedText) {
  const auto text = Codes("acagaca");
  const auto tree = SuffixTree::Build(text).value();
  EXPECT_EQ(Sorted(tree.FindExact(Codes("aca"))),
            (std::vector<SaIndex>{0, 4}));
  EXPECT_EQ(Sorted(tree.FindExact(Codes("a"))),
            (std::vector<SaIndex>{0, 2, 4, 6}));
  EXPECT_EQ(Sorted(tree.FindExact(Codes("acagaca"))),
            (std::vector<SaIndex>{0}));
  EXPECT_TRUE(tree.FindExact(Codes("tt")).empty());
  EXPECT_TRUE(tree.FindExact(Codes("acagacaa")).empty());
}

class SuffixTreeRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SuffixTreeRandomTest, FindExactMatchesNaive) {
  Rng rng(800 + GetParam());
  const size_t length = 30 + rng.NextBounded(400);
  const auto text = GetParam() % 2 == 0
                        ? RandomDna(length, &rng)
                        : PeriodicDna(length, 6, 0.1, &rng);
  const auto tree = SuffixTree::Build(text).value();
  for (int trial = 0; trial < 30; ++trial) {
    // Mix of planted substrings (hits) and random patterns (usually misses).
    std::vector<DnaCode> pattern;
    if (trial % 2 == 0) {
      const size_t len = 1 + rng.NextBounded(12);
      const size_t pos = rng.NextBounded(length - len);
      pattern.assign(text.begin() + pos, text.begin() + pos + len);
    } else {
      pattern = RandomDna(1 + rng.NextBounded(10), &rng);
    }
    EXPECT_EQ(Sorted(tree.FindExact(pattern)), NaiveFind(text, pattern));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SuffixTreeRandomTest, ::testing::Range(0, 12));

TEST(SuffixTreeTest, SingleCharacterText) {
  const auto tree = SuffixTree::Build(Codes("t")).value();
  EXPECT_EQ(Sorted(tree.FindExact(Codes("t"))), (std::vector<SaIndex>{0}));
  EXPECT_TRUE(tree.FindExact(Codes("a")).empty());
}

TEST(SuffixTreeTest, RepetitiveText) {
  const auto text = Codes("aaaaaaaa");
  const auto tree = SuffixTree::Build(text).value();
  EXPECT_EQ(tree.FindExact(Codes("aaaa")).size(), 5u);
  EXPECT_EQ(tree.FindExact(Codes("aaaaaaaa")).size(), 1u);
}

TEST(SuffixTreeTest, MemoryUsageReported) {
  const auto tree = SuffixTree::Build(Codes("acgtacgt")).value();
  EXPECT_GT(tree.MemoryUsage(), 0u);
}

}  // namespace
}  // namespace bwtk
