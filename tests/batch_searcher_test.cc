// BatchSearcher: parallel batches must be bit-identical to serial Search
// over every query, under any thread count, including the scratch-reuse
// path. The stress cases are written to be meaningful under
// ThreadSanitizer: many small queries racing over one shared index.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bidir/bi_fm_index.h"
#include "search/batch_searcher.h"
#include "search/kerror_search.h"
#include "search/searcher.h"
#include "search/stree_search.h"
#include "search/wildcard_search.h"
#include "simulate/genome_generator.h"
#include "test_util.h"
#include "util/random.h"

namespace bwtk {
namespace {

using ::bwtk::testing::RandomDna;
using ::bwtk::testing::SampleWithFlips;

// A genome with repeat structure plus a mixed query workload: planted
// approximate occurrences, random patterns, and varying k.
struct Workload {
  KMismatchSearcher searcher;
  std::vector<BatchQuery> queries;
};

Workload MakeWorkload(size_t genome_size, size_t query_count, uint64_t seed) {
  GenomeOptions genome_options;
  genome_options.length = genome_size;
  genome_options.repeat_fraction = 0.3;
  genome_options.seed = seed;
  auto genome = GenerateGenome(genome_options).value();
  auto searcher = KMismatchSearcher::Build(genome).value();

  Rng rng(seed + 1);
  std::vector<BatchQuery> queries;
  queries.reserve(query_count);
  for (size_t i = 0; i < query_count; ++i) {
    const int32_t k = static_cast<int32_t>(i % 4);
    const size_t len = 20 + rng.NextBounded(30);
    if (i % 3 == 0) {
      queries.push_back({RandomDna(len, &rng), k});
    } else {
      const size_t pos = rng.NextBounded(genome.size() - len);
      queries.push_back({SampleWithFlips(genome, pos, len, k, &rng), k});
    }
  }
  return {std::move(searcher), std::move(queries)};
}

std::vector<std::vector<Occurrence>> SerialResults(
    const KMismatchSearcher& searcher, const std::vector<BatchQuery>& queries) {
  std::vector<std::vector<Occurrence>> out;
  out.reserve(queries.size());
  for (const BatchQuery& query : queries) {
    out.push_back(searcher.Search(query.pattern, query.k));
  }
  return out;
}

TEST(BatchSearcherTest, MatchesSerialOnOneTwoAndEightThreads) {
  Workload workload = MakeWorkload(20000, 60, 11);
  const auto expected = SerialResults(workload.searcher, workload.queries);
  for (const int threads : {1, 2, 8}) {
    BatchSearcher batch(workload.searcher, {.num_threads = threads});
    ASSERT_EQ(batch.num_threads(), threads);
    const BatchResult result = batch.Search(workload.queries);
    ASSERT_EQ(result.occurrences.size(), workload.queries.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(result.occurrences[i], expected[i])
          << "query " << i << " with " << threads << " threads";
    }
  }
}

TEST(BatchSearcherTest, EmptyBatch) {
  const auto searcher = KMismatchSearcher::Build("acgtacgtacgt").value();
  BatchSearcher batch(searcher, {.num_threads = 4});
  const BatchResult result = batch.Search(std::vector<BatchQuery>{});
  EXPECT_TRUE(result.occurrences.empty());
  EXPECT_EQ(result.stats.extend_calls, 0u);
  EXPECT_EQ(result.failed_queries, 0u);
}

TEST(BatchSearcherTest, BatchLargerThanThreadCount) {
  // 2 threads, 50 queries: the atomic cursor must hand out every index
  // exactly once and slot every result correctly.
  Workload workload = MakeWorkload(8000, 50, 23);
  const auto expected = SerialResults(workload.searcher, workload.queries);
  BatchSearcher batch(workload.searcher, {.num_threads = 2});
  const BatchResult result = batch.Search(workload.queries);
  ASSERT_EQ(result.occurrences.size(), 50u);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.occurrences[i], expected[i]) << "query " << i;
  }
}

TEST(BatchSearcherTest, PerQueryMismatchBudgets) {
  // The same pattern under k = 0..3 in one batch: each slot must honor its
  // own budget (monotonically growing hit sets).
  const auto searcher =
      KMismatchSearcher::Build("acagacattacagacagtacagacaa").value();
  const auto pattern = testing::Codes("acagacat");
  std::vector<BatchQuery> queries;
  for (int32_t k = 0; k < 4; ++k) queries.push_back({pattern, k});
  BatchSearcher batch(searcher, {.num_threads = 3});
  const BatchResult result = batch.Search(queries);
  ASSERT_EQ(result.occurrences.size(), 4u);
  for (int32_t k = 0; k < 4; ++k) {
    EXPECT_EQ(result.occurrences[k], searcher.Search(pattern, k)) << "k=" << k;
    if (k > 0) {
      EXPECT_GE(result.occurrences[k].size(),
                result.occurrences[k - 1].size());
    }
  }
}

TEST(BatchSearcherTest, AggregateStatsMatchSerialSums) {
  Workload workload = MakeWorkload(10000, 40, 31);
  SearchStats serial_total;
  for (const BatchQuery& query : workload.queries) {
    SearchStats stats;
    workload.searcher.Search(query.pattern, query.k, &stats);
    serial_total += stats;
  }
  BatchSearcher batch(workload.searcher, {.num_threads = 4});
  const BatchResult result = batch.Search(workload.queries);
  // Every counter is per-query work, independent of which thread ran it.
  EXPECT_EQ(result.stats.extend_calls, serial_total.extend_calls);
  EXPECT_EQ(result.stats.completed_paths, serial_total.completed_paths);
  EXPECT_EQ(result.stats.mtree_leaves, serial_total.mtree_leaves);
  EXPECT_EQ(result.stats.stree_nodes, serial_total.stree_nodes);
}

TEST(BatchSearcherTest, AsciiBatchAndFailFast) {
  const auto searcher = KMismatchSearcher::Build("acagacagacagacag").value();
  const std::vector<std::string> patterns = {"acag", "not-dna", "gaca"};

  BatchSearcher lenient(searcher, {.num_threads = 2, .fail_fast = false});
  const auto lenient_result = lenient.Search(patterns, 1);
  ASSERT_TRUE(lenient_result.ok());
  EXPECT_EQ(lenient_result->failed_queries, 1u);
  EXPECT_EQ(lenient_result->occurrences[0],
            searcher.Search("acag", 1).value());
  EXPECT_TRUE(lenient_result->occurrences[1].empty());
  EXPECT_EQ(lenient_result->occurrences[2],
            searcher.Search("gaca", 1).value());

  BatchSearcher strict(searcher, {.num_threads = 2, .fail_fast = true});
  EXPECT_FALSE(strict.Search(patterns, 1).ok());
}

TEST(BatchSearcherTest, ReusedBatchSearcherStaysCorrect) {
  // Several batches through one pool: scratches carry warm buffers from
  // batch to batch and must never leak state between queries.
  Workload workload = MakeWorkload(12000, 30, 47);
  const auto expected = SerialResults(workload.searcher, workload.queries);
  BatchSearcher batch(workload.searcher, {.num_threads = 4});
  for (int round = 0; round < 3; ++round) {
    const BatchResult result = batch.Search(workload.queries);
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(result.occurrences[i], expected[i])
          << "round " << round << " query " << i;
    }
  }
}

TEST(BatchSearcherTest, ScratchReuseMatchesFreshScratch) {
  // The serial engine with one long-lived scratch must equal fresh-scratch
  // searches — the single-thread core of the batch guarantee.
  Workload workload = MakeWorkload(10000, 40, 59);
  AlgorithmAScratch scratch;
  for (const BatchQuery& query : workload.queries) {
    EXPECT_EQ(
        workload.searcher.Search(query.pattern, query.k, nullptr, &scratch),
        workload.searcher.Search(query.pattern, query.k));
  }
}

TEST(BatchSearcherTest, STreeEngineMatchesSerialSTree) {
  Workload workload = MakeWorkload(10000, 40, 83);
  const STreeSearch serial(&workload.searcher.index());
  BatchOptions options;
  options.num_threads = 4;
  options.engine = BatchEngine::kSTree;
  BatchSearcher batch(workload.searcher, options);
  const BatchResult result = batch.Search(workload.queries);
  SearchStats serial_total;
  for (size_t i = 0; i < workload.queries.size(); ++i) {
    SearchStats stats;
    EXPECT_EQ(result.occurrences[i],
              serial.Search(workload.queries[i].pattern,
                            workload.queries[i].k, &stats))
        << "query " << i;
    serial_total += stats;
  }
  EXPECT_EQ(result.stats.extend_calls, serial_total.extend_calls);
  EXPECT_EQ(result.stats.stree_nodes, serial_total.stree_nodes);
}

TEST(BatchSearcherTest, KErrorEngineMatchesProjectedSerialResults) {
  // The kerror engine routes KErrorSearch through the pool; each
  // EditOccurrence projects to Occurrence{position, edits} (length dropped).
  Workload workload = MakeWorkload(6000, 24, 89);
  const KErrorSearch serial(&workload.searcher.index());
  BatchOptions options;
  options.num_threads = 4;
  options.engine = BatchEngine::kKError;
  BatchSearcher batch(workload.searcher, options);
  std::vector<BatchQuery> queries = workload.queries;
  for (BatchQuery& query : queries) query.k = std::min(query.k, 2);
  const BatchResult result = batch.Search(queries);
  SearchStats serial_total;
  for (size_t i = 0; i < queries.size(); ++i) {
    SearchStats stats;
    std::vector<Occurrence> expected;
    for (const EditOccurrence& e :
         serial.Search(queries[i].pattern, queries[i].k, &stats)) {
      expected.push_back({e.position, e.edits});
    }
    NormalizeOccurrences(&expected);
    EXPECT_EQ(result.occurrences[i], expected) << "query " << i;
    serial_total += stats;
  }
  // The batch aggregate is the sum of the per-query serial stats
  // (docs/API.md, "Per-engine stats contract"): the walk counters are
  // filled, the Algorithm-A-only fields stay zero.
  EXPECT_EQ(result.stats.stree_nodes, serial_total.stree_nodes);
  EXPECT_EQ(result.stats.extend_calls, serial_total.extend_calls);
  EXPECT_EQ(result.stats.completed_paths, serial_total.completed_paths);
  EXPECT_EQ(result.stats.budget_pruned, serial_total.budget_pruned);
  EXPECT_GT(result.stats.stree_nodes, 0u);
  EXPECT_EQ(result.stats.mtree_nodes, 0u);
  EXPECT_EQ(result.stats.tau_pruned, 0u);
}

TEST(BatchSearcherTest, WildcardEngineMatchesSerialWildcardSearch) {
  // The wildcard engine decodes ASCII patterns with ParseWildcardPattern
  // and runs WildcardSearch per task.
  Workload workload = MakeWorkload(6000, 20, 53);
  const WildcardSearch serial(&workload.searcher.index());
  BatchOptions options;
  options.num_threads = 4;
  options.engine = BatchEngine::kWildcard;
  BatchSearcher batch(workload.searcher, options);
  // Punch wildcards into the encoded patterns and check against serial.
  std::vector<BatchQuery> queries = workload.queries;
  for (size_t i = 0; i < queries.size(); ++i) {
    queries[i].k = static_cast<int32_t>(i % 2);
    if (queries[i].pattern.size() > 4) {
      queries[i].pattern[1] = kWildcardCode;
      queries[i].pattern[queries[i].pattern.size() / 2] = kWildcardCode;
    }
  }
  const BatchResult result = batch.Search(queries);
  SearchStats serial_total;
  for (size_t i = 0; i < queries.size(); ++i) {
    SearchStats stats;
    EXPECT_EQ(result.occurrences[i],
              serial.Search(queries[i].pattern, queries[i].k, &stats))
        << "query " << i;
    serial_total += stats;
  }
  EXPECT_EQ(result.stats.stree_nodes, serial_total.stree_nodes);
  EXPECT_EQ(result.stats.extend_calls, serial_total.extend_calls);
  EXPECT_EQ(result.stats.completed_paths, serial_total.completed_paths);

  // ASCII overload: '?' and 'n' must decode as wildcards under this engine.
  const Result<BatchResult> ascii = batch.Search({"a?ccn"}, 0);
  ASSERT_TRUE(ascii.ok());
  const auto decoded = ParseWildcardPattern("a?ccn");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(ascii.value().occurrences[0],
            serial.Search(decoded.value(), 0));
}

TEST(BatchSearcherTest, IndexGroupSearchIsPerQueryUnion) {
  // Two copies of the same index in one group: plain Search must return
  // each query's hits twice (union semantics, duplicates kept), and the
  // fanout must slot per-(query, index) results at q * S + s.
  Workload workload = MakeWorkload(5000, 10, 97);
  const FmIndex& index = workload.searcher.index();
  BatchSearcher group(std::vector<const FmIndex*>{&index, &index},
                      {.num_threads = 3});
  ASSERT_EQ(group.num_indexes(), 2u);
  const BatchResult merged = group.Search(workload.queries);
  const BatchFanoutResult fanout = group.SearchFanout(workload.queries);
  ASSERT_EQ(fanout.occurrences.size(), workload.queries.size() * 2);
  for (size_t q = 0; q < workload.queries.size(); ++q) {
    const auto serial = workload.searcher.Search(workload.queries[q].pattern,
                                                 workload.queries[q].k);
    EXPECT_EQ(fanout.occurrences[q * 2], serial);
    EXPECT_EQ(fanout.occurrences[q * 2 + 1], serial);
    EXPECT_EQ(merged.occurrences[q].size(), serial.size() * 2);
  }
}

TEST(BatchSearcherTest, SharedMemoMatchesMemoOffByteIdentical) {
  // The batch-scoped subtree memo must be invisible in the results: for a
  // randomized workload spanning k = 0..3, hits with the memo on equal
  // hits with it off, bit for bit, at every thread count.
  Workload workload = MakeWorkload(20000, 80, 101);
  const auto expected = SerialResults(workload.searcher, workload.queries);
  for (const int threads : {1, 4}) {
    BatchOptions options;
    options.num_threads = threads;
    options.shared_memo.enabled = true;
    options.shared_memo.min_suffix_len = 6;
    BatchSearcher batch(workload.searcher, options);
    // The memo is batch-scoped (cleared between generations); round 2
    // checks the clear leaves no stale entries behind.
    for (int round = 0; round < 2; ++round) {
      const BatchResult result = batch.Search(workload.queries);
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(result.occurrences[i], expected[i])
            << "query " << i << " threads " << threads << " round " << round;
      }
    }
  }
}

TEST(BatchSearcherTest, SharedMemoDuplicateHeavyCrossValidation) {
  // Randomized cross-validation on the workload shape the memo targets:
  // many queries sharing long suffixes (duplicates and near-duplicates).
  Workload workload = MakeWorkload(15000, 20, 103);
  std::vector<BatchQuery> queries;
  Rng rng(107);
  for (size_t i = 0; i < 150; ++i) {
    BatchQuery query = workload.queries[rng.NextBounded(20)];
    if (i % 3 == 0 && !query.pattern.empty()) {
      // Near-duplicate: perturb the first symbol; the suffix — what the
      // memo keys on — stays shared with the original.
      query.pattern[0] = DnaCode((query.pattern[0] + 1) % kDnaAlphabetSize);
    }
    queries.push_back(std::move(query));
  }
  BatchOptions off;
  off.num_threads = 4;
  BatchSearcher memo_off(workload.searcher, off);
  const BatchResult expected = memo_off.Search(queries);
  BatchOptions on;
  on.num_threads = 4;
  on.shared_memo.enabled = true;
  on.shared_memo.min_suffix_len = 6;
  BatchSearcher memo_on(workload.searcher, on);
  const BatchResult result = memo_on.Search(queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(result.occurrences[i], expected.occurrences[i]) << "query " << i;
  }
}

TEST(BatchSearcherTest, SharedMemoEightWorkerStress) {
  // ThreadSanitizer target: eight workers publishing to and reading from
  // one SubtreeMemo at once, across repeated batches (Clear() between
  // generations runs while the pool is quiescent).
  Workload workload = MakeWorkload(30000, 60, 109);
  std::vector<BatchQuery> queries;
  for (int r = 0; r < 4; ++r) {
    queries.insert(queries.end(), workload.queries.begin(),
                   workload.queries.end());
  }
  const auto expected = SerialResults(workload.searcher, queries);
  BatchOptions options;
  options.num_threads = 8;
  options.shared_memo.enabled = true;
  options.shared_memo.min_suffix_len = 6;
  options.shared_memo.capacity_bytes = size_t{1} << 20;  // force rejects too
  BatchSearcher batch(workload.searcher, options);
  for (int round = 0; round < 2; ++round) {
    const BatchResult result = batch.Search(queries);
    size_t mismatched = 0;
    for (size_t i = 0; i < expected.size(); ++i) {
      if (result.occurrences[i] != expected[i]) ++mismatched;
    }
    EXPECT_EQ(mismatched, 0u) << "round " << round;
  }
}

TEST(BatchSearcherTest, StressManySmallQueriesSharedIndex) {
  // ThreadSanitizer target: a large batch of small queries over one shared
  // index with more workers than cores, repeated so workers cross batch
  // boundaries while others still run.
  Workload workload = MakeWorkload(30000, 300, 71);
  const auto expected = SerialResults(workload.searcher, workload.queries);
  BatchSearcher batch(workload.searcher, {.num_threads = 8});
  for (int round = 0; round < 2; ++round) {
    const BatchResult result = batch.Search(workload.queries);
    size_t mismatched = 0;
    for (size_t i = 0; i < expected.size(); ++i) {
      if (result.occurrences[i] != expected[i]) ++mismatched;
    }
    EXPECT_EQ(mismatched, 0u) << "round " << round;
  }
}

TEST(BatchSearcherTest, BatchEngineNamesCoverBidirectionalAndAuto) {
  EXPECT_EQ(BatchEngineName(BatchEngine::kBidirectional), "bidirectional");
  EXPECT_EQ(BatchEngineName(BatchEngine::kAuto), "auto");
}

TEST(BatchSearcherTest, AutoPickEngineRespectsAvailabilityAndBudget) {
  // Without bidirectional indexes the pick is always Algorithm A.
  for (const size_t m : {8, 36, 100}) {
    for (const int32_t k : {0, 1, 2, 4}) {
      EXPECT_EQ(AutoPickEngine(m, k, false), BatchEngine::kAlgorithmA);
    }
  }
  // Short exact matches stay on Algorithm A (below the measured grid, and
  // the scheme's piece bounds have nothing to cut at k = 0).
  EXPECT_EQ(AutoPickEngine(20, 0, true), BatchEngine::kAlgorithmA);
  // The calibrated bidirectional regime (reads at or above the measured
  // length floor) must route there — (m=100, k=3) is the BENCH_bidir.json
  // win cell kAuto exists for, and the grid shows the scheme walk winning
  // the whole measured range down to (m=24, k=0).
  EXPECT_EQ(AutoPickEngine(100, 3, true), BatchEngine::kBidirectional);
  EXPECT_EQ(AutoPickEngine(24, 0, true), BatchEngine::kBidirectional);
  // Whatever the thresholds, the resolved engine is one of the two Hamming
  // engines (never kAuto itself).
  for (const size_t m : {1, 10, 24, 50, 100, 500}) {
    for (int32_t k = 0; k <= 8; ++k) {
      const BatchEngine pick = AutoPickEngine(m, k, true);
      EXPECT_TRUE(pick == BatchEngine::kAlgorithmA ||
                  pick == BatchEngine::kBidirectional);
    }
  }
}

// Text + Algorithm A searcher + paired bidirectional index over it, with a
// mixed query workload — the bidirectional analogue of MakeWorkload (which
// discards the text the BiFmIndex needs).
struct BidirWorkload {
  std::vector<DnaCode> text;
  KMismatchSearcher searcher;
  BiFmIndex bidir;
  std::vector<BatchQuery> queries;
};

BidirWorkload MakeBidirWorkload(size_t genome_size, size_t query_count,
                                uint64_t seed) {
  GenomeOptions genome_options;
  genome_options.length = genome_size;
  genome_options.repeat_fraction = 0.3;
  genome_options.seed = seed;
  auto genome = GenerateGenome(genome_options).value();
  auto searcher = KMismatchSearcher::Build(genome).value();
  auto bidir = BiFmIndex::Build(genome).value();
  Rng rng(seed + 1);
  std::vector<BatchQuery> queries;
  queries.reserve(query_count);
  for (size_t i = 0; i < query_count; ++i) {
    const int32_t k = static_cast<int32_t>(i % 4);
    const size_t len = 20 + rng.NextBounded(30);
    if (i % 3 == 0) {
      queries.push_back({RandomDna(len, &rng), k});
    } else {
      const size_t pos = rng.NextBounded(genome.size() - len);
      queries.push_back({SampleWithFlips(genome, pos, len, k, &rng), k});
    }
  }
  return {std::move(genome), std::move(searcher), std::move(bidir),
          std::move(queries)};
}

TEST(BatchSearcherTest, BidirectionalEngineMatchesAlgorithmA) {
  BidirWorkload workload = MakeBidirWorkload(15000, 48, 131);
  const auto expected = SerialResults(workload.searcher, workload.queries);
  for (const int threads : {1, 4}) {
    BatchOptions options;
    options.num_threads = threads;
    options.engine = BatchEngine::kBidirectional;
    options.bidir_indexes = {&workload.bidir};
    BatchSearcher batch(workload.searcher, options);
    const BatchResult result = batch.Search(workload.queries);
    ASSERT_EQ(result.occurrences.size(), workload.queries.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(result.occurrences[i], expected[i])
          << "query " << i << " with " << threads << " threads";
    }
    EXPECT_GT(result.stats.extend_calls, 0u);
  }
}

TEST(BatchSearcherTest, AutoEngineMatchesAlgorithmAWithAndWithoutBidir) {
  // kAuto must be transparent: whichever engine each query resolves to,
  // the hits equal the serial Algorithm A results — with bidirectional
  // indexes attached (mixed routing) and without (pure degradation).
  BidirWorkload workload = MakeBidirWorkload(12000, 40, 137);
  const auto expected = SerialResults(workload.searcher, workload.queries);
  for (const bool with_bidir : {true, false}) {
    BatchOptions options;
    options.num_threads = 4;
    options.engine = BatchEngine::kAuto;
    if (with_bidir) options.bidir_indexes = {&workload.bidir};
    BatchSearcher batch(workload.searcher, options);
    const BatchResult result = batch.Search(workload.queries);
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(result.occurrences[i], expected[i])
          << "query " << i << (with_bidir ? " with" : " without") << " bidir";
    }
  }
}

TEST(BatchSearcherTest, EngineBankSupportsResolveAndRunWith) {
  BidirWorkload workload = MakeBidirWorkload(6000, 1, 139);
  const std::vector<const FmIndex*> indexes = {&workload.searcher.index()};

  BatchOptions plain;
  EngineBank bank_without(indexes, plain);
  EXPECT_TRUE(bank_without.Supports(BatchEngine::kAlgorithmA));
  EXPECT_TRUE(bank_without.Supports(BatchEngine::kAuto));
  EXPECT_FALSE(bank_without.Supports(BatchEngine::kBidirectional));

  BatchOptions with_bidir;
  with_bidir.bidir_indexes = {&workload.bidir};
  EngineBank bank(indexes, with_bidir);
  EXPECT_TRUE(bank.Supports(BatchEngine::kBidirectional));

  // Resolve: identity for concrete engines, AutoPickEngine for kAuto.
  Rng rng(140);
  const BatchQuery long_k3{RandomDna(100, &rng), 3};
  EXPECT_EQ(bank.Resolve(BatchEngine::kSTree, long_k3), BatchEngine::kSTree);
  EXPECT_EQ(bank.Resolve(BatchEngine::kAuto, long_k3),
            AutoPickEngine(100, 3, true));
  EXPECT_EQ(bank_without.Resolve(BatchEngine::kAuto, long_k3),
            BatchEngine::kAlgorithmA);

  // RunWith: every Hamming engine answers the same query identically.
  const size_t pos = rng.NextBounded(workload.text.size() - 40);
  const BatchQuery query{SampleWithFlips(workload.text, pos, 40, 2, &rng), 2};
  SearchStats stats;
  const auto via_a = bank.RunWith(BatchEngine::kAlgorithmA, query, 0, &stats);
  EXPECT_EQ(bank.RunWith(BatchEngine::kSTree, query, 0, &stats), via_a);
  EXPECT_EQ(bank.RunWith(BatchEngine::kBidirectional, query, 0, &stats),
            via_a);
  EXPECT_EQ(bank.RunWith(BatchEngine::kAuto, query, 0, &stats), via_a);
}

TEST(BatchSearcherTest, AutoEngineResultCacheKeysByResolvedEngine) {
  // A kAuto pool with the result cache on: the second pass answers from
  // cache (keyed by the *resolved* engine byte) and must be byte-identical,
  // including the aggregate stats, which cached entries replay.
  BidirWorkload workload = MakeBidirWorkload(8000, 30, 149);
  BatchOptions options;
  options.num_threads = 4;
  options.engine = BatchEngine::kAuto;
  options.bidir_indexes = {&workload.bidir};
  options.result_cache.enabled = true;
  BatchSearcher batch(workload.searcher, options);
  const BatchResult cold = batch.Search(workload.queries);
  const BatchResult warm = batch.Search(workload.queries);
  ASSERT_EQ(cold.occurrences, warm.occurrences);
  EXPECT_EQ(cold.stats, warm.stats);
}

}  // namespace
}  // namespace bwtk
