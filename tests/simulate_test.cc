#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/naive_search.h"
#include "simulate/genome_generator.h"
#include "simulate/read_simulator.h"

namespace bwtk {
namespace {

TEST(GenomeGeneratorTest, ProducesRequestedLength) {
  GenomeOptions options;
  options.length = 10000;
  const auto genome = GenerateGenome(options).value();
  EXPECT_EQ(genome.size(), 10000u);
  for (const DnaCode c : genome) EXPECT_LT(c, kDnaAlphabetSize);
}

TEST(GenomeGeneratorTest, DeterministicPerSeed) {
  GenomeOptions options;
  options.length = 5000;
  options.seed = 11;
  EXPECT_EQ(GenerateGenome(options).value(), GenerateGenome(options).value());
  options.seed = 12;
  EXPECT_NE(GenerateGenome(options).value(),
            GenerateGenome(GenomeOptions{.length = 5000, .seed = 11}).value());
}

TEST(GenomeGeneratorTest, RespectsGcContent) {
  GenomeOptions options;
  options.length = 200000;
  options.gc_content = 0.6;
  options.repeat_fraction = 0.0;
  const auto genome = GenerateGenome(options).value();
  size_t gc = 0;
  for (const DnaCode c : genome) gc += (c == 1 || c == 2);
  EXPECT_NEAR(static_cast<double>(gc) / genome.size(), 0.6, 0.01);
}

TEST(GenomeGeneratorTest, RepeatsIncreaseSelfSimilarity) {
  // A genome with repeats must contain many more repeated 16-mers than a
  // uniform one of the same size.
  auto count_duplicate_kmers = [](const std::vector<DnaCode>& genome) {
    std::vector<uint64_t> kmers;
    uint64_t value = 0;
    for (size_t i = 0; i < genome.size(); ++i) {
      value = ((value << 2) | genome[i]) & 0xffffffffULL;  // 16-mer
      if (i >= 15) kmers.push_back(value);
    }
    std::sort(kmers.begin(), kmers.end());
    size_t duplicates = 0;
    for (size_t i = 1; i < kmers.size(); ++i) {
      duplicates += (kmers[i] == kmers[i - 1]);
    }
    return duplicates;
  };
  GenomeOptions repetitive;
  repetitive.length = 100000;
  repetitive.repeat_fraction = 0.5;
  GenomeOptions uniform = repetitive;
  uniform.repeat_fraction = 0.0;
  EXPECT_GT(count_duplicate_kmers(GenerateGenome(repetitive).value()),
            10 * count_duplicate_kmers(GenerateGenome(uniform).value()) + 100);
}

TEST(GenomeGeneratorTest, RejectsBadOptions) {
  EXPECT_FALSE(GenerateGenome(GenomeOptions{.length = 0}).ok());
  EXPECT_FALSE(
      GenerateGenome(GenomeOptions{.length = 10, .gc_content = 1.5}).ok());
  EXPECT_FALSE(
      GenerateGenome(GenomeOptions{.length = 10, .repeat_fraction = 1.0})
          .ok());
}

TEST(Table1PresetsTest, MirrorsPaperSizes) {
  const auto presets = Table1Presets(1.0 / 1024);
  ASSERT_EQ(presets.size(), 5u);
  EXPECT_EQ(presets[0].name, "rat_Rnor6");
  EXPECT_EQ(presets[0].paper_size_bp, 2909701677ULL);
  EXPECT_EQ(presets[4].paper_size_bp, 16728967ULL);
  // Relative ordering preserved and scaling applied.
  for (size_t i = 1; i < presets.size(); ++i) {
    EXPECT_LE(presets[i].scaled_size_bp, presets[i - 1].scaled_size_bp);
  }
  EXPECT_NEAR(static_cast<double>(presets[0].scaled_size_bp),
              2909701677.0 / 1024, 2.0);
}

TEST(ReadSimulatorTest, ProducesRequestedReads) {
  const auto genome =
      GenerateGenome(GenomeOptions{.length = 20000, .seed = 5}).value();
  ReadSimOptions options;
  options.read_length = 150;
  options.read_count = 40;
  const auto reads = SimulateReads(genome, options).value();
  ASSERT_EQ(reads.size(), 40u);
  for (const auto& read : reads) {
    EXPECT_EQ(read.sequence.size(), 150u);
    EXPECT_LE(read.origin + 150, genome.size());
  }
}

TEST(ReadSimulatorTest, GroundTruthIsConsistent) {
  // A forward-strand read must occur at its origin with exactly
  // `substitutions` mismatches.
  const auto genome =
      GenerateGenome(GenomeOptions{.length = 30000, .seed = 9}).value();
  ReadSimOptions options;
  options.read_length = 80;
  options.read_count = 30;
  options.both_strands = false;
  options.mutation_rate = 0.01;
  options.error_rate = 0.02;
  const auto reads = SimulateReads(genome, options).value();
  const NaiveSearch oracle(&genome);
  for (const auto& read : reads) {
    ASSERT_FALSE(read.reverse_strand);
    const auto hits = oracle.Search(read.sequence, read.substitutions);
    const bool found = std::any_of(hits.begin(), hits.end(), [&](const auto& h) {
      return h.position == read.origin && h.mismatches == read.substitutions;
    });
    EXPECT_TRUE(found) << "origin " << read.origin;
  }
}

TEST(ReadSimulatorTest, BothStrandsAppear) {
  const auto genome =
      GenerateGenome(GenomeOptions{.length = 5000, .seed = 2}).value();
  ReadSimOptions options;
  options.read_length = 50;
  options.read_count = 60;
  const auto reads = SimulateReads(genome, options).value();
  const size_t reverse = std::count_if(
      reads.begin(), reads.end(),
      [](const SimulatedRead& r) { return r.reverse_strand; });
  EXPECT_GT(reverse, 10u);
  EXPECT_LT(reverse, 50u);
}

TEST(ReadSimulatorTest, RejectsBadOptions) {
  const auto genome =
      GenerateGenome(GenomeOptions{.length = 100, .seed = 1}).value();
  EXPECT_FALSE(SimulateReads(genome, {.read_length = 0}).ok());
  EXPECT_FALSE(SimulateReads(genome, {.read_length = 101}).ok());
}

TEST(ReadSimulatorTest, FastqExportEncodesGroundTruth) {
  const auto genome =
      GenerateGenome(GenomeOptions{.length = 2000, .seed = 3}).value();
  const auto reads =
      SimulateReads(genome, {.read_length = 60, .read_count = 5}).value();
  const auto records = ToFastq(reads, "sim");
  ASSERT_EQ(records.size(), 5u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].sequence, reads[i].sequence);
    EXPECT_EQ(records[i].quality.size(), reads[i].sequence.size());
    EXPECT_NE(records[i].name.find(std::to_string(reads[i].origin)),
              std::string::npos);
  }
}

}  // namespace
}  // namespace bwtk
