// Sharded index subsystem: the plan's partition/ownership arithmetic, the
// exactness of sharded search against the monolithic index (the seam fuzz —
// reads planted to straddle every core boundary), and the manifest's
// save/load/corruption behavior. The stress case is a ThreadSanitizer
// target: many queries fanned across many shards on many workers.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bidir/bi_fm_index.h"
#include "bwt/fm_index.h"
#include "search/batch_searcher.h"
#include "shard/shard_plan.h"
#include "shard/sharded_index.h"
#include "shard/sharded_searcher.h"
#include "simulate/genome_generator.h"
#include "test_util.h"
#include "util/random.h"

namespace bwtk {
namespace {

using ::bwtk::testing::RandomDna;
using ::bwtk::testing::SampleWithFlips;

std::vector<DnaCode> TestGenome(size_t length, uint64_t seed) {
  GenomeOptions options;
  options.length = length;
  options.repeat_fraction = 0.3;
  options.seed = seed;
  return GenerateGenome(options).value();
}

// ---------------------------------------------------------------- ShardPlan

TEST(ShardPlanTest, PartitionCoversTextExactly) {
  for (const size_t n : {9u, 100u, 101u, 4096u}) {
    for (const size_t shards : {1u, 2u, 3u, 4u, 7u}) {
      if (n < shards) continue;
      const auto plan = ShardPlan::Make(n, shards, 16).value();
      ASSERT_EQ(plan.num_shards(), shards);
      size_t expected_begin = 0;
      for (size_t s = 0; s < shards; ++s) {
        const ShardSlice& slice = plan.slice(s);
        EXPECT_EQ(slice.core_begin, expected_begin) << "n=" << n;
        EXPECT_GT(slice.core_end, slice.core_begin) << "empty core";
        EXPECT_EQ(slice.end, std::min(slice.core_end + 16, n));
        expected_begin = slice.core_end;
      }
      EXPECT_EQ(expected_begin, n) << "cores must partition [0, n)";
      EXPECT_EQ(plan.slice(shards - 1).end, n);
    }
  }
}

TEST(ShardPlanTest, RejectsDegenerateShapes) {
  EXPECT_FALSE(ShardPlan::Make(100, 0, 8).ok());
  EXPECT_FALSE(ShardPlan::Make(3, 4, 8).ok());
  EXPECT_EQ(ShardPlan::Make(3, 4, 8).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(ShardPlan::Make(4, 4, 8).ok());
}

TEST(ShardPlanTest, CoordinateTranslationRoundTrips) {
  const auto plan = ShardPlan::Make(1000, 4, 32).value();
  for (size_t s = 0; s < plan.num_shards(); ++s) {
    const ShardSlice& slice = plan.slice(s);
    for (const size_t global : {slice.core_begin, slice.end - 1}) {
      const size_t local = plan.GlobalToLocal(s, global);
      EXPECT_EQ(plan.LocalToGlobal(s, local), global);
    }
  }
}

TEST(ShardPlanTest, OwnerInvariantExhaustive) {
  // For every position and every window length up to the overlap, the owner
  // returned by the binary search must equal the brute-force lowest shard
  // whose slice contains the window — and must actually contain it.
  const size_t n = 211;  // prime: cores of uneven sizes
  for (const size_t shards : {1u, 2u, 4u, 7u}) {
    for (const size_t overlap : {5u, 17u}) {
      const auto plan = ShardPlan::Make(n, shards, overlap).value();
      for (size_t pos = 0; pos < n; ++pos) {
        EXPECT_LE(plan.slice(plan.ShardOfPosition(pos)).core_begin, pos);
        EXPECT_LT(pos, plan.slice(plan.ShardOfPosition(pos)).core_end);
        for (size_t len = 0; len <= overlap; ++len) {
          const size_t window_end = std::min(pos + len, n);
          size_t brute = shards;  // sentinel: none
          for (size_t s = 0; s < shards; ++s) {
            if (plan.slice(s).core_begin <= pos &&
                plan.slice(s).end >= window_end) {
              brute = s;
              break;
            }
          }
          ASSERT_LT(brute, shards) << "window must have an owner";
          EXPECT_EQ(plan.OwnerShard(pos, len), brute)
              << "pos=" << pos << " len=" << len << " shards=" << shards
              << " overlap=" << overlap;
        }
      }
    }
  }
}

// ------------------------------------------------------------ exact search

// Queries that exercise every seam: for each core boundary, reads planted
// at offsets sweeping from `overlap + max_len` before it to `max_len` after
// it, plus random and planted reads everywhere else.
std::vector<BatchQuery> SeamWorkload(const std::vector<DnaCode>& genome,
                                     const ShardPlan& plan, int32_t max_k,
                                     uint64_t seed) {
  Rng rng(seed);
  const size_t max_len = 40;
  std::vector<BatchQuery> queries;
  for (size_t s = 0; s + 1 < plan.num_shards(); ++s) {
    const size_t boundary = plan.slice(s).core_end;
    const size_t from =
        boundary > plan.overlap() + max_len ? boundary - plan.overlap() - max_len
                                            : 0;
    const size_t to = std::min(boundary + max_len, genome.size() - max_len);
    for (size_t pos = from; pos <= to; pos += 1 + rng.NextBounded(5)) {
      const int32_t k = static_cast<int32_t>(rng.NextBounded(max_k + 1));
      const size_t len = 24 + rng.NextBounded(max_len - 24 + 1);
      queries.push_back(
          {SampleWithFlips(genome, pos, len, k, &rng), k});
    }
  }
  for (size_t i = 0; i < 30; ++i) {
    const int32_t k = static_cast<int32_t>(i % (max_k + 1));
    const size_t len = 24 + rng.NextBounded(16);
    if (i % 3 == 0) {
      queries.push_back({RandomDna(len, &rng), k});
    } else {
      const size_t pos = rng.NextBounded(genome.size() - len);
      queries.push_back({SampleWithFlips(genome, pos, len, k, &rng), k});
    }
  }
  return queries;
}

void ExpectShardedMatchesMonolithic(const std::vector<DnaCode>& genome,
                                    size_t num_shards, BatchEngine engine,
                                    int32_t max_k, uint64_t seed) {
  const auto mono_index = FmIndex::Build(genome).value();
  ShardedIndexOptions shard_options;
  shard_options.num_shards = num_shards;
  shard_options.overlap = 40 + static_cast<size_t>(max_k);  // max_len + k
  const auto sharded =
      ShardedIndex::Build(genome, shard_options).value();
  const std::vector<BatchQuery> queries =
      SeamWorkload(genome, sharded.plan(), max_k, seed);

  BatchOptions options;
  options.num_threads = 4;
  options.engine = engine;
  BatchSearcher mono(&mono_index, options);
  ShardedBatchSearcher router(&sharded, options);

  const BatchResult expected = mono.Search(queries);
  const auto actual = router.Search(queries);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  ASSERT_EQ(actual->occurrences.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(actual->occurrences[i], expected.occurrences[i])
        << "query " << i << " engine " << BatchEngineName(engine)
        << " shards " << num_shards;
  }
}

TEST(ShardedSearchTest, SeamFuzzAlgorithmA) {
  const auto genome = TestGenome(12000, 101);
  for (const size_t shards : {2u, 4u, 7u}) {
    ExpectShardedMatchesMonolithic(genome, shards, BatchEngine::kAlgorithmA,
                                   /*max_k=*/5, 7 * shards);
  }
}

TEST(ShardedSearchTest, SeamFuzzSTree) {
  const auto genome = TestGenome(12000, 103);
  for (const size_t shards : {2u, 4u, 7u}) {
    ExpectShardedMatchesMonolithic(genome, shards, BatchEngine::kSTree,
                                   /*max_k=*/5, 11 * shards);
  }
}

TEST(ShardedSearchTest, SeamFuzzKError) {
  // The Levenshtein walk's state space grows steeply with k; k <= 2 keeps
  // the fuzz fast while still exercising insertions/deletions across seams
  // (the ownership window is pattern length + k there).
  const auto genome = TestGenome(8000, 107);
  for (const size_t shards : {2u, 4u, 7u}) {
    ExpectShardedMatchesMonolithic(genome, shards, BatchEngine::kKError,
                                   /*max_k=*/2, 13 * shards);
  }
}

TEST(ShardedSearchTest, SeamDuplicatesAreCountedAndRemoved) {
  // An exact read planted right after a core boundary lies in the previous
  // shard's overlap AND the next shard's core: both find it, the ownership
  // rule keeps exactly one copy and counts the other.
  const auto genome = TestGenome(4000, 109);
  ShardedIndexOptions shard_options;
  shard_options.num_shards = 2;
  shard_options.overlap = 48;
  const auto sharded = ShardedIndex::Build(genome, shard_options).value();
  const size_t boundary = sharded.plan().slice(0).core_end;
  const std::vector<BatchQuery> queries = {
      {std::vector<DnaCode>(genome.begin() + boundary,
                            genome.begin() + boundary + 32),
       0}};
  ShardedBatchSearcher router(&sharded, {.num_threads = 2});
  const auto result = router.Search(queries);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->seam_hits_deduped, 1u);
  // The planted position must appear exactly once, and the de-duplicated
  // list must be free of repeats altogether.
  const std::vector<Occurrence>& hits = result->occurrences[0];
  size_t found = 0;
  for (size_t i = 0; i < hits.size(); ++i) {
    if (hits[i].position == boundary) ++found;
    if (i > 0) EXPECT_NE(hits[i], hits[i - 1]) << "duplicate survived";
  }
  EXPECT_EQ(found, 1u);
}

TEST(ShardedSearchTest, RejectsWindowLargerThanOverlap) {
  const auto genome = TestGenome(2000, 113);
  ShardedIndexOptions shard_options;
  shard_options.num_shards = 2;
  shard_options.overlap = 16;
  const auto sharded = ShardedIndex::Build(genome, shard_options).value();
  ShardedBatchSearcher router(&sharded, {.num_threads = 1});
  // Pattern of 17 > overlap 16: must refuse, not silently drop seam hits.
  std::vector<BatchQuery> too_long = {
      {std::vector<DnaCode>(17, DnaCode{0}), 0}};
  const auto result = router.Search(too_long);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  // kerror widens the window by k: 14 + 3 > 16 must also be rejected.
  BatchOptions kerror_options;
  kerror_options.engine = BatchEngine::kKError;
  ShardedBatchSearcher kerror_router(&sharded, kerror_options);
  std::vector<BatchQuery> widened = {
      {std::vector<DnaCode>(14, DnaCode{0}), 3}};
  const auto kerror_result = kerror_router.Search(widened);
  ASSERT_FALSE(kerror_result.ok());
  EXPECT_EQ(kerror_result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardedSearchTest, AsciiBatchCountsFailedQueries) {
  const auto genome = TestGenome(2000, 127);
  ShardedIndexOptions shard_options;
  shard_options.num_shards = 2;
  shard_options.overlap = 32;
  const auto sharded = ShardedIndex::Build(genome, shard_options).value();
  ShardedBatchSearcher router(&sharded, {.num_threads = 2});
  std::string planted(genome.begin() + 100, genome.begin() + 120);
  for (char& c : planted) c = CodeToChar(static_cast<DnaCode>(c));
  const auto result = router.Search({planted, "not-dna"}, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->failed_queries, 1u);
  EXPECT_FALSE(result->occurrences[0].empty());
  EXPECT_TRUE(result->occurrences[1].empty());
}

TEST(ShardedSearchTest, ExactShortcutByteIdenticalToFullFanout) {
  // k = 0 point lookups take the dispatch-thread shortcut (one backward
  // search + locate per shard) instead of fanning (query, shard) tasks.
  // The hits must be byte-identical either way, including across seams.
  const auto genome = TestGenome(12000, 139);
  ShardedIndexOptions shard_options;
  shard_options.num_shards = 4;
  shard_options.overlap = 48;
  const auto sharded = ShardedIndex::Build(genome, shard_options).value();
  // Exact seam-straddling reads plus random probes, all k = 0, with a few
  // k > 0 queries mixed in to check routing stays per-query.
  std::vector<BatchQuery> queries = SeamWorkload(genome, sharded.plan(),
                                                 /*max_k=*/0, 149);
  Rng rng(151);
  for (size_t i = 0; i < 10; ++i) {
    const size_t len = 24 + rng.NextBounded(8);
    const size_t pos = rng.NextBounded(genome.size() - len);
    queries.push_back({SampleWithFlips(genome, pos, len, 2, &rng), 2});
  }

  BatchOptions with_shortcut;
  with_shortcut.num_threads = 2;
  BatchOptions without_shortcut;
  without_shortcut.num_threads = 2;
  without_shortcut.sharded_exact_shortcut = false;
  ShardedBatchSearcher fast(&sharded, with_shortcut);
  ShardedBatchSearcher slow(&sharded, without_shortcut);
  const auto fast_result = fast.Search(queries);
  const auto slow_result = slow.Search(queries);
  ASSERT_TRUE(fast_result.ok() && slow_result.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(fast_result->occurrences[i], slow_result->occurrences[i])
        << "query " << i << " k=" << queries[i].k;
  }
  EXPECT_EQ(fast_result->seam_hits_deduped, slow_result->seam_hits_deduped);
}

TEST(ShardedSearchTest, ResultCacheServesRepeatsBeforeFanout) {
  const auto genome = TestGenome(8000, 157);
  ShardedIndexOptions shard_options;
  shard_options.num_shards = 3;
  shard_options.overlap = 48;
  const auto sharded = ShardedIndex::Build(genome, shard_options).value();
  Rng rng(163);
  std::vector<BatchQuery> queries;
  for (size_t i = 0; i < 20; ++i) {
    const int32_t k = static_cast<int32_t>(i % 3);
    const size_t len = 20 + rng.NextBounded(16);
    const size_t pos = rng.NextBounded(genome.size() - len);
    queries.push_back({SampleWithFlips(genome, pos, len, k, &rng), k});
  }

  BatchOptions options;
  options.num_threads = 2;
  options.result_cache.enabled = true;
  options.result_cache_instance =
      std::make_shared<ResultCache>(options.result_cache);
  ShardedBatchSearcher cached(&sharded, options);
  ShardedBatchSearcher uncached(&sharded, {.num_threads = 2});

  const auto expected = uncached.Search(queries);
  const auto cold = cached.Search(queries);
  const auto warm = cached.Search(queries);
  ASSERT_TRUE(expected.ok() && cold.ok() && warm.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(cold->occurrences[i], expected->occurrences[i]) << "query " << i;
    EXPECT_EQ(warm->occurrences[i], expected->occurrences[i]) << "query " << i;
  }
  // The warm pass was answered from the cache — including the stored seam
  // counts, which must match the cold pass exactly.
  EXPECT_EQ(warm->seam_hits_deduped, cold->seam_hits_deduped);
  const ResultCache::CacheStats stats =
      options.result_cache_instance->Stats();
  EXPECT_GE(stats.hits, queries.size());
}

TEST(ShardedSearchTest, StressManyQueriesManyShards) {
  // ThreadSanitizer target: 7 shards × many queries on 8 workers, two
  // rounds through one pool.
  const auto genome = TestGenome(16000, 131);
  const auto mono_index = FmIndex::Build(genome).value();
  ShardedIndexOptions shard_options;
  shard_options.num_shards = 7;
  shard_options.overlap = 45;
  const auto sharded = ShardedIndex::Build(genome, shard_options).value();

  Rng rng(17);
  std::vector<BatchQuery> queries;
  for (size_t i = 0; i < 200; ++i) {
    const int32_t k = static_cast<int32_t>(i % 4);
    const size_t len = 20 + rng.NextBounded(20);
    const size_t pos = rng.NextBounded(genome.size() - len);
    queries.push_back({SampleWithFlips(genome, pos, len, k, &rng), k});
  }
  BatchSearcher mono(&mono_index, {.num_threads = 8});
  ShardedBatchSearcher router(&sharded, {.num_threads = 8});
  const BatchResult expected = mono.Search(queries);
  for (int round = 0; round < 2; ++round) {
    const auto result = router.Search(queries);
    ASSERT_TRUE(result.ok());
    size_t mismatched = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
      if (result->occurrences[i] != expected.occurrences[i]) ++mismatched;
    }
    EXPECT_EQ(mismatched, 0u) << "round " << round;
  }
}

// ---------------------------------------------------------------- save/load

TEST(ShardedIndexTest, SaveLoadRoundTrip) {
  const auto genome = TestGenome(6000, 137);
  ShardedIndexOptions shard_options;
  shard_options.num_shards = 3;
  shard_options.overlap = 40;
  shard_options.index_options.prefix_table_q = 4;
  const auto built = ShardedIndex::Build(genome, shard_options).value();
  const std::string prefix = ::testing::TempDir() + "/bwtk_shard_roundtrip";
  ASSERT_TRUE(built.Save(prefix).ok());

  const auto loaded_result = ShardedIndex::Load(prefix);
  ASSERT_TRUE(loaded_result.ok()) << loaded_result.status().ToString();
  const ShardedIndex& loaded = loaded_result.value();
  EXPECT_EQ(loaded.plan(), built.plan());
  EXPECT_EQ(loaded.num_shards(), 3u);
  // The prefix table must survive the trip (format v2 payload per shard).
  EXPECT_EQ(loaded.shard(0).prefix_table_q(), 4u);

  // Loaded and built groups must answer identically.
  Rng rng(23);
  std::vector<BatchQuery> queries;
  for (size_t i = 0; i < 20; ++i) {
    const size_t len = 20 + rng.NextBounded(16);
    const size_t pos = rng.NextBounded(genome.size() - len);
    queries.push_back(
        {SampleWithFlips(genome, pos, len, 2, &rng), 2});
  }
  ShardedBatchSearcher built_router(&built, {.num_threads = 2});
  ShardedBatchSearcher loaded_router(&loaded, {.num_threads = 2});
  const auto from_built = built_router.Search(queries);
  const auto from_loaded = loaded_router.Search(queries);
  ASSERT_TRUE(from_built.ok());
  ASSERT_TRUE(from_loaded.ok());
  EXPECT_EQ(from_built->occurrences, from_loaded->occurrences);
}

TEST(ShardedIndexTest, LoadRejectsMissingAndCorruptFiles) {
  const auto genome = TestGenome(3000, 139);
  ShardedIndexOptions shard_options;
  shard_options.num_shards = 2;
  shard_options.overlap = 32;
  const auto built = ShardedIndex::Build(genome, shard_options).value();
  const std::string prefix = ::testing::TempDir() + "/bwtk_shard_corrupt";
  ASSERT_TRUE(built.Save(prefix).ok());

  // Missing manifest.
  const auto missing = ShardedIndex::Load(prefix + "_nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);

  // Bad magic: stamp garbage over the first word.
  {
    std::fstream f(ShardManifestPath(prefix),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.write("XXXX", 4);
  }
  const auto bad_magic = ShardedIndex::Load(prefix);
  ASSERT_FALSE(bad_magic.ok());
  EXPECT_EQ(bad_magic.status().code(), StatusCode::kCorruption);

  // Restore, then truncate the manifest mid-slice-table.
  ASSERT_TRUE(built.Save(prefix).ok());
  {
    std::ifstream in(ShardManifestPath(prefix), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(ShardManifestPath(prefix),
                      std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  const auto truncated = ShardedIndex::Load(prefix);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kCorruption);

  // Restore, then remove one shard file.
  ASSERT_TRUE(built.Save(prefix).ok());
  ASSERT_EQ(std::remove(ShardFilePath(prefix, 1).c_str()), 0);
  const auto no_shard = ShardedIndex::Load(prefix);
  ASSERT_FALSE(no_shard.ok());
  EXPECT_EQ(no_shard.status().code(), StatusCode::kIoError);

  // Restore, then truncate a shard's index file: the FM-index loader must
  // surface Corruption through the shard loader.
  ASSERT_TRUE(built.Save(prefix).ok());
  {
    std::ifstream in(ShardFilePath(prefix, 0), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(ShardFilePath(prefix, 0),
                      std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() - 16));
  }
  const auto bad_shard = ShardedIndex::Load(prefix);
  ASSERT_FALSE(bad_shard.ok());
  EXPECT_EQ(bad_shard.status().code(), StatusCode::kCorruption);
}

TEST(ShardedIndexTest, ParallelBuildMatchesSerialBuild) {
  const auto genome = TestGenome(6000, 149);
  ShardedIndexOptions serial_options;
  serial_options.num_shards = 4;
  serial_options.overlap = 40;
  serial_options.num_build_threads = 1;
  ShardedIndexOptions parallel_options = serial_options;
  parallel_options.num_build_threads = 4;
  const auto serial = ShardedIndex::Build(genome, serial_options).value();
  const auto parallel = ShardedIndex::Build(genome, parallel_options).value();
  ASSERT_EQ(serial.plan(), parallel.plan());
  for (size_t s = 0; s < serial.num_shards(); ++s) {
    EXPECT_EQ(serial.shard(s).text_size(), parallel.shard(s).text_size());
  }
  std::vector<BatchQuery> queries = {
      {std::vector<DnaCode>(genome.begin() + 50, genome.begin() + 80), 1}};
  ShardedBatchSearcher serial_router(&serial, {.num_threads = 1});
  ShardedBatchSearcher parallel_router(&parallel, {.num_threads = 1});
  EXPECT_EQ(serial_router.Search(queries)->occurrences,
            parallel_router.Search(queries)->occurrences);
}

// --------------------------------------------------- bidirectional sharding

// Per-shard bidirectional indexes, each over its shard's slice of the
// genome (core + overlap), in shard order — the layout
// BatchOptions::bidir_indexes requires for a ShardedBatchSearcher.
std::vector<BiFmIndex> BuildShardBidirIndexes(
    const std::vector<DnaCode>& genome, const ShardedIndex& sharded) {
  std::vector<BiFmIndex> out;
  out.reserve(sharded.num_shards());
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    const ShardSlice& slice = sharded.plan().slice(s);
    const std::vector<DnaCode> text(genome.begin() + slice.core_begin,
                                    genome.begin() + slice.end);
    out.push_back(BiFmIndex::Build(text).value());
  }
  return out;
}

void ExpectShardedBidirMatchesMonolithic(BatchEngine engine, uint64_t seed) {
  const auto genome = TestGenome(10000, seed);
  const auto mono_index = FmIndex::Build(genome).value();
  const auto mono_bidir = BiFmIndex::Build(genome).value();
  ShardedIndexOptions shard_options;
  shard_options.num_shards = 4;
  shard_options.overlap = 45;
  const auto sharded = ShardedIndex::Build(genome, shard_options).value();
  const std::vector<BiFmIndex> shard_bidirs =
      BuildShardBidirIndexes(genome, sharded);
  const std::vector<BatchQuery> queries =
      SeamWorkload(genome, sharded.plan(), /*max_k=*/4, seed + 1);

  BatchOptions mono_options;
  mono_options.num_threads = 4;
  mono_options.engine = engine;
  mono_options.bidir_indexes = {&mono_bidir};
  BatchOptions sharded_options = mono_options;
  sharded_options.bidir_indexes.clear();
  for (const BiFmIndex& bidir : shard_bidirs) {
    sharded_options.bidir_indexes.push_back(&bidir);
  }

  BatchSearcher mono(&mono_index, mono_options);
  ShardedBatchSearcher router(&sharded, sharded_options);
  const BatchResult expected = mono.Search(queries);
  const auto actual = router.Search(queries);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  ASSERT_EQ(actual->occurrences.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(actual->occurrences[i], expected.occurrences[i])
        << "query " << i << " engine " << BatchEngineName(engine);
  }
}

TEST(ShardedSearchTest, SeamFuzzBidirectional) {
  ExpectShardedBidirMatchesMonolithic(BatchEngine::kBidirectional, 211);
}

TEST(ShardedSearchTest, SeamFuzzAutoEngine) {
  // kAuto routes per query; seam handling must be exact whichever engine
  // each query resolves to (the ownership window is the pattern length for
  // both Hamming engines).
  ExpectShardedBidirMatchesMonolithic(BatchEngine::kAuto, 223);
}

}  // namespace
}  // namespace bwtk
