// Per-query tracing: span bookkeeping on Trace, deterministic sampling and
// the slow-query heap in TraceSink, thread-local activation, engine
// integration (spans + the per-depth node profile), BatchSearcher wiring,
// Chrome trace-event export, and the flat-totals JSON round trip. Also the
// JsonWriter escaping edge cases the exporter depends on.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "search/batch_searcher.h"
#include "search/searcher.h"
#include "search/stree_search.h"
#include "simulate/genome_generator.h"
#include "test_util.h"
#include "util/random.h"

namespace bwtk {
namespace {

using ::bwtk::testing::SampleWithFlips;

// --- JsonEscape edge cases ------------------------------------------------

TEST(JsonEscapeTest, ControlCharactersAndQuoting) {
  EXPECT_EQ(obs::JsonEscape("plain"), "plain");
  EXPECT_EQ(obs::JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  // Other control bytes become \u00XX.
  EXPECT_EQ(obs::JsonEscape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(obs::JsonEscape(std::string("\x1f", 1)), "\\u001f");
  // NUL embedded mid-string must not truncate.
  EXPECT_EQ(obs::JsonEscape(std::string("a\0b", 3)), "a\\u0000b");
  EXPECT_EQ(obs::JsonEscape(""), "");
}

TEST(JsonEscapeTest, NonAsciiBytesPassThrough) {
  // UTF-8 multibyte sequences are valid JSON string content as-is.
  const std::string utf8 = "g\xc3\xa9nome";
  EXPECT_EQ(obs::JsonEscape(utf8), utf8);
}

// --- Trace span/profile bookkeeping ---------------------------------------

TEST(TraceTest, SpanNestingDepths) {
  obs::Trace trace;
  const size_t outer = trace.OpenSpan("outer");
  const size_t inner = trace.OpenSpan("inner");
  trace.CloseSpan(inner);
  trace.CloseSpan(outer);
  ASSERT_EQ(trace.spans.size(), 2u);
  EXPECT_EQ(trace.spans[0].name, "outer");
  EXPECT_EQ(trace.spans[0].depth, 0u);
  EXPECT_EQ(trace.spans[1].name, "inner");
  EXPECT_EQ(trace.spans[1].depth, 1u);
  // A sibling after the nested pair reopens at depth 1.
  const size_t second = trace.OpenSpan("second");
  trace.CloseSpan(second);
  EXPECT_EQ(trace.spans[2].depth, 0u);
}

TEST(TraceTest, SpanCapCountsDrops) {
  obs::Trace trace;
  for (size_t i = 0; i < obs::kTraceMaxSpans + 10; ++i) {
    trace.CloseSpan(trace.OpenSpan("s"));
  }
  EXPECT_EQ(trace.spans.size(), obs::kTraceMaxSpans);
  EXPECT_EQ(trace.dropped_spans, 10u);
}

TEST(TraceTest, NodeProfileAndDerivedQuantities) {
  obs::Trace trace;
  EXPECT_EQ(trace.NodesExpanded(), 0u);
  EXPECT_EQ(trace.MaxDepth(), 0u);
  trace.CountNode(0);
  trace.CountNode(3);
  trace.CountNode(3);
  ASSERT_EQ(trace.nodes_per_depth.size(), 4u);
  EXPECT_EQ(trace.nodes_per_depth[0], 1u);
  EXPECT_EQ(trace.nodes_per_depth[3], 2u);
  EXPECT_EQ(trace.NodesExpanded(), 3u);
  EXPECT_EQ(trace.MaxDepth(), 3u);
}

// --- Sink: sampling, slow-query heap, caps --------------------------------

TEST(TraceSinkTest, SamplingIsDeterministicAndRateShaped) {
  obs::TraceSink sink({.sample_rate = 0.25});
  size_t sampled = 0;
  const size_t n = 4000;
  for (uint64_t id = 0; id < n; ++id) {
    if (sink.ShouldSample(id)) ++sampled;
    // Same id, same answer, every time.
    EXPECT_EQ(sink.ShouldSample(id), sink.ShouldSample(id));
  }
  // Hash-threshold sampling: expect ~25% +- a generous margin.
  EXPECT_GT(sampled, n / 8);
  EXPECT_LT(sampled, n / 2);

  obs::TraceSink all({.sample_rate = 1.0});
  obs::TraceSink none({.sample_rate = 0.0});
  for (uint64_t id = 0; id < 100; ++id) {
    EXPECT_TRUE(all.ShouldSample(id));
    EXPECT_FALSE(none.ShouldSample(id));
  }
}

TEST(TraceSinkTest, SeedDrawsADifferentSample) {
  obs::TraceSink a({.sample_rate = 0.3, .sample_seed = 1});
  obs::TraceSink b({.sample_rate = 0.3, .sample_seed = 2});
  bool differs = false;
  for (uint64_t id = 0; id < 1000 && !differs; ++id) {
    differs = a.ShouldSample(id) != b.ShouldSample(id);
  }
  EXPECT_TRUE(differs);
}

obs::Trace MakeTrace(uint64_t id, uint64_t wall_ns) {
  obs::Trace trace;
  trace.trace_id = id;
  trace.engine = "test";
  trace.wall_ns = wall_ns;
  return trace;
}

TEST(TraceSinkTest, SlowLogKeepsTheWorstN) {
  obs::TraceSink sink({.sample_rate = 1.0, .slow_trace_count = 3});
  // Offer wall times 10, 20, ..., 100 in shuffled-ish order.
  const uint64_t walls[] = {30, 100, 10, 70, 50, 90, 20, 80, 60, 40};
  uint64_t id = 0;
  for (const uint64_t w : walls) sink.Offer(MakeTrace(id++, w));
  const auto slow = sink.SlowTraces();
  ASSERT_EQ(slow.size(), 3u);
  EXPECT_EQ(slow[0].wall_ns, 100u);
  EXPECT_EQ(slow[1].wall_ns, 90u);
  EXPECT_EQ(slow[2].wall_ns, 80u);
  EXPECT_EQ(sink.traces_offered(), 10u);
  // Sampled list keeps everything (under the cap), sorted by id.
  const auto sampled = sink.SampledTraces();
  ASSERT_EQ(sampled.size(), 10u);
  for (size_t i = 1; i < sampled.size(); ++i) {
    EXPECT_LT(sampled[i - 1].trace_id, sampled[i].trace_id);
  }
}

TEST(TraceSinkTest, SampledListCapCountsDropsButSlowLogStillSees) {
  obs::TraceSink sink(
      {.sample_rate = 1.0, .slow_trace_count = 2, .max_sampled_traces = 4});
  for (uint64_t id = 0; id < 10; ++id) {
    sink.Offer(MakeTrace(id, /*wall_ns=*/id * 100));
  }
  EXPECT_EQ(sink.SampledTraces().size(), 4u);
  EXPECT_EQ(sink.traces_dropped(), 6u);
  // The slowest traces arrived after the cap filled; the slow log must
  // still have caught them.
  const auto slow = sink.SlowTraces();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].wall_ns, 900u);
  EXPECT_EQ(slow[1].wall_ns, 800u);
}

TEST(TraceSinkTest, AuxTracesStayOutOfSlowLog) {
  obs::TraceSink sink({.sample_rate = 1.0, .slow_trace_count = 2});
  sink.OfferAux(MakeTrace(1, /*wall_ns=*/1000000));
  sink.Offer(MakeTrace(2, /*wall_ns=*/5));
  const auto slow = sink.SlowTraces();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0].trace_id, 2u);
  EXPECT_EQ(sink.AuxTraces().size(), 1u);
  EXPECT_EQ(sink.SampledTraces().size(), 1u);
}

TEST(TraceSinkTest, ClearEmptiesEverything) {
  obs::TraceSink sink({.sample_rate = 1.0});
  sink.Offer(MakeTrace(1, 10));
  sink.OfferAux(MakeTrace(2, 10));
  sink.Clear();
  EXPECT_TRUE(sink.SampledTraces().empty());
  EXPECT_TRUE(sink.SlowTraces().empty());
  EXPECT_TRUE(sink.AuxTraces().empty());
  EXPECT_EQ(sink.traces_offered(), 0u);
}

// --- Activation -----------------------------------------------------------

TEST(TraceActivationTest, ScopedActivationRestoresPrevious) {
  EXPECT_EQ(obs::ActiveTrace(), nullptr);
  obs::Trace outer;
  {
    obs::ScopedTraceActivation activate_outer(&outer);
    EXPECT_EQ(obs::ActiveTrace(), &outer);
    obs::Trace inner;
    {
      obs::ScopedTraceActivation activate_inner(&inner);
      EXPECT_EQ(obs::ActiveTrace(), &inner);
    }
    EXPECT_EQ(obs::ActiveTrace(), &outer);
  }
  EXPECT_EQ(obs::ActiveTrace(), nullptr);
}

TEST(TraceActivationTest, ScopedQueryTraceActivatesOnlyWhenSampled) {
  obs::TraceSink sink({.sample_rate = 1.0});
  {
    obs::ScopedQueryTrace qt(&sink, 7, "engine", 2, 30);
    EXPECT_TRUE(qt.active());
    ASSERT_NE(obs::ActiveTrace(), nullptr);
    EXPECT_EQ(obs::ActiveTrace()->trace_id, 7u);
    obs::ActiveTrace()->CountNode(1);
    SearchStats stats;
    stats.stree_nodes = 5;
    qt.Finish(3, stats);
  }
  EXPECT_EQ(obs::ActiveTrace(), nullptr);
  const auto sampled = sink.SampledTraces();
  ASSERT_EQ(sampled.size(), 1u);
  EXPECT_EQ(sampled[0].engine, "engine");
  EXPECT_EQ(sampled[0].k, 2);
  EXPECT_EQ(sampled[0].pattern_length, 30u);
  EXPECT_EQ(sampled[0].matches, 3u);
  EXPECT_EQ(sampled[0].stats.stree_nodes, 5u);
  EXPECT_EQ(sampled[0].NodesExpanded(), 1u);

  {
    obs::ScopedQueryTrace qt(nullptr, 7, "engine", 2, 30);
    EXPECT_FALSE(qt.active());
    EXPECT_EQ(obs::ActiveTrace(), nullptr);
  }
  obs::TraceSink never({.sample_rate = 0.0});
  {
    obs::ScopedQueryTrace qt(&never, 7, "engine", 2, 30);
    EXPECT_FALSE(qt.active());
    EXPECT_EQ(obs::ActiveTrace(), nullptr);
  }
  EXPECT_EQ(never.traces_offered(), 0u);
}

// --- Engine integration ---------------------------------------------------

class TraceEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GenomeOptions options;
    options.length = 20000;
    options.repeat_fraction = 0.3;
    options.seed = 99;
    genome_ = GenerateGenome(options).value();
    searcher_ = std::make_unique<KMismatchSearcher>(
        KMismatchSearcher::Build(genome_).value());
  }

  std::vector<DnaCode> genome_;
  std::unique_ptr<KMismatchSearcher> searcher_;
};

TEST_F(TraceEngineTest, AlgorithmAFillsSpansAndDepthProfile) {
  Rng rng(5);
  const auto pattern = SampleWithFlips(genome_, 1000, 40, 2, &rng);
  obs::TraceSink sink({.sample_rate = 1.0});
  std::vector<Occurrence> traced;
  {
    obs::ScopedQueryTrace qt(&sink, 1, "algorithm_a", 2, pattern.size());
    SearchStats stats;
    traced = searcher_->Search(pattern, 2, &stats);
    qt.Finish(traced.size(), stats);
  }
  const auto sampled = sink.SampledTraces();
  ASSERT_EQ(sampled.size(), 1u);
  const obs::Trace& trace = sampled[0];
  if (BWTK_METRICS_ENABLED) {
    // Expansions were recorded along the descent (depth-m completions via a
    // *derived* chain are not expansions, so MaxDepth may sit below m).
    EXPECT_GT(trace.MaxDepth(), 0u);
    EXPECT_LE(trace.MaxDepth(), pattern.size());
    EXPECT_GT(trace.NodesExpanded(), 0u);
    EXPECT_EQ(trace.NodesExpanded(), trace.stats.stree_nodes);
    std::set<std::string_view> names;
    for (const auto& span : trace.spans) names.insert(span.name);
    EXPECT_TRUE(names.count("tree_traversal"));
    EXPECT_TRUE(names.count("locate"));
  }
  // Tracing must not change results.
  EXPECT_EQ(traced, searcher_->Search(pattern, 2));
}

TEST_F(TraceEngineTest, STreeSearchTracesToo) {
  Rng rng(6);
  const auto pattern = SampleWithFlips(genome_, 500, 25, 1, &rng);
  obs::TraceSink sink({.sample_rate = 1.0});
  const STreeSearch engine(&searcher_->index());
  {
    obs::ScopedQueryTrace qt(&sink, 1, "stree", 1, pattern.size());
    SearchStats stats;
    const auto hits = engine.Search(pattern, 1, &stats);
    qt.Finish(hits.size(), stats);
  }
  const auto sampled = sink.SampledTraces();
  ASSERT_EQ(sampled.size(), 1u);
  if (BWTK_METRICS_ENABLED) {
    EXPECT_GT(sampled[0].NodesExpanded(), 0u);
    EXPECT_EQ(sampled[0].NodesExpanded(), sampled[0].stats.stree_nodes);
  }
}

TEST_F(TraceEngineTest, BatchSearcherSamplesEverythingAtRateOne) {
  Rng rng(7);
  std::vector<BatchQuery> queries;
  for (size_t i = 0; i < 16; ++i) {
    const size_t pos = 100 + i * 400;
    queries.push_back(
        {SampleWithFlips(genome_, pos, 30, static_cast<int32_t>(i % 3), &rng),
         static_cast<int32_t>(i % 3)});
  }

  BatchOptions plain_options;
  plain_options.num_threads = 2;
  BatchSearcher plain(*searcher_, plain_options);
  EXPECT_EQ(plain.trace_sink(), nullptr);
  const BatchResult expected = plain.Search(queries);

  BatchOptions traced_options;
  traced_options.num_threads = 2;
  traced_options.trace_sample_rate = 1.0;
  traced_options.slow_trace_count = 4;
  BatchSearcher traced(*searcher_, traced_options);
  const BatchResult result = traced.Search(queries);

  // Tracing must not perturb results.
  EXPECT_EQ(result.occurrences, expected.occurrences);

  const obs::TraceSink* sink = traced.trace_sink();
  if (!BWTK_METRICS_ENABLED) {
    EXPECT_EQ(sink, nullptr);
    return;
  }
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->traces_offered(), queries.size());
  const auto sampled = sink->SampledTraces();
  ASSERT_EQ(sampled.size(), queries.size());
  // Trace ids are (batch 0) query indices, in order.
  for (size_t i = 0; i < sampled.size(); ++i) {
    EXPECT_EQ(sampled[i].trace_id, i);
    EXPECT_EQ(sampled[i].engine, "algorithm_a");
    EXPECT_EQ(sampled[i].k, queries[i].k);
    EXPECT_EQ(sampled[i].matches, expected.occurrences[i].size());
  }
  EXPECT_EQ(sink->SlowTraces().size(), 4u);
  // One aux lane per worker that participated in the batch.
  const auto aux = sink->AuxTraces();
  EXPECT_GE(aux.size(), 1u);
  EXPECT_LE(aux.size(), 2u);
  for (const auto& lane : aux) {
    EXPECT_EQ(lane.engine, "batch_worker");
    ASSERT_EQ(lane.spans.size(), 2u);
    EXPECT_EQ(lane.spans[0].name, "queue_wait");
    EXPECT_EQ(lane.spans[1].name, "worker_search");
  }

  // A second batch gets a distinct id space (batch_seq high bits).
  traced.Search(queries);
  EXPECT_EQ(sink->traces_offered(), 2 * queries.size());
  const auto after = sink->SampledTraces();
  ASSERT_EQ(after.size(), 2 * queries.size());
  EXPECT_EQ(after[queries.size()].trace_id, uint64_t{1} << 32);
}

// --- Export ---------------------------------------------------------------

TEST(TraceExportTest, TotalsRoundTripThroughFlatParser) {
  obs::Trace trace = MakeTrace(42, 12345);
  trace.k = 3;
  trace.pattern_length = 50;
  trace.matches = 7;
  trace.prefix_table_hits = 9;
  trace.CountNode(2);
  trace.CountNode(2);
  trace.CountNode(5);
  trace.CloseSpan(trace.OpenSpan("a"));
  trace.CloseSpan(trace.OpenSpan("b"));

  const std::string json = obs::TraceTotalsToJson(trace);
  auto parsed = obs::ParseFlatUint64Object(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::map<std::string, uint64_t> fields(parsed->begin(), parsed->end());
  EXPECT_EQ(fields.at("trace_id"), 42u);
  EXPECT_EQ(fields.at("k"), 3u);
  EXPECT_EQ(fields.at("pattern_length"), 50u);
  EXPECT_EQ(fields.at("wall_ns"), 12345u);
  EXPECT_EQ(fields.at("matches"), 7u);
  EXPECT_EQ(fields.at("prefix_table_hits"), 9u);
  EXPECT_EQ(fields.at("nodes_expanded"), 3u);
  EXPECT_EQ(fields.at("max_depth"), 5u);
  EXPECT_EQ(fields.at("spans"), 2u);
  EXPECT_EQ(fields.at("dropped_spans"), 0u);
}

TEST(TraceExportTest, TraceFileJsonHasChromeShape) {
  obs::TraceSink sink({.sample_rate = 1.0, .slow_trace_count = 2});
  obs::Trace trace = MakeTrace(1, 500);
  trace.begin_ns = 1000;
  trace.spans.push_back({"tree_traversal", 1100, 300, 0});
  sink.Offer(std::move(trace));
  sink.OfferAux(MakeTrace(0xFFFF0000ULL, 800));

  const std::string json = obs::TraceFileJson(sink);
  // Structural markers every Chrome-trace viewer needs.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"tree_traversal\""), std::string::npos);
  // The bwtk extension block with summaries and the slow log.
  EXPECT_NE(json.find("\"bwtk\":{"), std::string::npos);
  EXPECT_NE(json.find("\"summaries\":["), std::string::npos);
  EXPECT_NE(json.find("\"slow_queries\":["), std::string::npos);
  EXPECT_NE(json.find("\"nodes_per_depth\""), std::string::npos);
}

TEST(TraceExportTest, WriteTraceFileRoundTrip) {
  obs::TraceSink sink({.sample_rate = 1.0});
  sink.Offer(MakeTrace(3, 700));
  const std::string path =
      ::testing::TempDir() + "/bwtk_trace_test_out.json";
  const Status status = obs::WriteTraceFile(sink, path);
  ASSERT_TRUE(status.ok()) << status.ToString();
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), obs::TraceFileJson(sink) + "\n");
  std::remove(path.c_str());

  EXPECT_FALSE(
      obs::WriteTraceFile(sink, "/nonexistent-dir-xyz/trace.json").ok());
}

}  // namespace
}  // namespace bwtk
