// Shared helpers for the bwtk test suite: deterministic random inputs and
// tiny oracle implementations.

#ifndef BWTK_TESTS_TEST_UTIL_H_
#define BWTK_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "alphabet/dna.h"
#include "util/random.h"

namespace bwtk::testing {

/// Uniform random DNA of the given length.
inline std::vector<DnaCode> RandomDna(size_t length, Rng* rng) {
  std::vector<DnaCode> out(length);
  for (auto& c : out) c = static_cast<DnaCode>(rng->NextBounded(4));
  return out;
}

/// Random DNA over a reduced alphabet (more repeats, nastier for indexes).
inline std::vector<DnaCode> RandomDnaBiased(size_t length, int alphabet,
                                            Rng* rng) {
  std::vector<DnaCode> out(length);
  for (auto& c : out) {
    c = static_cast<DnaCode>(rng->NextBounded(static_cast<uint64_t>(alphabet)));
  }
  return out;
}

/// A periodic string (abcabc...) with optional random corruption.
inline std::vector<DnaCode> PeriodicDna(size_t length, size_t period,
                                        double noise, Rng* rng) {
  std::vector<DnaCode> base(period);
  for (auto& c : base) c = static_cast<DnaCode>(rng->NextBounded(4));
  std::vector<DnaCode> out(length);
  for (size_t i = 0; i < length; ++i) {
    out[i] = base[i % period];
    if (rng->NextBool(noise)) {
      out[i] = static_cast<DnaCode>((out[i] + 1 + rng->NextBounded(3)) & 3);
    }
  }
  return out;
}

/// Copies `count` characters starting at `pos` and flips `flips` random
/// positions — a pattern guaranteed to occur with <= flips mismatches.
inline std::vector<DnaCode> SampleWithFlips(const std::vector<DnaCode>& text,
                                            size_t pos, size_t count,
                                            int flips, Rng* rng) {
  std::vector<DnaCode> out(text.begin() + pos, text.begin() + pos + count);
  for (int f = 0; f < flips && !out.empty(); ++f) {
    const size_t where = static_cast<size_t>(rng->NextBounded(out.size()));
    out[where] = static_cast<DnaCode>((out[where] + 1 + rng->NextBounded(3)) & 3);
  }
  return out;
}

/// ASCII convenience for literals in tests.
inline std::vector<DnaCode> Codes(const std::string& s) {
  std::vector<DnaCode> out;
  out.reserve(s.size());
  for (const char c : s) out.push_back(CharToCode(c));
  return out;
}

}  // namespace bwtk::testing

#endif  // BWTK_TESTS_TEST_UTIL_H_
