// End-to-end cross-engine validation: generate a genome, simulate reads the
// way the paper's evaluation does, and require every engine in the library
// to produce byte-identical occurrence lists on every read.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "alphabet/fasta.h"
#include "alphabet/fastq.h"
#include "baselines/amir_search.h"
#include "baselines/cole_search.h"
#include "baselines/kangaroo_search.h"
#include "baselines/naive_search.h"
#include "bwt/fm_index.h"
#include "search/algorithm_a.h"
#include "search/searcher.h"
#include "search/stree_search.h"
#include "simulate/genome_generator.h"
#include "simulate/read_simulator.h"

namespace bwtk {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GenomeOptions genome_options;
    genome_options.length = 60000;
    genome_options.repeat_fraction = 0.35;
    genome_options.seed = 2024;
    genome_ = new std::vector<DnaCode>(GenerateGenome(genome_options).value());
    index_ = new FmIndex(FmIndex::Build(*genome_).value());
  }

  static void TearDownTestSuite() {
    delete index_;
    delete genome_;
    index_ = nullptr;
    genome_ = nullptr;
  }

  static std::vector<DnaCode>* genome_;
  static FmIndex* index_;
};

std::vector<DnaCode>* IntegrationTest::genome_ = nullptr;
FmIndex* IntegrationTest::index_ = nullptr;

TEST_F(IntegrationTest, AllEnginesAgreeOnSimulatedReads) {
  ReadSimOptions read_options;
  read_options.read_length = 70;
  read_options.read_count = 12;
  read_options.mutation_rate = 0.01;
  read_options.error_rate = 0.02;
  read_options.both_strands = false;
  read_options.seed = 99;
  const auto reads = SimulateReads(*genome_, read_options).value();

  const NaiveSearch naive(genome_);
  const AmirSearch amir(genome_);
  const KangarooSearch kangaroo(genome_);
  const auto cole = ColeSearch::Build(*genome_).value();
  const STreeSearch stree(index_);
  const AlgorithmA algorithm_a(index_);

  for (const auto& read : reads) {
    for (const int32_t k : {0, 2, 4}) {
      const auto expected = naive.Search(read.sequence, k);
      EXPECT_EQ(stree.Search(read.sequence, k), expected) << "stree k=" << k;
      EXPECT_EQ(algorithm_a.Search(read.sequence, k), expected)
          << "A k=" << k;
      EXPECT_EQ(amir.Search(read.sequence, k), expected) << "amir k=" << k;
      EXPECT_EQ(kangaroo.Search(read.sequence, k).value(), expected)
          << "kangaroo k=" << k;
      EXPECT_EQ(cole.Search(read.sequence, k), expected) << "cole k=" << k;
    }
  }
}

TEST_F(IntegrationTest, ReadsWithKSubstitutionsAreAlwaysFound) {
  ReadSimOptions read_options;
  read_options.read_length = 100;
  read_options.read_count = 25;
  read_options.mutation_rate = 0.02;
  read_options.error_rate = 0.01;
  read_options.both_strands = true;
  read_options.seed = 7;
  const auto reads = SimulateReads(*genome_, read_options).value();
  const AlgorithmA algorithm_a(index_);
  for (const auto& read : reads) {
    const auto query = read.reverse_strand
                           ? ReverseComplement(read.sequence)
                           : read.sequence;
    const auto hits = algorithm_a.Search(query, read.substitutions);
    const bool found =
        std::any_of(hits.begin(), hits.end(), [&](const Occurrence& h) {
          return h.position == read.origin;
        });
    EXPECT_TRUE(found) << "origin " << read.origin;
  }
}

TEST_F(IntegrationTest, FileRoundTripPipeline) {
  // genome -> FASTA file -> parse -> index -> reads -> FASTQ file -> parse
  // -> search: the full example-application pipeline.
  const std::string dir = ::testing::TempDir();
  const std::string fasta_path = dir + "/bwtk_it_genome.fa";
  const std::string fastq_path = dir + "/bwtk_it_reads.fq";
  const std::string index_path = dir + "/bwtk_it.idx";

  std::vector<FastaRecord> records(1);
  records[0].name = "synthetic_chr";
  records[0].sequence = *genome_;
  ASSERT_TRUE(WriteFastaFile(fasta_path, records).ok());

  const auto parsed = ReadFastaFile(fasta_path).value();
  ASSERT_EQ(parsed.size(), 1u);
  ASSERT_EQ(parsed[0].sequence, *genome_);

  const auto searcher = KMismatchSearcher::Build(parsed[0].sequence).value();
  ASSERT_TRUE(searcher.SaveIndex(index_path).ok());
  const auto reloaded = KMismatchSearcher::FromIndexFile(index_path).value();

  const auto reads =
      SimulateReads(*genome_, {.read_length = 64, .read_count = 6,
                               .both_strands = false, .seed = 123})
          .value();
  ASSERT_TRUE(WriteFastqFile(fastq_path, ToFastq(reads, "it")).ok());
  const auto fastq = ReadFastqFile(fastq_path).value();
  ASSERT_EQ(fastq.size(), reads.size());

  for (size_t i = 0; i < fastq.size(); ++i) {
    const auto hits = reloaded.Search(fastq[i].sequence, 3);
    const auto direct = searcher.Search(reads[i].sequence, 3);
    EXPECT_EQ(hits, direct);
  }

  std::remove(fasta_path.c_str());
  std::remove(fastq_path.c_str());
  std::remove(index_path.c_str());
}

TEST_F(IntegrationTest, StatisticsScaleWithK) {
  // The S-tree (and hence the M-tree) grows with k — the effect behind the
  // paper's Fig. 11(a)/Table 2.
  const auto reads = SimulateReads(*genome_, {.read_length = 50,
                                              .read_count = 3, .seed = 55})
                         .value();
  const AlgorithmA algorithm_a(index_);
  uint64_t previous_leaves = 0;
  for (const int32_t k : {0, 1, 2, 3, 4}) {
    SearchStats total;
    for (const auto& read : reads) {
      SearchStats stats;
      algorithm_a.Search(read.sequence, k, &stats);
      total += stats;
    }
    EXPECT_GE(total.mtree_leaves, previous_leaves);
    previous_leaves = total.mtree_leaves;
  }
  EXPECT_GT(previous_leaves, 0u);
}

}  // namespace
}  // namespace bwtk
