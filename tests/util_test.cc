#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/bit_utils.h"
#include "util/bit_vector.h"
#include "util/random.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace bwtk {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad k");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad k");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kIoError, StatusCode::kCorruption, StatusCode::kOutOfRange,
        StatusCode::kUnimplemented, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(7), 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  BWTK_ASSIGN_OR_RETURN(const int half, Half(x));
  return Half(half);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(7).ok());
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextBounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues reached
}

TEST(RngTest, RangeInclusive) {
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BoolRespectsProbability) {
  Rng rng(8);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, WeightedFollowsWeights) {
  Rng rng(9);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) {
    ++counts[rng.NextWeighted({1.0, 2.0, 1.0})];
  }
  EXPECT_NEAR(counts[1] / 30000.0, 0.5, 0.02);
}

TEST(BitUtilsTest, Count2BitSymbols) {
  // Word encoding codes 0,1,2,3,0,1,2,3,... in consecutive slots.
  uint64_t word = 0;
  for (int i = 0; i < 32; ++i) word |= static_cast<uint64_t>(i % 4) << (2 * i);
  for (unsigned c = 0; c < 4; ++c) {
    EXPECT_EQ(Count2BitSymbols(word, c, 32), 8) << c;
    EXPECT_EQ(Count2BitSymbols(word, c, 0), 0) << c;
  }
  EXPECT_EQ(Count2BitSymbols(word, 0, 1), 1);
  EXPECT_EQ(Count2BitSymbols(word, 1, 1), 0);
  EXPECT_EQ(Count2BitSymbols(word, 3, 4), 1);
  EXPECT_EQ(Count2BitSymbols(word, 3, 3), 0);
}

TEST(BitVectorTest, RankMatchesBruteForce) {
  Rng rng(11);
  BitVectorRank bits(1000);
  std::vector<bool> mirror(1000, false);
  for (int i = 0; i < 300; ++i) {
    const size_t pos = rng.NextBounded(1000);
    bits.Set(pos);
    mirror[pos] = true;
  }
  bits.FinalizeRank();
  uint64_t expected = 0;
  for (size_t pos = 0; pos <= 1000; ++pos) {
    EXPECT_EQ(bits.Rank1(pos), expected) << pos;
    if (pos < 1000) {
      EXPECT_EQ(bits.Get(pos), mirror[pos]);
      expected += mirror[pos];
    }
  }
  EXPECT_EQ(bits.OneCount(), expected);
}

TEST(BitVectorTest, EmptyAndFull) {
  BitVectorRank empty(0);
  empty.FinalizeRank();
  EXPECT_EQ(empty.Rank1(0), 0u);

  BitVectorRank full(129);
  for (size_t i = 0; i < 129; ++i) full.Set(i);
  full.FinalizeRank();
  EXPECT_EQ(full.Rank1(129), 129u);
  EXPECT_EQ(full.Rank1(64), 64u);
}

TEST(StopwatchTest, MeasuresForwardTime) {
  Stopwatch watch;
  const double first = watch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  const double second = watch.ElapsedSeconds();
  EXPECT_GE(second, first);
  watch.Restart();
  EXPECT_GE(watch.ElapsedMicros(), 0.0);
}

}  // namespace
}  // namespace bwtk
