#include <gtest/gtest.h>

#include "search/mtree.h"

namespace bwtk {
namespace {

TEST(MTreeTest, RootIsMatching) {
  MTree tree;
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_TRUE(tree.node(tree.root()).matching());
  EXPECT_EQ(tree.leaf_count(), 0u);
}

TEST(MTreeTest, MatchingMergesIntoMatchingParent) {
  // Definition 4's collapse rule: a maximal match run is one node.
  MTree tree;
  const int32_t first = tree.AddMatching(tree.root());
  EXPECT_EQ(first, tree.root());  // merged into the matching root
  const int32_t mismatch = tree.AddMismatching(first, 2, 3);
  EXPECT_NE(mismatch, first);
  const int32_t run = tree.AddMatching(mismatch);
  EXPECT_NE(run, mismatch);          // new run under a mismatching node
  EXPECT_EQ(tree.AddMatching(run), run);  // further matches merge
  EXPECT_EQ(tree.node_count(), 3u);  // root, <g,3>, <-,0>
}

TEST(MTreeTest, MismatchingNodesAlwaysFresh) {
  MTree tree;
  const int32_t a = tree.AddMismatching(tree.root(), 0, 1);
  const int32_t b = tree.AddMismatching(tree.root(), 1, 1);
  EXPECT_NE(a, b);
  EXPECT_EQ(tree.node(a).symbol, 0);
  EXPECT_EQ(tree.node(b).symbol, 1);
  EXPECT_EQ(tree.node(a).pattern_pos, 1);
}

TEST(MTreeTest, PathMismatchPositionsIsTheBlArray) {
  // Build the path of the paper's B_1 = [1, 4]: mismatches at pattern
  // positions 1 and 4 with match runs between.
  MTree tree;
  int32_t node = tree.AddMismatching(tree.root(), 0, 1);
  node = tree.AddMatching(node);
  node = tree.AddMismatching(node, 2, 4);
  node = tree.AddMatching(node);
  tree.MarkLeaf();
  EXPECT_EQ(tree.PathMismatchPositions(node), (std::vector<int32_t>{1, 4}));
  EXPECT_EQ(tree.leaf_count(), 1u);
}

TEST(MTreeTest, LeafCountTracksTerminations) {
  MTree tree;
  for (int i = 0; i < 5; ++i) tree.MarkLeaf();
  EXPECT_EQ(tree.leaf_count(), 5u);
}

}  // namespace
}  // namespace bwtk
