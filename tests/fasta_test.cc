#include <gtest/gtest.h>

#include <sstream>

#include "alphabet/fasta.h"
#include "alphabet/fastq.h"

namespace bwtk {
namespace {

TEST(FastaTest, ParsesSingleRecord) {
  auto records = ParseFastaString(">chr1 test chromosome\nacgt\nACGT\n");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].name, "chr1");
  EXPECT_EQ((*records)[0].description, "test chromosome");
  EXPECT_EQ(DecodeDna((*records)[0].sequence), "acgtacgt");
}

TEST(FastaTest, ParsesMultipleRecords) {
  auto records = ParseFastaString(">a\nac\ngt\n>b\ntttt\n>c\ng\n");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ(DecodeDna((*records)[0].sequence), "acgt");
  EXPECT_EQ(DecodeDna((*records)[1].sequence), "tttt");
  EXPECT_EQ(DecodeDna((*records)[2].sequence), "g");
}

TEST(FastaTest, HandlesCrlfAndBlankLinesAndComments) {
  auto records =
      ParseFastaString(">x desc\r\n;legacy comment\r\nacgt\r\n\r\nacgt\r\n");
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(DecodeDna((*records)[0].sequence), "acgtacgt");
}

TEST(FastaTest, RejectsAmbiguityByDefault) {
  auto records = ParseFastaString(">x\nacgnt\n");
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kInvalidArgument);
}

TEST(FastaTest, AmbiguityPolicies) {
  FastaParseOptions replace;
  replace.ambiguity = AmbiguityPolicy::kReplaceWithA;
  auto replaced = ParseFastaString(">x\nacgNt\n", replace);
  ASSERT_TRUE(replaced.ok());
  EXPECT_EQ(DecodeDna((*replaced)[0].sequence), "acgat");

  FastaParseOptions skip;
  skip.ambiguity = AmbiguityPolicy::kSkip;
  auto skipped = ParseFastaString(">x\nacgNt\n", skip);
  ASSERT_TRUE(skipped.ok());
  EXPECT_EQ(DecodeDna((*skipped)[0].sequence), "acgt");
}

TEST(FastaTest, RejectsHeaderlessSequence) {
  auto records = ParseFastaString("acgt\n");
  ASSERT_FALSE(records.ok());
}

TEST(FastaTest, RejectsEmptyName) {
  auto records = ParseFastaString(">\nacgt\n");
  ASSERT_FALSE(records.ok());
}

TEST(FastaTest, WriteParseRoundTrip) {
  std::vector<FastaRecord> records(2);
  records[0].name = "alpha";
  records[0].description = "first";
  records[0].sequence = EncodeDna("acgtacgtacgtacgtacgtacgt").value();
  records[1].name = "beta";
  records[1].sequence = EncodeDna("tt").value();

  std::ostringstream out;
  ASSERT_TRUE(WriteFasta(out, records, /*line_width=*/10).ok());
  auto parsed = ParseFastaString(out.str());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].name, "alpha");
  EXPECT_EQ((*parsed)[0].description, "first");
  EXPECT_EQ((*parsed)[0].sequence, records[0].sequence);
  EXPECT_EQ((*parsed)[1].sequence, records[1].sequence);
}

TEST(FastaTest, WriteRejectsNonPositiveWidth) {
  std::ostringstream out;
  EXPECT_FALSE(WriteFasta(out, {}, 0).ok());
}

TEST(FastaTest, MissingFileIsIoError) {
  auto records = ReadFastaFile("/nonexistent/genome.fa");
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kIoError);
}

TEST(FastqTest, ParsesRecord) {
  auto records = ParseFastqString("@read1 extra\nacgt\n+\nIIII\n");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].name, "read1");
  EXPECT_EQ(DecodeDna((*records)[0].sequence), "acgt");
  EXPECT_EQ((*records)[0].quality, "IIII");
}

TEST(FastqTest, ReplacesAmbiguousBases) {
  auto records = ParseFastqString("@r\nacgN\n+\nIIII\n");
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(DecodeDna((*records)[0].sequence), "acga");
}

TEST(FastqTest, RejectsTruncatedRecord) {
  EXPECT_FALSE(ParseFastqString("@r\nacgt\n+\n").ok());
  EXPECT_FALSE(ParseFastqString("@r\nacgt\n").ok());
}

TEST(FastqTest, RejectsLengthMismatch) {
  EXPECT_FALSE(ParseFastqString("@r\nacgt\n+\nIII\n").ok());
}

TEST(FastqTest, RejectsBadSeparators) {
  EXPECT_FALSE(ParseFastqString("r\nacgt\n+\nIIII\n").ok());
  EXPECT_FALSE(ParseFastqString("@r\nacgt\nx\nIIII\n").ok());
}

TEST(FastqTest, WriteParseRoundTrip) {
  std::vector<FastqRecord> records(1);
  records[0].name = "sim_0:12:+:1";
  records[0].sequence = EncodeDna("ttaacc").value();
  records[0].quality = "IIIIII";
  std::ostringstream out;
  ASSERT_TRUE(WriteFastq(out, records).ok());
  auto parsed = ParseFastqString(out.str());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].name, records[0].name);
  EXPECT_EQ((*parsed)[0].sequence, records[0].sequence);
  EXPECT_EQ((*parsed)[0].quality, records[0].quality);
}

}  // namespace
}  // namespace bwtk
