#include <gtest/gtest.h>

#include "bwt/bwt.h"
#include "bwt/occ_table.h"
#include "test_util.h"
#include "util/random.h"

namespace bwtk {
namespace {

using ::bwtk::testing::Codes;
using ::bwtk::testing::PeriodicDna;
using ::bwtk::testing::RandomDna;

// Renders the BWT with its sentinel for readable assertions.
std::string BwtToString(const Bwt& bwt) {
  std::string out;
  for (size_t i = 0; i < bwt.codes.size(); ++i) {
    out.push_back(i == bwt.sentinel_row ? '$' : CodeToChar(bwt.codes.at(i)));
  }
  return out;
}

TEST(BwtTest, PaperExample) {
  // Section III.A: s = acagaca$, BWT(s) = acg$caaa (Fig. 1(b)).
  const auto bwt = BwtFromText(Codes("acagaca")).value();
  EXPECT_EQ(BwtToString(bwt), "acg$caaa");
  EXPECT_EQ(bwt.sentinel_row, 3u);
}

TEST(BwtTest, SingleCharacter) {
  const auto bwt = BwtFromText(Codes("c")).value();
  EXPECT_EQ(BwtToString(bwt), "c$");
}

TEST(BwtTest, InvertRoundTripsFixed) {
  for (const char* text : {"acagaca", "tcacg", "aaaa", "acgtacgtacgt", "t"}) {
    const auto codes = Codes(text);
    const auto bwt = BwtFromText(codes).value();
    EXPECT_EQ(InvertBwt(bwt), codes) << text;
  }
}

class BwtRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(BwtRandomTest, InvertRoundTripsRandom) {
  Rng rng(600 + GetParam());
  const size_t length = 1 + rng.NextBounded(500);
  const auto text = GetParam() % 2 == 0 ? RandomDna(length, &rng)
                                        : PeriodicDna(length, 4, 0.1, &rng);
  const auto bwt = BwtFromText(text).value();
  EXPECT_EQ(InvertBwt(bwt), text);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BwtRandomTest, ::testing::Range(0, 16));

// Oracle: count symbol occurrences in L[0..pos) by scanning.
uint32_t NaiveRank(const Bwt& bwt, DnaCode c, size_t pos) {
  uint32_t count = 0;
  for (size_t i = 0; i < pos; ++i) {
    if (i == bwt.sentinel_row) continue;
    count += bwt.codes.at(i) == c;
  }
  return count;
}

class OccTableRateTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(OccTableRateTest, RankMatchesNaiveAtEveryPosition) {
  Rng rng(77);
  const auto text = RandomDna(700, &rng);
  const auto bwt = BwtFromText(text).value();
  const auto occ = OccTable::Build(&bwt, GetParam()).value();
  for (size_t pos = 0; pos <= bwt.codes.size(); ++pos) {
    for (DnaCode c = 0; c < kDnaAlphabetSize; ++c) {
      ASSERT_EQ(occ.Rank(c, pos), NaiveRank(bwt, c, pos))
          << "rate=" << GetParam() << " c=" << int(c) << " pos=" << pos;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, OccTableRateTest,
                         ::testing::Values(32u, 64u, 128u, 256u));

TEST(OccTableTest, RankAllAgreesWithRank) {
  Rng rng(79);
  const auto text = RandomDna(513, &rng);
  const auto bwt = BwtFromText(text).value();
  const auto occ = OccTable::Build(&bwt).value();
  for (size_t pos = 0; pos <= bwt.codes.size(); ++pos) {
    uint32_t all[kDnaAlphabetSize];
    occ.RankAll(pos, all);
    for (DnaCode c = 0; c < kDnaAlphabetSize; ++c) {
      ASSERT_EQ(all[c], occ.Rank(c, pos)) << "pos=" << pos << " c=" << int(c);
    }
  }
}

TEST(OccTableTest, TotalsSumToTextSize) {
  Rng rng(78);
  const auto text = RandomDna(333, &rng);
  const auto bwt = BwtFromText(text).value();
  const auto occ = OccTable::Build(&bwt).value();
  uint32_t total = 0;
  for (DnaCode c = 0; c < kDnaAlphabetSize; ++c) total += occ.Total(c);
  EXPECT_EQ(total, text.size());  // sentinel not counted
}

TEST(OccTableTest, RejectsBadRate) {
  const auto bwt = BwtFromText(Codes("acgt")).value();
  EXPECT_FALSE(OccTable::Build(&bwt, 0).ok());
  EXPECT_FALSE(OccTable::Build(&bwt, 48).ok());
  EXPECT_FALSE(OccTable::Build(nullptr, 64).ok());
}

TEST(OccTableTest, SentinelRowNeverCounted) {
  const auto bwt = BwtFromText(Codes("acagaca")).value();
  const auto occ = OccTable::Build(&bwt).value();
  // BWT is acg$caaa; sentinel at row 3 stores a placeholder that must not
  // surface as an 'a'.
  EXPECT_EQ(occ.Rank(0, 4), 1u);   // only row 0 is 'a'
  EXPECT_EQ(occ.Rank(0, 8), 4u);   // rows 0, 5, 6, 7
  EXPECT_EQ(occ.Total(0), 4u);
}

}  // namespace
}  // namespace bwtk
