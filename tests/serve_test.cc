// Session lifecycle, admission control, and result-collection contract
// (serve/session.h), plus wire encode/decode round-trips (serve/wire.h).
// The TCP loopback tests live in serve_net_test.cc.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "search/algorithm_a.h"
#include "search/kerror_search.h"
#include "bidir/bi_fm_index.h"
#include "serve/session.h"
#include "serve/wire.h"
#include "shard/sharded_index.h"
#include "test_util.h"
#include "util/random.h"

namespace bwtk {
namespace {

using serve::Callback;
using serve::QueryResult;
using serve::Session;
using serve::SessionOptions;
using serve::Ticket;

struct Fixture {
  std::vector<DnaCode> text;
  FmIndex index;
  std::vector<BatchQuery> queries;
};

Fixture MakeFixture(size_t text_length, size_t num_queries, uint64_t seed) {
  Rng rng(seed);
  std::vector<DnaCode> text = testing::RandomDna(text_length, &rng);
  FmIndex index = FmIndex::Build(text).value();
  std::vector<BatchQuery> queries;
  for (size_t i = 0; i < num_queries; ++i) {
    const size_t m = 8 + rng.NextBounded(12);
    const size_t pos = rng.NextBounded(text_length - m);
    BatchQuery query;
    query.pattern.assign(text.begin() + pos, text.begin() + pos + m);
    query.k = static_cast<int32_t>(rng.NextBounded(3));
    queries.push_back(std::move(query));
  }
  return Fixture{std::move(text), std::move(index), std::move(queries)};
}

TEST(ServeSessionTest, SubmitWaitMatchesSerialEngine) {
  Fixture fixture = MakeFixture(20000, 40, 11);
  const AlgorithmA serial(&fixture.index);
  Session session(&fixture.index, {.num_threads = 3});
  std::vector<Ticket> tickets;
  for (const BatchQuery& query : fixture.queries) {
    auto ticket = session.Submit(query);
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    tickets.push_back(ticket.value());
  }
  AlgorithmAScratch scratch;
  for (size_t i = 0; i < tickets.size(); ++i) {
    auto result = session.Wait(tickets[i]);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->status.ok());
    EXPECT_EQ(result->ticket, tickets[i]);
    std::vector<Occurrence> expected =
        serial.Search(fixture.queries[i].pattern, fixture.queries[i].k,
                      nullptr, &scratch);
    NormalizeOccurrences(&expected);
    EXPECT_EQ(result->hits, expected) << "query " << i;
    EXPECT_GT(result->stats.extend_calls, 0u);
  }
  const serve::SessionStats stats = session.Stats();
  EXPECT_EQ(stats.submitted, fixture.queries.size());
  EXPECT_EQ(stats.completed, fixture.queries.size());
  EXPECT_EQ(stats.inflight, 0u);
}

TEST(ServeSessionTest, PollIsConsumeOnceAndNullWhilePending) {
  Fixture fixture = MakeFixture(5000, 1, 13);
  Session session(&fixture.index, {.num_threads = 1});
  session.Pause();
  const Ticket ticket = session.Submit(fixture.queries[0]).value();
  // Paused: the query cannot complete, Poll must say "not yet".
  EXPECT_FALSE(session.Poll(ticket).has_value());
  session.Resume();
  auto result = session.Wait(ticket);
  ASSERT_TRUE(result.ok());
  // Consumed: a second collect must not block or return data.
  EXPECT_FALSE(session.Poll(ticket).has_value());
  const auto again = session.Wait(ticket);
  EXPECT_EQ(again.status().code(), StatusCode::kInvalidArgument);
  // Unknown tickets are refused, not blocked on.
  EXPECT_EQ(session.Wait(99999).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeSessionTest, OverloadRejectsBeyondQueueCapacity) {
  Fixture fixture = MakeFixture(5000, 1, 17);
  SessionOptions options;
  options.num_threads = 1;
  options.queue_capacity = 4;
  options.max_inflight = 100;
  Session session(&fixture.index, options);
  session.Pause();  // nothing drains: admission is fully deterministic
  std::vector<Ticket> admitted;
  for (size_t i = 0; i < 4; ++i) {
    auto ticket = session.Submit(fixture.queries[0]);
    ASSERT_TRUE(ticket.ok()) << i;
    admitted.push_back(ticket.value());
  }
  const auto rejected = session.Submit(fixture.queries[0]);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kOverloaded);
  EXPECT_EQ(session.Stats().rejected_overloaded, 1u);
  // Rejection is not sticky: capacity freed -> admission resumes.
  session.Resume();
  for (const Ticket ticket : admitted) {
    EXPECT_TRUE(session.Wait(ticket).ok());
  }
  EXPECT_TRUE(session.Submit(fixture.queries[0]).ok());
}

TEST(ServeSessionTest, OverloadRejectsBeyondInflightBudget) {
  Fixture fixture = MakeFixture(5000, 1, 19);
  SessionOptions options;
  options.num_threads = 1;
  options.queue_capacity = 100;
  options.max_inflight = 3;
  Session session(&fixture.index, options);
  std::vector<Ticket> tickets;
  for (size_t i = 0; i < 3; ++i) {
    tickets.push_back(session.Submit(fixture.queries[0]).value());
  }
  // The budget counts *uncollected* results: even once all three have
  // executed, a fourth submit is refused until something is collected.
  const auto rejected = session.Submit(fixture.queries[0]);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kOverloaded);
  ASSERT_TRUE(session.Wait(tickets[0]).ok());  // frees one slot
  EXPECT_TRUE(session.Submit(fixture.queries[0]).ok());
}

TEST(ServeSessionTest, SubmitBatchIsAllOrNothing) {
  Fixture fixture = MakeFixture(5000, 1, 23);
  SessionOptions options;
  options.num_threads = 1;
  options.queue_capacity = 3;
  Session session(&fixture.index, options);
  session.Pause();
  std::vector<BatchQuery> burst(4, fixture.queries[0]);
  const auto rejected = session.SubmitBatch(burst);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kOverloaded);
  // Nothing was admitted by the failed batch.
  EXPECT_EQ(session.Stats().submitted, 0u);
  burst.pop_back();
  const auto admitted = session.SubmitBatch(burst);
  ASSERT_TRUE(admitted.ok());
  ASSERT_EQ(admitted->size(), 3u);
  session.Resume();
  for (const Ticket ticket : *admitted) {
    EXPECT_TRUE(session.Wait(ticket).ok());
  }
}

TEST(ServeSessionTest, SubmitAfterDrainIsUnavailable) {
  Fixture fixture = MakeFixture(5000, 4, 29);
  Session session(&fixture.index, {.num_threads = 2});
  std::vector<Ticket> tickets;
  for (const BatchQuery& query : fixture.queries) {
    tickets.push_back(session.Submit(query).value());
  }
  session.Drain();
  const auto rejected = session.Submit(fixture.queries[0]);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(session.Stats().rejected_unavailable, 1u);
  // Drain executed everything; results stay collectable afterwards.
  for (const Ticket ticket : tickets) {
    auto result = session.Poll(ticket);
    ASSERT_TRUE(result.has_value());
    EXPECT_TRUE(result->status.ok());
  }
}

TEST(ServeSessionTest, CallbacksFireExactlyOnceIncludingShutdownOrphans) {
  Fixture fixture = MakeFixture(5000, 1, 31);
  std::mutex mu;
  std::set<Ticket> seen;
  std::atomic<int> ok_count{0};
  std::atomic<int> unavailable_count{0};
  {
    SessionOptions options;
    options.num_threads = 1;
    options.queue_capacity = 64;
    Session session(&fixture.index, options);
    Callback callback = [&](QueryResult result) {
      {
        std::lock_guard<std::mutex> lock(mu);
        // Exactly-once: a repeated ticket would fail this insert.
        ASSERT_TRUE(seen.insert(result.ticket).second);
      }
      if (result.status.ok()) {
        ++ok_count;
      } else {
        EXPECT_EQ(result.status.code(), StatusCode::kUnavailable);
        ++unavailable_count;
      }
    };
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(session.Submit(fixture.queries[0], callback).ok());
    }
    session.Pause();  // whatever is still queued now stays queued
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(session.Submit(fixture.queries[0], callback).ok());
    }
    session.Shutdown();
  }
  // Every one of the 16 callbacks fired exactly once: completed ones with
  // OK, shutdown-orphaned ones with kUnavailable.
  EXPECT_EQ(seen.size(), 16u);
  EXPECT_EQ(ok_count.load() + unavailable_count.load(), 16);
}

TEST(ServeSessionTest, ShutdownExecutesPausedBacklogThenResultsCollectable) {
  // Shutdown is graceful: Drain implies Resume, so work queued behind a
  // Pause still executes, and its result stays collectable after the
  // workers are gone. No ticket is ever stranded.
  Fixture fixture = MakeFixture(5000, 1, 59);
  const AlgorithmA serial(&fixture.index);
  Session session(&fixture.index, {.num_threads = 1});
  session.Pause();
  const Ticket ticket = session.Submit(fixture.queries[0]).value();
  session.Shutdown();
  auto result = session.Poll(ticket);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->status.ok());
  std::vector<Occurrence> expected =
      serial.Search(fixture.queries[0].pattern, fixture.queries[0].k);
  NormalizeOccurrences(&expected);
  EXPECT_EQ(result->hits, expected);
  // And admission is closed for good.
  EXPECT_EQ(session.Submit(fixture.queries[0]).status().code(),
            StatusCode::kUnavailable);
}

TEST(ServeSessionTest, WaitForTimesOutThenSucceeds) {
  Fixture fixture = MakeFixture(5000, 1, 37);
  Session session(&fixture.index, {.num_threads = 1});
  session.Pause();
  const Ticket ticket = session.Submit(fixture.queries[0]).value();
  const auto timed_out =
      session.WaitFor(ticket, std::chrono::milliseconds(20));
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kTimedOut);
  // The ticket survived the timeout and is still collectable.
  session.Resume();
  const auto result = session.WaitFor(ticket, std::chrono::seconds(30));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->status.ok());
}

TEST(ServeSessionTest, ShardedSessionMatchesMonolithicEngine) {
  Rng rng(41);
  const auto text = testing::RandomDna(30000, &rng);
  const auto mono_index = FmIndex::Build(text).value();
  ShardedIndexOptions shard_options;
  shard_options.num_shards = 4;
  shard_options.overlap = 64;
  const auto sharded =
      ShardedIndex::Build(text, shard_options).value();
  const AlgorithmA serial(&mono_index);
  Session session(&sharded, {.num_threads = 3});
  ASSERT_EQ(session.num_indexes(), 4u);
  AlgorithmAScratch scratch;
  std::vector<Ticket> tickets;
  std::vector<BatchQuery> queries;
  for (size_t i = 0; i < 30; ++i) {
    const size_t m = 10 + rng.NextBounded(10);
    const size_t pos = rng.NextBounded(text.size() - m);
    BatchQuery query;
    query.pattern.assign(text.begin() + pos, text.begin() + pos + m);
    query.k = static_cast<int32_t>(rng.NextBounded(3));
    tickets.push_back(session.Submit(query).value());
    queries.push_back(std::move(query));
  }
  for (size_t i = 0; i < tickets.size(); ++i) {
    auto result = session.Wait(tickets[i]);
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result->status.ok());
    std::vector<Occurrence> expected =
        serial.Search(queries[i].pattern, queries[i].k, nullptr, &scratch);
    NormalizeOccurrences(&expected);
    EXPECT_EQ(result->hits, expected) << "query " << i;
  }
  // A pattern longer than the overlap is rejected at Submit, not served
  // wrong.
  BatchQuery too_long;
  too_long.pattern = testing::RandomDna(80, &rng);
  too_long.k = 0;
  const auto rejected = session.Submit(too_long);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServeSessionTest, KErrorEngineFillsStats) {
  Fixture fixture = MakeFixture(8000, 5, 43);
  const KErrorSearch serial(&fixture.index);
  SessionOptions options;
  options.num_threads = 2;
  options.batch.engine = BatchEngine::kKError;
  Session session(&fixture.index, options);
  for (const BatchQuery& query : fixture.queries) {
    const Ticket ticket =
        session.Submit(BatchQuery{query.pattern, 1}).value();
    auto result = session.Wait(ticket);
    ASSERT_TRUE(result.ok());
    SearchStats serial_stats;
    std::vector<Occurrence> expected;
    for (const EditOccurrence& e :
         serial.Search(query.pattern, 1, &serial_stats)) {
      expected.push_back({e.position, e.edits});
    }
    NormalizeOccurrences(&expected);
    EXPECT_EQ(result->hits, expected);
    EXPECT_EQ(result->stats.stree_nodes, serial_stats.stree_nodes);
    EXPECT_GT(result->stats.stree_nodes, 0u);
  }
}

TEST(ServeSessionTest, AsciiSubmitDecodesPerEngine) {
  Fixture fixture = MakeFixture(8000, 1, 47);
  SessionOptions options;
  options.num_threads = 1;
  options.batch.engine = BatchEngine::kWildcard;
  Session session(&fixture.index, options);
  // Wildcard syntax is accepted under the wildcard engine...
  const auto ticket = session.Submit("ac?t", 0);
  ASSERT_TRUE(ticket.ok());
  EXPECT_TRUE(session.Wait(ticket.value()).ok());
  // ...garbage is a synchronous InvalidArgument, costing no ticket.
  const auto bad = session.Submit("ac!t", 0);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(session.Stats().submitted, 1u);
}

TEST(ServeSessionTest, ConcurrentSubmittersAndCollectorsStress) {
  // TSan target: several threads submitting, waiting, and polling against
  // one Session while it serves — exercises every lock path at once.
  Fixture fixture = MakeFixture(20000, 8, 53);
  SessionOptions options;
  options.num_threads = 3;
  options.queue_capacity = 64;
  options.max_inflight = 64;
  Session session(&fixture.index, options);
  const AlgorithmA serial(&fixture.index);
  std::atomic<int> mismatches{0};
  std::atomic<int> served{0};
  constexpr int kClientThreads = 4;
  constexpr int kPerThread = 60;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      AlgorithmAScratch scratch;
      Rng rng(100 + static_cast<uint64_t>(c));
      for (int i = 0; i < kPerThread; ++i) {
        const BatchQuery& query =
            fixture.queries[rng.NextBounded(fixture.queries.size())];
        auto ticket = session.Submit(query);
        if (!ticket.ok()) {
          // kOverloaded is an acceptable answer under pressure; back off.
          ASSERT_EQ(ticket.status().code(), StatusCode::kOverloaded);
          std::this_thread::yield();
          continue;
        }
        auto result = session.Wait(ticket.value());
        ASSERT_TRUE(result.ok());
        ASSERT_TRUE(result->status.ok());
        std::vector<Occurrence> expected =
            serial.Search(query.pattern, query.k, nullptr, &scratch);
        NormalizeOccurrences(&expected);
        if (result->hits != expected) ++mismatches;
        ++served;
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(served.load(), 0);
  const serve::SessionStats stats = session.Stats();
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.completed, stats.submitted);
}

TEST(ServeSessionTest, ResultCacheServesDuplicatesByteIdentical) {
  Fixture fixture = MakeFixture(20000, 10, 61);
  const AlgorithmA serial(&fixture.index);
  SessionOptions options;
  options.num_threads = 2;
  options.batch.result_cache.enabled = true;
  Session session(&fixture.index, options);
  AlgorithmAScratch scratch;

  // First wave: cold — every query executes for real.
  std::vector<QueryResult> cold;
  for (const BatchQuery& query : fixture.queries) {
    auto result = session.Wait(session.Submit(query).value());
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->cache_served);
    cold.push_back(std::move(result).value());
  }
  // Second wave: warm — identical hits AND identical stats (the cache
  // stores the original execution's stats), flagged cache_served.
  for (size_t i = 0; i < fixture.queries.size(); ++i) {
    auto result = session.Wait(session.Submit(fixture.queries[i]).value());
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->cache_served) << "query " << i;
    EXPECT_EQ(result->hits, cold[i].hits) << "query " << i;
    EXPECT_EQ(result->stats, cold[i].stats) << "query " << i;
    std::vector<Occurrence> expected = serial.Search(
        fixture.queries[i].pattern, fixture.queries[i].k, nullptr, &scratch);
    NormalizeOccurrences(&expected);
    EXPECT_EQ(result->hits, expected) << "query " << i;
  }
}

TEST(ServeSessionTest, CachedDuplicatesAcrossPauseResumeAndDrainExactlyOnce) {
  // Duplicate queries queued behind a Pause, released by Resume, and
  // flushed by Drain must each produce exactly one callback with hits
  // byte-identical to the serial engine — whether served cold, warm from
  // the cache, or raced between the two.
  Fixture fixture = MakeFixture(10000, 3, 67);
  const AlgorithmA serial(&fixture.index);
  SessionOptions options;
  options.num_threads = 2;
  options.queue_capacity = 256;
  options.max_inflight = 256;
  options.batch.result_cache.enabled = true;
  Session session(&fixture.index, options);

  std::vector<std::vector<Occurrence>> expected;
  AlgorithmAScratch scratch;
  for (const BatchQuery& query : fixture.queries) {
    std::vector<Occurrence> hits =
        serial.Search(query.pattern, query.k, nullptr, &scratch);
    NormalizeOccurrences(&hits);
    expected.push_back(std::move(hits));
  }

  std::mutex mu;
  std::set<Ticket> seen;
  std::atomic<int> mismatches{0};
  std::atomic<int> fired{0};
  constexpr int kRepeats = 8;
  auto submit_all = [&] {
    for (size_t q = 0; q < fixture.queries.size(); ++q) {
      for (int r = 0; r < kRepeats; ++r) {
        ASSERT_TRUE(session
                        .Submit(fixture.queries[q],
                                [&, q](QueryResult result) {
                                  {
                                    std::lock_guard<std::mutex> lock(mu);
                                    ASSERT_TRUE(
                                        seen.insert(result.ticket).second);
                                  }
                                  ASSERT_TRUE(result.status.ok());
                                  if (result.hits != expected[q]) ++mismatches;
                                  ++fired;
                                })
                        .ok());
      }
    }
  };
  submit_all();         // wave 1: races cold execution against cache fills
  session.Pause();
  submit_all();         // wave 2: parks behind the pause
  session.Resume();
  submit_all();         // wave 3: mostly warm
  session.Drain();      // flushes everything; exactly-once still holds
  const int total = static_cast<int>(fixture.queries.size()) * kRepeats * 3;
  EXPECT_EQ(fired.load(), total);
  EXPECT_EQ(seen.size(), static_cast<size_t>(total));
  EXPECT_EQ(mismatches.load(), 0);
  const serve::SessionStats stats = session.Stats();
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(total));
}

TEST(ServeSessionTest, SharedMemoSessionMatchesMemoOffByteIdentical) {
  // Stream-scoped subtree memo: a session with the memo on must return
  // hits byte-identical to one with it off, for every query.
  Fixture fixture = MakeFixture(20000, 30, 71);
  SessionOptions memo_on;
  memo_on.num_threads = 2;
  memo_on.batch.shared_memo.enabled = true;
  memo_on.batch.shared_memo.min_suffix_len = 4;
  SessionOptions memo_off;
  memo_off.num_threads = 2;
  Session with_memo(&fixture.index, memo_on);
  Session without_memo(&fixture.index, memo_off);
  for (const BatchQuery& query : fixture.queries) {
    auto on = with_memo.Wait(with_memo.Submit(query).value());
    auto off = without_memo.Wait(without_memo.Submit(query).value());
    ASSERT_TRUE(on.ok() && off.ok());
    EXPECT_EQ(on->hits, off->hits);
  }
}

// --- Wire round-trips ----------------------------------------------------

TEST(ServeWireTest, QueryAndResultRoundTrip) {
  serve::QueryRequest request;
  request.request_id = 0xDEADBEEFCAFEBABEull;
  request.k = 3;
  request.pattern = "acgt?acg";
  std::string bytes;
  serve::AppendQueryFrame(request, &bytes);

  serve::FrameReader reader;
  reader.Feed(bytes.data(), bytes.size());
  auto frame = reader.Next();
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame->has_value());
  EXPECT_EQ((*frame)->type, serve::FrameType::kQuery);
  const auto parsed = serve::ParseQueryPayload((*frame)->payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, request);

  serve::QueryResponse response;
  response.request_id = request.request_id;
  response.status = serve::WireStatus::kOk;
  response.hits = {{5, 0}, {17, 2}, {123456789, 3}};
  bytes.clear();
  serve::AppendResultFrame(response, &bytes);
  reader.Feed(bytes.data(), bytes.size());
  auto result_frame = reader.Next();
  ASSERT_TRUE(result_frame.ok());
  ASSERT_TRUE(result_frame->has_value());
  const auto parsed_response =
      serve::ParseResultPayload((*result_frame)->payload);
  ASSERT_TRUE(parsed_response.ok());
  EXPECT_EQ(*parsed_response, response);
}

TEST(ServeWireTest, FrameReaderHandlesBytewiseDelivery) {
  // TCP can fragment arbitrarily: a frame fed one byte at a time must
  // come out whole, and only when complete.
  std::string bytes;
  serve::AppendHelloFrame(&bytes);
  serve::AppendStatsFrame(&bytes);
  serve::FrameReader reader;
  std::vector<serve::FrameType> types;
  for (const char byte : bytes) {
    reader.Feed(&byte, 1);
    for (;;) {
      auto frame = reader.Next();
      ASSERT_TRUE(frame.ok());
      if (!frame->has_value()) break;
      types.push_back((*frame)->type);
    }
  }
  ASSERT_EQ(types.size(), 2u);
  EXPECT_EQ(types[0], serve::FrameType::kHello);
  EXPECT_EQ(types[1], serve::FrameType::kStats);
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(ServeWireTest, OversizedAndMalformedPayloadsAreErrors) {
  serve::FrameReader reader(/*max_payload=*/16);
  const char huge_header[5] = {0x40, 0x00, 0x00, 0x00, 0x03};  // 64 > 16
  reader.Feed(huge_header, sizeof(huge_header));
  EXPECT_FALSE(reader.Next().ok());

  EXPECT_FALSE(serve::ParseQueryPayload("abc").ok());
  EXPECT_FALSE(serve::ParseResultPayload("").ok());
  EXPECT_FALSE(serve::ParseHelloAckPayload("x").ok());
  EXPECT_FALSE(serve::ValidateHelloPayload("short").ok());
  // RESULT whose num_hits lies about the remaining bytes must not OOM.
  std::string lying;
  serve::QueryResponse empty;
  serve::AppendResultFrame(empty, &lying);
  std::string payload = lying.substr(5);
  payload[payload.size() - 4] = static_cast<char>(0xFF);  // num_hits = huge
  payload[payload.size() - 3] = static_cast<char>(0xFF);
  EXPECT_FALSE(serve::ParseResultPayload(payload).ok());
}

TEST(ServeWireTest, QueryStatsFlagIsBackwardCompatibleTrailer) {
  // A flagless QUERY must stay byte-identical to the pre-trailer encoding
  // (old servers keep accepting new clients), and the trailer must
  // round-trip when present.
  serve::QueryRequest plain;
  plain.request_id = 7;
  plain.k = 2;
  plain.pattern = "acgtacgt";
  std::string plain_bytes;
  serve::AppendQueryFrame(plain, &plain_bytes);

  serve::QueryRequest with_stats = plain;
  with_stats.want_stats = true;
  std::string stats_bytes;
  serve::AppendQueryFrame(with_stats, &stats_bytes);
  // Exactly one extra byte — the flags trailer — and nothing else moved.
  ASSERT_EQ(stats_bytes.size(), plain_bytes.size() + 1);
  EXPECT_EQ(stats_bytes.substr(5, plain_bytes.size() - 5),
            plain_bytes.substr(5));

  const auto parsed_plain = serve::ParseQueryPayload(plain_bytes.substr(5));
  ASSERT_TRUE(parsed_plain.ok());
  EXPECT_FALSE(parsed_plain->want_stats);
  EXPECT_EQ(*parsed_plain, plain);
  const auto parsed_stats = serve::ParseQueryPayload(stats_bytes.substr(5));
  ASSERT_TRUE(parsed_stats.ok());
  EXPECT_TRUE(parsed_stats->want_stats);
  EXPECT_EQ(*parsed_stats, with_stats);
}

TEST(ServeWireTest, ResultStatsTrailerRoundTrip) {
  serve::QueryResponse response;
  response.request_id = 99;
  response.hits = {{5, 0}, {17, 2}};
  response.has_stats = true;
  response.cache_served = true;
  response.stats.stree_nodes = 11;
  response.stats.extend_calls = 22;
  response.stats.completed_paths = 33;
  response.stats.tau_pruned = 44;
  response.stats.budget_pruned = 55;
  response.stats.mtree_nodes = 66;
  response.stats.mtree_leaves = 77;
  response.stats.reused_nodes = 88;
  response.stats.derived_runs = 99;
  response.queue_ns = 123456;
  response.search_ns = 654321;
  std::string bytes;
  serve::AppendResultFrame(response, &bytes);
  const auto parsed = serve::ParseResultPayload(bytes.substr(5));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, response);

  // Trailerless RESULT parses with has_stats = false (old servers).
  serve::QueryResponse bare;
  bare.request_id = 99;
  bare.hits = response.hits;
  bytes.clear();
  serve::AppendResultFrame(bare, &bytes);
  const auto parsed_bare = serve::ParseResultPayload(bytes.substr(5));
  ASSERT_TRUE(parsed_bare.ok());
  EXPECT_FALSE(parsed_bare->has_stats);
  EXPECT_EQ(parsed_bare->hits, response.hits);

  // A truncated trailer is a malformed payload, not a silent accept.
  std::string full;
  serve::AppendResultFrame(response, &full);
  std::string truncated = full.substr(5);
  truncated.pop_back();
  EXPECT_FALSE(serve::ParseResultPayload(truncated).ok());
}

TEST(ServeWireTest, StatusMappingIsStableAndTotal) {
  using serve::WireStatus;
  EXPECT_EQ(serve::ToWireStatus(Status::OK()), WireStatus::kOk);
  EXPECT_EQ(serve::ToWireStatus(Status::Overloaded("x")),
            WireStatus::kOverloaded);
  EXPECT_EQ(serve::ToWireStatus(Status::Unavailable("x")),
            WireStatus::kUnavailable);
  EXPECT_EQ(serve::ToWireStatus(Status::TimedOut("x")),
            WireStatus::kTimedOut);
  EXPECT_EQ(serve::ToWireStatus(Status::InvalidArgument("x")),
            WireStatus::kInvalidArgument);
  // Codes without a wire value collapse to kInternal rather than leaking
  // enum ordinals onto the wire.
  EXPECT_EQ(serve::ToWireStatus(Status::Corruption("x")),
            WireStatus::kInternal);
  EXPECT_EQ(serve::FromWireStatus(WireStatus::kOverloaded, "m").code(),
            StatusCode::kOverloaded);
  EXPECT_EQ(serve::FromWireStatus(WireStatus::kOk, "").code(),
            StatusCode::kOk);
}

TEST(ServeWireTest, HelloAckAndStatsRoundTrip) {
  serve::HelloAck ack;
  ack.max_inflight = 256;
  ack.engine = "algorithm_a";
  ack.sharded = true;
  std::string bytes;
  serve::AppendHelloAckFrame(ack, &bytes);
  serve::FrameReader reader;
  reader.Feed(bytes.data(), bytes.size());
  const auto frame = reader.Next();
  ASSERT_TRUE(frame.ok() && frame->has_value());
  const auto parsed = serve::ParseHelloAckPayload((*frame)->payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, ack);

  serve::SessionStats stats;
  stats.queue_depth = 3;
  stats.running = 2;
  stats.inflight = 7;
  stats.submitted = 100;
  stats.completed = 93;
  stats.rejected_overloaded = 5;
  stats.rejected_unavailable = 1;
  bytes.clear();
  serve::AppendStatsResultFrame(stats, &bytes);
  reader.Feed(bytes.data(), bytes.size());
  const auto stats_frame = reader.Next();
  ASSERT_TRUE(stats_frame.ok() && stats_frame->has_value());
  const auto parsed_stats =
      serve::ParseStatsResultPayload((*stats_frame)->payload);
  ASSERT_TRUE(parsed_stats.ok());
  EXPECT_EQ(parsed_stats->submitted, 100u);
  EXPECT_EQ(parsed_stats->rejected_overloaded, 5u);
  EXPECT_EQ(parsed_stats->queue_depth, 3u);
}

namespace {

void PutU32(uint32_t value, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void PutU64(uint64_t value, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

}  // namespace

TEST(ServeWireTest, StatsResultRoundTripsAllTwelveFields) {
  serve::SessionStats stats;
  stats.queue_depth = 3;
  stats.running = 2;
  stats.inflight = 7;
  stats.submitted = 100;
  stats.completed = 93;
  stats.rejected_overloaded = 5;
  stats.rejected_unavailable = 1;
  stats.memo_hits = 11;
  stats.result_cache_hits = 22;
  stats.result_cache_misses = 33;
  stats.shard_exact_shortcuts = 44;
  stats.accepting = true;
  std::string bytes;
  serve::AppendStatsResultFrame(stats, &bytes);
  const auto parsed = serve::ParseStatsResultPayload(
      std::string_view(bytes).substr(5));  // strip the 5-byte frame header
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->memo_hits, 11u);
  EXPECT_EQ(parsed->result_cache_hits, 22u);
  EXPECT_EQ(parsed->result_cache_misses, 33u);
  EXPECT_EQ(parsed->shard_exact_shortcuts, 44u);
  EXPECT_TRUE(parsed->accepting);
  stats.accepting = false;
  bytes.clear();
  serve::AppendStatsResultFrame(stats, &bytes);
  EXPECT_FALSE(serve::ParseStatsResultPayload(std::string_view(bytes)
                                                  .substr(5))
                   ->accepting);
}

TEST(ServeWireTest, StatsResultToleratesFutureExtraFields) {
  // A newer server may append fields; the count prefix tells this client to
  // skip what it does not know.
  std::string payload;
  PutU32(serve::kStatsResultFieldCount + 3, &payload);
  for (uint64_t i = 0; i < serve::kStatsResultFieldCount + 3; ++i) {
    PutU64(i + 1, &payload);
  }
  const auto parsed = serve::ParseStatsResultPayload(payload);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->queue_depth, 1u);
  EXPECT_EQ(parsed->submitted, 4u);
  EXPECT_EQ(parsed->shard_exact_shortcuts, 11u);
  EXPECT_TRUE(parsed->accepting);  // field 12 == 12, nonzero
}

TEST(ServeWireTest, StatsResultZeroFillsFieldsFromOlderServers) {
  // An old server sends only the original 7 fields; the newer fields must
  // read as zero/false, not garbage.
  std::string payload;
  PutU32(7, &payload);
  for (uint64_t i = 0; i < 7; ++i) PutU64(100 + i, &payload);
  const auto parsed = serve::ParseStatsResultPayload(payload);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->queue_depth, 100u);
  EXPECT_EQ(parsed->rejected_unavailable, 106u);
  EXPECT_EQ(parsed->memo_hits, 0u);
  EXPECT_EQ(parsed->result_cache_hits, 0u);
  EXPECT_EQ(parsed->shard_exact_shortcuts, 0u);
  EXPECT_FALSE(parsed->accepting);
}

TEST(ServeWireTest, StatsResultRejectsCountPayloadMismatch) {
  // The count must agree exactly with the payload size.
  std::string payload;
  PutU32(5, &payload);
  for (uint64_t i = 0; i < 4; ++i) PutU64(i, &payload);  // one field short
  EXPECT_FALSE(serve::ParseStatsResultPayload(payload).ok());

  payload.clear();
  PutU32(2, &payload);
  for (uint64_t i = 0; i < 3; ++i) PutU64(i, &payload);  // one field extra
  EXPECT_FALSE(serve::ParseStatsResultPayload(payload).ok());

  // Truncated before the count itself.
  EXPECT_FALSE(serve::ParseStatsResultPayload("\x01\x02").ok());
  // Empty payload is malformed too (the count prefix is mandatory).
  EXPECT_FALSE(serve::ParseStatsResultPayload("").ok());
}

// --------------------------------------------------- bidirectional serving

TEST(ServeSessionTest, BidirectionalSessionMatchesSerialAndReportsEngine) {
  Fixture fixture = MakeFixture(15000, 20, 211);
  const auto bidir = BiFmIndex::Build(fixture.text).value();
  const AlgorithmA serial(&fixture.index);
  SessionOptions options;
  options.num_threads = 2;
  options.batch.engine = BatchEngine::kBidirectional;
  options.batch.bidir_indexes = {&bidir};
  Session session(&fixture.index, options);
  AlgorithmAScratch scratch;
  for (const BatchQuery& query : fixture.queries) {
    const Ticket ticket = session.Submit(query).value();
    const auto result = session.Wait(ticket);
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result->status.ok());
    EXPECT_EQ(result->engine, BatchEngine::kBidirectional);
    std::vector<Occurrence> expected =
        serial.Search(query.pattern, query.k, nullptr, &scratch);
    NormalizeOccurrences(&expected);
    EXPECT_EQ(result->hits, expected);
  }
}

TEST(ServeSessionTest, PerTicketEngineOverrideRunsAndIsReported) {
  Fixture fixture = MakeFixture(12000, 4, 223);
  const auto bidir = BiFmIndex::Build(fixture.text).value();
  SessionOptions options;
  options.num_threads = 2;
  options.batch.bidir_indexes = {&bidir};  // engine stays kAlgorithmA
  Session session(&fixture.index, options);
  const BatchQuery& query = fixture.queries[0];

  const Ticket plain = session.Submit(query).value();
  const auto base = session.Wait(plain).value();
  EXPECT_EQ(base.engine, BatchEngine::kAlgorithmA);

  for (const BatchEngine engine :
       {BatchEngine::kSTree, BatchEngine::kBidirectional}) {
    const Ticket ticket =
        session.Submit(query, engine, Callback{}).value();
    const auto result = session.Wait(ticket).value();
    ASSERT_TRUE(result.status.ok());
    EXPECT_EQ(result.engine, engine);
    EXPECT_EQ(result.hits, base.hits);  // Hamming engines agree exactly
  }
}

TEST(ServeSessionTest, AutoSessionResolvesPerTicket) {
  Fixture fixture = MakeFixture(20000, 1, 227);
  const auto bidir = BiFmIndex::Build(fixture.text).value();
  SessionOptions options;
  options.num_threads = 1;
  options.batch.engine = BatchEngine::kAuto;
  options.batch.bidir_indexes = {&bidir};
  Session session(&fixture.index, options);
  const AlgorithmA serial(&fixture.index);

  // A long high-k read resolves into the bidirectional regime; an exact
  // short read stays on Algorithm A. Both must match the serial engine and
  // report the engine they actually ran under.
  BatchQuery long_read;
  long_read.pattern.assign(fixture.text.begin() + 500,
                           fixture.text.begin() + 600);
  long_read.k = 3;
  BatchQuery exact;
  exact.pattern.assign(fixture.text.begin() + 80, fixture.text.begin() + 100);
  exact.k = 0;

  for (const BatchQuery& query : {long_read, exact}) {
    const Ticket ticket = session.Submit(query).value();
    const auto result = session.Wait(ticket).value();
    ASSERT_TRUE(result.status.ok());
    EXPECT_EQ(result.engine,
              AutoPickEngine(query.pattern.size(), query.k, true));
    std::vector<Occurrence> expected =
        serial.Search(query.pattern, query.k);
    NormalizeOccurrences(&expected);
    EXPECT_EQ(result.hits, expected);
  }
  const Ticket ticket = session.Submit(long_read).value();
  EXPECT_EQ(session.Wait(ticket)->engine, BatchEngine::kBidirectional);
}

TEST(ServeSessionTest, UnavailableOverrideRejectedAtSubmitTyped) {
  Fixture fixture = MakeFixture(8000, 2, 229);
  Session session(&fixture.index, {.num_threads = 1});
  // No bidir_indexes on this Session: the override must be refused with a
  // typed error at admission, leaving the Session fully serviceable.
  const auto rejected = session.Submit(fixture.queries[0],
                                       BatchEngine::kBidirectional,
                                       Callback{});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.status().message().find("bidirectional"),
            std::string::npos);
  const Ticket ticket = session.Submit(fixture.queries[0]).value();
  EXPECT_TRUE(session.Wait(ticket)->status.ok());
}

TEST(ServeWireTest, WireEngineIdsAreFrozenAndTotal) {
  // The on-wire ids are a frozen contract, independent of BatchEngine's
  // C++ declaration order — new engines append, nothing renumbers.
  EXPECT_EQ(static_cast<uint8_t>(serve::ToWireEngine(BatchEngine::kAlgorithmA)),
            0);
  EXPECT_EQ(static_cast<uint8_t>(serve::ToWireEngine(BatchEngine::kSTree)), 1);
  EXPECT_EQ(static_cast<uint8_t>(serve::ToWireEngine(BatchEngine::kKError)), 2);
  EXPECT_EQ(static_cast<uint8_t>(serve::ToWireEngine(BatchEngine::kWildcard)),
            3);
  EXPECT_EQ(static_cast<uint8_t>(serve::ToWireEngine(BatchEngine::kDictionary)),
            4);
  EXPECT_EQ(
      static_cast<uint8_t>(serve::ToWireEngine(BatchEngine::kBidirectional)),
      5);
  EXPECT_EQ(static_cast<uint8_t>(serve::ToWireEngine(BatchEngine::kAuto)), 6);
  for (const BatchEngine engine :
       {BatchEngine::kAlgorithmA, BatchEngine::kSTree, BatchEngine::kKError,
        BatchEngine::kWildcard, BatchEngine::kDictionary,
        BatchEngine::kBidirectional, BatchEngine::kAuto}) {
    const auto back = serve::FromWireEngine(
        static_cast<uint8_t>(serve::ToWireEngine(engine)));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), engine);
  }
  EXPECT_EQ(serve::FromWireEngine(7).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(serve::FromWireEngine(255).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeWireTest, EngineOverrideTrailerIsBackwardCompatible) {
  // Per docs/SERVING.md §4.4: new QUERY fields append at the END. The
  // engine byte rides behind the flags byte; a flagless QUERY stays
  // byte-identical to the original encoding, and every flag combination
  // round-trips.
  serve::QueryRequest plain;
  plain.request_id = 9;
  plain.k = 1;
  plain.pattern = "acgtacgt";
  std::string plain_bytes;
  serve::AppendQueryFrame(plain, &plain_bytes);

  serve::QueryRequest with_engine = plain;
  with_engine.engine_override = BatchEngine::kBidirectional;
  std::string engine_bytes;
  serve::AppendQueryFrame(with_engine, &engine_bytes);
  // Two extra bytes — flags + engine — appended after the old payload.
  ASSERT_EQ(engine_bytes.size(), plain_bytes.size() + 2);
  EXPECT_EQ(engine_bytes.substr(5, plain_bytes.size() - 5),
            plain_bytes.substr(5));

  serve::QueryRequest both = with_engine;
  both.want_stats = true;
  std::string both_bytes;
  serve::AppendQueryFrame(both, &both_bytes);
  ASSERT_EQ(both_bytes.size(), plain_bytes.size() + 2);

  for (const auto* request : {&plain, &with_engine, &both}) {
    std::string bytes;
    serve::AppendQueryFrame(*request, &bytes);
    const auto parsed = serve::ParseQueryPayload(bytes.substr(5));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(*parsed, *request);
  }

  // An engine byte with an unknown id is a decode error, not a silent
  // fallback; same for a flags byte announcing an engine that is not there.
  std::string bad = engine_bytes.substr(5);
  bad[bad.size() - 1] = static_cast<char>(200);
  EXPECT_FALSE(serve::ParseQueryPayload(bad).ok());
  EXPECT_FALSE(
      serve::ParseQueryPayload(engine_bytes.substr(5, engine_bytes.size() - 6))
          .ok());
}

}  // namespace
}  // namespace bwtk
