#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <vector>

#include "baselines/naive_search.h"
#include "bidir/bi_fm_index.h"
#include "bidir/bidir_search.h"
#include "bidir/search_scheme.h"
#include "bwt/fm_index.h"
#include "test_util.h"
#include "util/random.h"

namespace bwtk {
namespace {

using ::bwtk::testing::Codes;
using ::bwtk::testing::PeriodicDna;
using ::bwtk::testing::RandomDna;
using ::bwtk::testing::SampleWithFlips;

// Brute-force count of exact occurrences of `window` in `text`.
size_t CountExact(const std::vector<DnaCode>& text,
                  const std::vector<DnaCode>& window) {
  if (window.empty()) return text.size() + 1;  // empty-window convention
  size_t count = 0;
  for (size_t pos = 0; pos + window.size() <= text.size(); ++pos) {
    if (std::equal(window.begin(), window.end(), text.begin() + pos)) ++count;
  }
  return count;
}

// ---------------------------------------------------------------------------
// BiFmIndex: synchronization of the two halves
// ---------------------------------------------------------------------------

TEST(BiFmIndexTest, WholeRangeCoversBothMatrices) {
  const auto text = Codes("acagaca");
  const auto index = BiFmIndex::Build(text).value();
  const auto root = index.WholeRange();
  EXPECT_EQ(root.fwd.count(), index.rows());
  EXPECT_EQ(root.rev.count(), index.rows());
  EXPECT_EQ(root.count(), root.fwd.count());
}

TEST(BiFmIndexTest, ExtendRightCountsMatchBruteForce) {
  Rng rng(101);
  const auto text = RandomDna(400, &rng);
  const auto index = BiFmIndex::Build(text).value();
  // Grow windows left to right; at every step both halves must agree with
  // each other and with the brute-force substring count.
  for (int trial = 0; trial < 20; ++trial) {
    const size_t length = 1 + rng.NextBounded(8);
    const size_t pos = rng.NextBounded(text.size() - length);
    std::vector<DnaCode> window;
    auto range = index.WholeRange();
    for (size_t i = 0; i < length; ++i) {
      const DnaCode c = text[pos + i];
      window.push_back(c);
      range = index.ExtendRight(range, c);
      ASSERT_EQ(range.fwd.count(), range.rev.count());
      ASSERT_EQ(range.count(), CountExact(text, window));
    }
  }
}

TEST(BiFmIndexTest, ExtendLeftCountsMatchBruteForce) {
  Rng rng(102);
  const auto text = RandomDna(400, &rng);
  const auto index = BiFmIndex::Build(text).value();
  // The mirror: grow windows right to left.
  for (int trial = 0; trial < 20; ++trial) {
    const size_t length = 1 + rng.NextBounded(8);
    const size_t pos = rng.NextBounded(text.size() - length);
    std::vector<DnaCode> window;
    auto range = index.WholeRange();
    for (size_t i = length; i-- > 0;) {
      const DnaCode c = text[pos + i];
      window.insert(window.begin(), c);
      range = index.ExtendLeft(range, c);
      ASSERT_EQ(range.fwd.count(), range.rev.count());
      ASSERT_EQ(range.count(), CountExact(text, window));
    }
  }
}

TEST(BiFmIndexTest, InterleavedExtensionsStaySynchronized) {
  Rng rng(103);
  const auto text = RandomDna(600, &rng);
  const auto index = BiFmIndex::Build(text).value();
  // Random in-text window grown by alternating left/right extensions in a
  // random interleaving — the access pattern a search scheme produces.
  for (int trial = 0; trial < 30; ++trial) {
    const size_t length = 2 + rng.NextBounded(10);
    const size_t pos = rng.NextBounded(text.size() - length);
    size_t left = rng.NextBounded(length);  // window starts as [left, left]
    size_t right = left + 1;
    auto range = index.ExtendRight(index.WholeRange(), text[pos + left]);
    while (right - left < length) {
      const bool go_right =
          (left == 0) || (right < length && rng.NextBool(0.5));
      if (go_right) {
        range = index.ExtendRight(range, text[pos + right]);
        ++right;
      } else {
        --left;
        range = index.ExtendLeft(range, text[pos + left]);
      }
      ASSERT_EQ(range.fwd.count(), range.rev.count());
      const std::vector<DnaCode> window(text.begin() + pos + left,
                                        text.begin() + pos + right);
      ASSERT_EQ(range.count(), CountExact(text, window));
    }
  }
}

TEST(BiFmIndexTest, LocateMatchesForwardIndex) {
  Rng rng(104);
  const auto text = RandomDna(300, &rng);
  const auto index = BiFmIndex::Build(text).value();
  const std::vector<DnaCode> window(text.begin() + 40, text.begin() + 48);
  // Build the window's BiRange by left extensions, then Locate via the pair;
  // positions must be byte-identical to the forward half's own Locate.
  auto range = index.WholeRange();
  for (size_t i = window.size(); i-- > 0;) {
    range = index.ExtendLeft(range, window[i]);
  }
  ASSERT_FALSE(range.empty());
  auto via_pair = index.Locate(range, window.size());
  auto via_forward = index.forward().Locate(range.fwd, window.size());
  std::sort(via_pair.begin(), via_pair.end());
  std::sort(via_forward.begin(), via_forward.end());
  EXPECT_EQ(via_pair, via_forward);
  for (const size_t pos : via_pair) {
    EXPECT_TRUE(std::equal(window.begin(), window.end(), text.begin() + pos));
  }
}

TEST(BiFmIndexTest, ReverseKeyReversesBase4Digits) {
  // key for "acgt" read as base-4 digits; reversing q=4 gives "tgca".
  const uint64_t key = (0u << 6) | (1u << 4) | (2u << 2) | 3u;
  const uint64_t rev = (3u << 6) | (2u << 4) | (1u << 2) | 0u;
  EXPECT_EQ(BiFmIndex::ReverseKey(key, 4), rev);
  EXPECT_EQ(BiFmIndex::ReverseKey(rev, 4), key);
  EXPECT_EQ(BiFmIndex::ReverseKey(0, 12), 0u);
}

// ---------------------------------------------------------------------------
// BiFmIndex: serialization
// ---------------------------------------------------------------------------

TEST(BiFmIndexSerializationTest, RoundTripPreservesQueries) {
  Rng rng(105);
  const auto text = RandomDna(500, &rng);
  const auto built = BiFmIndex::Build(text).value();
  std::stringstream stream;
  ASSERT_TRUE(built.Save(stream).ok());
  const auto loaded = BiFmIndex::Load(stream).value();
  ASSERT_EQ(loaded.text_size(), built.text_size());
  const BidirectionalSearch before(&built), after(&loaded);
  for (int trial = 0; trial < 10; ++trial) {
    const auto pattern = SampleWithFlips(text, rng.NextBounded(400), 30,
                                         static_cast<int>(rng.NextBounded(3)),
                                         &rng);
    EXPECT_EQ(before.Search(pattern, 2, nullptr),
              after.Search(pattern, 2, nullptr));
  }
}

TEST(BiFmIndexSerializationTest, RejectsMonolithicForwardIndexFile) {
  // A plain FmIndex file (magic "BWTK") lacks the reverse half; Load must
  // say so rather than reporting generic corruption.
  const auto forward = FmIndex::Build(Codes("acgtacgtacgt")).value();
  std::stringstream stream;
  ASSERT_TRUE(forward.Save(stream).ok());
  const auto loaded = BiFmIndex::Load(stream);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("forward-only"), std::string::npos)
      << loaded.status().message();
}

TEST(BiFmIndexSerializationTest, RejectsTruncatedStream) {
  const auto built = BiFmIndex::Build(Codes("acgtacgtacgtacgt")).value();
  std::stringstream stream;
  ASSERT_TRUE(built.Save(stream).ok());
  const std::string bytes = stream.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(BiFmIndex::Load(truncated).ok());
}

TEST(BiFmIndexSerializationTest, RejectsCorruptedPayload) {
  const auto built = BiFmIndex::Build(Codes("acgtacgtacgtacgt")).value();
  std::stringstream stream;
  ASSERT_TRUE(built.Save(stream).ok());
  std::string bytes = stream.str();
  bytes[bytes.size() - 3] ^= 0x40;  // flip a bit under the checksum
  std::stringstream corrupted(bytes);
  EXPECT_FALSE(BiFmIndex::Load(corrupted).ok());
}

TEST(BiFmIndexTest, FromForwardMatchesDirectBuild) {
  Rng rng(106);
  const auto text = RandomDna(350, &rng);
  FmIndex::Options options;
  options.prefix_table_q = 3;
  const auto direct = BiFmIndex::Build(text, options).value();
  auto forward = FmIndex::Build(text, options).value();
  const auto upgraded = BiFmIndex::FromForward(std::move(forward)).value();
  ASSERT_EQ(upgraded.text_size(), direct.text_size());
  const BidirectionalSearch a(&direct), b(&upgraded);
  for (int trial = 0; trial < 10; ++trial) {
    const auto pattern = SampleWithFlips(text, rng.NextBounded(300), 24,
                                         static_cast<int>(rng.NextBounded(4)),
                                         &rng);
    EXPECT_EQ(a.Search(pattern, 3, nullptr), b.Search(pattern, 3, nullptr));
  }
}

// ---------------------------------------------------------------------------
// SearchScheme: validated construction
// ---------------------------------------------------------------------------

TEST(SearchSchemeTest, PieceBoundaries) {
  EXPECT_EQ(SearchScheme::PieceBoundaries(10, 1),
            (std::vector<uint32_t>{0, 10}));
  EXPECT_EQ(SearchScheme::PieceBoundaries(10, 3),
            (std::vector<uint32_t>{0, 3, 6, 10}));
  EXPECT_EQ(SearchScheme::PieceBoundaries(7, 4),
            (std::vector<uint32_t>{0, 1, 3, 5, 7}));
  EXPECT_EQ(SearchScheme::PieceBoundaries(4, 4),
            (std::vector<uint32_t>{0, 1, 2, 3, 4}));
}

TEST(SearchSchemeTest, CreateRejectsDisconnectedOrder) {
  // Visiting piece 0 then piece 2 leaves a hole: not executable as a pure
  // left/right window growth.
  SchemeSearch bad{{0, 2, 1}, {0, 0, 0}, {1, 1, 1}};
  EXPECT_FALSE(SearchScheme::Create(1, 3, {bad}).ok());
}

TEST(SearchSchemeTest, CreateRejectsNonPermutationOrder) {
  SchemeSearch bad{{0, 0, 1}, {0, 0, 0}, {1, 1, 1}};
  EXPECT_FALSE(SearchScheme::Create(1, 3, {bad}).ok());
}

TEST(SearchSchemeTest, CreateRejectsNonMonotoneBounds) {
  SchemeSearch bad{{0, 1}, {0, 0}, {1, 0}};  // upper decreases
  EXPECT_FALSE(SearchScheme::Create(1, 2, {bad}).ok());
  SchemeSearch bad_lower{{0, 1}, {1, 0}, {1, 1}};  // lower decreases
  EXPECT_FALSE(SearchScheme::Create(1, 2, {bad_lower}).ok());
}

TEST(SearchSchemeTest, CreateRejectsLowerAboveUpper) {
  SchemeSearch bad{{0, 1}, {0, 2}, {1, 1}};
  EXPECT_FALSE(SearchScheme::Create(1, 2, {bad}).ok());
}

TEST(SearchSchemeTest, CreateRejectsNonCoveringSet) {
  // Both searches require an exact first piece, so the distribution with a
  // mismatch in piece 0 AND piece 1 escapes... actually with k=2 the vector
  // (1, 1) is admitted by neither search below: search A caps piece 0 at 0,
  // search B caps piece 1 (visited first) at 0.
  SchemeSearch a{{0, 1}, {0, 0}, {0, 2}};
  SchemeSearch b{{1, 0}, {0, 0}, {0, 2}};
  EXPECT_FALSE(SearchScheme::Create(2, 2, {a, b}).ok());
}

TEST(SearchSchemeTest, CreateAcceptsPigeonholePair) {
  // The classic k=1 two-search scheme: exact prefix + permissive suffix,
  // and the mirror. Covers (0,0), (1,0), (0,1) — every vector with <= 1.
  SchemeSearch a{{0, 1}, {0, 0}, {0, 1}};
  SchemeSearch b{{1, 0}, {0, 1}, {0, 1}};
  const auto scheme = SearchScheme::Create(1, 2, {a, b});
  ASSERT_TRUE(scheme.ok());
  EXPECT_EQ(scheme.value().searches().size(), 2u);
  EXPECT_TRUE(scheme.value().vector_disjoint());
}

TEST(SearchSchemeTest, BuiltInSchemesAreValidAndDisjointThroughK4) {
  for (int32_t k = 0; k <= 4; ++k) {
    const auto scheme = SearchScheme::ForBudget(k);
    EXPECT_EQ(scheme.k(), k);
    EXPECT_TRUE(scheme.vector_disjoint()) << "k = " << k;
    EXPECT_GE(scheme.num_pieces(), static_cast<uint32_t>(k));
    // Re-prove the exact cover by enumeration: every error vector with
    // total <= k admitted by exactly one search.
    const uint32_t p = scheme.num_pieces();
    std::vector<int32_t> vec(p, 0);
    for (;;) {
      int32_t total = 0;
      for (const int32_t v : vec) total += v;
      if (total <= k) {
        int admitted = 0;
        for (const auto& search : scheme.searches()) {
          admitted += SearchScheme::Admits(search, vec);
        }
        EXPECT_EQ(admitted, 1) << "k = " << k;
      }
      size_t i = 0;
      while (i < p && vec[i] == k) vec[i++] = 0;
      if (i == p) break;
      ++vec[i];
    }
  }
}

TEST(SearchSchemeTest, PigeonholeFallbackCoversK5) {
  const auto scheme = SearchScheme::ForBudget(5);
  EXPECT_EQ(scheme.k(), 5);
  EXPECT_EQ(scheme.num_pieces(), 6u);  // k+1 pieces
  std::vector<int32_t> vec(scheme.num_pieces(), 0);
  // Spot-check coverage on a few adversarial vectors (full enumeration at
  // k=5 is the validator's job at Create time).
  const std::vector<std::vector<int32_t>> cases = {
      {5, 0, 0, 0, 0, 0}, {0, 0, 0, 0, 0, 5}, {1, 1, 1, 1, 1, 0},
      {0, 1, 1, 1, 1, 1}, {2, 0, 1, 0, 2, 0}, {0, 0, 0, 0, 0, 0}};
  for (const auto& v : cases) {
    int admitted = 0;
    for (const auto& search : scheme.searches()) {
      admitted += SearchScheme::Admits(search, v);
    }
    EXPECT_GE(admitted, 1) << "vector escaped the k=5 fallback";
  }
}

TEST(SearchSchemeTest, TrivialSchemeAdmitsEverything) {
  const auto scheme = SearchScheme::Trivial(3);
  ASSERT_EQ(scheme.searches().size(), 1u);
  EXPECT_EQ(scheme.num_pieces(), 1u);
  EXPECT_TRUE(scheme.vector_disjoint());
  for (int32_t total = 0; total <= 3; ++total) {
    EXPECT_TRUE(SearchScheme::Admits(scheme.searches()[0], {total}));
  }
}

// ---------------------------------------------------------------------------
// BidirectionalSearch: cross-validation against the naive scanner
// ---------------------------------------------------------------------------

void CrossValidate(uint32_t prefix_table_q, uint64_t seed) {
  Rng rng(seed);
  const auto text = RandomDna(1200, &rng);
  FmIndex::Options options;
  options.prefix_table_q = prefix_table_q;
  const auto index = BiFmIndex::Build(text, options).value();
  const BidirectionalSearch searcher(&index);
  const NaiveSearch naive(&text);
  for (int trial = 0; trial < 60; ++trial) {
    const size_t length = 12 + rng.NextBounded(60);
    const int32_t k = static_cast<int32_t>(rng.NextBounded(7));
    std::vector<DnaCode> pattern;
    if (rng.NextBool(0.5)) {
      pattern = SampleWithFlips(text, rng.NextBounded(text.size() - length),
                                length, static_cast<int>(rng.NextBounded(4)),
                                &rng);
    } else {
      pattern = RandomDna(length, &rng);
    }
    SearchStats stats;
    const auto hits = searcher.Search(pattern, k, &stats);
    const auto expected = naive.Search(pattern, k);
    ASSERT_EQ(hits, expected)
        << "m = " << length << " k = " << k << " q = " << prefix_table_q;
    if (!hits.empty()) {
      EXPECT_GT(stats.extend_calls, 0u);
    }
  }
}

TEST(BidirectionalSearchTest, MatchesNaiveScanner) { CrossValidate(0, 201); }

TEST(BidirectionalSearchTest, MatchesNaiveScannerWithPrefixTableSeeding) {
  CrossValidate(5, 202);
}

TEST(BidirectionalSearchTest, MatchesNaiveOnPeriodicText) {
  // Repetitive text exercises wide ranges and duplicate-heavy traversals.
  Rng rng(203);
  const auto text = PeriodicDna(900, 7, 0.02, &rng);
  const auto index = BiFmIndex::Build(text).value();
  const BidirectionalSearch searcher(&index);
  const NaiveSearch naive(&text);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t length = 10 + rng.NextBounded(30);
    const int32_t k = static_cast<int32_t>(rng.NextBounded(5));
    const auto pattern =
        SampleWithFlips(text, rng.NextBounded(text.size() - length), length,
                        static_cast<int>(rng.NextBounded(3)), &rng);
    ASSERT_EQ(searcher.Search(pattern, k, nullptr), naive.Search(pattern, k))
        << "m = " << length << " k = " << k;
  }
}

TEST(BidirectionalSearchTest, EdgeCases) {
  Rng rng(205);
  const auto text = Codes("acagacatgca");
  const auto index = BiFmIndex::Build(text).value();
  const BidirectionalSearch searcher(&index);
  const NaiveSearch naive(&text);
  // Pattern longer than the text: no hits.
  const auto long_pattern = RandomDna(32, &rng);
  EXPECT_TRUE(searcher.Search(long_pattern, 2, nullptr).empty());
  // k >= m: every window matches; budget must clamp, not overflow.
  const auto pattern = Codes("ttt");
  EXPECT_EQ(searcher.Search(pattern, 10, nullptr), naive.Search(pattern, 10));
  // Single-character pattern under Trivial fallback.
  const auto single = Codes("g");
  EXPECT_EQ(searcher.Search(single, 0, nullptr), naive.Search(single, 0));
  EXPECT_EQ(searcher.Search(single, 1, nullptr), naive.Search(single, 1));
}

TEST(BidirectionalSearchTest, PaperWorkedExample) {
  // Same worked example the S-tree test pins: r = tcaca in s = acagaca with
  // k = 2 has occurrences at 0 and 2, both distance 2.
  const auto index = BiFmIndex::Build(Codes("acagaca")).value();
  const BidirectionalSearch searcher(&index);
  const auto hits = searcher.Search(Codes("tcaca"), 2, nullptr);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], (Occurrence{0, 2}));
  EXPECT_EQ(hits[1], (Occurrence{2, 2}));
}

TEST(BidirectionalSearchTest, StatsCountPruningByKind) {
  Rng rng(204);
  const auto text = RandomDna(2000, &rng);
  const auto index = BiFmIndex::Build(text).value();
  const BidirectionalSearch searcher(&index);
  // A pattern present exactly in the text: the branch that follows the text
  // survives to the piece boundaries of every search, so the searches whose
  // lower bounds demand mismatches must cut it (tau_pruned), while random
  // branches elsewhere die on the upper bounds (budget_pruned).
  const auto pattern = SampleWithFlips(text, 700, 40, 0, &rng);
  SearchStats stats;
  searcher.Search(pattern, 2, &stats);
  EXPECT_GT(stats.extend_calls, 0u);
  EXPECT_GT(stats.budget_pruned, 0u);
  EXPECT_GT(stats.tau_pruned, 0u);
}

// ---------------------------------------------------------------------------
// Scheme property test: per-search emission == per-search admission,
// exhaustively for small m and k.
// ---------------------------------------------------------------------------

// All windows of `text` at Hamming distance <= k_cap from `pattern`, keyed
// by position, with their per-piece mismatch vectors.
std::map<size_t, std::vector<int32_t>> MismatchVectors(
    const std::vector<DnaCode>& text, const std::vector<DnaCode>& pattern,
    const std::vector<uint32_t>& boundaries) {
  std::map<size_t, std::vector<int32_t>> vectors;
  const size_t m = pattern.size();
  if (text.size() < m) return vectors;
  const size_t pieces = boundaries.size() - 1;
  for (size_t pos = 0; pos + m <= text.size(); ++pos) {
    std::vector<int32_t> vec(pieces, 0);
    for (size_t piece = 0; piece < pieces; ++piece) {
      for (uint32_t i = boundaries[piece]; i < boundaries[piece + 1]; ++i) {
        vec[piece] += text[pos + i] != pattern[i];
      }
    }
    vectors.emplace(pos, std::move(vec));
  }
  return vectors;
}

TEST(SchemePropertyTest, PerSearchHitsMatchAdmissionExhaustively) {
  // For every built-in scheme with k <= 3 and every pattern length m <= 12
  // that fits the scheme's pieces: each search must emit exactly the
  // occurrences whose per-piece mismatch vector it admits (no miss, no
  // duplicate within a search), and — the schemes being vector-disjoint —
  // each occurrence with <= k total mismatches must be emitted by exactly
  // one search.
  Rng rng(301);
  const auto text = RandomDna(160, &rng);
  const auto index = BiFmIndex::Build(text).value();
  const BidirectionalSearch searcher(&index);
  for (int32_t k = 0; k <= 3; ++k) {
    const auto scheme = SearchScheme::ForBudget(k);
    ASSERT_TRUE(scheme.vector_disjoint());
    for (uint32_t m = std::max<uint32_t>(scheme.num_pieces(), 1); m <= 12;
         ++m) {
      const auto boundaries =
          SearchScheme::PieceBoundaries(m, scheme.num_pieces());
      for (int trial = 0; trial < 8; ++trial) {
        std::vector<DnaCode> pattern;
        if (trial % 2 == 0) {
          pattern = SampleWithFlips(text, rng.NextBounded(text.size() - m), m,
                                    static_cast<int>(rng.NextBounded(k + 1)),
                                    &rng);
        } else {
          pattern = RandomDna(m, &rng);
        }
        const auto vectors = MismatchVectors(text, pattern, boundaries);
        std::map<size_t, int> total_emitted;
        for (size_t s = 0; s < scheme.searches().size(); ++s) {
          std::vector<Occurrence> hits;
          searcher.ExecuteSearch(pattern, scheme, s, &hits, nullptr);
          std::map<size_t, int> emitted;
          for (const auto& hit : hits) {
            ++emitted[hit.position];
            ++total_emitted[hit.position];
            // Reported distance must be the true Hamming distance.
            const auto& vec = vectors.at(hit.position);
            int32_t total = 0;
            for (const int32_t v : vec) total += v;
            EXPECT_EQ(hit.mismatches, total);
          }
          for (const auto& [pos, vec] : vectors) {
            const int expected =
                SearchScheme::Admits(scheme.searches()[s], vec) ? 1 : 0;
            const auto it = emitted.find(pos);
            const int got = it == emitted.end() ? 0 : it->second;
            ASSERT_EQ(got, expected)
                << "k = " << k << " m = " << m << " search " << s
                << " position " << pos;
          }
        }
        // Disjointness end to end: every admissible occurrence exactly once
        // across the whole scheme.
        for (const auto& [pos, vec] : vectors) {
          int32_t total = 0;
          for (const int32_t v : vec) total += v;
          const auto it = total_emitted.find(pos);
          const int got = it == total_emitted.end() ? 0 : it->second;
          ASSERT_EQ(got, total <= k ? 1 : 0)
              << "k = " << k << " m = " << m << " position " << pos;
        }
      }
    }
  }
}

TEST(SchemePropertyTest, CustomSchemeOverrideIsHonored) {
  // An engine handed an explicit (overlapping) scheme must still produce
  // normalized, deduplicated, naive-identical output.
  Rng rng(302);
  const auto text = RandomDna(500, &rng);
  const auto index = BiFmIndex::Build(text).value();
  // Pigeonhole k=1 variant where BOTH searches admit the all-exact vector:
  // covering but overlapping, so the executor's dedup pass must fire.
  SchemeSearch a{{0, 1}, {0, 0}, {0, 1}};
  SchemeSearch b{{1, 0}, {0, 0}, {0, 1}};
  const auto overlapping = SearchScheme::Create(1, 2, {a, b}).value();
  ASSERT_FALSE(overlapping.vector_disjoint());
  BidirOptions options;
  options.scheme = &overlapping;
  const BidirectionalSearch searcher(&index, options);
  const NaiveSearch naive(&text);
  for (int trial = 0; trial < 20; ++trial) {
    const auto pattern =
        SampleWithFlips(text, rng.NextBounded(460), 20,
                        static_cast<int>(rng.NextBounded(2)), &rng);
    ASSERT_EQ(searcher.Search(pattern, 1, nullptr), naive.Search(pattern, 1));
  }
}

}  // namespace
}  // namespace bwtk
