// Result cache (search/result_cache.h): LRU mechanics under a byte
// budget, version-fingerprint invalidation across index rebuilds, and the
// cache-on/cache-off byte-identity contract through BatchSearcher.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "bwt/fm_index.h"
#include "search/batch_searcher.h"
#include "search/result_cache.h"
#include "simulate/genome_generator.h"
#include "test_util.h"
#include "util/random.h"

namespace bwtk {
namespace {

using ::bwtk::testing::RandomDna;
using ::bwtk::testing::SampleWithFlips;

std::vector<DnaCode> TestGenome(size_t length, uint64_t seed) {
  GenomeOptions options;
  options.length = length;
  options.repeat_fraction = 0.3;
  options.seed = seed;
  return GenerateGenome(options).value();
}

std::vector<BatchQuery> MakeQueries(const std::vector<DnaCode>& genome,
                                    size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<BatchQuery> queries;
  for (size_t i = 0; i < count; ++i) {
    const int32_t k = static_cast<int32_t>(i % 4);
    const size_t len = 16 + rng.NextBounded(16);
    const size_t pos = rng.NextBounded(genome.size() - len);
    queries.push_back({SampleWithFlips(genome, pos, len, k, &rng), k});
  }
  return queries;
}

TEST(ResultCacheTest, LookupInsertAndLruEviction) {
  ResultCacheOptions options;
  options.enabled = true;
  // Room for roughly three small entries; forces eviction on the fourth.
  options.capacity_bytes = 1050;
  ResultCache cache(options);

  auto pattern = [](char c) { return std::vector<DnaCode>(8, DnaCode(c)); };
  ResultCache::Entry entry;
  entry.hits = {{1, 0}, {2, 1}};
  entry.stats.extend_calls = 7;

  cache.Insert(0, 1, 42, pattern(0), entry);
  cache.Insert(0, 1, 42, pattern(1), entry);
  cache.Insert(0, 1, 42, pattern(2), entry);
  ASSERT_EQ(cache.Stats().entries, 3u);

  // Touch pattern(0): it becomes most-recent, pattern(1) is now LRU.
  ResultCache::Entry out;
  ASSERT_TRUE(cache.Lookup(0, 1, 42, pattern(0), &out));
  EXPECT_EQ(out.hits, entry.hits);
  EXPECT_EQ(out.stats, entry.stats);

  cache.Insert(0, 1, 42, pattern(3), entry);  // evicts pattern(1)
  EXPECT_TRUE(cache.Lookup(0, 1, 42, pattern(0), &out));
  EXPECT_FALSE(cache.Lookup(0, 1, 42, pattern(1), &out));
  EXPECT_TRUE(cache.Lookup(0, 1, 42, pattern(2), &out));
  EXPECT_TRUE(cache.Lookup(0, 1, 42, pattern(3), &out));
  const ResultCache::CacheStats stats = cache.Stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, options.capacity_bytes);

  // The key is (engine, k, version, pattern): any one differing is a miss.
  EXPECT_FALSE(cache.Lookup(1, 1, 42, pattern(0), &out));
  EXPECT_FALSE(cache.Lookup(0, 2, 42, pattern(0), &out));
  EXPECT_FALSE(cache.Lookup(0, 1, 43, pattern(0), &out));

  // An entry larger than the whole budget is dropped, not cached.
  ResultCache::Entry huge;
  huge.hits.assign(1000, Occurrence{0, 0});
  cache.Insert(0, 1, 42, pattern(4), huge);
  EXPECT_FALSE(cache.Lookup(0, 1, 42, pattern(4), &out));

  cache.Clear();
  EXPECT_EQ(cache.Stats().entries, 0u);
  EXPECT_EQ(cache.Stats().bytes, 0u);
}

TEST(ResultCacheTest, FmIndexVersionTracksContentAndOptions) {
  const auto genome_a = TestGenome(4000, 11);
  auto genome_b = genome_a;
  genome_b[2000] = DnaCode((genome_b[2000] + 1) % kDnaAlphabetSize);

  const auto index_a1 = FmIndex::Build(genome_a).value();
  const auto index_a2 = FmIndex::Build(genome_a).value();
  const auto index_b = FmIndex::Build(genome_b).value();
  // Same text, same options: identical fingerprint (the cache survives an
  // in-place rebuild of the same data).
  EXPECT_EQ(FmIndexVersion(index_a1), FmIndexVersion(index_a2));
  // One character flipped: the fingerprint must move.
  EXPECT_NE(FmIndexVersion(index_a1), FmIndexVersion(index_b));
  // Same text, different structural options: also a different version.
  FmIndex::Options opts;
  opts.sa_sample_rate = 16;
  const auto index_a3 = FmIndex::Build(genome_a, opts).value();
  EXPECT_NE(FmIndexVersion(index_a1), FmIndexVersion(index_a3));
}

TEST(ResultCacheTest, BatchSearcherCacheOnOffByteIdentity) {
  const auto genome = TestGenome(16000, 13);
  const auto index = FmIndex::Build(genome).value();
  std::vector<BatchQuery> queries = MakeQueries(genome, 24, 17);
  // Duplicate-heavy stream: append the same queries again, shuffled order
  // is unnecessary — the second half must be served from the cache.
  queries.insert(queries.end(), queries.begin(), queries.end());

  BatchOptions plain;
  plain.num_threads = 4;
  BatchSearcher uncached(&index, plain);
  const BatchResult expected = uncached.Search(queries);

  BatchOptions cached_options;
  cached_options.num_threads = 4;
  cached_options.result_cache.enabled = true;
  cached_options.result_cache_instance =
      std::make_shared<ResultCache>(cached_options.result_cache);
  BatchSearcher cached(&index, cached_options);
  const BatchResult warm1 = cached.Search(queries);
  const BatchResult warm2 = cached.Search(queries);  // fully warm pass

  ASSERT_EQ(warm1.occurrences.size(), expected.occurrences.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(warm1.occurrences[i], expected.occurrences[i]) << "query " << i;
    EXPECT_EQ(warm2.occurrences[i], expected.occurrences[i]) << "query " << i;
  }
  // Cached entries carry the original stats, so the aggregate is identical
  // whether the batch ran cold or fully warm.
  EXPECT_EQ(warm1.stats, expected.stats);
  EXPECT_EQ(warm2.stats, expected.stats);
  const ResultCache::CacheStats stats =
      cached_options.result_cache_instance->Stats();
  EXPECT_GT(stats.hits, 0u);
}

TEST(ResultCacheTest, RebuildInvalidatesByVersionNotByFlush) {
  // One shared cache across two searchers over *different* texts: entries
  // written against the first index must never serve the second (the
  // version key diverges), with no explicit invalidation call.
  const auto genome_a = TestGenome(8000, 19);
  const auto genome_b = TestGenome(8000, 23);
  const auto index_a = FmIndex::Build(genome_a).value();
  const auto index_b = FmIndex::Build(genome_b).value();
  const std::vector<BatchQuery> queries = MakeQueries(genome_a, 16, 29);

  auto shared = std::make_shared<ResultCache>(
      ResultCacheOptions{.enabled = true, .capacity_bytes = size_t{8} << 20});
  BatchOptions options;
  options.num_threads = 2;
  options.result_cache.enabled = true;
  options.result_cache_instance = shared;

  BatchSearcher searcher_a(&index_a, options);
  const BatchResult from_a = searcher_a.Search(queries);
  const uint64_t hits_after_a = shared->Stats().hits;

  // "Rebuild": a new searcher over new text, same cache instance.
  BatchSearcher searcher_b(&index_b, options);
  const BatchResult from_b = searcher_b.Search(queries);
  // Every query missed (different version) and re-executed against B.
  EXPECT_EQ(shared->Stats().hits, hits_after_a);
  BatchOptions plain;
  plain.num_threads = 2;
  BatchSearcher uncached_b(&index_b, plain);
  const BatchResult expected_b = uncached_b.Search(queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(from_b.occurrences[i], expected_b.occurrences[i])
        << "query " << i;
  }
  // And the A entries still serve A afterwards (no cross-flush).
  const BatchResult again_a = searcher_a.Search(queries);
  EXPECT_GT(shared->Stats().hits, hits_after_a);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(again_a.occurrences[i], from_a.occurrences[i]) << "query " << i;
  }
}

}  // namespace
}  // namespace bwtk
