#include <gtest/gtest.h>

#include <algorithm>

#include "suffix/lcp.h"
#include "suffix/rmq.h"
#include "suffix/suffix_array.h"
#include "test_util.h"
#include "util/random.h"

namespace bwtk {
namespace {

using ::bwtk::testing::PeriodicDna;
using ::bwtk::testing::RandomDna;

int32_t NaiveLcp(const std::vector<uint32_t>& text, size_t a, size_t b) {
  int32_t len = 0;
  while (a < text.size() && b < text.size() && text[a] == text[b]) {
    ++a;
    ++b;
    ++len;
  }
  return len;
}

std::vector<uint32_t> Widen(const std::vector<DnaCode>& codes) {
  return std::vector<uint32_t>(codes.begin(), codes.end());
}

TEST(RmqTest, MatchesScanOnRandomData) {
  Rng rng(41);
  std::vector<int32_t> values(500);
  for (auto& v : values) v = static_cast<int32_t>(rng.NextBounded(1000));
  RangeMinQuery<int32_t> rmq(values);
  for (int trial = 0; trial < 2000; ++trial) {
    size_t lo = rng.NextBounded(values.size());
    size_t hi = rng.NextBounded(values.size());
    if (lo > hi) std::swap(lo, hi);
    const int32_t expected =
        *std::min_element(values.begin() + lo, values.begin() + hi + 1);
    EXPECT_EQ(rmq.Min(lo, hi), expected) << lo << ".." << hi;
  }
}

TEST(RmqTest, SingleElementAndFullRange) {
  RangeMinQuery<int32_t> rmq({5, 3, 9});
  EXPECT_EQ(rmq.Min(0, 0), 5);
  EXPECT_EQ(rmq.Min(1, 1), 3);
  EXPECT_EQ(rmq.Min(0, 2), 3);
  EXPECT_EQ(rmq.Min(2, 2), 9);
}

TEST(RmqTest, SizeSpanningManyBlocks) {
  std::vector<int32_t> values(10 * RangeMinQuery<int32_t>::kBlockSize + 7);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int32_t>(values.size() - i);
  }
  RangeMinQuery<int32_t> rmq(values);
  EXPECT_EQ(rmq.Min(0, values.size() - 1), 1);
  EXPECT_EQ(rmq.Min(0, 0), static_cast<int32_t>(values.size()));
}

TEST(KasaiTest, MatchesNaiveAdjacentLcps) {
  Rng rng(43);
  const auto text = Widen(PeriodicDna(300, 7, 0.1, &rng));
  const auto sa = BuildSuffixArray(text, 4).value();
  const auto lcp = BuildLcpArrayKasai(text, sa);
  ASSERT_EQ(lcp.size(), sa.size());
  EXPECT_EQ(lcp[0], 0);
  for (size_t i = 1; i < sa.size(); ++i) {
    EXPECT_EQ(lcp[i], NaiveLcp(text, sa[i - 1], sa[i])) << i;
  }
}

class LcpIndexRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(LcpIndexRandomTest, ArbitraryPairQueriesMatchNaive) {
  Rng rng(500 + GetParam());
  const size_t length = 20 + rng.NextBounded(300);
  const auto text =
      Widen(GetParam() % 2 == 0 ? RandomDna(length, &rng)
                                : PeriodicDna(length, 5, 0.05, &rng));
  auto index = LcpIndex::Build(text, 4).value();
  for (int trial = 0; trial < 200; ++trial) {
    const size_t a = rng.NextBounded(length + 1);
    const size_t b = rng.NextBounded(length + 1);
    EXPECT_EQ(index.Lcp(a, b), NaiveLcp(text, a, b)) << a << "," << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LcpIndexRandomTest, ::testing::Range(0, 10));

TEST(LcpIndexTest, IdenticalPositionsGiveSuffixLength) {
  auto index = LcpIndex::Build({0, 1, 2, 3, 0, 1}, 4).value();
  EXPECT_EQ(index.Lcp(2, 2), 4);
  EXPECT_EQ(index.Lcp(6, 6), 0);
}

TEST(LcpIndexTest, SentinelPositionsGiveZero) {
  auto index = LcpIndex::Build({0, 0, 0}, 4).value();
  EXPECT_EQ(index.Lcp(3, 0), 0);
  EXPECT_EQ(index.Lcp(0, 3), 0);
}

}  // namespace
}  // namespace bwtk
