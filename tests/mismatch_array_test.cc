#include <gtest/gtest.h>

#include <algorithm>
#include <span>

#include "mismatch/kangaroo.h"
#include "mismatch/mismatch_array.h"
#include "mismatch/zbox.h"
#include "test_util.h"
#include "util/random.h"

namespace bwtk {
namespace {

using ::bwtk::testing::Codes;
using ::bwtk::testing::PeriodicDna;
using ::bwtk::testing::RandomDna;
using ::bwtk::testing::RandomDnaBiased;

std::vector<int32_t> NaiveZ(const std::vector<DnaCode>& s) {
  std::vector<int32_t> z(s.size(), 0);
  if (s.empty()) return z;
  z[0] = static_cast<int32_t>(s.size());
  for (size_t i = 1; i < s.size(); ++i) {
    while (i + z[i] < s.size() && s[z[i]] == s[i + z[i]]) ++z[i];
  }
  return z;
}

TEST(ZboxTest, FixedCases) {
  EXPECT_EQ(ComputeZArray(Codes("aaaa")), (std::vector<int32_t>{4, 3, 2, 1}));
  EXPECT_EQ(ComputeZArray(Codes("acac")), (std::vector<int32_t>{4, 0, 2, 0}));
  EXPECT_EQ(ComputeZArray(std::vector<DnaCode>{}), (std::vector<int32_t>{}));
}

class ZboxRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(ZboxRandomTest, MatchesNaive) {
  Rng rng(100 + GetParam());
  const auto s = GetParam() % 2 == 0
                     ? RandomDna(1 + rng.NextBounded(300), &rng)
                     : PeriodicDna(1 + rng.NextBounded(300), 3, 0.1, &rng);
  EXPECT_EQ(ComputeZArray(s), NaiveZ(s));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ZboxRandomTest, ::testing::Range(0, 16));

TEST(PatternLcpTest, MismatchesBetweenMatchesNaive) {
  Rng rng(11);
  const auto pattern = PeriodicDna(200, 7, 0.15, &rng);
  const auto lcp = PatternLcp::Build(pattern).value();
  const std::span<const DnaCode> span(pattern);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t a = rng.NextBounded(pattern.size());
    const size_t b = rng.NextBounded(pattern.size());
    const size_t len = pattern.size() - std::max(a, b);
    const size_t cap = 1 + rng.NextBounded(8);
    EXPECT_EQ(lcp.MismatchesBetween(a, b, len, cap),
              MismatchPositionsNaive(span.subspan(a, len),
                                     span.subspan(b, len), cap))
        << a << "," << b;
  }
}

TEST(HammingTest, CappedDistance) {
  const auto a = Codes("acgtacgt");
  const auto b = Codes("aagtacga");
  EXPECT_EQ(HammingDistanceCapped(a, b, 8), 2);
  EXPECT_EQ(HammingDistanceCapped(a, b, 1), 2);  // exceeds: cap + 1
  EXPECT_EQ(HammingDistanceCapped(a, b, 0), 1);  // early exit
  EXPECT_EQ(HammingDistanceCapped(a, a, 0), 0);
}

TEST(ShiftMismatchTableTest, PaperFigure4Example) {
  // r = tcacg (Fig. 4): R_1 compares tcac with cacg -> all four positions
  // mismatch; R_4 compares t with g -> position 1.
  const auto table = ShiftMismatchTable::Build(Codes("tcacg"), 3).value();
  EXPECT_EQ(table.Shift(1), (MismatchArray{1, 2, 3, 4}));
  EXPECT_EQ(table.Shift(4), (MismatchArray{1}));
  EXPECT_EQ(table.Shift(2), MismatchPositionsNaive(Codes("tca"), Codes("acg"),
                                                   table.capacity()));
}

TEST(ShiftMismatchTableTest, CapacityIsKPlusTwo) {
  // All-mismatch shifts must be truncated at k + 2 entries (the paper keeps
  // k + 2 "rather than k + 1" for correct derivations).
  const auto table =
      ShiftMismatchTable::Build(Codes("tgtgtgtgtgtg"), 1).value();
  EXPECT_EQ(table.capacity(), 3u);
  EXPECT_EQ(table.Shift(1).size(), 3u);  // odd shift of tgtg...: all differ
}

class ShiftTableRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(ShiftTableRandomTest, AllShiftsMatchNaive) {
  Rng rng(300 + GetParam());
  const size_t m = 5 + rng.NextBounded(120);
  const auto r =
      GetParam() % 2 == 0 ? RandomDna(m, &rng) : PeriodicDna(m, 4, 0.1, &rng);
  const int32_t k = static_cast<int32_t>(rng.NextBounded(6));
  const auto table = ShiftMismatchTable::Build(r, k).value();
  const std::span<const DnaCode> span(r);
  for (size_t i = 1; i < m; ++i) {
    EXPECT_EQ(table.Shift(i),
              MismatchPositionsNaive(span.first(m - i), span.subspan(i),
                                     table.capacity()))
        << "shift " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShiftTableRandomTest, ::testing::Range(0, 12));

TEST(ShiftMismatchTableTest, SuffixMismatchesMatchesNaive) {
  Rng rng(55);
  const auto r = PeriodicDna(90, 6, 0.2, &rng);
  const auto table = ShiftMismatchTable::Build(r, 4).value();
  const std::span<const DnaCode> span(r);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t i = rng.NextBounded(r.size());
    const size_t j = rng.NextBounded(r.size());
    const size_t overlap = r.size() - std::max(i, j);
    EXPECT_EQ(table.SuffixMismatches(i, j, overlap),
              MismatchPositionsNaive(span.subspan(i, overlap),
                                     span.subspan(j, overlap), overlap));
  }
}

TEST(ShiftMismatchTableTest, RejectsNegativeK) {
  EXPECT_FALSE(ShiftMismatchTable::Build(Codes("acgt"), -1).ok());
}

// --- merge() (Proposition 1) -----------------------------------------------

TEST(MergeTest, PaperSectionIVBShape) {
  // The Section IV.B construction: alpha = tcacg, beta = its shift by one,
  // gamma = its shift by two; merging mm(alpha,beta) and mm(alpha,gamma)
  // must equal the directly computed mm(beta,gamma).
  const auto alpha = Codes("tcacg");
  const auto beta = Codes("cacg");
  const auto gamma = Codes("acg");
  const auto a1 = MismatchPositionsNaive(alpha, beta, 6);
  const auto a2 = MismatchPositionsNaive(alpha, gamma, 6);
  const auto merged = MergeMismatchArrays(a1, a2, beta, gamma,
                                          /*a1_exhaustive=*/true,
                                          /*a2_exhaustive=*/true, 6);
  EXPECT_EQ(merged.horizon, kUnboundedHorizon);
  // Offsets 1..3 are real character mismatches; offset 4 is the "one of
  // them does not exist" case the paper's definition also reports.
  EXPECT_EQ(merged.positions, (MismatchArray{1, 2, 3, 4}));
}

class MergeRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(MergeRandomTest, ExhaustiveInputsGiveExactResult) {
  Rng rng(700 + GetParam());
  const size_t len = 3 + rng.NextBounded(60);
  const auto alpha = RandomDnaBiased(len, 3, &rng);
  const auto beta = RandomDnaBiased(len, 3, &rng);
  const auto gamma = RandomDnaBiased(len, 3, &rng);
  const auto a1 = MismatchPositionsNaive(alpha, beta, len);
  const auto a2 = MismatchPositionsNaive(alpha, gamma, len);
  const auto merged =
      MergeMismatchArrays(a1, a2, beta, gamma, true, true, len);
  EXPECT_EQ(merged.positions, MismatchPositionsNaive(beta, gamma, len));
}

TEST_P(MergeRandomTest, TruncatedInputsRespectHorizon) {
  Rng rng(800 + GetParam());
  const size_t len = 20 + rng.NextBounded(60);
  const auto alpha = RandomDnaBiased(len, 2, &rng);
  const auto beta = RandomDnaBiased(len, 2, &rng);
  const auto gamma = RandomDnaBiased(len, 2, &rng);
  const size_t cap = 2 + rng.NextBounded(5);
  const auto a1 = MismatchPositionsNaive(alpha, beta, cap);
  const auto a2 = MismatchPositionsNaive(alpha, gamma, cap);
  const bool a1_full = a1.size() < cap;  // fewer than cap => exhaustive
  const bool a2_full = a2.size() < cap;
  const auto merged =
      MergeMismatchArrays(a1, a2, beta, gamma, a1_full, a2_full, len);
  const auto truth = MismatchPositionsNaive(beta, gamma, len);
  // Soundness: every reported position is a true mismatch.
  for (const int32_t pos : merged.positions) {
    EXPECT_NE(std::find(truth.begin(), truth.end(), pos), truth.end()) << pos;
  }
  // Completeness up to the horizon.
  for (const int32_t pos : truth) {
    if (pos <= merged.horizon) {
      EXPECT_NE(std::find(merged.positions.begin(), merged.positions.end(),
                          pos),
                merged.positions.end())
          << pos << " horizon=" << merged.horizon;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MergeRandomTest, ::testing::Range(0, 30));

TEST(MergeTest, EmptyInputsMeanEqualStrings) {
  const auto merged = MergeMismatchArrays({}, {}, Codes("acgt"), Codes("acgt"),
                                          true, true, 4);
  EXPECT_TRUE(merged.positions.empty());
  EXPECT_EQ(merged.horizon, kUnboundedHorizon);
}

TEST(MergeTest, MaxCountTruncatesOutput) {
  const auto alpha = Codes("cccc");
  const auto beta = Codes("aaaa");
  const auto gamma = Codes("tttt");
  const auto a1 = MismatchPositionsNaive(alpha, beta, 6);
  const auto a2 = MismatchPositionsNaive(alpha, gamma, 6);
  const auto merged = MergeMismatchArrays(a1, a2, beta, gamma, true, true, 2);
  EXPECT_EQ(merged.positions, (MismatchArray{1, 2}));
}

}  // namespace
}  // namespace bwtk
