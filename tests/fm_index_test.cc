#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "bwt/fm_index.h"
#include "test_util.h"
#include "util/random.h"

namespace bwtk {
namespace {

using ::bwtk::testing::Codes;
using ::bwtk::testing::PeriodicDna;
using ::bwtk::testing::RandomDna;

std::vector<size_t> NaiveOccurrences(const std::vector<DnaCode>& text,
                                     const std::vector<DnaCode>& pattern) {
  std::vector<size_t> out;
  if (pattern.empty() || pattern.size() > text.size()) return out;
  for (size_t pos = 0; pos + pattern.size() <= text.size(); ++pos) {
    if (std::equal(pattern.begin(), pattern.end(), text.begin() + pos)) {
      out.push_back(pos);
    }
  }
  return out;
}

std::vector<size_t> Sorted(std::vector<size_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(FmIndexTest, PaperExampleCounts) {
  // Section III.A: r = aca occurs twice in s = acagaca.
  const auto index = FmIndex::Build(Codes("acagaca")).value();
  EXPECT_EQ(index.CountOccurrences(Codes("aca")), 2u);
  EXPECT_EQ(index.CountOccurrences(Codes("acag")), 1u);
  EXPECT_EQ(index.CountOccurrences(Codes("t")), 0u);
  EXPECT_EQ(index.CountOccurrences(Codes("a")), 4u);
}

TEST(FmIndexTest, PaperExampleLocate) {
  const auto index = FmIndex::Build(Codes("acagaca")).value();
  const auto pattern = Codes("aca");
  const auto range = index.MatchForward(pattern);
  EXPECT_EQ(Sorted(index.Locate(range, pattern.size())),
            (std::vector<size_t>{0, 4}));
}

TEST(FmIndexTest, ExtendStepByStepMatchesSearchSequence) {
  // The search sequence of Section III.A: processing a, c, a narrows the
  // range to exactly the two occurrences.
  const auto index = FmIndex::Build(Codes("acagaca")).value();
  FmIndex::Range range = index.WholeRange();
  EXPECT_EQ(range.count(), 8);
  range = index.Extend(range, CharToCode('a'));
  EXPECT_EQ(range.count(), 4);  // F_a = <a, [1, 4]>
  range = index.Extend(range, CharToCode('c'));
  EXPECT_EQ(range.count(), 2);  // <c, [1, 2]>
  range = index.Extend(range, CharToCode('a'));
  EXPECT_EQ(range.count(), 2);  // <a, [2, 3]>
}

TEST(FmIndexTest, EmptyPatternMatchesEverywhere) {
  const auto index = FmIndex::Build(Codes("acgt")).value();
  const auto range = index.MatchForward({});
  EXPECT_EQ(static_cast<size_t>(range.count()), index.rows());
}

struct FmParam {
  uint32_t checkpoint_rate;
  uint32_t sa_sample_rate;
};

class FmIndexParamTest : public ::testing::TestWithParam<FmParam> {};

TEST_P(FmIndexParamTest, CountAndLocateMatchNaive) {
  Rng rng(900 + GetParam().checkpoint_rate + GetParam().sa_sample_rate);
  const auto text = PeriodicDna(800, 9, 0.2, &rng);
  FmIndex::Options options;
  options.checkpoint_rate = GetParam().checkpoint_rate;
  options.sa_sample_rate = GetParam().sa_sample_rate;
  const auto index = FmIndex::Build(text, options).value();
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<DnaCode> pattern;
    if (trial % 2 == 0) {
      const size_t len = 1 + rng.NextBounded(15);
      const size_t pos = rng.NextBounded(text.size() - len);
      pattern.assign(text.begin() + pos, text.begin() + pos + len);
    } else {
      pattern = RandomDna(1 + rng.NextBounded(10), &rng);
    }
    const auto expected = NaiveOccurrences(text, pattern);
    EXPECT_EQ(index.CountOccurrences(pattern), expected.size());
    const auto range = index.MatchForward(pattern);
    EXPECT_EQ(Sorted(index.Locate(range, pattern.size())), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FmIndexParamTest,
    ::testing::Values(FmParam{32, 1}, FmParam{32, 4}, FmParam{64, 8},
                      FmParam{128, 16}, FmParam{256, 32}),
    [](const ::testing::TestParamInfo<FmParam>& info) {
      return "cp" + std::to_string(info.param.checkpoint_rate) + "_sa" +
             std::to_string(info.param.sa_sample_rate);
    });

TEST(FmIndexTest, ExtendAllAgreesWithExtend) {
  Rng rng(33);
  const auto text = PeriodicDna(400, 11, 0.2, &rng);
  const auto index = FmIndex::Build(text).value();
  // Walk random paths comparing the fused extension with four single ones.
  for (int trial = 0; trial < 50; ++trial) {
    FmIndex::Range range = index.WholeRange();
    for (int step = 0; step < 12 && !range.empty(); ++step) {
      FmIndex::Range all[kDnaAlphabetSize];
      index.ExtendAll(range, all);
      for (DnaCode c = 0; c < kDnaAlphabetSize; ++c) {
        ASSERT_EQ(all[c], index.Extend(range, c)) << "step " << step;
      }
      range = all[rng.NextBounded(4)];
    }
  }
}

TEST(FmIndexTest, SuffixArrayValuesAreAPermutation) {
  Rng rng(31);
  const auto text = RandomDna(257, &rng);
  const auto index = FmIndex::Build(text).value();
  std::vector<size_t> values;
  for (size_t row = 0; row < index.rows(); ++row) {
    values.push_back(index.SuffixArrayValue(static_cast<SaIndex>(row)));
  }
  std::sort(values.begin(), values.end());
  for (size_t i = 0; i < values.size(); ++i) EXPECT_EQ(values[i], i);
}

TEST(FmIndexTest, RejectsZeroSampleRate) {
  FmIndex::Options options;
  options.sa_sample_rate = 0;
  EXPECT_FALSE(FmIndex::Build(Codes("acgt"), options).ok());
}

TEST(FmIndexTest, SerializationRoundTrip) {
  Rng rng(53);
  const auto text = RandomDna(511, &rng);
  const auto index = FmIndex::Build(text).value();
  std::stringstream buffer;
  ASSERT_TRUE(index.Save(buffer).ok());
  const auto loaded = FmIndex::Load(buffer).value();
  EXPECT_EQ(loaded.text_size(), index.text_size());
  for (int trial = 0; trial < 30; ++trial) {
    const size_t len = 1 + rng.NextBounded(12);
    const size_t pos = rng.NextBounded(text.size() - len);
    const std::vector<DnaCode> pattern(text.begin() + pos,
                                       text.begin() + pos + len);
    EXPECT_EQ(loaded.CountOccurrences(pattern),
              index.CountOccurrences(pattern));
    const auto range = loaded.MatchForward(pattern);
    EXPECT_EQ(Sorted(loaded.Locate(range, len)),
              Sorted(index.Locate(index.MatchForward(pattern), len)));
  }
}

TEST(FmIndexTest, LoadRejectsGarbage) {
  std::stringstream buffer("this is not an index file at all");
  EXPECT_EQ(FmIndex::Load(buffer).status().code(), StatusCode::kCorruption);
}

TEST(FmIndexTest, LoadRejectsTruncation) {
  const auto index = FmIndex::Build(Codes("acgtacgtacgt")).value();
  std::stringstream buffer;
  ASSERT_TRUE(index.Save(buffer).ok());
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_FALSE(FmIndex::Load(truncated).ok());
}

TEST(FmIndexTest, LoadRejectsBitFlip) {
  const auto index = FmIndex::Build(Codes("acgtacgtacgtacgtacgt")).value();
  std::stringstream buffer;
  ASSERT_TRUE(index.Save(buffer).ok());
  std::string bytes = buffer.str();
  // Offset 50 lies inside the first packed BWT word (after the 40-byte
  // header and the 8-byte vector length), which the checksum covers.
  ASSERT_GT(bytes.size(), 56u);
  bytes[50] ^= 0x40;
  std::stringstream corrupted(bytes);
  EXPECT_FALSE(FmIndex::Load(corrupted).ok());
}

TEST(FmIndexTest, MemoryUsageScalesWithText) {
  Rng rng(61);
  const auto small = FmIndex::Build(RandomDna(1000, &rng)).value();
  const auto large = FmIndex::Build(RandomDna(10000, &rng)).value();
  EXPECT_GT(large.MemoryUsage(), small.MemoryUsage());
  // 2-bit BWT + 1/4-byte checkpoints + samples: far below 1 byte per base
  // at default rates... but allow generous slack for small inputs.
  EXPECT_LT(large.MemoryUsage(), 10000u * 4);
}

}  // namespace
}  // namespace bwtk
