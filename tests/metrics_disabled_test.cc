// Verifies that BWTK_DISABLE_METRICS compiles every observability hook to a
// no-op. This TU defines the macro itself (instead of a separate CMake
// configuration) and is linked into the metrics_test binary; it includes ONLY
// obs/metrics.h — never bwtk.h or any header with inline instrumented
// functions — so the per-TU macro cannot create an ODR violation: the obs
// classes and functions are defined unconditionally and identically
// everywhere, only the macro expansions differ.

#define BWTK_DISABLE_METRICS

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace bwtk {
namespace {

static_assert(BWTK_METRICS_ENABLED == 0,
              "BWTK_DISABLE_METRICS must zero BWTK_METRICS_ENABLED");

TEST(MetricsDisabledTest, HooksAreNoOps) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Instance();
  const obs::MetricsBlock before = registry.Snapshot();
  BWTK_METRIC_COUNT(kCounterRankCalls);
  BWTK_METRIC_COUNT_N(kCounterRankCalls, 1000);
  BWTK_METRIC_COUNT2(kCounterExtendCalls, 1, kCounterRankCalls, 2);
  BWTK_METRIC_OBSERVE(kHistQueryNanos, 42);
  {
    BWTK_SCOPED_TIMER(kPhaseMerge);
    BWTK_SCOPED_HIST_TIMER(kHistQueryNanos);
  }
  const obs::MetricsBlock delta = obs::Diff(registry.Snapshot(), before);
  EXPECT_EQ(delta, obs::MetricsBlock{});
}

TEST(MetricsDisabledTest, HooksDiscardSideEffectFreeArguments) {
  // The disabled expansions must not even evaluate their arguments' metric
  // ids — they are `((void)0)` — so this compiles although the ids below are
  // spelled as the macros expect (bare enumerator names).
  BWTK_METRIC_COUNT(kCounterMergeCalls);
  BWTK_METRIC_OBSERVE(kHistChainLength, 7);
  SUCCEED();
}

}  // namespace
}  // namespace bwtk
