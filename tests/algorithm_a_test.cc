#include <gtest/gtest.h>

#include "baselines/naive_search.h"
#include "bwt/fm_index.h"
#include "search/algorithm_a.h"
#include "search/stree_search.h"
#include "test_util.h"
#include "util/random.h"

namespace bwtk {
namespace {

using Reuse = AlgorithmAOptions::Reuse;
using ::bwtk::testing::Codes;
using ::bwtk::testing::PeriodicDna;
using ::bwtk::testing::RandomDna;
using ::bwtk::testing::RandomDnaBiased;
using ::bwtk::testing::SampleWithFlips;

TEST(AlgorithmATest, PaperWorkedExample) {
  // r = tcaca, s = acagaca, k = 2 (Fig. 3/7): occurrences at 0-based
  // positions 0 and 2, both with 2 mismatches.
  const auto index = FmIndex::Build(Codes("acagaca")).value();
  const AlgorithmA searcher(&index);
  SearchStats stats;
  const auto hits = searcher.Search(Codes("tcaca"), 2, &stats);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], (Occurrence{0, 2}));
  EXPECT_EQ(hits[1], (Occurrence{2, 2}));
  // The mismatching tree must exist and have recorded terminated paths.
  EXPECT_GT(stats.mtree_nodes, 0u);
  EXPECT_GT(stats.mtree_leaves, 0u);
}

TEST(AlgorithmATest, ExactMatchKZero) {
  const auto index = FmIndex::Build(Codes("acagaca")).value();
  const AlgorithmA searcher(&index);
  const auto hits = searcher.Search(Codes("aca"), 0);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].position, 0u);
  EXPECT_EQ(hits[1].position, 4u);
}

TEST(AlgorithmATest, KLargerThanPatternMatchesEverywhere) {
  const auto index = FmIndex::Build(Codes("acgtacgt")).value();
  const AlgorithmA searcher(&index);
  const auto hits = searcher.Search(Codes("ttt"), 3);
  EXPECT_EQ(hits.size(), 6u);  // every window qualifies
}

TEST(AlgorithmATest, DegenerateInputs) {
  const auto index = FmIndex::Build(Codes("acgt")).value();
  const AlgorithmA searcher(&index);
  EXPECT_TRUE(searcher.Search({}, 1).empty());
  EXPECT_TRUE(searcher.Search(Codes("aacgtacgt"), 1).empty());
  EXPECT_TRUE(searcher.Search(Codes("ac"), -1).empty());
}

struct CaseParam {
  int seed;
  Reuse reuse;
};

class AlgorithmARandomTest : public ::testing::TestWithParam<CaseParam> {};

TEST_P(AlgorithmARandomTest, MatchesNaiveOnMixedWorkloads) {
  Rng rng(5000 + GetParam().seed);
  // Cycle through text flavors: uniform, repetitive, low-entropy — the
  // repetitive ones exercise the reuse machinery hardest.
  const size_t n = 300 + rng.NextBounded(900);
  std::vector<DnaCode> text;
  switch (GetParam().seed % 3) {
    case 0:
      text = RandomDna(n, &rng);
      break;
    case 1:
      text = PeriodicDna(n, 5 + rng.NextBounded(10), 0.05, &rng);
      break;
    default:
      text = RandomDnaBiased(n, 2, &rng);
      break;
  }
  const auto index = FmIndex::Build(text).value();
  const AlgorithmA searcher(&index, {.reuse = GetParam().reuse});
  const NaiveSearch oracle(&text);
  for (int trial = 0; trial < 6; ++trial) {
    const size_t m = 5 + rng.NextBounded(30);
    const int32_t k = static_cast<int32_t>(rng.NextBounded(5));
    const size_t pos = rng.NextBounded(n - m);
    const auto pattern = trial % 3 == 2
                             ? RandomDna(m, &rng)
                             : SampleWithFlips(text, pos, m, k, &rng);
    EXPECT_EQ(searcher.Search(pattern, k), oracle.Search(pattern, k))
        << "m=" << m << " k=" << k << " trial=" << trial;
  }
}

std::string ReuseName(Reuse reuse) {
  switch (reuse) {
    case Reuse::kNone:
      return "none";
    case Reuse::kInterval:
      return "interval";
    case Reuse::kFull:
      return "full";
  }
  return "?";
}

std::vector<CaseParam> AllCases() {
  std::vector<CaseParam> cases;
  for (int seed = 0; seed < 12; ++seed) {
    for (const Reuse reuse : {Reuse::kNone, Reuse::kInterval, Reuse::kFull}) {
      cases.push_back({seed, reuse});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlgorithmARandomTest, ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<CaseParam>& info) {
      return "seed" + std::to_string(info.param.seed) + "_" +
             ReuseName(info.param.reuse);
    });

TEST(AlgorithmATest, AllReuseLevelsAgree) {
  Rng rng(91);
  const auto text = PeriodicDna(1500, 12, 0.08, &rng);
  const auto index = FmIndex::Build(text).value();
  const AlgorithmA none(&index, {.reuse = Reuse::kNone});
  const AlgorithmA interval(&index, {.reuse = Reuse::kInterval});
  const AlgorithmA full(&index, {.reuse = Reuse::kFull});
  for (int trial = 0; trial < 10; ++trial) {
    const size_t m = 10 + rng.NextBounded(40);
    const size_t pos = rng.NextBounded(text.size() - m);
    const int32_t k = static_cast<int32_t>(rng.NextBounded(5));
    const auto pattern = SampleWithFlips(text, pos, m, k, &rng);
    const auto expected = none.Search(pattern, k);
    EXPECT_EQ(interval.Search(pattern, k), expected);
    EXPECT_EQ(full.Search(pattern, k), expected);
  }
}

TEST(AlgorithmATest, AgreesWithSTreeBaseline) {
  Rng rng(92);
  const auto text = RandomDna(2500, &rng);
  const auto index = FmIndex::Build(text).value();
  const AlgorithmA algorithm_a(&index);
  const STreeSearch baseline(&index);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t m = 8 + rng.NextBounded(40);
    const size_t pos = rng.NextBounded(text.size() - m);
    const int32_t k = static_cast<int32_t>(rng.NextBounded(4));
    const auto pattern = SampleWithFlips(text, pos, m, k, &rng);
    EXPECT_EQ(algorithm_a.Search(pattern, k), baseline.Search(pattern, k));
  }
}

TEST(AlgorithmATest, ReuseSavesRankOperations) {
  // On a repetitive text the memoized search must issue strictly fewer
  // Extend (search()) calls than the memo-less one.
  Rng rng(93);
  const auto text = PeriodicDna(4000, 9, 0.02, &rng);
  const auto index = FmIndex::Build(text).value();
  const AlgorithmA none(&index, {.reuse = Reuse::kNone});
  const AlgorithmA full(&index, {.reuse = Reuse::kFull});
  const auto pattern = SampleWithFlips(text, 123, 40, 3, &rng);
  SearchStats stats_none;
  SearchStats stats_full;
  const auto expected = none.Search(pattern, 4, &stats_none);
  EXPECT_EQ(full.Search(pattern, 4, &stats_full), expected);
  EXPECT_LT(stats_full.extend_calls, stats_none.extend_calls);
  EXPECT_GT(stats_full.reused_nodes, 0u);
}

TEST(AlgorithmATest, DerivedRunsHappenOnRepetitiveText) {
  Rng rng(94);
  const auto text = PeriodicDna(3000, 7, 0.01, &rng);
  const auto index = FmIndex::Build(text).value();
  const AlgorithmA searcher(&index);
  const auto pattern = SampleWithFlips(text, 77, 35, 2, &rng);
  SearchStats stats;
  searcher.Search(pattern, 3, &stats);
  EXPECT_GT(stats.derived_runs, 0u);
}

TEST(AlgorithmATest, MTreeLeavesBoundedByTerminatedPaths) {
  Rng rng(95);
  const auto text = RandomDna(1200, &rng);
  const auto index = FmIndex::Build(text).value();
  const AlgorithmA searcher(&index);
  const auto pattern = SampleWithFlips(text, 50, 25, 2, &rng);
  SearchStats stats;
  searcher.Search(pattern, 3, &stats);
  // Every completed or pruned path is one M-tree leaf; leaves include
  // dead ends, so they dominate completed + budget-pruned.
  EXPECT_GE(stats.mtree_leaves,
            stats.completed_paths + stats.budget_pruned);
  EXPECT_GT(stats.mtree_nodes, 0u);
}

TEST(AlgorithmATest, HighKOnShortPattern) {
  // k >= m: every position within range matches with <= m mismatches.
  Rng rng(96);
  const auto text = RandomDna(300, &rng);
  const auto index = FmIndex::Build(text).value();
  const AlgorithmA searcher(&index);
  const NaiveSearch oracle(&text);
  const auto pattern = RandomDna(4, &rng);
  EXPECT_EQ(searcher.Search(pattern, 4), oracle.Search(pattern, 4));
  EXPECT_EQ(searcher.Search(pattern, 4).size(), text.size() - 3);
}

TEST(AlgorithmATest, WholeTextAsPattern) {
  Rng rng(97);
  const auto text = RandomDna(120, &rng);
  const auto index = FmIndex::Build(text).value();
  const AlgorithmA searcher(&index);
  const auto hits = searcher.Search(text, 2);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0], (Occurrence{0, 0}));
}

}  // namespace
}  // namespace bwtk
