#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "search/searcher.h"

namespace bwtk {
namespace {

TEST(SearcherTest, BuildFromStringAndSearch) {
  const auto searcher = KMismatchSearcher::Build("acagaca").value();
  EXPECT_EQ(searcher.genome_size(), 7u);
  const auto hits = searcher.Search("tcaca", 2).value();
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], (Occurrence{0, 2}));
  EXPECT_EQ(hits[1], (Occurrence{2, 2}));
}

TEST(SearcherTest, RejectsEmptyGenome) {
  EXPECT_FALSE(KMismatchSearcher::Build(std::vector<DnaCode>{}).ok());
  EXPECT_FALSE(KMismatchSearcher::Build("").ok());
}

TEST(SearcherTest, RejectsNonDnaInputs) {
  EXPECT_FALSE(KMismatchSearcher::Build("acgnt").ok());
  const auto searcher = KMismatchSearcher::Build("acgtacgt").value();
  EXPECT_FALSE(searcher.Search("ac?t", 1).ok());
}

TEST(SearcherTest, StatsPlumbedThrough) {
  const auto searcher = KMismatchSearcher::Build("acagacagacag").value();
  SearchStats stats;
  const auto hits = searcher.Search("acaga", 1, &stats).value();
  EXPECT_FALSE(hits.empty());
  EXPECT_GT(stats.mtree_leaves, 0u);
}

TEST(SearcherTest, CustomIndexOptions) {
  FmIndex::Options options;
  options.checkpoint_rate = 128;
  options.sa_sample_rate = 4;
  const auto genome = EncodeDna("acgtacgtacgtacgtacgtacgtacgt").value();
  const auto searcher = KMismatchSearcher::Build(genome, options).value();
  EXPECT_EQ(searcher.index().options().checkpoint_rate, 128u);
  const auto hits = searcher.Search("acgt", 0).value();
  EXPECT_EQ(hits.size(), 7u);
}

TEST(SearcherTest, SaveAndReloadIndex) {
  const std::string path = ::testing::TempDir() + "/bwtk_searcher_test.idx";
  const auto original =
      KMismatchSearcher::Build("acagacattacagacatt").value();
  ASSERT_TRUE(original.SaveIndex(path).ok());
  const auto reloaded = KMismatchSearcher::FromIndexFile(path).value();
  EXPECT_EQ(reloaded.genome_size(), original.genome_size());
  EXPECT_EQ(reloaded.Search("acaga", 1).value(),
            original.Search("acaga", 1).value());
  std::remove(path.c_str());
}

TEST(SearcherTest, FromMissingIndexFileFails) {
  EXPECT_FALSE(KMismatchSearcher::FromIndexFile("/no/such/file.idx").ok());
}

}  // namespace
}  // namespace bwtk
