// Tests for the live-telemetry stack introduced for the serving tier:
// the windowed registry aggregator (obs/windowed.h), the Prometheus/JSON
// exposition renderers (obs/exposition.h), the generic JSON reader they
// feed (obs/json.h), and the embedded HTTP listener with its health
// semantics (serve/http_exposition.h). The HTTP tests drive a real
// Session + Server on loopback, so /metrics and /varz.json are exercised
// against genuine traffic, and /readyz is observed flipping on Drain.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "alphabet/dna.h"
#include "bwt/fm_index.h"
#include "obs/exposition.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/windowed.h"
#include "serve/client.h"
#include "serve/http_exposition.h"
#include "serve/server.h"
#include "serve/session.h"
#include "test_util.h"
#include "util/random.h"

namespace bwtk {
namespace {

using obs::EstimateQuantile;
using obs::JsonValue;
using obs::MetricsBlock;
using obs::MetricsRegistry;
using obs::ParseJson;
using obs::WindowDelta;
using obs::WindowedAggregator;
using obs::WindowedAggregatorOptions;
using obs::WindowView;

constexpr uint64_t kSecond = 1'000'000'000;

// A counter the library never touches outside the serving layer; these
// tests run no serving traffic while using it, so deltas are exact.
constexpr obs::CounterId kScratchCounter = obs::kCounterServeServedWildcard;

class WindowedAggregatorTest : public ::testing::Test {
 protected:
  // The registry is a process singleton; start each test from zero.
  void SetUp() override { MetricsRegistry::Instance().Reset(); }
  void TearDown() override { MetricsRegistry::Instance().Reset(); }
};

TEST_F(WindowedAggregatorTest, EmptyBeforeAnyBucketCloses) {
  WindowedAggregator aggregator(&MetricsRegistry::Instance());
  // No ticks at all: nothing to answer from.
  WindowDelta window = aggregator.Window(10 * kSecond);
  EXPECT_EQ(window.buckets, 0u);
  EXPECT_EQ(window.span_nanos, 0u);
  EXPECT_EQ(window.resets, 0u);
  EXPECT_EQ(window.delta, MetricsBlock{});

  // The first tick only establishes the baseline — still no bucket.
  aggregator.TickAt(5 * kSecond);
  window = aggregator.Window(10 * kSecond);
  EXPECT_EQ(window.buckets, 0u);
  EXPECT_EQ(window.span_nanos, 0u);
  EXPECT_EQ(aggregator.ticks(), 1u);
}

TEST_F(WindowedAggregatorTest, ZeroSpanRequestIsEmpty) {
  WindowedAggregator aggregator(&MetricsRegistry::Instance());
  aggregator.TickAt(1 * kSecond);
  obs::Count(kScratchCounter, 3);
  aggregator.TickAt(2 * kSecond);
  const WindowDelta window = aggregator.Window(0);
  EXPECT_EQ(window.buckets, 0u);
  EXPECT_EQ(window.delta.counters[kScratchCounter], 0u);
}

TEST_F(WindowedAggregatorTest, DeltasLandInPerTickBuckets) {
  WindowedAggregator aggregator(&MetricsRegistry::Instance());
  aggregator.TickAt(10 * kSecond);  // baseline

  obs::Count(kScratchCounter, 5);
  aggregator.TickAt(11 * kSecond);
  obs::Count(kScratchCounter, 7);
  aggregator.TickAt(12 * kSecond);

  // Newest bucket only.
  WindowDelta newest = aggregator.Window(1 * kSecond);
  EXPECT_EQ(newest.buckets, 1u);
  EXPECT_EQ(newest.span_nanos, 1 * kSecond);
  EXPECT_EQ(newest.delta.counters[kScratchCounter], 7u);

  // Both buckets.
  WindowDelta both = aggregator.Window(2 * kSecond);
  EXPECT_EQ(both.buckets, 2u);
  EXPECT_EQ(both.span_nanos, 2 * kSecond);
  EXPECT_EQ(both.delta.counters[kScratchCounter], 12u);

  // Asking for more than exists reports only what is covered — rates must
  // divide by span_nanos, not the request.
  WindowDelta more = aggregator.Window(60 * kSecond);
  EXPECT_EQ(more.buckets, 2u);
  EXPECT_EQ(more.span_nanos, 2 * kSecond);
  EXPECT_EQ(more.delta.counters[kScratchCounter], 12u);

  // Cumulative is the latest snapshot, not a delta.
  EXPECT_EQ(aggregator.Cumulative().counters[kScratchCounter], 12u);
}

TEST_F(WindowedAggregatorTest, RingRolloverEvictsOldestBuckets) {
  WindowedAggregatorOptions options;
  options.bucket_width_nanos = kSecond;
  options.num_buckets = 3;
  WindowedAggregator aggregator(&MetricsRegistry::Instance(), options);
  aggregator.TickAt(0);  // baseline

  // Close 5 buckets of 1 event each into a 3-slot ring.
  for (uint64_t t = 1; t <= 5; ++t) {
    obs::Count(kScratchCounter, 1);
    aggregator.TickAt(t * kSecond);
  }
  const WindowDelta window = aggregator.Window(60 * kSecond);
  EXPECT_EQ(window.buckets, 3u);  // the two oldest were overwritten
  EXPECT_EQ(window.span_nanos, 3 * kSecond);
  EXPECT_EQ(window.delta.counters[kScratchCounter], 3u);
  EXPECT_EQ(aggregator.ticks(), 6u);
}

TEST_F(WindowedAggregatorTest, ResetMidWindowYieldsEmptyFlaggedBucket) {
  WindowedAggregator aggregator(&MetricsRegistry::Instance());
  aggregator.TickAt(1 * kSecond);
  obs::Count(kScratchCounter, 100);
  aggregator.TickAt(2 * kSecond);

  // Reset drops the live value below the aggregator's last snapshot. The
  // next tick must not fabricate a huge wrapped delta; it records an empty
  // bucket flagged as a reset and re-bases.
  MetricsRegistry::Instance().Reset();
  obs::Count(kScratchCounter, 4);
  aggregator.TickAt(3 * kSecond);

  EXPECT_EQ(aggregator.resets(), 1u);
  const WindowDelta window = aggregator.Window(2 * kSecond);
  EXPECT_EQ(window.buckets, 2u);
  EXPECT_EQ(window.resets, 1u);
  // Pre-reset bucket contributes its 100; the reset bucket contributes
  // nothing (never a negative / wrapped value).
  EXPECT_EQ(window.delta.counters[kScratchCounter], 100u);

  // After re-basing, deltas are exact again.
  obs::Count(kScratchCounter, 9);
  aggregator.TickAt(4 * kSecond);
  EXPECT_EQ(aggregator.Window(kSecond).delta.counters[kScratchCounter], 9u);
}

TEST_F(WindowedAggregatorTest, BackwardsTimeIsClamped) {
  WindowedAggregator aggregator(&MetricsRegistry::Instance());
  aggregator.TickAt(10 * kSecond);
  obs::Count(kScratchCounter, 2);
  // An earlier timestamp must not underflow the bucket span.
  aggregator.TickAt(4 * kSecond);
  const WindowDelta window = aggregator.Window(60 * kSecond);
  EXPECT_EQ(window.buckets, 1u);
  EXPECT_EQ(window.span_nanos, 0u);
  EXPECT_EQ(window.delta.counters[kScratchCounter], 2u);
}

TEST_F(WindowedAggregatorTest, WindowQuantilesAreMonotone) {
  WindowedAggregator aggregator(&MetricsRegistry::Instance());
  aggregator.TickAt(1 * kSecond);
  // A spread of observations across several log2 buckets.
  for (uint64_t v : {100u, 200u, 400u, 800u, 1600u, 3200u, 6400u, 12800u,
                     25600u, 1000000u}) {
    obs::Observe(obs::kHistQueryNanos, v);
  }
  aggregator.TickAt(2 * kSecond);
  const WindowDelta window = aggregator.Window(kSecond);
  const obs::Histogram& hist = window.delta.hists[obs::kHistQueryNanos];
  ASSERT_EQ(hist.count, 10u);
  const uint64_t p50 = EstimateQuantile(hist, 0.50);
  const uint64_t p95 = EstimateQuantile(hist, 0.95);
  const uint64_t p99 = EstimateQuantile(hist, 0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GT(p50, 0u);
  // An empty window's quantiles are all zero (and still monotone).
  const obs::Histogram empty;
  EXPECT_EQ(EstimateQuantile(empty, 0.99), 0u);
}

// --- JSON reader ---------------------------------------------------------

TEST(ParseJsonTest, ScalarsAndContainers) {
  auto doc = ParseJson(R"({"a": 1, "b": -2.5, "c": "x\ny", "d": [true, null],
                           "e": {"nested": 18446744073709551615}})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Get("a")->AsUint(), 1u);
  EXPECT_TRUE(doc->Get("a")->is_uint);
  EXPECT_DOUBLE_EQ(doc->Get("b")->AsNumber(), -2.5);
  EXPECT_FALSE(doc->Get("b")->is_uint);
  EXPECT_EQ(doc->Get("c")->string_value, "x\ny");
  ASSERT_EQ(doc->Get("d")->array.size(), 2u);
  EXPECT_TRUE(doc->Get("d")->array[0].bool_value);
  EXPECT_EQ(doc->Get("d")->array[1].kind, JsonValue::Kind::kNull);
  // Max uint64 round-trips exactly through the is_uint side channel.
  EXPECT_EQ(doc->Get("e", "nested")->AsUint(), ~uint64_t{0});
  // Missing paths are nullptr at any depth.
  EXPECT_EQ(doc->Get("e", "missing"), nullptr);
  EXPECT_EQ(doc->Get("missing", "nested"), nullptr);
}

TEST(ParseJsonTest, UnicodeEscapes) {
  auto doc = ParseJson(R"(["Aé", "😀"])");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->array[0].string_value, "A\xc3\xa9");
  EXPECT_EQ(doc->array[1].string_value, "\xf0\x9f\x98\x80");
}

TEST(ParseJsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(ParseJson("'single'").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  // Nesting beyond the depth cap is a clean error, not a stack overflow.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

// --- Renderers -----------------------------------------------------------

std::vector<WindowView> OneWindow(const MetricsBlock& delta,
                                  uint64_t span_nanos) {
  WindowDelta window;
  window.delta = delta;
  window.span_nanos = span_nanos;
  window.buckets = 1;
  return {WindowView{"10s", window}};
}

TEST(PrometheusRenderTest, EmitsWellFormedFamilies) {
  MetricsBlock total;
  total.counters[obs::kCounterServeSubmitted] = 42;
  total.phase_nanos[obs::kPhaseWorkerSearch] = 1000;
  total.phase_calls[obs::kPhaseWorkerSearch] = 2;
  for (uint64_t v : {10u, 1000u, 100000u}) {
    total.hists[obs::kHistQueryNanos].Observe(v);
  }

  MetricsBlock delta;
  delta.counters[obs::kCounterServeCompleted] = 5;
  const std::string text = obs::RenderPrometheusText(
      total, OneWindow(delta, 10 * kSecond),
      {{"bwtk_ready", 1.0, {}, "readiness"}});

  // Counters carry the prefix, the _total suffix, and HELP/TYPE headers.
  EXPECT_NE(text.find("# TYPE bwtk_serve_submitted_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("bwtk_serve_submitted_total 42\n"), std::string::npos);
  // Phase counters are labeled, not exploded into per-phase names.
  EXPECT_NE(text.find("bwtk_phase_nanos_total{phase=\"worker_search\"} 1000"),
            std::string::npos);
  // Histograms expose cumulative le-buckets, +Inf, _sum and _count.
  EXPECT_NE(text.find("# TYPE bwtk_query_nanos histogram"),
            std::string::npos);
  EXPECT_NE(text.find("bwtk_query_nanos_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("bwtk_query_nanos_count 3"), std::string::npos);
  EXPECT_NE(text.find("bwtk_query_nanos_sum 101010"), std::string::npos);
  // Window gauges are labeled by window and metric; rate = 5 / 10s.
  EXPECT_NE(text.find("bwtk_window_events{metric=\"serve_completed\","
                      "window=\"10s\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("bwtk_window_rate{metric=\"serve_completed\","
                      "window=\"10s\"} 0.5"),
            std::string::npos);
  // Extra serving-layer gauges pass through.
  EXPECT_NE(text.find("# TYPE bwtk_ready gauge"), std::string::npos);
  EXPECT_NE(text.find("bwtk_ready 1\n"), std::string::npos);
  // Exposition format: every line is a comment or `name{labels} value`.
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "unterminated last line";
    const std::string_view line =
        std::string_view(text).substr(start, end - start);
    if (!line.empty() && line[0] != '#') {
      EXPECT_NE(line.find(' '), std::string_view::npos) << line;
      EXPECT_EQ(line.substr(0, 5), "bwtk_") << line;
    }
    start = end + 1;
  }
}

TEST(PrometheusRenderTest, LabelEscaping) {
  EXPECT_EQ(obs::PrometheusLabelEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(WindowsJsonTest, RoundTripsThroughParser) {
  MetricsBlock delta;
  delta.counters[obs::kCounterBatchQueries] = 30;
  for (uint64_t v : {1000u, 2000u, 4000u, 8000u, 16000u}) {
    delta.hists[obs::kHistQueryNanos].Observe(v);
  }
  obs::JsonWriter writer;
  obs::AppendWindowsJson(OneWindow(delta, 10 * kSecond), &writer);
  auto doc = ParseJson(std::move(writer).TakeString());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  EXPECT_DOUBLE_EQ(doc->Get("10s", "seconds")->AsNumber(), 10.0);
  EXPECT_EQ(doc->Get("10s", "counters", "batch_queries")->AsUint(), 30u);
  EXPECT_DOUBLE_EQ(doc->Get("10s", "rates", "batch_queries")->AsNumber(),
                   3.0);
  const JsonValue* latency = doc->Get("10s", "latency", "query_nanos");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->Get("count")->AsUint(), 5u);
  const double p50 = latency->Get("p50")->AsNumber();
  const double p95 = latency->Get("p95")->AsNumber();
  const double p99 = latency->Get("p99")->AsNumber();
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GT(p50, 0.0);
}

// --- HTTP endpoints over a live serving stack ----------------------------

struct HttpReply {
  int code = 0;
  std::string body;
};

// Tiny blocking HTTP client (the listener closes after each response).
HttpReply HttpGet(uint16_t port, const std::string& target,
                  const std::string& method = "GET") {
  HttpReply reply;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return reply;
  }
  const std::string request =
      method + " " + target + " HTTP/1.1\r\nHost: test\r\n\r\n";
  (void)!::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos) return reply;
  reply.code = std::atoi(response.c_str() + response.find(' '));
  reply.body = response.substr(head_end + 4);
  return reply;
}

TEST(HttpExpositionTest, ServesTelemetryAndHealthOverLiveTraffic) {
  MetricsRegistry::Instance().Reset();
  Rng rng(97);
  std::vector<DnaCode> text = testing::RandomDna(20000, &rng);
  FmIndex index = FmIndex::Build(text).value();
  serve::Session session(&index, {.num_threads = 2});
  serve::Server server(&session);
  ASSERT_TRUE(server.Start().ok());

  WindowedAggregator aggregator(&MetricsRegistry::Instance());
  aggregator.Tick();  // baseline
  serve::HttpExpositionServer exposition(&aggregator, &session, &server);
  ASSERT_TRUE(exposition.Start().ok()) << "http listener failed to bind";
  ASSERT_NE(exposition.port(), 0);

  // Not ready until the operator says so.
  EXPECT_EQ(HttpGet(exposition.port(), "/readyz").code, 503);
  exposition.SetReady(true);
  EXPECT_EQ(HttpGet(exposition.port(), "/readyz").code, 200);
  EXPECT_EQ(HttpGet(exposition.port(), "/healthz").code, 200);

  // Run real traffic through the front-end so the telemetry has content.
  auto client = serve::Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 8; ++i) {
    std::string pattern;
    for (size_t j = 0; j < 12; ++j) {
      pattern.push_back(CodeToChar(text[1000 + 100 * i + j]));
    }
    auto response = (*client)->Query(pattern, 1);
    ASSERT_TRUE(response.ok());
  }
  aggregator.Tick();  // close a bucket containing the traffic

  // /metrics: Prometheus text with the serve counters and window series.
  const HttpReply metrics = HttpGet(exposition.port(), "/metrics");
  ASSERT_EQ(metrics.code, 200);
  EXPECT_NE(metrics.body.find("bwtk_serve_submitted_total 8"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("bwtk_serve_served_algorithm_a_total 8"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("bwtk_window_rate{metric=\"serve_completed\","
                              "window=\"10s\"}"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("bwtk_ready 1"), std::string::npos);

  // /varz.json: parses; sessions stats and per-connection table line up.
  const HttpReply varz = HttpGet(exposition.port(), "/varz.json");
  ASSERT_EQ(varz.code, 200);
  auto doc = ParseJson(varz.body);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(doc->Get("ready")->bool_value);
  EXPECT_EQ(doc->Get("engine")->string_value, "algorithm_a");
  EXPECT_EQ(doc->Get("session", "submitted")->AsUint(), 8u);
  EXPECT_EQ(doc->Get("session", "completed")->AsUint(), 8u);
  EXPECT_TRUE(doc->Get("session", "accepting")->bool_value);
  const JsonValue* connections = doc->Get("connections");
  ASSERT_NE(connections, nullptr);
  ASSERT_EQ(connections->array.size(), 1u);
  EXPECT_EQ(connections->array[0].Get("queries")->AsUint(), 8u);
  EXPECT_GT(connections->array[0].Get("bytes_in")->AsUint(), 0u);
  EXPECT_GT(connections->array[0].Get("bytes_out")->AsUint(), 0u);
  EXPECT_NE(doc->Get("windows", "10s", "counters", "serve_completed"),
            nullptr);
  EXPECT_NE(doc->Get("cumulative", "counters", "serve_submitted"), nullptr);

  // Unknown paths and non-GET methods are rejected, not crashed on.
  EXPECT_EQ(HttpGet(exposition.port(), "/nope").code, 404);
  EXPECT_EQ(HttpGet(exposition.port(), "/metrics", "POST").code, 405);

  // Drain: /readyz flips to 503 with no SetReady call; /healthz stays 200.
  session.Drain();
  EXPECT_EQ(HttpGet(exposition.port(), "/readyz").code, 503);
  EXPECT_EQ(HttpGet(exposition.port(), "/healthz").code, 200);
  const HttpReply drained = HttpGet(exposition.port(), "/varz.json");
  ASSERT_EQ(drained.code, 200);
  auto drained_doc = ParseJson(drained.body);
  ASSERT_TRUE(drained_doc.ok());
  EXPECT_FALSE(drained_doc->Get("ready")->bool_value);
  EXPECT_FALSE(drained_doc->Get("session", "accepting")->bool_value);

  exposition.Stop();
  server.Stop();
  MetricsRegistry::Instance().Reset();
}

TEST(HttpExpositionTest, TickerProducesBucketsOnItsOwn) {
  MetricsRegistry::Instance().Reset();
  WindowedAggregatorOptions options;
  options.bucket_width_nanos = 20'000'000;  // 20ms buckets for a fast test
  options.num_buckets = 64;
  WindowedAggregator aggregator(&MetricsRegistry::Instance(), options);
  aggregator.StartTicker();
  obs::Count(kScratchCounter, 11);
  // Wait for the background ticker to close at least two buckets.
  for (int i = 0; i < 200 && aggregator.ticks() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  aggregator.StopTicker();
  EXPECT_GE(aggregator.ticks(), 3u);
  const WindowDelta window = aggregator.Window(uint64_t{3600} * kSecond);
  EXPECT_EQ(window.delta.counters[kScratchCounter], 11u);
  MetricsRegistry::Instance().Reset();
}

// Connects without sending anything (or sending slowly) — the slowloris
// posture against the serial accept loop.
int OpenRawConnection(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(HttpExpositionTest, StalledConnectionCannotBlockSubsequentScrapes) {
  MetricsRegistry::Instance().Reset();
  Rng rng(111);
  std::vector<DnaCode> text = testing::RandomDna(2000, &rng);
  FmIndex index = FmIndex::Build(text).value();
  serve::Session session(&index, {.num_threads = 1});
  WindowedAggregator aggregator(&MetricsRegistry::Instance());
  aggregator.Tick();
  serve::HttpExpositionOptions options;
  options.request_timeout_ms = 300;
  serve::HttpExpositionServer exposition(&aggregator, &session, nullptr,
                                         options);
  ASSERT_TRUE(exposition.Start().ok());

  // A client that connects and then sends NOTHING holds the serial loop
  // for at most the per-request deadline; the probe behind it must still
  // be answered promptly.
  const int stalled = OpenRawConnection(exposition.port());
  ASSERT_GE(stalled, 0);
  const auto start = std::chrono::steady_clock::now();
  const HttpReply reply = HttpGet(exposition.port(), "/healthz");
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_EQ(reply.code, 200);
  // Deadline (300ms) plus scheduling slack — far below a slowloris hang.
  EXPECT_LT(elapsed.count(), 5000);
  ::close(stalled);

  // Drip-feeding one byte per read resets a naive receive timeout but not
  // the overall deadline: the dripper must get cut off, and the next
  // scrape must succeed.
  const int dripper = OpenRawConnection(exposition.port());
  ASSERT_GE(dripper, 0);
  const std::string request = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
  bool cut_off = false;
  for (size_t i = 0; i < request.size(); ++i) {
    if (::send(dripper, &request[i], 1, MSG_NOSIGNAL) < 0) {
      cut_off = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    // Past the deadline the server answers-or-drops and closes; detect the
    // close without blocking forever.
    char probe;
    const ssize_t n = ::recv(dripper, &probe, 1, MSG_DONTWAIT);
    if (n == 0) {
      cut_off = true;
      break;
    }
  }
  EXPECT_TRUE(cut_off) << "drip-fed request was serviced indefinitely";
  ::close(dripper);
  EXPECT_EQ(HttpGet(exposition.port(), "/healthz").code, 200);
  exposition.Stop();
  MetricsRegistry::Instance().Reset();
}

TEST(HttpExpositionTest, OversizedRequestHeadIsCappedNotBuffered) {
  MetricsRegistry::Instance().Reset();
  Rng rng(113);
  std::vector<DnaCode> text = testing::RandomDna(2000, &rng);
  FmIndex index = FmIndex::Build(text).value();
  serve::Session session(&index, {.num_threads = 1});
  WindowedAggregator aggregator(&MetricsRegistry::Instance());
  aggregator.Tick();
  serve::HttpExpositionOptions options;
  options.request_timeout_ms = 500;
  options.max_request_bytes = 256;
  serve::HttpExpositionServer exposition(&aggregator, &session, nullptr,
                                         options);
  ASSERT_TRUE(exposition.Start().ok());

  // A request head far beyond the cap: the listener must stop buffering at
  // max_request_bytes and move on rather than accumulate the garbage.
  const int fd = OpenRawConnection(exposition.port());
  ASSERT_GE(fd, 0);
  const std::string garbage(64 * 1024, 'x');
  (void)!::send(fd, garbage.data(), garbage.size(), MSG_NOSIGNAL);
  ::close(fd);

  // The listener survives and keeps serving.
  EXPECT_EQ(HttpGet(exposition.port(), "/healthz").code, 200);
  exposition.Stop();
  MetricsRegistry::Instance().Reset();
}

}  // namespace
}  // namespace bwtk
