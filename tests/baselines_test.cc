#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "baselines/aho_corasick.h"
#include "baselines/amir_search.h"
#include "baselines/cole_search.h"
#include "baselines/kangaroo_search.h"
#include "baselines/naive_search.h"
#include "test_util.h"
#include "util/random.h"

namespace bwtk {
namespace {

using ::bwtk::testing::Codes;
using ::bwtk::testing::PeriodicDna;
using ::bwtk::testing::RandomDna;
using ::bwtk::testing::SampleWithFlips;

// --- Aho-Corasick -----------------------------------------------------------

TEST(AhoCorasickTest, FindsAllPatternOccurrences) {
  const AhoCorasick automaton({Codes("aca"), Codes("ga"), Codes("a")});
  const auto text = Codes("acagaca");
  std::multimap<size_t, size_t> hits;  // end -> pattern
  automaton.Scan(text, [&](size_t end, size_t id) { hits.emplace(end, id); });
  // "a" at ends 1,3,5,7; "aca" at ends 3,7; "ga" at end 5.
  EXPECT_EQ(hits.count(1), 1u);
  EXPECT_EQ(hits.count(3), 2u);
  EXPECT_EQ(hits.count(5), 2u);
  EXPECT_EQ(hits.count(7), 2u);
  EXPECT_EQ(hits.size(), 7u);
}

TEST(AhoCorasickTest, OverlappingAndNestedPatterns) {
  const AhoCorasick automaton({Codes("aaa"), Codes("aa")});
  const auto text = Codes("aaaa");
  int aaa_hits = 0;
  int aa_hits = 0;
  automaton.Scan(text, [&](size_t, size_t id) {
    (id == 0 ? aaa_hits : aa_hits)++;
  });
  EXPECT_EQ(aaa_hits, 2);
  EXPECT_EQ(aa_hits, 3);
}

TEST(AhoCorasickTest, EmptyPatternSetIsSilent) {
  const AhoCorasick automaton({});
  int hits = 0;
  automaton.Scan(Codes("acgtacgt"), [&](size_t, size_t) { ++hits; });
  EXPECT_EQ(hits, 0);
}

TEST(AhoCorasickTest, RandomPropertyAgainstNaive) {
  Rng rng(37);
  const auto text = PeriodicDna(600, 4, 0.2, &rng);
  std::vector<std::vector<DnaCode>> patterns;
  for (int i = 0; i < 12; ++i) {
    patterns.push_back(RandomDna(1 + rng.NextBounded(6), &rng));
  }
  const AhoCorasick automaton(patterns);
  std::vector<std::vector<size_t>> got(patterns.size());
  automaton.Scan(text, [&](size_t end, size_t id) {
    got[id].push_back(end - patterns[id].size());
  });
  for (size_t id = 0; id < patterns.size(); ++id) {
    std::vector<size_t> expected;
    for (size_t pos = 0; pos + patterns[id].size() <= text.size(); ++pos) {
      if (std::equal(patterns[id].begin(), patterns[id].end(),
                     text.begin() + pos)) {
        expected.push_back(pos);
      }
    }
    std::sort(got[id].begin(), got[id].end());
    EXPECT_EQ(got[id], expected) << "pattern " << id;
  }
}

// --- Amir filter-and-verify -------------------------------------------------

TEST(AmirSearchTest, MatchesNaiveOnFixedCase) {
  const auto text = Codes("ccacacagaagcc");
  const AmirSearch amir(&text);
  const NaiveSearch oracle(&text);
  const auto pattern = Codes("aaaaacaaac");
  EXPECT_EQ(amir.Search(pattern, 4), oracle.Search(pattern, 4));
}

TEST(AmirSearchTest, StatsShowFiltering) {
  Rng rng(41);
  const auto text = RandomDna(5000, &rng);
  const AmirSearch amir(&text);
  const auto pattern = SampleWithFlips(text, 100, 60, 2, &rng);
  AmirStats stats;
  const auto hits = amir.Search(pattern, 2, &stats);
  EXPECT_FALSE(hits.empty());
  EXPECT_GT(stats.blocks, 0u);
  // The filter must discard the overwhelming majority of windows.
  EXPECT_LT(stats.candidates, text.size() / 10);
  EXPECT_EQ(stats.verified_matches, hits.size());
}

class BaselineRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(BaselineRandomTest, AmirMatchesNaive) {
  Rng rng(6000 + GetParam());
  const size_t n = 200 + rng.NextBounded(800);
  const auto text = GetParam() % 2 == 0 ? RandomDna(n, &rng)
                                        : PeriodicDna(n, 6, 0.1, &rng);
  const AmirSearch amir(&text);
  const NaiveSearch oracle(&text);
  for (int trial = 0; trial < 6; ++trial) {
    const size_t m = 4 + rng.NextBounded(40);
    const int32_t k = static_cast<int32_t>(rng.NextBounded(6));
    const size_t pos = rng.NextBounded(n - m);
    const auto pattern = trial % 3 == 0
                             ? RandomDna(m, &rng)
                             : SampleWithFlips(text, pos, m, k, &rng);
    EXPECT_EQ(amir.Search(pattern, k), oracle.Search(pattern, k))
        << "m=" << m << " k=" << k;
  }
}

TEST_P(BaselineRandomTest, KangarooMatchesNaive) {
  Rng rng(7000 + GetParam());
  const size_t n = 200 + rng.NextBounded(600);
  const auto text = GetParam() % 2 == 0 ? RandomDna(n, &rng)
                                        : PeriodicDna(n, 9, 0.05, &rng);
  const KangarooSearch kangaroo(&text);
  const NaiveSearch oracle(&text);
  for (int trial = 0; trial < 4; ++trial) {
    const size_t m = 4 + rng.NextBounded(30);
    const int32_t k = static_cast<int32_t>(rng.NextBounded(5));
    const size_t pos = rng.NextBounded(n - m);
    const auto pattern = trial % 3 == 0
                             ? RandomDna(m, &rng)
                             : SampleWithFlips(text, pos, m, k, &rng);
    EXPECT_EQ(kangaroo.Search(pattern, k).value(), oracle.Search(pattern, k))
        << "m=" << m << " k=" << k;
  }
}

TEST_P(BaselineRandomTest, ColeMatchesNaive) {
  Rng rng(8000 + GetParam());
  const size_t n = 200 + rng.NextBounded(600);
  const auto text = GetParam() % 2 == 0 ? RandomDna(n, &rng)
                                        : PeriodicDna(n, 7, 0.1, &rng);
  const auto cole = ColeSearch::Build(text).value();
  const NaiveSearch oracle(&text);
  for (int trial = 0; trial < 6; ++trial) {
    const size_t m = 4 + rng.NextBounded(30);
    const int32_t k = static_cast<int32_t>(rng.NextBounded(4));
    const size_t pos = rng.NextBounded(n - m);
    const auto pattern = trial % 3 == 0
                             ? RandomDna(m, &rng)
                             : SampleWithFlips(text, pos, m, k, &rng);
    EXPECT_EQ(cole.Search(pattern, k), oracle.Search(pattern, k))
        << "m=" << m << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BaselineRandomTest, ::testing::Range(0, 10));

// --- Shared edge cases ------------------------------------------------------

TEST(BaselinesTest, EdgeInputsAllEmpty) {
  const auto text = Codes("acgtac");
  const AmirSearch amir(&text);
  const KangarooSearch kangaroo(&text);
  const auto cole = ColeSearch::Build(text).value();
  const NaiveSearch naive(&text);
  for (const auto& pattern :
       {std::vector<DnaCode>{}, Codes("acgtacgtacgt")}) {
    EXPECT_TRUE(naive.Search(pattern, 2).empty());
    EXPECT_TRUE(amir.Search(pattern, 2).empty());
    EXPECT_TRUE(kangaroo.Search(pattern, 2).value().empty());
    EXPECT_TRUE(cole.Search(pattern, 2).empty());
  }
}

TEST(BaselinesTest, PaperWorkedExampleAcrossEngines) {
  const auto text = Codes("acagaca");
  const auto pattern = Codes("tcaca");
  const std::vector<Occurrence> expected = {{0, 2}, {2, 2}};
  const AmirSearch amir(&text);
  const KangarooSearch kangaroo(&text);
  const auto cole = ColeSearch::Build(text).value();
  const NaiveSearch naive(&text);
  EXPECT_EQ(naive.Search(pattern, 2), expected);
  EXPECT_EQ(amir.Search(pattern, 2), expected);
  EXPECT_EQ(kangaroo.Search(pattern, 2).value(), expected);
  EXPECT_EQ(cole.Search(pattern, 2), expected);
}

TEST(BaselinesTest, KZeroIsExactMatch) {
  const auto text = Codes("acagaca");
  const auto pattern = Codes("aca");
  const std::vector<Occurrence> expected = {{0, 0}, {4, 0}};
  const AmirSearch amir(&text);
  const auto cole = ColeSearch::Build(text).value();
  EXPECT_EQ(amir.Search(pattern, 0), expected);
  EXPECT_EQ(cole.Search(pattern, 0), expected);
}

}  // namespace
}  // namespace bwtk
