// Umbrella header for the bwtk library: BWT arrays and mismatching trees
// for string matching with k mismatches (Chen & Wu, ICDE 2017).
//
// Typical use:
//
//   #include "bwtk.h"
//
//   auto searcher = bwtk::KMismatchSearcher::Build(genome_string).value();
//   auto hits = searcher.Search("acgtacgta", /*k=*/2).value();
//   for (const auto& hit : hits)
//     std::cout << hit.position << " (" << hit.mismatches << " mm)\n";
//
// Fine-grained headers remain available for benchmark and research use.

#ifndef BWTK_BWTK_H_
#define BWTK_BWTK_H_

#include "alphabet/dna.h"
#include "alphabet/fasta.h"
#include "alphabet/fastq.h"
#include "alphabet/packed_sequence.h"
#include "baselines/amir_search.h"
#include "baselines/cole_search.h"
#include "baselines/kangaroo_search.h"
#include "baselines/naive_search.h"
#include "bwt/fm_index.h"
#include "dict/demux.h"
#include "dict/dictionary_searcher.h"
#include "dict/pattern_set_trie.h"
#include "mismatch/mismatch_array.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "obs/windowed.h"
#include "search/algorithm_a.h"
#include "search/batch_searcher.h"
#include "search/kerror_search.h"
#include "search/match.h"
#include "search/searcher.h"
#include "search/stree_search.h"
#include "search/wildcard_search.h"
#include "serve/client.h"
#include "serve/http_exposition.h"
#include "serve/server.h"
#include "serve/session.h"
#include "serve/wire.h"
#include "shard/shard_plan.h"
#include "shard/sharded_index.h"
#include "shard/sharded_searcher.h"
#include "simulate/genome_generator.h"
#include "simulate/read_simulator.h"
#include "util/status.h"

#endif  // BWTK_BWTK_H_
