#include "simulate/genome_generator.h"

#include <algorithm>
#include <cmath>

namespace bwtk {

Result<std::vector<DnaCode>> GenerateGenome(const GenomeOptions& options) {
  if (options.length == 0) {
    return Status::InvalidArgument("genome length must be positive");
  }
  if (options.gc_content < 0.0 || options.gc_content > 1.0 ||
      options.repeat_fraction < 0.0 || options.repeat_fraction >= 1.0 ||
      options.repeat_divergence < 0.0 || options.repeat_divergence > 1.0) {
    return Status::InvalidArgument("genome option out of range");
  }
  Rng rng(options.seed);
  const double at = (1.0 - options.gc_content) / 2.0;
  const double gc = options.gc_content / 2.0;
  const std::vector<double> base_weights = {at, gc, gc, at};  // a c g t

  std::vector<DnaCode> genome;
  genome.reserve(options.length);
  // Phase 1: random backbone with the requested composition.
  const size_t backbone =
      static_cast<size_t>(options.length * (1.0 - options.repeat_fraction));
  for (size_t i = 0; i < backbone; ++i) {
    genome.push_back(static_cast<DnaCode>(rng.NextWeighted(base_weights)));
  }
  // Phase 2: fill the remainder with diverged copies of earlier segments —
  // the dispersed-repeat structure real genomes have.
  while (genome.size() < options.length) {
    const size_t remaining = options.length - genome.size();
    const size_t len = std::min(
        remaining,
        std::max<size_t>(
            16, static_cast<size_t>(rng.NextInRange(
                    static_cast<int64_t>(options.repeat_length / 2),
                    static_cast<int64_t>(options.repeat_length * 3 / 2)))));
    const size_t source = static_cast<size_t>(rng.NextBounded(genome.size()));
    for (size_t i = 0; i < len; ++i) {
      DnaCode c = genome[(source + i) % genome.size()];
      if (rng.NextBool(options.repeat_divergence)) {
        c = static_cast<DnaCode>((c + 1 + rng.NextBounded(3)) & 3);
      }
      genome.push_back(c);
    }
  }
  genome.resize(options.length);
  return genome;
}

std::vector<GenomePreset> Table1Presets(double scale) {
  // Table 1 of the paper: genome sizes in base pairs.
  const std::vector<std::pair<std::string, size_t>> table1 = {
      {"rat_Rnor6", 2909701677ULL},
      {"zebrafish_GRCz10", 1464443456ULL},
      {"rat_chr1", 290094217ULL},
      {"c_elegans_WBcel235", 100272607ULL},
      {"c_merolae_ASM9120v1", 16728967ULL},
  };
  std::vector<GenomePreset> presets;
  presets.reserve(table1.size());
  for (const auto& [name, size] : table1) {
    const size_t scaled = std::max<size_t>(
        1 << 14, static_cast<size_t>(std::llround(size * scale)));
    presets.push_back({name, size, scaled});
  }
  return presets;
}

}  // namespace bwtk
