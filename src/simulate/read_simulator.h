// wgsim-like read simulation.
//
// The paper's reads were produced by wgsim (SAMtools) "with a default model
// for single reads simulation". This simulator reproduces that model's
// relevant features: reads sampled uniformly from the genome, drawn from
// either strand, with independent per-base mutation (polymorphism) and
// sequencing-error substitutions — exactly the mismatch sources the
// k-mismatch search is meant to absorb.

#ifndef BWTK_SIMULATE_READ_SIMULATOR_H_
#define BWTK_SIMULATE_READ_SIMULATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "alphabet/dna.h"
#include "alphabet/fastq.h"
#include "util/random.h"
#include "util/status.h"

namespace bwtk {

/// Knobs matching wgsim's single-end defaults where applicable.
struct ReadSimOptions {
  size_t read_length = 100;
  size_t read_count = 50;
  /// Per-base polymorphism (wgsim -r, default 0.001).
  double mutation_rate = 0.001;
  /// Per-base sequencing error (wgsim -e, default 0.02).
  double error_rate = 0.02;
  /// Sample from the reverse strand with probability 0.5, as wgsim does.
  bool both_strands = true;
  uint64_t seed = 7;
};

/// One simulated read plus its ground truth.
struct SimulatedRead {
  std::vector<DnaCode> sequence;
  /// Start of the source window on the forward strand.
  size_t origin = 0;
  /// True if the read was reverse-complemented.
  bool reverse_strand = false;
  /// Substitutions actually applied (mutations + errors).
  int32_t substitutions = 0;
};

/// Samples `options.read_count` reads from `genome`.
Result<std::vector<SimulatedRead>> SimulateReads(
    const std::vector<DnaCode>& genome, const ReadSimOptions& options);

/// Converts simulated reads to FASTQ records (constant quality, ground
/// truth encoded in the read name as name:origin:strand:subs).
std::vector<FastqRecord> ToFastq(const std::vector<SimulatedRead>& reads,
                                 const std::string& name_prefix);

}  // namespace bwtk

#endif  // BWTK_SIMULATE_READ_SIMULATOR_H_
