#include "simulate/read_simulator.h"

namespace bwtk {

Result<std::vector<SimulatedRead>> SimulateReads(
    const std::vector<DnaCode>& genome, const ReadSimOptions& options) {
  if (options.read_length == 0) {
    return Status::InvalidArgument("read_length must be positive");
  }
  if (options.read_length > genome.size()) {
    return Status::InvalidArgument("read_length exceeds genome size");
  }
  Rng rng(options.seed);
  std::vector<SimulatedRead> reads;
  reads.reserve(options.read_count);
  const size_t windows = genome.size() - options.read_length + 1;
  for (size_t i = 0; i < options.read_count; ++i) {
    SimulatedRead read;
    read.origin = static_cast<size_t>(rng.NextBounded(windows));
    read.sequence.assign(genome.begin() + read.origin,
                         genome.begin() + read.origin + options.read_length);
    read.reverse_strand = options.both_strands && rng.NextBool(0.5);
    if (read.reverse_strand) {
      read.sequence = ReverseComplement(read.sequence);
    }
    for (DnaCode& base : read.sequence) {
      // Mutation and sequencing error are independent substitution events;
      // either replaces the base with one of the three other symbols.
      if (rng.NextBool(options.mutation_rate) ||
          rng.NextBool(options.error_rate)) {
        base = static_cast<DnaCode>((base + 1 + rng.NextBounded(3)) & 3);
        ++read.substitutions;
      }
    }
    reads.push_back(std::move(read));
  }
  return reads;
}

std::vector<FastqRecord> ToFastq(const std::vector<SimulatedRead>& reads,
                                 const std::string& name_prefix) {
  std::vector<FastqRecord> records;
  records.reserve(reads.size());
  for (size_t i = 0; i < reads.size(); ++i) {
    FastqRecord record;
    record.name = name_prefix + "_" + std::to_string(i) + ":" +
                  std::to_string(reads[i].origin) + ":" +
                  (reads[i].reverse_strand ? "-" : "+") + ":" +
                  std::to_string(reads[i].substitutions);
    record.sequence = reads[i].sequence;
    record.quality.assign(record.sequence.size(), 'I');  // Phred 40
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace bwtk
