// Synthetic genome generation.
//
// The paper's evaluation runs on five real genomes (Table 1) that are not
// redistributable here; this generator produces stand-ins with the
// properties that drive the algorithms' behaviour: alphabet, length, GC
// composition, and repeat structure (tandem and dispersed repeats are what
// create the repeated S-tree pairs that Algorithm A exploits).

#ifndef BWTK_SIMULATE_GENOME_GENERATOR_H_
#define BWTK_SIMULATE_GENOME_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "alphabet/dna.h"
#include "util/random.h"
#include "util/status.h"

namespace bwtk {

/// Knobs for the synthetic genome model.
struct GenomeOptions {
  size_t length = 1 << 20;
  /// Fraction of G+C bases (real genomes: 0.35-0.6).
  double gc_content = 0.41;
  /// Fraction of the genome covered by copied (dispersed) repeats.
  double repeat_fraction = 0.3;
  /// Mean length of one dispersed repeat copy.
  size_t repeat_length = 300;
  /// Per-base divergence applied to each repeat copy.
  double repeat_divergence = 0.02;
  uint64_t seed = 42;
};

/// Generates one synthetic chromosome under `options`.
Result<std::vector<DnaCode>> GenerateGenome(const GenomeOptions& options);

/// A named preset mirroring the *relative* scale of the paper's Table 1
/// genomes (sizes are scaled down uniformly so the largest fits in RAM;
/// the scale factor is applied to the Table 1 base-pair counts).
struct GenomePreset {
  std::string name;
  size_t paper_size_bp;  // size reported in Table 1
  size_t scaled_size_bp;
};

/// The five Table 1 genomes at `scale` (e.g. 1.0/256 of the real sizes).
std::vector<GenomePreset> Table1Presets(double scale);

}  // namespace bwtk

#endif  // BWTK_SIMULATE_GENOME_GENERATOR_H_
