// Algorithm A(L, r, k) — the paper's contribution (Section IV.C/D).
//
// Like the S-tree baseline, the search enumerates pairs <x, [α, β]> by
// backward-search steps over BWT(reverse(s)). Unlike it, three mechanisms
// avoid redundant work:
//
//  1. A hash table over pairs (here: rank ranges) detects every repeated
//     node. Its children are computed by search() exactly once; later
//     appearances at other pattern positions reuse them with zero rank
//     operations (paper, Algorithm A lines 4-9). Two appearances of one
//     pair are always at different levels (Lemma 1), i.e., aligned at
//     different pattern positions i != j.
//  2. Runs of the search tree with a single continuation are cached as
//     *chains* together with their mismatch array relative to the first
//     alignment i. When a chain is re-entered at alignment j, its mismatch
//     structure against r[j..] is derived by merging the stored array with
//     R_ij — the mismatch array between r[i..] and r[j..] (Proposition 1 /
//     the node-creation procedure) — in O(k) jumps instead of O(length)
//     character comparisons.
//  3. The mismatching tree D (mtree.h) records every explored or derived
//     path with match runs collapsed; its leaf count is the paper's n'.
//
// Where a stored chain is shorter than a new visit needs (the paper's
// i > j case, or a chain cut short by an exhausted budget), the walk
// resumes with real search() steps from the chain frontier — the
// "extension" step the paper sketches after Proposition 2.
//
// Instrumentation: each mechanism reports the quantity the paper's analysis
// is stated in. Mechanism 1 fills SearchStats::reused_nodes (hash hits,
// Algorithm A lines 4-9); mechanism 2 fills derived_runs and the
// `merge`/`ri_build` observability phases (Proposition 1 merges and R_ij
// construction, Section IV.D); mechanism 3 fills mtree_nodes/mtree_leaves —
// the n' of the O(kn' + n + m log m) bound and Table 2 (Section V). The
// enumeration itself fills stree_nodes/extend_calls (Section IV.B) and the
// `tree_traversal` phase timer. See match.h for the full field-by-field
// mapping and docs/OBSERVABILITY.md for the phase/counter catalog.

#ifndef BWTK_SEARCH_ALGORITHM_A_H_
#define BWTK_SEARCH_ALGORITHM_A_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "alphabet/dna.h"
#include "bwt/fm_index.h"
#include "search/match.h"

namespace bwtk {

class SubtreeMemo;

/// Reusable per-thread workspace for AlgorithmA::Search.
///
/// One Search call needs an S-tree frame stack, the DAG memo with its range
/// hash table, the chain store, the R_ij cache, and the M-tree. A scratch
/// owns all of them and recycles their buffers across calls, so after a few
/// warm-up queries the search machinery performs no heap allocation per
/// query (the returned occurrence vector is the one unavoidable allocation).
/// This is what makes batched search cheap: BatchSearcher keeps one scratch
/// per worker thread.
///
/// A scratch is NOT thread-safe: it may serve at most one Search call at a
/// time. Distinct scratches are fully independent and may be used
/// concurrently against the same FmIndex.
class AlgorithmAScratch {
 public:
  AlgorithmAScratch();
  ~AlgorithmAScratch();
  AlgorithmAScratch(AlgorithmAScratch&&) noexcept;
  AlgorithmAScratch& operator=(AlgorithmAScratch&&) noexcept;

  /// Opaque buffer bundle, defined with the engine internals in
  /// algorithm_a.cc. Public only so the implementation file can name it;
  /// there is nothing callable here.
  struct Impl;

 private:
  friend class AlgorithmA;

  std::unique_ptr<Impl> impl_;
};

/// Configuration for Algorithm A; the reuse level is the ablation knob.
struct AlgorithmAOptions {
  enum class Reuse {
    /// No memoization at all: degenerates to the brute-force S-tree.
    kNone,
    /// Hash-table reuse of pair children only (mechanism 1).
    kInterval,
    /// Full Algorithm A: interval reuse + chain derivation (1 + 2).
    kFull,
  };
  Reuse reuse = Reuse::kFull;

  /// Also apply the τ(i) cut-off of the BWT baseline. The paper's Algorithm
  /// A pseudo-code does not include it, but the bound is sound for any
  /// S-tree enumeration and composes with the reuse machinery; leaving it
  /// off reproduces the paper's M-tree sizes exactly (Table 2), leaving it
  /// on is what a production deployment would run. Default on.
  bool use_tau = true;

  /// Seed the enumeration at depth q from the index's prefix interval table
  /// when one is attached and k <= PrefixIntervalTable::kMaxSeedMismatches,
  /// building the corresponding M-tree paths directly. Result-identical,
  /// but the M-tree/leaf *counts* can differ from the stepped walk (paths
  /// that die inside the prefix are never materialized), so ablations that
  /// reproduce the paper's Table 2 sizes should turn this off along with
  /// use_tau. Default on.
  bool use_prefix_table = true;
};

/// The paper's Algorithm A over an FM-index.
class AlgorithmA {
 public:
  /// `index` must outlive the searcher.
  explicit AlgorithmA(const FmIndex* index) : index_(index) {}
  AlgorithmA(const FmIndex* index, const AlgorithmAOptions& options)
      : index_(index), options_(options) {}

  /// All occurrences of `pattern` with at most `k` mismatches, sorted by
  /// position. `stats`, if given, receives instrumentation counters
  /// (including the M-tree leaf count n').
  ///
  /// Thread safety: const and self-contained — any number of threads may
  /// call Search concurrently on one AlgorithmA over one shared FmIndex.
  std::vector<Occurrence> Search(const std::vector<DnaCode>& pattern,
                                 int32_t k,
                                 SearchStats* stats = nullptr) const;

  /// As above, but runs inside `scratch`, reusing its buffers instead of
  /// allocating fresh ones. `scratch` must not be shared between concurrent
  /// calls; results are identical to the scratch-less overload.
  std::vector<Occurrence> Search(const std::vector<DnaCode>& pattern,
                                 int32_t k, SearchStats* stats,
                                 AlgorithmAScratch* scratch) const;

  /// As above, additionally consulting (and feeding) a cross-query shared
  /// subtree memo — see subtree_memo.h for the key scheme and correctness
  /// argument. `memo` may be nullptr (plain scratch search); `memo_slot`
  /// namespaces entries when one memo spans several indexes (shard slots).
  /// Hits are byte-identical to an unmemoized search; SearchStats reflect
  /// the reduced work (skipped subtrees are not re-counted).
  std::vector<Occurrence> Search(const std::vector<DnaCode>& pattern,
                                 int32_t k, SearchStats* stats,
                                 AlgorithmAScratch* scratch, SubtreeMemo* memo,
                                 uint32_t memo_slot) const;

  const FmIndex& index() const { return *index_; }

 private:
  const FmIndex* index_;  // not owned
  AlgorithmAOptions options_;
};

}  // namespace bwtk

#endif  // BWTK_SEARCH_ALGORITHM_A_H_
