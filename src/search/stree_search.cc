#include "search/stree_search.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "search/tau_heuristic.h"
#include "util/logging.h"

namespace bwtk {

std::vector<Occurrence> STreeSearch::Search(
    const std::vector<DnaCode>& pattern, int32_t k,
    SearchStats* stats) const {
  BWTK_SCOPED_HIST_TIMER(kHistQueryNanos);
  // Hoisted once; per-node hooks below are a single null check.
  [[maybe_unused]] obs::Trace* const trace = BWTK_TRACE_ACTIVE();
  SearchStats local_stats;
  std::vector<Occurrence> results;
  const size_t m = pattern.size();
  if (m == 0 || m > index_->text_size()) {
    if (stats != nullptr) *stats = local_stats;
    return results;
  }

  std::vector<int32_t> tau;
  if (options_.use_tau) {
    BWTK_TRACE_SPAN(trace, "tau_build");
    tau = ComputeTau(*index_, pattern);
  }

  struct Frame {
    FmIndex::Range range;
    uint32_t depth;       // characters consumed
    int32_t mismatches;
  };
  std::vector<Frame> stack;
  const PrefixIntervalTable* table =
      options_.use_prefix_table ? index_->prefix_table() : nullptr;
  const uint32_t q = table ? table->q() : 0;
  if (q > 0 && m >= q && k <= PrefixIntervalTable::kMaxSeedMismatches) {
    // Seed at depth q from the table: the surviving depth-q S-tree states
    // are exactly the non-empty ranges of the length-q strings within
    // Hamming distance k of the pattern's q-prefix, so enumerating those
    // variants is result-identical to stepping the first q levels. τ is
    // checked at depth q only — a subset of the checks the stepped walk
    // performs, and τ never prunes a real occurrence, so the match set is
    // unchanged.
    uint64_t hits = 0;
    table->ForEachVariant(
        pattern.data(), k, [&](const PrefixIntervalTable::Variant& v) {
          SaIndex lo;
          SaIndex hi;
          if (!table->Lookup(v.key, &lo, &hi)) return;
          ++hits;
          ++local_stats.stree_nodes;
          BWTK_TRACE_NODE(trace, q);
          if (options_.use_tau && k - v.mismatches < tau[q]) {
            ++local_stats.tau_pruned;
            return;
          }
          stack.push_back({{lo, hi}, q, v.mismatches});
        });
    BWTK_METRIC_COUNT2(kCounterPrefixTableHits, hits,
                       kCounterPrefixTableSkippedSteps, hits * q);
    BWTK_TRACE_PREFIX_HITS(trace, hits);
  } else {
    stack.push_back({index_->WholeRange(), 0, 0});
  }
  BWTK_SCOPED_TIMER(kPhaseTreeTraversal);
  BWTK_TRACE_SPAN(trace, "tree_traversal");
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.depth == m) {
      ++local_stats.completed_paths;
      for (const size_t pos : index_->Locate(frame.range, m)) {
        results.push_back({pos, frame.mismatches});
      }
      continue;
    }
    const DnaCode expected = pattern[frame.depth];
    FmIndex::Range children[kDnaAlphabetSize];
    index_->ExtendAll(frame.range, children);
    local_stats.extend_calls += kDnaAlphabetSize;
    for (DnaCode c = 0; c < kDnaAlphabetSize; ++c) {
      const FmIndex::Range next = children[c];
      if (next.empty()) continue;
      ++local_stats.stree_nodes;
      BWTK_TRACE_NODE(trace, frame.depth + 1);
      const int32_t mismatches = frame.mismatches + (c != expected ? 1 : 0);
      if (mismatches > k) {
        ++local_stats.budget_pruned;
        continue;
      }
      if (options_.use_tau && k - mismatches < tau[frame.depth + 1]) {
        ++local_stats.tau_pruned;
        continue;
      }
      stack.push_back({next, frame.depth + 1, mismatches});
    }
  }

  NormalizeOccurrences(&results);
  // Bulk-flushed rank work; the traversal loop itself carries no metrics
  // hooks (see FmIndex::Extend). One ExtendAll = two RankAlls per
  // kDnaAlphabetSize-sized extend_calls increment.
  const uint64_t extend_alls = local_stats.extend_calls / kDnaAlphabetSize;
  BWTK_METRIC_COUNT2(kCounterExtendAllCalls, extend_alls,
                     kCounterRankAllCalls, 2 * extend_alls);
  BWTK_METRIC_OBSERVE(kHistHitsPerQuery, results.size());
  if (stats != nullptr) *stats = local_stats;
  return results;
}

}  // namespace bwtk
