// KMismatchSearcher — the library's front door.
//
// Wraps index construction, persistence, and the Algorithm A search engine
// behind one object:
//
//   auto searcher = KMismatchSearcher::Build(genome_codes).value();
//   auto hits = searcher.Search("acgtacgt...", /*k=*/3).value();
//
// The lower-level engines (STreeSearch, AlgorithmA, the baselines/ family)
// remain directly usable for benchmarking and research.

#ifndef BWTK_SEARCH_SEARCHER_H_
#define BWTK_SEARCH_SEARCHER_H_

#include <string>
#include <string_view>
#include <vector>

#include "alphabet/dna.h"
#include "bwt/fm_index.h"
#include "search/algorithm_a.h"
#include "search/match.h"
#include "util/status.h"

namespace bwtk {

/// High-level k-mismatch search over one indexed target sequence.
class KMismatchSearcher {
 public:
  /// Indexes `genome` with default FM-index options.
  static Result<KMismatchSearcher> Build(const std::vector<DnaCode>& genome);

  /// Indexes `genome` with explicit FM-index options.
  static Result<KMismatchSearcher> Build(const std::vector<DnaCode>& genome,
                                         const FmIndex::Options& options);

  /// Indexes an ASCII DNA string (a/c/g/t, either case).
  static Result<KMismatchSearcher> Build(std::string_view genome);

  /// Loads a previously saved index (see SaveIndex).
  static Result<KMismatchSearcher> FromIndexFile(const std::string& path);

  KMismatchSearcher(KMismatchSearcher&&) = default;
  KMismatchSearcher& operator=(KMismatchSearcher&&) = default;

  /// All occurrences of `pattern` in the genome with at most `k` mismatches,
  /// sorted by position.
  ///
  /// Thread safety: Search is const and touches only the immutable index
  /// plus per-call state, so any number of threads may call it concurrently
  /// on one searcher. This is the guarantee BatchSearcher's lock-free query
  /// path is built on. (Build/SaveIndex/move are not part of it: complete
  /// construction before sharing, and do not move a searcher while other
  /// threads search.)
  std::vector<Occurrence> Search(const std::vector<DnaCode>& pattern,
                                 int32_t k,
                                 SearchStats* stats = nullptr) const;

  /// As above, reusing `scratch`'s buffers so repeated queries allocate
  /// nothing after warm-up. `scratch` must serve one call at a time;
  /// distinct scratches may run concurrently (one per thread).
  std::vector<Occurrence> Search(const std::vector<DnaCode>& pattern,
                                 int32_t k, SearchStats* stats,
                                 AlgorithmAScratch* scratch) const;

  /// ASCII convenience overload; fails on non-DNA characters.
  Result<std::vector<Occurrence>> Search(std::string_view pattern, int32_t k,
                                         SearchStats* stats = nullptr) const;

  /// Persists the index for later FromIndexFile.
  Status SaveIndex(const std::string& path) const { return index_.SaveToFile(path); }

  size_t genome_size() const { return index_.text_size(); }
  const FmIndex& index() const { return index_; }

 private:
  explicit KMismatchSearcher(FmIndex index) : index_(std::move(index)) {}

  FmIndex index_;
};

}  // namespace bwtk

#endif  // BWTK_SEARCH_SEARCHER_H_
