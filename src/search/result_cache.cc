#include "search/result_cache.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "util/logging.h"

namespace bwtk {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t FnvMix(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= value & 0xff;
    hash *= kFnvPrime;
    value >>= 8;
  }
  return hash;
}

}  // namespace

uint64_t FmIndexVersion(const FmIndex& index) {
  uint64_t hash = kFnvOffset;
  hash = FnvMix(hash, index.text_size());
  hash = FnvMix(hash, index.options().checkpoint_rate);
  hash = FnvMix(hash, index.options().sa_sample_rate);
  hash = FnvMix(hash, index.options().prefix_table_q);
  const std::vector<uint64_t>& words = index.bwt().codes.words();
  // Sample the BWT content: the full head and tail plus a constant number
  // of strided probes. Fingerprinting stays O(1) on genome-scale indexes
  // while any realistic rebuild (different text, different length) changes
  // sampled words.
  constexpr size_t kEdge = 256;
  constexpr size_t kProbes = 1024;
  if (words.size() <= 2 * kEdge + kProbes) {
    for (const uint64_t w : words) hash = FnvMix(hash, w);
    return hash;
  }
  for (size_t i = 0; i < kEdge; ++i) hash = FnvMix(hash, words[i]);
  for (size_t i = words.size() - kEdge; i < words.size(); ++i) {
    hash = FnvMix(hash, words[i]);
  }
  const size_t stride = (words.size() - 2 * kEdge) / kProbes;
  for (size_t p = 0; p < kProbes; ++p) {
    hash = FnvMix(hash, words[kEdge + p * stride]);
  }
  return hash;
}

ResultCache::ResultCache(const ResultCacheOptions& options)
    : options_(options) {}

std::string ResultCache::MakeKey(uint8_t engine, int32_t k,
                                 uint64_t index_version,
                                 const std::vector<DnaCode>& pattern) {
  std::string key;
  key.reserve(13 + pattern.size());
  key.push_back(static_cast<char>(engine));
  key.append(reinterpret_cast<const char*>(&k), sizeof(k));
  key.append(reinterpret_cast<const char*>(&index_version),
             sizeof(index_version));
  key.append(reinterpret_cast<const char*>(pattern.data()), pattern.size());
  return key;
}

size_t ResultCache::EntryBytes(const std::string& key,
                               const Entry& entry) const {
  // Key + hits + a fixed allowance for the two map/list nodes.
  return key.size() + entry.hits.size() * sizeof(Occurrence) +
         sizeof(Entry) + 160;
}

bool ResultCache::Lookup(uint8_t engine, int32_t k, uint64_t index_version,
                         const std::vector<DnaCode>& pattern, Entry* out) {
  const std::string key = MakeKey(engine, k, index_version, pattern);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    BWTK_METRIC_COUNT(kCounterResultCacheMisses);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  *out = it->second.entry;
  ++stats_.hits;
  BWTK_METRIC_COUNT(kCounterResultCacheHits);
  return true;
}

void ResultCache::Insert(uint8_t engine, int32_t k, uint64_t index_version,
                         const std::vector<DnaCode>& pattern, Entry entry) {
  std::string key = MakeKey(engine, k, index_version, pattern);
  const size_t bytes = EntryBytes(key, entry);
  if (bytes > options_.capacity_bytes) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    // Refresh (identical by construction, but keep LRU position honest).
    bytes_ -= it->second.bytes;
    bytes_ += bytes;
    it->second.entry = std::move(entry);
    it->second.bytes = bytes;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    EvictToFitLocked(0);
    return;
  }
  EvictToFitLocked(bytes);
  lru_.push_front(std::move(key));
  map_.emplace(lru_.front(), Slot{std::move(entry), bytes, lru_.begin()});
  bytes_ += bytes;
}

void ResultCache::EvictToFitLocked(size_t incoming_bytes) {
  while (bytes_ + incoming_bytes > options_.capacity_bytes && !lru_.empty()) {
    const auto victim = map_.find(lru_.back());
    BWTK_DCHECK(victim != map_.end());
    bytes_ -= victim->second.bytes;
    map_.erase(victim);
    lru_.pop_back();
    ++stats_.evictions;
    BWTK_METRIC_COUNT(kCounterResultCacheEvictions);
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  map_.clear();
  bytes_ = 0;
}

ResultCache::CacheStats ResultCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats out = stats_;
  out.entries = map_.size();
  out.bytes = bytes_;
  return out;
}

}  // namespace bwtk
