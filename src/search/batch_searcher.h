// BatchSearcher — parallel k-mismatch search over one (or a group of)
// shared FM-indexes.
//
// An FmIndex is immutable after Build() and every query-path method on it
// is const, so N threads can search the same index with no locks. This class
// packages that: a fixed-size std::thread worker pool, an atomic cursor
// handing out work items, and one AlgorithmAScratch per worker so the engine
// allocates nothing per query after warm-up. Results come back in input
// order; per-thread SearchStats are merged into one aggregate at batch end.
//
//   bwtk::BatchSearcher batch(searcher, {.num_threads = 8});
//   std::vector<bwtk::BatchQuery> queries = ...;   // (pattern, k) pairs
//   bwtk::BatchResult result = batch.Search(queries);
//   // result.occurrences[i] == serial searcher.Search(queries[i].pattern, k)
//
// A BatchSearcher may also be constructed over an *index group* — an ordered
// list of FM-indexes (typically the shards of a ShardedIndex, see
// shard/sharded_index.h). The work item is then a (query, index) pair:
// SearchFanout() runs every query against every index and returns the
// per-pair hit lists, which is the substrate ShardedBatchSearcher's seam
// de-duplication is built on. The plain Search() over a group returns the
// per-query union across indexes (no de-duplication — overlapping indexes
// will repeat hits; use ShardedBatchSearcher for exact sharded search).
//
// Thread safety: a BatchSearcher drives its own pool and is NOT itself
// thread-safe — issue one batch at a time (concurrent Search calls on one
// BatchSearcher are undefined). Multiple BatchSearchers may share one
// FmIndex.

#ifndef BWTK_SEARCH_BATCH_SEARCHER_H_
#define BWTK_SEARCH_BATCH_SEARCHER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "alphabet/dna.h"
#include "bidir/bidir_search.h"
#include "bwt/fm_index.h"
#include "dict/dictionary_searcher.h"
#include "dict/pattern_set_trie.h"
#include "obs/trace.h"
#include "search/algorithm_a.h"
#include "search/match.h"
#include "search/result_cache.h"
#include "search/searcher.h"
#include "search/stree_search.h"
#include "search/subtree_memo.h"
#include "util/status.h"

namespace bwtk {

/// One query of a batch: a pattern and its own mismatch budget.
struct BatchQuery {
  std::vector<DnaCode> pattern;
  int32_t k = 0;
};

/// Which search engine the worker pool runs per query. All of them return
/// position-sorted Occurrence lists over the same index; they differ in the
/// distance function and the amount of reuse machinery. The per-engine
/// SearchStats contract (which counters each engine fills) is documented in
/// docs/API.md, "Per-engine stats contract".
enum class BatchEngine {
  /// The paper's Algorithm A (Hamming distance, full reuse). Default.
  kAlgorithmA,
  /// The BWT-baseline S-tree search (Hamming distance, no reuse).
  kSTree,
  /// KErrorSearch (Levenshtein distance). Each EditOccurrence is projected
  /// to Occurrence{position, edits}; the matched-substring *length* is not
  /// representable in Occurrence and is dropped. Intended for small k.
  kKError,
  /// WildcardSearch: patterns may contain kWildcardCode positions that
  /// match any base, plus a Hamming budget k on the concrete positions.
  /// ASCII batch overloads decode patterns with ParseWildcardPattern
  /// ('?', '.', 'n', 'N' = wildcard) when this engine is selected.
  kWildcard,
  /// DictionarySearcher (Hamming distance, dict/dictionary_searcher.h):
  /// the batch's equal-length patterns are folded into PatternSetTrie
  /// groups on the submitting thread and each group is answered by ONE
  /// joint trie ∩ FM-index descent per index, so shared pattern prefixes
  /// are searched once across the whole batch. Per query the hits are
  /// byte-identical to kSTree/kAlgorithmA; the win is throughput on large
  /// pattern sets (see docs/DICTIONARY.md and BENCH_dictionary.json).
  /// Patterns of different lengths (or different k) simply land in
  /// different groups.
  kDictionary,
  /// BidirectionalSearch (Hamming distance, bidir/bidir_search.h): walks an
  /// optimal search scheme over a BiFmIndex, extending in both directions
  /// so most branches die in a mismatch-poor piece. Requires
  /// BatchOptions::bidir_indexes (one BiFmIndex per index slot); hits are
  /// byte-identical to kSTree/kAlgorithmA. Strongest at k >= 2 on long
  /// reads (see BENCH_bidir.json and docs/BIDIRECTIONAL.md).
  kBidirectional,
  /// Not an engine: per query, AutoPickEngine(pattern length, k,
  /// bidir available) selects kAlgorithmA or kBidirectional from the
  /// calibrated crossover table. Falls back to kAlgorithmA everywhere when
  /// BatchOptions::bidir_indexes is absent. Stats, traces, result-cache
  /// keys and served-ticket counters all attribute to the *resolved*
  /// engine.
  kAuto,
};

/// Stable engine label used for traces and bench reports ("algorithm_a",
/// "stree", "kerror", "wildcard", "dictionary", "bidirectional", "auto").
std::string_view BatchEngineName(BatchEngine engine);

/// The (pattern length, k) → engine table behind BatchEngine::kAuto,
/// calibrated from the committed BENCH_bidir.json head-to-head grid (see
/// docs/BIDIRECTIONAL.md for the measured crossover). Returns kAlgorithmA
/// whenever `bidir_available` is false.
BatchEngine AutoPickEngine(size_t pattern_length, int32_t k,
                           bool bidir_available);

/// Decodes an ASCII pattern the way the batch overloads do for `engine`:
/// ParseWildcardPattern for kWildcard (wildcards allowed), EncodeDna for
/// every other engine (strict a/c/g/t).
Result<std::vector<DnaCode>> DecodeBatchPattern(BatchEngine engine,
                                                std::string_view pattern);

/// Pool configuration, fixed at construction.
struct BatchOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  int num_threads = 0;

  /// When true (default), every per-query occurrence vector is guaranteed
  /// byte-identical to what the serial engine returns (position-sorted),
  /// regardless of which worker ran it. When false the engine may return
  /// per-query hits in any order — a latitude multi-index groups use; the
  /// current engines sort either way.
  bool deterministic_order = true;

  /// ASCII batches only: when true, the first undecodable pattern fails the
  /// whole batch before any search runs. When false, bad patterns are
  /// skipped — they yield an empty occurrence list and are counted in
  /// BatchResult::failed_queries.
  bool fail_fast = false;

  /// Which engine the workers run (see BatchEngine).
  BatchEngine engine = BatchEngine::kAlgorithmA;

  /// Engine knobs for BatchEngine::kAlgorithmA, passed through to every
  /// worker's AlgorithmA.
  AlgorithmAOptions algorithm_a = {};

  /// Engine knobs for BatchEngine::kSTree.
  STreeOptions stree = {};

  /// Engine knobs for BatchEngine::kDictionary, passed through to every
  /// worker's DictionarySearcher.
  DictionaryOptions dictionary = {};

  /// Engine knobs for BatchEngine::kBidirectional.
  BidirOptions bidir = {};

  /// Bidirectional indexes, one per index slot, each pairing the slot's
  /// FmIndex with its reverse-text half (typically BiFmIndex::FromForward
  /// of that very index). Required for kBidirectional, enables the
  /// bidirectional arm of kAuto, ignored by the other engines. When
  /// non-empty the vector must have exactly one non-null entry per index,
  /// each indexing the same text as its slot (for a ShardedBatchSearcher,
  /// one per shard in shard order). Not owned; must outlive the
  /// searcher/session.
  std::vector<const BiFmIndex*> bidir_indexes;

  /// Batch-scoped shared subtree memo (BatchEngine::kAlgorithmA only; see
  /// subtree_memo.h). When enabled, the pool owns one SubtreeMemo, clears
  /// it at every batch start, and workers publish/consume completed
  /// subtrees across queries of the batch. Hits are byte-identical with the
  /// memo on or off; SearchStats reflect the reduced work, and with more
  /// than one worker their exact values depend on publish timing (run
  /// single-threaded for stats-reproducible memoized runs). Off by default.
  SharedMemoOptions shared_memo = {};

  /// Exact-duplicate result cache (search/result_cache.h). When enabled the
  /// pool consults it per (pattern, k, engine, index version) before
  /// searching and inserts on miss. Cached entries store the original
  /// execution's SearchStats, so aggregate stats are identical whether or
  /// not the cache is warm. Off by default.
  ResultCacheOptions result_cache = {};

  /// Externally owned cache instance. When set, it is used (and
  /// result_cache.enabled is ignored) — this is how several pools/sessions
  /// share one cache, and how a cache survives an index rebuild (stale
  /// entries miss by version). When null and result_cache.enabled is true,
  /// the pool creates a private instance.
  std::shared_ptr<ResultCache> result_cache_instance;

  /// ShardedBatchSearcher only: answer k = 0 queries with one FM-index
  /// point lookup per shard (backward search + locate + the owner-shard
  /// seam rule) instead of fanning a (query, shard) task per shard through
  /// the worker pool. Byte-identical hits for every engine — at k = 0 they
  /// all degenerate to exact matching — but the skipped engine runs
  /// contribute no SearchStats. Ignored by plain BatchSearcher. Default on.
  bool sharded_exact_shortcut = true;

  /// Per-query tracing (see obs/trace.h). 0 disables tracing entirely — no
  /// sink is created and the query path pays nothing. In (0, 1] each query
  /// is traced with this probability; the decision hashes the stable trace
  /// id `(batch sequence << 32) | task index`, so the sampled subset is
  /// reproducible across runs and independent of thread assignment. (For a
  /// single-index group the task index is the query index; for a group of S
  /// indexes it is `query * S + shard`.)
  double trace_sample_rate = 0.0;

  /// Slow-query log depth: the sink retains this many of the worst sampled
  /// traces by wall time (see TraceSink). Effective only when tracing is on.
  size_t slow_trace_count = 8;

  /// XORed into the sampling hash; change to draw a different sample.
  uint64_t trace_seed = 0;

  /// When non-empty and tracing is on, every completed batch rewrites this
  /// file with the sink's cumulative Chrome-trace JSON (WriteTraceFile).
  /// Failures are logged as warnings, never fail the batch.
  std::string trace_out;
};

/// Output of one batch: per-query hits in input order + aggregate counters.
struct BatchResult {
  /// occurrences[i] holds the hits for queries[i].
  std::vector<std::vector<Occurrence>> occurrences;
  /// Sum of every query's SearchStats across all workers (and, for sharded
  /// batches, across shards — counters measure total work done, seam
  /// redundancy included).
  SearchStats stats;
  /// ASCII batches with fail_fast = false: number of undecodable patterns.
  size_t failed_queries = 0;
  /// Overlap-seam hits discarded by the ownership rule. Only set by
  /// ShardedBatchSearcher; always 0 for a plain BatchSearcher.
  uint64_t seam_hits_deduped = 0;
};

/// Output of BatchSearcher::SearchFanout over an index group of S indexes:
/// one hit list per (query, index) pair.
struct BatchFanoutResult {
  /// occurrences[q * S + s] holds the hits of queries[q] against index s,
  /// in that index's local coordinates.
  std::vector<std::vector<Occurrence>> occurrences;
  /// Sum of every task's SearchStats.
  SearchStats stats;
};

/// One worker's bank of search engines over an index group — the
/// task-granular execution seam under both batch and streaming dispatch.
/// A bank instantiates one engine per index for the configured
/// BatchEngine family plus a reusable AlgorithmAScratch, and Run() executes
/// a single (query, index) task exactly as the serial engine would
/// (including deterministic-order normalization). BatchSearcher's pool
/// workers each own one bank and claim whole-batch task ranges from it;
/// the serving layer (serve/session.h) gives each long-lived Session
/// worker one bank and feeds it tickets one at a time. Engines are thin
/// const views over the shared immutable indexes, so constructing a bank
/// is cheap and banks on different threads never contend.
///
/// Not thread-safe: one bank per worker thread (the scratch is mutable
/// per-query state).
class EngineBank {
 public:
  /// Every index must be non-null and outlive the bank.
  EngineBank(const std::vector<const FmIndex*>& indexes,
             const BatchOptions& options);
  ~EngineBank();
  EngineBank(const EngineBank&) = delete;
  EngineBank& operator=(const EngineBank&) = delete;

  /// Runs `query` against index `index_slot` with the configured engine.
  /// Returns the hit list (normalized when options.deterministic_order) and
  /// fills `stats` with the engine's per-query counters. A query with
  /// k < 0 (a decode-failed placeholder) returns empty without searching.
  /// Under BatchEngine::kDictionary this is the degenerate one-pattern
  /// form — a single-pattern trie answered by one joint descent — which is
  /// how ticket-at-a-time callers (serve::Session) run the engine; batch
  /// callers amortize via RunDictionary.
  std::vector<Occurrence> Run(const BatchQuery& query, size_t index_slot,
                              SearchStats* stats);

  /// BatchEngine::kDictionary only: answers every pattern of `trie` against
  /// index `index_slot` in one joint descent. result[id] answers
  /// trie.pattern(id), byte-identical to Run() on that pattern alone.
  std::vector<std::vector<Occurrence>> RunDictionary(const PatternSetTrie& trie,
                                                     int32_t k,
                                                     size_t index_slot,
                                                     SearchStats* stats);

  /// Runs `query` with `engine` instead of the configured one — the
  /// substrate of per-ticket engine overrides (serve wire flag) and of
  /// kAuto. kAuto is Resolve()d internally; `engine` must satisfy
  /// Supports() (kBidirectional without bidir indexes is a CHECK failure —
  /// callers taking untrusted overrides validate with Supports first).
  std::vector<Occurrence> RunWith(BatchEngine engine, const BatchQuery& query,
                                  size_t index_slot, SearchStats* stats);

  /// True when this bank can execute `engine`: always for the five
  /// FmIndex-only engines and kAuto (which degrades to kAlgorithmA),
  /// only with BatchOptions::bidir_indexes for kBidirectional.
  bool Supports(BatchEngine engine) const;

  /// The engine a query actually runs under: `engine` itself, except kAuto
  /// which maps through AutoPickEngine(pattern length, k, bidir present).
  BatchEngine Resolve(BatchEngine engine, const BatchQuery& query) const;

  /// Attaches (or detaches, with nullptr) the shared subtree memo consulted
  /// by kAlgorithmA runs. The memo must outlive the bank or be detached
  /// first; index_slot namespaces its entries per index.
  void set_shared_memo(SubtreeMemo* memo);

  /// BatchEngineName(options.engine) — the stable trace/report label.
  std::string_view engine_name() const;

  size_t num_indexes() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Fixed worker pool executing batches of k-mismatch queries.
class BatchSearcher {
 public:
  /// `index` must outlive the BatchSearcher. Workers start (and block idle)
  /// here.
  explicit BatchSearcher(const FmIndex* index,
                         const BatchOptions& options = {});

  /// Index-group form: every index must be non-null and outlive the
  /// BatchSearcher. The group must be non-empty. Work items are
  /// (query, index) pairs; see SearchFanout.
  explicit BatchSearcher(std::vector<const FmIndex*> indexes,
                         const BatchOptions& options = {});

  /// Convenience: searches `searcher`'s index. The searcher must outlive
  /// the BatchSearcher.
  explicit BatchSearcher(const KMismatchSearcher& searcher,
                         const BatchOptions& options = {})
      : BatchSearcher(&searcher.index(), options) {}

  /// Joins the workers.
  ~BatchSearcher();

  BatchSearcher(const BatchSearcher&) = delete;
  BatchSearcher& operator=(const BatchSearcher&) = delete;

  /// Runs every query and blocks until the batch is complete. Results are
  /// in input order; over a single index each equals what the serial engine
  /// would return for that (pattern, k). Over an index group, each query's
  /// list is the sorted union of its per-index hits (local coordinates, no
  /// seam handling). An empty batch returns immediately.
  BatchResult Search(const std::vector<BatchQuery>& queries);

  /// Runs every query against every index of the group and blocks until all
  /// (query, index) tasks are complete. This is the router substrate:
  /// ShardedBatchSearcher translates and de-duplicates the per-shard lists.
  BatchFanoutResult SearchFanout(const std::vector<BatchQuery>& queries);

  /// ASCII convenience: same budget `k` for every pattern. Decoding happens
  /// up front on the calling thread; see BatchOptions::fail_fast for how
  /// undecodable patterns are handled.
  Result<BatchResult> Search(const std::vector<std::string>& patterns,
                             int32_t k);

  /// Actual pool size (after resolving num_threads = 0 and clamping).
  int num_threads() const;

  /// Number of indexes in the group (1 for the single-index constructors).
  size_t num_indexes() const;

  /// The trace collector, or nullptr when tracing is disabled
  /// (trace_sample_rate == 0, or the library was built with
  /// -DBWTK_DISABLE_METRICS). Accumulates across batches; read it between
  /// batches only (Search must not be in flight).
  const obs::TraceSink* trace_sink() const;

 private:
  struct Pool;
  std::unique_ptr<Pool> pool_;
};

}  // namespace bwtk

#endif  // BWTK_SEARCH_BATCH_SEARCHER_H_
