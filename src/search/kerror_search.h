// String matching with k errors (Levenshtein distance) over the FM-index —
// the sibling problem of Section II's taxonomy ("when the distance function
// is the Levenshtein distance, the problem is known as the string matching
// with k errors"). Implemented as S-tree backtracking with an edit budget:
// besides the substitution branches of the k-mismatch search, the walk may
// consume a pattern character without extending the index range (deletion
// from the text's view) or extend the range without consuming the pattern
// (insertion), each costing one edit.

#ifndef BWTK_SEARCH_KERROR_SEARCH_H_
#define BWTK_SEARCH_KERROR_SEARCH_H_

#include <cstdint>
#include <vector>

#include "alphabet/dna.h"
#include "bwt/fm_index.h"
#include "search/match.h"

namespace bwtk {

/// One approximate occurrence under edit distance.
struct EditOccurrence {
  /// Start position in the target of the matched substring.
  size_t position = 0;
  /// Length of the matched substring (m - k .. m + k).
  size_t length = 0;
  /// Edit distance between the pattern and target[position .. +length).
  int32_t edits = 0;

  bool operator==(const EditOccurrence&) const = default;
  auto operator<=>(const EditOccurrence&) const = default;
};

/// FM-index backtracking search under the Levenshtein distance.
class KErrorSearch {
 public:
  /// `index` must outlive the searcher.
  explicit KErrorSearch(const FmIndex* index) : index_(index) {}

  /// All occurrences of `pattern` within edit distance `k`, deduplicated to
  /// the best (fewest-edit, then shortest) alignment per start position and
  /// sorted by position. Intended for small k (the backtracking state space
  /// grows steeply with the budget).
  ///
  /// When `stats` is non-null it receives this query's SearchStats. The
  /// engine fills the subset that maps onto the edit-distance walk
  /// (docs/API.md, "Per-engine stats contract"): `stree_nodes` counts
  /// deduplicated backtracking states pushed, `extend_calls` the FM
  /// search-primitive work (4 per ExtendAll, as in STreeSearch),
  /// `completed_paths` the frames that consumed the whole pattern and
  /// reported a range, and `budget_pruned` the expansions rejected for
  /// exceeding the edit budget. The Algorithm-A-specific fields (mtree_*,
  /// reused_nodes, derived_runs) and `tau_pruned` stay zero — this walk has
  /// no M-tree and no τ bound.
  std::vector<EditOccurrence> Search(const std::vector<DnaCode>& pattern,
                                     int32_t k,
                                     SearchStats* stats = nullptr) const;

 private:
  const FmIndex* index_;  // not owned
};

/// Oracle: banded dynamic programming over every window (O(nmk)); used by
/// tests and available for verification.
std::vector<EditOccurrence> KErrorSearchNaive(
    const std::vector<DnaCode>& text, const std::vector<DnaCode>& pattern,
    int32_t k);

}  // namespace bwtk

#endif  // BWTK_SEARCH_KERROR_SEARCH_H_
