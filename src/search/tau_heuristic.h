// The τ(i) cut-off heuristic of the BWT baseline [34] (Section IV.A).
//
// τ(i) counts the consecutive, disjoint substrings of r[i..m) that do not
// occur anywhere in the target s. Any occurrence of r[i..m) with fewer than
// τ(i) mismatches is impossible (each absent substring forces at least one
// mismatch), so a search path with remaining budget b stops as soon as
// b < τ(i).

#ifndef BWTK_SEARCH_TAU_HEURISTIC_H_
#define BWTK_SEARCH_TAU_HEURISTIC_H_

#include <cstdint>
#include <vector>

#include "alphabet/dna.h"
#include "bwt/fm_index.h"

namespace bwtk {

/// Computes τ(i) for all suffixes: tau[i] applies to r[i..m), tau[m] = 0.
/// Uses the FM-index for the substring-occurrence probes.
std::vector<int32_t> ComputeTau(const FmIndex& index,
                                const std::vector<DnaCode>& pattern);

}  // namespace bwtk

#endif  // BWTK_SEARCH_TAU_HEURISTIC_H_
