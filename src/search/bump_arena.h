// Append-only slab storage for per-query scratch state.
//
// The Algorithm A scratch (algorithm_a.h) rebuilds its chain store and
// M-tree on every query. Backing them with std::vector already amortizes
// the allocations, but a vector still pays for exception-safe growth and,
// for the chain store, one heap block per chain's inner arrays. A BumpPool
// is the minimal alternative: one contiguous slab per element type, grown
// geometrically and never shrunk, with O(1) whole-pool reset and O(1)
// truncation back to a mark (how a speculative chain walk abandons a run
// that turned out too short to keep). Elements must be trivially copyable
// so growth is a memcpy and truncation needs no destructor calls.

#ifndef BWTK_SEARCH_BUMP_ARENA_H_
#define BWTK_SEARCH_BUMP_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>

namespace bwtk {

/// Trivially-copyable element pool with bump allocation and O(1) reset.
/// Not thread-safe; owned by exactly one scratch.
template <typename T>
class BumpPool {
  static_assert(std::is_trivially_copyable_v<T>,
                "BumpPool growth relies on memcpy relocation");

 public:
  BumpPool() = default;

  /// Appends one element, growing the slab if needed. References returned
  /// by operator[] are invalidated on growth, like std::vector.
  void push_back(const T& value) {
    if (size_ == capacity_) Grow(size_ + 1);
    data_[size_++] = value;
  }

  /// Appends a default-initialized element and returns its index.
  size_t emplace_index() {
    if (size_ == capacity_) Grow(size_ + 1);
    data_[size_] = T{};
    return size_++;
  }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  T* data() { return data_.get(); }
  const T* data() const { return data_.get(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  /// Drops every element, keeping the slab.
  void clear() { size_ = 0; }

  /// Drops elements [mark, size()), keeping the slab — the abandonment hook
  /// for speculative appends. `mark` must be <= size().
  void Truncate(size_t mark) { size_ = mark; }

  void reserve(size_t capacity) {
    if (capacity > capacity_) Grow(capacity);
  }

  size_t MemoryUsage() const { return capacity_ * sizeof(T); }

 private:
  void Grow(size_t at_least) {
    size_t next = capacity_ == 0 ? 64 : capacity_ * 2;
    if (next < at_least) next = at_least;
    std::unique_ptr<T[]> bigger(new T[next]);
    if (size_ > 0) std::memcpy(bigger.get(), data_.get(), size_ * sizeof(T));
    data_ = std::move(bigger);
    capacity_ = next;
  }

  std::unique_ptr<T[]> data_;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace bwtk

#endif  // BWTK_SEARCH_BUMP_ARENA_H_
