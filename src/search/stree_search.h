// The BWT-baseline k-mismatch search (Section IV.A — the method of [34]).
//
// A depth-first enumeration of the S-tree (Definition 1): each node is a
// pair <x, [α, β]> produced by one search() step; every root-to-leaf path
// of length m with at most k mismatching nodes is an occurrence. The τ(i)
// heuristic optionally prunes subtrees that cannot recover within the
// remaining mismatch budget. No mismatch information is reused — that is
// exactly what Algorithm A (algorithm_a.h) adds on top.

#ifndef BWTK_SEARCH_STREE_SEARCH_H_
#define BWTK_SEARCH_STREE_SEARCH_H_

#include <cstdint>
#include <vector>

#include "alphabet/dna.h"
#include "bwt/fm_index.h"
#include "search/match.h"

namespace bwtk {

/// Configuration of the baseline S-tree search.
struct STreeOptions {
  /// Apply the τ(i) pruning of [34]. Off gives the pure brute-force S-tree.
  bool use_tau = true;
  /// Seed the enumeration from the index's prefix interval table when one
  /// is attached (FmIndex::Options::prefix_table_q > 0) and the mismatch
  /// budget is small enough (PrefixIntervalTable::kMaxSeedMismatches):
  /// every depth-q S-tree state is produced by table lookups instead of q
  /// levels of Extend steps. Result-identical either way.
  bool use_prefix_table = true;
};

/// Brute-force S-tree search over an FM-index.
class STreeSearch {
 public:
  /// `index` must outlive the searcher.
  explicit STreeSearch(const FmIndex* index) : index_(index) {}
  STreeSearch(const FmIndex* index, const STreeOptions& options)
      : index_(index), options_(options) {}

  /// All occurrences of `pattern` with at most `k` mismatches, sorted by
  /// position. `stats`, if given, receives instrumentation counters.
  std::vector<Occurrence> Search(const std::vector<DnaCode>& pattern,
                                 int32_t k,
                                 SearchStats* stats = nullptr) const;

  const FmIndex& index() const { return *index_; }

 private:
  const FmIndex* index_;  // not owned
  STreeOptions options_;
};

}  // namespace bwtk

#endif  // BWTK_SEARCH_STREE_SEARCH_H_
