#include "search/batch_searcher.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "util/logging.h"

namespace bwtk {

namespace {

int ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Aux (worker-lane) trace ids live in the top of the per-batch id space so
// they can never collide with query indices.
constexpr uint64_t kAuxIdBase = 0xFFFF0000ULL;

}  // namespace

// All pool state. The mutex guards the batch hand-off (generation counter,
// batch pointers, completion count); the query path itself is lock-free —
// workers claim query indices from `cursor` and write disjoint slots of the
// output vector, which is pre-sized before workers wake.
struct BatchSearcher::Pool {
  const FmIndex* index;
  BatchOptions options;
  int num_threads;

  std::vector<std::thread> workers;
  std::vector<AlgorithmAScratch> scratches;  // one per worker, reused forever
  std::vector<SearchStats> thread_stats;     // tid-indexed, valid per batch

  std::mutex mu;
  std::condition_variable work_cv;  // workers wait for a new generation
  std::condition_variable done_cv;  // Search waits for workers_left == 0
  uint64_t generation = 0;          // bumped per batch (guarded by mu)
  bool shutdown = false;            // (guarded by mu)
  int workers_left = 0;             // workers still in the batch (mu)

  // Current batch, valid while workers_left > 0.
  const BatchQuery* queries = nullptr;
  size_t query_count = 0;
  std::vector<std::vector<Occurrence>>* out = nullptr;
  std::atomic<size_t> cursor{0};

  // Tracing. The sink exists iff tracing is on (trace_sample_rate > 0 in a
  // metrics-enabled build); a null sink makes every per-query trace hook a
  // cheap early-out. trace_base is the high half of this batch's trace ids,
  // published under `mu` with the rest of the batch hand-off.
  std::unique_ptr<obs::TraceSink> sink;
  uint64_t batch_seq = 0;    // batches issued so far (guarded by mu)
  uint64_t trace_base = 0;   // (batch_seq << 32) for the live batch (mu)

  void WorkerLoop(int tid) {
    uint64_t seen = 0;
    // One engine per worker: AlgorithmA is a thin const view of the shared
    // index plus options, so this costs nothing and keeps workers symmetric
    // with serial callers.
    const AlgorithmA engine(index, options.engine);
    for (;;) {
      uint64_t base = 0;
      obs::TraceSink* tsink = nullptr;
      const uint64_t wait_begin_ns = obs::TraceClockNanos();
      uint64_t wake_ns = 0;
      {
        // The wait is the worker's queue time: it covers pool start-up, the
        // gap between batches, and the final wake before shutdown.
        BWTK_SCOPED_TIMER(kPhaseQueueWait);
        BWTK_SCOPED_HIST_TIMER(kHistQueueWaitNanos);
        std::unique_lock<std::mutex> lock(mu);
        work_cv.wait(lock, [&] { return shutdown || generation != seen; });
        if (shutdown) return;
        seen = generation;
        base = trace_base;
        tsink = sink.get();
        wake_ns = obs::TraceClockNanos();
      }
      BWTK_SCOPED_TIMER(kPhaseWorkerSearch);
      SearchStats batch_stats;
      uint64_t queries_run = 0;
      for (;;) {
        const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= query_count) break;
        BWTK_METRIC_COUNT(kCounterBatchQueries);
        SearchStats query_stats;
        // Trace id = batch sequence | query index: stable across runs, so
        // the sampled subset does not depend on thread assignment.
        obs::ScopedQueryTrace qt(tsink, base | i, "algorithm_a",
                                 queries[i].k, queries[i].pattern.size(),
                                 static_cast<uint32_t>(tid));
        std::vector<Occurrence> hits = engine.Search(
            queries[i].pattern, queries[i].k, &query_stats, &scratches[tid]);
        if (options.deterministic_order) NormalizeOccurrences(&hits);
        qt.Finish(hits.size(), query_stats);
        (*out)[i] = std::move(hits);
        batch_stats += query_stats;
        ++queries_run;
      }
      if (tsink != nullptr) {
        // One aux lane per (batch, worker): how long the worker queued and
        // how long it searched. Kept out of the slow-query log (a lane spans
        // the whole batch and would always "win").
        obs::Trace lane;
        lane.trace_id = base | (kAuxIdBase + static_cast<uint64_t>(tid));
        lane.engine = "batch_worker";
        lane.thread_index = static_cast<uint32_t>(tid);
        lane.begin_ns = wait_begin_ns;
        lane.matches = queries_run;
        const uint64_t end_ns = obs::TraceClockNanos();
        lane.wall_ns = end_ns - wait_begin_ns;
        lane.spans.push_back(
            {"queue_wait", wait_begin_ns, wake_ns - wait_begin_ns, 0});
        lane.spans.push_back({"worker_search", wake_ns, end_ns - wake_ns, 0});
        tsink->OfferAux(std::move(lane));
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        thread_stats[tid] = batch_stats;
        if (--workers_left == 0) done_cv.notify_one();
      }
    }
  }
};

BatchSearcher::BatchSearcher(const FmIndex* index, const BatchOptions& options)
    : pool_(std::make_unique<Pool>()) {
  BWTK_CHECK(index != nullptr);
  pool_->index = index;
  pool_->options = options;
  pool_->num_threads = ResolveThreadCount(options.num_threads);
  if (BWTK_METRICS_ENABLED && options.trace_sample_rate > 0.0) {
    obs::TraceSinkOptions sink_options;
    sink_options.sample_rate = options.trace_sample_rate;
    sink_options.slow_trace_count = options.slow_trace_count;
    sink_options.sample_seed = options.trace_seed;
    pool_->sink = std::make_unique<obs::TraceSink>(sink_options);
  }
  pool_->scratches.resize(pool_->num_threads);
  pool_->thread_stats.resize(pool_->num_threads);
  pool_->workers.reserve(pool_->num_threads);
  for (int tid = 0; tid < pool_->num_threads; ++tid) {
    pool_->workers.emplace_back([pool = pool_.get(), tid] {
      pool->WorkerLoop(tid);
    });
  }
}

BatchSearcher::~BatchSearcher() {
  {
    std::lock_guard<std::mutex> lock(pool_->mu);
    pool_->shutdown = true;
  }
  pool_->work_cv.notify_all();
  for (std::thread& worker : pool_->workers) worker.join();
}

int BatchSearcher::num_threads() const { return pool_->num_threads; }

const obs::TraceSink* BatchSearcher::trace_sink() const {
  return pool_->sink.get();
}

BatchResult BatchSearcher::Search(const std::vector<BatchQuery>& queries) {
  BatchResult result;
  result.occurrences.resize(queries.size());
  if (queries.empty()) return result;
  BWTK_METRIC_COUNT(kCounterBatchBatches);

  Pool& pool = *pool_;
  {
    std::lock_guard<std::mutex> lock(pool.mu);
    pool.queries = queries.data();
    pool.query_count = queries.size();
    pool.out = &result.occurrences;
    pool.cursor.store(0, std::memory_order_relaxed);
    pool.trace_base = pool.batch_seq << 32;
    ++pool.batch_seq;
    pool.workers_left = pool.num_threads;
    for (SearchStats& stats : pool.thread_stats) stats = SearchStats{};
    ++pool.generation;
  }
  pool.work_cv.notify_all();
  {
    std::unique_lock<std::mutex> lock(pool.mu);
    pool.done_cv.wait(lock, [&] { return pool.workers_left == 0; });
    pool.queries = nullptr;
    pool.out = nullptr;
  }
  // Merge in tid order so the aggregate is reproducible run to run even
  // though the query→thread assignment is not.
  for (const SearchStats& stats : pool.thread_stats) result.stats += stats;
  if (pool.sink != nullptr && !pool.options.trace_out.empty()) {
    const Status status =
        obs::WriteTraceFile(*pool.sink, pool.options.trace_out);
    if (!status.ok()) {
      BWTK_LOG(Warning) << "trace export failed: " << status.message();
    }
  }
  return result;
}

Result<BatchResult> BatchSearcher::Search(
    const std::vector<std::string>& patterns, int32_t k) {
  std::vector<BatchQuery> queries(patterns.size());
  size_t failed = 0;
  for (size_t i = 0; i < patterns.size(); ++i) {
    auto codes = EncodeDna(patterns[i]);
    if (!codes.ok()) {
      if (pool_->options.fail_fast) {
        return Status::InvalidArgument("batch query " + std::to_string(i) +
                                       ": " + codes.status().message());
      }
      ++failed;
      queries[i].k = -1;  // empty pattern + negative budget: engine no-ops
      continue;
    }
    queries[i].pattern = std::move(codes).value();
    queries[i].k = k;
  }
  BatchResult result = Search(queries);
  result.failed_queries = failed;
  return result;
}

}  // namespace bwtk
