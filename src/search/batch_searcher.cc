#include "search/batch_searcher.h"

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "search/kerror_search.h"
#include "search/wildcard_search.h"
#include "util/logging.h"

namespace bwtk {

namespace {

int ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Aux (worker-lane) trace ids live in the top of the per-batch id space so
// they can never collide with task indices.
constexpr uint64_t kAuxIdBase = 0xFFFF0000ULL;

}  // namespace

std::string_view BatchEngineName(BatchEngine engine) {
  switch (engine) {
    case BatchEngine::kAlgorithmA:
      return "algorithm_a";
    case BatchEngine::kSTree:
      return "stree";
    case BatchEngine::kKError:
      return "kerror";
    case BatchEngine::kWildcard:
      return "wildcard";
    case BatchEngine::kDictionary:
      return "dictionary";
    case BatchEngine::kBidirectional:
      return "bidirectional";
    case BatchEngine::kAuto:
      return "auto";
  }
  return "unknown";
}

BatchEngine AutoPickEngine(size_t pattern_length, int32_t k,
                           bool bidir_available) {
  if (!bidir_available) return BatchEngine::kAlgorithmA;
  // Crossover calibrated from BENCH_bidir.json (bench/bench_bidir.cc),
  // synth-1M, m in {24, 36, 50, 100} x k in {0..5}: the scheme walk wins
  // every measured cell — 2.7x at (m=24, k=0), growing with both m and k
  // to 384x at (m=50, k=5) — so any read at least as long as the measured
  // floor routes to it outright. Below the measured lengths it still wins
  // whenever the budget is large enough to multiply the enumeration
  // frontier AND the pattern is long enough that each piece meaningfully
  // constrains it (every piece >= 2 symbols); for the remaining short
  // low-budget reads Algorithm A's reuse machinery is already cheap and
  // the scheme's piece bounds have nothing to cut, so it keeps them.
  constexpr size_t kMeasuredLengthFloor = 24;
  if (pattern_length >= kMeasuredLengthFloor) {
    return BatchEngine::kBidirectional;
  }
  if (k >= 2 && pattern_length >= 2 * static_cast<size_t>(k) + 2) {
    return BatchEngine::kBidirectional;
  }
  return BatchEngine::kAlgorithmA;
}

Result<std::vector<DnaCode>> DecodeBatchPattern(BatchEngine engine,
                                                std::string_view pattern) {
  if (engine == BatchEngine::kWildcard) {
    return ParseWildcardPattern(pattern);
  }
  return EncodeDna(pattern);
}

// One engine per (worker, index): each engine is a thin const view of its
// shared index plus options, so a bank costs nothing to build and keeps
// workers symmetric with serial callers. Every FmIndex-backed family is
// instantiated eagerly — per-ticket engine overrides (RunWith) and kAuto
// dispatch mean any of them can run on any task; the bidirectional family
// exists iff the caller supplied BatchOptions::bidir_indexes.
struct EngineBank::Impl {
  BatchOptions options;
  size_t num_indexes = 0;
  std::vector<AlgorithmA> a_engines;
  std::vector<STreeSearch> stree_engines;
  std::vector<KErrorSearch> kerror_engines;
  std::vector<WildcardSearch> wildcard_engines;
  std::vector<DictionarySearcher> dict_engines;
  // unique_ptr because BidirectionalSearch owns a mutex (scheme cache) and
  // cannot be vector-moved.
  std::vector<std::unique_ptr<BidirectionalSearch>> bidir_engines;
  AlgorithmAScratch scratch;  // reused across every Run, never shrinks
  // Cross-query shared subtree memo, attached by the pool/session that owns
  // it (kAlgorithmA only). Not owned.
  SubtreeMemo* shared_memo = nullptr;
};

EngineBank::EngineBank(const std::vector<const FmIndex*>& indexes,
                       const BatchOptions& options)
    : impl_(std::make_unique<Impl>()) {
  BWTK_CHECK(!indexes.empty());
  for (const FmIndex* index : indexes) BWTK_CHECK(index != nullptr);
  impl_->options = options;
  impl_->num_indexes = indexes.size();
  impl_->a_engines.reserve(indexes.size());
  impl_->stree_engines.reserve(indexes.size());
  impl_->kerror_engines.reserve(indexes.size());
  impl_->wildcard_engines.reserve(indexes.size());
  impl_->dict_engines.reserve(indexes.size());
  for (const FmIndex* index : indexes) {
    impl_->a_engines.emplace_back(index, options.algorithm_a);
    impl_->stree_engines.emplace_back(index, options.stree);
    impl_->kerror_engines.emplace_back(index);
    impl_->wildcard_engines.emplace_back(index);
    impl_->dict_engines.emplace_back(index, options.dictionary);
  }
  if (!options.bidir_indexes.empty()) {
    BWTK_CHECK_EQ(options.bidir_indexes.size(), indexes.size());
    impl_->bidir_engines.reserve(indexes.size());
    for (size_t s = 0; s < indexes.size(); ++s) {
      const BiFmIndex* bidir = options.bidir_indexes[s];
      BWTK_CHECK(bidir != nullptr);
      // Alignment contract: slot s's bidirectional index must index the
      // same text as slot s's FmIndex (full content equality is the
      // caller's responsibility; the size check catches swapped slots).
      BWTK_CHECK_EQ(bidir->text_size(), indexes[s]->text_size());
      impl_->bidir_engines.push_back(
          std::make_unique<BidirectionalSearch>(bidir, options.bidir));
    }
  }
  BWTK_CHECK(Supports(options.engine))
      << "engine " << BatchEngineName(options.engine)
      << " needs BatchOptions::bidir_indexes";
}

EngineBank::~EngineBank() = default;

std::vector<Occurrence> EngineBank::Run(const BatchQuery& query,
                                        size_t index_slot,
                                        SearchStats* stats) {
  return RunWith(impl_->options.engine, query, index_slot, stats);
}

bool EngineBank::Supports(BatchEngine engine) const {
  return engine != BatchEngine::kBidirectional ||
         !impl_->bidir_engines.empty();
}

BatchEngine EngineBank::Resolve(BatchEngine engine,
                                const BatchQuery& query) const {
  if (engine != BatchEngine::kAuto) return engine;
  return AutoPickEngine(query.pattern.size(), query.k,
                        !impl_->bidir_engines.empty());
}

std::vector<Occurrence> EngineBank::RunWith(BatchEngine engine,
                                            const BatchQuery& query,
                                            size_t index_slot,
                                            SearchStats* stats) {
  std::vector<Occurrence> hits;
  // A negative budget marks a query skipped at decode time (ASCII
  // fail_fast = false path, or a rejected serve ticket); no search runs.
  if (query.k < 0) {
    if (stats != nullptr) *stats = SearchStats{};
    return hits;
  }
  switch (Resolve(engine, query)) {
    case BatchEngine::kAlgorithmA:
      hits = impl_->a_engines[index_slot].Search(
          query.pattern, query.k, stats, &impl_->scratch,
          impl_->shared_memo, static_cast<uint32_t>(index_slot));
      break;
    case BatchEngine::kSTree:
      hits = impl_->stree_engines[index_slot].Search(query.pattern, query.k,
                                                     stats);
      break;
    case BatchEngine::kKError: {
      // Project each best-per-position alignment onto the Hamming result
      // shape; the matched length is dropped (see BatchEngine).
      const std::vector<EditOccurrence> edits =
          impl_->kerror_engines[index_slot].Search(query.pattern, query.k,
                                                   stats);
      hits.reserve(edits.size());
      for (const EditOccurrence& e : edits) {
        hits.push_back(Occurrence{e.position, e.edits});
      }
      break;
    }
    case BatchEngine::kWildcard:
      hits = impl_->wildcard_engines[index_slot].Search(query.pattern,
                                                        query.k, stats);
      break;
    case BatchEngine::kDictionary: {
      // Ticket-at-a-time form: a one-pattern trie, one joint descent. Build
      // can only fail on malformed input (empty pattern, out-of-range
      // codes), which — like an empty pattern under the other engines —
      // yields an empty hit list.
      Result<PatternSetTrie> trie = PatternSetTrie::Build({query.pattern});
      if (trie.ok()) {
        std::vector<std::vector<Occurrence>> per_pattern =
            impl_->dict_engines[index_slot].SearchAll(*trie, query.k, stats);
        hits = std::move(per_pattern[0]);
      } else if (stats != nullptr) {
        *stats = SearchStats{};
      }
      break;
    }
    case BatchEngine::kBidirectional:
      BWTK_CHECK(!impl_->bidir_engines.empty())
          << "kBidirectional needs BatchOptions::bidir_indexes";
      hits = impl_->bidir_engines[index_slot]->Search(query.pattern, query.k,
                                                      stats);
      break;
    case BatchEngine::kAuto:
      // Resolve never returns kAuto.
      BWTK_CHECK(false);
      break;
  }
  if (impl_->options.deterministic_order) NormalizeOccurrences(&hits);
  return hits;
}

std::vector<std::vector<Occurrence>> EngineBank::RunDictionary(
    const PatternSetTrie& trie, int32_t k, size_t index_slot,
    SearchStats* stats) {
  BWTK_CHECK(impl_->options.engine == BatchEngine::kDictionary);
  // SearchAll's per-pattern lists are always position-sorted, so the
  // deterministic_order contract holds with no extra pass.
  return impl_->dict_engines[index_slot].SearchAll(trie, k, stats);
}

void EngineBank::set_shared_memo(SubtreeMemo* memo) {
  impl_->shared_memo = memo;
}

std::string_view EngineBank::engine_name() const {
  return BatchEngineName(impl_->options.engine);
}

size_t EngineBank::num_indexes() const { return impl_->num_indexes; }

// All pool state. The mutex guards the batch hand-off (generation counter,
// batch pointers, completion count); the query path itself is lock-free —
// workers claim task indices from `cursor` and write disjoint slots of the
// output vector, which is pre-sized before workers wake. A task is a
// (query, index) pair: task t runs queries[t / S] against indexes[t % S],
// where S = indexes.size(). For the common single-index pool the task index
// IS the query index.
struct BatchSearcher::Pool {
  std::vector<const FmIndex*> indexes;
  BatchOptions options;
  int num_threads;

  std::vector<std::thread> workers;
  std::vector<SearchStats> thread_stats;  // tid-indexed, valid per batch

  std::mutex mu;
  std::condition_variable work_cv;  // workers wait for a new generation
  std::condition_variable done_cv;  // Search waits for workers_left == 0
  uint64_t generation = 0;          // bumped per batch (guarded by mu)
  bool shutdown = false;            // (guarded by mu)
  int workers_left = 0;             // workers still in the batch (mu)

  // Current batch, valid while workers_left > 0. `out` has one slot per
  // (query, index) pair (query_count * indexes.size()).
  const BatchQuery* queries = nullptr;
  size_t query_count = 0;
  size_t task_count = 0;
  std::vector<std::vector<Occurrence>>* out = nullptr;
  std::atomic<size_t> cursor{0};

  // kDictionary batches are dispatched at group granularity: the submitting
  // thread folds the batch's valid queries into one PatternSetTrie per
  // (pattern length, k) — usually a single group for a real barcode batch —
  // and a task is a (group, index) pair whose worker answers the whole
  // group with one joint descent, scattering per-pattern hits back into the
  // same per-(query, index) `out` slots the per-query dispatch fills.
  // Workers write disjoint slots because each query belongs to exactly one
  // group. Valid for the live batch, guarded by the same hand-off as
  // `queries`.
  struct DictGroup {
    PatternSetTrie trie;
    int32_t k = 0;
    std::vector<size_t> query_ids;  // indexes into the batch, input order
  };
  std::vector<DictGroup> dict_groups;

  // Batch-scoped shared subtree memo (kAlgorithmA + shared_memo.enabled
  // only). Cleared at every batch start — between generations the workers
  // are idle, so the quiescence requirement of SubtreeMemo::Clear holds.
  std::unique_ptr<SubtreeMemo> memo;

  // Exact-duplicate result cache, consulted per (query, index) task before
  // the engine runs. Either the caller-provided shared instance or a
  // private one; null when caching is off. Dictionary batches bypass it
  // (they dispatch at group granularity).
  std::shared_ptr<ResultCache> cache;
  std::vector<uint64_t> index_versions;  // per slot, for the cache key

  // Tracing. The sink exists iff tracing is on (trace_sample_rate > 0 in a
  // metrics-enabled build); a null sink makes every per-query trace hook a
  // cheap early-out. trace_base is the high half of this batch's trace ids,
  // published under `mu` with the rest of the batch hand-off.
  std::unique_ptr<obs::TraceSink> sink;
  uint64_t batch_seq = 0;    // batches issued so far (guarded by mu)
  uint64_t trace_base = 0;   // (batch_seq << 32) for the live batch (mu)

  void WorkerLoop(int tid) {
    uint64_t seen = 0;
    const size_t num_indexes = indexes.size();
    // The bank owns this worker's engines and AlgorithmA scratch; Run() is
    // the same task-granular entry point the serving layer drives, so batch
    // and streamed execution cannot drift apart.
    EngineBank bank(indexes, options);
    if (memo != nullptr) bank.set_shared_memo(memo.get());
    const std::string_view engine_name = bank.engine_name();
    for (;;) {
      uint64_t base = 0;
      obs::TraceSink* tsink = nullptr;
      const uint64_t wait_begin_ns = obs::TraceClockNanos();
      uint64_t wake_ns = 0;
      {
        // The wait is the worker's queue time: it covers pool start-up, the
        // gap between batches, and the final wake before shutdown.
        BWTK_SCOPED_TIMER(kPhaseQueueWait);
        BWTK_SCOPED_HIST_TIMER(kHistQueueWaitNanos);
        std::unique_lock<std::mutex> lock(mu);
        work_cv.wait(lock, [&] { return shutdown || generation != seen; });
        if (shutdown) return;
        seen = generation;
        base = trace_base;
        tsink = sink.get();
        wake_ns = obs::TraceClockNanos();
      }
      BWTK_SCOPED_TIMER(kPhaseWorkerSearch);
      SearchStats batch_stats;
      uint64_t tasks_run = 0;
      if (options.engine == BatchEngine::kDictionary) {
        // Group-granular dispatch: task t answers dict_groups[t / S] against
        // index t % S with ONE joint trie descent, then scatters the
        // per-pattern lists into the (query, index) slots.
        for (;;) {
          const size_t t = cursor.fetch_add(1, std::memory_order_relaxed);
          if (t >= task_count) break;
          const size_t g = t / num_indexes;
          const size_t s = t % num_indexes;
          const DictGroup& group = dict_groups[g];
          BWTK_METRIC_COUNT_N(kCounterBatchQueries, group.query_ids.size());
          SearchStats task_stats;
          // Trace id = batch sequence | task index, as below; one trace
          // covers the whole group's descent.
          obs::ScopedQueryTrace qt(tsink, base | t, engine_name, group.k,
                                   group.trie.length(),
                                   static_cast<uint32_t>(tid),
                                   static_cast<uint32_t>(s));
          std::vector<std::vector<Occurrence>> per_pattern =
              bank.RunDictionary(group.trie, group.k, s, &task_stats);
          uint64_t matches = 0;
          for (size_t j = 0; j < group.query_ids.size(); ++j) {
            matches += per_pattern[j].size();
            (*out)[group.query_ids[j] * num_indexes + s] =
                std::move(per_pattern[j]);
          }
          qt.Finish(matches, task_stats);
          batch_stats += task_stats;
          ++tasks_run;
        }
      } else {
        for (;;) {
          const size_t t = cursor.fetch_add(1, std::memory_order_relaxed);
          if (t >= task_count) break;
          const size_t q = t / num_indexes;
          const size_t s = t % num_indexes;
          const BatchQuery& query = queries[q];
          // A negative budget marks a query skipped at decode time (ASCII
          // fail_fast = false path); its slots stay empty.
          if (query.k < 0) continue;
          BWTK_METRIC_COUNT(kCounterBatchQueries);
          // Everything downstream — trace label, cache key, execution —
          // attributes to the engine this query actually runs under; for a
          // pinned pool Resolve is the identity, under kAuto it is the
          // per-query pick (so kAuto shares cache entries with pools that
          // pin the same engine).
          const BatchEngine resolved = bank.Resolve(options.engine, query);
          const uint8_t engine_id = static_cast<uint8_t>(resolved);
          if (cache != nullptr) {
            ResultCache::Entry cached;
            if (cache->Lookup(engine_id, query.k, index_versions[s],
                              query.pattern, &cached)) {
              // Served from cache: the stored stats are the ones the
              // original execution produced, so the aggregate is identical
              // to a cold run.
              (*out)[t] = std::move(cached.hits);
              batch_stats += cached.stats;
              ++tasks_run;
              continue;
            }
          }
          SearchStats query_stats;
          // Trace id = batch sequence | task index: stable across runs, so
          // the sampled subset does not depend on thread assignment.
          obs::ScopedQueryTrace qt(tsink, base | t,
                                   BatchEngineName(resolved), query.k,
                                   query.pattern.size(),
                                   static_cast<uint32_t>(tid),
                                   static_cast<uint32_t>(s));
          std::vector<Occurrence> hits =
              bank.RunWith(resolved, query, s, &query_stats);
          qt.Finish(hits.size(), query_stats);
          if (cache != nullptr) {
            cache->Insert(engine_id, query.k, index_versions[s],
                          query.pattern,
                          ResultCache::Entry{hits, query_stats, 0});
          }
          (*out)[t] = std::move(hits);
          batch_stats += query_stats;
          ++tasks_run;
        }
      }
      if (tsink != nullptr) {
        // One aux lane per (batch, worker): how long the worker queued and
        // how long it searched. Kept out of the slow-query log (a lane spans
        // the whole batch and would always "win").
        obs::Trace lane;
        lane.trace_id = base | (kAuxIdBase + static_cast<uint64_t>(tid));
        lane.engine = "batch_worker";
        lane.thread_index = static_cast<uint32_t>(tid);
        lane.begin_ns = wait_begin_ns;
        lane.matches = tasks_run;
        const uint64_t end_ns = obs::TraceClockNanos();
        lane.wall_ns = end_ns - wait_begin_ns;
        lane.spans.push_back(
            {"queue_wait", wait_begin_ns, wake_ns - wait_begin_ns, 0});
        lane.spans.push_back({"worker_search", wake_ns, end_ns - wake_ns, 0});
        tsink->OfferAux(std::move(lane));
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        thread_stats[tid] = batch_stats;
        if (--workers_left == 0) done_cv.notify_one();
      }
    }
  }

  // Folds a kDictionary batch into per-(length, k) trie groups. Queries
  // skipped at decode time (k < 0), empty patterns, and patterns carrying
  // non-DNA codes get no group — their slots stay empty, matching the
  // per-query engines' handling of the same inputs.
  std::vector<DictGroup> BuildDictGroups(
      const std::vector<BatchQuery>& batch) {
    std::map<std::pair<size_t, int32_t>, size_t> group_of;  // key -> index
    std::vector<DictGroup> groups;
    std::vector<std::vector<std::vector<DnaCode>>> group_patterns;
    for (size_t i = 0; i < batch.size(); ++i) {
      const BatchQuery& query = batch[i];
      if (query.k < 0 || query.pattern.empty()) continue;
      bool valid = true;
      for (const DnaCode c : query.pattern) {
        if (c >= kDnaAlphabetSize) {
          valid = false;
          break;
        }
      }
      if (!valid) continue;
      const std::pair<size_t, int32_t> key{query.pattern.size(), query.k};
      auto [it, inserted] = group_of.try_emplace(key, groups.size());
      if (inserted) {
        groups.emplace_back();
        groups.back().k = query.k;
        group_patterns.emplace_back();
      }
      groups[it->second].query_ids.push_back(i);
      group_patterns[it->second].push_back(query.pattern);
    }
    for (size_t g = 0; g < groups.size(); ++g) {
      // Cannot fail: the patterns are non-empty, equal-length, code-valid,
      // and duplicates are explicitly allowed (each repeated pattern simply
      // receives a copy of its canonical pattern's hits).
      Result<PatternSetTrie> trie = PatternSetTrie::Build(
          group_patterns[g], {.allow_duplicates = true});
      BWTK_CHECK(trie.ok());
      groups[g].trie = std::move(trie).value();
    }
    return groups;
  }

  // Runs one batch of query_count * indexes.size() tasks into `slots`
  // (pre-sized by the caller) and returns the tid-order merged stats.
  // kDictionary batches run dict_groups.size() * indexes.size() tasks
  // instead, into the same slots.
  SearchStats RunTasks(const std::vector<BatchQuery>& batch,
                       std::vector<std::vector<Occurrence>>* slots) {
    BWTK_METRIC_COUNT(kCounterBatchBatches);
    // Workers are idle between generations, so this is a quiescent point:
    // the memo is batch-scoped and starts every batch empty.
    if (memo != nullptr) memo->Clear();
    const bool dict = options.engine == BatchEngine::kDictionary;
    std::vector<DictGroup> groups;
    if (dict) groups = BuildDictGroups(batch);
    {
      std::lock_guard<std::mutex> lock(mu);
      queries = batch.data();
      query_count = batch.size();
      dict_groups = std::move(groups);
      task_count = (dict ? dict_groups.size() : batch.size()) *
                   indexes.size();
      out = slots;
      cursor.store(0, std::memory_order_relaxed);
      trace_base = batch_seq << 32;
      ++batch_seq;
      workers_left = num_threads;
      for (SearchStats& stats : thread_stats) stats = SearchStats{};
      ++generation;
    }
    work_cv.notify_all();
    {
      std::unique_lock<std::mutex> lock(mu);
      done_cv.wait(lock, [&] { return workers_left == 0; });
      queries = nullptr;
      out = nullptr;
      dict_groups.clear();
    }
    // Merge in tid order so the aggregate is reproducible run to run even
    // though the task→thread assignment is not.
    SearchStats total;
    for (const SearchStats& stats : thread_stats) total += stats;
    if (sink != nullptr && !options.trace_out.empty()) {
      const Status status = obs::WriteTraceFile(*sink, options.trace_out);
      if (!status.ok()) {
        BWTK_LOG(Warning) << "trace export failed: " << status.message();
      }
    }
    return total;
  }
};

BatchSearcher::BatchSearcher(const FmIndex* index, const BatchOptions& options)
    : BatchSearcher(std::vector<const FmIndex*>{index}, options) {}

BatchSearcher::BatchSearcher(std::vector<const FmIndex*> indexes,
                             const BatchOptions& options)
    : pool_(std::make_unique<Pool>()) {
  BWTK_CHECK(!indexes.empty());
  for (const FmIndex* index : indexes) BWTK_CHECK(index != nullptr);
  pool_->indexes = std::move(indexes);
  pool_->options = options;
  pool_->num_threads = ResolveThreadCount(options.num_threads);
  if (BWTK_METRICS_ENABLED && options.trace_sample_rate > 0.0) {
    obs::TraceSinkOptions sink_options;
    sink_options.sample_rate = options.trace_sample_rate;
    sink_options.slow_trace_count = options.slow_trace_count;
    sink_options.sample_seed = options.trace_seed;
    pool_->sink = std::make_unique<obs::TraceSink>(sink_options);
  }
  if (options.shared_memo.enabled &&
      options.engine == BatchEngine::kAlgorithmA) {
    pool_->memo = std::make_unique<SubtreeMemo>(options.shared_memo);
  }
  if (options.result_cache_instance != nullptr) {
    pool_->cache = options.result_cache_instance;
  } else if (options.result_cache.enabled) {
    pool_->cache = std::make_shared<ResultCache>(options.result_cache);
  }
  if (pool_->cache != nullptr) {
    pool_->index_versions.reserve(pool_->indexes.size());
    for (const FmIndex* index : pool_->indexes) {
      pool_->index_versions.push_back(FmIndexVersion(*index));
    }
  }
  pool_->thread_stats.resize(pool_->num_threads);
  pool_->workers.reserve(pool_->num_threads);
  for (int tid = 0; tid < pool_->num_threads; ++tid) {
    pool_->workers.emplace_back([pool = pool_.get(), tid] {
      pool->WorkerLoop(tid);
    });
  }
}

BatchSearcher::~BatchSearcher() {
  {
    std::lock_guard<std::mutex> lock(pool_->mu);
    pool_->shutdown = true;
  }
  pool_->work_cv.notify_all();
  for (std::thread& worker : pool_->workers) worker.join();
}

int BatchSearcher::num_threads() const { return pool_->num_threads; }

size_t BatchSearcher::num_indexes() const { return pool_->indexes.size(); }

const obs::TraceSink* BatchSearcher::trace_sink() const {
  return pool_->sink.get();
}

BatchResult BatchSearcher::Search(const std::vector<BatchQuery>& queries) {
  BatchResult result;
  if (queries.empty()) return result;
  const size_t num_indexes = pool_->indexes.size();
  if (num_indexes == 1) {
    result.occurrences.resize(queries.size());
    result.stats = pool_->RunTasks(queries, &result.occurrences);
    return result;
  }
  // Index group: run the full fanout, then fold each query's per-index
  // lists into one sorted union (local coordinates, duplicates kept — seam
  // semantics belong to ShardedBatchSearcher).
  std::vector<std::vector<Occurrence>> slots(queries.size() * num_indexes);
  result.stats = pool_->RunTasks(queries, &slots);
  result.occurrences.resize(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    std::vector<Occurrence>& merged = result.occurrences[q];
    size_t total = 0;
    for (size_t s = 0; s < num_indexes; ++s) {
      total += slots[q * num_indexes + s].size();
    }
    merged.reserve(total);
    for (size_t s = 0; s < num_indexes; ++s) {
      std::vector<Occurrence>& part = slots[q * num_indexes + s];
      merged.insert(merged.end(), part.begin(), part.end());
      part.clear();
    }
    if (pool_->options.deterministic_order) NormalizeOccurrences(&merged);
  }
  return result;
}

BatchFanoutResult BatchSearcher::SearchFanout(
    const std::vector<BatchQuery>& queries) {
  BatchFanoutResult result;
  result.occurrences.resize(queries.size() * pool_->indexes.size());
  if (queries.empty()) return result;
  result.stats = pool_->RunTasks(queries, &result.occurrences);
  return result;
}

Result<BatchResult> BatchSearcher::Search(
    const std::vector<std::string>& patterns, int32_t k) {
  std::vector<BatchQuery> queries(patterns.size());
  size_t failed = 0;
  for (size_t i = 0; i < patterns.size(); ++i) {
    auto codes = DecodeBatchPattern(pool_->options.engine, patterns[i]);
    if (!codes.ok()) {
      if (pool_->options.fail_fast) {
        return Status::InvalidArgument("batch query " + std::to_string(i) +
                                       ": " + codes.status().message());
      }
      ++failed;
      queries[i].k = -1;  // negative budget: the worker skips the task
      continue;
    }
    queries[i].pattern = std::move(codes).value();
    queries[i].k = k;
  }
  BatchResult result = Search(queries);
  result.failed_queries = failed;
  return result;
}

}  // namespace bwtk
