// Matching with Don't-Care symbols (the third inexact-matching flavour of
// the paper's Section II): the pattern may contain wildcard positions that
// match any base, optionally combined with a mismatch budget on the
// concrete positions. Over the FM-index a wildcard is simply a zero-cost
// branch to all four symbols, so this composes directly with the S-tree
// enumeration.

#ifndef BWTK_SEARCH_WILDCARD_SEARCH_H_
#define BWTK_SEARCH_WILDCARD_SEARCH_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "alphabet/dna.h"
#include "bwt/fm_index.h"
#include "search/match.h"
#include "util/status.h"

namespace bwtk {

/// Wildcard symbol inside a wildcard pattern.
inline constexpr DnaCode kWildcardCode = 0xff;

/// Parses "ac?t" / "acntg"-style patterns ('?', 'n', 'N', '.' = wildcard).
Result<std::vector<DnaCode>> ParseWildcardPattern(std::string_view pattern);

/// FM-index search for patterns containing wildcards.
class WildcardSearch {
 public:
  /// `index` must outlive the searcher.
  explicit WildcardSearch(const FmIndex* index) : index_(index) {}

  /// All occurrences of `pattern` where every concrete position matches up
  /// to `k` mismatches and wildcard positions match anything; `mismatches`
  /// in the result counts only concrete-position mismatches. Sorted.
  ///
  /// When `stats` is non-null it receives this query's SearchStats
  /// (docs/API.md, "Per-engine stats contract"): `stree_nodes` counts
  /// enumeration states pushed, `extend_calls` the FM search-primitive work
  /// (4 per ExtendAll), `completed_paths` the states that reached full
  /// pattern length, and `budget_pruned` the branches cut by the concrete
  /// mismatch budget. `tau_pruned` and the Algorithm-A fields stay zero —
  /// the wildcard walk uses neither τ nor reuse machinery.
  std::vector<Occurrence> Search(const std::vector<DnaCode>& pattern,
                                 int32_t k = 0,
                                 SearchStats* stats = nullptr) const;

 private:
  const FmIndex* index_;  // not owned
};

/// Oracle scanner for tests.
std::vector<Occurrence> WildcardSearchNaive(const std::vector<DnaCode>& text,
                                            const std::vector<DnaCode>& pattern,
                                            int32_t k);

}  // namespace bwtk

#endif  // BWTK_SEARCH_WILDCARD_SEARCH_H_
