#include "search/kerror_search.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "bwt/prefix_table.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace bwtk {

namespace {

// Packs a backtracking state for the visited set. Depth participates
// because two spelled strings of different lengths can share a rank range
// (unary paths of the conceptual suffix trie).
struct StateKey {
  uint64_t range_bits;
  uint32_t consumed;
  uint32_t depth;
  int32_t edits;

  bool operator==(const StateKey&) const = default;
};

struct StateKeyHash {
  size_t operator()(const StateKey& key) const {
    uint64_t h = key.range_bits * 0x9e3779b97f4a7c15ULL;
    h ^= (static_cast<uint64_t>(key.consumed) << 32) ^
         (static_cast<uint64_t>(key.depth) << 8) ^
         static_cast<uint64_t>(key.edits);
    h *= 0xff51afd7ed558ccdULL;
    return static_cast<size_t>(h ^ (h >> 32));
  }
};

}  // namespace

std::vector<EditOccurrence> KErrorSearch::Search(
    const std::vector<DnaCode>& pattern, int32_t k,
    SearchStats* stats) const {
  BWTK_SCOPED_HIST_TIMER(kHistQueryNanos);
  SearchStats local_stats;
  std::vector<EditOccurrence> results;
  const size_t m = pattern.size();
  if (m == 0 || k < 0) {
    if (stats != nullptr) *stats = local_stats;
    return results;
  }
  // Hoisted once; the per-state hook in push() is a single null check.
  [[maybe_unused]] obs::Trace* const trace = BWTK_TRACE_ACTIVE();

  struct Frame {
    FmIndex::Range range;
    uint32_t consumed;  // pattern characters used
    uint32_t depth;     // text characters matched (range depth)
    int32_t edits;
  };
  std::vector<Frame> stack;
  std::unordered_set<StateKey, StateKeyHash> visited;
  auto push = [&](const Frame& frame) {
    if (frame.edits > k) {
      // Only reachable from non-empty parent ranges: a real branch cut by
      // the edit budget, the kerror analogue of budget_pruned.
      if (!frame.range.empty()) ++local_stats.budget_pruned;
      return;
    }
    if (frame.range.empty()) return;
    const StateKey key{(static_cast<uint64_t>(
                            static_cast<uint32_t>(frame.range.lo))
                        << 32) |
                           static_cast<uint32_t>(frame.range.hi),
                       frame.consumed, frame.depth, frame.edits};
    if (visited.insert(key).second) {
      ++local_stats.stree_nodes;
      BWTK_TRACE_NODE(trace, frame.consumed);
      stack.push_back(frame);
    }
  };
  // Prefix-table shortcut, sound only at k == 0: with no edit budget the
  // DFS can only follow the exact match branch, so its states are exactly
  // the ranges of the pattern's prefixes — the depth-q one comes from the
  // table, and a missing q-gram proves there is no zero-edit occurrence at
  // all. At k >= 1 the shortcut would be wrong: insertion/deletion branches
  // hang off the *intermediate* prefix states (depths < q) that the table
  // skips over.
  const PrefixIntervalTable* table = index_->prefix_table();
  if (k == 0 && table != nullptr && m >= table->q()) {
    const uint32_t q = table->q();
    SaIndex lo;
    SaIndex hi;
    if (!table->Lookup(PrefixIntervalTable::PackKey(pattern.data(), q), &lo,
                       &hi)) {
      return results;
    }
    BWTK_METRIC_COUNT2(kCounterPrefixTableHits, 1,
                       kCounterPrefixTableSkippedSteps, q);
    BWTK_TRACE_PREFIX_HITS(trace, 1);
    push({{lo, hi}, q, q, 0});
  } else {
    push({index_->WholeRange(), 0, 0, 0});
  }

  // Best (edits, length) per reported start position.
  std::unordered_map<size_t, EditOccurrence> best;
  BWTK_TRACE_SPAN(trace, "tree_traversal");
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.consumed == m) {
      if (frame.depth == 0) continue;  // empty substring: not an occurrence
      ++local_stats.completed_paths;
      for (const size_t pos : index_->Locate(frame.range, frame.depth)) {
        const EditOccurrence candidate{pos, frame.depth, frame.edits};
        const auto it = best.find(pos);
        if (it == best.end() ||
            std::tie(candidate.edits, candidate.length) <
                std::tie(it->second.edits, it->second.length)) {
          best[pos] = candidate;
        }
      }
      continue;
    }
    // Deletion: the pattern character has no counterpart in the text.
    push({frame.range, frame.consumed + 1, frame.depth, frame.edits + 1});
    // Extension by each symbol: as a match/substitution (consuming the
    // pattern character) and as an insertion (not consuming it).
    FmIndex::Range next[kDnaAlphabetSize];
    index_->ExtendAll(frame.range, next);
    local_stats.extend_calls += kDnaAlphabetSize;
    const DnaCode expected = pattern[frame.consumed];
    for (DnaCode c = 0; c < kDnaAlphabetSize; ++c) {
      if (next[c].empty()) continue;
      push({next[c], frame.consumed + 1, frame.depth + 1,
            frame.edits + (c == expected ? 0 : 1)});
      push({next[c], frame.consumed, frame.depth + 1, frame.edits + 1});
    }
  }

  results.reserve(best.size());
  for (const auto& [pos, occurrence] : best) results.push_back(occurrence);
  std::sort(results.begin(), results.end());
  // Bulk-flushed rank work, mirroring STreeSearch: one ExtendAll = two
  // RankAlls per kDnaAlphabetSize-sized extend_calls increment.
  const uint64_t extend_alls = local_stats.extend_calls / kDnaAlphabetSize;
  BWTK_METRIC_COUNT2(kCounterExtendAllCalls, extend_alls,
                     kCounterRankAllCalls, 2 * extend_alls);
  BWTK_METRIC_OBSERVE(kHistHitsPerQuery, results.size());
  if (stats != nullptr) *stats = local_stats;
  return results;
}

std::vector<EditOccurrence> KErrorSearchNaive(
    const std::vector<DnaCode>& text, const std::vector<DnaCode>& pattern,
    int32_t k) {
  std::vector<EditOccurrence> results;
  const size_t m = pattern.size();
  const size_t n = text.size();
  if (m == 0 || k < 0) return results;
  for (size_t start = 0; start < n; ++start) {
    const size_t max_len =
        std::min(n - start, m + static_cast<size_t>(k));
    // dp[j] = edit distance between pattern[0..i) and text[start..start+j).
    std::vector<int32_t> dp(max_len + 1);
    std::vector<int32_t> prev(max_len + 1);
    for (size_t j = 0; j <= max_len; ++j) prev[j] = static_cast<int32_t>(j);
    for (size_t i = 1; i <= m; ++i) {
      dp[0] = static_cast<int32_t>(i);
      for (size_t j = 1; j <= max_len; ++j) {
        const int32_t substitution =
            prev[j - 1] + (pattern[i - 1] != text[start + j - 1] ? 1 : 0);
        dp[j] = std::min({substitution, prev[j] + 1, dp[j - 1] + 1});
      }
      std::swap(dp, prev);
    }
    // prev now holds distances for the full pattern against every length.
    EditOccurrence found{start, 0, k + 1};
    for (size_t len = 1; len <= max_len; ++len) {
      if (prev[len] < found.edits) {
        found.edits = prev[len];
        found.length = len;
      }
    }
    if (found.edits <= k) results.push_back(found);
  }
  return results;
}

}  // namespace bwtk
