#include "search/wildcard_search.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace bwtk {

Result<std::vector<DnaCode>> ParseWildcardPattern(std::string_view pattern) {
  std::vector<DnaCode> out;
  out.reserve(pattern.size());
  for (size_t i = 0; i < pattern.size(); ++i) {
    const char c = pattern[i];
    if (c == '?' || c == '.' || c == 'n' || c == 'N') {
      out.push_back(kWildcardCode);
    } else if (IsDnaChar(c)) {
      out.push_back(CharToCode(c));
    } else {
      return Status::InvalidArgument("invalid pattern character '" +
                                     std::string(1, c) + "' at offset " +
                                     std::to_string(i));
    }
  }
  return out;
}

std::vector<Occurrence> WildcardSearch::Search(
    const std::vector<DnaCode>& pattern, int32_t k,
    SearchStats* stats) const {
  BWTK_SCOPED_HIST_TIMER(kHistQueryNanos);
  // Hoisted once; the per-node hooks below are a single null check.
  [[maybe_unused]] obs::Trace* const trace = BWTK_TRACE_ACTIVE();
  SearchStats local_stats;
  std::vector<Occurrence> results;
  const size_t m = pattern.size();
  if (m == 0 || m > index_->text_size() || k < 0) {
    if (stats != nullptr) *stats = local_stats;
    return results;
  }

  struct Frame {
    FmIndex::Range range;
    uint32_t depth;
    int32_t mismatches;
  };
  std::vector<Frame> stack;
  stack.push_back({index_->WholeRange(), 0, 0});
  BWTK_TRACE_SPAN(trace, "tree_traversal");
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.depth == m) {
      ++local_stats.completed_paths;
      for (const size_t pos : index_->Locate(frame.range, m)) {
        results.push_back({pos, frame.mismatches});
      }
      continue;
    }
    const DnaCode expected = pattern[frame.depth];
    FmIndex::Range next[kDnaAlphabetSize];
    index_->ExtendAll(frame.range, next);
    local_stats.extend_calls += kDnaAlphabetSize;
    for (DnaCode c = 0; c < kDnaAlphabetSize; ++c) {
      if (next[c].empty()) continue;
      ++local_stats.stree_nodes;
      BWTK_TRACE_NODE(trace, frame.depth + 1);
      int32_t mismatches = frame.mismatches;
      if (expected != kWildcardCode && c != expected) {
        if (++mismatches > k) {
          ++local_stats.budget_pruned;
          continue;
        }
      }
      stack.push_back({next[c], frame.depth + 1, mismatches});
    }
  }
  NormalizeOccurrences(&results);
  // Bulk-flushed rank work, mirroring STreeSearch.
  const uint64_t extend_alls = local_stats.extend_calls / kDnaAlphabetSize;
  BWTK_METRIC_COUNT2(kCounterExtendAllCalls, extend_alls,
                     kCounterRankAllCalls, 2 * extend_alls);
  BWTK_METRIC_OBSERVE(kHistHitsPerQuery, results.size());
  if (stats != nullptr) *stats = local_stats;
  return results;
}

std::vector<Occurrence> WildcardSearchNaive(const std::vector<DnaCode>& text,
                                            const std::vector<DnaCode>& pattern,
                                            int32_t k) {
  std::vector<Occurrence> results;
  const size_t m = pattern.size();
  if (m == 0 || m > text.size() || k < 0) return results;
  for (size_t pos = 0; pos + m <= text.size(); ++pos) {
    int32_t mismatches = 0;
    bool viable = true;
    for (size_t i = 0; i < m; ++i) {
      if (pattern[i] == kWildcardCode) continue;
      if (text[pos + i] != pattern[i] && ++mismatches > k) {
        viable = false;
        break;
      }
    }
    if (viable) results.push_back({pos, mismatches});
  }
  return results;
}

}  // namespace bwtk
