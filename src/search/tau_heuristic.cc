#include "search/tau_heuristic.h"

#include "obs/metrics.h"

namespace bwtk {

std::vector<int32_t> ComputeTau(const FmIndex& index,
                                const std::vector<DnaCode>& pattern) {
  BWTK_SCOPED_TIMER(kPhaseTauBuild);
  const size_t m = pattern.size();
  std::vector<int32_t> tau(m + 1, 0);
  // first_absent_end[i] = smallest j such that r[i..j] does not occur in s
  // (exclusive end j+1 stored), or m+1 when r[i..m) occurs in full.
  // τ then satisfies τ(i) = 1 + τ(first_absent_end[i] + 1) and is filled
  // right to left with memoization.
  std::vector<size_t> absent_end(m, m + 1);
  for (size_t i = 0; i < m; ++i) {
    FmIndex::Range range = index.WholeRange();
    for (size_t j = i; j < m; ++j) {
      range = index.Extend(range, pattern[j]);
      if (range.empty()) {
        absent_end[i] = j;  // r[i..j] inclusive is absent
        break;
      }
    }
  }
  for (size_t i = m; i-- > 0;) {
    if (absent_end[i] > m) {
      tau[i] = 0;  // the whole suffix occurs in s
    } else {
      const size_t next = absent_end[i] + 1;
      tau[i] = 1 + (next >= m ? 0 : tau[next]);
    }
  }
  return tau;
}

}  // namespace bwtk
