#include "search/tau_heuristic.h"

#include <cstdint>

#include "bwt/prefix_table.h"
#include "obs/metrics.h"

namespace bwtk {

std::vector<int32_t> ComputeTau(const FmIndex& index,
                                const std::vector<DnaCode>& pattern) {
  BWTK_SCOPED_TIMER(kPhaseTauBuild);
  const size_t m = pattern.size();
  std::vector<int32_t> tau(m + 1, 0);
  // first_absent_end[i] = smallest j such that r[i..j] does not occur in s
  // (exclusive end j+1 stored), or m+1 when r[i..m) occurs in full.
  // τ then satisfies τ(i) = 1 + τ(first_absent_end[i] + 1) and is filled
  // right to left with memoization.
  std::vector<size_t> absent_end(m, m + 1);
  const PrefixIntervalTable* table = index.prefix_table();
  const uint32_t q = table ? table->q() : 0;
  if (q > 0 && m >= q) {
    // Prefix-table fast path. A hit on r[i..i+q) proves every prefix of
    // that q-gram occurs too, so the first absent end is >= i + q and the
    // walk resumes from the table's range at j = i + q — exactly where q
    // Extend steps would have left it. A miss says nothing about *where*
    // inside the window the substring first goes absent, so those rows walk
    // from scratch.
    //
    // The table is 4^q entries (far beyond cache), so each lookup is a
    // potential DRAM miss; keys are precomputed with a rolling window and
    // the next row's entry is prefetched while the current row walks.
    std::vector<uint64_t> keys(m - q + 1);
    const uint64_t mask = PrefixIntervalTable::KeyCount(q) - 1;
    uint64_t key = 0;
    for (size_t i = 0; i < q; ++i) key = (key << 2) | pattern[i];
    keys[0] = key;
    for (size_t i = 1; i < keys.size(); ++i) {
      key = ((key << 2) | pattern[i + q - 1]) & mask;
      keys[i] = key;
    }
    table->Prefetch(keys[0]);
    uint64_t hits = 0;
    for (size_t i = 0; i < m; ++i) {
      FmIndex::Range range = index.WholeRange();
      size_t j = i;
      if (i < keys.size()) {
        if (i + 1 < keys.size()) table->Prefetch(keys[i + 1]);
        SaIndex lo;
        SaIndex hi;
        if (table->Lookup(keys[i], &lo, &hi)) {
          range = {lo, hi};
          j = i + q;
          ++hits;
        }
      }
      for (; j < m; ++j) {
        range = index.Extend(range, pattern[j]);
        if (range.empty()) {
          absent_end[i] = j;  // r[i..j] inclusive is absent
          break;
        }
      }
      // Monotone early exit: r[i..m) occurs in s, so every later window's
      // suffix (a substring of it) occurs too — all remaining absent_end
      // values keep their "fully present" default.
      if (j == m) break;
    }
    if (hits > 0) {
      BWTK_METRIC_COUNT2(kCounterPrefixTableHits, hits,
                         kCounterPrefixTableSkippedSteps, hits * q);
    }
  } else {
    for (size_t i = 0; i < m; ++i) {
      FmIndex::Range range = index.WholeRange();
      size_t j = i;
      for (; j < m; ++j) {
        range = index.Extend(range, pattern[j]);
        if (range.empty()) {
          absent_end[i] = j;  // r[i..j] inclusive is absent
          break;
        }
      }
      if (j == m) break;  // r[i..m) present => all later suffixes present
    }
  }
  for (size_t i = m; i-- > 0;) {
    if (absent_end[i] > m) {
      tau[i] = 0;  // the whole suffix occurs in s
    } else {
      const size_t next = absent_end[i] + 1;
      tau[i] = 1 + (next >= m ? 0 : tau[next]);
    }
  }
  return tau;
}

}  // namespace bwtk
