// Open-addressing uint64 -> int32 hash table with epoch-tagged slots.
//
// Both hot-path lookup structures of Algorithm A — the range hash table
// that detects repeated search-DAG nodes and the R_ij cache index — are
// cleared once per query and probed millions of times in between. A
// node-based map pays an allocation per entry and a pointer chase per
// probe; this table is flat linear probing (one cache line per probe) with
// power-of-two capacity, and Clear() is O(1): a slot is live only while its
// epoch stamp equals the table's current epoch, so invalidating everything
// is one counter bump. The table only ever grows, which is exactly what a
// reusable scratch wants.

#ifndef BWTK_SEARCH_EPOCH_MAP_H_
#define BWTK_SEARCH_EPOCH_MAP_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace bwtk {

/// Flat linear-probing map from uint64 keys to int32 values. Not
/// thread-safe; owned by exactly one scratch.
class EpochMap {
 public:
  /// `initial_capacity` must be a power of two.
  explicit EpochMap(size_t initial_capacity = 1 << 16) {
    Reallocate(initial_capacity);
  }

  /// Returns {slot for the value, inserted}. On a hit the existing value is
  /// untouched. The slot pointer is invalidated by the next TryEmplace.
  std::pair<int32_t*, bool> TryEmplace(uint64_t key, int32_t value) {
    if ((size_ + 1) * 10 >= capacity() * 7) Rehash(capacity() * 2);
    size_t slot = Mix(key) & mask_;
    while (epochs_[slot] == epoch_) {
      if (keys_[slot] == key) return {&values_[slot], false};
      slot = (slot + 1) & mask_;
    }
    keys_[slot] = key;
    values_[slot] = value;
    epochs_[slot] = epoch_;
    ++size_;
    return {&values_[slot], true};
  }

  /// Invalidates every entry in O(1) while keeping the table's capacity.
  void Clear() {
    size_ = 0;
    if (++epoch_ == 0) {  // wrapped: stamps from 2^32 queries ago are stale
      std::fill(epochs_.begin(), epochs_.end(), uint32_t{0});
      epoch_ = 1;
    }
  }

  size_t size() const { return size_; }

  size_t MemoryUsage() const {
    return capacity() * (sizeof(uint64_t) + sizeof(int32_t) +
                         sizeof(uint32_t));
  }

 private:
  static uint64_t Mix(uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return x;
  }

  size_t capacity() const { return keys_.size(); }

  void Reallocate(size_t new_capacity) {
    keys_.assign(new_capacity, 0);
    values_.assign(new_capacity, 0);
    epochs_.assign(new_capacity, 0);
    mask_ = new_capacity - 1;
    size_ = 0;
    epoch_ = 1;
  }

  void Rehash(size_t new_capacity) {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<int32_t> old_values = std::move(values_);
    std::vector<uint32_t> old_epochs = std::move(epochs_);
    const uint32_t old_epoch = epoch_;
    Reallocate(new_capacity);
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_epochs[i] == old_epoch) TryEmplace(old_keys[i], old_values[i]);
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<int32_t> values_;
  std::vector<uint32_t> epochs_;  // slot live iff epochs_[slot] == epoch_
  size_t mask_ = 0;
  size_t size_ = 0;
  uint32_t epoch_ = 1;
};

}  // namespace bwtk

#endif  // BWTK_SEARCH_EPOCH_MAP_H_
