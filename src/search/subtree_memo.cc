#include "search/subtree_memo.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"

namespace bwtk {

namespace {

// splitmix64 finalizer: full-avalanche word mixing. Lookup hashes a key
// per *probed frame* (millions per query batch), so the mixer must be a
// handful of multiplies, not a byte loop.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

uint64_t HashKey(uint32_t index_slot, uint32_t lo, uint32_t hi,
                 int32_t budget, size_t suffix_len, uint64_t suffix_hash) {
  uint64_t hash = Mix64(suffix_hash ^ ((static_cast<uint64_t>(lo) << 32) | hi));
  hash = Mix64(hash ^ ((static_cast<uint64_t>(index_slot) << 32) |
                       static_cast<uint32_t>(budget)));
  return Mix64(hash ^ suffix_len);
}

// The owning key. The precomputed full hash doubles as the map hash and as
// a cheap first-stage equality filter before the suffix memcmp.
struct Key {
  uint64_t hash = 0;
  uint32_t index_slot = 0;
  uint32_t lo = 0;
  uint32_t hi = 0;
  int32_t budget = 0;
  std::string suffix;  // the pattern tail, byte-exact
};

// A borrowed key for allocation-free lookups (heterogeneous find).
struct KeyView {
  uint64_t hash = 0;
  uint32_t index_slot = 0;
  uint32_t lo = 0;
  uint32_t hi = 0;
  int32_t budget = 0;
  const DnaCode* suffix = nullptr;
  size_t suffix_len = 0;
};

struct KeyHash {
  using is_transparent = void;
  size_t operator()(const Key& k) const { return k.hash; }
  size_t operator()(const KeyView& k) const { return k.hash; }
};

struct KeyEq {
  using is_transparent = void;
  bool operator()(const Key& a, const Key& b) const {
    return a.hash == b.hash && a.index_slot == b.index_slot && a.lo == b.lo &&
           a.hi == b.hi && a.budget == b.budget && a.suffix == b.suffix;
  }
  bool operator()(const KeyView& a, const Key& b) const {
    return a.hash == b.hash && a.index_slot == b.index_slot && a.lo == b.lo &&
           a.hi == b.hi && a.budget == b.budget &&
           a.suffix_len == b.suffix.size() &&
           (a.suffix_len == 0 ||
            std::memcmp(a.suffix, b.suffix.data(), a.suffix_len) == 0);
  }
  bool operator()(const Key& a, const KeyView& b) const {
    return operator()(b, a);
  }
};

size_t EntryBytes(const Key& key, const SubtreeMemo::Entry& entry) {
  // Key + suffix + occurrences + a fixed allowance for the map node.
  return sizeof(Key) + key.suffix.size() +
         entry.size() * sizeof(MemoOccurrence) + 96;
}

}  // namespace

struct SubtreeMemo::Shard {
  mutable std::shared_mutex mu;
  std::unordered_map<Key, Entry, KeyHash, KeyEq> map;
  size_t bytes = 0;  // guarded by mu
};

SubtreeMemo::SubtreeMemo(const SharedMemoOptions& options)
    : options_(options), shards_(new Shard[kNumShards]) {
  if (options_.probation_bits > 0) {
    probation_ = std::vector<std::atomic<uint64_t>>(
        size_t{1} << std::min<uint32_t>(options_.probation_bits, 24));
  }
}

SubtreeMemo::~SubtreeMemo() = default;

const SubtreeMemo::Entry* SubtreeMemo::Lookup(
    uint32_t index_slot, uint32_t lo, uint32_t hi, int32_t budget,
    const DnaCode* suffix, size_t suffix_len, uint64_t suffix_hash,
    bool* advise_capture) const {
  KeyView view;
  view.hash = HashKey(index_slot, lo, hi, budget, suffix_len, suffix_hash);
  view.index_slot = index_slot;
  view.lo = lo;
  view.hi = hi;
  view.budget = budget;
  view.suffix = suffix;
  view.suffix_len = suffix_len;
  if (entry_count_.load(std::memory_order_acquire) != 0) {
    Shard& shard = shards_[view.hash % kNumShards];
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    const auto it = shard.map.find(view);
    if (it != shard.map.end()) {
      // Node-based storage: the entry's address survives rehash and is only
      // invalidated by Clear(), which requires quiescence.
      return &it->second;
    }
  }
  if (advise_capture != nullptr) {
    if (probation_.empty()) {
      *advise_capture = true;  // probation disabled: capture on first miss
    } else {
      // Second touch of this fingerprint => the subtree repeats; worth the
      // capture/publish cost. First touch just leaves the fingerprint.
      std::atomic<uint64_t>& slot =
          probation_[view.hash & (probation_.size() - 1)];
      if (slot.load(std::memory_order_relaxed) == view.hash) {
        *advise_capture = true;
      } else {
        slot.store(view.hash, std::memory_order_relaxed);
        *advise_capture = false;
      }
    }
  }
  return nullptr;
}

void SubtreeMemo::Publish(uint32_t index_slot, uint32_t lo, uint32_t hi,
                          int32_t budget, const DnaCode* suffix,
                          size_t suffix_len, uint64_t suffix_hash,
                          Entry entry) {
  Key key;
  key.hash = HashKey(index_slot, lo, hi, budget, suffix_len, suffix_hash);
  key.index_slot = index_slot;
  key.lo = lo;
  key.hi = hi;
  key.budget = budget;
  key.suffix.assign(reinterpret_cast<const char*>(suffix), suffix_len);
  Shard& shard = shards_[key.hash % kNumShards];
  const size_t bytes = EntryBytes(key, entry);
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  if (shard.bytes + bytes > options_.capacity_bytes / kNumShards) return;
  const auto [it, inserted] =
      shard.map.try_emplace(std::move(key), std::move(entry));
  if (inserted) {
    shard.bytes += bytes;
    entry_count_.fetch_add(1, std::memory_order_release);
    BWTK_METRIC_COUNT(kCounterMemoPublishes);
  }
}

void SubtreeMemo::Clear() {
  for (size_t s = 0; s < kNumShards; ++s) {
    std::unique_lock<std::shared_mutex> lock(shards_[s].mu);
    shards_[s].map.clear();
    shards_[s].bytes = 0;
  }
  // Stale fingerprints would advise captures for keys of a previous batch;
  // callers are quiescent here (the Clear contract), so relaxed stores
  // suffice.
  for (std::atomic<uint64_t>& slot : probation_) {
    slot.store(0, std::memory_order_relaxed);
  }
  entry_count_.store(0, std::memory_order_relaxed);
}

size_t SubtreeMemo::MemoryUsage() const {
  size_t total = 0;
  for (size_t s = 0; s < kNumShards; ++s) {
    std::shared_lock<std::shared_mutex> lock(shards_[s].mu);
    total += shards_[s].bytes;
  }
  return total;
}

size_t SubtreeMemo::size() const {
  size_t total = 0;
  for (size_t s = 0; s < kNumShards; ++s) {
    std::shared_lock<std::shared_mutex> lock(shards_[s].mu);
    total += shards_[s].map.size();
  }
  return total;
}

}  // namespace bwtk
