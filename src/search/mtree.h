// The mismatching tree D of Section IV.D (Definition 4).
//
// For every mismatching S-tree node <x, [α, β]> (compared against r[i]) the
// M-tree holds a node <x, i>; every maximal match sub-path (Definition 3)
// collapses into a single matching node <-, 0>. Because a pattern position
// matches exactly one character, a matching node never has a matching child
// — consecutive matches always merge — so the tree's size is proportional
// to the number of *mismatches* on the explored paths, not their lengths.
// The leaf count of this tree is the paper's n' (Table 2), the quantity its
// O(kn' + n + m log m) bound is stated in.

#ifndef BWTK_SEARCH_MTREE_H_
#define BWTK_SEARCH_MTREE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "alphabet/dna.h"
#include "search/bump_arena.h"

namespace bwtk {

/// Mismatching tree, grown by the Algorithm A traversal.
class MTree {
 public:
  static constexpr int32_t kMatching = -1;  // pattern_pos of a <-, 0> node

  struct Node {
    int32_t parent = -1;
    /// Pattern position of the mismatch for <x, i> nodes; kMatching for
    /// collapsed match-run nodes.
    int32_t pattern_pos = kMatching;
    /// The mismatching character x (meaningful only when pattern_pos >= 0).
    DnaCode symbol = 0;

    bool matching() const { return pattern_pos == kMatching; }
  };

  /// Creates the virtual root (a matching node, per the paper's u0).
  MTree() {
    nodes_.reserve(1 << 12);
    nodes_.push_back(Node{});
  }

  /// Discards everything but the root, keeping the node slab's capacity —
  /// the reuse hook for AlgorithmAScratch. The root is never mutated after
  /// construction, so truncating back to it is the whole reset.
  void Reset() {
    nodes_.Truncate(1);
    leaf_count_ = 0;
  }

  int32_t root() const { return 0; }

  /// Appends a matching child of `parent`, merging into `parent` when it is
  /// itself a matching node (Definition 4's collapse rule).
  int32_t AddMatching(int32_t parent) {
    if (nodes_[parent].matching()) return parent;
    nodes_.push_back(Node{parent, kMatching, 0});
    return static_cast<int32_t>(nodes_.size() - 1);
  }

  /// Appends a mismatching node <symbol, pattern_pos> under `parent`.
  int32_t AddMismatching(int32_t parent, DnaCode symbol, int32_t pattern_pos) {
    nodes_.push_back(Node{parent, pattern_pos, symbol});
    return static_cast<int32_t>(nodes_.size() - 1);
  }

  /// Records the termination of one search path (the path's B_l array is
  /// complete). Counts toward n'.
  void MarkLeaf() { ++leaf_count_; }

  const Node& node(int32_t id) const { return nodes_[id]; }
  size_t node_count() const { return nodes_.size(); }
  uint64_t leaf_count() const { return leaf_count_; }

  /// Mismatch pattern positions along the path from the root to `id`
  /// (the path's B_l array, Section IV.A), oldest first.
  std::vector<int32_t> PathMismatchPositions(int32_t id) const {
    std::vector<int32_t> out;
    for (int32_t cur = id; cur > 0; cur = nodes_[cur].parent) {
      if (!nodes_[cur].matching()) out.push_back(nodes_[cur].pattern_pos);
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

 private:
  // Bump-arena slab (bump_arena.h): nodes are append-only and trivially
  // copyable, so growth is a memcpy and Reset is a truncation — no
  // destructor walks, no exception-safety machinery on the query hot path.
  BumpPool<Node> nodes_;
  uint64_t leaf_count_ = 0;
};

}  // namespace bwtk

#endif  // BWTK_SEARCH_MTREE_H_
