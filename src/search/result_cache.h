// Exact-duplicate query result cache (the L3 reuse tier).
//
// Query streams reaching a serving tier are heavily skewed: popular reads,
// probe patterns, and retried RPCs repeat the exact same (pattern, k) far
// more often than a uniform model predicts. The subtree memo
// (subtree_memo.h) already shares *partial* work across distinct queries;
// this cache short-circuits *identical* queries outright — a hash lookup
// instead of any search at all.
//
// Keys are (engine, k, index_version, pattern bytes). The index version is a
// content fingerprint (FmIndexVersion below), so a rebuilt or swapped index
// naturally misses every stale entry — there is no explicit invalidation
// hook to forget. Values store the hits *and* the SearchStats the original
// execution produced, so a cache-served query contributes the same stats a
// fresh execution would and aggregate accounting stays deterministic
// whether or not the cache is warm.
//
// Eviction is strict LRU under a byte budget; a single mutex guards the
// table (one lookup per query, far off the per-node hot path). Thread-safe.

#ifndef BWTK_SEARCH_RESULT_CACHE_H_
#define BWTK_SEARCH_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "alphabet/dna.h"
#include "bwt/fm_index.h"
#include "search/match.h"

namespace bwtk {

/// Knobs for the result cache, carried in BatchOptions::result_cache.
struct ResultCacheOptions {
  /// Master switch; the cache costs nothing while false.
  bool enabled = false;

  /// LRU byte budget across all entries (keys + stored hits).
  size_t capacity_bytes = size_t{64} << 20;
};

/// Content fingerprint of an FM-index: structural parameters plus sampled
/// BWT words. Two indexes over the same text with the same options agree;
/// any rebuild over different text disagrees with overwhelming probability.
/// O(1) — sampling is capped, not linear in the text.
uint64_t FmIndexVersion(const FmIndex& index);

/// The shared LRU cache. One instance typically fronts a Session or a
/// BatchSearcher; a shared_ptr lets it outlive an index swap (entries for
/// the old index age out by version mismatch, not by explicit flush).
class ResultCache {
 public:
  /// One cached execution.
  struct Entry {
    std::vector<Occurrence> hits;
    SearchStats stats;
    uint64_t seam_hits_deduped = 0;
  };

  /// Running totals, for tests and the stats endpoint.
  struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;
    uint64_t bytes = 0;
  };

  explicit ResultCache(const ResultCacheOptions& options);
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Copies the cached entry for (engine, k, index_version, pattern) into
  /// `*out` and returns true, or returns false on a miss. Counts
  /// result_cache_hits / result_cache_misses.
  bool Lookup(uint8_t engine, int32_t k, uint64_t index_version,
              const std::vector<DnaCode>& pattern, Entry* out);

  /// Inserts (or refreshes) an entry, evicting LRU entries as needed to
  /// respect the byte budget. An entry larger than the whole budget is
  /// dropped silently.
  void Insert(uint8_t engine, int32_t k, uint64_t index_version,
              const std::vector<DnaCode>& pattern, Entry entry);

  /// Drops everything (mainly for tests).
  void Clear();

  CacheStats Stats() const;

  const ResultCacheOptions& options() const { return options_; }

 private:
  using LruList = std::list<std::string>;  // keys, most recent first

  struct Slot {
    Entry entry;
    size_t bytes = 0;
    LruList::iterator lru_pos;
  };

  static std::string MakeKey(uint8_t engine, int32_t k, uint64_t index_version,
                             const std::vector<DnaCode>& pattern);
  size_t EntryBytes(const std::string& key, const Entry& entry) const;
  void EvictToFitLocked(size_t incoming_bytes);

  const ResultCacheOptions options_;

  mutable std::mutex mu_;
  LruList lru_;
  std::unordered_map<std::string, Slot> map_;
  size_t bytes_ = 0;
  CacheStats stats_;
};

}  // namespace bwtk

#endif  // BWTK_SEARCH_RESULT_CACHE_H_
