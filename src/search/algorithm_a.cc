#include "search/algorithm_a.h"

#include <algorithm>
#include <array>
#include <optional>

#include "mismatch/kangaroo.h"
#include "mismatch/mismatch_array.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "search/bump_arena.h"
#include "search/epoch_map.h"
#include "search/mtree.h"
#include "search/subtree_memo.h"
#include "search/tau_heuristic.h"
#include "util/logging.h"

namespace bwtk {

namespace {

constexpr int32_t kNoChild = -1;

// A node of the memoized search DAG. Children depend only on the rank range
// (one search() step per symbol), so every distinct pair <x, [α, β]> is
// expanded exactly once per Search() call — the role of the paper's hash
// table (EpochMap, search/epoch_map.h).
struct DagNode {
  FmIndex::Range range;
  std::array<int32_t, kDnaAlphabetSize> child{kNoChild, kNoChild, kNoChild,
                                              kNoChild};
  int32_t chain_id = -1;
  uint8_t child_count = 0;
  bool expanded = false;
};

// A maximal single-continuation run below a DAG node, with its mismatch
// array recorded against the alignment of the first visit. Corresponds to
// the paths through a repeated S-tree node whose mismatch information
// Algorithm A derives instead of re-searching.
//
// The record is a pure view: node ids and symbols live at [begin, begin +
// length) of the scratch's shared chain_nodes/chain_symbols arenas, the
// 1-based mismatch offsets (the path's B_l array, exhaustive over the whole
// chain) at [mm_begin, mm_begin + mm_count) of chain_mms. Chains are built
// strictly one at a time, so a walk appends to the arena tails and either
// commits the run or truncates back to its marks — no per-chain heap blocks.
struct ChainRec {
  int32_t first_alignment = 0;  // pattern position of the first chain char
  uint32_t begin = 0;
  uint32_t length = 0;
  uint32_t mm_begin = 0;
  uint32_t mm_count = 0;
};

// One S-tree traversal frame.
struct Frame {
  int32_t node;
  uint32_t depth;  // characters consumed; next char compared to r[depth]
  int32_t mismatches;
  int32_t mnode;  // current M-tree node
};

// A shared-memo capture in flight: the frame's key plus the stack/result
// water marks that delimit its subtree (the traversal is LIFO, so the
// subtree is exactly the work done until the stack shrinks back to the
// mark, and its hits are exactly results[results_mark..]).
struct PendingCapture {
  uint32_t lo = 0;
  uint32_t hi = 0;
  int32_t budget = 0;
  uint32_t depth = 0;
  int32_t base_mismatches = 0;
  size_t stack_mark = 0;
  size_t results_mark = 0;
};

}  // namespace

// The buffers one Search call needs, owned across calls so capacity is
// reused. Reset() invalidates contents without releasing memory: the hash
// tables clear by epoch bump (O(1)), the bump arenas by truncation, and the
// R_ij slot pool keeps its inner arrays' capacity.
struct AlgorithmAScratch::Impl {
  std::vector<DagNode> dag;
  EpochMap node_of_range{1 << 16};

  // Chain store: records + three shared arenas (see ChainRec).
  BumpPool<ChainRec> chains;
  BumpPool<int32_t> chain_nodes;
  BumpPool<DnaCode> chain_symbols;
  BumpPool<int32_t> chain_mms;

  // R_ij cache: flat open-addressing index over a slot pool, replacing the
  // former std::unordered_map (per-entry allocation + pointer-chasing
  // probes on the merge hot path). Slots [0, rij_used) are live; a reused
  // slot's vector keeps its capacity.
  EpochMap rij_index{1 << 8};
  std::vector<MismatchArray> rij_pool;
  size_t rij_used = 0;

  std::optional<PatternLcp> pattern_lcp;
  MTree mtree;
  std::vector<Frame> stack;
  std::vector<PendingCapture> captures;
  std::vector<int32_t> tau;
  // Rolling per-depth suffix hashes for the shared memo (suffix_hashes[d]
  // = hash of r[d..m)); filled only when a memo is attached.
  std::vector<uint64_t> suffix_hashes;

  void Reset() {
    dag.clear();
    node_of_range.Clear();
    chains.clear();
    chain_nodes.clear();
    chain_symbols.clear();
    chain_mms.clear();
    rij_index.Clear();
    rij_used = 0;
    pattern_lcp.reset();
    mtree.Reset();
    stack.clear();
    captures.clear();
    tau.clear();
    suffix_hashes.clear();
  }
};

AlgorithmAScratch::AlgorithmAScratch() : impl_(std::make_unique<Impl>()) {}
AlgorithmAScratch::~AlgorithmAScratch() = default;
AlgorithmAScratch::AlgorithmAScratch(AlgorithmAScratch&&) noexcept = default;
AlgorithmAScratch& AlgorithmAScratch::operator=(AlgorithmAScratch&&) noexcept =
    default;

namespace {

class SearchContext {
 public:
  SearchContext(const FmIndex& index, AlgorithmAScratch::Impl& scratch,
                const std::vector<DnaCode>& pattern, int32_t k,
                const AlgorithmAOptions& options, SubtreeMemo* memo,
                uint32_t memo_slot)
      : index_(index),
        r_(pattern),
        m_(pattern.size()),
        k_(k),
        reuse_(options.reuse),
        use_tau_(options.use_tau),
        use_prefix_table_(options.use_prefix_table),
        memo_(memo),
        memo_slot_(memo_slot),
        scratch_(scratch),
        dag_(scratch.dag),
        node_of_range_(scratch.node_of_range),
        chains_(scratch.chains),
        chain_nodes_(scratch.chain_nodes),
        chain_symbols_(scratch.chain_symbols),
        chain_mms_(scratch.chain_mms),
        mtree_(scratch.mtree),
        stack_(scratch.stack),
        captures_(scratch.captures),
        tau_(scratch.tau),
        suffix_hashes_(scratch.suffix_hashes) {
    scratch.Reset();
    if (memo_ != nullptr) {
      memo_max_depth_ = memo_->options().max_capture_depth;
      memo_min_suffix_ = memo_->options().min_suffix_len;
      // One backward pass fills every depth's suffix hash, so per-frame
      // memo probes hash O(1) state instead of an O(m) suffix.
      suffix_hashes_.resize(m_ + 1);
      suffix_hashes_[m_] = SubtreeMemo::kEmptySuffixHash;
      for (size_t d = m_; d-- > 0;) {
        suffix_hashes_[d] =
            SubtreeMemo::ExtendSuffixHash(suffix_hashes_[d + 1], r_[d]);
      }
    }
  }

  void Run() {
    if (m_ == 0 || m_ > index_.text_size() || k_ < 0) return;
    if (use_tau_) {
      BWTK_TRACE_SPAN(trace_, "tau_build");
      ComputeTau(index_, r_).swap(tau_);
    }
    if (dag_.capacity() < (1u << 16)) dag_.reserve(1 << 16);
    if (stack_.capacity() < (1u << 10)) stack_.reserve(1 << 10);
    if (!SeedFromPrefixTable()) {
      stack_.push_back(
          {GetOrCreateNode(index_.WholeRange()), 0, 0, mtree_.root()});
    }
    {
      BWTK_SCOPED_TIMER(kPhaseTreeTraversal);
      BWTK_TRACE_SPAN(trace_, "tree_traversal");
      while (!stack_.empty()) {
        if (memo_ != nullptr) FinalizeCaptures(stack_.size());
        Frame frame = stack_.back();
        stack_.pop_back();
        if (memo_ != nullptr && MemoEligible(frame.depth)) {
          if (TryMemo(frame)) continue;
        }
        ProcessFrame(frame);
      }
      if (memo_ != nullptr) FinalizeCaptures(0);
    }
    NormalizeOccurrences(&results_);
    stats_.mtree_nodes = mtree_.node_count();
    stats_.mtree_leaves = mtree_.leaf_count();
#if BWTK_METRICS_ENABLED
    if (memo_ != nullptr && memo_lookups_ > 0) {
      BWTK_METRIC_COUNT2(kCounterMemoLookups, memo_lookups_, kCounterMemoHits,
                         memo_hits_);
    }
#endif
  }

  std::vector<Occurrence>& results() { return results_; }
  SearchStats& stats() { return stats_; }

 private:
  // Pushes the depth-q frames a prefix-table-seeded enumeration starts from
  // (one per non-empty Hamming-ball variant of r's q-prefix), with the
  // M-tree paths the stepped walk would have built for them: a mismatching
  // node per substitution and one collapsed matching node per match gap —
  // AddMatching's merge rule makes consecutive matches (and the leading run
  // under the matching root) collapse exactly as in StepChildren. Returns
  // false when the table is absent or inapplicable (pattern shorter than q,
  // k beyond the seeding cap) and the caller must start at the root.
  bool SeedFromPrefixTable() {
    const PrefixIntervalTable* table =
        use_prefix_table_ ? index_.prefix_table() : nullptr;
    if (table == nullptr) return false;
    const uint32_t q = table->q();
    if (m_ < q || k_ > PrefixIntervalTable::kMaxSeedMismatches) return false;
    uint64_t hits = 0;
    table->ForEachVariant(
        r_.data(), k_, [&](const PrefixIntervalTable::Variant& v) {
          SaIndex lo;
          SaIndex hi;
          if (!table->Lookup(v.key, &lo, &hi)) return;
          ++hits;
          ++stats_.stree_nodes;
          BWTK_TRACE_NODE(trace_, q);
          int32_t mnode = mtree_.root();
          uint32_t upto = 0;
          for (int32_t s = 0; s < v.mismatches; ++s) {
            const auto [pos, sym] = v.subs[static_cast<size_t>(s)];
            if (pos > upto) mnode = mtree_.AddMatching(mnode);
            mnode = mtree_.AddMismatching(mnode, sym,
                                          static_cast<int32_t>(pos));
            upto = pos + 1u;
          }
          if (upto < q) mnode = mtree_.AddMatching(mnode);
          if (TauCuts(q, v.mismatches)) {
            mtree_.MarkLeaf();
            ++stats_.tau_pruned;
            return;
          }
          stack_.push_back(
              {GetOrCreateNode({lo, hi}), q, v.mismatches, mnode});
        });
    BWTK_METRIC_COUNT2(kCounterPrefixTableHits, hits,
                       kCounterPrefixTableSkippedSteps, hits * q);
    BWTK_TRACE_PREFIX_HITS(trace_, hits);
    return true;
  }

  // --- Shared-memo hooks (search/subtree_memo.h) -------------------------
  // Active only when a memo is attached; the enumeration loop pays one null
  // check per frame otherwise.

  bool MemoEligible(uint32_t depth) const {
    return depth <= memo_max_depth_ && m_ - depth >= memo_min_suffix_;
  }

  // Probes the memo for this frame's subtree. On a hit, replays the stored
  // results in frame coordinates and skips the subtree entirely. On a miss,
  // registers a pending capture so the subtree publishes once explored.
  bool TryMemo(const Frame& frame) {
    const FmIndex::Range range = dag_[frame.node].range;
    const int32_t budget = k_ - frame.mismatches;
    const DnaCode* suffix = r_.data() + frame.depth;
    const size_t suffix_len = m_ - frame.depth;
    ++memo_lookups_;
    bool advise_capture = false;
    const SubtreeMemo::Entry* entry =
        memo_->Lookup(memo_slot_, static_cast<uint32_t>(range.lo),
                      static_cast<uint32_t>(range.hi), budget, suffix,
                      suffix_len, suffix_hashes_[frame.depth],
                      &advise_capture);
    if (entry == nullptr) {
      if (advise_capture) {
        captures_.push_back({static_cast<uint32_t>(range.lo),
                             static_cast<uint32_t>(range.hi), budget,
                             frame.depth, frame.mismatches, stack_.size(),
                             results_.size()});
      }
      return false;
    }
    ++memo_hits_;
    for (const MemoOccurrence& occ : *entry) {
      results_.push_back(
          {static_cast<size_t>(occ.position_plus_depth) - frame.depth,
           frame.mismatches + occ.mismatch_delta});
    }
    return true;
  }

  // Publishes every pending capture whose subtree is complete — i.e. whose
  // stack mark has been reached again. Called with the current stack size
  // before each pop (and with 0 after the loop), so captures finalize
  // innermost-first.
  void FinalizeCaptures(size_t stack_size) {
    while (!captures_.empty() && stack_size <= captures_.back().stack_mark) {
      const PendingCapture cap = captures_.back();
      captures_.pop_back();
      SubtreeMemo::Entry entry;
      entry.reserve(results_.size() - cap.results_mark);
      for (size_t i = cap.results_mark; i < results_.size(); ++i) {
        entry.push_back(
            {static_cast<uint64_t>(results_[i].position) + cap.depth,
             results_[i].mismatches - cap.base_mismatches});
      }
      memo_->Publish(memo_slot_, cap.lo, cap.hi, cap.budget,
                     r_.data() + cap.depth, m_ - cap.depth,
                     suffix_hashes_[cap.depth], std::move(entry));
    }
  }

  // Descends from one frame, following chains inline; pushes sibling
  // branches onto the stack.
  void ProcessFrame(Frame frame) {
    for (;;) {
      if (frame.depth == m_) {
        ReportAt(frame.node, frame.mismatches);
        return;
      }
      Expand(frame.node);
      const DagNode& v = dag_[frame.node];
      if (v.child_count == 0) {
        // Dead end: the spelled string cannot be extended in the text (the
        // paper's <$, i> leaves, e.g. u16 in Fig. 7).
        mtree_.MarkLeaf();
        return;
      }
      if (reuse_ == AlgorithmAOptions::Reuse::kFull && v.child_count == 1) {
        const bool advanced = v.chain_id < 0 ? BuildChainWalk(&frame)
                                             : DerivedChainWalk(&frame);
        if (!advanced) return;
        continue;
      }
      StepChildren(frame);
      return;
    }
  }

  // Expands a DAG node: one search() step per symbol, exactly once ever.
  void Expand(int32_t id) {
    if (dag_[id].expanded) return;
    const FmIndex::Range range = dag_[id].range;
    std::array<int32_t, kDnaAlphabetSize> kids{kNoChild, kNoChild, kNoChild,
                                               kNoChild};
    uint8_t count = 0;
    FmIndex::Range next[kDnaAlphabetSize];
    index_.ExtendAll(range, next);
    stats_.extend_calls += kDnaAlphabetSize;
    for (DnaCode c = 0; c < kDnaAlphabetSize; ++c) {
      if (next[c].empty()) continue;
      kids[c] = GetOrCreateNode(next[c]);  // may reallocate dag_
      ++count;
    }
    DagNode& v = dag_[id];
    v.child = kids;
    v.child_count = count;
    v.expanded = true;
  }

  int32_t GetOrCreateNode(FmIndex::Range range) {
    if (reuse_ == AlgorithmAOptions::Reuse::kNone) {
      dag_.push_back(DagNode{range, {}, -1, 0, false});
      return static_cast<int32_t>(dag_.size() - 1);
    }
    const uint64_t key = (static_cast<uint64_t>(
                              static_cast<uint32_t>(range.lo))
                          << 32) |
                         static_cast<uint32_t>(range.hi);
    const auto [slot, inserted] =
        node_of_range_.TryEmplace(key, static_cast<int32_t>(dag_.size()));
    if (!inserted) {
      ++stats_.reused_nodes;
      return *slot;
    }
    dag_.push_back(DagNode{range, {}, -1, 0, false});
    return *slot;
  }

  // Branching step: at most one child matches r[depth]; the rest are
  // mismatching nodes of the S-tree.
  void StepChildren(const Frame& frame) {
    const DnaCode expected = r_[frame.depth];
    const std::array<int32_t, kDnaAlphabetSize> kids = dag_[frame.node].child;
    for (DnaCode c = 0; c < kDnaAlphabetSize; ++c) {
      if (kids[c] == kNoChild) continue;
      ++stats_.stree_nodes;
      BWTK_TRACE_NODE(trace_, frame.depth + 1);
      int32_t q = frame.mismatches;
      int32_t mnode = frame.mnode;
      if (c == expected) {
        mnode = mtree_.AddMatching(mnode);
      } else {
        ++q;
        mnode = mtree_.AddMismatching(mnode, c,
                                      static_cast<int32_t>(frame.depth));
        if (q > k_) {
          mtree_.MarkLeaf();
          ++stats_.budget_pruned;
          continue;
        }
      }
      if (TauCuts(frame.depth + 1, q)) {
        mtree_.MarkLeaf();
        ++stats_.tau_pruned;
        continue;
      }
      stack_.push_back({kids[c], frame.depth + 1, q, mnode});
    }
  }

  // First walk through a single-continuation run: records the chain and its
  // mismatch array against the current alignment while walking it. The run
  // is built speculatively on the arena tails; too-short runs truncate back
  // to the entry marks. Returns true if `frame` advanced past the chain,
  // false if the path terminated inside it.
  bool BuildChainWalk(Frame* frame) {
    const uint32_t node_mark = static_cast<uint32_t>(chain_nodes_.size());
    const uint32_t mm_mark = static_cast<uint32_t>(chain_mms_.size());
    int32_t cur = frame->node;
    int32_t q = frame->mismatches;
    int32_t mnode = frame->mnode;
    enum class End { kOpen, kKilled, kComplete };
    End end = End::kOpen;
    int32_t final_node = kNoChild;
    for (;;) {
      Expand(cur);
      if (dag_[cur].child_count != 1) break;
      DnaCode c = 0;
      while (dag_[cur].child[c] == kNoChild) ++c;
      const int32_t child = dag_[cur].child[c];
      const size_t t = chain_nodes_.size() - node_mark + 1;  // 1-based offset
      const size_t ppos = frame->depth + t - 1;              // pattern pos
      chain_nodes_.push_back(child);
      chain_symbols_.push_back(c);
      ++stats_.stree_nodes;
      BWTK_TRACE_NODE(trace_, ppos + 1);
      if (c == r_[ppos]) {
        mnode = mtree_.AddMatching(mnode);
      } else {
        chain_mms_.push_back(static_cast<int32_t>(t));
        ++q;
        mnode = mtree_.AddMismatching(mnode, c, static_cast<int32_t>(ppos));
        if (q > k_) {
          mtree_.MarkLeaf();
          ++stats_.budget_pruned;
          end = End::kKilled;
          break;
        }
      }
      if (ppos + 1 == m_) {
        end = End::kComplete;
        final_node = child;
        break;
      }
      if (TauCuts(ppos + 1, q)) {
        mtree_.MarkLeaf();
        ++stats_.tau_pruned;
        end = End::kKilled;
        break;
      }
      cur = child;
    }
    const size_t length = chain_nodes_.size() - node_mark;
    const int32_t last_node = length > 0 ? chain_nodes_.back() : kNoChild;
    // Short runs are not worth a stored record: a re-visit re-walks them in
    // a handful of O(1) steps anyway. Only runs of at least kMinChainLength
    // nodes are kept for merge-based derivation.
    constexpr size_t kMinChainLength = 4;
    if (length >= kMinChainLength) {
      dag_[frame->node].chain_id = static_cast<int32_t>(chains_.size());
      chains_.push_back(ChainRec{
          static_cast<int32_t>(frame->depth), node_mark,
          static_cast<uint32_t>(length), mm_mark,
          static_cast<uint32_t>(chain_mms_.size() - mm_mark)});
      BWTK_METRIC_COUNT(kCounterChainBuilds);
      BWTK_METRIC_OBSERVE(kHistChainLength, length);
    } else {
      chain_nodes_.Truncate(node_mark);
      chain_symbols_.Truncate(node_mark);
      chain_mms_.Truncate(mm_mark);
    }
    if (end == End::kComplete) {
      ReportAt(final_node, q, mnode);
      return false;
    }
    if (end == End::kKilled) return false;
    BWTK_DCHECK_GT(length, 0u);  // entry had child_count == 1
    frame->node = last_node;
    frame->depth += static_cast<uint32_t>(length);
    frame->mismatches = q;
    frame->mnode = mnode;
    return true;
  }

  // Re-entry into a stored chain at a (usually different) alignment j: the
  // chain's mismatch structure against r[j..] is derived from the stored
  // array (vs r[i..]) and R_ij — the paper's node-creation over D[u'].
  // Offsets beyond the derivation horizon (the i > j case) fall back to
  // direct comparison; a chain shorter than the pattern remainder resumes
  // real search steps afterwards (the extension step).
  bool DerivedChainWalk(Frame* frame) {
    BWTK_SCOPED_TIMER(kPhaseMerge);
    BWTK_TRACE_SPAN(trace_, "merge");
    BWTK_METRIC_COUNT(kCounterMergeCalls);
    const ChainRec chain = chains_[dag_[frame->node].chain_id];
    // Arena views; no chain is built while one is derived, so the spans are
    // stable for the whole walk.
    const int32_t* nodes = chain_nodes_.data() + chain.begin;
    const DnaCode* symbols = chain_symbols_.data() + chain.begin;
    const int32_t* mm = chain_mms_.data() + chain.mm_begin;
    const size_t mm_size = chain.mm_count;
    const size_t i = static_cast<size_t>(chain.first_alignment);
    const size_t j = frame->depth;
    const size_t lambda = chain.length;
    const size_t need = m_ - j;
    ++stats_.derived_runs;

    const int32_t* rij = nullptr;
    size_t rij_size = 0;
    size_t horizon = lambda;
    if (i != j) {
      const MismatchArray& built = GetRij(i, j);
      rij = built.data();
      rij_size = built.size();
      horizon = std::min(horizon, m_ - std::max(i, j));
    }
    horizon = std::min(horizon, need);
    const size_t limit = std::min(need, lambda);

    int32_t q = frame->mismatches;
    int32_t mnode = frame->mnode;
    size_t last_event = 0;
    bool killed = false;
    auto on_mismatch = [&](size_t t) {
      if (t > last_event + 1) mnode = mtree_.AddMatching(mnode);
      ++q;
      mnode = mtree_.AddMismatching(mnode, symbols[t - 1],
                                    static_cast<int32_t>(j + t - 1));
      last_event = t;
      if (q > k_) {
        mtree_.MarkLeaf();
        ++stats_.budget_pruned;
        killed = true;
      } else if (TauCuts(j + t, q)) {
        mtree_.MarkLeaf();
        ++stats_.tau_pruned;
        killed = true;
      }
    };

    // Merge the two mismatch arrays (Proposition 1): offsets present in
    // only one are mismatches outright; common offsets compare the chain
    // character against r[j + t - 1].
    size_t p = 0;
    size_t s = 0;
    while (!killed) {
      const size_t t1 = p < mm_size ? static_cast<size_t>(mm[p]) : SIZE_MAX;
      const size_t t2 =
          s < rij_size ? static_cast<size_t>(rij[s]) : SIZE_MAX;
      const size_t t = std::min(t1, t2);
      if (t > horizon) break;
      if (t1 == t2) {
        if (symbols[t - 1] != r_[j + t - 1]) on_mismatch(t);
        ++p;
        ++s;
      } else if (t1 < t2) {
        on_mismatch(t);
        ++p;
      } else {
        on_mismatch(t);
        ++s;
      }
    }
    // Beyond the horizon the derivation is blind: compare directly.
    for (size_t t = horizon + 1; t <= limit && !killed; ++t) {
      ++stats_.stree_nodes;
      BWTK_TRACE_NODE(trace_, j + t);
      if (symbols[t - 1] != r_[j + t - 1]) on_mismatch(t);
    }
    if (killed) return false;
    if (need <= lambda) {
      if (need > last_event) mnode = mtree_.AddMatching(mnode);
      ReportAt(nodes[need - 1], q, mnode);
      return false;
    }
    if (lambda > last_event) mnode = mtree_.AddMatching(mnode);
    frame->node = nodes[lambda - 1];
    frame->depth = static_cast<uint32_t>(j + lambda);
    frame->mismatches = q;
    frame->mnode = mnode;
    return true;
  }

  // True when the τ(i) lower bound proves no occurrence can complete from
  // pattern position `next_pos` with `q` mismatches already spent.
  bool TauCuts(size_t next_pos, int32_t q) const {
    return use_tau_ && next_pos < tau_.size() && k_ - q < tau_[next_pos];
  }

  // R_ij: mismatch offsets between r[i..] and r[j..] over their overlap,
  // computed exactly with kangaroo jumps and cached per (i, j) in a flat
  // epoch-cleared index over a slot pool.
  const MismatchArray& GetRij(size_t i, size_t j) {
    const uint64_t key = static_cast<uint64_t>(i) * (m_ + 1) + j;
    const auto [slot, inserted] = scratch_.rij_index.TryEmplace(
        key, static_cast<int32_t>(scratch_.rij_used));
    if (!inserted) {
      BWTK_METRIC_COUNT(kCounterRijCacheHits);
      return scratch_.rij_pool[static_cast<size_t>(*slot)];
    }
    BWTK_SCOPED_TIMER(kPhaseRiBuild);
    BWTK_TRACE_SPAN(trace_, "ri_build");
    BWTK_METRIC_COUNT(kCounterRijBuilds);
    if (!scratch_.pattern_lcp.has_value()) {
      auto built = PatternLcp::Build(r_);
      BWTK_CHECK(built.ok()) << built.status().ToString();
      scratch_.pattern_lcp = std::move(built).value();
    }
    const size_t overlap = m_ - std::max(i, j);
    if (scratch_.rij_used == scratch_.rij_pool.size()) {
      scratch_.rij_pool.emplace_back();
    }
    MismatchArray& out = scratch_.rij_pool[scratch_.rij_used++];
    out = scratch_.pattern_lcp->MismatchesBetween(i, j, overlap, overlap);
    return out;
  }

  void ReportAt(int32_t node, int32_t mismatches, int32_t mnode = -1) {
    (void)mnode;
    BWTK_TRACE_SPAN(trace_, "locate");
    ++stats_.completed_paths;
    mtree_.MarkLeaf();
    for (const size_t pos : index_.Locate(dag_[node].range, m_)) {
      results_.push_back({pos, mismatches});
    }
  }

  const FmIndex& index_;
  const std::vector<DnaCode>& r_;
  const size_t m_;
  const int32_t k_;
  const AlgorithmAOptions::Reuse reuse_;
  const bool use_tau_;
  const bool use_prefix_table_;
  // The batch-scoped shared memo, or nullptr (the default) for the
  // self-contained per-query search.
  SubtreeMemo* const memo_;
  const uint32_t memo_slot_;
  uint32_t memo_max_depth_ = 0;
  uint32_t memo_min_suffix_ = 0;
  uint64_t memo_lookups_ = 0;
  uint64_t memo_hits_ = 0;
  // The thread's active trace, hoisted once per query so per-node hooks are
  // a single null check (no TLS access in the enumeration loop).
  obs::Trace* const trace_ = BWTK_TRACE_ACTIVE();

  // Scratch-owned buffers, reset on entry and reused across queries.
  AlgorithmAScratch::Impl& scratch_;
  std::vector<DagNode>& dag_;
  EpochMap& node_of_range_;
  BumpPool<ChainRec>& chains_;
  BumpPool<int32_t>& chain_nodes_;
  BumpPool<DnaCode>& chain_symbols_;
  BumpPool<int32_t>& chain_mms_;
  MTree& mtree_;
  std::vector<Frame>& stack_;
  std::vector<PendingCapture>& captures_;
  std::vector<int32_t>& tau_;
  std::vector<uint64_t>& suffix_hashes_;

  std::vector<Occurrence> results_;
  SearchStats stats_;
};

}  // namespace

std::vector<Occurrence> AlgorithmA::Search(const std::vector<DnaCode>& pattern,
                                           int32_t k,
                                           SearchStats* stats) const {
  AlgorithmAScratch scratch;
  return Search(pattern, k, stats, &scratch);
}

std::vector<Occurrence> AlgorithmA::Search(const std::vector<DnaCode>& pattern,
                                           int32_t k, SearchStats* stats,
                                           AlgorithmAScratch* scratch) const {
  return Search(pattern, k, stats, scratch, nullptr, 0);
}

std::vector<Occurrence> AlgorithmA::Search(const std::vector<DnaCode>& pattern,
                                           int32_t k, SearchStats* stats,
                                           AlgorithmAScratch* scratch,
                                           SubtreeMemo* memo,
                                           uint32_t memo_slot) const {
  BWTK_SCOPED_HIST_TIMER(kHistQueryNanos);
  SearchContext context(*index_, *scratch->impl_, pattern, k, options_, memo,
                        memo_slot);
  context.Run();
  if (stats != nullptr) *stats = context.stats();
  // Rank work is flushed in bulk here instead of per ExtendAll call so the
  // enumeration loop carries no metrics hooks (see FmIndex::Extend). The
  // engine does exactly one ExtendAll (= two RankAlls) per
  // kDnaAlphabetSize-sized extend_calls increment.
  const uint64_t extend_alls =
      context.stats().extend_calls / kDnaAlphabetSize;
  BWTK_METRIC_COUNT2(kCounterExtendAllCalls, extend_alls,
                     kCounterRankAllCalls, 2 * extend_alls);
  BWTK_METRIC_OBSERVE(kHistHitsPerQuery, context.results().size());
  return std::move(context.results());
}

}  // namespace bwtk
