#include "search/algorithm_a.h"

#include <algorithm>
#include <array>
#include <optional>
#include <unordered_map>

#include "mismatch/kangaroo.h"
#include "mismatch/mismatch_array.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "search/mtree.h"
#include "search/tau_heuristic.h"
#include "util/logging.h"

namespace bwtk {

namespace {

constexpr int32_t kNoChild = -1;

// Open-addressing hash table from packed rank ranges to DAG node ids. The
// paper's hash table of pairs sits on the search's hot path (one probe per
// materialized node), so this is a flat linear-probing map instead of
// std::unordered_map — no per-node allocation, one cache line per probe.
//
// Clear() is epoch-based: a slot is live only when its epoch stamp matches
// the current epoch, so resetting between queries is O(1) instead of a
// table-wide wipe. The table only ever grows, which is exactly what a
// reusable scratch wants.
class RangeMap {
 public:
  RangeMap() { Reallocate(1 << 16); }

  // Returns {slot for the value, inserted}. On a hit the existing value is
  // untouched.
  std::pair<int32_t*, bool> TryEmplace(uint64_t key, int32_t value) {
    if ((size_ + 1) * 10 >= capacity() * 7) Rehash(capacity() * 2);
    size_t slot = Mix(key) & mask_;
    while (epochs_[slot] == epoch_) {
      if (keys_[slot] == key) return {&values_[slot], false};
      slot = (slot + 1) & mask_;
    }
    keys_[slot] = key;
    values_[slot] = value;
    epochs_[slot] = epoch_;
    ++size_;
    return {&values_[slot], true};
  }

  // Invalidates every entry while keeping the table's capacity.
  void Clear() {
    size_ = 0;
    if (++epoch_ == 0) {  // wrapped: stamps from 2^32 queries ago are stale
      std::fill(epochs_.begin(), epochs_.end(), uint32_t{0});
      epoch_ = 1;
    }
  }

 private:
  static uint64_t Mix(uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return x;
  }

  size_t capacity() const { return keys_.size(); }

  void Reallocate(size_t new_capacity) {
    keys_.assign(new_capacity, 0);
    values_.assign(new_capacity, 0);
    epochs_.assign(new_capacity, 0);
    mask_ = new_capacity - 1;
    size_ = 0;
    epoch_ = 1;
  }

  void Rehash(size_t new_capacity) {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<int32_t> old_values = std::move(values_);
    std::vector<uint32_t> old_epochs = std::move(epochs_);
    const uint32_t old_epoch = epoch_;
    Reallocate(new_capacity);
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_epochs[i] == old_epoch) TryEmplace(old_keys[i], old_values[i]);
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<int32_t> values_;
  std::vector<uint32_t> epochs_;  // slot live iff epochs_[slot] == epoch_
  size_t mask_ = 0;
  size_t size_ = 0;
  uint32_t epoch_ = 1;
};

// A node of the memoized search DAG. Children depend only on the rank range
// (one search() step per symbol), so every distinct pair <x, [α, β]> is
// expanded exactly once per Search() call — the role of the paper's hash
// table.
struct DagNode {
  FmIndex::Range range;
  std::array<int32_t, kDnaAlphabetSize> child{kNoChild, kNoChild, kNoChild,
                                              kNoChild};
  int32_t chain_id = -1;
  uint8_t child_count = 0;
  bool expanded = false;
};

// A maximal single-continuation run below a DAG node, with its mismatch
// array recorded against the alignment of the first visit. Corresponds to
// the paths through a repeated S-tree node whose mismatch information
// Algorithm A derives instead of re-searching.
struct Chain {
  int32_t first_alignment = 0;    // pattern position of the first chain char
  std::vector<int32_t> node_ids;  // chain nodes, top to bottom
  std::vector<DnaCode> symbols;   // characters along the chain
  // 1-based offsets t with symbols[t-1] != r[first_alignment + t - 1];
  // exhaustive over the whole chain (the path's B_l array).
  MismatchArray mm_vs_first;
};

// One S-tree traversal frame.
struct Frame {
  int32_t node;
  uint32_t depth;  // characters consumed; next char compared to r[depth]
  int32_t mismatches;
  int32_t mnode;  // current M-tree node
};

}  // namespace

// The buffers one Search call needs, owned across calls so capacity is
// reused. Reset() invalidates contents without releasing memory (the chain
// store is a slot pool: inner vectors keep their capacity too).
struct AlgorithmAScratch::Impl {
  std::vector<DagNode> dag;
  RangeMap node_of_range;
  std::vector<Chain> chains;  // slot pool; [0, chains_used) are live
  size_t chains_used = 0;
  std::unordered_map<uint64_t, MismatchArray> rij_cache;
  std::optional<PatternLcp> pattern_lcp;
  MTree mtree;
  std::vector<Frame> stack;
  std::vector<int32_t> tau;

  void Reset() {
    dag.clear();
    node_of_range.Clear();
    chains_used = 0;
    rij_cache.clear();
    pattern_lcp.reset();
    mtree.Reset();
    stack.clear();
    tau.clear();
  }
};

AlgorithmAScratch::AlgorithmAScratch() : impl_(std::make_unique<Impl>()) {}
AlgorithmAScratch::~AlgorithmAScratch() = default;
AlgorithmAScratch::AlgorithmAScratch(AlgorithmAScratch&&) noexcept = default;
AlgorithmAScratch& AlgorithmAScratch::operator=(AlgorithmAScratch&&) noexcept =
    default;

namespace {

class SearchContext {
 public:
  SearchContext(const FmIndex& index, AlgorithmAScratch::Impl& scratch,
                const std::vector<DnaCode>& pattern, int32_t k,
                const AlgorithmAOptions& options)
      : index_(index),
        r_(pattern),
        m_(pattern.size()),
        k_(k),
        reuse_(options.reuse),
        use_tau_(options.use_tau),
        use_prefix_table_(options.use_prefix_table),
        scratch_(scratch),
        dag_(scratch.dag),
        node_of_range_(scratch.node_of_range),
        chains_(scratch.chains),
        rij_cache_(scratch.rij_cache),
        pattern_lcp_(scratch.pattern_lcp),
        mtree_(scratch.mtree),
        stack_(scratch.stack),
        tau_(scratch.tau) {
    scratch.Reset();
  }

  void Run() {
    if (m_ == 0 || m_ > index_.text_size() || k_ < 0) return;
    if (use_tau_) {
      BWTK_TRACE_SPAN(trace_, "tau_build");
      ComputeTau(index_, r_).swap(tau_);
    }
    if (dag_.capacity() < (1u << 16)) dag_.reserve(1 << 16);
    if (stack_.capacity() < (1u << 10)) stack_.reserve(1 << 10);
    if (!SeedFromPrefixTable()) {
      stack_.push_back(
          {GetOrCreateNode(index_.WholeRange()), 0, 0, mtree_.root()});
    }
    {
      BWTK_SCOPED_TIMER(kPhaseTreeTraversal);
      BWTK_TRACE_SPAN(trace_, "tree_traversal");
      while (!stack_.empty()) {
        Frame frame = stack_.back();
        stack_.pop_back();
        ProcessFrame(frame);
      }
    }
    NormalizeOccurrences(&results_);
    stats_.mtree_nodes = mtree_.node_count();
    stats_.mtree_leaves = mtree_.leaf_count();
  }

  std::vector<Occurrence>& results() { return results_; }
  SearchStats& stats() { return stats_; }

 private:
  // Pushes the depth-q frames a prefix-table-seeded enumeration starts from
  // (one per non-empty Hamming-ball variant of r's q-prefix), with the
  // M-tree paths the stepped walk would have built for them: a mismatching
  // node per substitution and one collapsed matching node per match gap —
  // AddMatching's merge rule makes consecutive matches (and the leading run
  // under the matching root) collapse exactly as in StepChildren. Returns
  // false when the table is absent or inapplicable (pattern shorter than q,
  // k beyond the seeding cap) and the caller must start at the root.
  bool SeedFromPrefixTable() {
    const PrefixIntervalTable* table =
        use_prefix_table_ ? index_.prefix_table() : nullptr;
    if (table == nullptr) return false;
    const uint32_t q = table->q();
    if (m_ < q || k_ > PrefixIntervalTable::kMaxSeedMismatches) return false;
    uint64_t hits = 0;
    table->ForEachVariant(
        r_.data(), k_, [&](const PrefixIntervalTable::Variant& v) {
          SaIndex lo;
          SaIndex hi;
          if (!table->Lookup(v.key, &lo, &hi)) return;
          ++hits;
          ++stats_.stree_nodes;
          BWTK_TRACE_NODE(trace_, q);
          int32_t mnode = mtree_.root();
          uint32_t upto = 0;
          for (int32_t s = 0; s < v.mismatches; ++s) {
            const auto [pos, sym] = v.subs[static_cast<size_t>(s)];
            if (pos > upto) mnode = mtree_.AddMatching(mnode);
            mnode = mtree_.AddMismatching(mnode, sym,
                                          static_cast<int32_t>(pos));
            upto = pos + 1u;
          }
          if (upto < q) mnode = mtree_.AddMatching(mnode);
          if (TauCuts(q, v.mismatches)) {
            mtree_.MarkLeaf();
            ++stats_.tau_pruned;
            return;
          }
          stack_.push_back(
              {GetOrCreateNode({lo, hi}), q, v.mismatches, mnode});
        });
    BWTK_METRIC_COUNT2(kCounterPrefixTableHits, hits,
                       kCounterPrefixTableSkippedSteps, hits * q);
    BWTK_TRACE_PREFIX_HITS(trace_, hits);
    return true;
  }

  // Descends from one frame, following chains inline; pushes sibling
  // branches onto the stack.
  void ProcessFrame(Frame frame) {
    for (;;) {
      if (frame.depth == m_) {
        ReportAt(frame.node, frame.mismatches);
        return;
      }
      Expand(frame.node);
      const DagNode& v = dag_[frame.node];
      if (v.child_count == 0) {
        // Dead end: the spelled string cannot be extended in the text (the
        // paper's <$, i> leaves, e.g. u16 in Fig. 7).
        mtree_.MarkLeaf();
        return;
      }
      if (reuse_ == AlgorithmAOptions::Reuse::kFull && v.child_count == 1) {
        const bool advanced = v.chain_id < 0 ? BuildChainWalk(&frame)
                                             : DerivedChainWalk(&frame);
        if (!advanced) return;
        continue;
      }
      StepChildren(frame);
      return;
    }
  }

  // Expands a DAG node: one search() step per symbol, exactly once ever.
  void Expand(int32_t id) {
    if (dag_[id].expanded) return;
    const FmIndex::Range range = dag_[id].range;
    std::array<int32_t, kDnaAlphabetSize> kids{kNoChild, kNoChild, kNoChild,
                                               kNoChild};
    uint8_t count = 0;
    FmIndex::Range next[kDnaAlphabetSize];
    index_.ExtendAll(range, next);
    stats_.extend_calls += kDnaAlphabetSize;
    for (DnaCode c = 0; c < kDnaAlphabetSize; ++c) {
      if (next[c].empty()) continue;
      kids[c] = GetOrCreateNode(next[c]);  // may reallocate dag_
      ++count;
    }
    DagNode& v = dag_[id];
    v.child = kids;
    v.child_count = count;
    v.expanded = true;
  }

  int32_t GetOrCreateNode(FmIndex::Range range) {
    if (reuse_ == AlgorithmAOptions::Reuse::kNone) {
      dag_.push_back(DagNode{range, {}, -1, 0, false});
      return static_cast<int32_t>(dag_.size() - 1);
    }
    const uint64_t key = (static_cast<uint64_t>(
                              static_cast<uint32_t>(range.lo))
                          << 32) |
                         static_cast<uint32_t>(range.hi);
    const auto [slot, inserted] =
        node_of_range_.TryEmplace(key, static_cast<int32_t>(dag_.size()));
    if (!inserted) {
      ++stats_.reused_nodes;
      return *slot;
    }
    dag_.push_back(DagNode{range, {}, -1, 0, false});
    return *slot;
  }

  // Branching step: at most one child matches r[depth]; the rest are
  // mismatching nodes of the S-tree.
  void StepChildren(const Frame& frame) {
    const DnaCode expected = r_[frame.depth];
    const std::array<int32_t, kDnaAlphabetSize> kids = dag_[frame.node].child;
    for (DnaCode c = 0; c < kDnaAlphabetSize; ++c) {
      if (kids[c] == kNoChild) continue;
      ++stats_.stree_nodes;
      BWTK_TRACE_NODE(trace_, frame.depth + 1);
      int32_t q = frame.mismatches;
      int32_t mnode = frame.mnode;
      if (c == expected) {
        mnode = mtree_.AddMatching(mnode);
      } else {
        ++q;
        mnode = mtree_.AddMismatching(mnode, c,
                                      static_cast<int32_t>(frame.depth));
        if (q > k_) {
          mtree_.MarkLeaf();
          ++stats_.budget_pruned;
          continue;
        }
      }
      if (TauCuts(frame.depth + 1, q)) {
        mtree_.MarkLeaf();
        ++stats_.tau_pruned;
        continue;
      }
      stack_.push_back({kids[c], frame.depth + 1, q, mnode});
    }
  }

  // Hands out the next free slot of the chain pool without marking it live;
  // CommitChain() does that once the walk decides the run is worth keeping.
  Chain& NextChainSlot() {
    if (scratch_.chains_used == chains_.size()) {
      chains_.emplace_back();
    }
    Chain& chain = chains_[scratch_.chains_used];
    chain.first_alignment = 0;
    chain.node_ids.clear();
    chain.symbols.clear();
    chain.mm_vs_first.clear();
    return chain;
  }

  int32_t CommitChain() {
    return static_cast<int32_t>(scratch_.chains_used++);
  }

  // First walk through a single-continuation run: records the chain and its
  // mismatch array against the current alignment while walking it.
  // Returns true if `frame` advanced past the chain, false if the path
  // terminated inside it.
  bool BuildChainWalk(Frame* frame) {
    Chain& chain = NextChainSlot();
    chain.first_alignment = static_cast<int32_t>(frame->depth);
    int32_t cur = frame->node;
    int32_t q = frame->mismatches;
    int32_t mnode = frame->mnode;
    enum class End { kOpen, kKilled, kComplete };
    End end = End::kOpen;
    int32_t final_node = kNoChild;
    for (;;) {
      Expand(cur);
      if (dag_[cur].child_count != 1) break;
      DnaCode c = 0;
      while (dag_[cur].child[c] == kNoChild) ++c;
      const int32_t child = dag_[cur].child[c];
      const size_t t = chain.node_ids.size() + 1;  // 1-based chain offset
      const size_t ppos = frame->depth + t - 1;    // pattern position
      chain.node_ids.push_back(child);
      chain.symbols.push_back(c);
      ++stats_.stree_nodes;
      BWTK_TRACE_NODE(trace_, ppos + 1);
      if (c == r_[ppos]) {
        mnode = mtree_.AddMatching(mnode);
      } else {
        chain.mm_vs_first.push_back(static_cast<int32_t>(t));
        ++q;
        mnode = mtree_.AddMismatching(mnode, c, static_cast<int32_t>(ppos));
        if (q > k_) {
          mtree_.MarkLeaf();
          ++stats_.budget_pruned;
          end = End::kKilled;
          break;
        }
      }
      if (ppos + 1 == m_) {
        end = End::kComplete;
        final_node = child;
        break;
      }
      if (TauCuts(ppos + 1, q)) {
        mtree_.MarkLeaf();
        ++stats_.tau_pruned;
        end = End::kKilled;
        break;
      }
      cur = child;
    }
    const size_t length = chain.node_ids.size();
    const int32_t last_node = length > 0 ? chain.node_ids.back() : kNoChild;
    // Short runs are not worth a stored record: a re-visit re-walks them in
    // a handful of O(1) steps anyway. Only runs of at least kMinChainLength
    // nodes are kept for merge-based derivation.
    constexpr size_t kMinChainLength = 4;
    if (length >= kMinChainLength) {
      dag_[frame->node].chain_id = CommitChain();
      BWTK_METRIC_COUNT(kCounterChainBuilds);
      BWTK_METRIC_OBSERVE(kHistChainLength, length);
    }
    if (end == End::kComplete) {
      ReportAt(final_node, q, mnode);
      return false;
    }
    if (end == End::kKilled) return false;
    BWTK_DCHECK_GT(length, 0u);  // entry had child_count == 1
    frame->node = last_node;
    frame->depth += static_cast<uint32_t>(length);
    frame->mismatches = q;
    frame->mnode = mnode;
    return true;
  }

  // Re-entry into a stored chain at a (usually different) alignment j: the
  // chain's mismatch structure against r[j..] is derived from the stored
  // array (vs r[i..]) and R_ij — the paper's node-creation over D[u'].
  // Offsets beyond the derivation horizon (the i > j case) fall back to
  // direct comparison; a chain shorter than the pattern remainder resumes
  // real search steps afterwards (the extension step).
  bool DerivedChainWalk(Frame* frame) {
    BWTK_SCOPED_TIMER(kPhaseMerge);
    BWTK_TRACE_SPAN(trace_, "merge");
    BWTK_METRIC_COUNT(kCounterMergeCalls);
    const Chain& chain = chains_[dag_[frame->node].chain_id];
    const size_t i = static_cast<size_t>(chain.first_alignment);
    const size_t j = frame->depth;
    const size_t lambda = chain.node_ids.size();
    const size_t need = m_ - j;
    ++stats_.derived_runs;

    static const MismatchArray kEmptyArray;
    const MismatchArray* rij = &kEmptyArray;
    size_t horizon = lambda;
    if (i != j) {
      rij = &GetRij(i, j);
      horizon = std::min(horizon, m_ - std::max(i, j));
    }
    horizon = std::min(horizon, need);
    const size_t limit = std::min(need, lambda);

    int32_t q = frame->mismatches;
    int32_t mnode = frame->mnode;
    size_t last_event = 0;
    bool killed = false;
    auto on_mismatch = [&](size_t t) {
      if (t > last_event + 1) mnode = mtree_.AddMatching(mnode);
      ++q;
      mnode = mtree_.AddMismatching(mnode, chain.symbols[t - 1],
                                    static_cast<int32_t>(j + t - 1));
      last_event = t;
      if (q > k_) {
        mtree_.MarkLeaf();
        ++stats_.budget_pruned;
        killed = true;
      } else if (TauCuts(j + t, q)) {
        mtree_.MarkLeaf();
        ++stats_.tau_pruned;
        killed = true;
      }
    };

    // Merge the two mismatch arrays (Proposition 1): offsets present in
    // only one are mismatches outright; common offsets compare the chain
    // character against r[j + t - 1].
    size_t p = 0;
    size_t s = 0;
    const MismatchArray& mm = chain.mm_vs_first;
    while (!killed) {
      const size_t t1 =
          p < mm.size() ? static_cast<size_t>(mm[p]) : SIZE_MAX;
      const size_t t2 =
          s < rij->size() ? static_cast<size_t>((*rij)[s]) : SIZE_MAX;
      const size_t t = std::min(t1, t2);
      if (t > horizon) break;
      if (t1 == t2) {
        if (chain.symbols[t - 1] != r_[j + t - 1]) on_mismatch(t);
        ++p;
        ++s;
      } else if (t1 < t2) {
        on_mismatch(t);
        ++p;
      } else {
        on_mismatch(t);
        ++s;
      }
    }
    // Beyond the horizon the derivation is blind: compare directly.
    for (size_t t = horizon + 1; t <= limit && !killed; ++t) {
      ++stats_.stree_nodes;
      BWTK_TRACE_NODE(trace_, j + t);
      if (chain.symbols[t - 1] != r_[j + t - 1]) on_mismatch(t);
    }
    if (killed) return false;
    if (need <= lambda) {
      if (need > last_event) mnode = mtree_.AddMatching(mnode);
      ReportAt(chain.node_ids[need - 1], q, mnode);
      return false;
    }
    if (lambda > last_event) mnode = mtree_.AddMatching(mnode);
    frame->node = chain.node_ids.back();
    frame->depth = static_cast<uint32_t>(j + lambda);
    frame->mismatches = q;
    frame->mnode = mnode;
    return true;
  }

  // True when the τ(i) lower bound proves no occurrence can complete from
  // pattern position `next_pos` with `q` mismatches already spent.
  bool TauCuts(size_t next_pos, int32_t q) const {
    return use_tau_ && next_pos < tau_.size() && k_ - q < tau_[next_pos];
  }

  // R_ij: mismatch offsets between r[i..] and r[j..] over their overlap,
  // computed exactly with kangaroo jumps and cached per (i, j).
  const MismatchArray& GetRij(size_t i, size_t j) {
    const uint64_t key = static_cast<uint64_t>(i) * (m_ + 1) + j;
    const auto it = rij_cache_.find(key);
    if (it != rij_cache_.end()) {
      BWTK_METRIC_COUNT(kCounterRijCacheHits);
      return it->second;
    }
    BWTK_SCOPED_TIMER(kPhaseRiBuild);
    BWTK_TRACE_SPAN(trace_, "ri_build");
    BWTK_METRIC_COUNT(kCounterRijBuilds);
    if (!pattern_lcp_.has_value()) {
      auto built = PatternLcp::Build(r_);
      BWTK_CHECK(built.ok()) << built.status().ToString();
      pattern_lcp_ = std::move(built).value();
    }
    const size_t overlap = m_ - std::max(i, j);
    return rij_cache_
        .emplace(key, pattern_lcp_->MismatchesBetween(i, j, overlap, overlap))
        .first->second;
  }

  void ReportAt(int32_t node, int32_t mismatches, int32_t mnode = -1) {
    (void)mnode;
    BWTK_TRACE_SPAN(trace_, "locate");
    ++stats_.completed_paths;
    mtree_.MarkLeaf();
    for (const size_t pos : index_.Locate(dag_[node].range, m_)) {
      results_.push_back({pos, mismatches});
    }
  }

  const FmIndex& index_;
  const std::vector<DnaCode>& r_;
  const size_t m_;
  const int32_t k_;
  const AlgorithmAOptions::Reuse reuse_;
  const bool use_tau_;
  const bool use_prefix_table_;
  // The thread's active trace, hoisted once per query so per-node hooks are
  // a single null check (no TLS access in the enumeration loop).
  obs::Trace* const trace_ = BWTK_TRACE_ACTIVE();

  // Scratch-owned buffers, reset on entry and reused across queries.
  AlgorithmAScratch::Impl& scratch_;
  std::vector<DagNode>& dag_;
  RangeMap& node_of_range_;
  std::vector<Chain>& chains_;
  std::unordered_map<uint64_t, MismatchArray>& rij_cache_;
  std::optional<PatternLcp>& pattern_lcp_;
  MTree& mtree_;
  std::vector<Frame>& stack_;
  std::vector<int32_t>& tau_;

  std::vector<Occurrence> results_;
  SearchStats stats_;
};

}  // namespace

std::vector<Occurrence> AlgorithmA::Search(const std::vector<DnaCode>& pattern,
                                           int32_t k,
                                           SearchStats* stats) const {
  AlgorithmAScratch scratch;
  return Search(pattern, k, stats, &scratch);
}

std::vector<Occurrence> AlgorithmA::Search(const std::vector<DnaCode>& pattern,
                                           int32_t k, SearchStats* stats,
                                           AlgorithmAScratch* scratch) const {
  BWTK_SCOPED_HIST_TIMER(kHistQueryNanos);
  SearchContext context(*index_, *scratch->impl_, pattern, k, options_);
  context.Run();
  if (stats != nullptr) *stats = context.stats();
  // Rank work is flushed in bulk here instead of per ExtendAll call so the
  // enumeration loop carries no metrics hooks (see FmIndex::Extend). The
  // engine does exactly one ExtendAll (= two RankAlls) per
  // kDnaAlphabetSize-sized extend_calls increment.
  const uint64_t extend_alls =
      context.stats().extend_calls / kDnaAlphabetSize;
  BWTK_METRIC_COUNT2(kCounterExtendAllCalls, extend_alls,
                     kCounterRankAllCalls, 2 * extend_alls);
  BWTK_METRIC_OBSERVE(kHistHitsPerQuery, context.results().size());
  return std::move(context.results());
}

}  // namespace bwtk
