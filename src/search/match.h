// Shared result and statistics types for the k-mismatch search engines.

#ifndef BWTK_SEARCH_MATCH_H_
#define BWTK_SEARCH_MATCH_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace bwtk {

/// One approximate occurrence of the pattern in the target.
struct Occurrence {
  /// Start position in the target (0-based).
  size_t position = 0;
  /// Hamming distance between the pattern and target[position ..].
  int32_t mismatches = 0;

  bool operator==(const Occurrence&) const = default;
  auto operator<=>(const Occurrence&) const = default;
};

/// Instrumentation counters filled by the search engines. All counters are
/// per-Search-call; `operator+=` aggregates them across queries (that merge
/// is associative and commutative — each field is an independent sum — which
/// is what lets BatchSearcher combine per-worker totals in any grouping).
///
/// Each counter measures a quantity the paper reasons about; the mapping:
///
/// | field             | paper quantity (section)                          |
/// |-------------------|---------------------------------------------------|
/// | `stree_nodes`     | S-tree pairs <x, [α, β]> enumerated — the tree of |
/// |                   | search sequences of Section IV.B (Definition 2)   |
/// | `extend_calls`    | search() invocations, i.e. the rankall lookups of |
/// |                   | Section III.A the cost model charges per step     |
/// | `completed_paths` | search sequences reaching |r| — reported ranges   |
/// |                   | of Section IV.B's enumeration                     |
/// | `tau_pruned`      | cut-offs by the τ(i) bound of Section IV.A        |
/// | `budget_pruned`   | cut-offs by the k-mismatch budget (Section IV.B)  |
/// | `mtree_nodes`     | nodes of the mismatching tree D, Section IV.D     |
/// |                   | (Definition 4: matching <-,0> + mismatching <x,i>)|
/// | `mtree_leaves`    | the paper's n' — the output-sensitive size its    |
/// |                   | O(kn' + n + m log m) bound and Table 2 (Section V)|
/// |                   | are stated in                                     |
/// | `reused_nodes`    | hash-table hits of Algorithm A lines 4-9 (Section |
/// |                   | IV.C): repeated pairs whose children are derived  |
/// | `derived_runs`    | chain re-entries resolved by merge() / R_ij       |
/// |                   | (Proposition 1, node-creation of Section IV.D)    |
///
/// SearchStats is the flat, per-engine layer of instrumentation. The
/// process-wide registry in obs/metrics.h adds per-phase wall-clock timers
/// and histograms on top, and obs/report.h serializes both to the JSON
/// schema documented in docs/OBSERVABILITY.md.
struct SearchStats {
  /// S-tree nodes materialized (pairs <x, [α, β]> pushed).
  uint64_t stree_nodes = 0;
  /// Calls to the FM-index search()/Extend() primitive (rank work).
  uint64_t extend_calls = 0;
  /// Paths terminated at full pattern length (reported ranges).
  uint64_t completed_paths = 0;
  /// Branches cut by the τ(i) heuristic (BWT-baseline only).
  uint64_t tau_pruned = 0;
  /// Branches cut by the mismatch budget.
  uint64_t budget_pruned = 0;

  // --- Algorithm A specific ---------------------------------------------
  /// M-tree nodes created (matching <-,0> + mismatching <x,i>).
  uint64_t mtree_nodes = 0;
  /// M-tree leaves: the paper's n' (Table 2).
  uint64_t mtree_leaves = 0;
  /// Hash-table hits: nodes whose subtree was derived, not re-searched.
  uint64_t reused_nodes = 0;
  /// Match-run skips performed via merged mismatch arrays.
  uint64_t derived_runs = 0;

  bool operator==(const SearchStats&) const = default;

  SearchStats& operator+=(const SearchStats& other) {
    stree_nodes += other.stree_nodes;
    extend_calls += other.extend_calls;
    completed_paths += other.completed_paths;
    tau_pruned += other.tau_pruned;
    budget_pruned += other.budget_pruned;
    mtree_nodes += other.mtree_nodes;
    mtree_leaves += other.mtree_leaves;
    reused_nodes += other.reused_nodes;
    derived_runs += other.derived_runs;
    return *this;
  }
};

/// Canonical ordering applied before returning results so the engines are
/// output-comparable: by position, then mismatch count.
inline void NormalizeOccurrences(std::vector<Occurrence>* occurrences) {
  std::sort(occurrences->begin(), occurrences->end());
}

}  // namespace bwtk

#endif  // BWTK_SEARCH_MATCH_H_
