#include "search/searcher.h"

namespace bwtk {

Result<KMismatchSearcher> KMismatchSearcher::Build(
    const std::vector<DnaCode>& genome) {
  return Build(genome, FmIndex::Options());
}

Result<KMismatchSearcher> KMismatchSearcher::Build(
    const std::vector<DnaCode>& genome, const FmIndex::Options& options) {
  if (genome.empty()) {
    return Status::InvalidArgument("genome must not be empty");
  }
  BWTK_ASSIGN_OR_RETURN(auto index, FmIndex::Build(genome, options));
  return KMismatchSearcher(std::move(index));
}

Result<KMismatchSearcher> KMismatchSearcher::Build(std::string_view genome) {
  BWTK_ASSIGN_OR_RETURN(auto codes, EncodeDna(genome));
  return Build(codes);
}

Result<KMismatchSearcher> KMismatchSearcher::FromIndexFile(
    const std::string& path) {
  BWTK_ASSIGN_OR_RETURN(auto index, FmIndex::LoadFromFile(path));
  return KMismatchSearcher(std::move(index));
}

std::vector<Occurrence> KMismatchSearcher::Search(
    const std::vector<DnaCode>& pattern, int32_t k,
    SearchStats* stats) const {
  const AlgorithmA engine(&index_);
  return engine.Search(pattern, k, stats);
}

std::vector<Occurrence> KMismatchSearcher::Search(
    const std::vector<DnaCode>& pattern, int32_t k, SearchStats* stats,
    AlgorithmAScratch* scratch) const {
  const AlgorithmA engine(&index_);
  return engine.Search(pattern, k, stats, scratch);
}

Result<std::vector<Occurrence>> KMismatchSearcher::Search(
    std::string_view pattern, int32_t k, SearchStats* stats) const {
  BWTK_ASSIGN_OR_RETURN(auto codes, EncodeDna(pattern));
  return Search(codes, k, stats);
}

}  // namespace bwtk
