// Batch-scoped shared subtree memo for Algorithm A.
//
// Algorithm A's reuse machinery (algorithm_a.h) stops at the boundary of one
// query: the range hash table, chain store, and M-tree are rebuilt from
// scratch per Search call. But the subtree a search explores below a frame
// is fully determined by (FM-index, rank range, remaining mismatch budget,
// remaining pattern suffix) — none of which mention the query's prefix — so
// two queries of one batch that reach the same rank range with the same
// budget and an identical pattern suffix explore byte-identical subtrees.
// Reads from one sample share long suffixes and exact duplicates constantly;
// a serving tier sees heavily skewed query streams. This memo lets workers
// publish completed subtree results once and every later query skip the
// whole subtree.
//
// Correctness argument (why a hit is byte-identical to exploration):
//  * Children of a DAG node depend only on the rank range (one backward
//    search step per symbol).
//  * The budget test is `mismatches_so_far > k`, i.e. (q - q_at_frame) >
//    (k - q_at_frame): only the *remaining* budget matters.
//  * The τ(i) cut (tau_heuristic.h) compares the remaining budget against
//    τ of a pattern *suffix* — τ(i) depends only on r[i..m) and the text.
//  * A completed path at depth m locates positions n - m - p; for a fixed
//    suffix of length L = m - d the quantity position + d = n - L - p is
//    independent of the total pattern length m, so results stored as
//    (position + depth, mismatches - mismatches_at_frame) replay exactly
//    under any frame with the same (range, budget, suffix).
//
// What a hit does NOT replay is the per-query instrumentation of the
// skipped subtree (stree_nodes, M-tree growth, completed_paths): those
// count work *done*, and a memo hit's whole point is not doing it. Hits are
// byte-identical; SearchStats under the memo reflect the reduced work. The
// memo is off by default and opt-in per BatchOptions::shared_memo.
//
// Concurrency: the table is sharded 16 ways, each shard a std::shared_mutex
// over a node-based map. Lookups take the shared lock; publishes take the
// exclusive lock; entry values are immutable once published and node-based
// storage keeps their addresses stable across rehash, so a lookup may
// return a borrowed pointer that stays valid until Clear(). Clear() is only
// legal at a quiescent point (no Search in flight) — BatchSearcher calls it
// between batches.

#ifndef BWTK_SEARCH_SUBTREE_MEMO_H_
#define BWTK_SEARCH_SUBTREE_MEMO_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "alphabet/dna.h"

namespace bwtk {

/// Knobs for the shared memo, carried in BatchOptions::shared_memo.
struct SharedMemoOptions {
  /// Master switch; everything else is ignored while false.
  bool enabled = false;

  /// Only frames at depth <= max_capture_depth are memo candidates.
  /// Shallow frames root large subtrees (big skips, few distinct keys);
  /// deep frames would flood the table with tiny entries — and the number
  /// of eligible frames (hence per-frame probe overhead on streams that
  /// never hit) grows multiplicatively with depth, while duplicate queries
  /// replay from their shallowest shared frame anyway.
  uint32_t max_capture_depth = 4;

  /// Only frames with at least this many pattern characters left are memo
  /// candidates — skipping a short tail is not worth the lookup.
  uint32_t min_suffix_len = 12;

  /// Soft capacity across all shards. Publishes are rejected once a shard's
  /// slice of this budget is spent (lookups still hit existing entries);
  /// there is no eviction — a batch-scoped memo is cleared wholesale.
  size_t capacity_bytes = size_t{64} << 20;

  /// Two-touch admission: a missed key is only *advised for capture* (see
  /// Lookup) after it has already missed once before, tracked in a
  /// fixed-size fingerprint table of 2^probation_bits slots. All-unique
  /// query streams then never pay the capture/publish cost — every key
  /// misses exactly once — while any repeated subtree is published on its
  /// second appearance and served from its third on. 0 disables probation:
  /// every miss is advised for capture immediately.
  uint32_t probation_bits = 16;
};

/// One stored occurrence of a completed subtree, in frame-relative form:
/// `position_plus_depth` is the occurrence position plus the capture
/// frame's depth (invariant across total pattern lengths for a fixed
/// suffix), `mismatch_delta` the mismatches accumulated inside the subtree.
struct MemoOccurrence {
  uint64_t position_plus_depth = 0;
  int32_t mismatch_delta = 0;
};

/// The shared memo. Thread-safe per the file comment.
class SubtreeMemo {
 public:
  explicit SubtreeMemo(const SharedMemoOptions& options);
  ~SubtreeMemo();
  SubtreeMemo(const SubtreeMemo&) = delete;
  SubtreeMemo& operator=(const SubtreeMemo&) = delete;

  /// A borrowed, immutable view of one published subtree. Valid until
  /// Clear().
  using Entry = std::vector<MemoOccurrence>;

  /// Rolling suffix hash, extended right-to-left: callers compute
  /// hash(r[d..m)) = ExtendSuffixHash(hash(r[d+1..m)), r[d]) in one O(m)
  /// backward pass per query and hand the per-depth values to
  /// Lookup/Publish, instead of rehashing an O(m) suffix per probed frame.
  static constexpr uint64_t kEmptySuffixHash = 0xcbf29ce484222325ULL;
  static uint64_t ExtendSuffixHash(uint64_t tail_hash, DnaCode first) {
    return tail_hash * 0x100000001b3ULL + first + 1;
  }

  /// Looks up the subtree keyed by (index_slot, rank range [lo, hi),
  /// remaining budget, pattern suffix). Returns the published entry or
  /// nullptr. `suffix` points at the query pattern's tail (no copy is
  /// made); `suffix_hash` must be its rolling hash (see ExtendSuffixHash).
  /// On a miss, when `advise_capture` is non-null it is set to whether the
  /// caller should capture and publish this subtree (two-touch admission,
  /// see SharedMemoOptions::probation_bits).
  const Entry* Lookup(uint32_t index_slot, uint32_t lo, uint32_t hi,
                      int32_t budget, const DnaCode* suffix,
                      size_t suffix_len, uint64_t suffix_hash,
                      bool* advise_capture) const;

  /// Publishes a completed subtree. First publisher wins (all publishers
  /// compute identical entries); rejected silently once the shard's
  /// capacity slice is spent.
  void Publish(uint32_t index_slot, uint32_t lo, uint32_t hi, int32_t budget,
               const DnaCode* suffix, size_t suffix_len,
               uint64_t suffix_hash, Entry entry);

  /// Drops every entry (invalidating borrowed Entry pointers). Callers must
  /// be quiescent — no Lookup/Publish in flight.
  void Clear();

  const SharedMemoOptions& options() const { return options_; }

  /// Approximate bytes retained across all shards.
  size_t MemoryUsage() const;

  /// Entries currently published.
  size_t size() const;

 private:
  struct Shard;
  static constexpr size_t kNumShards = 16;

  SharedMemoOptions options_;
  std::unique_ptr<Shard[]> shards_;
  // Probation fingerprints (two-touch admission). Plain relaxed atomics:
  // lost races just delay or duplicate a capture advisory, never affect
  // results. Empty (size 0) when probation_bits == 0.
  mutable std::vector<std::atomic<uint64_t>> probation_;
  // Total published entries, for the empty-memo lookup fast path: an
  // all-unique stream under two-touch admission never publishes, so every
  // probe can skip the shard lock and map find entirely. A stale zero just
  // misses (benign); publishes release, probes acquire.
  std::atomic<size_t> entry_count_{0};
};

}  // namespace bwtk

#endif  // BWTK_SEARCH_SUBTREE_MEMO_H_
