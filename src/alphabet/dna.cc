#include "alphabet/dna.h"

#include <array>

namespace bwtk {

namespace {

constexpr std::array<int8_t, 256> BuildCharTable() {
  std::array<int8_t, 256> table{};
  for (auto& v : table) v = -1;
  table['a'] = table['A'] = 0;
  table['c'] = table['C'] = 1;
  table['g'] = table['G'] = 2;
  table['t'] = table['T'] = 3;
  return table;
}

constexpr std::array<int8_t, 256> kCharTable = BuildCharTable();
constexpr char kCodeTable[4] = {'a', 'c', 'g', 't'};

}  // namespace

bool IsDnaChar(char c) {
  return kCharTable[static_cast<unsigned char>(c)] >= 0;
}

DnaCode CharToCode(char c) {
  const int8_t v = kCharTable[static_cast<unsigned char>(c)];
  return v >= 0 ? static_cast<DnaCode>(v) : DnaCode{0};
}

char CodeToChar(DnaCode code) { return kCodeTable[code & 3]; }

Result<std::vector<DnaCode>> EncodeDna(std::string_view text) {
  std::vector<DnaCode> codes;
  codes.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    const int8_t v = kCharTable[static_cast<unsigned char>(text[i])];
    if (v < 0) {
      return Status::InvalidArgument("non-DNA character '" +
                                     std::string(1, text[i]) +
                                     "' at offset " + std::to_string(i));
    }
    codes.push_back(static_cast<DnaCode>(v));
  }
  return codes;
}

std::string DecodeDna(const std::vector<DnaCode>& codes) {
  std::string out;
  out.reserve(codes.size());
  for (DnaCode c : codes) out.push_back(CodeToChar(c));
  return out;
}

std::vector<DnaCode> ReverseComplement(const std::vector<DnaCode>& codes) {
  std::vector<DnaCode> out;
  out.reserve(codes.size());
  for (auto it = codes.rbegin(); it != codes.rend(); ++it) {
    out.push_back(ComplementCode(*it));
  }
  return out;
}

}  // namespace bwtk
