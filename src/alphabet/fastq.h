// FASTQ parsing and writing (reads with per-base quality scores), the
// format produced by sequencers and by our wgsim-like read simulator.

#ifndef BWTK_ALPHABET_FASTQ_H_
#define BWTK_ALPHABET_FASTQ_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "alphabet/dna.h"
#include "util/status.h"

namespace bwtk {

/// One FASTQ record. `quality` is the raw Phred+33 string and always has
/// the same length as `sequence`.
struct FastqRecord {
  std::string name;
  std::vector<DnaCode> sequence;
  std::string quality;
};

/// Parses every record from a FASTQ stream. Ambiguous bases are replaced
/// with 'a' (reads with Ns are near-universal; rejecting them would make
/// the format unusable in practice).
Result<std::vector<FastqRecord>> ParseFastq(std::istream& in);

/// Parses a FASTQ string (convenience for tests).
Result<std::vector<FastqRecord>> ParseFastqString(const std::string& text);

/// Reads a FASTQ file from disk.
Result<std::vector<FastqRecord>> ReadFastqFile(const std::string& path);

/// Writes records in four-line FASTQ form.
Status WriteFastq(std::ostream& out, const std::vector<FastqRecord>& records);

/// Writes records to a file.
Status WriteFastqFile(const std::string& path,
                      const std::vector<FastqRecord>& records);

}  // namespace bwtk

#endif  // BWTK_ALPHABET_FASTQ_H_
