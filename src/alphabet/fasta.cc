#include "alphabet/fasta.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace bwtk {

namespace {

// Strips a trailing '\r' (CRLF input read in text mode on POSIX).
void StripCarriageReturn(std::string* line) {
  if (!line->empty() && line->back() == '\r') line->pop_back();
}

Status AppendSequenceLine(const std::string& line, size_t line_number,
                          const FastaParseOptions& options,
                          std::vector<DnaCode>* sequence) {
  for (char c : line) {
    if (c == ' ' || c == '\t') continue;
    if (IsDnaChar(c)) {
      sequence->push_back(CharToCode(c));
      continue;
    }
    switch (options.ambiguity) {
      case AmbiguityPolicy::kReject:
        return Status::InvalidArgument(
            "ambiguous or invalid base '" + std::string(1, c) + "' on line " +
            std::to_string(line_number));
      case AmbiguityPolicy::kReplaceWithA:
        sequence->push_back(DnaCode{0});
        break;
      case AmbiguityPolicy::kSkip:
        break;
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<FastaRecord>> ParseFasta(std::istream& in,
                                            const FastaParseOptions& options) {
  std::vector<FastaRecord> records;
  std::string line;
  size_t line_number = 0;
  bool have_record = false;
  while (std::getline(in, line)) {
    ++line_number;
    StripCarriageReturn(&line);
    if (line.empty()) continue;
    if (line[0] == ';') continue;  // legacy FASTA comment
    if (line[0] == '>') {
      FastaRecord record;
      const size_t space = line.find_first_of(" \t");
      if (space == std::string::npos) {
        record.name = line.substr(1);
      } else {
        record.name = line.substr(1, space - 1);
        const size_t desc = line.find_first_not_of(" \t", space);
        if (desc != std::string::npos) record.description = line.substr(desc);
      }
      if (record.name.empty()) {
        return Status::InvalidArgument("empty record name on line " +
                                       std::to_string(line_number));
      }
      records.push_back(std::move(record));
      have_record = true;
      continue;
    }
    if (!have_record) {
      return Status::InvalidArgument(
          "sequence data before first '>' header on line " +
          std::to_string(line_number));
    }
    BWTK_RETURN_IF_ERROR(AppendSequenceLine(line, line_number, options,
                                            &records.back().sequence));
  }
  return records;
}

Result<std::vector<FastaRecord>> ParseFastaString(
    const std::string& text, const FastaParseOptions& options) {
  std::istringstream in(text);
  return ParseFasta(in, options);
}

Result<std::vector<FastaRecord>> ReadFastaFile(
    const std::string& path, const FastaParseOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open FASTA file: " + path);
  return ParseFasta(in, options);
}

Status WriteFasta(std::ostream& out, const std::vector<FastaRecord>& records,
                  int line_width) {
  if (line_width <= 0) {
    return Status::InvalidArgument("line_width must be positive");
  }
  for (const FastaRecord& record : records) {
    out << '>' << record.name;
    if (!record.description.empty()) out << ' ' << record.description;
    out << '\n';
    const auto& seq = record.sequence;
    for (size_t i = 0; i < seq.size(); i += line_width) {
      const size_t end = std::min(seq.size(), i + line_width);
      for (size_t j = i; j < end; ++j) out << CodeToChar(seq[j]);
      out << '\n';
    }
  }
  if (!out) return Status::IoError("FASTA write failed");
  return Status::OK();
}

Status WriteFastaFile(const std::string& path,
                      const std::vector<FastaRecord>& records,
                      int line_width) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return WriteFasta(out, records, line_width);
}

}  // namespace bwtk
