// FASTA parsing and writing.
//
// The paper's experiments read reference genomes from FASTA files; this is
// the substrate the examples use to load real inputs. Parsing is tolerant
// of the formats produced by genome browsers: multi-record files, arbitrary
// line widths, CRLF, and 'N'/ambiguity codes (policy-controlled).

#ifndef BWTK_ALPHABET_FASTA_H_
#define BWTK_ALPHABET_FASTA_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "alphabet/dna.h"
#include "util/status.h"

namespace bwtk {

/// One FASTA record: ">name description" header plus sequence codes.
struct FastaRecord {
  std::string name;         // first whitespace-delimited token after '>'
  std::string description;  // remainder of the header line (may be empty)
  std::vector<DnaCode> sequence;
};

/// How to handle characters outside acgtACGT in FASTA sequence lines.
enum class AmbiguityPolicy {
  /// Fail with InvalidArgument (strict).
  kReject,
  /// Replace each ambiguous base (N, R, Y, ...) with 'a'. Deterministic
  /// stand-in for the common aligner practice of randomizing Ns; keeps runs
  /// indexable without inventing randomness in the parser.
  kReplaceWithA,
  /// Drop ambiguous bases from the sequence.
  kSkip,
};

struct FastaParseOptions {
  AmbiguityPolicy ambiguity = AmbiguityPolicy::kReject;
};

/// Parses every record in a FASTA stream.
Result<std::vector<FastaRecord>> ParseFasta(std::istream& in,
                                            const FastaParseOptions& options =
                                                FastaParseOptions());

/// Parses a FASTA string (convenience for tests).
Result<std::vector<FastaRecord>> ParseFastaString(
    const std::string& text,
    const FastaParseOptions& options = FastaParseOptions());

/// Reads a FASTA file from disk.
Result<std::vector<FastaRecord>> ReadFastaFile(
    const std::string& path,
    const FastaParseOptions& options = FastaParseOptions());

/// Writes records with sequence lines wrapped at `line_width` bases.
Status WriteFasta(std::ostream& out, const std::vector<FastaRecord>& records,
                  int line_width = 70);

/// Writes records to a file.
Status WriteFastaFile(const std::string& path,
                      const std::vector<FastaRecord>& records,
                      int line_width = 70);

}  // namespace bwtk

#endif  // BWTK_ALPHABET_FASTA_H_
