// 2-bit packed DNA sequence.
//
// PackedSequence is the storage format for genome-scale texts (and for the
// BWT array itself): 2 bits/base, word-aligned so the rank structure in
// bwt/occ_table.h can popcount directly over its words. The paper stores
// BWT(s) the same way ("we use 2 bits to represent a character").

#ifndef BWTK_ALPHABET_PACKED_SEQUENCE_H_
#define BWTK_ALPHABET_PACKED_SEQUENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "alphabet/dna.h"
#include "util/logging.h"

namespace bwtk {

/// A DNA sequence stored at 2 bits per base.
class PackedSequence {
 public:
  PackedSequence() = default;

  /// Builds from unpacked codes.
  explicit PackedSequence(const std::vector<DnaCode>& codes);

  /// Adopts raw words (deserialization). `size` is in bases; `words` must
  /// hold at least ceil(size/32) entries.
  PackedSequence(std::vector<uint64_t> words, size_t size)
      : size_(size), words_(std::move(words)) {
    BWTK_CHECK_GE(words_.size() * 32, size_);
  }

  PackedSequence(const PackedSequence&) = default;
  PackedSequence& operator=(const PackedSequence&) = default;
  PackedSequence(PackedSequence&&) = default;
  PackedSequence& operator=(PackedSequence&&) = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Code of the base at `pos`. Requires pos < size().
  DnaCode at(size_t pos) const {
    BWTK_DCHECK_LT(pos, size_);
    return static_cast<DnaCode>((words_[pos >> 5] >> ((pos & 31) * 2)) & 3);
  }

  /// Overwrites the base at `pos`.
  void set(size_t pos, DnaCode code) {
    BWTK_DCHECK_LT(pos, size_);
    const size_t w = pos >> 5;
    const unsigned shift = (pos & 31) * 2;
    words_[w] = (words_[w] & ~(uint64_t{3} << shift)) |
                (static_cast<uint64_t>(code & 3) << shift);
  }

  /// Appends one base.
  void push_back(DnaCode code);

  /// Unpacks [pos, pos+len) into a fresh code vector (clamped to size()).
  std::vector<DnaCode> Slice(size_t pos, size_t len) const;

  /// Full unpacked copy.
  std::vector<DnaCode> Unpack() const { return Slice(0, size_); }

  /// ASCII (lowercase) rendering, mainly for tests and small outputs.
  std::string ToString() const;

  /// Underlying words; 32 bases per word, base i in bits [2(i%32), 2(i%32)+1]
  /// of word i/32. Exposed for the rank structure.
  const std::vector<uint64_t>& words() const { return words_; }

  /// Approximate heap footprint in bytes.
  size_t MemoryUsage() const { return words_.capacity() * sizeof(uint64_t); }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace bwtk

#endif  // BWTK_ALPHABET_PACKED_SEQUENCE_H_
