#include "alphabet/packed_sequence.h"

#include <algorithm>

namespace bwtk {

PackedSequence::PackedSequence(const std::vector<DnaCode>& codes) {
  words_.resize((codes.size() + 31) / 32, 0);
  size_ = codes.size();
  for (size_t i = 0; i < codes.size(); ++i) {
    words_[i >> 5] |= uint64_t{static_cast<uint64_t>(codes[i] & 3)}
                      << ((i & 31) * 2);
  }
}

void PackedSequence::push_back(DnaCode code) {
  if ((size_ & 31) == 0) words_.push_back(0);
  words_[size_ >> 5] |= uint64_t{static_cast<uint64_t>(code & 3)}
                        << ((size_ & 31) * 2);
  ++size_;
}

std::vector<DnaCode> PackedSequence::Slice(size_t pos, size_t len) const {
  std::vector<DnaCode> out;
  if (pos >= size_) return out;
  len = std::min(len, size_ - pos);
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) out.push_back(at(pos + i));
  return out;
}

std::string PackedSequence::ToString() const {
  std::string out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) out.push_back(CodeToChar(at(i)));
  return out;
}

}  // namespace bwtk
