#include "alphabet/fastq.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/logging.h"

namespace bwtk {

namespace {

void StripCarriageReturn(std::string* line) {
  if (!line->empty() && line->back() == '\r') line->pop_back();
}

}  // namespace

Result<std::vector<FastqRecord>> ParseFastq(std::istream& in) {
  std::vector<FastqRecord> records;
  std::string header;
  std::string sequence;
  std::string plus;
  std::string quality;
  size_t line_number = 0;
  while (std::getline(in, header)) {
    ++line_number;
    StripCarriageReturn(&header);
    if (header.empty()) continue;
    if (header[0] != '@') {
      return Status::InvalidArgument("expected '@' header on line " +
                                     std::to_string(line_number));
    }
    if (!std::getline(in, sequence) || !std::getline(in, plus) ||
        !std::getline(in, quality)) {
      return Status::InvalidArgument("truncated FASTQ record starting line " +
                                     std::to_string(line_number));
    }
    line_number += 3;
    StripCarriageReturn(&sequence);
    StripCarriageReturn(&plus);
    StripCarriageReturn(&quality);
    if (plus.empty() || plus[0] != '+') {
      return Status::InvalidArgument("expected '+' separator on line " +
                                     std::to_string(line_number - 1));
    }
    if (quality.size() != sequence.size()) {
      return Status::InvalidArgument(
          "quality length " + std::to_string(quality.size()) +
          " != sequence length " + std::to_string(sequence.size()) +
          " in record ending line " + std::to_string(line_number));
    }
    FastqRecord record;
    const size_t space = header.find_first_of(" \t");
    record.name = header.substr(1, space == std::string::npos
                                       ? std::string::npos
                                       : space - 1);
    record.sequence.reserve(sequence.size());
    for (char c : sequence) {
      record.sequence.push_back(IsDnaChar(c) ? CharToCode(c) : DnaCode{0});
    }
    record.quality = quality;
    records.push_back(std::move(record));
  }
  return records;
}

Result<std::vector<FastqRecord>> ParseFastqString(const std::string& text) {
  std::istringstream in(text);
  return ParseFastq(in);
}

Result<std::vector<FastqRecord>> ReadFastqFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open FASTQ file: " + path);
  return ParseFastq(in);
}

Status WriteFastq(std::ostream& out, const std::vector<FastqRecord>& records) {
  for (const FastqRecord& record : records) {
    BWTK_CHECK_EQ(record.quality.size(), record.sequence.size());
    out << '@' << record.name << '\n';
    for (DnaCode c : record.sequence) out << CodeToChar(c);
    out << "\n+\n" << record.quality << '\n';
  }
  if (!out) return Status::IoError("FASTQ write failed");
  return Status::OK();
}

Status WriteFastqFile(const std::string& path,
                      const std::vector<FastqRecord>& records) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return WriteFastq(out, records);
}

}  // namespace bwtk
