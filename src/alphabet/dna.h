// The DNA alphabet used throughout bwtk.
//
// Internally every sequence is a string of 2-bit codes: a=0, c=1, g=2, t=3.
// The BWT sentinel '$' is *not* part of the code space; index structures
// that need it track its position separately (see bwt/bwt.h). This matches
// the paper's setting ($ < a < c < g < t) while keeping sequences packable
// at 2 bits/base.

#ifndef BWTK_ALPHABET_DNA_H_
#define BWTK_ALPHABET_DNA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace bwtk {

/// 2-bit DNA code. Values 0..3 = a, c, g, t.
using DnaCode = uint8_t;

/// Number of DNA symbols (excluding the sentinel).
inline constexpr int kDnaAlphabetSize = 4;

/// Sentinel character: lexicographically before every base.
inline constexpr char kSentinelChar = '$';

/// True if `c` is one of acgtACGT.
bool IsDnaChar(char c);

/// Maps a/c/g/t (either case) to 0..3. Unknown characters map to 0 ('a');
/// use EncodeDna for validated conversion.
DnaCode CharToCode(char c);

/// Maps 0..3 to 'a'/'c'/'g'/'t'.
char CodeToChar(DnaCode code);

/// Complement code: a<->t, c<->g.
inline DnaCode ComplementCode(DnaCode code) {
  return static_cast<DnaCode>(3 - code);
}

/// Validated conversion of an ASCII DNA string to codes. Characters other
/// than acgtACGT yield InvalidArgument (with the offending offset).
Result<std::vector<DnaCode>> EncodeDna(std::string_view text);

/// Converts codes back to a lowercase ASCII string.
std::string DecodeDna(const std::vector<DnaCode>& codes);

/// Reverse complement of a code sequence.
std::vector<DnaCode> ReverseComplement(const std::vector<DnaCode>& codes);

}  // namespace bwtk

#endif  // BWTK_ALPHABET_DNA_H_
