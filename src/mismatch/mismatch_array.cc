#include "mismatch/mismatch_array.h"

#include <algorithm>

#include "util/logging.h"

namespace bwtk {

MismatchArray MismatchPositionsNaive(std::span<const DnaCode> a,
                                     std::span<const DnaCode> b,
                                     size_t max_count) {
  MismatchArray out;
  const size_t len = std::min(a.size(), b.size());
  for (size_t t = 0; t < len && out.size() < max_count; ++t) {
    if (a[t] != b[t]) out.push_back(static_cast<int32_t>(t + 1));
  }
  return out;
}

int32_t HammingDistanceCapped(std::span<const DnaCode> a,
                              std::span<const DnaCode> b, int32_t cap) {
  BWTK_DCHECK_EQ(a.size(), b.size());
  int32_t distance = 0;
  for (size_t t = 0; t < a.size(); ++t) {
    if (a[t] != b[t]) {
      if (++distance > cap) return cap + 1;
    }
  }
  return distance;
}

Result<ShiftMismatchTable> ShiftMismatchTable::Build(
    const std::vector<DnaCode>& pattern, int32_t k) {
  if (k < 0) return Status::InvalidArgument("k must be non-negative");
  ShiftMismatchTable table;
  table.pattern_size_ = pattern.size();
  table.k_ = k;
  BWTK_ASSIGN_OR_RETURN(table.lcp_, PatternLcp::Build(pattern));
  const size_t m = pattern.size();
  table.shifts_.resize(m == 0 ? 0 : m);
  for (size_t i = 1; i < m; ++i) {
    // Overlap of r[1..m-i] with r[i+1..m] has length m - i.
    table.shifts_[i] =
        table.lcp_.MismatchesBetween(0, i, m - i, table.capacity());
  }
  return table;
}

MismatchArray ShiftMismatchTable::SuffixMismatches(size_t i, size_t j,
                                                   size_t max_count) const {
  BWTK_DCHECK_LE(i, pattern_size_);
  BWTK_DCHECK_LE(j, pattern_size_);
  const size_t overlap = pattern_size_ - std::max(i, j);
  return lcp_.MismatchesBetween(i, j, overlap, max_count);
}

MergedMismatches MergeMismatchArrays(const MismatchArray& a1,
                                     const MismatchArray& a2,
                                     std::span<const DnaCode> beta,
                                     std::span<const DnaCode> gamma,
                                     bool a1_exhaustive, bool a2_exhaustive,
                                     size_t max_count) {
  MergedMismatches merged;
  // Offsets beyond a truncated input may hide mismatches of (α, βγ); the
  // result is only exhaustive up to the earliest truncation point.
  if (!a1_exhaustive && !a1.empty()) {
    merged.horizon = std::min(merged.horizon, a1.back());
  }
  if (!a2_exhaustive && !a2.empty()) {
    merged.horizon = std::min(merged.horizon, a2.back());
  }

  size_t p = 0;
  size_t q = 0;
  auto push = [&](int32_t offset) {
    if (merged.positions.size() < max_count &&
        offset <= merged.horizon) {
      merged.positions.push_back(offset);
    }
  };
  while (p < a1.size() && q < a2.size()) {
    if (a1[p] < a2[q]) {
      // β differs from α here while γ agrees with α, hence β != γ.
      push(a1[p]);
      ++p;
    } else if (a2[q] < a1[p]) {
      push(a2[q]);
      ++q;
    } else {
      // Both differ from α at this offset: compare β and γ directly
      // (step 4 of the paper's merge).
      const size_t t = static_cast<size_t>(a1[p]) - 1;
      const DnaCode b = t < beta.size() ? beta[t] : DnaCode{255};
      const DnaCode g = t < gamma.size() ? gamma[t] : DnaCode{254};
      if (b != g) push(a1[p]);
      ++p;
      ++q;
    }
  }
  // Step 5: append the remainder of whichever input survives.
  for (; p < a1.size(); ++p) push(a1[p]);
  for (; q < a2.size(); ++q) push(a2[q]);
  return merged;
}

}  // namespace bwtk
