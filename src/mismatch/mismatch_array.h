// Mismatch arrays over the pattern (Section IV.B of the paper).
//
// A *mismatch array* lists the 1-based offsets of the first few mismatches
// of two aligned strings, in increasing order ("R[p] = q" means the p-th
// mismatch is at offset q). Three facilities live here:
//
//  * MismatchPositionsNaive — character-by-character oracle.
//  * ShiftMismatchTable     — the paper's R_1 .. R_{m-1}: for shift i, the
//                             first k+2 mismatches between r[1..m-i] and
//                             r[i+1..m]. Built with kangaroo jumps.
//  * MergeMismatchArrays    — the paper's merge(A1, A2, γ1, γ2)
//                             (Proposition 1): derives the mismatch array of
//                             (β, γ) from those of (α, β) and (α, γ) in
//                             O(k), comparing characters only at offsets
//                             present in both inputs.
//
// Truncation caveat: when an input array was cut off at its capacity, the
// merged output is exhaustive only up to the earlier cut-off point. The
// paper handles this by carrying k+2 entries everywhere; we additionally
// report the trusted horizon so callers can fall back to direct comparison
// beyond it instead of silently missing mismatches.

#ifndef BWTK_MISMATCH_MISMATCH_ARRAY_H_
#define BWTK_MISMATCH_MISMATCH_ARRAY_H_

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "alphabet/dna.h"
#include "mismatch/kangaroo.h"
#include "util/status.h"

namespace bwtk {

/// Strictly increasing 1-based mismatch offsets.
using MismatchArray = std::vector<int32_t>;

/// Horizon value meaning "exhaustive over the full overlap".
inline constexpr int32_t kUnboundedHorizon =
    std::numeric_limits<int32_t>::max();

/// First `max_count` mismatch offsets between `a` and `b` over
/// min(a.size(), b.size()) characters, by direct comparison.
MismatchArray MismatchPositionsNaive(std::span<const DnaCode> a,
                                     std::span<const DnaCode> b,
                                     size_t max_count);

/// Total Hamming distance between equal-length spans, early-exiting once it
/// exceeds `cap` (returns cap+1 in that case).
int32_t HammingDistanceCapped(std::span<const DnaCode> a,
                              std::span<const DnaCode> b, int32_t cap);

/// The paper's R_i tables for a pattern r: Shift(i) holds the first k+2
/// mismatch offsets between r[1..m-i] and r[i+1..m] (1-based offsets into
/// the overlap). Construction costs O(m log m) preprocessing + O(mk) jumps.
class ShiftMismatchTable {
 public:
  /// Entries kept per shift: k+2, per the paper ("we need to keep k+2,
  /// rather than k+1 mismatches in each R_i").
  static Result<ShiftMismatchTable> Build(const std::vector<DnaCode>& pattern,
                                          int32_t k);

  /// R_i for shift i in [1, pattern_size). R_0 would be all-equal ([-]).
  const MismatchArray& Shift(size_t i) const { return shifts_[i]; }

  size_t pattern_size() const { return pattern_size_; }
  int32_t k() const { return k_; }

  /// Capacity used per entry (k + 2).
  size_t capacity() const { return static_cast<size_t>(k_) + 2; }

  /// Mismatch offsets between suffixes r[i..] and r[j..] over their common
  /// overlap (the paper's R_ij), computed exactly with kangaroo jumps; up to
  /// `max_count` entries. 0-based suffix starts i, j.
  MismatchArray SuffixMismatches(size_t i, size_t j, size_t max_count) const;

 private:
  ShiftMismatchTable() = default;

  size_t pattern_size_ = 0;
  int32_t k_ = 0;
  PatternLcp lcp_;
  std::vector<MismatchArray> shifts_;  // index 0 unused
};

/// Result of MergeMismatchArrays: `positions` is exhaustive for offsets
/// <= `horizon` and may miss mismatches beyond it.
struct MergedMismatches {
  MismatchArray positions;
  int32_t horizon = kUnboundedHorizon;
};

/// merge(A1, A2, γ1, γ2) of Section IV.B. `a1` holds the mismatch offsets of
/// (α, β), `a2` those of (α, γ); `beta`/`gamma` are the strings themselves,
/// consulted only at offsets present in both arrays. `a1_exhaustive` /
/// `a2_exhaustive` say whether the corresponding input lists *all*
/// mismatches (false if it was truncated at capacity).
MergedMismatches MergeMismatchArrays(const MismatchArray& a1,
                                     const MismatchArray& a2,
                                     std::span<const DnaCode> beta,
                                     std::span<const DnaCode> gamma,
                                     bool a1_exhaustive, bool a2_exhaustive,
                                     size_t max_count);

}  // namespace bwtk

#endif  // BWTK_MISMATCH_MISMATCH_ARRAY_H_
