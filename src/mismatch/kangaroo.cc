#include "mismatch/kangaroo.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace bwtk {

Result<PatternLcp> PatternLcp::Build(const std::vector<DnaCode>& pattern) {
  PatternLcp out;
  std::vector<uint32_t> widened(pattern.begin(), pattern.end());
  BWTK_ASSIGN_OR_RETURN(out.lcp_index_,
                        LcpIndex::Build(std::move(widened),
                                        kDnaAlphabetSize));
  return out;
}

std::vector<int32_t> PatternLcp::MismatchesBetween(size_t a, size_t b,
                                                   size_t len,
                                                   size_t max_count) const {
  std::vector<int32_t> out;
  BWTK_DCHECK_LE(a + len, size());
  BWTK_DCHECK_LE(b + len, size());
  size_t offset = 0;  // characters already known equal
  while (out.size() < max_count) {
    const int32_t common = Lcp(a + offset, b + offset);
    offset += static_cast<size_t>(common);
    if (offset >= len) break;
    out.push_back(static_cast<int32_t>(offset + 1));  // 1-based mismatch
    ++offset;
  }
  return out;
}

}  // namespace bwtk
