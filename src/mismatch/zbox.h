// Z-algorithm: Z[i] = length of the longest common prefix of s and s[i..).
// A light-weight alternative to the suffix-array LCP machinery when only
// prefix-anchored LCPs are needed (e.g. the Amir baseline's break finding).

#ifndef BWTK_MISMATCH_ZBOX_H_
#define BWTK_MISMATCH_ZBOX_H_

#include <cstdint>
#include <vector>

#include "alphabet/dna.h"

namespace bwtk {

/// Computes the Z-array of `s` in O(|s|). Z[0] = |s| by convention.
std::vector<int32_t> ComputeZArray(const std::vector<DnaCode>& s);

/// Generic-symbol overload (used on concatenations with separators).
std::vector<int32_t> ComputeZArray(const std::vector<uint32_t>& s);

}  // namespace bwtk

#endif  // BWTK_MISMATCH_ZBOX_H_
