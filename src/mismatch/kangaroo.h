// Kangaroo jumps over a pattern: constant-time LCP queries between any two
// suffixes of the pattern, the primitive behind the R_i tables of Section
// IV.B. Each "jump" lands exactly on the next mismatch between two aligned
// suffixes, so the first k+2 mismatches of any alignment cost O(k).

#ifndef BWTK_MISMATCH_KANGAROO_H_
#define BWTK_MISMATCH_KANGAROO_H_

#include <cstdint>
#include <vector>

#include "alphabet/dna.h"
#include "suffix/lcp.h"
#include "util/status.h"

namespace bwtk {

/// O(1) LCP between arbitrary suffixes of one pattern.
class PatternLcp {
 public:
  /// Empty; assign from Build() before use.
  PatternLcp() = default;

  /// Preprocesses `pattern` (suffix array + LCP + RMQ): O(m log m).
  static Result<PatternLcp> Build(const std::vector<DnaCode>& pattern);

  /// LCP of pattern[a..) and pattern[b..). Positions may equal size().
  int32_t Lcp(size_t a, size_t b) const {
    return static_cast<int32_t>(lcp_index_.Lcp(a, b));
  }

  size_t size() const { return lcp_index_.text_size(); }

  /// The first `max_count` mismatch offsets (1-based) between
  /// pattern[a..a+len) and pattern[b..b+len). Offsets are relative to the
  /// alignment: offset t means pattern[a+t-1] != pattern[b+t-1].
  std::vector<int32_t> MismatchesBetween(size_t a, size_t b, size_t len,
                                         size_t max_count) const;

 private:
  LcpIndex lcp_index_;
};

}  // namespace bwtk

#endif  // BWTK_MISMATCH_KANGAROO_H_
