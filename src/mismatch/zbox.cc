#include "mismatch/zbox.h"

namespace bwtk {

namespace {

template <typename Symbol>
std::vector<int32_t> ZArrayImpl(const std::vector<Symbol>& s) {
  const int32_t n = static_cast<int32_t>(s.size());
  std::vector<int32_t> z(n, 0);
  if (n == 0) return z;
  z[0] = n;
  int32_t l = 0;
  int32_t r = 0;  // [l, r) = rightmost Z-box
  for (int32_t i = 1; i < n; ++i) {
    if (i < r) z[i] = std::min(r - i, z[i - l]);
    while (i + z[i] < n && s[z[i]] == s[i + z[i]]) ++z[i];
    if (i + z[i] > r) {
      l = i;
      r = i + z[i];
    }
  }
  return z;
}

}  // namespace

std::vector<int32_t> ComputeZArray(const std::vector<DnaCode>& s) {
  return ZArrayImpl(s);
}

std::vector<int32_t> ComputeZArray(const std::vector<uint32_t>& s) {
  return ZArrayImpl(s);
}

}  // namespace bwtk
