#include "baselines/amir_search.h"

#include <algorithm>
#include <span>

#include "baselines/aho_corasick.h"
#include "mismatch/mismatch_array.h"

namespace bwtk {

std::vector<Occurrence> AmirSearch::Search(const std::vector<DnaCode>& pattern,
                                           int32_t k,
                                           AmirStats* stats) const {
  AmirStats local_stats;
  std::vector<Occurrence> results;
  const size_t m = pattern.size();
  const size_t n = text_->size();
  if (m == 0 || m > n || k < 0) {
    if (stats != nullptr) *stats = local_stats;
    return results;
  }
  const std::span<const DnaCode> pattern_span(pattern);
  const std::span<const DnaCode> text_span(*text_);
  const size_t window_count = n - m + 1;

  // Pigeonhole split into B = 2k + 2 blocks; each must have >= 1 character.
  const size_t blocks = std::min<size_t>(2 * static_cast<size_t>(k) + 2, m);
  const int32_t threshold = static_cast<int32_t>(blocks) - k;
  local_stats.blocks = blocks;
  if (threshold <= 0) {
    // Too few blocks to filter (k >= B): verify every window directly.
    for (size_t pos = 0; pos < window_count; ++pos) {
      const int32_t distance =
          HammingDistanceCapped(text_span.subspan(pos, m), pattern_span, k);
      if (distance <= k) {
        results.push_back({pos, distance});
        ++local_stats.verified_matches;
      }
    }
    local_stats.candidates = window_count;
    if (stats != nullptr) *stats = local_stats;
    return results;
  }

  // Cut the pattern into blocks and remember each block's offset.
  std::vector<std::vector<DnaCode>> block_patterns(blocks);
  std::vector<size_t> block_offsets(blocks);
  for (size_t b = 0; b < blocks; ++b) {
    const size_t begin = b * m / blocks;
    const size_t end = (b + 1) * m / blocks;
    block_offsets[b] = begin;
    block_patterns[b].assign(pattern.begin() + begin, pattern.begin() + end);
  }

  // Marking pass: one mark per exact block occurrence, accumulated at the
  // window start position it implies.
  const AhoCorasick automaton(block_patterns);
  std::vector<int32_t> marks(window_count, 0);
  automaton.Scan(*text_, [&](size_t end_pos, size_t block_id) {
    ++local_stats.block_hits;
    const size_t block_len = block_patterns[block_id].size();
    const size_t hit_start = end_pos - block_len;
    if (hit_start < block_offsets[block_id]) return;
    const size_t window = hit_start - block_offsets[block_id];
    if (window < window_count) ++marks[window];
  });

  // Verification pass over surviving windows.
  for (size_t pos = 0; pos < window_count; ++pos) {
    if (marks[pos] < threshold) continue;
    ++local_stats.candidates;
    const int32_t distance =
        HammingDistanceCapped(text_span.subspan(pos, m), pattern_span, k);
    if (distance <= k) {
      results.push_back({pos, distance});
      ++local_stats.verified_matches;
    }
  }
  if (stats != nullptr) *stats = local_stats;
  return results;
}

}  // namespace bwtk
