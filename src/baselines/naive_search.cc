#include "baselines/naive_search.h"

#include <span>

#include "mismatch/mismatch_array.h"

namespace bwtk {

std::vector<Occurrence> NaiveSearch::Search(
    const std::vector<DnaCode>& pattern, int32_t k) const {
  std::vector<Occurrence> results;
  const size_t m = pattern.size();
  const size_t n = text_->size();
  if (m == 0 || m > n || k < 0) return results;
  const std::span<const DnaCode> pattern_span(pattern);
  const std::span<const DnaCode> text_span(*text_);
  for (size_t pos = 0; pos + m <= n; ++pos) {
    const int32_t distance =
        HammingDistanceCapped(text_span.subspan(pos, m), pattern_span, k);
    if (distance <= k) results.push_back({pos, distance});
  }
  return results;
}

}  // namespace bwtk
