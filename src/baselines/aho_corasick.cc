#include "baselines/aho_corasick.h"

#include <queue>

namespace bwtk {

AhoCorasick::AhoCorasick(const std::vector<std::vector<DnaCode>>& patterns) {
  nodes_.emplace_back();  // root
  pattern_lengths_.reserve(patterns.size());
  // Trie phase.
  for (size_t id = 0; id < patterns.size(); ++id) {
    pattern_lengths_.push_back(patterns[id].size());
    if (patterns[id].empty()) continue;
    int32_t state = 0;
    for (const DnaCode c : patterns[id]) {
      if (nodes_[state].next[c] < 0) {
        nodes_[state].next[c] = static_cast<int32_t>(nodes_.size());
        nodes_.emplace_back();
      }
      state = nodes_[state].next[c];
    }
    outputs_.push_back({static_cast<int32_t>(id), nodes_[state].output_head});
    nodes_[state].output_head = static_cast<int32_t>(outputs_.size() - 1);
  }
  // BFS phase: fail links, output links, and dense goto.
  // output_link = nearest state on the fail chain (self included) that has
  // outputs, or -1; Scan walks these links only, skipping silent states.
  nodes_[0].output_link = nodes_[0].output_head >= 0 ? 0 : -1;
  std::queue<int32_t> queue;
  for (DnaCode c = 0; c < kDnaAlphabetSize; ++c) {
    int32_t& child = nodes_[0].next[c];
    if (child < 0) {
      child = 0;
    } else {
      nodes_[child].fail = 0;
      queue.push(child);
    }
  }
  while (!queue.empty()) {
    const int32_t state = queue.front();
    queue.pop();
    const int32_t fail = nodes_[state].fail;
    nodes_[state].output_link = nodes_[state].output_head >= 0
                                    ? state
                                    : nodes_[fail].output_link;
    for (DnaCode c = 0; c < kDnaAlphabetSize; ++c) {
      const int32_t child = nodes_[state].next[c];
      if (child < 0) {
        nodes_[state].next[c] = nodes_[fail].next[c];
      } else {
        nodes_[child].fail = nodes_[fail].next[c];
        queue.push(child);
      }
    }
  }
}

void AhoCorasick::Scan(const std::vector<DnaCode>& text,
                       const Callback& on_hit) const {
  int32_t state = 0;
  for (size_t pos = 0; pos < text.size(); ++pos) {
    state = nodes_[state].next[text[pos]];
    for (int32_t s = nodes_[state].output_link; s >= 0;
         s = nodes_[nodes_[s].fail].output_link) {
      for (int32_t o = nodes_[s].output_head; o >= 0; o = outputs_[o].next) {
        on_hit(pos + 1, static_cast<size_t>(outputs_[o].pattern_id));
      }
      if (s == 0) break;  // root's fail is itself
    }
  }
}

}  // namespace bwtk
