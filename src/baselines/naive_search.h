// The O(mn) sliding-window scanner. Slow by design: it is the correctness
// oracle every other engine is validated against, and the "no index, no
// cleverness" floor in the benchmarks.

#ifndef BWTK_BASELINES_NAIVE_SEARCH_H_
#define BWTK_BASELINES_NAIVE_SEARCH_H_

#include <cstdint>
#include <vector>

#include "alphabet/dna.h"
#include "search/match.h"

namespace bwtk {

/// Position-by-position Hamming comparison with early exit at k+1.
class NaiveSearch {
 public:
  /// `text` must outlive the searcher.
  explicit NaiveSearch(const std::vector<DnaCode>* text) : text_(text) {}

  /// All occurrences of `pattern` with at most `k` mismatches, sorted.
  std::vector<Occurrence> Search(const std::vector<DnaCode>& pattern,
                                 int32_t k) const;

 private:
  const std::vector<DnaCode>* text_;  // not owned
};

}  // namespace bwtk

#endif  // BWTK_BASELINES_NAIVE_SEARCH_H_
