// Cole-style suffix-tree k-mismatch search (the paper's "Cole's"
// competitor). The paper evaluated the method of [14] as a brute-force
// traversal of a suffix tree over the target ("a (compressed) suffix tree
// over s is created. Then, a brute-force tree searching is conducted",
// Section I); this reproduces exactly that: depth-first descent matching
// the pattern against edge labels, branching on every symbol while the
// mismatch budget lasts.

#ifndef BWTK_BASELINES_COLE_SEARCH_H_
#define BWTK_BASELINES_COLE_SEARCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "alphabet/dna.h"
#include "search/match.h"
#include "suffix/suffix_tree.h"
#include "util/status.h"

namespace bwtk {

/// Suffix-tree brute-force k-mismatch search.
class ColeSearch {
 public:
  /// Builds the suffix tree over `text` (Ukkonen, O(n)).
  static Result<ColeSearch> Build(const std::vector<DnaCode>& text);

  /// All occurrences of `pattern` with at most `k` mismatches, sorted.
  std::vector<Occurrence> Search(const std::vector<DnaCode>& pattern,
                                 int32_t k) const;

  const SuffixTree& tree() const { return *tree_; }

 private:
  explicit ColeSearch(std::unique_ptr<SuffixTree> tree)
      : tree_(std::move(tree)) {}

  std::unique_ptr<SuffixTree> tree_;
};

}  // namespace bwtk

#endif  // BWTK_BASELINES_COLE_SEARCH_H_
