#include "baselines/kangaroo_search.h"

namespace bwtk {

Result<std::vector<Occurrence>> KangarooSearch::Search(
    const std::vector<DnaCode>& pattern, int32_t k) const {
  std::vector<Occurrence> results;
  const size_t m = pattern.size();
  const size_t n = text_->size();
  if (m == 0 || m > n || k < 0) return results;

  // Concatenate pattern # text with a separator outside the DNA alphabet so
  // no LCP can run across the boundary.
  constexpr uint32_t kSeparator = kDnaAlphabetSize;
  std::vector<uint32_t> joined;
  joined.reserve(m + 1 + n);
  for (const DnaCode c : pattern) joined.push_back(c);
  joined.push_back(kSeparator);
  for (const DnaCode c : *text_) joined.push_back(c);
  BWTK_ASSIGN_OR_RETURN(
      auto lcp, LcpIndex::Build(std::move(joined), kDnaAlphabetSize + 1));

  const size_t text_base = m + 1;  // offset of text inside `joined`
  for (size_t pos = 0; pos + m <= n; ++pos) {
    int32_t mismatches = 0;
    size_t offset = 0;
    while (true) {
      // Jump over the agreeing stretch in O(1).
      offset += static_cast<size_t>(
          lcp.Lcp(offset, text_base + pos + offset));
      if (offset >= m) break;
      if (++mismatches > k) break;
      ++offset;
    }
    if (mismatches <= k) results.push_back({pos, mismatches});
  }
  return results;
}

}  // namespace bwtk
