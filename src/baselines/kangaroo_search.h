// Online O(kn) k-mismatch matching by kangaroo jumps (the Galil–Giancarlo /
// Landau–Vishkin technique cited by the paper as [19]): build LCP machinery
// over pattern#text, then verify every alignment with at most k+1 O(1)
// jumps instead of m character comparisons.

#ifndef BWTK_BASELINES_KANGAROO_SEARCH_H_
#define BWTK_BASELINES_KANGAROO_SEARCH_H_

#include <cstdint>
#include <vector>

#include "alphabet/dna.h"
#include "search/match.h"
#include "suffix/lcp.h"
#include "util/status.h"

namespace bwtk {

/// Online O(kn + (n+m) log (n+m)) k-mismatch search.
class KangarooSearch {
 public:
  /// `text` must outlive the searcher (it is concatenated per Search call).
  explicit KangarooSearch(const std::vector<DnaCode>* text) : text_(text) {}

  /// All occurrences of `pattern` with at most `k` mismatches, sorted.
  /// Builds the generalized suffix structure for pattern#text, then scans.
  Result<std::vector<Occurrence>> Search(const std::vector<DnaCode>& pattern,
                                         int32_t k) const;

 private:
  const std::vector<DnaCode>* text_;  // not owned
};

}  // namespace bwtk

#endif  // BWTK_BASELINES_KANGAROO_SEARCH_H_
