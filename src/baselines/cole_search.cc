#include "baselines/cole_search.h"

#include <utility>

namespace bwtk {

Result<ColeSearch> ColeSearch::Build(const std::vector<DnaCode>& text) {
  BWTK_ASSIGN_OR_RETURN(auto tree, SuffixTree::Build(text));
  return ColeSearch(std::make_unique<SuffixTree>(std::move(tree)));
}

std::vector<Occurrence> ColeSearch::Search(const std::vector<DnaCode>& pattern,
                                           int32_t k) const {
  std::vector<Occurrence> results;
  const size_t m = pattern.size();
  const size_t n = tree_->text_size();
  if (m == 0 || m > n || k < 0) return results;
  const std::vector<uint8_t>& text = tree_->text();

  // A frame sits just below `node`'s incoming edge start: `edge_offset`
  // characters of that edge are consumed, `depth` pattern characters
  // matched so far, `mismatches` spent.
  struct Frame {
    SaIndex node;
    SaIndex edge_offset;
    uint32_t depth;
    int32_t mismatches;
  };
  std::vector<Frame> stack;
  // Seed with the root's children at edge offset 0.
  stack.push_back({tree_->root(), 0, 0, 0});
  std::vector<SaIndex> leaves;
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    const SuffixTree::Node& node = tree_->node(frame.node);

    // Consume the remainder of this node's edge label.
    bool dead = false;
    while (frame.depth < m &&
           node.start + frame.edge_offset < node.end) {
      const uint8_t symbol = text[node.start + frame.edge_offset];
      if (symbol == SuffixTree::kSentinelSymbol) {
        dead = true;  // the target ends inside this alignment
        break;
      }
      if (symbol != pattern[frame.depth]) {
        if (++frame.mismatches > k) {
          dead = true;
          break;
        }
      }
      ++frame.edge_offset;
      ++frame.depth;
    }
    if (dead) continue;
    if (frame.depth == m) {
      // Every leaf below is an occurrence start (if it fits the text).
      leaves.clear();
      tree_->CollectLeaves(frame.node, &leaves);
      for (const SaIndex pos : leaves) {
        if (static_cast<size_t>(pos) + m <= n) {
          results.push_back({static_cast<size_t>(pos), frame.mismatches});
        }
      }
      continue;
    }
    // Edge exhausted: descend into every child.
    for (const SaIndex child : node.children) {
      if (child != SuffixTree::kNoNode) {
        stack.push_back({child, 0, frame.depth, frame.mismatches});
      }
    }
  }
  NormalizeOccurrences(&results);
  return results;
}

}  // namespace bwtk
