// Amir-style filter-and-verify k-mismatch search (the paper's "Amir"
// competitor, Section V).
//
// Amir et al. split the pattern into periodic stretches separated by
// aperiodic "breaks", mark every target position where a break matches
// exactly, discard positions with too few marks, and verify the survivors.
// We implement the same filter with the pigeonhole variant: the pattern is
// cut into B = 2k + 2 equal blocks; an occurrence with at most k mismatches
// must contain at least B - k exact block matches, so positions marked
// fewer times are discarded without verification. Marking is one
// Aho–Corasick pass; verification is a capped Hamming check. This preserves
// the filter-then-verify behaviour (and its sensitivity to k) that the
// paper's comparison exercises, without the periodicity machinery of the
// original O(n sqrt(k log k)) construction.

#ifndef BWTK_BASELINES_AMIR_SEARCH_H_
#define BWTK_BASELINES_AMIR_SEARCH_H_

#include <cstdint>
#include <vector>

#include "alphabet/dna.h"
#include "search/match.h"

namespace bwtk {

/// Statistics from one filter-and-verify run.
struct AmirStats {
  size_t blocks = 0;            // B
  size_t block_hits = 0;        // raw Aho-Corasick marks
  size_t candidates = 0;        // positions surviving the mark threshold
  size_t verified_matches = 0;  // candidates confirmed as occurrences
};

/// Pigeonhole filter + capped verification.
class AmirSearch {
 public:
  /// `text` must outlive the searcher.
  explicit AmirSearch(const std::vector<DnaCode>* text) : text_(text) {}

  /// All occurrences of `pattern` with at most `k` mismatches, sorted.
  std::vector<Occurrence> Search(const std::vector<DnaCode>& pattern,
                                 int32_t k, AmirStats* stats = nullptr) const;

 private:
  const std::vector<DnaCode>* text_;  // not owned
};

}  // namespace bwtk

#endif  // BWTK_BASELINES_AMIR_SEARCH_H_
