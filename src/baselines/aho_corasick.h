// Aho–Corasick multi-pattern exact matching over the DNA alphabet.
//
// Substrate for the Amir-style baseline: the pattern's blocks ("breaks")
// are located in the target in a single pass, exactly as the paper
// describes Amir's marking phase ("for each break b_i ... find all those
// substrings s_j in s such that b_i = s_j, and then mark each of them").

#ifndef BWTK_BASELINES_AHO_CORASICK_H_
#define BWTK_BASELINES_AHO_CORASICK_H_

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "alphabet/dna.h"

namespace bwtk {

/// Classic goto/fail automaton; Build once, Scan any number of texts.
class AhoCorasick {
 public:
  /// Hit callback: (end_position_exclusive_in_text, pattern_id).
  using Callback = std::function<void(size_t, size_t)>;

  /// Builds the automaton over `patterns` (empty patterns are ignored).
  explicit AhoCorasick(const std::vector<std::vector<DnaCode>>& patterns);

  /// Reports every occurrence of every pattern in `text` in O(|text| + z).
  void Scan(const std::vector<DnaCode>& text, const Callback& on_hit) const;

  size_t state_count() const { return nodes_.size(); }

 private:
  struct Node {
    std::array<int32_t, kDnaAlphabetSize> next;  // goto (dense, precomputed)
    int32_t fail = 0;
    int32_t output_head = -1;   // first entry in outputs_ for this state
    int32_t output_link = 0;    // nearest ancestor-via-fail with outputs
    Node() { next.fill(-1); }
  };

  // Chained output lists: (pattern_id, next_index).
  struct Output {
    int32_t pattern_id;
    int32_t next;
  };

  std::vector<Node> nodes_;
  std::vector<Output> outputs_;
  std::vector<size_t> pattern_lengths_;
};

}  // namespace bwtk

#endif  // BWTK_BASELINES_AHO_CORASICK_H_
