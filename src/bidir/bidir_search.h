// The bidirectional search-scheme engine: k-mismatch matching by walking a
// SearchScheme over a BiFmIndex.
//
// Where the S-tree engine enumerates mismatch placements left to right —
// so a branch can carry its full budget deep into the pattern before any
// placement is forced — a scheme search visits the pattern pieces in an
// order whose early upper bounds are mismatch-poor: most random branches
// die within the first piece at 0 or 1 allowed mismatches, and only the
// few survivors pay for the permissive tail. This is the regime reversal
// the partition literature targets (Kucherov/Salikhov/Tsur arXiv:1310.1440,
// Kianfar et al. arXiv:1711.02035): large k and long reads, exactly where
// plain enumeration's frontier multiplies.
//
// Output contract: byte-identical Occurrences (position, mismatches),
// normalized, to the naive scanner and every other Hamming engine — the
// cross-validation harness holds this engine to the same equality the
// paper engines satisfy. Covering schemes guarantee no occurrence is
// missed; vector-disjoint schemes (all built-ins for k <= 4) emit each
// occurrence exactly once, and for overlapping fallback schemes the
// executor deduplicates after the normalizing sort.
//
// Thread safety: Search is const and, apart from a mutex-guarded
// per-budget scheme cache, touches no shared mutable state; concurrent
// Search calls on one engine are safe (the BatchSearcher contract).

#ifndef BWTK_BIDIR_BIDIR_SEARCH_H_
#define BWTK_BIDIR_BIDIR_SEARCH_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "alphabet/dna.h"
#include "bidir/bi_fm_index.h"
#include "bidir/search_scheme.h"
#include "search/match.h"

namespace bwtk {

struct BidirOptions {
  /// Seed the first piece of each search from the paired q-gram prefix
  /// tables when both halves carry one and the search's first upper bound
  /// is within PrefixIntervalTable::kMaxSeedMismatches.
  bool use_prefix_table = true;

  /// Scheme override for tests and experiments; must outlive the engine.
  /// Used only when its budget equals the (clamped) query k and the
  /// pattern is long enough for its pieces; otherwise the engine falls
  /// back to SearchScheme::ForBudget / Trivial as usual.
  const SearchScheme* scheme = nullptr;
};

class BidirectionalSearch {
 public:
  /// `index` must outlive the engine.
  explicit BidirectionalSearch(const BiFmIndex* index,
                               const BidirOptions& options = {});

  /// All occurrences of `pattern` within Hamming distance k, normalized
  /// (position, then mismatches). Fills `*stats` (may be null) with the
  /// per-query counters: extend_calls counts symbols considered per
  /// ExtendRightAll/ExtendLeftAll (kDnaAlphabetSize per step, the S-tree
  /// engine's convention), budget_pruned counts upper-bound cuts, and
  /// tau_pruned counts lower-bound (piece-boundary) cuts — the scheme's
  /// analogue of a pruning heuristic.
  std::vector<Occurrence> Search(const std::vector<DnaCode>& pattern,
                                 int32_t k, SearchStats* stats) const;

  /// Runs ONE search of `scheme` and appends its raw hits — no
  /// normalization, no deduplication. The scheme property test uses this
  /// to prove per-search emission matches per-search admission exactly;
  /// `scheme` must have num_pieces() <= pattern.size() and a budget the
  /// bounds were built for.
  void ExecuteSearch(const std::vector<DnaCode>& pattern,
                     const SearchScheme& scheme, size_t search_index,
                     std::vector<Occurrence>* hits,
                     SearchStats* stats) const;

  const BiFmIndex& index() const { return *index_; }
  const BidirOptions& options() const { return options_; }

 private:
  /// The scheme used for a query with clamped budget `k` on a length-m
  /// pattern; ForBudget results are cached per budget (the k > 4 fallback
  /// validation is not free), Trivial fallbacks are built inline.
  const SearchScheme* SchemeFor(int32_t k, size_t m,
                                std::optional<SearchScheme>* storage) const;

  const BiFmIndex* index_;
  BidirOptions options_;

  mutable std::mutex scheme_mu_;
  mutable std::unordered_map<int32_t, SearchScheme> scheme_cache_;
};

}  // namespace bwtk

#endif  // BWTK_BIDIR_BIDIR_SEARCH_H_
