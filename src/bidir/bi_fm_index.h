// Bidirectional FM-index: two synchronized FM-indexes over the text and its
// reverse, so a matched window of the pattern can be extended one character
// to the LEFT *or* to the RIGHT in O(1) rank operations per step.
//
// The forward half is the repo's standard FmIndex (built over `text`, its
// matrix conceptually sorts the rotations of reverse(text)$, and its
// Extend() consumes pattern characters left to right). The reverse half is
// an FmIndex built over reverse(text); its matrix sorts the rotations of
// text$, so its Extend() consumes characters right to left. A BiRange pairs
// one row interval from each half such that both represent the *same*
// multiset of occurrences of the current window W:
//
//   range.fwd — rows of the forward matrix prefixed with reverse(W)
//   range.rev — rows of the reverse matrix prefixed with W
//
// Invariant: range.fwd.count() == range.rev.count() == occ(W).
//
// One extension performs a real ExtendAll on the half whose "reading
// direction" matches, and resynchronizes the other half arithmetically:
// within the other half's interval the sub-blocks for W extended by each
// symbol are contiguous and sorted $ < a < c < g < t (the continuation
// character is the next character of the row), so the counts returned by
// ExtendAll are exactly the sub-block widths. This is the standard
// 2FM-index construction (Lam et al. 2009), the substrate the search
// schemes of Kucherov/Salikhov/Tsur (arXiv:1310.1440) and Kianfar et al.
// (arXiv:1711.02035) execute on. See docs/BIDIRECTIONAL.md for the full
// correctness argument.
//
// Thread safety: immutable after Build()/Load()/FromForward(); all query
// methods are const and stateless, the same contract as FmIndex.

#ifndef BWTK_BIDIR_BI_FM_INDEX_H_
#define BWTK_BIDIR_BI_FM_INDEX_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "alphabet/dna.h"
#include "bwt/fm_index.h"
#include "util/logging.h"
#include "util/status.h"

namespace bwtk {

/// On-disk format constants for the paired index (see Save/Load).
///
/// Version history:
///   1 — header (magic, version, text size), then the two embedded FmIndex
///       streams (forward, reverse) in the bwt/serialize.cc format, then an
///       FNV-1a checksum over the pair's content fingerprints.
/// Monolithic FmIndex files (magic "BWTK") are *not* loadable here — they
/// lack the reverse half — but remain loadable by FmIndex::Load for the
/// forward-only engines; Load reports the distinction explicitly.
struct BiFmIndexFormat {
  static constexpr uint32_t kMagic = 0x42575442;  // "BWTB"
  static constexpr uint32_t kVersion = 1;
  static constexpr uint32_t kMinSupportedVersion = 1;
};

class BiFmIndex {
 public:
  /// Both halves are built with the same options (checkpoint rate, SA
  /// sample rate, prefix-table q, rank kernel).
  using Options = FmIndex::Options;

  /// A synchronized pair of row intervals, one per half, representing the
  /// occurrences of the current pattern window (class comment above).
  struct BiRange {
    FmIndex::Range fwd;
    FmIndex::Range rev;
    bool empty() const { return fwd.empty(); }
    SaIndex count() const { return fwd.count(); }
    bool operator==(const BiRange&) const = default;
  };

  /// Indexes `text` and reverse(text). Roughly 2x the build time and memory
  /// of a single FmIndex.
  static Result<BiFmIndex> Build(const std::vector<DnaCode>& text,
                                 const Options& options);
  static Result<BiFmIndex> Build(const std::vector<DnaCode>& text) {
    return Build(text, Options());
  }

  /// Upgrade path from an existing forward index (e.g. a monolithic index
  /// file on disk): reconstructs the indexed text by inverting the BWT and
  /// builds the reverse half with the forward half's options.
  static Result<BiFmIndex> FromForward(FmIndex forward);

  size_t text_size() const { return fwd_.text_size(); }
  size_t rows() const { return fwd_.rows(); }

  const FmIndex& forward() const { return fwd_; }
  const FmIndex& reverse() const { return rev_; }

  /// The root pair: every row of both matrices (the empty window).
  BiRange WholeRange() const {
    return {fwd_.WholeRange(), rev_.WholeRange()};
  }

  /// All four one-symbol extensions of the window to the right (window W
  /// becomes W·c): one ExtendAll on the forward half plus arithmetic
  /// resynchronization of the reverse half. `out[c]` may be empty.
  void ExtendRightAll(const BiRange& range,
                      BiRange out[kDnaAlphabetSize]) const {
    BWTK_DCHECK_EQ(range.fwd.count(), range.rev.count());
    FmIndex::Range children[kDnaAlphabetSize];
    fwd_.ExtendAll(range.fwd, children);
    SaIndex extended = 0;
    for (unsigned c = 0; c < kDnaAlphabetSize; ++c) {
      extended += children[c].count();
    }
    // Reverse-half rows prefixed W split by the continuation character into
    // the (at most one) W$ row followed by the W·a, W·c, W·g, W·t blocks.
    SaIndex lo = range.rev.lo + (range.fwd.count() - extended);
    for (unsigned c = 0; c < kDnaAlphabetSize; ++c) {
      const SaIndex width = children[c].count();
      out[c].fwd = children[c];
      out[c].rev = {lo, lo + width};
      lo += width;
    }
  }

  /// All four one-symbol extensions of the window to the left (window W
  /// becomes c·W); the mirror of ExtendRightAll.
  void ExtendLeftAll(const BiRange& range,
                     BiRange out[kDnaAlphabetSize]) const {
    BWTK_DCHECK_EQ(range.fwd.count(), range.rev.count());
    FmIndex::Range children[kDnaAlphabetSize];
    rev_.ExtendAll(range.rev, children);
    SaIndex extended = 0;
    for (unsigned c = 0; c < kDnaAlphabetSize; ++c) {
      extended += children[c].count();
    }
    SaIndex lo = range.fwd.lo + (range.rev.count() - extended);
    for (unsigned c = 0; c < kDnaAlphabetSize; ++c) {
      const SaIndex width = children[c].count();
      out[c].rev = children[c];
      out[c].fwd = {lo, lo + width};
      lo += width;
    }
  }

  /// Single-symbol conveniences (tests and simple callers; engines use the
  /// *All forms, which share the rank scans across the four symbols).
  BiRange ExtendRight(const BiRange& range, DnaCode c) const {
    BiRange out[kDnaAlphabetSize];
    ExtendRightAll(range, out);
    return out[c];
  }
  BiRange ExtendLeft(const BiRange& range, DnaCode c) const {
    BiRange out[kDnaAlphabetSize];
    ExtendLeftAll(range, out);
    return out[c];
  }

  /// Start positions (in the original text) of the occurrences of the
  /// current window, which spans `window_length` characters. Resolved on
  /// the forward half, so positions are byte-identical to the forward-only
  /// engines'. Unsorted.
  std::vector<size_t> Locate(const BiRange& range,
                             size_t window_length) const {
    return fwd_.Locate(range.fwd, window_length);
  }

  /// Reverses the base-4 digits of a forward prefix-table key: the reverse
  /// half's table is keyed by the window read right to left, so the seed
  /// step looks up PackKey(W) in the forward table and ReverseKey of it in
  /// the reverse table.
  static uint64_t ReverseKey(uint64_t key, uint32_t q) {
    uint64_t reversed = 0;
    for (uint32_t i = 0; i < q; ++i) {
      reversed = (reversed << 2) | (key & 3);
      key >>= 2;
    }
    return reversed;
  }

  /// Approximate heap footprint of both halves.
  size_t MemoryUsage() const {
    return fwd_.MemoryUsage() + rev_.MemoryUsage();
  }

  // --- Serialization ------------------------------------------------------
  // Both halves plus a checksum under the "BWTB" magic (BiFmIndexFormat).
  Status Save(std::ostream& out) const;
  static Result<BiFmIndex> Load(std::istream& in);
  Status SaveToFile(const std::string& path) const;
  static Result<BiFmIndex> LoadFromFile(const std::string& path);

 private:
  BiFmIndex(FmIndex fwd, FmIndex rev);

  FmIndex fwd_;
  FmIndex rev_;
};

}  // namespace bwtk

#endif  // BWTK_BIDIR_BI_FM_INDEX_H_
