#include "bidir/search_scheme.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace bwtk {

namespace {

// Number of ways to distribute <= k errors over p pieces: C(k+p, p),
// saturating at the validation cap.
uint64_t VectorSpaceSize(int32_t k, uint32_t p) {
  uint64_t count = 1;
  for (uint32_t i = 1; i <= p; ++i) {
    count = count * (static_cast<uint64_t>(k) + i) / i;
    if (count > SearchScheme::kValidationCap) return count;
  }
  return count;
}

// Invokes fn(vec) for every vector with sum(vec) <= budget.
template <typename Fn>
void ForEachVector(std::vector<int32_t>* vec, size_t piece, int32_t budget,
                   Fn&& fn) {
  if (piece == vec->size()) {
    fn(*vec);
    return;
  }
  for (int32_t e = 0; e <= budget; ++e) {
    (*vec)[piece] = e;
    ForEachVector(vec, piece + 1, budget - e, fn);
  }
}

bool ConnectedPermutation(const std::vector<uint8_t>& order, uint32_t p) {
  if (order.size() != p) return false;
  std::vector<bool> seen(p, false);
  uint8_t lo = order[0];
  uint8_t hi = order[0];
  if (order[0] >= p) return false;
  seen[order[0]] = true;
  for (size_t t = 1; t < order.size(); ++t) {
    const uint8_t piece = order[t];
    if (piece >= p || seen[piece]) return false;
    if (piece + 1 == lo) {
      lo = piece;
    } else if (piece == hi + 1) {
      hi = piece;
    } else {
      return false;
    }
    seen[piece] = true;
  }
  return true;
}

}  // namespace

bool SearchScheme::Admits(const SchemeSearch& search,
                          const std::vector<int32_t>& vec) {
  int32_t cumulative = 0;
  for (size_t t = 0; t < search.order.size(); ++t) {
    cumulative += vec[search.order[t]];
    if (cumulative < search.lower[t] || cumulative > search.upper[t]) {
      return false;
    }
  }
  return true;
}

Result<SearchScheme> SearchScheme::Create(int32_t k, uint32_t num_pieces,
                                          std::vector<SchemeSearch> searches) {
  if (k < 0) return Status::InvalidArgument("negative mismatch budget");
  if (num_pieces == 0) return Status::InvalidArgument("zero pieces");
  if (num_pieces > 64) return Status::InvalidArgument("too many pieces");
  if (searches.empty()) return Status::InvalidArgument("no searches");
  for (const SchemeSearch& search : searches) {
    if (search.lower.size() != num_pieces ||
        search.upper.size() != num_pieces) {
      return Status::InvalidArgument("bound vector length != num_pieces");
    }
    if (!ConnectedPermutation(search.order, num_pieces)) {
      return Status::InvalidArgument(
          "search order is not a connected permutation of the pieces");
    }
    for (uint32_t t = 0; t < num_pieces; ++t) {
      if (search.lower[t] > search.upper[t]) {
        return Status::InvalidArgument("lower bound exceeds upper bound");
      }
      if (search.upper[t] > k) {
        return Status::InvalidArgument("upper bound exceeds budget k");
      }
      if (t > 0 && (search.lower[t] < search.lower[t - 1] ||
                    search.upper[t] < search.upper[t - 1])) {
        return Status::InvalidArgument("bounds must be nondecreasing");
      }
    }
  }

  SearchScheme scheme;
  scheme.k_ = k;
  scheme.num_pieces_ = num_pieces;
  scheme.searches_ = std::move(searches);

  if (VectorSpaceSize(k, num_pieces) <= kValidationCap) {
    bool covering = true;
    bool disjoint = true;
    std::vector<int32_t> vec(num_pieces, 0);
    ForEachVector(&vec, 0, k, [&](const std::vector<int32_t>& v) {
      int admitted = 0;
      for (const SchemeSearch& search : scheme.searches_) {
        if (Admits(search, v)) ++admitted;
      }
      if (admitted == 0) covering = false;
      if (admitted > 1) disjoint = false;
    });
    if (!covering) {
      return Status::InvalidArgument(
          "scheme misses an error distribution: not covering");
    }
    scheme.vector_disjoint_ = disjoint;
  }
  return scheme;
}

SearchScheme SearchScheme::Trivial(int32_t k) {
  BWTK_CHECK(k >= 0);
  SchemeSearch search;
  search.order = {0};
  search.lower = {0};
  search.upper = {static_cast<uint16_t>(std::min(k, 65535))};
  auto scheme = Create(k, 1, {std::move(search)});
  BWTK_CHECK(scheme.ok());
  return std::move(scheme).value();
}

SearchScheme SearchScheme::ForBudget(int32_t k) {
  BWTK_CHECK(k >= 0);
  // The k <= 4 tables were found by exact cover over the error-vector
  // space (disjoint partition, minimal search count, mismatch-poor early
  // bounds) and are re-proven covering + disjoint by Create here.
  std::vector<SchemeSearch> searches;
  uint32_t pieces = 0;
  switch (k) {
    case 0:
      return Trivial(0);
    case 1:
      pieces = 2;
      searches = {
          {{0, 1}, {0, 0}, {0, 1}},
          {{1, 0}, {0, 1}, {0, 1}},
      };
      break;
    case 2:
      pieces = 3;
      searches = {
          {{0, 1, 2}, {0, 0, 2}, {0, 1, 2}},
          {{2, 1, 0}, {0, 0, 0}, {0, 2, 2}},
          {{1, 2, 0}, {0, 1, 1}, {0, 1, 2}},
      };
      break;
    case 3:
      pieces = 4;
      searches = {
          {{0, 1, 2, 3}, {0, 0, 0, 3}, {0, 2, 3, 3}},
          {{1, 2, 3, 0}, {0, 0, 0, 0}, {1, 2, 2, 3}},
          {{2, 3, 1, 0}, {0, 0, 2, 2}, {0, 0, 3, 3}},
      };
      break;
    case 4:
      pieces = 5;
      searches = {
          {{0, 1, 2, 3, 4}, {0, 0, 0, 0, 3}, {0, 0, 4, 4, 4}},
          {{0, 1, 2, 3, 4}, {0, 1, 1, 1, 4}, {1, 1, 4, 4, 4}},
          {{2, 3, 4, 1, 0}, {0, 0, 0, 0, 0}, {1, 1, 2, 4, 4}},
          {{4, 3, 2, 1, 0}, {0, 0, 2, 2, 2}, {0, 2, 2, 4, 4}},
      };
      break;
    default: {
      // Pigeonhole fallback: k+1 pieces; search j pins piece j exact, then
      // expands right to the end, then left. Any distribution of <= k
      // errors leaves some piece error-free, so the union covers; vectors
      // with several error-free pieces are admitted several times, so the
      // executor deduplicates (vector_disjoint() is false).
      pieces = static_cast<uint32_t>(k) + 1;
      const uint16_t cap = static_cast<uint16_t>(std::min(k, 65535));
      for (uint32_t j = 0; j < pieces; ++j) {
        SchemeSearch search;
        for (uint32_t piece = j; piece < pieces; ++piece) {
          search.order.push_back(static_cast<uint8_t>(piece));
        }
        for (uint32_t piece = j; piece-- > 0;) {
          search.order.push_back(static_cast<uint8_t>(piece));
        }
        search.lower.assign(pieces, 0);
        search.upper.assign(pieces, cap);
        search.upper[0] = 0;
        searches.push_back(std::move(search));
      }
      break;
    }
  }
  auto scheme = Create(k, pieces, std::move(searches));
  BWTK_CHECK(scheme.ok());
  BWTK_DCHECK(k > 4 || scheme->vector_disjoint());
  return std::move(scheme).value();
}

std::vector<uint32_t> SearchScheme::PieceBoundaries(uint32_t m, uint32_t p) {
  BWTK_CHECK(p >= 1 && p <= m);
  std::vector<uint32_t> boundaries(p + 1);
  for (uint32_t i = 0; i <= p; ++i) {
    boundaries[i] = static_cast<uint32_t>(
        (static_cast<uint64_t>(i) * m) / p);
  }
  return boundaries;
}

}  // namespace bwtk
