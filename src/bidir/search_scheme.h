// Search schemes for k-mismatch matching over a bidirectional FM-index.
//
// A scheme splits the pattern into `num_pieces` contiguous pieces and runs
// several *searches*; each search visits the pieces in a connected order
// (every next piece is adjacent to the interval already covered, so the
// matched window only ever grows left or right — executable on a
// BiFmIndex) under cumulative lower/upper mismatch bounds. The union of
// the searches must admit every way of distributing <= k mismatches over
// the pieces at least once (no occurrence missed); a scheme whose searches
// admit every distribution *exactly* once additionally emits no duplicates
// (vector_disjoint()). Formalization per Kucherov/Salikhov/Tsur
// (arXiv:1310.1440); the built-in tables follow the optimization line of
// Kianfar et al. (arXiv:1711.02035) — found by exact cover over the error
// vectors, minimizing search count with mismatch-poor early bounds — and
// are re-validated exhaustively at construction. docs/BIDIRECTIONAL.md
// gives the full semantics and the correctness argument.

#ifndef BWTK_BIDIR_SEARCH_SCHEME_H_
#define BWTK_BIDIR_SEARCH_SCHEME_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace bwtk {

/// One search of a scheme. `order[t]` is the piece visited at step t
/// (0-based piece ids); after finishing that piece the cumulative mismatch
/// count over all visited pieces must lie in [lower[t], upper[t]].
/// `upper[t]` additionally applies continuously *inside* piece t (mismatch
/// counts only grow, so the piece-boundary statement of the bounds is
/// equivalent for which full distributions are admitted).
struct SchemeSearch {
  std::vector<uint8_t> order;
  std::vector<uint16_t> lower;
  std::vector<uint16_t> upper;

  bool operator==(const SchemeSearch&) const = default;
};

class SearchScheme {
 public:
  /// Error-vector spaces larger than this are not enumerated by Create's
  /// validator (the greedy fallback for very large k would otherwise make
  /// construction combinatorial); such schemes load with coverage unproven
  /// and vector_disjoint() conservatively false.
  static constexpr uint64_t kValidationCap = uint64_t{1} << 20;

  /// Validated construction. InvalidArgument unless, for every search:
  /// order is a connected permutation of [0, num_pieces); lower/upper are
  /// monotone nondecreasing with lower[t] <= upper[t] <= k; and — when the
  /// error-vector space is within kValidationCap — every distribution of
  /// <= k mismatches over the pieces is admitted by at least one search.
  static Result<SearchScheme> Create(int32_t k, uint32_t num_pieces,
                                     std::vector<SchemeSearch> searches);

  /// The built-in scheme for mismatch budget `k`: exact-cover-optimized
  /// tables for k <= 4 (validated disjoint + covering), the pigeonhole
  /// k+1-piece fallback above (covering but overlapping; the executor
  /// deduplicates). k = 0 is the trivial single exact search.
  static SearchScheme ForBudget(int32_t k);

  /// The one-piece, one-search scheme (plain left-to-right descent with
  /// budget k): the fallback when the pattern is shorter than the pieces a
  /// partition scheme wants.
  static SearchScheme Trivial(int32_t k);

  int32_t k() const { return k_; }
  uint32_t num_pieces() const { return num_pieces_; }
  const std::vector<SchemeSearch>& searches() const { return searches_; }

  /// True when the searches were proven to admit every error distribution
  /// exactly once; the executor then skips output deduplication.
  bool vector_disjoint() const { return vector_disjoint_; }

  /// True when `search` admits the per-piece mismatch distribution `vec`
  /// (vec[i] = mismatches falling in piece i). Exposed for the property
  /// tests, which re-prove the cover argument against a brute-force oracle.
  static bool Admits(const SchemeSearch& search,
                     const std::vector<int32_t>& vec);

  /// Splits a length-m pattern into p contiguous pieces of near-equal size
  /// (later pieces take the remainder): returns the p+1 piece boundaries,
  /// boundaries[i] = floor(i*m/p). Requires 1 <= p <= m.
  static std::vector<uint32_t> PieceBoundaries(uint32_t m, uint32_t p);

 private:
  SearchScheme() = default;

  int32_t k_ = 0;
  uint32_t num_pieces_ = 1;
  bool vector_disjoint_ = false;
  std::vector<SchemeSearch> searches_;
};

}  // namespace bwtk

#endif  // BWTK_BIDIR_SEARCH_SCHEME_H_
