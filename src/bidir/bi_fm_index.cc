#include "bidir/bi_fm_index.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <utility>

#include "bwt/bwt.h"
#include "bwt/serialize.h"
#include "search/result_cache.h"
#include "util/logging.h"

namespace bwtk {

namespace {

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

// FNV-1a over the pair's content fingerprints; mismatched or swapped halves
// fail loudly instead of silently desynchronizing the co-ranges.
uint64_t PairChecksum(uint64_t text_size, uint64_t fwd_version,
                      uint64_t rev_version) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const uint64_t w : {text_size, fwd_version, rev_version}) {
    h ^= w;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

BiFmIndex::BiFmIndex(FmIndex fwd, FmIndex rev)
    : fwd_(std::move(fwd)), rev_(std::move(rev)) {}

Result<BiFmIndex> BiFmIndex::Build(const std::vector<DnaCode>& text,
                                   const Options& options) {
  BWTK_ASSIGN_OR_RETURN(FmIndex fwd, FmIndex::Build(text, options));
  std::vector<DnaCode> reversed(text.rbegin(), text.rend());
  BWTK_ASSIGN_OR_RETURN(FmIndex rev, FmIndex::Build(reversed, options));
  return BiFmIndex(std::move(fwd), std::move(rev));
}

Result<BiFmIndex> BiFmIndex::FromForward(FmIndex forward) {
  // The forward half's BWT is the BWT of reverse(text)$; inverting it
  // yields reverse(text), which is exactly the build input of the reverse
  // half.
  std::vector<DnaCode> reversed = InvertBwt(forward.bwt());
  BWTK_ASSIGN_OR_RETURN(FmIndex rev,
                        FmIndex::Build(reversed, forward.options()));
  return BiFmIndex(std::move(forward), std::move(rev));
}

Status BiFmIndex::Save(std::ostream& out) const {
  WritePod(out, BiFmIndexFormat::kMagic);
  WritePod(out, BiFmIndexFormat::kVersion);
  WritePod(out, static_cast<uint64_t>(fwd_.text_size()));
  BWTK_RETURN_IF_ERROR(fwd_.Save(out));
  BWTK_RETURN_IF_ERROR(rev_.Save(out));
  WritePod(out, PairChecksum(fwd_.text_size(), FmIndexVersion(fwd_),
                             FmIndexVersion(rev_)));
  if (!out) return Status::IoError("bidirectional index write failed");
  return Status::OK();
}

Result<BiFmIndex> BiFmIndex::Load(std::istream& in) {
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!ReadPod(in, &magic)) {
    return Status::Corruption("truncated bidirectional index file");
  }
  if (magic == FmIndexFormat::kMagic) {
    return Status::Corruption(
        "monolithic FM-index file (magic \"BWTK\"): it lacks the reverse "
        "half; load it with FmIndex::Load for forward-only engines, or "
        "upgrade via BiFmIndex::FromForward");
  }
  if (magic != BiFmIndexFormat::kMagic) {
    return Status::Corruption("bad magic: not a bwtk bidirectional index");
  }
  if (!ReadPod(in, &version) ||
      version < BiFmIndexFormat::kMinSupportedVersion ||
      version > BiFmIndexFormat::kVersion) {
    return Status::Corruption("unsupported bidirectional index version");
  }
  uint64_t text_size = 0;
  if (!ReadPod(in, &text_size)) {
    return Status::Corruption("truncated bidirectional index file");
  }
  BWTK_ASSIGN_OR_RETURN(FmIndex fwd, FmIndex::Load(in));
  BWTK_ASSIGN_OR_RETURN(FmIndex rev, FmIndex::Load(in));
  uint64_t checksum = 0;
  if (!ReadPod(in, &checksum)) {
    return Status::Corruption("truncated bidirectional index file");
  }
  if (fwd.text_size() != text_size || rev.text_size() != text_size) {
    return Status::Corruption("bidirectional index halves disagree on size");
  }
  if (checksum !=
      PairChecksum(text_size, FmIndexVersion(fwd), FmIndexVersion(rev))) {
    return Status::Corruption("bidirectional index checksum mismatch");
  }
  return BiFmIndex(std::move(fwd), std::move(rev));
}

Status BiFmIndex::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return Save(out);
}

Result<BiFmIndex> BiFmIndex::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open bidirectional index file: " + path);
  }
  return Load(in);
}

}  // namespace bwtk
