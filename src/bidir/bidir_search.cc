#include "bidir/bidir_search.h"

#include <algorithm>

#include "bwt/prefix_table.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace bwtk {

namespace {

/// One character consumption of a search, precomputed per (search, m):
/// which pattern position, in which direction, under which bounds. The
/// lower bound is non-zero only on the step completing a piece (cumulative
/// lower bounds are checked at piece boundaries).
struct Step {
  uint32_t pos = 0;
  bool right = true;
  uint16_t upper = 0;
  uint16_t lower = 0;
};

/// Flattens one scheme search into its m per-character steps. The first
/// piece is consumed left to right (which is what lets the q-gram tables
/// seed it); every later piece's direction is forced by where it sits
/// relative to the already-covered window.
std::vector<Step> BuildSteps(const SchemeSearch& search,
                             const std::vector<uint32_t>& boundaries) {
  const size_t p = search.order.size();
  std::vector<Step> steps;
  steps.reserve(boundaries.back());
  uint32_t win_lo = boundaries[search.order[0]];
  uint32_t win_hi = win_lo;
  for (size_t rank = 0; rank < p; ++rank) {
    const uint8_t piece = search.order[rank];
    const uint16_t upper = search.upper[rank];
    if (boundaries[piece] >= win_hi) {
      for (uint32_t pos = boundaries[piece]; pos < boundaries[piece + 1];
           ++pos) {
        steps.push_back({pos, true, upper, 0});
      }
      win_hi = boundaries[piece + 1];
      if (rank == 0) win_lo = boundaries[piece];
    } else {
      for (uint32_t pos = win_lo; pos-- > boundaries[piece];) {
        steps.push_back({pos, false, upper, 0});
      }
      win_lo = boundaries[piece];
    }
    steps.back().lower = search.lower[rank];
  }
  BWTK_DCHECK_EQ(steps.size(), boundaries.back());
  return steps;
}

struct Frame {
  BiFmIndex::BiRange range;
  uint32_t step = 0;
  int32_t mismatches = 0;
};

}  // namespace

BidirectionalSearch::BidirectionalSearch(const BiFmIndex* index,
                                         const BidirOptions& options)
    : index_(index), options_(options) {
  BWTK_CHECK(index_ != nullptr);
}

const SearchScheme* BidirectionalSearch::SchemeFor(
    int32_t k, size_t m, std::optional<SearchScheme>* storage) const {
  if (options_.scheme != nullptr && options_.scheme->k() == k &&
      options_.scheme->num_pieces() <= m) {
    return options_.scheme;
  }
  // The pigeonhole fallback wants k+1 pieces; past the piece cap (or a
  // pattern too short to partition) the plain one-piece descent is the
  // only executable scheme.
  if (k > 4 && static_cast<uint64_t>(k) + 1 > std::min<uint64_t>(64, m)) {
    storage->emplace(SearchScheme::Trivial(k));
    return &**storage;
  }
  {
    std::lock_guard<std::mutex> lock(scheme_mu_);
    auto it = scheme_cache_.find(k);
    if (it == scheme_cache_.end()) {
      it = scheme_cache_.emplace(k, SearchScheme::ForBudget(k)).first;
    }
    if (it->second.num_pieces() <= m) return &it->second;
  }
  storage->emplace(SearchScheme::Trivial(k));
  return &**storage;
}

void BidirectionalSearch::ExecuteSearch(const std::vector<DnaCode>& pattern,
                                        const SearchScheme& scheme,
                                        size_t search_index,
                                        std::vector<Occurrence>* hits,
                                        SearchStats* stats) const {
  [[maybe_unused]] obs::Trace* const trace = BWTK_TRACE_ACTIVE();
  SearchStats local_stats;
  const uint32_t m = static_cast<uint32_t>(pattern.size());
  BWTK_CHECK(search_index < scheme.searches().size());
  BWTK_CHECK(scheme.num_pieces() <= m);
  const SchemeSearch& search = scheme.searches()[search_index];
  const std::vector<uint32_t> boundaries =
      SearchScheme::PieceBoundaries(m, scheme.num_pieces());
  const std::vector<Step> steps = BuildSteps(search, boundaries);
  const uint32_t first_begin = boundaries[search.order[0]];
  const uint32_t first_len = boundaries[search.order[0] + 1] - first_begin;

  uint64_t left_extends = 0;
  uint64_t right_extends = 0;
  std::vector<Frame> stack;

  // Seed the first piece from the paired q-gram tables: the surviving
  // depth-q states of this search are exactly the non-empty co-ranges of
  // the length-q strings within Hamming distance upper[0] of the piece's
  // q-prefix, looked up forward-keyed in the forward table and
  // reverse-keyed in the reverse table.
  const PrefixIntervalTable* fwd_table =
      options_.use_prefix_table ? index_->forward().prefix_table() : nullptr;
  const PrefixIntervalTable* rev_table =
      options_.use_prefix_table ? index_->reverse().prefix_table() : nullptr;
  const uint32_t q = fwd_table ? fwd_table->q() : 0;
  const bool seedable =
      q > 0 && rev_table != nullptr && rev_table->q() == q &&
      first_len >= q &&
      search.upper[0] <= PrefixIntervalTable::kMaxSeedMismatches;
  if (seedable) {
    uint64_t table_hits = 0;
    fwd_table->ForEachVariant(
        pattern.data() + first_begin, static_cast<int32_t>(search.upper[0]),
        [&](const PrefixIntervalTable::Variant& v) {
          SaIndex flo;
          SaIndex fhi;
          if (!fwd_table->Lookup(v.key, &flo, &fhi)) return;
          SaIndex rlo;
          SaIndex rhi;
          const bool rev_hit = rev_table->Lookup(
              BiFmIndex::ReverseKey(v.key, q), &rlo, &rhi);
          // Both tables count the same occurrences of the variant gram.
          BWTK_DCHECK(rev_hit);
          BWTK_DCHECK_EQ(fhi - flo, rhi - rlo);
          (void)rev_hit;
          ++table_hits;
          ++local_stats.stree_nodes;
          BWTK_TRACE_NODE(trace, q);
          // steps[q-1].lower is 0 unless the seed consumed the whole first
          // piece, in which case the piece-boundary lower bound applies.
          if (v.mismatches < steps[q - 1].lower) {
            ++local_stats.tau_pruned;
            return;
          }
          stack.push_back({{{flo, fhi}, {rlo, rhi}}, q, v.mismatches});
        });
    BWTK_METRIC_COUNT2(kCounterPrefixTableHits, table_hits,
                       kCounterPrefixTableSkippedSteps, table_hits * q);
    BWTK_TRACE_PREFIX_HITS(trace, table_hits);
  } else {
    stack.push_back({index_->WholeRange(), 0, 0});
  }

  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.step == m) {
      ++local_stats.completed_paths;
      for (const size_t pos : index_->Locate(frame.range, m)) {
        hits->push_back({pos, frame.mismatches});
      }
      continue;
    }
    const Step& step = steps[frame.step];
    BiFmIndex::BiRange children[kDnaAlphabetSize];
    if (step.right) {
      index_->ExtendRightAll(frame.range, children);
      ++right_extends;
    } else {
      index_->ExtendLeftAll(frame.range, children);
      ++left_extends;
    }
    local_stats.extend_calls += kDnaAlphabetSize;
    const DnaCode expected = pattern[step.pos];
    for (DnaCode c = 0; c < kDnaAlphabetSize; ++c) {
      const BiFmIndex::BiRange& next = children[c];
      if (next.empty()) continue;
      ++local_stats.stree_nodes;
      BWTK_TRACE_NODE(trace, frame.step + 1);
      const int32_t mismatches = frame.mismatches + (c != expected ? 1 : 0);
      if (mismatches > step.upper) {
        ++local_stats.budget_pruned;
        continue;
      }
      if (mismatches < step.lower) {
        ++local_stats.tau_pruned;
        continue;
      }
      stack.push_back({next, frame.step + 1, mismatches});
    }
  }

  BWTK_METRIC_COUNT2(kCounterBidirLeftExtends, left_extends,
                     kCounterBidirRightExtends, right_extends);
  if (stats != nullptr) *stats += local_stats;
}

std::vector<Occurrence> BidirectionalSearch::Search(
    const std::vector<DnaCode>& pattern, int32_t k,
    SearchStats* stats) const {
  BWTK_SCOPED_HIST_TIMER(kHistQueryNanos);
  SearchStats local_stats;
  std::vector<Occurrence> results;
  const size_t m = pattern.size();
  if (m == 0 || m > index_->text_size() || k < 0) {
    if (stats != nullptr) *stats = local_stats;
    return results;
  }
  // A window can hold at most m mismatches, so larger budgets are the same
  // query; clamping keeps the scheme tables small for degenerate k.
  const int32_t budget = std::min(k, static_cast<int32_t>(m));

  std::optional<SearchScheme> storage;
  const SearchScheme* scheme = SchemeFor(budget, m, &storage);

  {
    BWTK_SCOPED_TIMER(kPhaseBidirTraversal);
    [[maybe_unused]] obs::Trace* const trace = BWTK_TRACE_ACTIVE();
    BWTK_TRACE_SPAN(trace, "bidir_scheme_walk");
    for (size_t si = 0; si < scheme->searches().size(); ++si) {
      ExecuteSearch(pattern, *scheme, si, &results, &local_stats);
    }
  }

  NormalizeOccurrences(&results);
  if (!scheme->vector_disjoint()) {
    results.erase(std::unique(results.begin(), results.end()), results.end());
  }
  const uint64_t extend_alls = local_stats.extend_calls / kDnaAlphabetSize;
  BWTK_METRIC_COUNT2(kCounterExtendAllCalls, extend_alls,
                     kCounterRankAllCalls, 2 * extend_alls);
  BWTK_METRIC_COUNT_N(kCounterBidirSearches, scheme->searches().size());
  BWTK_METRIC_OBSERVE(kHistHitsPerQuery, results.size());
  if (stats != nullptr) *stats = local_stats;
  return results;
}

}  // namespace bwtk
