#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace bwtk::obs {

// --- JsonWriter ----------------------------------------------------------

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  BWTK_DCHECK(stack_.back().first == 'a') << "object member without Key()";
  if (stack_.back().second) out_.push_back(',');
  stack_.back().second = true;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  stack_.emplace_back('o', false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  BWTK_DCHECK(!stack_.empty() && stack_.back().first == 'o');
  stack_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  stack_.emplace_back('a', false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  BWTK_DCHECK(!stack_.empty() && stack_.back().first == 'a');
  stack_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  BWTK_DCHECK(!stack_.empty() && stack_.back().first == 'o' && !after_key_);
  if (stack_.back().second) out_.push_back(',');
  stack_.back().second = true;
  out_.push_back('"');
  out_ += JsonEscape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view value) {
  BeforeValue();
  out_.push_back('"');
  out_ += JsonEscape(value);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Value(double value) {
  if (!std::isfinite(value)) return Null();
  BeforeValue();
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::Value(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

std::string JsonWriter::TakeString() && {
  BWTK_DCHECK(stack_.empty()) << "unclosed JSON container";
  return std::move(out_);
}

std::string JsonEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// --- Flat parser ---------------------------------------------------------

namespace {

void SkipSpace(std::string_view json, size_t* pos) {
  while (*pos < json.size() &&
         std::isspace(static_cast<unsigned char>(json[*pos]))) {
    ++*pos;
  }
}

}  // namespace

Result<std::vector<std::pair<std::string, uint64_t>>> ParseFlatUint64Object(
    std::string_view json) {
  std::vector<std::pair<std::string, uint64_t>> out;
  size_t pos = 0;
  SkipSpace(json, &pos);
  if (pos >= json.size() || json[pos] != '{') {
    return Status::InvalidArgument("expected '{' at start of object");
  }
  ++pos;
  SkipSpace(json, &pos);
  if (pos < json.size() && json[pos] == '}') {  // empty object
    ++pos;
    SkipSpace(json, &pos);
    if (pos != json.size()) {
      return Status::InvalidArgument("trailing characters after object");
    }
    return out;
  }
  for (;;) {
    SkipSpace(json, &pos);
    if (pos >= json.size() || json[pos] != '"') {
      return Status::InvalidArgument("expected '\"' to open a key at offset " +
                                     std::to_string(pos));
    }
    ++pos;
    std::string key;
    while (pos < json.size() && json[pos] != '"') {
      if (json[pos] == '\\') {
        return Status::InvalidArgument("escaped keys are not supported");
      }
      key.push_back(json[pos++]);
    }
    if (pos >= json.size()) {
      return Status::InvalidArgument("unterminated key");
    }
    ++pos;  // closing quote
    SkipSpace(json, &pos);
    if (pos >= json.size() || json[pos] != ':') {
      return Status::InvalidArgument("expected ':' after key \"" + key + "\"");
    }
    ++pos;
    SkipSpace(json, &pos);
    if (pos >= json.size() ||
        !std::isdigit(static_cast<unsigned char>(json[pos]))) {
      return Status::InvalidArgument(
          "expected a non-negative integer value for key \"" + key + "\"");
    }
    uint64_t value = 0;
    while (pos < json.size() &&
           std::isdigit(static_cast<unsigned char>(json[pos]))) {
      const uint64_t digit = static_cast<uint64_t>(json[pos] - '0');
      if (value > (~uint64_t{0} - digit) / 10) {
        return Status::OutOfRange("integer overflow for key \"" + key + "\"");
      }
      value = value * 10 + digit;
      ++pos;
    }
    if (pos < json.size() && (json[pos] == '.' || json[pos] == 'e' ||
                              json[pos] == 'E')) {
      return Status::InvalidArgument(
          "fractional values are not supported (key \"" + key + "\")");
    }
    out.emplace_back(std::move(key), value);
    SkipSpace(json, &pos);
    if (pos >= json.size()) {
      return Status::InvalidArgument("unterminated object");
    }
    if (json[pos] == ',') {
      ++pos;
      continue;
    }
    if (json[pos] == '}') {
      ++pos;
      break;
    }
    return Status::InvalidArgument("expected ',' or '}' at offset " +
                                   std::to_string(pos));
  }
  SkipSpace(json, &pos);
  if (pos != json.size()) {
    return Status::InvalidArgument("trailing characters after object");
  }
  return out;
}

}  // namespace bwtk::obs
