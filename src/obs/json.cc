#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.h"

namespace bwtk::obs {

// --- JsonWriter ----------------------------------------------------------

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  BWTK_DCHECK(stack_.back().first == 'a') << "object member without Key()";
  if (stack_.back().second) out_.push_back(',');
  stack_.back().second = true;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  stack_.emplace_back('o', false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  BWTK_DCHECK(!stack_.empty() && stack_.back().first == 'o');
  stack_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  stack_.emplace_back('a', false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  BWTK_DCHECK(!stack_.empty() && stack_.back().first == 'a');
  stack_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  BWTK_DCHECK(!stack_.empty() && stack_.back().first == 'o' && !after_key_);
  if (stack_.back().second) out_.push_back(',');
  stack_.back().second = true;
  out_.push_back('"');
  out_ += JsonEscape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view value) {
  BeforeValue();
  out_.push_back('"');
  out_ += JsonEscape(value);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Value(double value) {
  if (!std::isfinite(value)) return Null();
  BeforeValue();
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::Value(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

std::string JsonWriter::TakeString() && {
  BWTK_DCHECK(stack_.empty()) << "unclosed JSON container";
  return std::move(out_);
}

std::string JsonEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// --- Flat parser ---------------------------------------------------------

namespace {

void SkipSpace(std::string_view json, size_t* pos) {
  while (*pos < json.size() &&
         std::isspace(static_cast<unsigned char>(json[*pos]))) {
    ++*pos;
  }
}

}  // namespace

Result<std::vector<std::pair<std::string, uint64_t>>> ParseFlatUint64Object(
    std::string_view json) {
  std::vector<std::pair<std::string, uint64_t>> out;
  size_t pos = 0;
  SkipSpace(json, &pos);
  if (pos >= json.size() || json[pos] != '{') {
    return Status::InvalidArgument("expected '{' at start of object");
  }
  ++pos;
  SkipSpace(json, &pos);
  if (pos < json.size() && json[pos] == '}') {  // empty object
    ++pos;
    SkipSpace(json, &pos);
    if (pos != json.size()) {
      return Status::InvalidArgument("trailing characters after object");
    }
    return out;
  }
  for (;;) {
    SkipSpace(json, &pos);
    if (pos >= json.size() || json[pos] != '"') {
      return Status::InvalidArgument("expected '\"' to open a key at offset " +
                                     std::to_string(pos));
    }
    ++pos;
    std::string key;
    while (pos < json.size() && json[pos] != '"') {
      if (json[pos] == '\\') {
        return Status::InvalidArgument("escaped keys are not supported");
      }
      key.push_back(json[pos++]);
    }
    if (pos >= json.size()) {
      return Status::InvalidArgument("unterminated key");
    }
    ++pos;  // closing quote
    SkipSpace(json, &pos);
    if (pos >= json.size() || json[pos] != ':') {
      return Status::InvalidArgument("expected ':' after key \"" + key + "\"");
    }
    ++pos;
    SkipSpace(json, &pos);
    if (pos >= json.size() ||
        !std::isdigit(static_cast<unsigned char>(json[pos]))) {
      return Status::InvalidArgument(
          "expected a non-negative integer value for key \"" + key + "\"");
    }
    uint64_t value = 0;
    while (pos < json.size() &&
           std::isdigit(static_cast<unsigned char>(json[pos]))) {
      const uint64_t digit = static_cast<uint64_t>(json[pos] - '0');
      if (value > (~uint64_t{0} - digit) / 10) {
        return Status::OutOfRange("integer overflow for key \"" + key + "\"");
      }
      value = value * 10 + digit;
      ++pos;
    }
    if (pos < json.size() && (json[pos] == '.' || json[pos] == 'e' ||
                              json[pos] == 'E')) {
      return Status::InvalidArgument(
          "fractional values are not supported (key \"" + key + "\")");
    }
    out.emplace_back(std::move(key), value);
    SkipSpace(json, &pos);
    if (pos >= json.size()) {
      return Status::InvalidArgument("unterminated object");
    }
    if (json[pos] == ',') {
      ++pos;
      continue;
    }
    if (json[pos] == '}') {
      ++pos;
      break;
    }
    return Status::InvalidArgument("expected ',' or '}' at offset " +
                                   std::to_string(pos));
  }
  SkipSpace(json, &pos);
  if (pos != json.size()) {
    return Status::InvalidArgument("trailing characters after object");
  }
  return out;
}

// --- Generic parser ------------------------------------------------------

namespace {

// Recursive-descent reader over `json`, tracking a byte cursor. Errors carry
// the offset so a bad scrape response is diagnosable from the message alone.
class JsonReader {
 public:
  explicit JsonReader(std::string_view json) : json_(json) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    Status status = ParseValue(&value, /*depth=*/0);
    if (!status.ok()) return status;
    Skip();
    if (pos_ != json_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::Corruption(what + " at offset " + std::to_string(pos_));
  }

  void Skip() {
    while (pos_ < json_.size() &&
           std::isspace(static_cast<unsigned char>(json_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(std::string_view literal) {
    if (json_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("JSON nesting too deep");
    Skip();
    if (pos_ >= json_.size()) return Error("unexpected end of document");
    switch (json_[pos_]) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
        if (!Consume("true")) return Error("invalid literal");
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = true;
        return Status::OK();
      case 'f':
        if (!Consume("false")) return Error("invalid literal");
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = false;
        return Status::OK();
      case 'n':
        if (!Consume("null")) return Error("invalid literal");
        out->kind = JsonValue::Kind::kNull;
        return Status::OK();
      default: return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    Skip();
    if (pos_ < json_.size() && json_[pos_] == '}') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      Skip();
      if (pos_ >= json_.size() || json_[pos_] != '"') {
        return Error("expected '\"' to open an object key");
      }
      std::string key;
      Status status = ParseString(&key);
      if (!status.ok()) return status;
      Skip();
      if (pos_ >= json_.size() || json_[pos_] != ':') {
        return Error("expected ':' after object key");
      }
      ++pos_;
      JsonValue value;
      status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      out->members.emplace_back(std::move(key), std::move(value));
      Skip();
      if (pos_ >= json_.size()) return Error("unterminated object");
      if (json_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (json_[pos_] == '}') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    Skip();
    if (pos_ < json_.size() && json_[pos_] == ']') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      JsonValue element;
      Status status = ParseValue(&element, depth + 1);
      if (!status.ok()) return status;
      out->array.push_back(std::move(element));
      Skip();
      if (pos_ >= json_.size()) return Error("unterminated array");
      if (json_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (json_[pos_] == ']') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or ']' in array");
    }
  }

  // Appends one UTF-8 encoded code point.
  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  // Reads 4 hex digits; returns false on malformed input.
  bool ReadHex4(uint32_t* out) {
    if (pos_ + 4 > json_.size()) return false;
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = json_[pos_ + static_cast<size_t>(i)];
      uint32_t digit;
      if (c >= '0' && c <= '9') digit = static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') digit = static_cast<uint32_t>(c - 'a') + 10;
      else if (c >= 'A' && c <= 'F') digit = static_cast<uint32_t>(c - 'A') + 10;
      else return false;
      value = (value << 4) | digit;
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    for (;;) {
      if (pos_ >= json_.size()) return Error("unterminated string");
      const char c = json_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= json_.size()) return Error("unterminated escape");
      const char esc = json_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp;
          if (!ReadHex4(&cp)) return Error("invalid \\u escape");
          if (cp >= 0xD800 && cp < 0xDC00) {  // high surrogate: need a pair
            if (pos_ + 1 < json_.size() && json_[pos_] == '\\' &&
                json_[pos_ + 1] == 'u') {
              pos_ += 2;
              uint32_t low;
              if (!ReadHex4(&low) || low < 0xDC00 || low > 0xDFFF) {
                return Error("invalid low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else {
              return Error("unpaired high surrogate");
            }
          } else if (cp >= 0xDC00 && cp < 0xE000) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default: return Error("invalid escape character");
      }
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    bool negative = false;
    if (pos_ < json_.size() && json_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    if (pos_ >= json_.size() ||
        !std::isdigit(static_cast<unsigned char>(json_[pos_]))) {
      return Error("invalid number");
    }
    uint64_t integral = 0;
    bool integral_overflow = false;
    while (pos_ < json_.size() &&
           std::isdigit(static_cast<unsigned char>(json_[pos_]))) {
      const uint64_t digit = static_cast<uint64_t>(json_[pos_] - '0');
      if (integral > (~uint64_t{0} - digit) / 10) {
        integral_overflow = true;
      } else {
        integral = integral * 10 + digit;
      }
      ++pos_;
    }
    bool fractional = false;
    if (pos_ < json_.size() && json_[pos_] == '.') {
      fractional = true;
      ++pos_;
      if (pos_ >= json_.size() ||
          !std::isdigit(static_cast<unsigned char>(json_[pos_]))) {
        return Error("digits required after decimal point");
      }
      while (pos_ < json_.size() &&
             std::isdigit(static_cast<unsigned char>(json_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < json_.size() && (json_[pos_] == 'e' || json_[pos_] == 'E')) {
      fractional = true;
      ++pos_;
      if (pos_ < json_.size() && (json_[pos_] == '+' || json_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= json_.size() ||
          !std::isdigit(static_cast<unsigned char>(json_[pos_]))) {
        return Error("digits required in exponent");
      }
      while (pos_ < json_.size() &&
             std::isdigit(static_cast<unsigned char>(json_[pos_]))) {
        ++pos_;
      }
    }
    out->kind = JsonValue::Kind::kNumber;
    const std::string text(json_.substr(start, pos_ - start));
    out->number = std::strtod(text.c_str(), nullptr);
    if (!negative && !fractional && !integral_overflow) {
      out->is_uint = true;
      out->uint_value = integral;
    }
    return Status::OK();
  }

  std::string_view json_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

Result<JsonValue> ParseJson(std::string_view json) {
  return JsonReader(json).Parse();
}

}  // namespace bwtk::obs
