// Structured reports over SearchStats and MetricsBlock: the bridge between
// the in-memory instrumentation (search/match.h counters, obs/metrics.h
// registry) and the machine-readable JSON consumed by trend tracking and CI
// (see docs/OBSERVABILITY.md for the documented schema).

#ifndef BWTK_OBS_REPORT_H_
#define BWTK_OBS_REPORT_H_

#include <string>
#include <string_view>

#include "obs/json.h"
#include "obs/metrics.h"
#include "search/match.h"
#include "util/status.h"

namespace bwtk::obs {

// --- SearchStats <-> JSON ------------------------------------------------

/// Appends `stats` as a flat JSON object value, one member per counter,
/// keyed by the field names of SearchStats ("stree_nodes", ...).
void AppendSearchStats(const SearchStats& stats, JsonWriter* writer);

/// `stats` as a standalone flat JSON object.
std::string SearchStatsToJson(const SearchStats& stats);

/// Inverse of SearchStatsToJson. Unknown keys fail (they signal a schema
/// drift the caller should know about); missing keys default to zero so old
/// reports parse under a grown struct.
Result<SearchStats> SearchStatsFromJson(std::string_view json);

// --- MetricsBlock -> JSON ------------------------------------------------

/// Appends `block`'s counters as an object value: {"rank_calls": N, ...}.
void AppendCounters(const MetricsBlock& block, JsonWriter* writer);

/// Appends `block`'s phase timers as an object value:
/// {"tree_traversal": {"nanos": N, "calls": C}, ...}. Every phase of the
/// catalog is present, including zero ones — consumers can rely on the keys.
void AppendPhases(const MetricsBlock& block, JsonWriter* writer);

/// Appends `block`'s histograms as an object value:
/// {"query_nanos": {"count": C, "sum": S, "buckets": [[index, count], ...]},
/// ...}. Only non-empty buckets appear; bucket `index` covers values in
/// [BucketLowerBound(index), BucketUpperBound(index)].
void AppendHistograms(const MetricsBlock& block, JsonWriter* writer);

// --- Per-run report ------------------------------------------------------

/// One measured run: the engine's own counters plus the registry delta
/// captured around it. This is the structured per-phase extension of
/// SearchStats — what a bench cell or a production probe reports.
struct SearchReport {
  SearchStats stats;
  MetricsBlock metrics;
  /// Active rank kernel of the index queried ("scalar"/"word64"/"avx2");
  /// empty when the producer did not record it. Makes reports
  /// self-describing — two runs with different kernels are not comparable
  /// rank-for-rank.
  std::string rank_kernel;
  /// q of the index's prefix interval table (0 = none attached).
  uint32_t prefix_table_q = 0;

  /// Appends {"stats": {...}, "counters": {...}, "phases": {...},
  /// "histograms": {...}, "rank_kernel": "...", "prefix_table_q": N} as an
  /// object value.
  void AppendJson(JsonWriter* writer) const;

  /// The report as a standalone JSON document.
  std::string ToJson() const;
};

}  // namespace bwtk::obs

#endif  // BWTK_OBS_REPORT_H_
