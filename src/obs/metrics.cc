#include "obs/metrics.h"

#include <algorithm>

#include "util/logging.h"

namespace bwtk::obs {

namespace {

constexpr std::string_view kCounterNames[kNumCounters] = {
    "rank_calls",      "rankall_calls",  "extend_calls", "extendall_calls",
    "lf_steps",        "locate_calls",   "rij_builds",   "rij_cache_hits",
    "merge_calls",     "chain_builds",   "batch_batches", "batch_queries",
    "prefix_table_hits", "prefix_table_skipped_steps",
    "shard_queries",   "seam_hits_deduped",
    "serve_submitted", "serve_completed", "serve_overloaded",
    "dict_searches",   "dict_patterns",   "dict_trie_nodes",
    "dict_shared_extends",
    "memo_lookups",    "memo_hits",       "memo_publishes",
    "result_cache_hits", "result_cache_misses", "result_cache_evictions",
    "shard_exact_shortcuts",
    "serve_stats_trailers", "serve_conn_overloaded",
    "serve_served_algorithm_a", "serve_served_stree", "serve_served_kerror",
    "serve_served_wildcard", "serve_served_dictionary",
    "serve_served_bidirectional",
    "bidir_searches", "bidir_left_extends", "bidir_right_extends",
};

constexpr std::string_view kPhaseNames[kNumPhases] = {
    "index_build", "tau_build", "ri_build",   "merge",
    "tree_traversal", "locate", "queue_wait", "worker_search",
    "prefix_table_build", "bidir_traversal",
};

constexpr std::string_view kHistNames[kNumHists] = {
    "query_nanos",
    "hits_per_query",
    "chain_length",
    "queue_wait_nanos",
    "serve_queue_nanos",
};

}  // namespace

std::string_view CounterName(CounterId id) {
  BWTK_DCHECK_LT(id, kNumCounters);
  return kCounterNames[id];
}

std::string_view PhaseName(PhaseId id) {
  BWTK_DCHECK_LT(id, kNumPhases);
  return kPhaseNames[id];
}

std::string_view HistName(HistId id) {
  BWTK_DCHECK_LT(id, kNumHists);
  return kHistNames[id];
}

Histogram& Histogram::operator+=(const Histogram& other) {
  for (size_t b = 0; b < kHistBuckets; ++b) buckets[b] += other.buckets[b];
  count += other.count;
  sum += other.sum;
  return *this;
}

Histogram& Histogram::operator-=(const Histogram& other) {
  for (size_t b = 0; b < kHistBuckets; ++b) buckets[b] -= other.buckets[b];
  count -= other.count;
  sum -= other.sum;
  return *this;
}

uint64_t EstimateQuantile(const Histogram& hist, double q) {
  if (hist.count == 0) return 0;
  if (q <= 0.0) q = 0.0;
  if (q >= 1.0) q = 1.0;
  // Rank of the target observation (1-based, clamped to [1, count]).
  const double target = q * static_cast<double>(hist.count);
  double rank = target < 1.0 ? 1.0 : target;
  double cumulative = 0.0;
  for (size_t b = 0; b < kHistBuckets; ++b) {
    const double in_bucket = static_cast<double>(hist.buckets[b]);
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket >= rank) {
      const uint64_t lo = BucketLowerBound(b);
      const uint64_t hi = BucketUpperBound(b);
      // Linear interpolation across the bucket's value range by the
      // fraction of the bucket's observations below the target rank.
      const double frac = (rank - cumulative) / in_bucket;
      const double width = static_cast<double>(hi - lo);
      return lo + static_cast<uint64_t>(width * frac);
    }
    cumulative += in_bucket;
  }
  return BucketUpperBound(kHistBuckets - 1);
}

MetricsBlock& MetricsBlock::operator+=(const MetricsBlock& other) {
  for (size_t i = 0; i < kNumCounters; ++i) counters[i] += other.counters[i];
  for (size_t i = 0; i < kNumPhases; ++i) {
    phase_nanos[i] += other.phase_nanos[i];
    phase_calls[i] += other.phase_calls[i];
  }
  for (size_t i = 0; i < kNumHists; ++i) hists[i] += other.hists[i];
  return *this;
}

MetricsBlock Diff(const MetricsBlock& after, const MetricsBlock& before) {
  MetricsBlock delta = after;
  for (size_t i = 0; i < kNumCounters; ++i) {
    delta.counters[i] -= before.counters[i];
  }
  for (size_t i = 0; i < kNumPhases; ++i) {
    delta.phase_nanos[i] -= before.phase_nanos[i];
    delta.phase_calls[i] -= before.phase_calls[i];
  }
  for (size_t i = 0; i < kNumHists; ++i) delta.hists[i] -= before.hists[i];
  return delta;
}

MetricsRegistry& MetricsRegistry::Instance() {
  // Leaked so that threads exiting after main (detached, or joined by a
  // static destructor elsewhere) can still safely Unregister.
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

namespace {

// Folds a *live* (possibly concurrently-written) block into `total` using
// relaxed per-slot loads; see the single-writer contract in metrics.h.
void AddSampled(MetricsBlock& total, const MetricsBlock& live) {
  for (size_t i = 0; i < kNumCounters; ++i) {
    total.counters[i] += SlotLoad(live.counters[i]);
  }
  for (size_t i = 0; i < kNumPhases; ++i) {
    total.phase_nanos[i] += SlotLoad(live.phase_nanos[i]);
    total.phase_calls[i] += SlotLoad(live.phase_calls[i]);
  }
  for (size_t i = 0; i < kNumHists; ++i) {
    Histogram& dst = total.hists[i];
    const Histogram& src = live.hists[i];
    for (size_t b = 0; b < kHistBuckets; ++b) {
      dst.buckets[b] += SlotLoad(src.buckets[b]);
    }
    dst.count += SlotLoad(src.count);
    dst.sum += SlotLoad(src.sum);
  }
}

}  // namespace

MetricsBlock MetricsRegistry::Snapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsBlock total = retired_;
  for (const MetricsBlock* block : live_) AddSampled(total, *block);
  return total;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  retired_.Clear();
  for (MetricsBlock* block : live_) block->Clear();
}

void MetricsRegistry::Register(MetricsBlock* block) {
  std::lock_guard<std::mutex> lock(mu_);
  live_.push_back(block);
}

void MetricsRegistry::Unregister(MetricsBlock* block) {
  std::lock_guard<std::mutex> lock(mu_);
  retired_ += *block;
  live_.erase(std::find(live_.begin(), live_.end(), block));
}

}  // namespace bwtk::obs
