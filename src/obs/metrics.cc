#include "obs/metrics.h"

#include <algorithm>

#include "util/logging.h"

namespace bwtk::obs {

namespace {

constexpr std::string_view kCounterNames[kNumCounters] = {
    "rank_calls",      "rankall_calls",  "extend_calls", "extendall_calls",
    "lf_steps",        "locate_calls",   "rij_builds",   "rij_cache_hits",
    "merge_calls",     "chain_builds",   "batch_batches", "batch_queries",
    "prefix_table_hits", "prefix_table_skipped_steps",
};

constexpr std::string_view kPhaseNames[kNumPhases] = {
    "index_build", "tau_build", "ri_build",   "merge",
    "tree_traversal", "locate", "queue_wait", "worker_search",
    "prefix_table_build",
};

constexpr std::string_view kHistNames[kNumHists] = {
    "query_nanos",
    "hits_per_query",
    "chain_length",
    "queue_wait_nanos",
};

}  // namespace

std::string_view CounterName(CounterId id) {
  BWTK_DCHECK_LT(id, kNumCounters);
  return kCounterNames[id];
}

std::string_view PhaseName(PhaseId id) {
  BWTK_DCHECK_LT(id, kNumPhases);
  return kPhaseNames[id];
}

std::string_view HistName(HistId id) {
  BWTK_DCHECK_LT(id, kNumHists);
  return kHistNames[id];
}

Histogram& Histogram::operator+=(const Histogram& other) {
  for (size_t b = 0; b < kHistBuckets; ++b) buckets[b] += other.buckets[b];
  count += other.count;
  sum += other.sum;
  return *this;
}

Histogram& Histogram::operator-=(const Histogram& other) {
  for (size_t b = 0; b < kHistBuckets; ++b) buckets[b] -= other.buckets[b];
  count -= other.count;
  sum -= other.sum;
  return *this;
}

MetricsBlock& MetricsBlock::operator+=(const MetricsBlock& other) {
  for (size_t i = 0; i < kNumCounters; ++i) counters[i] += other.counters[i];
  for (size_t i = 0; i < kNumPhases; ++i) {
    phase_nanos[i] += other.phase_nanos[i];
    phase_calls[i] += other.phase_calls[i];
  }
  for (size_t i = 0; i < kNumHists; ++i) hists[i] += other.hists[i];
  return *this;
}

MetricsBlock Diff(const MetricsBlock& after, const MetricsBlock& before) {
  MetricsBlock delta = after;
  for (size_t i = 0; i < kNumCounters; ++i) {
    delta.counters[i] -= before.counters[i];
  }
  for (size_t i = 0; i < kNumPhases; ++i) {
    delta.phase_nanos[i] -= before.phase_nanos[i];
    delta.phase_calls[i] -= before.phase_calls[i];
  }
  for (size_t i = 0; i < kNumHists; ++i) delta.hists[i] -= before.hists[i];
  return delta;
}

MetricsRegistry& MetricsRegistry::Instance() {
  // Leaked so that threads exiting after main (detached, or joined by a
  // static destructor elsewhere) can still safely Unregister.
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

MetricsBlock MetricsRegistry::Snapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsBlock total = retired_;
  for (const MetricsBlock* block : live_) total += *block;
  return total;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  retired_.Clear();
  for (MetricsBlock* block : live_) block->Clear();
}

void MetricsRegistry::Register(MetricsBlock* block) {
  std::lock_guard<std::mutex> lock(mu_);
  live_.push_back(block);
}

void MetricsRegistry::Unregister(MetricsBlock* block) {
  std::lock_guard<std::mutex> lock(mu_);
  retired_ += *block;
  live_.erase(std::find(live_.begin(), live_.end(), block));
}

}  // namespace bwtk::obs
