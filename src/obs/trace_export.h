// Trace serialization: Chrome trace-event JSON (loadable in Perfetto and
// chrome://tracing) and compact per-query summary records, built on the
// dependency-free JsonWriter of obs/json.h.
//
// The exported document is the Chrome "JSON object format": a top-level
// object whose "traceEvents" array holds complete ("ph": "X") slices —
// one per query plus one per recorded span, on the worker's timeline row —
// and whose extra keys carry bwtk-specific payloads viewers ignore:
//
//   {
//     "displayTimeUnit": "ns",
//     "otherData": { "producer": "bwtk", "schema": "bwtk_trace_v1" },
//     "traceEvents": [ ...metadata + slices... ],
//     "bwtk": {
//       "sample_rate": R, "traces_offered": N, "traces_dropped": N,
//       "summaries":    [ Summary... ],   // every retained sampled trace
//       "slow_queries": [ Summary... ]    // the N worst, slowest first
//     }
//   }
//
// A Summary is the compact per-query record: identity (trace id, engine,
// thread, k, pattern length), outcome (wall ns, matches, prefix-table
// hits), the query's SearchStats, per-span aggregate times, and the
// nodes-expanded-per-depth profile. The numeric core of a summary is also
// available as a flat {key: uint} object (TraceTotalsToJson) that
// round-trips through obs/json.h's ParseFlatUint64Object — the hook the
// tests use and the contract scripts can rely on.

#ifndef BWTK_OBS_TRACE_EXPORT_H_
#define BWTK_OBS_TRACE_EXPORT_H_

#include <string>

#include "obs/json.h"
#include "obs/trace.h"
#include "util/status.h"

namespace bwtk::obs {

/// Appends the Chrome trace-event slices of one trace (the query slice and
/// one slice per span) as array elements; the writer must be inside an open
/// array. Timestamps are microseconds (the Chrome convention), durations
/// keep nanosecond precision as fractional microseconds.
void AppendChromeEvents(const Trace& trace, JsonWriter* writer);

/// Appends one per-query summary record as an object value.
void AppendTraceSummary(const Trace& trace, JsonWriter* writer);

/// The numeric core of a summary as a flat {key: uint64} object value:
/// trace_id, k, pattern_length, wall_ns, matches, prefix_table_hits,
/// nodes_expanded, max_depth, spans, dropped_spans. Parseable with
/// ParseFlatUint64Object.
void AppendTraceTotals(const Trace& trace, JsonWriter* writer);

/// AppendTraceTotals as a standalone document.
std::string TraceTotalsToJson(const Trace& trace);

/// The whole sink (sampled + aux traces as timeline events, summaries and
/// the slow-query log in the "bwtk" section) as one Chrome-trace document.
std::string TraceFileJson(const TraceSink& sink);

/// Writes TraceFileJson(sink) to `path`.
Status WriteTraceFile(const TraceSink& sink, const std::string& path);

}  // namespace bwtk::obs

#endif  // BWTK_OBS_TRACE_EXPORT_H_
