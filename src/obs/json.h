// Minimal JSON emission (and a small flat-object parser) for the
// observability subsystem. Dependency-free by design: the container bakes in
// no JSON library, and the bench reports only need objects, arrays, strings,
// and numbers.

#ifndef BWTK_OBS_JSON_H_
#define BWTK_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace bwtk::obs {

/// Streaming JSON writer with automatic comma/nesting management.
///
/// Usage:
///   JsonWriter w;
///   w.BeginObject().Key("runs").BeginArray().Value(1).EndArray().EndObject();
///   std::string json = std::move(w).TakeString();
///
/// Emits compact (no-whitespace) JSON. Misuse (e.g. a Key at array level) is
/// a programming error and trips a BWTK_DCHECK; the writer performs no
/// runtime validation beyond that.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits the member name for the next Value/Begin* inside an object.
  JsonWriter& Key(std::string_view name);

  JsonWriter& Value(std::string_view value);
  JsonWriter& Value(const char* value) {
    return Value(std::string_view(value));
  }
  JsonWriter& Value(uint64_t value);
  JsonWriter& Value(int64_t value);
  JsonWriter& Value(int value) { return Value(static_cast<int64_t>(value)); }
  JsonWriter& Value(unsigned value) {
    return Value(static_cast<uint64_t>(value));
  }
  /// Doubles print with up-to-round-trip precision; non-finite values (not
  /// representable in JSON) are emitted as null.
  JsonWriter& Value(double value);
  JsonWriter& Value(bool value);
  JsonWriter& Null();

  /// The finished document. All containers must be closed.
  std::string TakeString() &&;
  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  // One frame per open container: 'o' / 'a', plus whether a member was
  // already emitted (comma bookkeeping).
  std::vector<std::pair<char, bool>> stack_;
  bool after_key_ = false;
};

/// Escapes `raw` for inclusion inside a JSON string literal (no quotes).
std::string JsonEscape(std::string_view raw);

/// Parses a flat JSON object whose values are all non-negative integers:
///   {"a": 1, "b": 2}
/// Returns the key/value pairs in document order. Rejects nesting, strings,
/// negative and fractional values — this is the inverse of the flat stat
/// objects this library emits (e.g. SearchStatsToJson), not a general
/// parser.
Result<std::vector<std::pair<std::string, uint64_t>>> ParseFlatUint64Object(
    std::string_view json);

// --- Generic JSON values -------------------------------------------------
// A small recursive JSON reader for consumers of the telemetry documents
// this library emits (the /varz.json exposition endpoint, bench reports):
// dependency-free like the writer above, tolerant of any well-formed JSON,
// and convenient for "walk down to one number" access patterns. Not a
// validating schema tool — tools/validate_*.py own that job.

/// One parsed JSON value. Objects preserve member order; lookups are
/// linear (telemetry documents are small).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  /// Numbers always fill `number`; integral values in uint64 range also
  /// set `is_uint` + `uint_value` so counters round-trip exactly.
  double number = 0.0;
  uint64_t uint_value = 0;
  bool is_uint = false;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> members;

  /// Object member by key, or nullptr (also nullptr on non-objects).
  const JsonValue* Find(std::string_view key) const;

  /// Nested lookup: Get("windows", "10s", "seconds"). nullptr anywhere
  /// along the path yields nullptr.
  template <typename... Keys>
  const JsonValue* Get(std::string_view key, Keys... rest) const {
    const JsonValue* next = Find(key);
    if constexpr (sizeof...(rest) == 0) {
      return next;
    } else {
      return next == nullptr ? nullptr : next->Get(rest...);
    }
  }

  /// Loose numeric accessors with fallbacks (telemetry consumers prefer a
  /// zero to an exception when a field is absent in an older server).
  double AsNumber(double fallback = 0.0) const {
    return kind == Kind::kNumber ? number : fallback;
  }
  uint64_t AsUint(uint64_t fallback = 0) const {
    return kind == Kind::kNumber && is_uint ? uint_value
           : kind == Kind::kNumber ? static_cast<uint64_t>(number)
                                   : fallback;
  }
};

/// Parses one JSON document (object, array, or scalar; surrounding
/// whitespace allowed, trailing garbage rejected). kCorruption on any
/// syntax error or nesting deeper than an internal cap.
Result<JsonValue> ParseJson(std::string_view json);

}  // namespace bwtk::obs

#endif  // BWTK_OBS_JSON_H_
