// Minimal JSON emission (and a small flat-object parser) for the
// observability subsystem. Dependency-free by design: the container bakes in
// no JSON library, and the bench reports only need objects, arrays, strings,
// and numbers.

#ifndef BWTK_OBS_JSON_H_
#define BWTK_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace bwtk::obs {

/// Streaming JSON writer with automatic comma/nesting management.
///
/// Usage:
///   JsonWriter w;
///   w.BeginObject().Key("runs").BeginArray().Value(1).EndArray().EndObject();
///   std::string json = std::move(w).TakeString();
///
/// Emits compact (no-whitespace) JSON. Misuse (e.g. a Key at array level) is
/// a programming error and trips a BWTK_DCHECK; the writer performs no
/// runtime validation beyond that.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits the member name for the next Value/Begin* inside an object.
  JsonWriter& Key(std::string_view name);

  JsonWriter& Value(std::string_view value);
  JsonWriter& Value(const char* value) {
    return Value(std::string_view(value));
  }
  JsonWriter& Value(uint64_t value);
  JsonWriter& Value(int64_t value);
  JsonWriter& Value(int value) { return Value(static_cast<int64_t>(value)); }
  JsonWriter& Value(unsigned value) {
    return Value(static_cast<uint64_t>(value));
  }
  /// Doubles print with up-to-round-trip precision; non-finite values (not
  /// representable in JSON) are emitted as null.
  JsonWriter& Value(double value);
  JsonWriter& Value(bool value);
  JsonWriter& Null();

  /// The finished document. All containers must be closed.
  std::string TakeString() &&;
  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  // One frame per open container: 'o' / 'a', plus whether a member was
  // already emitted (comma bookkeeping).
  std::vector<std::pair<char, bool>> stack_;
  bool after_key_ = false;
};

/// Escapes `raw` for inclusion inside a JSON string literal (no quotes).
std::string JsonEscape(std::string_view raw);

/// Parses a flat JSON object whose values are all non-negative integers:
///   {"a": 1, "b": 2}
/// Returns the key/value pairs in document order. Rejects nesting, strings,
/// negative and fractional values — this is the inverse of the flat stat
/// objects this library emits (e.g. SearchStatsToJson), not a general
/// parser.
Result<std::vector<std::pair<std::string, uint64_t>>> ParseFlatUint64Object(
    std::string_view json);

}  // namespace bwtk::obs

#endif  // BWTK_OBS_JSON_H_
