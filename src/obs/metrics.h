// Observability core: a process-wide metrics registry with monotonic
// counters, nanosecond phase timers, and log2-bucketed histograms.
//
// Design goals, in order:
//   1. Near-zero overhead on the hot path. Every hook is a relaxed
//      single-writer increment of a thread-local slab (no RMW atomics, no
//      locks, no hashing, no string lookups — see SlotAdd below). Metric
//      identities are compile-time enum indices.
//   2. Zero overhead when compiled out. Building with -DBWTK_DISABLE_METRICS
//      (CMake option BWTK_DISABLE_METRICS) expands every BWTK_METRIC_* /
//      BWTK_SCOPED_* hook to `(void)0`; the instrumented code paths are
//      byte-identical to never having been instrumented.
//   3. Safe aggregation. Each thread owns a MetricsBlock; blocks register
//      with the global MetricsRegistry on first use and fold into a retired
//      accumulator on thread exit. Snapshot() sums retired + live blocks.
//
// Synchronization contract: each slot has exactly ONE writer (the owning
// thread), so hooks need no read-modify-write atomics — they do relaxed
// atomic_ref load/add/store on the thread's own slab, which costs the same
// as a plain increment but makes concurrent *readers* well-defined.
//   - Snapshot() may run at any time, concurrent with active writers. It
//     reads live blocks through relaxed atomic_ref loads, so every field is
//     individually torn-free and monotone; the block as a whole is NOT a
//     consistent cut (a counter may include a query whose histogram
//     observation hasn't landed yet). The windowed aggregator
//     (obs/windowed.h) is built on exactly this guarantee.
//   - Reset() still requires quiescent writers (ordered before the call by a
//     join or mutex): it writes other threads' blocks. That is how the bench
//     harness uses it. A Reset concurrent-ish with an aggregator shows up
//     there as a detected regression, not as UB — see WindowedAggregator.
//
// The catalog (which counter/phase/histogram exists, where it is incremented,
// and which paper quantity it corresponds to) is documented in
// docs/OBSERVABILITY.md; keep the enum lists, the name tables in metrics.cc,
// and that document in sync when adding a metric.

#ifndef BWTK_OBS_METRICS_H_
#define BWTK_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

namespace bwtk::obs {

// --- Metric catalog ------------------------------------------------------
// One enumerator per metric; values index fixed-size arrays in MetricsBlock.
// Append new entries just before the kNum* terminator and add the matching
// name to the table in metrics.cc (CHECKed at startup to stay in sync).

/// Monotonic event counters.
enum CounterId : uint32_t {
  // bwt layer. Rank work is never counted per call: Extend/ExtendAll are
  // tens-of-ns operations, so the query-path callers tally invocations in
  // locals and flush totals to the registry once per query (MatchForward
  // after its loop; the S-tree/Algorithm A engines at query end, deriving
  // extendall = extend_calls / 4 and rankall = 2 * extendall). LF steps
  // (one Rank each) are counted per call — they sit on the µs-scale Locate
  // path. The k-error/wildcard extensions are not instrumented. See the
  // note in occ_table.h.
  kCounterRankCalls,       ///< OccTable::Rank invocations.
  kCounterRankAllCalls,    ///< OccTable::RankAll invocations.
  kCounterExtendCalls,     ///< FmIndex::Extend backward-search steps.
  kCounterExtendAllCalls,  ///< FmIndex::ExtendAll fused 4-way steps.
  kCounterLfSteps,         ///< LF-mapping steps (Locate / SuffixArrayValue).
  kCounterLocateCalls,     ///< FmIndex::Locate range resolutions.
  // mismatch / Algorithm A layer.
  kCounterRijBuilds,     ///< R_ij mismatch arrays computed (cache misses).
  kCounterRijCacheHits,  ///< R_ij lookups served from the per-query cache.
  kCounterMergeCalls,    ///< merge()-based chain derivations (Prop. 1).
  kCounterChainBuilds,   ///< chains recorded for later derivation.
  // batch layer.
  kCounterBatchBatches,  ///< BatchSearcher::Search batches issued.
  kCounterBatchQueries,  ///< queries executed by batch workers.
  // prefix interval table (bwt/prefix_table.h). Flushed per query like the
  // rank counters above.
  kCounterPrefixTableHits,  ///< q-gram lookups that returned a range.
  /// Backward-search steps elided by prefix-table hits (q per hit) — the
  /// Extend calls that would have run without the table; compare against
  /// extend_calls to see the fraction of stepping the table absorbed.
  kCounterPrefixTableSkippedSteps,
  // shard layer (shard/sharded_searcher.h). Counted by the router, off the
  // per-node hot path.
  kCounterShardQueries,     ///< (query, shard) tasks fanned out by routers.
  kCounterSeamHitsDeduped,  ///< overlap-seam hits discarded by ownership.
  // serving layer (serve/session.h). Counted at admission/completion — once
  // per ticket, never per node.
  kCounterServeSubmitted,   ///< tickets admitted by Session::Submit.
  kCounterServeCompleted,   ///< tickets whose search finished (any status).
  /// Submissions rejected by admission control (queue full or the client's
  /// in-flight budget exhausted) — the service's Overloaded responses.
  kCounterServeOverloaded,
  // dictionary layer (dict/dictionary_searcher.h). Flushed once per
  // SearchAll/SearchBest call, never per node.
  kCounterDictSearches,  ///< DictionarySearcher walks executed.
  kCounterDictPatterns,  ///< patterns answered by those walks (set sizes).
  kCounterDictTrieNodes,  ///< PatternSetTrie nodes allocated at build.
  /// ExtendAll calls issued at joint-descent states with >= 2 live trie
  /// children — the amortization events where one rank pass answered for
  /// multiple patterns at once. Compare against extendall_calls to see how
  /// much sharing the pattern set actually exposes.
  kCounterDictSharedExtends,
  // cross-query reuse layer (search/subtree_memo.h, search/result_cache.h).
  // Memo counters are flushed once per query from locals; cache counters are
  // counted inside the cache (per query, never per node).
  kCounterMemoLookups,    ///< shared-memo probes issued by Algorithm A.
  kCounterMemoHits,       ///< probes that skipped a whole subtree.
  kCounterMemoPublishes,  ///< completed subtrees published to the memo.
  kCounterResultCacheHits,       ///< queries answered from the result cache.
  kCounterResultCacheMisses,     ///< result-cache probes that missed.
  kCounterResultCacheEvictions,  ///< LRU entries evicted to fit capacity.
  /// Sharded k=0 point lookups answered by the exact-match short-circuit
  /// instead of the engine fan-out (shard/sharded_searcher.h).
  kCounterShardExactShortcuts,
  // serving telemetry (serve/server.h, serve/session.h). Counted once per
  // request/ticket — never per node — so they sit outside the engine hot
  // paths like the other serve counters above.
  kCounterServeStatsTrailers,   ///< queries that requested a stats trailer.
  /// Layer-1 admission rejections attributed to a connection's own in-flight
  /// budget (`max_inflight_per_conn`), as opposed to the global Session
  /// queue rejections already counted by serve_overloaded.
  kCounterServeConnOverloaded,
  // Per-engine served-query counts: which BatchEngine actually answered the
  // traffic. A Session pins one engine, so at most one of these moves per
  // process unless multiple Sessions coexist.
  kCounterServeServedAlgorithmA,  ///< tickets served by the algorithm_a engine.
  kCounterServeServedStree,       ///< tickets served by the stree engine.
  kCounterServeServedKError,      ///< tickets served by the kerror engine.
  kCounterServeServedWildcard,    ///< tickets served by the wildcard engine.
  kCounterServeServedDictionary,  ///< tickets served by the dictionary engine.
  /// Tickets served by the bidirectional engine. kAuto tickets count under
  /// the engine the auto-pick resolved to, never a separate bucket.
  kCounterServeServedBidirectional,
  // bidirectional search-scheme engine (bidir/bidir_search.h). Flushed once
  // per query like the other engine counters.
  kCounterBidirSearches,      ///< scheme searches walked (per query, per search).
  kCounterBidirLeftExtends,   ///< leftward BiFmIndex ExtendAll steps.
  kCounterBidirRightExtends,  ///< rightward BiFmIndex ExtendAll steps.
  kNumCounters
};

/// Timed phases. Phases may nest (merge and locate run inside traversal);
/// they are a breakdown of where time goes, not a disjoint partition.
enum PhaseId : uint32_t {
  kPhaseIndexBuild,     ///< FmIndex::Build (SA-IS + BWT + checkpoints).
  kPhaseTauBuild,       ///< ComputeTau preprocessing per query.
  kPhaseRiBuild,        ///< PatternLcp + R_ij construction (cache misses).
  kPhaseMerge,          ///< derived chain walks (merge of mismatch arrays).
  kPhaseTreeTraversal,  ///< the S-tree/DAG enumeration loop of a query.
  kPhaseLocate,         ///< FmIndex::Locate (row -> text position).
  kPhaseQueueWait,      ///< batch workers blocked waiting for work.
  kPhaseWorkerSearch,   ///< batch workers executing a batch's queries.
  kPhasePrefixTableBuild,  ///< PrefixIntervalTable::Build (index build time).
  kPhaseBidirTraversal,    ///< the search-scheme walk of a bidirectional query.
  kNumPhases
};

/// Log2-bucketed histograms.
enum HistId : uint32_t {
  kHistQueryNanos,      ///< wall nanoseconds per Search call.
  kHistHitsPerQuery,    ///< occurrences reported per Search call.
  kHistChainLength,     ///< nodes per recorded chain.
  kHistQueueWaitNanos,  ///< nanoseconds per worker wait episode.
  /// Nanoseconds a serving-layer ticket spent queued between admission and
  /// worker pickup — the queue-wait component of service latency the
  /// ROADMAP's serving item set out to measure and reclaim.
  kHistServeQueueNanos,
  kNumHists
};

/// Stable snake_case metric names (used as JSON keys).
std::string_view CounterName(CounterId id);
std::string_view PhaseName(PhaseId id);
std::string_view HistName(HistId id);

// --- Histogram -----------------------------------------------------------

/// Bucket 0 holds exact zeros; bucket b >= 1 holds values in
/// [2^(b-1), 2^b - 1]. uint64 values need bit_width up to 64, hence 65.
inline constexpr size_t kHistBuckets = 65;

constexpr size_t BucketIndex(uint64_t value) {
  return value == 0 ? 0 : static_cast<size_t>(std::bit_width(value));
}

/// Smallest value landing in bucket `b`.
constexpr uint64_t BucketLowerBound(size_t b) {
  return b == 0 ? 0 : uint64_t{1} << (b - 1);
}

/// Largest value landing in bucket `b` (inclusive).
constexpr uint64_t BucketUpperBound(size_t b) {
  return b == 0 ? 0
         : b >= 64 ? ~uint64_t{0}
                   : (uint64_t{1} << b) - 1;
}

// --- Single-writer slots -------------------------------------------------
// Every uint64 metric slot has exactly one writer (the owning thread). These
// helpers make those writes — and concurrent Snapshot reads — data-race-free
// without read-modify-write cost: a relaxed load + add + relaxed store of a
// slot only the caller mutates compiles to the same mov/add/mov sequence as
// a plain `slot += n`. C++20 has no atomic_ref<const T>, hence the
// const_cast on the read side (the referenced objects are never actually
// const).

inline void SlotAdd(uint64_t& slot, uint64_t n) {
  std::atomic_ref<uint64_t> ref(slot);
  ref.store(ref.load(std::memory_order_relaxed) + n,
            std::memory_order_relaxed);
}

inline uint64_t SlotLoad(const uint64_t& slot) {
  return std::atomic_ref<uint64_t>(const_cast<uint64_t&>(slot))
      .load(std::memory_order_relaxed);
}

/// Fixed-size log2 histogram; mergeable like the counters.
struct Histogram {
  std::array<uint64_t, kHistBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;

  void Observe(uint64_t value) {
    SlotAdd(buckets[BucketIndex(value)], 1);
    SlotAdd(count, 1);
    SlotAdd(sum, value);
  }

  Histogram& operator+=(const Histogram& other);
  Histogram& operator-=(const Histogram& other);  // for snapshot deltas
  bool operator==(const Histogram&) const = default;
};

/// Estimates the `q`-quantile (q in [0, 1]) of the observed distribution by
/// linear interpolation within the log2 bucket where the cumulative count
/// crosses q * count. Returns 0 for an empty histogram. The error is bounded
/// by the bucket width, so estimates are order-of-magnitude faithful — fine
/// for latency reporting, not for exact percentiles.
uint64_t EstimateQuantile(const Histogram& hist, double q);

// --- Storage -------------------------------------------------------------

/// One thread's (or one aggregated) worth of every metric.
struct MetricsBlock {
  std::array<uint64_t, kNumCounters> counters{};
  std::array<uint64_t, kNumPhases> phase_nanos{};
  std::array<uint64_t, kNumPhases> phase_calls{};
  std::array<Histogram, kNumHists> hists{};

  void Clear() { *this = MetricsBlock{}; }
  MetricsBlock& operator+=(const MetricsBlock& other);
  bool operator==(const MetricsBlock&) const = default;
};

/// after - before, element-wise. Only meaningful when `before` was
/// snapshotted earlier than `after` with no Reset() in between.
MetricsBlock Diff(const MetricsBlock& after, const MetricsBlock& before);

/// Process-wide registry of per-thread blocks. See the file comment for the
/// Snapshot()/Reset() synchronization contract.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  /// Sum of every retired thread's totals plus all live thread blocks.
  /// Safe to call concurrently with active writers: live blocks are read
  /// through relaxed atomic loads (per-field torn-free, not a consistent
  /// cross-field cut — see the file comment).
  MetricsBlock Snapshot();

  /// Zeroes the retired totals and every live block. Writers must be
  /// quiescent (ordered before this call).
  void Reset();

  // Called by the thread-local holder; not for direct use.
  void Register(MetricsBlock* block);
  void Unregister(MetricsBlock* block);  // folds *block into retired totals

 private:
  MetricsRegistry() = default;

  std::mutex mu_;
  MetricsBlock retired_;
  std::vector<MetricsBlock*> live_;
};

namespace internal {

/// Registers the enclosing thread's block for its lifetime.
struct BlockHolder {
  MetricsBlock block;
  BlockHolder() { MetricsRegistry::Instance().Register(&block); }
  ~BlockHolder() { MetricsRegistry::Instance().Unregister(&block); }
  BlockHolder(const BlockHolder&) = delete;
  BlockHolder& operator=(const BlockHolder&) = delete;
};

}  // namespace internal

// --- Hot-path hooks ------------------------------------------------------

/// The calling thread's metrics slab (created and registered on first use).
inline MetricsBlock& LocalBlock() {
  thread_local internal::BlockHolder holder;
  return holder.block;
}

inline void Count(CounterId id, uint64_t n = 1) {
  SlotAdd(LocalBlock().counters[id], n);
}

/// Fused two-counter bump: one thread-local lookup instead of two. The TLS
/// access (with its dynamic-init guard) dominates the hook cost, so sites
/// inside the backward-search step use this to stay inside the overhead
/// budget (see "Overhead methodology" in docs/OBSERVABILITY.md).
inline void Count2(CounterId a, uint64_t na, CounterId b, uint64_t nb) {
  MetricsBlock& block = LocalBlock();
  SlotAdd(block.counters[a], na);
  SlotAdd(block.counters[b], nb);
}

inline void AddPhaseNanos(PhaseId phase, uint64_t nanos) {
  MetricsBlock& block = LocalBlock();
  SlotAdd(block.phase_nanos[phase], nanos);
  SlotAdd(block.phase_calls[phase], 1);
}

inline void Observe(HistId id, uint64_t value) {
  LocalBlock().hists[id].Observe(value);
}

/// RAII phase timer: charges the enclosing scope's wall time to `phase`.
class ScopedTimer {
 public:
  explicit ScopedTimer(PhaseId phase)
      : phase_(phase), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() { AddPhaseNanos(phase_, ElapsedNanos()); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  PhaseId phase_;
  std::chrono::steady_clock::time_point start_;
};

/// RAII histogram timer: observes the enclosing scope's wall nanoseconds.
class ScopedHistTimer {
 public:
  explicit ScopedHistTimer(HistId id)
      : id_(id), start_(std::chrono::steady_clock::now()) {}
  ~ScopedHistTimer() {
    Observe(id_, static_cast<uint64_t>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - start_)
                         .count()));
  }
  ScopedHistTimer(const ScopedHistTimer&) = delete;
  ScopedHistTimer& operator=(const ScopedHistTimer&) = delete;

 private:
  HistId id_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bwtk::obs

// --- Instrumentation macros ----------------------------------------------
// All instrumentation sites use these macros, never the functions directly,
// so a single compile definition turns the whole subsystem into no-ops.
// The classes and functions above are defined unconditionally (identically
// in every translation unit — no ODR hazard); only the macro expansions
// change.

#if !defined(BWTK_DISABLE_METRICS)
#define BWTK_METRICS_ENABLED 1
#else
#define BWTK_METRICS_ENABLED 0
#endif

#define BWTK_OBS_CONCAT_INNER(a, b) a##b
#define BWTK_OBS_CONCAT(a, b) BWTK_OBS_CONCAT_INNER(a, b)

#if BWTK_METRICS_ENABLED

/// Adds 1 to counter `id` (a bare CounterId enumerator name).
#define BWTK_METRIC_COUNT(id) ::bwtk::obs::Count(::bwtk::obs::id)
/// Adds `n` to counter `id`.
#define BWTK_METRIC_COUNT_N(id, n) ::bwtk::obs::Count(::bwtk::obs::id, (n))
/// Adds `na` to counter `a` and `nb` to counter `b` with one TLS lookup.
#define BWTK_METRIC_COUNT2(a, na, b, nb) \
  ::bwtk::obs::Count2(::bwtk::obs::a, (na), ::bwtk::obs::b, (nb))
/// Records `value` into histogram `id`.
#define BWTK_METRIC_OBSERVE(id, value) \
  ::bwtk::obs::Observe(::bwtk::obs::id, (value))
/// Charges the rest of the enclosing scope's wall time to phase `id`.
#define BWTK_SCOPED_TIMER(id)                                  \
  ::bwtk::obs::ScopedTimer BWTK_OBS_CONCAT(bwtk_obs_timer_,    \
                                           __LINE__)(::bwtk::obs::id)
/// Observes the rest of the enclosing scope's wall nanos into histogram `id`.
#define BWTK_SCOPED_HIST_TIMER(id)                                  \
  ::bwtk::obs::ScopedHistTimer BWTK_OBS_CONCAT(bwtk_obs_htimer_,    \
                                               __LINE__)(::bwtk::obs::id)

#else  // BWTK_METRICS_ENABLED

#define BWTK_METRIC_COUNT(id) ((void)0)
#define BWTK_METRIC_COUNT_N(id, n) ((void)0)
#define BWTK_METRIC_COUNT2(a, na, b, nb) ((void)0)
#define BWTK_METRIC_OBSERVE(id, value) ((void)0)
#define BWTK_SCOPED_TIMER(id) ((void)0)
#define BWTK_SCOPED_HIST_TIMER(id) ((void)0)

#endif  // BWTK_METRICS_ENABLED

#endif  // BWTK_OBS_METRICS_H_
