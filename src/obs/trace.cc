#include "obs/trace.h"

#include <algorithm>
#include <utility>

namespace bwtk::obs {

namespace {

// Constant-initialized POD TLS: the access in ActiveTrace is a plain load,
// no dynamic-init guard.
thread_local Trace* g_active_trace = nullptr;

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Min-heap by wall time: front is the least slow retained trace, i.e. the
// eviction candidate.
bool SlowerFirst(const Trace& a, const Trace& b) {
  return a.wall_ns > b.wall_ns;
}

void SortByTraceId(std::vector<Trace>* traces) {
  std::sort(traces->begin(), traces->end(),
            [](const Trace& a, const Trace& b) {
              return a.trace_id < b.trace_id;
            });
}

}  // namespace

Trace* ActiveTrace() { return g_active_trace; }

ScopedTraceActivation::ScopedTraceActivation(Trace* trace)
    : prev_(g_active_trace) {
  g_active_trace = trace;
}

ScopedTraceActivation::~ScopedTraceActivation() { g_active_trace = prev_; }

TraceSink::TraceSink(const TraceSinkOptions& options) : options_(options) {}

bool TraceSink::ShouldSample(uint64_t trace_id) const {
  if (options_.sample_rate >= 1.0) return true;
  if (options_.sample_rate <= 0.0) return false;
  const uint64_t h = Mix64(trace_id ^ options_.sample_seed);
  // h / 2^64 is uniform in [0, 1); compare against the rate.
  return static_cast<double>(h) * 0x1p-64 < options_.sample_rate;
}

void TraceSink::Offer(Trace&& trace) {
  std::lock_guard<std::mutex> lock(mu_);
  ++offered_;
  if (options_.slow_trace_count > 0) {
    if (slow_.size() < options_.slow_trace_count) {
      slow_.push_back(trace);  // copy: the move below may also want it
      std::push_heap(slow_.begin(), slow_.end(), SlowerFirst);
    } else if (trace.wall_ns > slow_.front().wall_ns) {
      std::pop_heap(slow_.begin(), slow_.end(), SlowerFirst);
      slow_.back() = trace;
      std::push_heap(slow_.begin(), slow_.end(), SlowerFirst);
    }
  }
  if (sampled_.size() < options_.max_sampled_traces) {
    sampled_.push_back(std::move(trace));
  } else {
    ++dropped_;
  }
}

void TraceSink::OfferAux(Trace&& trace) {
  std::lock_guard<std::mutex> lock(mu_);
  if (aux_.size() < options_.max_sampled_traces) {
    aux_.push_back(std::move(trace));
  }
}

std::vector<Trace> TraceSink::SampledTraces() const {
  std::vector<Trace> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = sampled_;
  }
  SortByTraceId(&out);
  return out;
}

std::vector<Trace> TraceSink::SlowTraces() const {
  std::vector<Trace> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = slow_;
  }
  std::sort(out.begin(), out.end(), [](const Trace& a, const Trace& b) {
    return a.wall_ns != b.wall_ns ? a.wall_ns > b.wall_ns
                                  : a.trace_id < b.trace_id;
  });
  return out;
}

std::vector<Trace> TraceSink::AuxTraces() const {
  std::vector<Trace> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = aux_;
  }
  SortByTraceId(&out);
  return out;
}

uint64_t TraceSink::traces_offered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return offered_;
}

uint64_t TraceSink::traces_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  sampled_.clear();
  slow_.clear();
  aux_.clear();
  offered_ = 0;
  dropped_ = 0;
}

ScopedQueryTrace::ScopedQueryTrace(TraceSink* sink, uint64_t trace_id,
                                   std::string_view engine, int32_t k,
                                   size_t pattern_length,
                                   uint32_t thread_index, uint32_t shard_id) {
  if (sink == nullptr || !sink->ShouldSample(trace_id)) return;
  sink_ = sink;
  active_ = true;
  trace_.trace_id = trace_id;
  trace_.engine.assign(engine);
  trace_.k = k;
  trace_.thread_index = thread_index;
  trace_.shard_id = shard_id;
  trace_.pattern_length = pattern_length;
  trace_.nodes_per_depth.reserve(pattern_length + 1);
  trace_.begin_ns = TraceClockNanos();
  prev_ = g_active_trace;
  g_active_trace = &trace_;
}

void ScopedQueryTrace::Finish(uint64_t matches, const SearchStats& stats) {
  if (!active_) return;
  trace_.wall_ns = TraceClockNanos() - trace_.begin_ns;
  trace_.matches = matches;
  trace_.stats = stats;
  finished_ = true;
}

ScopedQueryTrace::~ScopedQueryTrace() {
  if (!active_) return;
  g_active_trace = prev_;
  if (!finished_) trace_.wall_ns = TraceClockNanos() - trace_.begin_ns;
  sink_->Offer(std::move(trace_));
}

}  // namespace bwtk::obs
