#include "obs/report.h"

#include <utility>
#include <vector>

namespace bwtk::obs {

namespace {

// Name/member table for SearchStats, shared by the serializer and the
// parser so the two cannot drift apart.
struct StatsField {
  std::string_view name;
  uint64_t SearchStats::* member;
};

constexpr StatsField kStatsFields[] = {
    {"stree_nodes", &SearchStats::stree_nodes},
    {"extend_calls", &SearchStats::extend_calls},
    {"completed_paths", &SearchStats::completed_paths},
    {"tau_pruned", &SearchStats::tau_pruned},
    {"budget_pruned", &SearchStats::budget_pruned},
    {"mtree_nodes", &SearchStats::mtree_nodes},
    {"mtree_leaves", &SearchStats::mtree_leaves},
    {"reused_nodes", &SearchStats::reused_nodes},
    {"derived_runs", &SearchStats::derived_runs},
};

}  // namespace

void AppendSearchStats(const SearchStats& stats, JsonWriter* writer) {
  writer->BeginObject();
  for (const StatsField& field : kStatsFields) {
    writer->Key(field.name).Value(stats.*field.member);
  }
  writer->EndObject();
}

std::string SearchStatsToJson(const SearchStats& stats) {
  JsonWriter writer;
  AppendSearchStats(stats, &writer);
  return std::move(writer).TakeString();
}

Result<SearchStats> SearchStatsFromJson(std::string_view json) {
  auto parsed = ParseFlatUint64Object(json);
  if (!parsed.ok()) return parsed.status();
  SearchStats stats;
  for (const auto& [key, value] : *parsed) {
    bool known = false;
    for (const StatsField& field : kStatsFields) {
      if (field.name == key) {
        stats.*field.member = value;
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument("unknown SearchStats field \"" + key +
                                     "\"");
    }
  }
  return stats;
}

void AppendCounters(const MetricsBlock& block, JsonWriter* writer) {
  writer->BeginObject();
  for (uint32_t i = 0; i < kNumCounters; ++i) {
    writer->Key(CounterName(static_cast<CounterId>(i)))
        .Value(block.counters[i]);
  }
  writer->EndObject();
}

void AppendPhases(const MetricsBlock& block, JsonWriter* writer) {
  writer->BeginObject();
  for (uint32_t i = 0; i < kNumPhases; ++i) {
    writer->Key(PhaseName(static_cast<PhaseId>(i)))
        .BeginObject()
        .Key("nanos")
        .Value(block.phase_nanos[i])
        .Key("calls")
        .Value(block.phase_calls[i])
        .EndObject();
  }
  writer->EndObject();
}

void AppendHistograms(const MetricsBlock& block, JsonWriter* writer) {
  writer->BeginObject();
  for (uint32_t i = 0; i < kNumHists; ++i) {
    const Histogram& hist = block.hists[i];
    writer->Key(HistName(static_cast<HistId>(i)))
        .BeginObject()
        .Key("count")
        .Value(hist.count)
        .Key("sum")
        .Value(hist.sum)
        .Key("buckets")
        .BeginArray();
    for (size_t b = 0; b < kHistBuckets; ++b) {
      if (hist.buckets[b] == 0) continue;
      writer->BeginArray()
          .Value(static_cast<uint64_t>(b))
          .Value(hist.buckets[b])
          .EndArray();
    }
    writer->EndArray().EndObject();
  }
  writer->EndObject();
}

void SearchReport::AppendJson(JsonWriter* writer) const {
  writer->BeginObject().Key("stats");
  AppendSearchStats(stats, writer);
  writer->Key("counters");
  AppendCounters(metrics, writer);
  writer->Key("phases");
  AppendPhases(metrics, writer);
  writer->Key("histograms");
  AppendHistograms(metrics, writer);
  writer->Key("rank_kernel").Value(rank_kernel);
  writer->Key("prefix_table_q").Value(prefix_table_q);
  writer->EndObject();
}

std::string SearchReport::ToJson() const {
  JsonWriter writer;
  AppendJson(&writer);
  return std::move(writer).TakeString();
}

}  // namespace bwtk::obs
