#include "obs/exposition.h"

#include <cinttypes>
#include <cstdio>

#include "obs/report.h"

namespace bwtk::obs {

namespace {

constexpr double kNanosPerSecond = 1e9;

// Shortest round-trip-ish double formatting for sample values; Prometheus
// accepts any Go-parseable float.
std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void AppendLabels(
    const std::vector<std::pair<std::string, std::string>>& labels,
    std::string* out) {
  if (labels.empty()) return;
  out->push_back('{');
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out->push_back(',');
    first = false;
    *out += key;
    *out += "=\"";
    *out += PrometheusLabelEscape(value);
    out->push_back('"');
  }
  out->push_back('}');
}

void AppendSample(
    std::string_view name,
    const std::vector<std::pair<std::string, std::string>>& labels,
    double value, std::string* out) {
  *out += name;
  AppendLabels(labels, out);
  out->push_back(' ');
  *out += FormatDouble(value);
  out->push_back('\n');
}

void AppendHeader(std::string_view name, std::string_view type,
                  std::string_view help, std::string* out) {
  *out += "# HELP ";
  *out += name;
  out->push_back(' ');
  *out += help;
  out->push_back('\n');
  *out += "# TYPE ";
  *out += name;
  out->push_back(' ');
  *out += type;
  out->push_back('\n');
}

const Histogram* WindowHist(const WindowView& view, size_t hist) {
  return &view.window.delta.hists[hist];
}

}  // namespace

std::vector<std::pair<std::string, uint64_t>> StandardWindows() {
  return {
      {"10s", uint64_t{10} * 1'000'000'000},
      {"1m", uint64_t{60} * 1'000'000'000},
      {"5m", uint64_t{300} * 1'000'000'000},
  };
}

std::string PrometheusLabelEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string RenderPrometheusText(const MetricsBlock& total,
                                 const std::vector<WindowView>& windows,
                                 const std::vector<GaugeSample>& extra) {
  std::string out;
  out.reserve(16 * 1024);

  // Cumulative counters: one series each, `_total` suffix.
  for (uint32_t i = 0; i < kNumCounters; ++i) {
    const std::string name =
        "bwtk_" + std::string(CounterName(static_cast<CounterId>(i))) +
        "_total";
    AppendHeader(name, "counter",
                 "Cumulative count since process start (registry catalog; "
                 "see docs/OBSERVABILITY.md).",
                 &out);
    AppendSample(name, {}, static_cast<double>(total.counters[i]), &out);
  }

  // Phase timers: two labeled counter families.
  AppendHeader("bwtk_phase_nanos_total", "counter",
               "Cumulative wall nanoseconds charged to each phase.", &out);
  for (uint32_t i = 0; i < kNumPhases; ++i) {
    AppendSample("bwtk_phase_nanos_total",
                 {{"phase", std::string(PhaseName(static_cast<PhaseId>(i)))}},
                 static_cast<double>(total.phase_nanos[i]), &out);
  }
  AppendHeader("bwtk_phase_calls_total", "counter",
               "Cumulative timed episodes per phase.", &out);
  for (uint32_t i = 0; i < kNumPhases; ++i) {
    AppendSample("bwtk_phase_calls_total",
                 {{"phase", std::string(PhaseName(static_cast<PhaseId>(i)))}},
                 static_cast<double>(total.phase_calls[i]), &out);
  }

  // Histograms: Prometheus cumulative le-buckets over the log2 catalog.
  for (uint32_t i = 0; i < kNumHists; ++i) {
    const std::string name =
        "bwtk_" + std::string(HistName(static_cast<HistId>(i)));
    const Histogram& hist = total.hists[i];
    AppendHeader(name, "histogram",
                 "Cumulative log2-bucketed distribution (bucket bounds are "
                 "powers of two).",
                 &out);
    uint64_t cumulative = 0;
    for (size_t b = 0; b < kHistBuckets; ++b) {
      cumulative += hist.buckets[b];
      if (hist.buckets[b] == 0 && b + 1 < kHistBuckets) continue;
      AppendSample(name + "_bucket",
                   {{"le", FormatDouble(
                               static_cast<double>(BucketUpperBound(b)))}},
                   static_cast<double>(cumulative), &out);
    }
    AppendSample(name + "_bucket", {{"le", "+Inf"}},
                 static_cast<double>(hist.count), &out);
    AppendSample(name + "_sum", {}, static_cast<double>(hist.sum), &out);
    AppendSample(name + "_count", {}, static_cast<double>(hist.count), &out);
  }

  // Rolling windows. Deltas are not monotone -> gauges, labeled by window.
  AppendHeader("bwtk_window_seconds", "gauge",
               "Real time actually covered by each rolling window.", &out);
  for (const WindowView& view : windows) {
    AppendSample("bwtk_window_seconds", {{"window", view.label}},
                 static_cast<double>(view.window.span_nanos) / kNanosPerSecond,
                 &out);
  }
  AppendHeader("bwtk_window_resets", "gauge",
               "Registry resets detected inside each rolling window.", &out);
  for (const WindowView& view : windows) {
    AppendSample("bwtk_window_resets", {{"window", view.label}},
                 static_cast<double>(view.window.resets), &out);
  }
  AppendHeader("bwtk_window_events", "gauge",
               "Counter delta over the rolling window.", &out);
  for (const WindowView& view : windows) {
    for (uint32_t i = 0; i < kNumCounters; ++i) {
      AppendSample(
          "bwtk_window_events",
          {{"metric", std::string(CounterName(static_cast<CounterId>(i)))},
           {"window", view.label}},
          static_cast<double>(view.window.delta.counters[i]), &out);
    }
  }
  AppendHeader("bwtk_window_rate", "gauge",
               "Counter delta per second over the rolling window.", &out);
  for (const WindowView& view : windows) {
    const double seconds =
        static_cast<double>(view.window.span_nanos) / kNanosPerSecond;
    for (uint32_t i = 0; i < kNumCounters; ++i) {
      const double rate =
          seconds > 0.0
              ? static_cast<double>(view.window.delta.counters[i]) / seconds
              : 0.0;
      AppendSample(
          "bwtk_window_rate",
          {{"metric", std::string(CounterName(static_cast<CounterId>(i)))},
           {"window", view.label}},
          rate, &out);
    }
  }
  AppendHeader("bwtk_window_quantile_nanos", "gauge",
               "Estimated latency quantile (log2-bucket interpolation) over "
               "the rolling window.",
               &out);
  static constexpr struct {
    const char* label;
    double q;
  } kQuantiles[] = {{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}};
  for (const WindowView& view : windows) {
    for (uint32_t i = 0; i < kNumHists; ++i) {
      const Histogram* hist = WindowHist(view, i);
      for (const auto& quantile : kQuantiles) {
        AppendSample(
            "bwtk_window_quantile_nanos",
            {{"hist", std::string(HistName(static_cast<HistId>(i)))},
             {"window", view.label},
             {"q", quantile.label}},
            static_cast<double>(EstimateQuantile(*hist, quantile.q)), &out);
      }
    }
  }

  // Caller-supplied gauges (serving-layer state).
  for (const GaugeSample& gauge : extra) {
    AppendHeader(gauge.name, "gauge",
                 gauge.help.empty() ? "Serving-layer gauge." : gauge.help,
                 &out);
    AppendSample(gauge.name, gauge.labels, gauge.value, &out);
  }
  return out;
}

void AppendCumulativeJson(const MetricsBlock& total, JsonWriter* writer) {
  writer->BeginObject();
  writer->Key("counters");
  AppendCounters(total, writer);
  writer->Key("phases");
  AppendPhases(total, writer);
  writer->Key("histograms");
  AppendHistograms(total, writer);
  writer->EndObject();
}

void AppendWindowsJson(const std::vector<WindowView>& windows,
                       JsonWriter* writer) {
  writer->BeginObject();
  for (const WindowView& view : windows) {
    const double seconds =
        static_cast<double>(view.window.span_nanos) / kNanosPerSecond;
    writer->Key(view.label);
    writer->BeginObject();
    writer->Key("seconds").Value(seconds);
    writer->Key("buckets").Value(static_cast<uint64_t>(view.window.buckets));
    writer->Key("resets").Value(view.window.resets);
    writer->Key("counters");
    AppendCounters(view.window.delta, writer);
    writer->Key("rates");
    writer->BeginObject();
    for (uint32_t i = 0; i < kNumCounters; ++i) {
      const double rate =
          seconds > 0.0
              ? static_cast<double>(view.window.delta.counters[i]) / seconds
              : 0.0;
      writer->Key(CounterName(static_cast<CounterId>(i))).Value(rate);
    }
    writer->EndObject();
    writer->Key("latency");
    writer->BeginObject();
    for (uint32_t i = 0; i < kNumHists; ++i) {
      const Histogram& hist = view.window.delta.hists[i];
      writer->Key(HistName(static_cast<HistId>(i)));
      writer->BeginObject();
      writer->Key("count").Value(hist.count);
      writer->Key("sum").Value(hist.sum);
      writer->Key("p50").Value(EstimateQuantile(hist, 0.50));
      writer->Key("p95").Value(EstimateQuantile(hist, 0.95));
      writer->Key("p99").Value(EstimateQuantile(hist, 0.99));
      writer->EndObject();
    }
    writer->EndObject();
    writer->EndObject();
  }
  writer->EndObject();
}

}  // namespace bwtk::obs
