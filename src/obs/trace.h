// Per-query span tracing: the diagnostic layer above the aggregate metrics
// registry (obs/metrics.h).
//
// The registry answers "where did the *batch* spend its time"; a Trace
// answers "why did *this query* blow its latency budget": which phase of
// Algorithm A (tau build, R_ij construction, merge derivation, tree
// traversal, locate) ate the time, and what the search tree looked like —
// nodes expanded per pattern depth, where branching exploded, how far the
// prefix table carried the descent. That per-query tree shape is the
// quantity the search-scheme literature (Kianfar et al., Kucherov et al.)
// shows explains tail latency at larger k; the aggregate histograms throw
// it away.
//
// Design, mirroring obs/metrics.h:
//   * Hooks are macros (BWTK_TRACE_*) that compile to `((void)0)` under
//     -DBWTK_DISABLE_METRICS; the classes below are defined unconditionally
//     and identically in every TU, so mixed configurations are ODR-safe.
//   * A query is traced only while a Trace is *activated* on the calling
//     thread (ScopedQueryTrace / ScopedTraceActivation). Engines hoist the
//     active pointer into a local once per query with BWTK_TRACE_ACTIVE()
//     and every per-node hook is then a single pointer null-check — no TLS
//     access in the enumeration loop. With no trace active the hooks cost
//     one predictable branch.
//   * Collection is sampled: TraceSink::ShouldSample hashes the trace id,
//     so the sampled subset is deterministic for a fixed query order (and
//     therefore stable under BatchOptions::deterministic_order) no matter
//     which worker thread runs the query.
//   * The sink doubles as the slow-query log: it retains the N worst
//     sampled traces by wall time (a min-heap) alongside a capped list of
//     all sampled traces. Exporters (obs/trace_export.h) turn both into
//     Chrome trace-event JSON and compact per-query summary records.
//
// See docs/OBSERVABILITY.md, "Tracing & the slow-query log", for the span
// catalog and sampling semantics.

#ifndef BWTK_OBS_TRACE_H_
#define BWTK_OBS_TRACE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "search/match.h"

namespace bwtk::obs {

/// Monotonic clock reading in nanoseconds (steady_clock since its epoch).
/// All trace timestamps share this clock, so spans from different threads
/// line up on one timeline in the Chrome trace export.
inline uint64_t TraceClockNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One timed region inside a trace. `name` must be a string literal (or
/// otherwise outlive every copy of the trace): spans are recorded on the
/// query hot path and never copy the name.
struct TraceSpan {
  std::string_view name;
  uint64_t start_ns = 0;  ///< TraceClockNanos() at open.
  uint64_t dur_ns = 0;    ///< 0 while the span is still open.
  uint32_t depth = 0;     ///< nesting level at open (0 = top of the query).

  bool operator==(const TraceSpan&) const = default;
};

/// Returned by Trace::OpenSpan when the span cap is hit; CloseSpan ignores
/// it. Keeps pathological queries (thousands of merge re-entries) from
/// growing a trace without bound.
inline constexpr size_t kTraceSpanDropped = static_cast<size_t>(-1);

/// Per-trace span cap; spans beyond it are counted in `dropped_spans`.
inline constexpr size_t kTraceMaxSpans = 4096;

/// Everything recorded about one traced query. Plain data; copyable (the
/// sink copies a trace into the slow-query heap when it also keeps it in
/// the sampled list).
struct Trace {
  /// Caller-assigned stable id. BatchSearcher uses
  /// (batch sequence << 32) | query index, so ids are reproducible across
  /// runs for the same batch sequence regardless of thread assignment.
  uint64_t trace_id = 0;
  /// Engine label ("algorithm_a", "stree", "kerror", "batch_worker", ...).
  std::string engine;
  int32_t k = 0;
  uint32_t thread_index = 0;
  /// Which index of a sharded/multi-index group ran the query (0 for the
  /// monolithic engines). Set by BatchSearcher's fanout path so sharded
  /// traces carry their shard as a first-class dimension.
  uint32_t shard_id = 0;
  uint64_t pattern_length = 0;
  uint64_t begin_ns = 0;  ///< TraceClockNanos() when the query started.
  uint64_t wall_ns = 0;   ///< total query wall time.
  uint64_t matches = 0;
  uint64_t prefix_table_hits = 0;
  uint64_t dropped_spans = 0;
  /// The engine's flat counters for this query (filled by the activator,
  /// e.g. ScopedQueryTrace::Finish).
  SearchStats stats;
  std::vector<TraceSpan> spans;
  /// nodes_per_depth[d] = S-tree nodes materialized at pattern depth d (the
  /// per-depth expansion profile; sum is close to stats.stree_nodes, minus
  /// nodes whose materialization was derived rather than expanded).
  std::vector<uint64_t> nodes_per_depth;

  /// Opens a span at the current nesting level; returns its index for
  /// CloseSpan (or kTraceSpanDropped past the cap).
  size_t OpenSpan(std::string_view name) {
    if (spans.size() >= kTraceMaxSpans) {
      ++dropped_spans;
      return kTraceSpanDropped;
    }
    spans.push_back({name, TraceClockNanos(), 0, open_depth_});
    ++open_depth_;
    return spans.size() - 1;
  }

  void CloseSpan(size_t index) {
    if (index == kTraceSpanDropped) {
      if (open_depth_ > 0) --open_depth_;  // the open was counted dropped
      return;
    }
    spans[index].dur_ns = TraceClockNanos() - spans[index].start_ns;
    if (open_depth_ > 0) --open_depth_;
  }

  /// Records one node expansion at pattern depth `depth`.
  void CountNode(size_t depth) {
    if (depth >= nodes_per_depth.size()) nodes_per_depth.resize(depth + 1, 0);
    ++nodes_per_depth[depth];
  }

  /// Sum of the per-depth profile.
  uint64_t NodesExpanded() const {
    uint64_t total = 0;
    for (const uint64_t n : nodes_per_depth) total += n;
    return total;
  }

  /// Deepest pattern depth with at least one expansion (0 when none).
  uint64_t MaxDepth() const {
    for (size_t d = nodes_per_depth.size(); d > 0; --d) {
      if (nodes_per_depth[d - 1] != 0) return d - 1;
    }
    return 0;
  }

 private:
  uint32_t open_depth_ = 0;
};

// --- Thread-local activation ---------------------------------------------

/// The trace activated on the calling thread, or nullptr. Engines call this
/// once per query (via BWTK_TRACE_ACTIVE()) and thread the pointer through
/// their hot loops; do not call it per node.
Trace* ActiveTrace();

/// Activates `trace` on this thread for the enclosing scope, restoring the
/// previous activation (usually none) on exit. Pass nullptr to deactivate.
class ScopedTraceActivation {
 public:
  explicit ScopedTraceActivation(Trace* trace);
  ~ScopedTraceActivation();
  ScopedTraceActivation(const ScopedTraceActivation&) = delete;
  ScopedTraceActivation& operator=(const ScopedTraceActivation&) = delete;

 private:
  Trace* prev_;
};

// --- Sink ----------------------------------------------------------------

struct TraceSinkOptions {
  /// Probability in [0, 1] that a trace id is sampled. 0 samples nothing,
  /// 1 samples everything. The decision is a pure function of the id (a
  /// hash threshold), so re-running the same batch samples the same
  /// queries.
  double sample_rate = 0.0;
  /// The slow-query log: how many of the worst sampled traces (by wall
  /// time) to retain. 0 disables the log.
  size_t slow_trace_count = 8;
  /// Cap on the retained sampled-trace list; offers beyond it are counted
  /// in traces_dropped() but still compete for the slow-query log.
  size_t max_sampled_traces = 4096;
  /// XORed into the sampling hash; change to draw a different sample.
  uint64_t sample_seed = 0;
};

/// Thread-safe trace collector + slow-query log. Offer() is called by many
/// worker threads; the accessors copy under the same mutex and may be
/// called from any thread between batches.
class TraceSink {
 public:
  explicit TraceSink(const TraceSinkOptions& options = {});

  const TraceSinkOptions& options() const { return options_; }

  /// Deterministic per-id sampling decision; lock-free and const.
  bool ShouldSample(uint64_t trace_id) const;

  /// Hands a finished query trace to the sink. Thread-safe.
  void Offer(Trace&& trace);

  /// Auxiliary (non-query) traces — e.g. BatchSearcher's per-worker
  /// queue-wait/search lanes. Exported as timeline events but excluded from
  /// the sampled list and the slow-query log (a worker lane spans a whole
  /// batch and would otherwise always be the "slowest query").
  void OfferAux(Trace&& trace);

  /// All retained sampled traces, ordered by trace id.
  std::vector<Trace> SampledTraces() const;

  /// The slow-query log: up to slow_trace_count traces, slowest first.
  std::vector<Trace> SlowTraces() const;

  /// Retained auxiliary traces, ordered by trace id.
  std::vector<Trace> AuxTraces() const;

  uint64_t traces_offered() const;
  uint64_t traces_dropped() const;

  /// Empties every list and counter; options are kept.
  void Clear();

 private:
  const TraceSinkOptions options_;
  mutable std::mutex mu_;
  std::vector<Trace> sampled_;
  std::vector<Trace> slow_;  // min-heap by wall_ns (front = least slow)
  std::vector<Trace> aux_;
  uint64_t offered_ = 0;
  uint64_t dropped_ = 0;
};

// --- Query-scope helper --------------------------------------------------

/// Traces one query end to end: decides sampling, activates the trace for
/// the enclosing scope, stamps wall time, and offers the result to the
/// sink. With a null sink (or an unsampled id) every member is a no-op, so
/// callers can construct one unconditionally per query:
///
///   obs::ScopedQueryTrace qt(sink, id, "algorithm_a", k, pattern.size());
///   auto hits = engine.Search(pattern, k, &stats, &scratch);
///   qt.Finish(hits.size(), stats);
///
/// Finish() stamps the wall clock, so call it immediately after the search;
/// the destructor deactivates and offers (and stamps wall itself if Finish
/// was never reached, e.g. on an exception path).
class ScopedQueryTrace {
 public:
  ScopedQueryTrace(TraceSink* sink, uint64_t trace_id, std::string_view engine,
                   int32_t k, size_t pattern_length, uint32_t thread_index = 0,
                   uint32_t shard_id = 0);
  ~ScopedQueryTrace();
  ScopedQueryTrace(const ScopedQueryTrace&) = delete;
  ScopedQueryTrace& operator=(const ScopedQueryTrace&) = delete;

  bool active() const { return active_; }

  /// Records the query outcome and stops the wall clock.
  void Finish(uint64_t matches, const SearchStats& stats);

 private:
  TraceSink* sink_ = nullptr;
  Trace trace_;
  Trace* prev_ = nullptr;
  bool active_ = false;
  bool finished_ = false;
};

// --- Hot-path helpers behind the macros ----------------------------------

/// RAII span on an explicit (possibly null) trace.
class TraceSpanScope {
 public:
  TraceSpanScope(Trace* trace, std::string_view name) : trace_(trace) {
    if (trace_ != nullptr) index_ = trace_->OpenSpan(name);
  }
  ~TraceSpanScope() {
    if (trace_ != nullptr) trace_->CloseSpan(index_);
  }
  TraceSpanScope(const TraceSpanScope&) = delete;
  TraceSpanScope& operator=(const TraceSpanScope&) = delete;

 private:
  Trace* trace_;
  size_t index_ = kTraceSpanDropped;
};

inline void TraceCountNode(Trace* trace, size_t depth) {
  if (trace != nullptr) trace->CountNode(depth);
}

inline void TraceAddPrefixHits(Trace* trace, uint64_t hits) {
  if (trace != nullptr) trace->prefix_table_hits += hits;
}

}  // namespace bwtk::obs

// --- Instrumentation macros ----------------------------------------------
// Engines use only these (never the helpers directly) so that
// -DBWTK_DISABLE_METRICS compiles tracing out along with the rest of the
// observability hooks. BWTK_METRICS_ENABLED and the CONCAT helpers come
// from obs/metrics.h.

#if BWTK_METRICS_ENABLED

/// The thread's active trace (or nullptr), for hoisting into a query-scoped
/// local. Disabled builds substitute a compile-time nullptr, so every hook
/// downstream of the local folds away.
#define BWTK_TRACE_ACTIVE() ::bwtk::obs::ActiveTrace()
/// Times the rest of the enclosing scope as span `name` of `trace`
/// (a `Trace*`, may be null). `name` must be a string literal.
#define BWTK_TRACE_SPAN(trace, name)                            \
  ::bwtk::obs::TraceSpanScope BWTK_OBS_CONCAT(bwtk_trace_span_, \
                                              __LINE__)((trace), (name))
/// Records one node expansion at pattern depth `depth`.
#define BWTK_TRACE_NODE(trace, depth) \
  ::bwtk::obs::TraceCountNode((trace), (depth))
/// Adds `n` prefix-table hits to the trace.
#define BWTK_TRACE_PREFIX_HITS(trace, n) \
  ::bwtk::obs::TraceAddPrefixHits((trace), (n))

#else  // BWTK_METRICS_ENABLED

#define BWTK_TRACE_ACTIVE() nullptr
#define BWTK_TRACE_SPAN(trace, name) ((void)0)
#define BWTK_TRACE_NODE(trace, depth) ((void)0)
#define BWTK_TRACE_PREFIX_HITS(trace, n) ((void)0)

#endif  // BWTK_METRICS_ENABLED

#endif  // BWTK_OBS_TRACE_H_
