// Renderers that turn registry snapshots and rolling windows into the two
// wire formats operators scrape: Prometheus text exposition (version 0.0.4,
// the `GET /metrics` payload) and a JSON document (`GET /varz.json`, the
// feed for examples/serve_top.cc).
//
// Naming conventions (enforced by tools/validate_exposition.py and
// documented in docs/OBSERVABILITY.md, "Live telemetry"):
//   - every series is prefixed `bwtk_`;
//   - cumulative counters end in `_total` and only ever increase;
//   - phase timers export as labeled counters
//     (bwtk_phase_nanos_total{phase="tree_traversal"});
//   - histograms export cumulative le-buckets + _sum/_count, Prometheus
//     histogram type, bucket bounds straight from the log2 catalog;
//   - rolling-window values are *gauges* labeled window="10s"|"1m"|"5m"
//     (deltas are not monotone, so they must not be counters).

#ifndef BWTK_OBS_EXPOSITION_H_
#define BWTK_OBS_EXPOSITION_H_

#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/windowed.h"

namespace bwtk::obs {

/// One named rolling window, e.g. {"10s", aggregator.Window(10s)}.
struct WindowView {
  std::string label;
  WindowDelta window;
};

/// An extra caller-supplied gauge (serving-layer state the registry does not
/// carry: queue depth, live connections, readiness). `name` is the full
/// series name including the `bwtk_` prefix.
struct GaugeSample {
  std::string name;
  double value = 0.0;
  /// Label key/value pairs; values are escaped by the renderer.
  std::vector<std::pair<std::string, std::string>> labels;
  std::string help;
};

/// The standard window spans the serving tier exposes, as (label, nanos):
/// 10s / 1m / 5m. Callers map these over WindowedAggregator::Window.
std::vector<std::pair<std::string, uint64_t>> StandardWindows();

/// Renders the full Prometheus text page: cumulative counters, phase
/// counters, histograms from `total`; per-window rates and p50/p95/p99
/// latency gauges from `windows`; then `extra` gauges verbatim.
std::string RenderPrometheusText(const MetricsBlock& total,
                                 const std::vector<WindowView>& windows,
                                 const std::vector<GaugeSample>& extra);

/// Escapes a Prometheus label value (backslash, double quote, newline).
std::string PrometheusLabelEscape(std::string_view raw);

/// Appends the cumulative registry view as an object value:
/// {"counters": {...}, "phases": {...}, "histograms": {...}} (the report.h
/// encodings, unchanged — same schema as bench reports).
void AppendCumulativeJson(const MetricsBlock& total, JsonWriter* writer);

/// Appends the rolling windows as an object value keyed by window label:
/// {"10s": {"seconds": S, "buckets": B, "resets": R,
///          "counters": {<name>: delta, ...},
///          "rates": {<name>: delta/S, ...},
///          "latency": {<hist>: {"count": C, "sum": S,
///                               "p50": N, "p95": N, "p99": N}, ...}}, ...}
/// Rates divide by the window's *actual* covered span; an empty window
/// (seconds == 0) emits zero rates.
void AppendWindowsJson(const std::vector<WindowView>& windows,
                       JsonWriter* writer);

}  // namespace bwtk::obs

#endif  // BWTK_OBS_EXPOSITION_H_
