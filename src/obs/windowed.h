// Time-windowed view over the process-wide MetricsRegistry.
//
// The registry is cumulative-since-start; operators need *rates* ("QPS over
// the last 10s") and *recent* latency quantiles ("p99 over the last minute"),
// not lifetime averages. WindowedAggregator produces those without touching
// any engine hot path: a single background ticker (or an explicit TickAt in
// tests) snapshots the registry once per bucket width, diffs it against the
// previous snapshot with the existing MetricsBlock/Histogram delta algebra,
// and stores the delta in a fixed-size ring of buckets. Rolling windows are
// sums of the newest buckets — O(window size), taken entirely off to the
// side of the serving threads.
//
// Correctness under concurrency: MetricsRegistry::Snapshot() is safe against
// active writers (relaxed single-writer slots; see metrics.h), and every
// slot is monotone between resets, so bucket deltas are non-negative. A
// registry Reset() between two ticks breaks monotonicity; the aggregator
// detects that (some field decreased), records an *empty* bucket flagged as
// a reset instead of a garbage negative delta, and re-bases on the new
// snapshot. Window results report how many such resets they span so a
// scraper can discount rates across the discontinuity.

#ifndef BWTK_OBS_WINDOWED_H_
#define BWTK_OBS_WINDOWED_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace bwtk::obs {

struct WindowedAggregatorOptions {
  /// Real time each ring bucket covers. 1s buckets keep the 10s window
  /// honest while letting 5m cost only 300 block sums.
  uint64_t bucket_width_nanos = 1'000'000'000;
  /// Ring capacity; width × count bounds the longest answerable window
  /// (defaults: 300 × 1s = 5 minutes).
  size_t num_buckets = 300;
};

/// One rolling-window answer: the summed delta plus how much real time and
/// how many discontinuities it actually covers.
struct WindowDelta {
  MetricsBlock delta;
  /// Real nanoseconds the summed buckets span. May be less than asked for
  /// (process younger than the window) — divide by this, not by the request,
  /// when computing rates.
  uint64_t span_nanos = 0;
  /// Ring buckets folded into `delta`.
  size_t buckets = 0;
  /// Registry resets detected inside the window. Nonzero means `delta`
  /// under-counts (the pre-reset tail of activity was discarded).
  uint64_t resets = 0;
};

/// Ring-of-deltas aggregator. Thread-safe: Tick/TickAt, Window, and
/// Cumulative may be called concurrently (one internal mutex, never held
/// while snapshotting-writers run — Snapshot has its own lock).
class WindowedAggregator {
 public:
  explicit WindowedAggregator(MetricsRegistry* registry,
                              WindowedAggregatorOptions options = {});
  ~WindowedAggregator();

  WindowedAggregator(const WindowedAggregator&) = delete;
  WindowedAggregator& operator=(const WindowedAggregator&) = delete;

  /// Snapshots the registry and closes one bucket ending now. Called by the
  /// background ticker; call directly in tests (or single-threaded tools).
  void Tick();

  /// Testable core: closes a bucket ending at `now_nanos` (any monotone
  /// clock; must not decrease across calls — earlier times are clamped).
  void TickAt(uint64_t now_nanos);

  /// Sums the newest buckets until `span_nanos` of real time is covered (or
  /// the ring runs out). A span of 0 returns an empty window.
  WindowDelta Window(uint64_t span_nanos) const;

  /// The registry snapshot taken by the most recent tick (cumulative since
  /// process start / last Reset). Empty before the first tick.
  MetricsBlock Cumulative() const;

  /// Total registry resets detected since construction.
  uint64_t resets() const;
  /// Ticks processed since construction.
  uint64_t ticks() const;

  /// Starts/stops the background ticking thread (one bucket per
  /// bucket_width_nanos). Idempotent; the destructor stops it.
  void StartTicker();
  void StopTicker();

 private:
  struct Bucket {
    MetricsBlock delta;
    uint64_t start_nanos = 0;
    uint64_t end_nanos = 0;
    bool reset = false;  // registry Reset() detected; delta is empty
  };

  void TickLocked(uint64_t now_nanos);

  MetricsRegistry* const registry_;
  const WindowedAggregatorOptions options_;

  mutable std::mutex mu_;
  std::vector<Bucket> ring_;   // capacity num_buckets, write_ points past newest
  size_t write_ = 0;           // next slot to fill
  size_t filled_ = 0;          // buckets filled so far, saturates at capacity
  MetricsBlock last_snapshot_;
  uint64_t last_tick_nanos_ = 0;
  bool have_baseline_ = false;
  uint64_t ticks_ = 0;
  uint64_t resets_ = 0;

  std::thread ticker_;
  std::mutex ticker_mu_;
  std::condition_variable ticker_cv_;
  bool ticker_stop_ = false;
  bool ticker_running_ = false;
};

}  // namespace bwtk::obs

#endif  // BWTK_OBS_WINDOWED_H_
