#include "obs/trace_export.h"

#include <fstream>
#include <map>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/report.h"

namespace bwtk::obs {

namespace {

// Chrome trace timestamps are microseconds; emit fractional µs so the
// nanosecond precision of the spans survives.
double Micros(uint64_t nanos) { return static_cast<double>(nanos) * 1e-3; }

void AppendSlice(std::string_view name, std::string_view category,
                 uint64_t start_ns, uint64_t dur_ns, uint32_t tid,
                 JsonWriter* w) {
  w->BeginObject()
      .Key("name")
      .Value(name)
      .Key("cat")
      .Value(category)
      .Key("ph")
      .Value("X")
      .Key("ts")
      .Value(Micros(start_ns))
      .Key("dur")
      .Value(Micros(dur_ns))
      .Key("pid")
      .Value(1)
      .Key("tid")
      .Value(tid);
}

void AppendThreadNameMetadata(uint32_t tid, const std::string& name,
                              JsonWriter* w) {
  w->BeginObject()
      .Key("name")
      .Value("thread_name")
      .Key("ph")
      .Value("M")
      .Key("pid")
      .Value(1)
      .Key("tid")
      .Value(tid)
      .Key("args")
      .BeginObject()
      .Key("name")
      .Value(name)
      .EndObject()
      .EndObject();
}

}  // namespace

void AppendChromeEvents(const Trace& trace, JsonWriter* writer) {
  // The query slice carries the identity and outcome in args; span slices
  // nest under it by time containment on the same thread row.
  std::string label = trace.engine;
  label += " #";
  label += std::to_string(trace.trace_id);
  AppendSlice(label, "query", trace.begin_ns, trace.wall_ns,
              trace.thread_index, writer);
  writer->Key("args")
      .BeginObject()
      .Key("trace_id")
      .Value(trace.trace_id)
      .Key("k")
      .Value(static_cast<int64_t>(trace.k))
      .Key("shard_id")
      .Value(static_cast<uint64_t>(trace.shard_id))
      .Key("pattern_length")
      .Value(trace.pattern_length)
      .Key("matches")
      .Value(trace.matches)
      .Key("prefix_table_hits")
      .Value(trace.prefix_table_hits)
      .Key("nodes_expanded")
      .Value(trace.NodesExpanded())
      .Key("max_depth")
      .Value(trace.MaxDepth())
      .EndObject()
      .EndObject();
  for (const TraceSpan& span : trace.spans) {
    AppendSlice(span.name, "span", span.start_ns, span.dur_ns,
                trace.thread_index, writer);
    writer->EndObject();
  }
}

void AppendTraceSummary(const Trace& trace, JsonWriter* writer) {
  writer->BeginObject()
      .Key("trace_id")
      .Value(trace.trace_id)
      .Key("engine")
      .Value(trace.engine)
      .Key("thread")
      .Value(static_cast<uint64_t>(trace.thread_index))
      .Key("shard_id")
      .Value(static_cast<uint64_t>(trace.shard_id))
      .Key("k")
      .Value(static_cast<int64_t>(trace.k))
      .Key("pattern_length")
      .Value(trace.pattern_length)
      .Key("wall_ns")
      .Value(trace.wall_ns)
      .Key("matches")
      .Value(trace.matches)
      .Key("prefix_table_hits")
      .Value(trace.prefix_table_hits);
  writer->Key("stats");
  AppendSearchStats(trace.stats, writer);
  // Per-span aggregates, keyed by span name: total nanos + entry count.
  std::map<std::string_view, std::pair<uint64_t, uint64_t>> by_name;
  for (const TraceSpan& span : trace.spans) {
    auto& [nanos, calls] = by_name[span.name];
    nanos += span.dur_ns;
    ++calls;
  }
  writer->Key("spans").BeginObject();
  for (const auto& [name, agg] : by_name) {
    writer->Key(name)
        .BeginObject()
        .Key("nanos")
        .Value(agg.first)
        .Key("calls")
        .Value(agg.second)
        .EndObject();
  }
  writer->EndObject();
  if (trace.dropped_spans > 0) {
    writer->Key("dropped_spans").Value(trace.dropped_spans);
  }
  writer->Key("nodes_per_depth").BeginArray();
  for (const uint64_t n : trace.nodes_per_depth) writer->Value(n);
  writer->EndArray();
  writer->Key("nodes_expanded")
      .Value(trace.NodesExpanded())
      .Key("max_depth")
      .Value(trace.MaxDepth())
      .EndObject();
}

void AppendTraceTotals(const Trace& trace, JsonWriter* writer) {
  writer->BeginObject()
      .Key("trace_id")
      .Value(trace.trace_id)
      .Key("k")
      .Value(static_cast<uint64_t>(trace.k < 0 ? 0 : trace.k))
      .Key("shard_id")
      .Value(static_cast<uint64_t>(trace.shard_id))
      .Key("pattern_length")
      .Value(trace.pattern_length)
      .Key("wall_ns")
      .Value(trace.wall_ns)
      .Key("matches")
      .Value(trace.matches)
      .Key("prefix_table_hits")
      .Value(trace.prefix_table_hits)
      .Key("nodes_expanded")
      .Value(trace.NodesExpanded())
      .Key("max_depth")
      .Value(trace.MaxDepth())
      .Key("spans")
      .Value(static_cast<uint64_t>(trace.spans.size()))
      .Key("dropped_spans")
      .Value(trace.dropped_spans)
      .EndObject();
}

std::string TraceTotalsToJson(const Trace& trace) {
  JsonWriter writer;
  AppendTraceTotals(trace, &writer);
  return std::move(writer).TakeString();
}

std::string TraceFileJson(const TraceSink& sink) {
  const std::vector<Trace> sampled = sink.SampledTraces();
  const std::vector<Trace> aux = sink.AuxTraces();
  const std::vector<Trace> slow = sink.SlowTraces();

  JsonWriter w;
  w.BeginObject()
      .Key("displayTimeUnit")
      .Value("ns")
      .Key("otherData")
      .BeginObject()
      .Key("producer")
      .Value("bwtk")
      .Key("schema")
      .Value("bwtk_trace_v1")
      .EndObject();

  w.Key("traceEvents").BeginArray();
  // Name the process and every thread row that appears.
  w.BeginObject()
      .Key("name")
      .Value("process_name")
      .Key("ph")
      .Value("M")
      .Key("pid")
      .Value(1)
      .Key("args")
      .BeginObject()
      .Key("name")
      .Value("bwtk")
      .EndObject()
      .EndObject();
  std::vector<bool> named;
  auto name_thread = [&](uint32_t tid) {
    if (tid < named.size() && named[tid]) return;
    if (tid >= named.size()) named.resize(tid + 1, false);
    named[tid] = true;
    AppendThreadNameMetadata(tid, "worker " + std::to_string(tid), &w);
  };
  for (const Trace& trace : sampled) {
    name_thread(trace.thread_index);
    AppendChromeEvents(trace, &w);
  }
  for (const Trace& trace : aux) {
    name_thread(trace.thread_index);
    AppendChromeEvents(trace, &w);
  }
  w.EndArray();

  w.Key("bwtk")
      .BeginObject()
      .Key("sample_rate")
      .Value(sink.options().sample_rate)
      .Key("slow_trace_count")
      .Value(static_cast<uint64_t>(sink.options().slow_trace_count))
      .Key("traces_offered")
      .Value(sink.traces_offered())
      .Key("traces_dropped")
      .Value(sink.traces_dropped());
  w.Key("summaries").BeginArray();
  for (const Trace& trace : sampled) AppendTraceSummary(trace, &w);
  w.EndArray();
  w.Key("slow_queries").BeginArray();
  for (const Trace& trace : slow) AppendTraceSummary(trace, &w);
  w.EndArray();
  w.EndObject().EndObject();
  return std::move(w).TakeString();
}

Status WriteTraceFile(const TraceSink& sink, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open trace file " + path + " for writing");
  }
  out << TraceFileJson(sink) << "\n";
  out.close();
  if (!out) return Status::IoError("write to trace file " + path + " failed");
  return Status::OK();
}

}  // namespace bwtk::obs
