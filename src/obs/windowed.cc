#include "obs/windowed.h"

#include <chrono>

#include "util/logging.h"

namespace bwtk::obs {

namespace {

uint64_t SteadyNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// True if any field of `now` is below `prev` — impossible for monotone
// counters, so it means the registry was Reset() (or a live thread retired
// mid-read in a way that can only happen after a reset) between snapshots.
bool Regressed(const MetricsBlock& now, const MetricsBlock& prev) {
  for (size_t i = 0; i < kNumCounters; ++i) {
    if (now.counters[i] < prev.counters[i]) return true;
  }
  for (size_t i = 0; i < kNumPhases; ++i) {
    if (now.phase_nanos[i] < prev.phase_nanos[i]) return true;
    if (now.phase_calls[i] < prev.phase_calls[i]) return true;
  }
  for (size_t i = 0; i < kNumHists; ++i) {
    const Histogram& h = now.hists[i];
    const Histogram& p = prev.hists[i];
    if (h.count < p.count || h.sum < p.sum) return true;
    for (size_t b = 0; b < kHistBuckets; ++b) {
      if (h.buckets[b] < p.buckets[b]) return true;
    }
  }
  return false;
}

}  // namespace

WindowedAggregator::WindowedAggregator(MetricsRegistry* registry,
                                       WindowedAggregatorOptions options)
    : registry_(registry), options_(options) {
  BWTK_CHECK(registry != nullptr);
  BWTK_CHECK_GT(options_.bucket_width_nanos, 0u);
  BWTK_CHECK_GT(options_.num_buckets, 0u);
  ring_.resize(options_.num_buckets);
}

WindowedAggregator::~WindowedAggregator() { StopTicker(); }

void WindowedAggregator::Tick() { TickAt(SteadyNowNanos()); }

void WindowedAggregator::TickAt(uint64_t now_nanos) {
  std::lock_guard<std::mutex> lock(mu_);
  TickLocked(now_nanos);
}

void WindowedAggregator::TickLocked(uint64_t now_nanos) {
  if (now_nanos < last_tick_nanos_) now_nanos = last_tick_nanos_;
  MetricsBlock snapshot = registry_->Snapshot();

  if (!have_baseline_) {
    // First tick establishes the baseline; no bucket is produced (there is
    // no interval to attribute a delta to yet).
    last_snapshot_ = snapshot;
    last_tick_nanos_ = now_nanos;
    have_baseline_ = true;
    ++ticks_;
    return;
  }

  Bucket& bucket = ring_[write_];
  bucket.start_nanos = last_tick_nanos_;
  bucket.end_nanos = now_nanos;
  if (Regressed(snapshot, last_snapshot_)) {
    // Registry reset mid-window: a subtraction would wrap. Record the
    // discontinuity instead of a garbage delta.
    bucket.delta.Clear();
    bucket.reset = true;
    ++resets_;
  } else {
    bucket.delta = Diff(snapshot, last_snapshot_);
    bucket.reset = false;
  }
  write_ = (write_ + 1) % ring_.size();
  if (filled_ < ring_.size()) ++filled_;

  last_snapshot_ = std::move(snapshot);
  last_tick_nanos_ = now_nanos;
  ++ticks_;
}

WindowDelta WindowedAggregator::Window(uint64_t span_nanos) const {
  std::lock_guard<std::mutex> lock(mu_);
  WindowDelta out;
  if (span_nanos == 0) return out;
  // Walk newest → oldest until the requested span of real time is covered.
  for (size_t i = 0; i < filled_; ++i) {
    const size_t slot = (write_ + ring_.size() - 1 - i) % ring_.size();
    const Bucket& bucket = ring_[slot];
    out.delta += bucket.delta;
    out.span_nanos += bucket.end_nanos - bucket.start_nanos;
    ++out.buckets;
    if (bucket.reset) ++out.resets;
    if (out.span_nanos >= span_nanos) break;
  }
  return out;
}

MetricsBlock WindowedAggregator::Cumulative() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_snapshot_;
}

uint64_t WindowedAggregator::resets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resets_;
}

uint64_t WindowedAggregator::ticks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ticks_;
}

void WindowedAggregator::StartTicker() {
  {
    std::lock_guard<std::mutex> lock(ticker_mu_);
    if (ticker_running_) return;
    ticker_stop_ = false;
    ticker_running_ = true;
  }
  Tick();  // establish the baseline immediately, not one bucket-width in
  ticker_ = std::thread([this] {
    const auto width = std::chrono::nanoseconds(options_.bucket_width_nanos);
    std::unique_lock<std::mutex> lock(ticker_mu_);
    while (!ticker_stop_) {
      if (ticker_cv_.wait_for(lock, width, [this] { return ticker_stop_; })) {
        break;
      }
      lock.unlock();
      Tick();
      lock.lock();
    }
  });
}

void WindowedAggregator::StopTicker() {
  {
    std::lock_guard<std::mutex> lock(ticker_mu_);
    if (!ticker_running_) return;
    ticker_stop_ = true;
  }
  ticker_cv_.notify_all();
  if (ticker_.joinable()) ticker_.join();
  {
    std::lock_guard<std::mutex> lock(ticker_mu_);
    ticker_running_ = false;
  }
}

}  // namespace bwtk::obs
