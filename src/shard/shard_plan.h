// Deterministic partitioning of a text into overlapping shard slices.
//
// A genome-scale text is split into `num_shards` contiguous *cores* that
// partition [0, n) exactly; each shard then indexes its core plus the next
// `overlap` characters (clamped at n). The overlap is what makes sharded
// search exact: any window of length L <= overlap that *starts* inside a
// core lies entirely inside that shard's slice, so the shard's FM-index
// sees the whole occurrence. Windows starting near a seam are seen by more
// than one shard; the ownership rule in OwnerShard picks a unique canonical
// reporter so the union over shards equals the monolithic result with no
// duplicates (see DESIGN.md §2d for the proof sketch).
//
// The plan is pure arithmetic over (text_size, num_shards, overlap): two
// processes that agree on those three numbers agree on every slice boundary
// and on the owner of every window. That determinism is what lets the
// manifest loader verify a saved plan by recomputation.

#ifndef BWTK_SHARD_SHARD_PLAN_H_
#define BWTK_SHARD_SHARD_PLAN_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace bwtk {

/// One shard's extent. The core intervals partition [0, text_size) exactly;
/// the slice is the core extended `overlap` characters to the right
/// (clamped at the text end). The slice always begins at the core begin —
/// overlap only ever extends rightward, so slice begins and slice ends are
/// both non-decreasing in the shard number.
struct ShardSlice {
  /// First text position of this shard's core (== first slice position).
  size_t core_begin = 0;
  /// One past the last core position.
  size_t core_end = 0;
  /// One past the last slice position: min(core_end + overlap, text_size).
  size_t end = 0;

  /// Slice length in characters — what the shard actually indexes.
  size_t size() const { return end - core_begin; }

  bool operator==(const ShardSlice&) const = default;
};

/// The partition itself: balanced cores plus a fixed right overlap.
///
/// Core i is [floor(i*n/S), floor((i+1)*n/S)) — the balanced split, never
/// producing an empty core when n >= S (ceil-division schemes can strand
/// empty trailing shards; this one cannot).
class ShardPlan {
 public:
  /// Validates and builds a plan. Fails with InvalidArgument when
  /// `num_shards` is zero or exceeds `text_size` (an empty core could never
  /// own anything and would only hide seams).
  static Result<ShardPlan> Make(size_t text_size, size_t num_shards,
                                size_t overlap);

  size_t text_size() const { return text_size_; }
  size_t num_shards() const { return slices_.size(); }
  size_t overlap() const { return overlap_; }

  const ShardSlice& slice(size_t shard) const { return slices_[shard]; }
  const std::vector<ShardSlice>& slices() const { return slices_; }

  /// The shard whose *core* contains `position`. Requires
  /// position < text_size.
  size_t ShardOfPosition(size_t position) const;

  /// The unique owner of the window [position, position + window_length):
  /// the lowest-numbered shard whose slice contains the whole window
  /// (clamped at the text end). Well-defined for every start position when
  /// window_length <= overlap — the core shard of `position` always
  /// qualifies, so the owner is never past it. Requires
  /// position < text_size and window_length <= overlap.
  size_t OwnerShard(size_t position, size_t window_length) const;

  /// Translates a position local to `shard`'s slice into a text position.
  size_t LocalToGlobal(size_t shard, size_t local) const {
    return slices_[shard].core_begin + local;
  }

  /// Translates a text position inside `shard`'s slice into a local one.
  size_t GlobalToLocal(size_t shard, size_t global) const {
    return global - slices_[shard].core_begin;
  }

  bool operator==(const ShardPlan&) const = default;

  /// An empty plan (no shards); useful only as a placeholder to assign a
  /// Make() result into. Every populated plan comes from Make().
  ShardPlan() = default;

 private:
  size_t text_size_ = 0;
  size_t overlap_ = 0;
  std::vector<ShardSlice> slices_;
};

}  // namespace bwtk

#endif  // BWTK_SHARD_SHARD_PLAN_H_
