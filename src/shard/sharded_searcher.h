// Exact batched search over a ShardedIndex.
//
// The router fans every query of a batch across every shard on the
// BatchSearcher worker pool (one (query, shard) task each), translates the
// per-shard hits back to global text coordinates, and resolves the seams:
// a window starting near a core boundary lies in more than one slice and is
// found by each of them, so every hit is kept only by its *owner* shard —
// the lowest-numbered shard whose slice contains the whole window
// (ShardPlan::OwnerShard). The result is byte-identical to running the same
// engine over one monolithic FmIndex of the whole text, provided every
// query's window fits the overlap; Search() rejects batches that don't with
// InvalidArgument rather than silently dropping seam occurrences.
//
// The required window length per query is the pattern length for the
// Hamming engines (kAlgorithmA, kSTree, kWildcard, kDictionary) and
// pattern length + k for kerror,
// whose alignments may consume up to k extra text characters. Using the
// worst-case kerror window for ownership also preserves that engine's
// best-alignment-per-position semantics: the owner's slice contains every
// candidate alignment at the position, so its local best is the global
// best.
//
// Observability: fanned-out tasks are counted in the `shard_queries`
// counter and discarded seam duplicates in `seam_hits_deduped`
// (docs/OBSERVABILITY.md); per-query traces flow through the inner
// BatchSearcher's sink with their shard in Trace::shard_id.

#ifndef BWTK_SHARD_SHARDED_SEARCHER_H_
#define BWTK_SHARD_SHARDED_SEARCHER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "search/batch_searcher.h"
#include "shard/sharded_index.h"
#include "util/status.h"

namespace bwtk {

/// Text window a query's occurrences can span — the seam-ownership unit:
/// the pattern itself for the Hamming engines (kAlgorithmA, kSTree,
/// kWildcard, kDictionary, kBidirectional, and kAuto, which only resolves
/// to Hamming engines), up to k extra characters for kerror alignments. A
/// sharded query is servable iff this window fits the index's overlap.
size_t ShardedQueryWindow(const BatchQuery& query, BatchEngine engine);

/// Folds one query's per-shard hit lists (`parts`, plan.num_shards()
/// entries in shard order, local coordinates) into `merged` in global
/// coordinates: translates each hit, keeps it only when its owner shard
/// (lowest shard whose slice contains the whole window) reported it, and
/// normalizes the result to canonical position order. Consumes `parts`
/// (each list is cleared). Returns the number of seam duplicates
/// discarded. This is THE seam rule — ShardedBatchSearcher and the
/// serving layer both route through it, so batch and streamed sharded
/// results cannot disagree.
uint64_t ResolveShardedHits(const ShardPlan& plan, size_t window,
                            std::vector<Occurrence>* parts,
                            std::vector<Occurrence>* merged);

/// Content fingerprint of a sharded index: the plan parameters folded with
/// every shard's FmIndexVersion. The result-cache key for sharded queries
/// (see search/result_cache.h) — a rebuilt, resharded, or re-overlapped
/// index misses every stale entry.
uint64_t ShardedIndexVersion(const ShardedIndex& index);

/// Shard router: BatchSearcher fanout + coordinate translation + seam
/// de-duplication. Same single-batch-at-a-time contract as BatchSearcher.
///
/// Two fast paths run on the dispatching thread before any fan-out:
///
///  * Result cache (BatchOptions::result_cache): an exact duplicate
///    (pattern, k) against the same ShardedIndexVersion is answered from
///    the cache — no shard tasks at all. The cache operates at query (not
///    per-shard) granularity here, so the inner worker pool runs uncached;
///    cache-served queries contribute their stored seam counts but no
///    engine SearchStats (per-query stats are not attributable post-merge).
///    Duplicates *within* one batch (which the cache cannot serve — k > 0
///    inserts happen after the fan-out) are coalesced on the dispatching
///    thread: the first occurrence fans out, later ones copy its merged
///    result, with the same stats semantics as a cache hit.
///  * k = 0 point lookups (BatchOptions::sharded_exact_shortcut): every
///    engine degenerates to exact matching at k = 0, so the router answers
///    with one backward search + locate per shard and the standard seam
///    rule instead of a (query, shard) task per shard. Counted in the
///    `shard_exact_shortcuts` counter.
///
/// Both paths return hits byte-identical to the full fan-out.
class ShardedBatchSearcher {
 public:
  /// `index` must outlive the searcher. The pool (options.num_threads
  /// workers) starts here; engine selection and tracing knobs in `options`
  /// apply per (query, shard) task.
  explicit ShardedBatchSearcher(const ShardedIndex* index,
                                const BatchOptions& options = {});

  /// Runs the batch and blocks. occurrences[i] holds queries[i]'s hits in
  /// global coordinates, equal to the monolithic engine's output for the
  /// whole text. Fails with InvalidArgument if any query needs a window
  /// longer than the index's overlap (pattern length, + k for kerror).
  Result<BatchResult> Search(const std::vector<BatchQuery>& queries);

  /// ASCII convenience, mirroring BatchSearcher: same budget `k` for every
  /// pattern; see BatchOptions::fail_fast for undecodable-pattern handling.
  Result<BatchResult> Search(const std::vector<std::string>& patterns,
                             int32_t k);

  const ShardedIndex& index() const { return *index_; }
  int num_threads() const { return batch_.num_threads(); }
  const obs::TraceSink* trace_sink() const { return batch_.trace_sink(); }

 private:
  // True when `query` can be served by the exact-match point-lookup path.
  bool ExactShortcutEligible(const BatchQuery& query) const;

  // Answers one eligible k = 0 query: backward search + locate per shard,
  // then the owner-shard seam rule. Returns the seam duplicates discarded.
  uint64_t RunExactShortcut(const BatchQuery& query,
                            std::vector<Occurrence>* merged) const;

  const ShardedIndex* index_;  // not owned
  BatchOptions options_;
  BatchSearcher batch_;
  // Query-granular result cache (see the class comment); null when off.
  std::shared_ptr<ResultCache> cache_;
  uint64_t cache_version_ = 0;
};

}  // namespace bwtk

#endif  // BWTK_SHARD_SHARDED_SEARCHER_H_
