#include "shard/shard_plan.h"

#include <algorithm>
#include <string>

#include "util/logging.h"

namespace bwtk {

Result<ShardPlan> ShardPlan::Make(size_t text_size, size_t num_shards,
                                  size_t overlap) {
  if (num_shards == 0) {
    return Status::InvalidArgument("shard plan needs at least one shard");
  }
  if (text_size < num_shards) {
    return Status::InvalidArgument(
        "shard plan: text of size " + std::to_string(text_size) +
        " cannot fill " + std::to_string(num_shards) + " shards");
  }
  ShardPlan plan;
  plan.text_size_ = text_size;
  plan.overlap_ = overlap;
  plan.slices_.resize(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    ShardSlice& s = plan.slices_[i];
    // Balanced split: |core| is floor(n/S) or ceil(n/S), never zero.
    s.core_begin = i * text_size / num_shards;
    s.core_end = (i + 1) * text_size / num_shards;
    s.end = std::min(s.core_end + overlap, text_size);
  }
  return plan;
}

size_t ShardPlan::ShardOfPosition(size_t position) const {
  BWTK_DCHECK_LT(position, text_size_);
  // Core begins are sorted; the core containing `position` is the last one
  // beginning at or before it.
  size_t lo = 0;
  size_t hi = slices_.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi + 1) / 2;
    if (slices_[mid].core_begin <= position) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

size_t ShardPlan::OwnerShard(size_t position, size_t window_length) const {
  BWTK_DCHECK_LT(position, text_size_);
  BWTK_DCHECK_LE(window_length, overlap_);
  const size_t window_end = std::min(position + window_length, text_size_);
  // Slice ends are non-decreasing: binary-search the lowest shard whose
  // slice reaches the window end. Because window_length <= overlap, the
  // core shard of `position` reaches it too, so the answer is at or before
  // that shard — which also guarantees its slice *begins* at or before
  // `position`, i.e. the whole window is inside the owner's slice.
  size_t lo = 0;
  size_t hi = slices_.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (slices_[mid].end >= window_end) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  BWTK_DCHECK_LE(slices_[lo].core_begin, position);
  return lo;
}

}  // namespace bwtk
