// A group of per-shard FM-indexes over one text.
//
// The monolithic FmIndex holds the whole suffix array, BWT, and rank
// machinery of the text in one allocation; at genome scale (gigabases) both
// the build and the resident index benefit from being cut into independent
// pieces. A ShardedIndex is exactly that: a ShardPlan (shard_plan.h) plus
// one FmIndex per slice, built in parallel — each shard's suffix sort and
// checkpoint construction is independent of the others, so the build scales
// with cores where the monolithic build is one long serial pass.
//
// The shards alone are NOT a drop-in replacement for the monolithic index:
// their hit positions are slice-local and the overlap regions are indexed
// twice. ShardedBatchSearcher (sharded_searcher.h) layers coordinate
// translation and seam de-duplication on top to restore exact monolithic
// semantics.
//
// Persistence mirrors the FM-index serializer (bwt/serialize.cc): a small
// versioned, checksummed *manifest* records the plan, and each shard saves
// through the existing FmIndex format into its own file. Loading verifies
// the manifest against a recomputed plan and every shard against its slice,
// so a truncated, foreign, or mismatched file set fails with a Status
// instead of producing wrong coordinates.

#ifndef BWTK_SHARD_SHARDED_INDEX_H_
#define BWTK_SHARD_SHARDED_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "alphabet/dna.h"
#include "bwt/fm_index.h"
#include "shard/shard_plan.h"
#include "util/status.h"

namespace bwtk {

/// On-disk format constants of the shard manifest. The per-shard index
/// files themselves use the FM-index format (bwt/serialize.h).
///
/// Version history:
///   1 — magic, version, text_size, num_shards, overlap, the slice table
///       (three u64 per shard), FNV-1a checksum over the slice table.
struct ShardManifestFormat {
  static constexpr uint32_t kMagic = 0x42575453;  // "BWTS"
  static constexpr uint32_t kVersion = 1;
  static constexpr uint32_t kMinSupportedVersion = 1;
};

/// Build/search configuration of a sharded index.
struct ShardedIndexOptions {
  /// How many shards to cut the text into. Must be >= 1 and <= text size.
  size_t num_shards = 1;
  /// Slice overlap in characters. Sharded search is exact only for query
  /// windows no longer than this — pick max pattern length, plus k for the
  /// kerror engine (see ShardedBatchSearcher::Search, which enforces it).
  size_t overlap = 256;
  /// Per-shard FmIndex build options (checkpoint rate, SA sample rate,
  /// prefix table q, rank kernel) — every shard uses the same ones.
  FmIndex::Options index_options = {};
  /// Threads for the parallel shard build; 0 means
  /// std::thread::hardware_concurrency(). Never more than num_shards run.
  int num_build_threads = 0;
};

/// One FM-index per ShardPlan slice, with save/load.
///
/// Thread safety: immutable after Build()/Load(), like FmIndex — any number
/// of threads may query the shards concurrently.
class ShardedIndex {
 public:
  /// Cuts `text` by ShardPlan::Make(text.size(), num_shards, overlap) and
  /// builds every shard's FmIndex in parallel.
  static Result<ShardedIndex> Build(const std::vector<DnaCode>& text,
                                    const ShardedIndexOptions& options);

  const ShardPlan& plan() const { return plan_; }
  size_t num_shards() const { return shards_.size(); }
  size_t text_size() const { return plan_.text_size(); }
  size_t overlap() const { return plan_.overlap(); }

  /// The FM-index over slice `shard` (local coordinates).
  const FmIndex& shard(size_t shard) const { return shards_[shard]; }

  /// Borrowed pointers to every shard, in shard order — the form
  /// BatchSearcher's index-group constructor takes.
  std::vector<const FmIndex*> ShardPointers() const;

  /// Sum of the shards' heap footprints.
  size_t MemoryUsage() const;

  /// Writes `<prefix>.manifest` plus one `<prefix>.shard-<i>` per shard.
  Status Save(const std::string& prefix) const;

  /// Loads a saved group. Fails with Corruption when the manifest is
  /// truncated, has the wrong magic/version/checksum, or disagrees with the
  /// plan recomputed from its own parameters; and when a shard file's text
  /// size does not match its slice.
  static Result<ShardedIndex> Load(const std::string& prefix);

 private:
  ShardedIndex() = default;

  ShardPlan plan_;
  std::vector<FmIndex> shards_;  // shard order; moved in at build/load
};

/// Path of shard `i`'s index file for a given save prefix (also used by
/// tests to corrupt specific files).
std::string ShardFilePath(const std::string& prefix, size_t shard);

/// Path of the manifest file for a given save prefix.
std::string ShardManifestPath(const std::string& prefix);

}  // namespace bwtk

#endif  // BWTK_SHARD_SHARDED_INDEX_H_
