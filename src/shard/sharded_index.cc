#include "shard/sharded_index.h"

#include <atomic>
#include <fstream>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"

namespace bwtk {

namespace {

// Same POD stream helpers as bwt/serialize.cc (kept file-local there too):
// fixed-width little-endian-as-written fields, stream state as the error
// signal.
template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

// FNV-1a over the slice table, so a bit-rotted manifest is caught before
// any shard file is opened.
uint64_t HashWords(const std::vector<uint64_t>& words, uint64_t seed) {
  uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (const uint64_t w : words) {
    h ^= w;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::vector<uint64_t> FlattenSlices(const ShardPlan& plan) {
  std::vector<uint64_t> words;
  words.reserve(plan.num_shards() * 3);
  for (const ShardSlice& s : plan.slices()) {
    words.push_back(s.core_begin);
    words.push_back(s.core_end);
    words.push_back(s.end);
  }
  return words;
}

int ResolveBuildThreads(int requested, size_t num_shards) {
  unsigned threads = requested > 0
                         ? static_cast<unsigned>(requested)
                         : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  if (threads > num_shards) threads = static_cast<unsigned>(num_shards);
  return static_cast<int>(threads);
}

}  // namespace

std::string ShardFilePath(const std::string& prefix, size_t shard) {
  return prefix + ".shard-" + std::to_string(shard);
}

std::string ShardManifestPath(const std::string& prefix) {
  return prefix + ".manifest";
}

Result<ShardedIndex> ShardedIndex::Build(const std::vector<DnaCode>& text,
                                         const ShardedIndexOptions& options) {
  BWTK_ASSIGN_OR_RETURN(
      ShardPlan plan,
      ShardPlan::Make(text.size(), options.num_shards, options.overlap));
  const size_t num_shards = plan.num_shards();
  // Each slot is filled by exactly one worker; the first failure (by shard
  // number, for determinism) wins the error report.
  std::vector<std::optional<FmIndex>> built(num_shards);
  std::vector<Status> statuses(num_shards, Status::OK());
  std::atomic<size_t> cursor{0};
  auto build_worker = [&] {
    for (;;) {
      const size_t s = cursor.fetch_add(1, std::memory_order_relaxed);
      if (s >= num_shards) return;
      const ShardSlice& slice = plan.slice(s);
      const std::vector<DnaCode> piece(text.begin() + slice.core_begin,
                                       text.begin() + slice.end);
      Result<FmIndex> shard = FmIndex::Build(piece, options.index_options);
      if (shard.ok()) {
        built[s].emplace(std::move(shard).value());
      } else {
        statuses[s] = shard.status();
      }
    }
  };
  const int num_threads =
      ResolveBuildThreads(options.num_build_threads, num_shards);
  if (num_threads <= 1) {
    build_worker();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    for (int t = 0; t < num_threads; ++t) workers.emplace_back(build_worker);
    for (std::thread& worker : workers) worker.join();
  }
  for (size_t s = 0; s < num_shards; ++s) {
    if (!statuses[s].ok()) {
      return Status(statuses[s].code(), "shard " + std::to_string(s) + ": " +
                                            statuses[s].message());
    }
  }
  ShardedIndex index;
  index.plan_ = std::move(plan);
  index.shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    index.shards_.push_back(std::move(*built[s]));
  }
  return index;
}

std::vector<const FmIndex*> ShardedIndex::ShardPointers() const {
  std::vector<const FmIndex*> pointers;
  pointers.reserve(shards_.size());
  for (const FmIndex& shard : shards_) pointers.push_back(&shard);
  return pointers;
}

size_t ShardedIndex::MemoryUsage() const {
  size_t total = 0;
  for (const FmIndex& shard : shards_) total += shard.MemoryUsage();
  return total;
}

Status ShardedIndex::Save(const std::string& prefix) const {
  const std::string manifest_path = ShardManifestPath(prefix);
  std::ofstream out(manifest_path, std::ios::binary);
  if (!out) {
    return Status::IoError("cannot open for writing: " + manifest_path);
  }
  WritePod(out, ShardManifestFormat::kMagic);
  WritePod(out, ShardManifestFormat::kVersion);
  WritePod(out, static_cast<uint64_t>(plan_.text_size()));
  WritePod(out, static_cast<uint64_t>(plan_.num_shards()));
  WritePod(out, static_cast<uint64_t>(plan_.overlap()));
  const std::vector<uint64_t> slice_words = FlattenSlices(plan_);
  for (const uint64_t w : slice_words) WritePod(out, w);
  WritePod(out, HashWords(slice_words, plan_.text_size()));
  if (!out) return Status::IoError("shard manifest write failed");
  out.close();
  if (!out) return Status::IoError("shard manifest write failed");
  for (size_t s = 0; s < shards_.size(); ++s) {
    BWTK_RETURN_IF_ERROR(shards_[s].SaveToFile(ShardFilePath(prefix, s)));
  }
  return Status::OK();
}

Result<ShardedIndex> ShardedIndex::Load(const std::string& prefix) {
  const std::string manifest_path = ShardManifestPath(prefix);
  std::ifstream in(manifest_path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open shard manifest: " + manifest_path);
  }
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!ReadPod(in, &magic) || magic != ShardManifestFormat::kMagic) {
    return Status::Corruption("bad magic: not a bwtk shard manifest");
  }
  if (!ReadPod(in, &version) ||
      version < ShardManifestFormat::kMinSupportedVersion ||
      version > ShardManifestFormat::kVersion) {
    return Status::Corruption("unsupported shard manifest version");
  }
  uint64_t text_size = 0;
  uint64_t num_shards = 0;
  uint64_t overlap = 0;
  if (!ReadPod(in, &text_size) || !ReadPod(in, &num_shards) ||
      !ReadPod(in, &overlap)) {
    return Status::Corruption("truncated shard manifest");
  }
  // Bound before allocating: a corrupt count must not drive a huge resize.
  if (num_shards == 0 || num_shards > text_size) {
    return Status::Corruption("inconsistent shard manifest geometry");
  }
  std::vector<uint64_t> slice_words(static_cast<size_t>(num_shards) * 3);
  for (uint64_t& w : slice_words) {
    if (!ReadPod(in, &w)) {
      return Status::Corruption("truncated shard manifest");
    }
  }
  uint64_t checksum = 0;
  if (!ReadPod(in, &checksum) ||
      checksum != HashWords(slice_words, text_size)) {
    return Status::Corruption("shard manifest checksum mismatch");
  }
  // The plan is a pure function of (text_size, num_shards, overlap); the
  // stored slice table must match the recomputation exactly, or the file
  // was produced by a different partitioning scheme.
  BWTK_ASSIGN_OR_RETURN(ShardPlan plan,
                        ShardPlan::Make(text_size, num_shards, overlap));
  if (FlattenSlices(plan) != slice_words) {
    return Status::Corruption("shard manifest slice table mismatch");
  }
  ShardedIndex index;
  index.shards_.reserve(plan.num_shards());
  for (size_t s = 0; s < plan.num_shards(); ++s) {
    Result<FmIndex> shard = FmIndex::LoadFromFile(ShardFilePath(prefix, s));
    if (!shard.ok()) {
      return Status(shard.status().code(), "shard " + std::to_string(s) +
                                               ": " +
                                               shard.status().message());
    }
    if (shard.value().text_size() != plan.slice(s).size()) {
      return Status::Corruption(
          "shard " + std::to_string(s) +
          ": index size does not match its manifest slice");
    }
    index.shards_.push_back(std::move(shard).value());
  }
  index.plan_ = std::move(plan);
  return index;
}

}  // namespace bwtk
