#include "shard/sharded_searcher.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"

namespace bwtk {

namespace {

// The inner worker pool must not also cache: the router caches at query
// granularity (merged, global-coordinate results), and double-caching the
// per-(query, shard) tasks underneath would pay twice for the same skew.
BatchOptions StripCache(BatchOptions options) {
  options.result_cache = ResultCacheOptions{};
  options.result_cache_instance.reset();
  return options;
}

}  // namespace

uint64_t ShardedIndexVersion(const ShardedIndex& index) {
  constexpr uint64_t kFnvPrime = 0x100000001b3ULL;
  uint64_t version = 0xcbf29ce484222325ULL;
  version = version * kFnvPrime + index.num_shards();
  version = version * kFnvPrime + index.overlap();
  version = version * kFnvPrime + index.text_size();
  for (size_t s = 0; s < index.num_shards(); ++s) {
    version = version * kFnvPrime + FmIndexVersion(index.shard(s));
  }
  return version;
}

size_t ShardedQueryWindow(const BatchQuery& query, BatchEngine engine) {
  size_t window = query.pattern.size();
  if (engine == BatchEngine::kKError && query.k > 0) {
    window += static_cast<size_t>(query.k);
  }
  return window;
}

uint64_t ResolveShardedHits(const ShardPlan& plan, size_t window,
                            std::vector<Occurrence>* parts,
                            std::vector<Occurrence>* merged) {
  uint64_t deduped = 0;
  for (size_t s = 0; s < plan.num_shards(); ++s) {
    std::vector<Occurrence>& part = parts[s];
    for (const Occurrence& hit : part) {
      const size_t global = plan.LocalToGlobal(s, hit.position);
      // Keep the hit only in the one shard that owns its window; every
      // other slice containing it reports a seam duplicate.
      if (plan.OwnerShard(global, window) == s) {
        merged->push_back(Occurrence{global, hit.mismatches});
      } else {
        ++deduped;
      }
    }
    part.clear();
  }
  // Shard-order concatenation is position-sorted per shard but the seams
  // interleave; restore the canonical order.
  NormalizeOccurrences(merged);
  return deduped;
}

ShardedBatchSearcher::ShardedBatchSearcher(const ShardedIndex* index,
                                           const BatchOptions& options)
    : index_(index),
      options_(options),
      batch_(index->ShardPointers(), StripCache(options)) {
  if (options.result_cache_instance != nullptr) {
    cache_ = options.result_cache_instance;
  } else if (options.result_cache.enabled) {
    cache_ = std::make_shared<ResultCache>(options.result_cache);
  }
  if (cache_ != nullptr) cache_version_ = ShardedIndexVersion(*index);
}

bool ShardedBatchSearcher::ExactShortcutEligible(
    const BatchQuery& query) const {
  if (!options_.sharded_exact_shortcut) return false;
  if (query.k != 0 || query.pattern.empty()) return false;
  // Wildcard positions (codes outside the DNA alphabet) need the real
  // engine; a wildcard-free pattern at k = 0 is exact under every engine.
  for (const DnaCode c : query.pattern) {
    if (c >= kDnaAlphabetSize) return false;
  }
  return true;
}

uint64_t ShardedBatchSearcher::RunExactShortcut(
    const BatchQuery& query, std::vector<Occurrence>* merged) const {
  const ShardPlan& plan = index_->plan();
  const size_t m = query.pattern.size();
  std::vector<std::vector<Occurrence>> parts(plan.num_shards());
  for (size_t s = 0; s < plan.num_shards(); ++s) {
    const FmIndex& shard = index_->shard(s);
    const FmIndex::Range range = shard.MatchForward(query.pattern);
    if (range.empty()) continue;
    for (const size_t pos : shard.Locate(range, m)) {
      parts[s].push_back(Occurrence{pos, 0});
    }
  }
  BWTK_METRIC_COUNT(kCounterShardExactShortcuts);
  return ResolveShardedHits(plan, m, parts.data(), merged);
}

Result<BatchResult> ShardedBatchSearcher::Search(
    const std::vector<BatchQuery>& queries) {
  const ShardPlan& plan = index_->plan();
  const size_t num_shards = plan.num_shards();
  for (size_t q = 0; q < queries.size(); ++q) {
    if (queries[q].k < 0) continue;  // decode-failed placeholder, skipped
    const size_t window = ShardedQueryWindow(queries[q], options_.engine);
    if (window > plan.overlap()) {
      return Status::InvalidArgument(
          "sharded query " + std::to_string(q) + " needs a window of " +
          std::to_string(window) + " characters but the index overlap is " +
          std::to_string(plan.overlap()) +
          "; rebuild the sharded index with a larger overlap");
    }
  }

  BatchResult result;
  result.occurrences.resize(queries.size());
  uint64_t deduped = 0;
  // Cache keys carry the engine a query actually runs under: under kAuto
  // that is the per-query pick (the fan-out workers resolve identically),
  // so kAuto-routed entries are shared with routers pinning the same
  // engine.
  const bool bidir_available = !options_.bidir_indexes.empty();
  const auto engine_id_of = [&](const BatchQuery& query) {
    const BatchEngine resolved =
        options_.engine == BatchEngine::kAuto
            ? AutoPickEngine(query.pattern.size(), query.k, bidir_available)
            : options_.engine;
    return static_cast<uint8_t>(resolved);
  };

  // Dispatch pass, on the calling thread: serve what never needs the pool
  // (cache hits, k = 0 point lookups), collect the rest for fan-out.
  std::vector<BatchQuery> fanout_queries;
  std::vector<size_t> fanout_ids;
  // In-batch duplicate coalescing (cache-enabled runs only): cache inserts
  // for k > 0 queries happen after the fan-out, so a duplicate later in the
  // same batch can never be a cache hit. Fan out the first occurrence of
  // each (k, pattern) and have later duplicates copy its merged result —
  // byte-identical, and the duplicate contributes no engine SearchStats,
  // exactly like a cache-served query.
  std::unordered_map<std::string, size_t> pending;      // key -> fanout index
  std::vector<std::pair<size_t, size_t>> followers;     // (query, fanout idx)
  for (size_t q = 0; q < queries.size(); ++q) {
    const BatchQuery& query = queries[q];
    if (query.k < 0) continue;  // slot stays empty, like the plain pool
    if (cache_ != nullptr) {
      ResultCache::Entry cached;
      if (cache_->Lookup(engine_id_of(query), query.k, cache_version_,
                         query.pattern,
                         &cached)) {
        result.occurrences[q] = std::move(cached.hits);
        deduped += cached.seam_hits_deduped;
        continue;
      }
    }
    if (ExactShortcutEligible(query)) {
      const uint64_t q_deduped =
          RunExactShortcut(query, &result.occurrences[q]);
      deduped += q_deduped;
      if (cache_ != nullptr) {
        cache_->Insert(engine_id_of(query), query.k, cache_version_,
                       query.pattern,
                       ResultCache::Entry{result.occurrences[q],
                                          SearchStats{}, q_deduped});
      }
      continue;
    }
    if (cache_ != nullptr) {
      std::string key;
      key.reserve(query.pattern.size() + sizeof(query.k));
      key.append(reinterpret_cast<const char*>(&query.k), sizeof(query.k));
      for (const DnaCode c : query.pattern) {
        key.push_back(static_cast<char>(c));
      }
      const auto [it, inserted] =
          pending.emplace(std::move(key), fanout_queries.size());
      if (!inserted) {
        followers.emplace_back(q, it->second);
        continue;
      }
    }
    fanout_queries.push_back(query);
    fanout_ids.push_back(q);
  }

  if (!fanout_queries.empty()) {
    std::vector<uint64_t> fanout_deduped(fanout_queries.size(), 0);
    BWTK_METRIC_COUNT_N(kCounterShardQueries,
                        fanout_queries.size() * num_shards);
    BatchFanoutResult fanout = batch_.SearchFanout(fanout_queries);
    result.stats = fanout.stats;
    for (size_t i = 0; i < fanout_queries.size(); ++i) {
      const size_t q = fanout_ids[i];
      const size_t window = ShardedQueryWindow(queries[q], options_.engine);
      const uint64_t q_deduped =
          ResolveShardedHits(plan, window, &fanout.occurrences[i * num_shards],
                             &result.occurrences[q]);
      deduped += q_deduped;
      fanout_deduped[i] = q_deduped;
      BWTK_METRIC_COUNT_N(kCounterSeamHitsDeduped, q_deduped);
      if (cache_ != nullptr) {
        cache_->Insert(engine_id_of(queries[q]), queries[q].k, cache_version_,
                       queries[q].pattern,
                       ResultCache::Entry{result.occurrences[q],
                                          SearchStats{}, q_deduped});
      }
    }
    for (const auto& [q, i] : followers) {
      result.occurrences[q] = result.occurrences[fanout_ids[i]];
      deduped += fanout_deduped[i];
    }
  }
  result.seam_hits_deduped = deduped;
  return result;
}

Result<BatchResult> ShardedBatchSearcher::Search(
    const std::vector<std::string>& patterns, int32_t k) {
  std::vector<BatchQuery> queries(patterns.size());
  size_t failed = 0;
  for (size_t i = 0; i < patterns.size(); ++i) {
    auto codes = DecodeBatchPattern(options_.engine, patterns[i]);
    if (!codes.ok()) {
      if (options_.fail_fast) {
        return Status::InvalidArgument("batch query " + std::to_string(i) +
                                       ": " + codes.status().message());
      }
      ++failed;
      queries[i].k = -1;  // negative budget: the worker skips the task
      continue;
    }
    queries[i].pattern = std::move(codes).value();
    queries[i].k = k;
  }
  BWTK_ASSIGN_OR_RETURN(BatchResult result, Search(queries));
  result.failed_queries = failed;
  return result;
}

}  // namespace bwtk
