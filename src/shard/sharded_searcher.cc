#include "shard/sharded_searcher.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace bwtk {

size_t ShardedQueryWindow(const BatchQuery& query, BatchEngine engine) {
  size_t window = query.pattern.size();
  if (engine == BatchEngine::kKError && query.k > 0) {
    window += static_cast<size_t>(query.k);
  }
  return window;
}

uint64_t ResolveShardedHits(const ShardPlan& plan, size_t window,
                            std::vector<Occurrence>* parts,
                            std::vector<Occurrence>* merged) {
  uint64_t deduped = 0;
  for (size_t s = 0; s < plan.num_shards(); ++s) {
    std::vector<Occurrence>& part = parts[s];
    for (const Occurrence& hit : part) {
      const size_t global = plan.LocalToGlobal(s, hit.position);
      // Keep the hit only in the one shard that owns its window; every
      // other slice containing it reports a seam duplicate.
      if (plan.OwnerShard(global, window) == s) {
        merged->push_back(Occurrence{global, hit.mismatches});
      } else {
        ++deduped;
      }
    }
    part.clear();
  }
  // Shard-order concatenation is position-sorted per shard but the seams
  // interleave; restore the canonical order.
  NormalizeOccurrences(merged);
  return deduped;
}

ShardedBatchSearcher::ShardedBatchSearcher(const ShardedIndex* index,
                                           const BatchOptions& options)
    : index_(index),
      options_(options),
      batch_(index->ShardPointers(), options) {}

Result<BatchResult> ShardedBatchSearcher::Search(
    const std::vector<BatchQuery>& queries) {
  const ShardPlan& plan = index_->plan();
  const size_t num_shards = plan.num_shards();
  for (size_t q = 0; q < queries.size(); ++q) {
    if (queries[q].k < 0) continue;  // decode-failed placeholder, skipped
    const size_t window = ShardedQueryWindow(queries[q], options_.engine);
    if (window > plan.overlap()) {
      return Status::InvalidArgument(
          "sharded query " + std::to_string(q) + " needs a window of " +
          std::to_string(window) + " characters but the index overlap is " +
          std::to_string(plan.overlap()) +
          "; rebuild the sharded index with a larger overlap");
    }
  }

  BWTK_METRIC_COUNT_N(kCounterShardQueries, queries.size() * num_shards);
  BatchFanoutResult fanout = batch_.SearchFanout(queries);

  BatchResult result;
  result.stats = fanout.stats;
  result.occurrences.resize(queries.size());
  uint64_t deduped = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    const size_t window = ShardedQueryWindow(queries[q], options_.engine);
    deduped += ResolveShardedHits(plan, window,
                                  &fanout.occurrences[q * num_shards],
                                  &result.occurrences[q]);
  }
  BWTK_METRIC_COUNT_N(kCounterSeamHitsDeduped, deduped);
  result.seam_hits_deduped = deduped;
  return result;
}

Result<BatchResult> ShardedBatchSearcher::Search(
    const std::vector<std::string>& patterns, int32_t k) {
  std::vector<BatchQuery> queries(patterns.size());
  size_t failed = 0;
  for (size_t i = 0; i < patterns.size(); ++i) {
    auto codes = DecodeBatchPattern(options_.engine, patterns[i]);
    if (!codes.ok()) {
      if (options_.fail_fast) {
        return Status::InvalidArgument("batch query " + std::to_string(i) +
                                       ": " + codes.status().message());
      }
      ++failed;
      queries[i].k = -1;  // negative budget: the worker skips the task
      continue;
    }
    queries[i].pattern = std::move(codes).value();
    queries[i].k = k;
  }
  BWTK_ASSIGN_OR_RETURN(BatchResult result, Search(queries));
  result.failed_queries = failed;
  return result;
}

}  // namespace bwtk
