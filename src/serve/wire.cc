#include "serve/wire.h"

#include <cstring>

namespace bwtk::serve {

namespace {

// Little-endian primitive writers. memcpy keeps them alignment-safe; the
// byte order is the host's on every supported target (the build asserts
// little-endian in CMake for the serialized index format already).
template <typename T>
void PutInt(T value, std::string* out) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out->append(bytes, sizeof(T));
}

// Bounds-checked little-endian reader over a payload cursor.
struct Cursor {
  const char* data;
  size_t size;
  size_t pos = 0;

  template <typename T>
  bool Read(T* value) {
    if (size - pos < sizeof(T)) return false;
    std::memcpy(value, data + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }

  bool ReadBytes(size_t n, std::string* out) {
    if (size - pos < n) return false;
    out->assign(data + pos, n);
    pos += n;
    return true;
  }

  bool AtEnd() const { return pos == size; }
};

Status Malformed(const char* what) {
  return Status::Corruption(std::string("malformed ") + what + " payload");
}

void AppendFrame(FrameType type, std::string_view payload, std::string* out) {
  PutInt(static_cast<uint32_t>(payload.size()), out);
  out->push_back(static_cast<char>(type));
  out->append(payload);
}

}  // namespace

WireStatus ToWireStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return WireStatus::kOk;
    case StatusCode::kInvalidArgument:
      return WireStatus::kInvalidArgument;
    case StatusCode::kOverloaded:
      return WireStatus::kOverloaded;
    case StatusCode::kUnavailable:
      return WireStatus::kUnavailable;
    case StatusCode::kTimedOut:
      return WireStatus::kTimedOut;
    default:
      return WireStatus::kInternal;
  }
}

WireEngine ToWireEngine(BatchEngine engine) {
  switch (engine) {
    case BatchEngine::kAlgorithmA:
      return WireEngine::kAlgorithmA;
    case BatchEngine::kSTree:
      return WireEngine::kSTree;
    case BatchEngine::kKError:
      return WireEngine::kKError;
    case BatchEngine::kWildcard:
      return WireEngine::kWildcard;
    case BatchEngine::kDictionary:
      return WireEngine::kDictionary;
    case BatchEngine::kBidirectional:
      return WireEngine::kBidirectional;
    case BatchEngine::kAuto:
      return WireEngine::kAuto;
  }
  return WireEngine::kAlgorithmA;
}

Result<BatchEngine> FromWireEngine(uint8_t engine) {
  switch (static_cast<WireEngine>(engine)) {
    case WireEngine::kAlgorithmA:
      return BatchEngine::kAlgorithmA;
    case WireEngine::kSTree:
      return BatchEngine::kSTree;
    case WireEngine::kKError:
      return BatchEngine::kKError;
    case WireEngine::kWildcard:
      return BatchEngine::kWildcard;
    case WireEngine::kDictionary:
      return BatchEngine::kDictionary;
    case WireEngine::kBidirectional:
      return BatchEngine::kBidirectional;
    case WireEngine::kAuto:
      return BatchEngine::kAuto;
  }
  return Status::InvalidArgument("unknown wire engine id " +
                                 std::to_string(engine));
}

Status FromWireStatus(WireStatus status, std::string message) {
  switch (status) {
    case WireStatus::kOk:
      return Status::OK();
    case WireStatus::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case WireStatus::kOverloaded:
      return Status::Overloaded(std::move(message));
    case WireStatus::kUnavailable:
      return Status::Unavailable(std::move(message));
    case WireStatus::kTimedOut:
      return Status::TimedOut(std::move(message));
    case WireStatus::kInternal:
      break;
  }
  return Status::Internal(std::move(message));
}

void AppendHelloFrame(std::string* out) {
  std::string payload;
  PutInt(kWireMagic, &payload);
  PutInt(kWireVersion, &payload);
  PutInt(static_cast<uint16_t>(0), &payload);  // reserved
  AppendFrame(FrameType::kHello, payload, out);
}

void AppendHelloAckFrame(const HelloAck& ack, std::string* out) {
  std::string payload;
  PutInt(ack.version, &payload);
  PutInt(ack.max_inflight, &payload);
  payload.push_back(static_cast<char>(ack.engine.size()));
  payload.append(ack.engine);
  payload.push_back(ack.sharded ? 1 : 0);
  AppendFrame(FrameType::kHelloAck, payload, out);
}

void AppendQueryFrame(const QueryRequest& request, std::string* out) {
  std::string payload;
  PutInt(request.request_id, &payload);
  PutInt(request.k, &payload);
  PutInt(static_cast<uint32_t>(request.pattern.size()), &payload);
  payload.append(request.pattern);
  // Flags trailer only when a flag is set: a flagless QUERY stays
  // byte-identical to the pre-trailer encoding, so old servers still
  // accept it. The engine byte rides AFTER the flags byte (append-at-END).
  uint8_t flags = 0;
  if (request.want_stats) flags |= kQueryFlagWantStats;
  if (request.engine_override.has_value()) flags |= kQueryFlagEngineOverride;
  if (flags != 0) {
    payload.push_back(static_cast<char>(flags));
    if (request.engine_override.has_value()) {
      payload.push_back(
          static_cast<char>(ToWireEngine(*request.engine_override)));
    }
  }
  AppendFrame(FrameType::kQuery, payload, out);
}

void AppendResultFrame(const QueryResponse& response, std::string* out) {
  std::string payload;
  PutInt(response.request_id, &payload);
  payload.push_back(static_cast<char>(response.status));
  PutInt(static_cast<uint32_t>(response.message.size()), &payload);
  payload.append(response.message);
  PutInt(static_cast<uint32_t>(response.hits.size()), &payload);
  for (const Occurrence& hit : response.hits) {
    PutInt(static_cast<uint64_t>(hit.position), &payload);
    PutInt(hit.mismatches, &payload);
  }
  if (response.has_stats) {
    uint8_t flags = 0;
    if (response.cache_served) flags |= kResultFlagCacheServed;
    payload.push_back(static_cast<char>(flags));
    PutInt(response.stats.stree_nodes, &payload);
    PutInt(response.stats.extend_calls, &payload);
    PutInt(response.stats.completed_paths, &payload);
    PutInt(response.stats.tau_pruned, &payload);
    PutInt(response.stats.budget_pruned, &payload);
    PutInt(response.stats.mtree_nodes, &payload);
    PutInt(response.stats.mtree_leaves, &payload);
    PutInt(response.stats.reused_nodes, &payload);
    PutInt(response.stats.derived_runs, &payload);
    PutInt(response.queue_ns, &payload);
    PutInt(response.search_ns, &payload);
  }
  AppendFrame(FrameType::kResult, payload, out);
}

void AppendStatsFrame(std::string* out) {
  AppendFrame(FrameType::kStats, {}, out);
}

void AppendStatsResultFrame(const SessionStats& stats, std::string* out) {
  std::string payload;
  PutInt(kStatsResultFieldCount, &payload);
  PutInt(static_cast<uint64_t>(stats.queue_depth), &payload);
  PutInt(static_cast<uint64_t>(stats.running), &payload);
  PutInt(static_cast<uint64_t>(stats.inflight), &payload);
  PutInt(stats.submitted, &payload);
  PutInt(stats.completed, &payload);
  PutInt(stats.rejected_overloaded, &payload);
  PutInt(stats.rejected_unavailable, &payload);
  PutInt(stats.memo_hits, &payload);
  PutInt(stats.result_cache_hits, &payload);
  PutInt(stats.result_cache_misses, &payload);
  PutInt(stats.shard_exact_shortcuts, &payload);
  PutInt(static_cast<uint64_t>(stats.accepting ? 1 : 0), &payload);
  AppendFrame(FrameType::kStatsResult, payload, out);
}

void FrameReader::Feed(const char* data, size_t n) {
  // Reclaim the consumed prefix before growing; keeps the buffer at the
  // size of the partial frame, not the whole connection history.
  if (consumed_ > 0) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, n);
}

Result<std::optional<Frame>> FrameReader::Next() {
  const size_t available = buffer_.size() - consumed_;
  if (available < 5) return std::optional<Frame>{};
  uint32_t payload_length = 0;
  std::memcpy(&payload_length, buffer_.data() + consumed_, 4);
  if (payload_length > max_payload_) {
    return Status::Corruption("frame payload of " +
                              std::to_string(payload_length) +
                              " bytes exceeds the " +
                              std::to_string(max_payload_) + "-byte cap");
  }
  if (available < 5 + static_cast<size_t>(payload_length)) {
    return std::optional<Frame>{};
  }
  Frame frame;
  frame.type =
      static_cast<FrameType>(static_cast<uint8_t>(buffer_[consumed_ + 4]));
  frame.payload.assign(buffer_, consumed_ + 5, payload_length);
  consumed_ += 5 + payload_length;
  return std::optional<Frame>{std::move(frame)};
}

Status ValidateHelloPayload(std::string_view payload) {
  Cursor cursor{payload.data(), payload.size()};
  uint32_t magic = 0;
  uint16_t version = 0;
  uint16_t reserved = 0;
  if (!cursor.Read(&magic) || !cursor.Read(&version) ||
      !cursor.Read(&reserved) || !cursor.AtEnd()) {
    return Malformed("HELLO");
  }
  if (magic != kWireMagic) {
    return Status::Corruption("bad HELLO magic (not a bwtk client?)");
  }
  if (version != kWireVersion) {
    return Status::InvalidArgument(
        "unsupported wire version " + std::to_string(version) +
        " (server speaks " + std::to_string(kWireVersion) + ")");
  }
  return Status::OK();
}

Result<HelloAck> ParseHelloAckPayload(std::string_view payload) {
  Cursor cursor{payload.data(), payload.size()};
  HelloAck ack;
  uint8_t engine_length = 0;
  uint8_t sharded = 0;
  if (!cursor.Read(&ack.version) || !cursor.Read(&ack.max_inflight) ||
      !cursor.Read(&engine_length) ||
      !cursor.ReadBytes(engine_length, &ack.engine) ||
      !cursor.Read(&sharded) || !cursor.AtEnd()) {
    return Malformed("HELLO_ACK");
  }
  ack.sharded = sharded != 0;
  return ack;
}

Result<QueryRequest> ParseQueryPayload(std::string_view payload) {
  Cursor cursor{payload.data(), payload.size()};
  QueryRequest request;
  uint32_t pattern_length = 0;
  if (!cursor.Read(&request.request_id) || !cursor.Read(&request.k) ||
      !cursor.Read(&pattern_length) ||
      !cursor.ReadBytes(pattern_length, &request.pattern)) {
    return Malformed("QUERY");
  }
  // Optional flags trailer; absent means all flags clear (version-1
  // clients never send it). Bit 1 pulls one engine byte after the flags.
  if (!cursor.AtEnd()) {
    uint8_t flags = 0;
    if (!cursor.Read(&flags)) return Malformed("QUERY");
    request.want_stats = (flags & kQueryFlagWantStats) != 0;
    if ((flags & kQueryFlagEngineOverride) != 0) {
      uint8_t engine = 0;
      if (!cursor.Read(&engine)) return Malformed("QUERY");
      BWTK_ASSIGN_OR_RETURN(request.engine_override, FromWireEngine(engine));
    }
    if (!cursor.AtEnd()) return Malformed("QUERY");
  }
  return request;
}

Result<QueryResponse> ParseResultPayload(std::string_view payload) {
  Cursor cursor{payload.data(), payload.size()};
  QueryResponse response;
  uint8_t status = 0;
  uint32_t message_length = 0;
  uint32_t num_hits = 0;
  if (!cursor.Read(&response.request_id) || !cursor.Read(&status) ||
      !cursor.Read(&message_length) ||
      !cursor.ReadBytes(message_length, &response.message) ||
      !cursor.Read(&num_hits)) {
    return Malformed("RESULT");
  }
  response.status = static_cast<WireStatus>(status);
  // 12 bytes per hit; the remaining-size check rejects a lying num_hits
  // before the reserve can balloon.
  if ((payload.size() - cursor.pos) / 12 < num_hits) {
    return Malformed("RESULT");
  }
  response.hits.reserve(num_hits);
  for (uint32_t i = 0; i < num_hits; ++i) {
    uint64_t position = 0;
    int32_t mismatches = 0;
    if (!cursor.Read(&position) || !cursor.Read(&mismatches)) {
      return Malformed("RESULT");
    }
    response.hits.push_back(
        Occurrence{static_cast<size_t>(position), mismatches});
  }
  // Optional stats trailer: flags byte + 9 stats fields + two timings.
  // Absent means the query did not ask for it.
  if (!cursor.AtEnd()) {
    uint8_t flags = 0;
    if (!cursor.Read(&flags) || !cursor.Read(&response.stats.stree_nodes) ||
        !cursor.Read(&response.stats.extend_calls) ||
        !cursor.Read(&response.stats.completed_paths) ||
        !cursor.Read(&response.stats.tau_pruned) ||
        !cursor.Read(&response.stats.budget_pruned) ||
        !cursor.Read(&response.stats.mtree_nodes) ||
        !cursor.Read(&response.stats.mtree_leaves) ||
        !cursor.Read(&response.stats.reused_nodes) ||
        !cursor.Read(&response.stats.derived_runs) ||
        !cursor.Read(&response.queue_ns) || !cursor.Read(&response.search_ns) ||
        !cursor.AtEnd()) {
      return Malformed("RESULT");
    }
    response.has_stats = true;
    response.cache_served = (flags & kResultFlagCacheServed) != 0;
  }
  return response;
}

Result<SessionStats> ParseStatsResultPayload(std::string_view payload) {
  Cursor cursor{payload.data(), payload.size()};
  uint32_t count = 0;
  if (!cursor.Read(&count)) return Malformed("STATS_RESULT");
  // The count is authoritative: the payload must hold exactly that many
  // u64s. A newer server may send more fields than we know (we skip the
  // extras); an older one fewer (the missing ones stay zero).
  if (payload.size() - cursor.pos != static_cast<size_t>(count) * 8) {
    return Malformed("STATS_RESULT");
  }
  uint64_t fields[kStatsResultFieldCount] = {};
  const uint32_t known = count < kStatsResultFieldCount
                             ? count
                             : kStatsResultFieldCount;
  for (uint32_t i = 0; i < known; ++i) {
    if (!cursor.Read(&fields[i])) return Malformed("STATS_RESULT");
  }
  SessionStats stats;
  stats.queue_depth = static_cast<size_t>(fields[0]);
  stats.running = static_cast<size_t>(fields[1]);
  stats.inflight = static_cast<size_t>(fields[2]);
  stats.submitted = fields[3];
  stats.completed = fields[4];
  stats.rejected_overloaded = fields[5];
  stats.rejected_unavailable = fields[6];
  stats.memo_hits = fields[7];
  stats.result_cache_hits = fields[8];
  stats.result_cache_misses = fields[9];
  stats.shard_exact_shortcuts = fields[10];
  stats.accepting = fields[11] != 0;
  return stats;
}

}  // namespace bwtk::serve
