#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/logging.h"

namespace bwtk::serve {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

// Writes the whole buffer, looping over partial sends. MSG_NOSIGNAL turns
// a peer hang-up into EPIPE instead of killing the process.
bool WriteAll(int fd, std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::send(fd, data.data() + written, data.size() - written,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

// One client socket plus the bookkeeping for its outstanding requests.
// Shared between the reader thread, Session worker callbacks, and the
// timeout reaper; kept alive by shared_ptr until the last of them lets go.
struct Connection {
  int fd = -1;

  // Telemetry (serve/http_exposition.h, serve_top). `id` is assigned at
  // accept and immutable; the counters are relaxed atomics because the
  // exposition thread snapshots them while the reader/worker threads write.
  uint64_t id = 0;
  Clock::time_point opened = Clock::now();
  std::atomic<uint64_t> queries{0};         // QUERY frames received
  std::atomic<uint64_t> stats_requests{0};  // STATS frames received
  std::atomic<uint64_t> overloaded{0};      // layer-1 rejections
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  std::atomic<uint64_t> last_activity_nanos{0};  // steady nanos of last recv

  // Guards fd liveness and serializes frame writes (a RESULT from a worker
  // must not interleave with one from the reaper).
  std::mutex write_mu;
  bool closed = false;

  // Outstanding QUERY bookkeeping.
  struct PendingRequest {
    bool responded = false;  // a RESULT (possibly kTimedOut) already went out
    Clock::time_point deadline;
  };
  std::mutex request_mu;
  std::unordered_map<uint64_t, PendingRequest> pending;
  size_t inflight = 0;  // unanswered QUERYs (the per-connection gauge)

  void Send(std::string_view frame) {
    std::lock_guard<std::mutex> lock(write_mu);
    if (closed) return;
    if (!WriteAll(fd, frame)) {
      // Peer is gone; stop writing. The reader thread notices on its side
      // and tears the connection down.
      closed = true;
      return;
    }
    bytes_out.fetch_add(frame.size(), std::memory_order_relaxed);
  }

  void SendResponse(const QueryResponse& response) {
    std::string frame;
    AppendResultFrame(response, &frame);
    Send(frame);
  }

  // Severs the socket so a blocked recv/send returns. Does not close the
  // descriptor (the reader thread owns that).
  void Sever() { ::shutdown(fd, SHUT_RDWR); }
};

}  // namespace

struct Server::Impl {
  Session* session = nullptr;
  ServerOptions options;

  int listen_fd = -1;
  uint16_t bound_port = 0;

  mutable std::mutex mu;
  bool stopping = false;
  uint64_t next_conn_id = 1;  // anonymous accept-order ids (guarded by mu)
  std::vector<std::shared_ptr<Connection>> connections;  // open connections
  std::vector<std::thread> reader_threads;  // joined at Stop
  std::thread acceptor;
  std::thread reaper;
  std::condition_variable reaper_cv;  // wakes the reaper early on Stop

  // --- Per-connection protocol ------------------------------------------

  void HandleQuery(const std::shared_ptr<Connection>& conn,
                   const std::string& payload) {
    const Result<QueryRequest> parsed = ParseQueryPayload(payload);
    if (!parsed.ok()) {
      // Framing is intact but the payload is garbage: answer and carry on
      // (the stream is still synchronized).
      QueryResponse response;
      response.status = WireStatus::kInvalidArgument;
      response.message = parsed.status().message();
      conn->SendResponse(response);
      return;
    }
    const QueryRequest& request = parsed.value();
    conn->queries.fetch_add(1, std::memory_order_relaxed);
    if (request.want_stats) BWTK_METRIC_COUNT(kCounterServeStatsTrailers);
    QueryResponse reject;
    reject.request_id = request.request_id;

    // Layer 1: per-connection admission, before touching the Session.
    {
      std::lock_guard<std::mutex> lock(conn->request_mu);
      if (conn->pending.contains(request.request_id)) {
        reject.status = WireStatus::kInvalidArgument;
        reject.message = "request id " + std::to_string(request.request_id) +
                         " is already outstanding on this connection";
        conn->SendResponse(reject);
        return;
      }
      if (conn->inflight >= options.max_inflight_per_connection) {
        conn->overloaded.fetch_add(1, std::memory_order_relaxed);
        BWTK_METRIC_COUNT(kCounterServeConnOverloaded);
        reject.status = WireStatus::kOverloaded;
        reject.message = "connection in-flight cap (" +
                         std::to_string(options.max_inflight_per_connection) +
                         ") reached; read some results first";
        conn->SendResponse(reject);
        return;
      }
    }

    // The override (wire engine byte) decides how the pattern decodes —
    // wildcard syntax only parses under an effective kWildcard — and which
    // engine the Session runs; Submit validates availability and answers
    // kInvalidArgument for an engine this session cannot execute.
    const BatchEngine effective_engine =
        request.engine_override.value_or(session->engine());
    auto codes = DecodeBatchPattern(effective_engine, request.pattern);
    if (!codes.ok()) {
      reject.status = WireStatus::kInvalidArgument;
      reject.message = codes.status().message();
      conn->SendResponse(reject);
      return;
    }

    // Claim the in-flight slot, then submit. The callback owns releasing
    // the slot (or the reaper does, on timeout).
    {
      std::lock_guard<std::mutex> lock(conn->request_mu);
      Connection::PendingRequest entry;
      if (options.request_timeout.count() > 0) {
        entry.deadline = Clock::now() + options.request_timeout;
      }
      conn->pending.emplace(request.request_id, entry);
      ++conn->inflight;
    }
    const uint64_t request_id = request.request_id;
    const bool want_stats = request.want_stats;
    const Result<Ticket> ticket = session->Submit(
        BatchQuery{std::move(codes).value(), request.k},
        request.engine_override,
        [conn, request_id, want_stats](QueryResult result) {
          QueryResponse response;
          response.request_id = request_id;
          response.status = ToWireStatus(result.status);
          response.message = result.status.message();
          response.hits = std::move(result.hits);
          if (want_stats) {
            response.has_stats = true;
            response.cache_served = result.cache_served;
            response.stats = result.stats;
            response.queue_ns = result.queue_ns;
            response.search_ns = result.search_ns;
          }
          {
            std::lock_guard<std::mutex> lock(conn->request_mu);
            const auto it = conn->pending.find(request_id);
            if (it == conn->pending.end()) return;  // connection torn down
            const bool already_responded = it->second.responded;
            conn->pending.erase(it);
            if (already_responded) return;  // the reaper timed it out
            --conn->inflight;
          }
          conn->SendResponse(response);
        });
    if (!ticket.ok()) {
      // Layer 2: session admission refused — release the slot and answer
      // with the mapped wire status (kOverloaded / kUnavailable / ...).
      {
        std::lock_guard<std::mutex> lock(conn->request_mu);
        conn->pending.erase(request_id);
        --conn->inflight;
      }
      reject.status = ToWireStatus(ticket.status());
      reject.message = ticket.status().message();
      conn->SendResponse(reject);
    }
  }

  // Returns false when the connection must close (protocol violation).
  bool HandleFrame(const std::shared_ptr<Connection>& conn, Frame frame,
                   bool* saw_hello) {
    if (!*saw_hello) {
      if (frame.type != FrameType::kHello) return false;
      const Status status = ValidateHelloPayload(frame.payload);
      if (!status.ok()) {
        BWTK_LOG(Warning) << "serve: rejected client: " << status.message();
        return false;
      }
      HelloAck ack;
      ack.max_inflight =
          static_cast<uint32_t>(options.max_inflight_per_connection);
      ack.engine = std::string(session->engine_name());
      ack.sharded = session->num_indexes() > 1;
      std::string out;
      AppendHelloAckFrame(ack, &out);
      conn->Send(out);
      *saw_hello = true;
      return true;
    }
    switch (frame.type) {
      case FrameType::kQuery:
        HandleQuery(conn, frame.payload);
        return true;
      case FrameType::kStats: {
        conn->stats_requests.fetch_add(1, std::memory_order_relaxed);
        std::string out;
        AppendStatsResultFrame(session->Stats(), &out);
        conn->Send(out);
        return true;
      }
      default:
        // HELLO twice, or a server→client type: protocol violation.
        return false;
    }
  }

  void ReaderLoop(std::shared_ptr<Connection> conn) {
    FrameReader reader(options.max_frame_payload);
    bool saw_hello = false;
    char buffer[64 * 1024];
    for (;;) {
      const ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // EOF, error, or Stop's shutdown()
      conn->bytes_in.fetch_add(static_cast<uint64_t>(n),
                               std::memory_order_relaxed);
      conn->last_activity_nanos.store(NowNanos(), std::memory_order_relaxed);
      reader.Feed(buffer, static_cast<size_t>(n));
      bool tear_down = false;
      for (;;) {
        Result<std::optional<Frame>> next = reader.Next();
        if (!next.ok()) {
          BWTK_LOG(Warning) << "serve: closing connection: "
                            << next.status().message();
          tear_down = true;
          break;
        }
        if (!next.value().has_value()) break;
        if (!HandleFrame(conn, std::move(next.value()).value(), &saw_hello)) {
          tear_down = true;
          break;
        }
      }
      if (tear_down) break;
    }
    // Quiesce the connection: late worker callbacks find no pending entry
    // and drop their responses; writes become no-ops.
    {
      std::lock_guard<std::mutex> lock(conn->request_mu);
      conn->pending.clear();
      conn->inflight = 0;
    }
    {
      std::lock_guard<std::mutex> lock(conn->write_mu);
      conn->closed = true;
      ::close(conn->fd);
    }
    std::lock_guard<std::mutex> lock(mu);
    std::erase(connections, conn);
  }

  // --- Timeout reaper ----------------------------------------------------

  void ReaperLoop() {
    // The scan interval bounds timeout precision at timeout/4 (min 1ms,
    // max 50ms) — coarse on purpose; request_timeout is a shedding
    // mechanism, not a scheduler.
    const auto interval = std::clamp<std::chrono::milliseconds>(
        options.request_timeout / 4, std::chrono::milliseconds(1),
        std::chrono::milliseconds(50));
    std::unique_lock<std::mutex> lock(mu);
    while (!stopping) {
      reaper_cv.wait_for(lock, interval);
      if (stopping) return;
      const std::vector<std::shared_ptr<Connection>> snapshot = connections;
      lock.unlock();
      const auto now = Clock::now();
      for (const auto& conn : snapshot) {
        std::vector<uint64_t> expired;
        {
          std::lock_guard<std::mutex> request_lock(conn->request_mu);
          for (auto& [request_id, entry] : conn->pending) {
            if (!entry.responded && entry.deadline <= now) {
              // Keep the entry: the worker callback will erase it and see
              // that a response already went out.
              entry.responded = true;
              --conn->inflight;
              expired.push_back(request_id);
            }
          }
        }
        for (const uint64_t request_id : expired) {
          QueryResponse response;
          response.request_id = request_id;
          response.status = WireStatus::kTimedOut;
          response.message = "request timed out server-side; the search "
                             "still runs but its result is discarded";
          conn->SendResponse(response);
        }
      }
      lock.lock();
    }
  }

  // --- Acceptor ----------------------------------------------------------

  void AcceptorLoop() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listener closed by Stop
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_shared<Connection>();
      conn->fd = fd;
      conn->last_activity_nanos.store(NowNanos(), std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu);
      if (stopping) {
        ::close(fd);
        return;
      }
      conn->id = next_conn_id++;
      connections.push_back(conn);
      reader_threads.emplace_back(
          [this, conn = std::move(conn)]() mutable {
            ReaderLoop(std::move(conn));
          });
    }
  }
};

Server::Server(Session* session, const ServerOptions& options)
    : impl_(std::make_unique<Impl>()) {
  BWTK_CHECK(session != nullptr);
  impl_->session = session;
  impl_->options = options;
}

Server::~Server() { Stop(); }

Status Server::Start() {
  Impl& impl = *impl_;
  BWTK_CHECK(impl.listen_fd < 0);  // Start is once-only
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket: " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(impl.options.port);
  if (::inet_pton(AF_INET, impl.options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address: " + impl.options.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, impl.options.listen_backlog) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IoError("bind/listen on " + impl.options.host + ":" +
                           std::to_string(impl.options.port) + ": " + error);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  impl.bound_port = ntohs(bound.sin_port);
  impl.listen_fd = fd;
  impl.acceptor = std::thread([&impl] { impl.AcceptorLoop(); });
  if (impl.options.request_timeout.count() > 0) {
    impl.reaper = std::thread([&impl] { impl.ReaperLoop(); });
  }
  return Status::OK();
}

uint16_t Server::port() const { return impl_->bound_port; }

void Server::Stop() {
  Impl& impl = *impl_;
  std::vector<std::shared_ptr<Connection>> to_sever;
  {
    std::lock_guard<std::mutex> lock(impl.mu);
    if (impl.stopping) return;
    impl.stopping = true;
    to_sever = impl.connections;
  }
  impl.reaper_cv.notify_all();
  if (impl.listen_fd >= 0) {
    // shutdown() unblocks a blocked accept(); close() releases the port.
    ::shutdown(impl.listen_fd, SHUT_RDWR);
    ::close(impl.listen_fd);
  }
  for (const auto& conn : to_sever) conn->Sever();
  if (impl.acceptor.joinable()) impl.acceptor.join();
  if (impl.reaper.joinable()) impl.reaper.join();
  // Reader threads remove themselves from `connections` but their thread
  // objects are joined here, after the acceptor can no longer add more.
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(impl.mu);
    readers.swap(impl.reader_threads);
  }
  for (std::thread& thread : readers) thread.join();
}

size_t Server::num_connections() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->connections.size();
}

std::vector<Server::ConnectionStats> Server::ConnectionsSnapshot() const {
  std::vector<ConnectionStats> out;
  const uint64_t now = NowNanos();
  const Clock::time_point now_tp = Clock::now();
  std::lock_guard<std::mutex> lock(impl_->mu);
  out.reserve(impl_->connections.size());
  for (const auto& conn : impl_->connections) {
    ConnectionStats stats;
    stats.id = conn->id;
    stats.queries = conn->queries.load(std::memory_order_relaxed);
    stats.stats_requests =
        conn->stats_requests.load(std::memory_order_relaxed);
    stats.overloaded = conn->overloaded.load(std::memory_order_relaxed);
    stats.bytes_in = conn->bytes_in.load(std::memory_order_relaxed);
    stats.bytes_out = conn->bytes_out.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> request_lock(conn->request_mu);
      stats.inflight = conn->inflight;
    }
    stats.age_nanos = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now_tp -
                                                             conn->opened)
            .count());
    const uint64_t last =
        conn->last_activity_nanos.load(std::memory_order_relaxed);
    stats.idle_nanos = now > last ? now - last : 0;
    out.push_back(stats);
  }
  return out;
}

}  // namespace bwtk::serve
