// Always-on query service: a long-lived Session owning an index (monolithic
// or sharded) plus a persistent worker pool, serving a *stream* of queries
// instead of pre-assembled batches.
//
// Where BatchSearcher amortizes one synchronous rendezvous over a whole
// batch, a Session admits queries one at a time into a bounded queue and
// hands each to the first free worker; callers collect results by ticket
// (Poll/Wait/WaitFor) or by completion callback. Results are byte-identical
// to the direct engines: every ticket runs through the same EngineBank task
// path the BatchSearcher workers use, and sharded Sessions resolve seams
// with the same ResolveShardedHits ownership rule as ShardedBatchSearcher.
//
//   bwtk::serve::Session session(&index, {.num_threads = 4});
//   auto ticket = session.Submit({pattern, k});
//   if (!ticket.ok()) { /* kOverloaded: shed load, retry later */ }
//   bwtk::serve::QueryResult r = session.Wait(ticket.value()).value();
//   // r.hits == AlgorithmA(&index).Search(pattern, k)
//
// Admission control is explicit and non-blocking: Submit never waits. When
// the queue is full or the in-flight budget is spent it fails fast with
// StatusCode::kOverloaded so the caller (e.g. the TCP front-end in
// serve/server.h) can shed load instead of stacking latency. After Drain()
// or Shutdown() submission fails with kUnavailable.
//
// Lifecycle state machine (docs/SERVING.md has the full operator view):
//
//   kServing --Drain()--> kDraining --queue empties--> kDrained
//       \                                                 |
//        +---------------Shutdown()----------------------+--> kStopped
//
// - kServing:  admitting and executing. Pause()/Resume() toggle execution
//              without leaving this state (admission continues until the
//              queue fills; used for quiesce windows and overload tests).
// - kDraining: admission closed, workers finishing the backlog.
// - kDrained:  backlog empty; results remain collectable by ticket.
// - kStopped:  workers joined; only result collection still works.
//
// Thread safety: every public method is safe to call from any thread, any
// number of threads — Sessions are meant to be shared by concurrent client
// handlers. Callbacks run on worker threads and must not call back into
// blocking Session methods (Poll and Stats are fine; Wait would deadlock a
// worker).

#ifndef BWTK_SERVE_SESSION_H_
#define BWTK_SERVE_SESSION_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bwt/fm_index.h"
#include "obs/trace.h"
#include "search/batch_searcher.h"
#include "search/match.h"
#include "shard/sharded_index.h"
#include "util/status.h"

namespace bwtk::serve {

/// Opaque handle for one submitted query. Ticket ids are assigned densely
/// from 1 in admission order and double as the query's trace id, so a slow
/// query in the trace log is directly attributable to its submission.
using Ticket = uint64_t;

/// Completed query: everything the caller gets back for one ticket.
struct QueryResult {
  Ticket ticket = 0;
  /// OkStatus() for an executed search; an error when the query was
  /// rejected at execution time (currently only sharded window overflow —
  /// see SessionOptions::batch.engine and ShardedQueryWindow).
  Status status = Status::OK();
  /// Hits in text coordinates (global coordinates for a sharded Session),
  /// position-sorted; byte-identical to the serial engine / sharded router.
  std::vector<Occurrence> hits;
  /// This query's engine counters (docs/API.md, per-engine stats contract).
  SearchStats stats;
  /// The engine that actually served the ticket: the Session's configured
  /// engine, the per-ticket override if one was submitted, and in either
  /// case with kAuto resolved to its per-query pick. Meaningful only for
  /// executed tickets (drain-failed results keep the default).
  BatchEngine engine = BatchEngine::kAlgorithmA;
  /// Seam duplicates discarded by the ownership rule (sharded Sessions).
  uint64_t seam_hits_deduped = 0;
  /// True when the result came from the exact-duplicate result cache
  /// (SessionOptions::batch.result_cache) instead of a fresh execution.
  /// `hits`, `stats` and `seam_hits_deduped` are byte-identical either way —
  /// cached entries store the original execution's values.
  bool cache_served = false;
  /// Admission-to-pickup wait and engine execution time.
  uint64_t queue_ns = 0;
  uint64_t search_ns = 0;
};

/// Called on a worker thread when a callback-submitted ticket completes.
/// Invoked exactly once per ticket, including for failed queries and for
/// queries still queued at Shutdown (those complete with kUnavailable).
using Callback = std::function<void(QueryResult)>;

/// Session configuration, fixed at construction.
struct SessionOptions {
  /// Persistent worker threads; 0 means hardware concurrency.
  int num_threads = 0;

  /// Admission queue capacity: tickets admitted but not yet picked up by a
  /// worker. Submit fails with kOverloaded when the queue is full.
  size_t queue_capacity = 1024;

  /// In-flight budget: tickets admitted whose results have not yet been
  /// collected (polled, waited, or callback-returned). Submit fails with
  /// kOverloaded at the cap. This bounds the retained-results map for
  /// clients that submit faster than they poll; it is per Session — the
  /// TCP front-end enforces its per-connection cap on top (see
  /// ServerOptions::max_inflight_per_connection).
  size_t max_inflight = 4096;

  /// Engine selection and engine knobs, shared with BatchSearcher: engine,
  /// algorithm_a/stree options, deterministic_order, and the tracing knobs
  /// (trace_sample_rate, slow_trace_count, trace_seed, trace_out — the
  /// trace file is rewritten on Drain/Shutdown rather than per batch).
  /// num_threads/fail_fast inside are ignored; SessionOptions wins.
  ///
  /// Two reuse tiers also live here. `batch.result_cache` /
  /// `batch.result_cache_instance` front the whole ticket path: an exact
  /// duplicate (pattern, k) against the same index version is served from
  /// the cache without touching a worker engine (QueryResult::cache_served).
  /// `batch.shared_memo` (kAlgorithmA only) shares completed subtrees
  /// across the Session's whole stream — unlike BatchSearcher there is no
  /// batch boundary, so the memo is never cleared; its capacity bound is
  /// the backstop.
  BatchOptions batch = {};
};

/// Point-in-time gauges and lifetime counters (see docs/OBSERVABILITY.md).
///
/// Wire note: this struct crosses the serve protocol as the STATS_RESULT
/// payload, which is count-prefixed (serve/wire.h). Append new fields at the
/// END only — the wire order is the declaration order below plus `accepting`
/// last, and old clients zero-fill fields they don't know. The evolution
/// rule is documented in docs/SERVING.md.
struct SessionStats {
  size_t queue_depth = 0;     ///< admitted, waiting for a worker
  size_t running = 0;         ///< currently executing on a worker
  size_t inflight = 0;        ///< admitted, result not yet collected
  uint64_t submitted = 0;     ///< tickets ever admitted
  uint64_t completed = 0;     ///< tickets whose search finished (any status)
  uint64_t rejected_overloaded = 0;   ///< Submit failures: budget/queue full
  uint64_t rejected_unavailable = 0;  ///< Submit failures: draining/stopped
  // Cross-query reuse tiers (process-wide registry totals, not per-Session:
  // the memo is session-scoped but the result cache may be shared across
  // Sessions — these mirror the obs counters so remote serve_tool clients
  // can see them without scraping HTTP).
  uint64_t memo_hits = 0;             ///< subtree-memo hits (kAlgorithmA L2)
  uint64_t result_cache_hits = 0;     ///< exact-duplicate cache hits (L3)
  uint64_t result_cache_misses = 0;   ///< result-cache probes that missed
  uint64_t shard_exact_shortcuts = 0; ///< sharded k=0 owner-shard answers
  /// True while the Session admits queries (kServing). The /readyz probe and
  /// remote clients use this to see a drain in progress.
  bool accepting = false;
};

/// The serving engine. See the file comment for the lifecycle contract.
class Session {
 public:
  /// Monolithic Session: queries run against `index`, which must outlive
  /// the Session. Workers start here and idle until the first Submit.
  explicit Session(const FmIndex* index, const SessionOptions& options = {});

  /// Sharded Session: queries fan across `index`'s shards *within one
  /// worker* (a ticket is one task; shard parallelism comes from concurrent
  /// tickets) and seams resolve by the owner-shard rule, so results equal
  /// ShardedBatchSearcher's — and therefore the monolithic engine's.
  explicit Session(const ShardedIndex* index,
                   const SessionOptions& options = {});

  /// Shutdown() + worker join. Queued callback tickets fire with
  /// kUnavailable before the destructor returns.
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Admits one query. Fails fast (never blocks) with kOverloaded when the
  /// queue or in-flight budget is full, kUnavailable after Drain/Shutdown,
  /// kInvalidArgument for a negative k or (sharded) a window longer than
  /// the index overlap. On success the ticket's result must eventually be
  /// collected via Poll/Wait/WaitFor — exactly once.
  Result<Ticket> Submit(BatchQuery query);

  /// Callback form: `callback` fires exactly once on a worker thread when
  /// the query completes; the ticket is auto-collected when the callback
  /// returns (do not Poll/Wait it).
  Result<Ticket> Submit(BatchQuery query, Callback callback);

  /// Per-ticket engine override (the serve wire's ENGINE_OVERRIDE flag
  /// lands here): when `engine_override` is set, this ticket runs under
  /// that engine instead of the Session's configured one — same indexes,
  /// same seam rule, same result-cache (keyed by the resolved engine).
  /// Fails with kInvalidArgument when the override is not executable on
  /// this Session (kBidirectional without bidir_indexes) or, sharded, when
  /// the override's window exceeds the overlap. nullopt behaves exactly
  /// like the plain Submit.
  Result<Ticket> Submit(BatchQuery query,
                        std::optional<BatchEngine> engine_override,
                        Callback callback);

  /// ASCII convenience: decodes with DecodeBatchPattern for the configured
  /// engine (wildcard syntax under kWildcard), then Submit.
  Result<Ticket> Submit(std::string_view pattern, int32_t k);

  /// All-or-nothing admission of a stream burst: either every query is
  /// admitted (tickets in input order) or none is and the first obstacle's
  /// error is returned. Atomic against concurrent submitters.
  Result<std::vector<Ticket>> SubmitBatch(std::vector<BatchQuery> queries);

  /// Non-blocking collect: the result if `ticket` has completed (consuming
  /// it — a second Poll returns nullopt), nullopt while it is still queued
  /// or running. Polling an unknown or already-collected ticket returns
  /// nullopt. Callback tickets are never pollable.
  std::optional<QueryResult> Poll(Ticket ticket);

  /// Blocking collect. Returns kInvalidArgument for a ticket that is not
  /// outstanding (unknown, already collected, or callback-submitted) —
  /// never blocks on a ticket that cannot complete.
  Result<QueryResult> Wait(Ticket ticket);

  /// Wait with a deadline: kTimedOut if `timeout` elapses first. The ticket
  /// stays outstanding and may be waited/polled again.
  Result<QueryResult> WaitFor(Ticket ticket, std::chrono::nanoseconds timeout);

  /// Stops workers from picking up new tickets (admission continues until
  /// the queue fills). Deterministic setup hook for overload handling and
  /// operator quiesce windows; idempotent.
  void Pause();

  /// Undoes Pause; wakes the workers. Idempotent.
  void Resume();

  /// Closes admission and blocks until every admitted ticket has executed
  /// (results remain collectable afterwards; callback tickets will have
  /// fired). Idempotent; safe to call concurrently with Submit — queries
  /// lose the race cleanly with kUnavailable. Implies Resume.
  void Drain();

  /// Drain + wake and join the workers. After Shutdown only result
  /// collection (Poll/Wait of already-executed tickets) and Stats work.
  /// Called by the destructor if the caller did not.
  void Shutdown();

  /// Gauges snapshot; safe at any time, including from callbacks.
  SessionStats Stats() const;

  /// True while the Session admits queries (lifecycle state kServing) —
  /// false from the moment Drain/Shutdown begins. This is the readiness
  /// signal behind the HTTP /readyz probe (serve/http_exposition.h).
  bool accepting() const;

  /// Number of persistent workers (after resolving num_threads = 0).
  int num_threads() const;

  /// 1 for a monolithic Session, the shard count for a sharded one.
  size_t num_indexes() const;

  /// The configured engine and its stable BatchEngineName label.
  BatchEngine engine() const;
  std::string_view engine_name() const;

  /// Trace collector (sampling + slow-query log), or nullptr when tracing
  /// is off. Trace ids are ticket ids. Unlike BatchSearcher, reading it
  /// while queries are in flight is safe — the sink locks internally — but
  /// snapshots taken mid-flight are of a moving target.
  const obs::TraceSink* trace_sink() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace bwtk::serve

#endif  // BWTK_SERVE_SESSION_H_
