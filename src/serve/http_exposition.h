// Minimal embedded HTTP/1.1 listener for the serving tier's telemetry and
// health endpoints. GET-only, one request per connection, serial accept
// loop — deliberately the smallest thing that a Prometheus scraper, a
// kubelet probe, curl, and examples/serve_top.cc can all talk to. It is NOT
// a general web server: no keep-alive, no TLS, no auth (bind it to loopback
// or a scrape-only interface; the default is loopback like serve::Server).
//
// Routes (docs/OBSERVABILITY.md "Live telemetry" is the operator view):
//   GET /metrics    Prometheus text exposition (version 0.0.4): cumulative
//                   registry counters/phases/histograms plus rolling-window
//                   rate and quantile gauges and serving-layer gauges.
//   GET /varz.json  The same view as JSON, plus SessionStats and the
//                   per-connection table — the serve_top feed.
//   GET /healthz    Liveness: 200 whenever the process can answer at all.
//   GET /readyz     Readiness: 200 only while SetReady(true) has been
//                   called (index loaded) AND the Session is accepting
//                   (not draining/stopped); 503 otherwise. Load balancers
//                   key on this during rollouts and SIGTERM drains.
//
// The exposition path never touches engine hot paths: /metrics and
// /varz.json read the WindowedAggregator's ring (its own mutex) and the
// Session/Server gauge snapshots. Overhead is bounded by scrape rate, not
// query rate — the A/B methodology lives in docs/OBSERVABILITY.md.

#ifndef BWTK_SERVE_HTTP_EXPOSITION_H_
#define BWTK_SERVE_HTTP_EXPOSITION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "obs/windowed.h"
#include "serve/server.h"
#include "serve/session.h"
#include "util/status.h"

namespace bwtk::serve {

struct HttpExpositionOptions {
  /// Bind address; loopback by default (no auth on these endpoints).
  std::string host = "127.0.0.1";
  /// 0 asks the kernel for an ephemeral port (read back via port()).
  uint16_t port = 0;
  /// listen(2) backlog. The loop is serial; a scraper + a probe + a
  /// dashboard is the expected concurrency.
  int listen_backlog = 16;
  /// Overall per-request deadline. The accept loop is serial, so this is
  /// the hard bound on how long ONE client can hold it: the deadline
  /// covers the whole request (the receive timeout shrinks to the budget
  /// remaining before every read), which defeats slowloris-style
  /// drip-feeding — a client trickling one byte per read still gets cut
  /// off when the total elapses. Also the send timeout.
  int request_timeout_ms = 2000;

  /// Caps the request head buffered per request; a connection exceeding it
  /// is answered from whatever arrived (or dropped when no complete
  /// request line did). A scrape request line is tens of bytes — this is a
  /// memory backstop against garbage, not a tunable.
  size_t max_request_bytes = 8 * 1024;
};

/// The telemetry listener. Owns its socket and accept thread; borrows the
/// aggregator, session, and (optionally) the TCP front-end, all of which
/// must outlive it.
class HttpExpositionServer {
 public:
  /// `server` may be null (no per-connection table; e.g. a Session embedded
  /// in another binary). `aggregator` and `session` are required. The
  /// caller owns ticking the aggregator (StartTicker or manual Tick).
  HttpExpositionServer(obs::WindowedAggregator* aggregator, Session* session,
                       Server* server,
                       const HttpExpositionOptions& options = {});

  /// Stop() + join, if still running.
  ~HttpExpositionServer();

  HttpExpositionServer(const HttpExpositionServer&) = delete;
  HttpExpositionServer& operator=(const HttpExpositionServer&) = delete;

  /// Binds, listens, starts the accept thread. IoError on bind failure.
  Status Start();

  /// The bound port — the kernel's pick when options.port was 0.
  uint16_t port() const;

  /// Stops the listener and joins the thread. Idempotent.
  void Stop();

  /// Flips the operator half of readiness. Call SetReady(true) once the
  /// index is loaded and the server is accepting; /readyz additionally
  /// requires Session::accepting(), so a drain flips it back with no extra
  /// call. Defaults to false (starting up).
  void SetReady(bool ready);

  /// Current /readyz verdict (both halves).
  bool ready() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace bwtk::serve

#endif  // BWTK_SERVE_HTTP_EXPOSITION_H_
