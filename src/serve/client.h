// Blocking client for the TCP serving front-end (serve/server.h,
// protocol in serve/wire.h and docs/SERVING.md).
//
// A Client owns one connection and is deliberately minimal: Connect does
// the HELLO/HELLO_ACK handshake, Query() is the one-shot convenience, and
// the Send/Receive pair supports pipelining — send a window of queries,
// then collect RESULTs, matching them by request_id (the server answers
// in completion order, not submission order).
//
//   auto client = bwtk::serve::Client::Connect("127.0.0.1", port);
//   auto response = client.value()->Query("acgtacgt", 2);
//   // response.value().hits — or a non-OK status, e.g. kOverloaded when
//   // the server shed the query; back off and resend.
//
// Not thread-safe: one Client per thread (or lock around it).

#ifndef BWTK_SERVE_CLIENT_H_
#define BWTK_SERVE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "serve/session.h"
#include "serve/wire.h"
#include "util/status.h"

namespace bwtk::serve {

class Client {
 public:
  /// Connects, handshakes, and returns a ready client. IoError on
  /// connection failure, Corruption/InvalidArgument on a bad handshake.
  static Result<std::unique_ptr<Client>> Connect(
      const std::string& host, uint16_t port,
      size_t max_frame_payload = kDefaultMaxFramePayload);

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// The server's handshake reply: wire version, engine name, whether the
  /// index is sharded, and the per-connection in-flight cap.
  const HelloAck& hello() const { return hello_; }

  /// One-shot: SendQuery + receive until this request's RESULT arrives
  /// (responses for other outstanding requests are queued internally).
  /// The returned status is the *query's* outcome (FromWireStatus) —
  /// kOverloaded etc. come back as statuses, transport failures as
  /// IoError/Corruption. With want_stats the RESULT carries the per-query
  /// stats trailer (QueryResponse::has_stats and friends); servers
  /// predating the trailer still answer, just without it. With `engine`
  /// set, the QUERY carries the engine-override trailer: the server runs
  /// this one query under that engine (kInvalidArgument when it is not
  /// available there — e.g. bidirectional without bidirectional indexes).
  Result<QueryResponse> Query(std::string_view pattern, int32_t k,
                              bool want_stats = false,
                              std::optional<BatchEngine> engine = {});

  /// Pipelining: sends one QUERY frame with a self-assigned request id
  /// (returned). Does not wait for the response. want_stats and engine as
  /// in Query().
  Result<uint64_t> SendQuery(std::string_view pattern, int32_t k,
                             bool want_stats = false,
                             std::optional<BatchEngine> engine = {});

  /// Receives the next RESULT in server completion order — any request id.
  /// Internally-queued responses (collected while waiting inside Query)
  /// are returned first.
  Result<QueryResponse> ReceiveResponse();

  /// Server-side gauges snapshot (STATS round-trip). Must not be called
  /// with query responses outstanding (the reply would interleave).
  Result<SessionStats> GetStats();

 private:
  Client() = default;

  Status SendFrame(std::string_view frame);
  /// Reads until one complete frame of `want` is available.
  Result<Frame> ReceiveFrame(FrameType want);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  HelloAck hello_;
  FrameReader reader_{kDefaultMaxFramePayload};
  std::vector<QueryResponse> queued_;  // RESULTs read past, FIFO
};

}  // namespace bwtk::serve

#endif  // BWTK_SERVE_CLIENT_H_
