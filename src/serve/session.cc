#include "serve/session.h"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace_export.h"
#include "shard/sharded_searcher.h"
#include "util/logging.h"

namespace bwtk::serve {

namespace {

int ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

enum class LifecycleState { kServing, kDraining, kDrained, kStopped };

// The per-engine served-ticket counter. Callers pass the engine a ticket
// actually ran under (QueryResult::engine), so kAuto tickets attribute to
// their resolved pick — there is no separate "auto" bucket.
obs::CounterId ServedCounter(BatchEngine engine) {
  switch (engine) {
    case BatchEngine::kAlgorithmA: return obs::kCounterServeServedAlgorithmA;
    case BatchEngine::kSTree: return obs::kCounterServeServedStree;
    case BatchEngine::kKError: return obs::kCounterServeServedKError;
    case BatchEngine::kWildcard: return obs::kCounterServeServedWildcard;
    case BatchEngine::kDictionary: return obs::kCounterServeServedDictionary;
    case BatchEngine::kBidirectional:
      return obs::kCounterServeServedBidirectional;
    case BatchEngine::kAuto: break;  // resolved before counting
  }
  return obs::kCounterServeServedAlgorithmA;
}

// One admitted query waiting in (or claimed from) the queue.
struct Pending {
  Ticket ticket = 0;
  BatchQuery query;
  // The engine this ticket runs under (configured engine, or the validated
  // per-ticket override); kAuto still unresolved at this point.
  BatchEngine engine = BatchEngine::kAlgorithmA;
  Callback callback;  // empty for poll-path tickets
  uint64_t admitted_ns = 0;
};

}  // namespace

struct Session::Impl {
  // Immutable after construction.
  std::vector<const FmIndex*> indexes;
  const ShardedIndex* sharded = nullptr;  // non-null for the sharded form
  SessionOptions options;
  int num_threads = 0;
  std::unique_ptr<obs::TraceSink> sink;

  // Stream-scoped shared subtree memo (kAlgorithmA + shared_memo.enabled).
  // Never cleared — a serving stream has no batch boundary; the capacity
  // bound in SharedMemoOptions is the backstop. Workers attach it to their
  // banks at start-up.
  std::unique_ptr<SubtreeMemo> memo;

  // Exact-duplicate result cache fronting Execute. `cache_version` folds
  // the per-index content fingerprints (and the index count) into the
  // single version the ticket-level key carries, so entries from a swapped
  // or resharded index miss naturally.
  std::shared_ptr<ResultCache> cache;
  uint64_t cache_version = 0;

  // Everything below is guarded by `mu` except where noted.
  mutable std::mutex mu;
  std::condition_variable work_cv;   // workers: queue non-empty / lifecycle
  std::condition_variable done_cv;   // waiters: a ticket completed
  std::condition_variable idle_cv;   // Drain: queue empty and nothing running
  LifecycleState state = LifecycleState::kServing;
  bool paused = false;

  std::deque<Pending> queue;
  size_t running = 0;    // tickets currently executing on a worker
  size_t inflight = 0;   // admitted, result not yet collected
  Ticket next_ticket = 1;

  // Executed poll-path tickets, keyed by ticket, consumed exactly once.
  std::unordered_map<Ticket, QueryResult> done;
  // Poll-path tickets that are admitted or executing (so Wait can tell
  // "not yet done" from "will never be done").
  // Invariant: a poll ticket is in exactly one of `outstanding` / `done`
  // from admission until collection.
  std::unordered_map<Ticket, bool> outstanding;  // value unused

  // Lifetime counters (guarded by mu; mirrored to obs counters).
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t rejected_overloaded = 0;
  uint64_t rejected_unavailable = 0;

  std::vector<std::thread> workers;

  // --- Admission (mu held) ----------------------------------------------

  // The single admission decision, shared by Submit and SubmitBatch.
  // `count` extra tickets must fit both budgets.
  Status Admissible(size_t count) {
    if (state != LifecycleState::kServing) {
      rejected_unavailable += count;
      return Status::Unavailable("session is not accepting queries (" +
                                 std::string(state == LifecycleState::kStopped
                                                 ? "stopped"
                                                 : "draining") +
                                 ")");
    }
    if (queue.size() + count > options.queue_capacity) {
      rejected_overloaded += count;
      BWTK_METRIC_COUNT_N(kCounterServeOverloaded, count);
      return Status::Overloaded(
          "admission queue full (" + std::to_string(queue.size()) + "/" +
          std::to_string(options.queue_capacity) + ")");
    }
    if (inflight + count > options.max_inflight) {
      rejected_overloaded += count;
      BWTK_METRIC_COUNT_N(kCounterServeOverloaded, count);
      return Status::Overloaded(
          "in-flight budget spent (" + std::to_string(inflight) + "/" +
          std::to_string(options.max_inflight) +
          "); collect results before submitting more");
    }
    return Status::OK();
  }

  // Validates one query up front so rejection happens at Submit, not in the
  // result. `engine` is the ticket's effective engine (configured or
  // override); availability and the sharded window are both checked against
  // it — a too-long pattern can never be served exactly, and the caller
  // should know synchronously.
  Status Validate(const BatchQuery& query, BatchEngine engine) const {
    if (query.k < 0) {
      return Status::InvalidArgument("negative mismatch budget");
    }
    if (engine == BatchEngine::kBidirectional &&
        options.batch.bidir_indexes.empty()) {
      return Status::InvalidArgument(
          "engine 'bidirectional' is not available on this session (no "
          "bidirectional indexes were configured)");
    }
    if (sharded != nullptr) {
      const size_t window = ShardedQueryWindow(query, engine);
      if (window > sharded->plan().overlap()) {
        return Status::InvalidArgument(
            "query needs a window of " + std::to_string(window) +
            " characters but the sharded index overlap is " +
            std::to_string(sharded->plan().overlap()) +
            "; rebuild the sharded index with a larger overlap");
      }
    }
    return Status::OK();
  }

  // mu held. Enqueues one validated, admissible query.
  Ticket Enqueue(BatchQuery query, BatchEngine engine, Callback callback) {
    const Ticket ticket = next_ticket++;
    queue.push_back(Pending{ticket, std::move(query), engine,
                            std::move(callback), obs::TraceClockNanos()});
    ++inflight;
    ++submitted;
    BWTK_METRIC_COUNT(kCounterServeSubmitted);
    if (!queue.back().callback) outstanding.emplace(ticket, true);
    return ticket;
  }

  // --- Execution ---------------------------------------------------------

  // Runs one claimed ticket outside the lock. The bank belongs to the
  // calling worker; sharded tickets fan across shards inside this one call.
  QueryResult Execute(const Pending& pending, EngineBank* bank, int tid,
                      uint64_t picked_up_ns) {
    QueryResult result;
    result.ticket = pending.ticket;
    result.queue_ns = picked_up_ns - pending.admitted_ns;
    BWTK_METRIC_OBSERVE(kHistServeQueueNanos, result.queue_ns);
    // Trace labels, cache keys and the served-ticket counter all attribute
    // to the engine the ticket actually runs under: the effective engine
    // (configured or override) with kAuto resolved per query.
    const BatchEngine resolved = bank->Resolve(pending.engine, pending.query);
    const std::string_view engine_label = BatchEngineName(resolved);
    result.engine = resolved;
    const uint64_t search_begin_ns = obs::TraceClockNanos();
    if (cache != nullptr) {
      ResultCache::Entry cached;
      if (cache->Lookup(static_cast<uint8_t>(resolved),
                        pending.query.k, cache_version, pending.query.pattern,
                        &cached)) {
        result.hits = std::move(cached.hits);
        result.stats = cached.stats;
        result.seam_hits_deduped = cached.seam_hits_deduped;
        result.cache_served = true;
        result.search_ns = obs::TraceClockNanos() - search_begin_ns;
        return result;
      }
    }
    const size_t num_indexes = bank->num_indexes();
    if (num_indexes == 1) {
      obs::ScopedQueryTrace qt(sink.get(), pending.ticket,
                               engine_label, pending.query.k,
                               pending.query.pattern.size(),
                               static_cast<uint32_t>(tid), 0);
      result.hits = bank->RunWith(resolved, pending.query, 0, &result.stats);
      qt.Finish(result.hits.size(), result.stats);
    } else {
      // Sharded: one trace per (ticket, shard) like the batched router,
      // with the shard in the low bits of the trace id.
      std::vector<std::vector<Occurrence>> parts(num_indexes);
      BWTK_METRIC_COUNT_N(kCounterShardQueries, num_indexes);
      for (size_t s = 0; s < num_indexes; ++s) {
        SearchStats shard_stats;
        obs::ScopedQueryTrace qt(
            sink.get(), pending.ticket * num_indexes + s, engine_label,
            pending.query.k, pending.query.pattern.size(),
            static_cast<uint32_t>(tid), static_cast<uint32_t>(s));
        parts[s] = bank->RunWith(resolved, pending.query, s, &shard_stats);
        qt.Finish(parts[s].size(), shard_stats);
        result.stats += shard_stats;
      }
      const size_t window = ShardedQueryWindow(pending.query, resolved);
      result.seam_hits_deduped = ResolveShardedHits(
          sharded->plan(), window, parts.data(), &result.hits);
      BWTK_METRIC_COUNT_N(kCounterSeamHitsDeduped, result.seam_hits_deduped);
    }
    if (cache != nullptr) {
      cache->Insert(
          static_cast<uint8_t>(resolved), pending.query.k,
          cache_version, pending.query.pattern,
          ResultCache::Entry{result.hits, result.stats,
                             result.seam_hits_deduped});
    }
    result.search_ns = obs::TraceClockNanos() - search_begin_ns;
    return result;
  }

  void WorkerLoop(int tid) {
    EngineBank bank(indexes, options.batch);
    if (memo != nullptr) bank.set_shared_memo(memo.get());
    for (;;) {
      Pending pending;
      {
        BWTK_SCOPED_TIMER(kPhaseQueueWait);
        BWTK_SCOPED_HIST_TIMER(kHistQueueWaitNanos);
        std::unique_lock<std::mutex> lock(mu);
        work_cv.wait(lock, [&] {
          return state == LifecycleState::kStopped ||
                 (!queue.empty() && !paused);
        });
        if (state == LifecycleState::kStopped) return;
        pending = std::move(queue.front());
        queue.pop_front();
        ++running;
      }
      QueryResult result =
          Execute(pending, &bank, tid, obs::TraceClockNanos());
      const Ticket ticket = result.ticket;
      const BatchEngine served_engine = result.engine;
      Callback callback = std::move(pending.callback);
      const bool via_callback = static_cast<bool>(callback);
      // Counters first, then the callback, then `running`: anyone who
      // observes the delivery (the callback, or a poll waiter) must already
      // see it counted, while Drain's idle predicate (running == 0) must
      // not pass until the callback has returned — a drained caller may
      // rely on every delivery having happened.
      {
        std::lock_guard<std::mutex> lock(mu);
        ++completed;
        BWTK_METRIC_COUNT(kCounterServeCompleted);
        // Executed (not drain-failed) tickets attribute to the engine that
        // served them (override and kAuto resolution already applied).
        if (BWTK_METRICS_ENABLED) obs::Count(ServedCounter(served_engine));
        if (via_callback) {
          --inflight;  // collected when the callback returns (below)
        } else {
          outstanding.erase(ticket);
          done.emplace(ticket, std::move(result));
        }
      }
      if (via_callback) {
        callback(std::move(result));
      } else {
        done_cv.notify_all();
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        --running;
        if (queue.empty() && running == 0) idle_cv.notify_all();
      }
    }
  }

  // --- Lifecycle (called from public methods) ----------------------------

  // Fails every still-queued callback ticket with `status`; poll tickets
  // get a stored failed result instead. mu held on entry and exit; the
  // callbacks themselves run unlocked.
  void FailQueueLocked(std::unique_lock<std::mutex>& lock,
                       const Status& status) {
    std::deque<Pending> orphaned;
    orphaned.swap(queue);
    for (Pending& pending : orphaned) {
      QueryResult result;
      result.ticket = pending.ticket;
      result.status = status;
      ++completed;
      BWTK_METRIC_COUNT(kCounterServeCompleted);
      if (pending.callback) {
        --inflight;
        lock.unlock();
        pending.callback(std::move(result));
        lock.lock();
      } else {
        outstanding.erase(pending.ticket);
        done.emplace(pending.ticket, std::move(result));
      }
    }
    done_cv.notify_all();
  }

  void ExportTrace() {
    if (sink != nullptr && !options.batch.trace_out.empty()) {
      const Status status = obs::WriteTraceFile(*sink, options.batch.trace_out);
      if (!status.ok()) {
        BWTK_LOG(Warning) << "trace export failed: " << status.message();
      }
    }
  }

  // Finishes construction: all state the workers read must be final before
  // the threads spawn (both public constructors funnel through here).
  void Start(std::vector<const FmIndex*> index_group,
             const ShardedIndex* sharded_index, const SessionOptions& opts) {
    BWTK_CHECK(!index_group.empty());
    for (const FmIndex* index : index_group) BWTK_CHECK(index != nullptr);
    indexes = std::move(index_group);
    sharded = sharded_index;
    options = opts;
    num_threads = ResolveThreadCount(opts.num_threads);
    if (BWTK_METRICS_ENABLED && opts.batch.trace_sample_rate > 0.0) {
      obs::TraceSinkOptions sink_options;
      sink_options.sample_rate = opts.batch.trace_sample_rate;
      sink_options.slow_trace_count = opts.batch.slow_trace_count;
      sink_options.sample_seed = opts.batch.trace_seed;
      sink = std::make_unique<obs::TraceSink>(sink_options);
    }
    if (opts.batch.shared_memo.enabled &&
        opts.batch.engine == BatchEngine::kAlgorithmA) {
      memo = std::make_unique<SubtreeMemo>(opts.batch.shared_memo);
    }
    if (opts.batch.result_cache_instance != nullptr) {
      cache = opts.batch.result_cache_instance;
    } else if (opts.batch.result_cache.enabled) {
      cache = std::make_shared<ResultCache>(opts.batch.result_cache);
    }
    if (cache != nullptr) {
      cache_version = indexes.size();
      for (const FmIndex* index : indexes) {
        cache_version = cache_version * 0x100000001b3ULL + FmIndexVersion(*index);
      }
    }
    workers.reserve(num_threads);
    for (int tid = 0; tid < num_threads; ++tid) {
      workers.emplace_back([this, tid] { WorkerLoop(tid); });
    }
  }
};

Session::Session(const FmIndex* index, const SessionOptions& options)
    : impl_(std::make_unique<Impl>()) {
  BWTK_CHECK(index != nullptr);
  impl_->Start({index}, nullptr, options);
}

Session::Session(const ShardedIndex* index, const SessionOptions& options)
    : impl_(std::make_unique<Impl>()) {
  BWTK_CHECK(index != nullptr);
  impl_->Start(index->ShardPointers(), index, options);
}

Session::~Session() { Shutdown(); }

Result<Ticket> Session::Submit(BatchQuery query) {
  return Submit(std::move(query), std::nullopt, Callback{});
}

Result<Ticket> Session::Submit(BatchQuery query, Callback callback) {
  return Submit(std::move(query), std::nullopt, std::move(callback));
}

Result<Ticket> Session::Submit(BatchQuery query,
                               std::optional<BatchEngine> engine_override,
                               Callback callback) {
  const BatchEngine engine =
      engine_override.value_or(impl_->options.batch.engine);
  BWTK_RETURN_IF_ERROR(impl_->Validate(query, engine));
  Ticket ticket = 0;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    BWTK_RETURN_IF_ERROR(impl_->Admissible(1));
    ticket = impl_->Enqueue(std::move(query), engine, std::move(callback));
  }
  impl_->work_cv.notify_one();
  return ticket;
}

Result<Ticket> Session::Submit(std::string_view pattern, int32_t k) {
  BWTK_ASSIGN_OR_RETURN(std::vector<DnaCode> codes,
                        DecodeBatchPattern(impl_->options.batch.engine,
                                           pattern));
  return Submit(BatchQuery{std::move(codes), k});
}

Result<std::vector<Ticket>> Session::SubmitBatch(
    std::vector<BatchQuery> queries) {
  for (size_t i = 0; i < queries.size(); ++i) {
    const Status status =
        impl_->Validate(queries[i], impl_->options.batch.engine);
    if (!status.ok()) {
      return Status::InvalidArgument("batch query " + std::to_string(i) +
                                     ": " + status.message());
    }
  }
  std::vector<Ticket> tickets;
  tickets.reserve(queries.size());
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    BWTK_RETURN_IF_ERROR(impl_->Admissible(queries.size()));
    for (BatchQuery& query : queries) {
      tickets.push_back(impl_->Enqueue(std::move(query),
                                       impl_->options.batch.engine,
                                       Callback{}));
    }
  }
  impl_->work_cv.notify_all();
  return tickets;
}

std::optional<QueryResult> Session::Poll(Ticket ticket) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->done.find(ticket);
  if (it == impl_->done.end()) return std::nullopt;
  QueryResult result = std::move(it->second);
  impl_->done.erase(it);
  --impl_->inflight;
  return result;
}

Result<QueryResult> Session::Wait(Ticket ticket) {
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->done_cv.wait(lock, [&] {
    return impl_->done.contains(ticket) || !impl_->outstanding.contains(ticket);
  });
  const auto it = impl_->done.find(ticket);
  if (it == impl_->done.end()) {
    return Status::InvalidArgument("ticket " + std::to_string(ticket) +
                                   " is not outstanding");
  }
  QueryResult result = std::move(it->second);
  impl_->done.erase(it);
  --impl_->inflight;
  return result;
}

Result<QueryResult> Session::WaitFor(Ticket ticket,
                                     std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> lock(impl_->mu);
  const bool ready = impl_->done_cv.wait_for(lock, timeout, [&] {
    return impl_->done.contains(ticket) || !impl_->outstanding.contains(ticket);
  });
  if (!ready) {
    return Status::TimedOut("ticket " + std::to_string(ticket) +
                            " did not complete in time");
  }
  const auto it = impl_->done.find(ticket);
  if (it == impl_->done.end()) {
    return Status::InvalidArgument("ticket " + std::to_string(ticket) +
                                   " is not outstanding");
  }
  QueryResult result = std::move(it->second);
  impl_->done.erase(it);
  --impl_->inflight;
  return result;
}

void Session::Pause() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->paused = true;
}

void Session::Resume() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->paused = false;
  }
  impl_->work_cv.notify_all();
}

void Session::Drain() {
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    if (impl_->state == LifecycleState::kServing) {
      impl_->state = LifecycleState::kDraining;
      impl_->paused = false;
    }
  }
  impl_->work_cv.notify_all();
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    // kStopped also releases the wait: a concurrent Shutdown supersedes the
    // drain (it fails whatever was still queued).
    impl_->idle_cv.wait(lock, [&] {
      return impl_->state == LifecycleState::kStopped ||
             (impl_->queue.empty() && impl_->running == 0);
    });
    if (impl_->state == LifecycleState::kDraining) {
      impl_->state = LifecycleState::kDrained;
    }
  }
  impl_->ExportTrace();
}

void Session::Shutdown() {
  Drain();
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    if (impl_->state == LifecycleState::kStopped) return;
    impl_->state = LifecycleState::kStopped;
    // Drain emptied the queue unless Shutdown raced a Drain already past
    // the state check; fail anything left so callbacks still fire once.
    impl_->FailQueueLocked(
        lock, Status::Unavailable("session shut down before execution"));
  }
  impl_->work_cv.notify_all();
  impl_->idle_cv.notify_all();
  for (std::thread& worker : impl_->workers) worker.join();
  impl_->workers.clear();
}

SessionStats Session::Stats() const {
  SessionStats stats;
  // The registry snapshot takes its own lock; grab it outside mu to keep
  // the lock ordering trivial (never both held at once).
  if (BWTK_METRICS_ENABLED) {
    const obs::MetricsBlock block = obs::MetricsRegistry::Instance().Snapshot();
    stats.memo_hits = block.counters[obs::kCounterMemoHits];
    stats.result_cache_hits = block.counters[obs::kCounterResultCacheHits];
    stats.result_cache_misses = block.counters[obs::kCounterResultCacheMisses];
    stats.shard_exact_shortcuts =
        block.counters[obs::kCounterShardExactShortcuts];
  }
  std::lock_guard<std::mutex> lock(impl_->mu);
  stats.queue_depth = impl_->queue.size();
  stats.running = impl_->running;
  stats.inflight = impl_->inflight;
  stats.submitted = impl_->submitted;
  stats.completed = impl_->completed;
  stats.rejected_overloaded = impl_->rejected_overloaded;
  stats.rejected_unavailable = impl_->rejected_unavailable;
  stats.accepting = impl_->state == LifecycleState::kServing;
  return stats;
}

bool Session::accepting() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->state == LifecycleState::kServing;
}

int Session::num_threads() const { return impl_->num_threads; }

size_t Session::num_indexes() const { return impl_->indexes.size(); }

BatchEngine Session::engine() const { return impl_->options.batch.engine; }

std::string_view Session::engine_name() const {
  return BatchEngineName(impl_->options.batch.engine);
}

const obs::TraceSink* Session::trace_sink() const { return impl_->sink.get(); }

}  // namespace bwtk::serve
