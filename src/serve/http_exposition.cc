#include "serve/http_exposition.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "obs/exposition.h"
#include "obs/json.h"
#include "util/logging.h"

namespace bwtk::serve {

namespace {


bool SendAll(int fd, std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::send(fd, data.data() + written, data.size() - written,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

std::string HttpResponse(int code, std::string_view reason,
                         std::string_view content_type,
                         std::string_view body) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(code);
  out += " ";
  out += reason;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

struct HttpExpositionServer::Impl {
  obs::WindowedAggregator* aggregator = nullptr;
  Session* session = nullptr;
  Server* server = nullptr;  // nullable
  HttpExpositionOptions options;

  int listen_fd = -1;
  uint16_t bound_port = 0;
  std::atomic<bool> ready{false};
  std::atomic<bool> stopping{false};
  std::thread acceptor;

  bool Ready() const {
    return ready.load(std::memory_order_relaxed) && session->accepting();
  }

  // Assembles the rolling windows once per request; both renderers share it.
  std::vector<obs::WindowView> Windows() const {
    std::vector<obs::WindowView> views;
    for (const auto& [label, nanos] : obs::StandardWindows()) {
      views.push_back(obs::WindowView{label, aggregator->Window(nanos)});
    }
    return views;
  }

  std::vector<obs::GaugeSample> Gauges() const {
    const SessionStats stats = session->Stats();
    std::vector<obs::GaugeSample> gauges;
    gauges.push_back({"bwtk_serve_queue_depth",
                      static_cast<double>(stats.queue_depth),
                      {},
                      "Tickets admitted and waiting for a worker."});
    gauges.push_back({"bwtk_serve_running",
                      static_cast<double>(stats.running),
                      {},
                      "Tickets currently executing on a worker."});
    gauges.push_back({"bwtk_serve_inflight",
                      static_cast<double>(stats.inflight),
                      {},
                      "Tickets admitted whose results are uncollected."});
    gauges.push_back({"bwtk_serve_accepting",
                      stats.accepting ? 1.0 : 0.0,
                      {},
                      "1 while the Session admits queries (kServing)."});
    gauges.push_back({"bwtk_ready",
                      Ready() ? 1.0 : 0.0,
                      {},
                      "The /readyz verdict (operator flag AND accepting)."});
    if (server != nullptr) {
      gauges.push_back({"bwtk_serve_connections",
                        static_cast<double>(server->num_connections()),
                        {},
                        "Open TCP front-end connections."});
    }
    return gauges;
  }

  std::string RenderMetrics() const {
    return obs::RenderPrometheusText(aggregator->Cumulative(), Windows(),
                                     Gauges());
  }

  std::string RenderVarz() const {
    const SessionStats stats = session->Stats();
    obs::JsonWriter writer;
    writer.BeginObject();
    writer.Key("ready").Value(Ready());
    writer.Key("engine").Value(session->engine_name());
    writer.Key("ticks").Value(aggregator->ticks());
    writer.Key("resets").Value(aggregator->resets());
    writer.Key("session");
    writer.BeginObject();
    writer.Key("queue_depth").Value(static_cast<uint64_t>(stats.queue_depth));
    writer.Key("running").Value(static_cast<uint64_t>(stats.running));
    writer.Key("inflight").Value(static_cast<uint64_t>(stats.inflight));
    writer.Key("submitted").Value(stats.submitted);
    writer.Key("completed").Value(stats.completed);
    writer.Key("rejected_overloaded").Value(stats.rejected_overloaded);
    writer.Key("rejected_unavailable").Value(stats.rejected_unavailable);
    writer.Key("memo_hits").Value(stats.memo_hits);
    writer.Key("result_cache_hits").Value(stats.result_cache_hits);
    writer.Key("result_cache_misses").Value(stats.result_cache_misses);
    writer.Key("shard_exact_shortcuts").Value(stats.shard_exact_shortcuts);
    writer.Key("accepting").Value(stats.accepting);
    writer.EndObject();
    if (server != nullptr) {
      writer.Key("connections");
      writer.BeginArray();
      for (const Server::ConnectionStats& conn :
           server->ConnectionsSnapshot()) {
        writer.BeginObject();
        writer.Key("id").Value(conn.id);
        writer.Key("queries").Value(conn.queries);
        writer.Key("stats_requests").Value(conn.stats_requests);
        writer.Key("overloaded").Value(conn.overloaded);
        writer.Key("bytes_in").Value(conn.bytes_in);
        writer.Key("bytes_out").Value(conn.bytes_out);
        writer.Key("inflight").Value(conn.inflight);
        writer.Key("age_seconds")
            .Value(static_cast<double>(conn.age_nanos) / 1e9);
        writer.Key("idle_seconds")
            .Value(static_cast<double>(conn.idle_nanos) / 1e9);
        writer.EndObject();
      }
      writer.EndArray();
    }
    writer.Key("cumulative");
    obs::AppendCumulativeJson(aggregator->Cumulative(), &writer);
    writer.Key("windows");
    obs::AppendWindowsJson(Windows(), &writer);
    writer.EndObject();
    return std::move(writer).TakeString();
  }

  // One request → one response → close. Returns nothing interesting;
  // failures just drop the connection (the scraper retries).
  void Handle(int fd) {
    timeval timeout{};
    timeout.tv_sec = options.request_timeout_ms / 1000;
    timeout.tv_usec = (options.request_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

    // Read until the end of the request head (we ignore any body; GETs
    // have none). request_timeout_ms bounds the WHOLE request, not each
    // read: a per-read timeout alone would let a drip-feeding client
    // (one byte per read, each arriving just in time) hold the serial
    // accept loop forever, starving every later scrape. Before each read
    // the receive timeout shrinks to the budget still remaining.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(options.request_timeout_ms);
    std::string request;
    char buffer[4096];
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.size() < options.max_request_bytes) {
      const auto remaining = deadline - std::chrono::steady_clock::now();
      if (remaining <= std::chrono::milliseconds(0)) break;
      // At least 1µs: a zero timeval would mean "block forever".
      const int64_t remaining_us = std::max<int64_t>(
          1, std::chrono::duration_cast<std::chrono::microseconds>(remaining)
                 .count());
      timeval recv_timeout{};
      recv_timeout.tv_sec = static_cast<time_t>(remaining_us / 1000000);
      recv_timeout.tv_usec = static_cast<suseconds_t>(remaining_us % 1000000);
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &recv_timeout,
                   sizeof(recv_timeout));
      const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      request.append(buffer, static_cast<size_t>(n));
    }
    const size_t line_end = request.find("\r\n");
    if (line_end == std::string::npos) return;  // no complete request line
    const std::string_view line =
        std::string_view(request).substr(0, line_end);

    // "METHOD SP target SP version"
    const size_t method_end = line.find(' ');
    if (method_end == std::string_view::npos) return;
    const size_t target_end = line.find(' ', method_end + 1);
    if (target_end == std::string_view::npos) return;
    const std::string_view method = line.substr(0, method_end);
    std::string_view target =
        line.substr(method_end + 1, target_end - method_end - 1);
    const size_t query_start = target.find('?');
    if (query_start != std::string_view::npos) {
      target = target.substr(0, query_start);
    }

    std::string response;
    if (method != "GET") {
      response = HttpResponse(405, "Method Not Allowed", "text/plain",
                              "only GET is supported\n");
    } else if (target == "/metrics") {
      response = HttpResponse(200, "OK",
                              "text/plain; version=0.0.4; charset=utf-8",
                              RenderMetrics());
    } else if (target == "/varz.json") {
      response =
          HttpResponse(200, "OK", "application/json", RenderVarz());
    } else if (target == "/healthz") {
      response = HttpResponse(200, "OK", "text/plain", "ok\n");
    } else if (target == "/readyz") {
      response = Ready()
                     ? HttpResponse(200, "OK", "text/plain", "ready\n")
                     : HttpResponse(503, "Service Unavailable", "text/plain",
                                    "not ready\n");
    } else {
      response = HttpResponse(404, "Not Found", "text/plain",
                              "unknown path; try /metrics /varz.json "
                              "/healthz /readyz\n");
    }
    SendAll(fd, response);
  }

  void AcceptLoop() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listener closed by Stop
      }
      if (stopping.load(std::memory_order_relaxed)) {
        ::close(fd);
        return;
      }
      Handle(fd);
      ::close(fd);
    }
  }
};

HttpExpositionServer::HttpExpositionServer(obs::WindowedAggregator* aggregator,
                                           Session* session, Server* server,
                                           const HttpExpositionOptions& options)
    : impl_(std::make_unique<Impl>()) {
  BWTK_CHECK(aggregator != nullptr);
  BWTK_CHECK(session != nullptr);
  impl_->aggregator = aggregator;
  impl_->session = session;
  impl_->server = server;
  impl_->options = options;
}

HttpExpositionServer::~HttpExpositionServer() { Stop(); }

Status HttpExpositionServer::Start() {
  Impl& impl = *impl_;
  BWTK_CHECK(impl.listen_fd < 0);  // Start is once-only
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket: " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(impl.options.port);
  if (::inet_pton(AF_INET, impl.options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address: " + impl.options.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, impl.options.listen_backlog) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IoError("bind/listen on " + impl.options.host + ":" +
                           std::to_string(impl.options.port) + ": " + error);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  impl.bound_port = ntohs(bound.sin_port);
  impl.listen_fd = fd;
  impl.acceptor = std::thread([&impl] { impl.AcceptLoop(); });
  return Status::OK();
}

uint16_t HttpExpositionServer::port() const { return impl_->bound_port; }

void HttpExpositionServer::Stop() {
  Impl& impl = *impl_;
  if (impl.stopping.exchange(true)) {
    if (impl.acceptor.joinable()) impl.acceptor.join();
    return;
  }
  if (impl.listen_fd >= 0) {
    ::shutdown(impl.listen_fd, SHUT_RDWR);
    ::close(impl.listen_fd);
  }
  if (impl.acceptor.joinable()) impl.acceptor.join();
}

void HttpExpositionServer::SetReady(bool ready) {
  impl_->ready.store(ready, std::memory_order_relaxed);
}

bool HttpExpositionServer::ready() const { return impl_->Ready(); }

}  // namespace bwtk::serve
