// TCP front-end over a serve::Session: accepts connections speaking the
// length-prefixed binary protocol of serve/wire.h (normative spec in
// docs/SERVING.md) and turns QUERY frames into Session submissions.
//
// Threading model: one acceptor thread plus one reader thread per
// connection — deliberately simple; the expensive work happens on the
// Session's worker pool, and connections are expected to be few and
// long-lived (a client multiplexes many requests over one socket).
// Responses are written by Session callbacks from worker threads, under a
// per-connection write lock, so they stream back as queries finish —
// out of order, matched by request_id.
//
// Backpressure is layered:
//   1. per-connection: more than ServerOptions::max_inflight_per_connection
//      unanswered QUERYs → immediate RESULT with kOverloaded (the frames
//      are answered, never silently dropped);
//   2. session-wide: Submit's admission control (queue + in-flight budget)
//      → RESULT with kOverloaded;
//   3. request timeout: when request_timeout is set, a query unanswered
//      past the deadline gets a RESULT with kTimedOut; the search itself
//      is not cancelled (the engine has no preemption points), its late
//      result is discarded. Exactly one RESULT per QUERY, always.
//
// Shutdown: Stop() closes the listener, shuts down every connection
// socket, and joins all threads; in-flight queries finish against the
// Session (their responses go nowhere). The Session is not drained —
// that is the operator's call (see examples/serve_tool.cpp, which drains
// on SIGTERM).

#ifndef BWTK_SERVE_SERVER_H_
#define BWTK_SERVE_SERVER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/session.h"
#include "serve/wire.h"
#include "util/status.h"

namespace bwtk::serve {

/// Front-end configuration, fixed at Start.
struct ServerOptions {
  /// Bind address. Loopback by default: the protocol has no auth, so
  /// exposing it wider is an explicit operator decision.
  std::string host = "127.0.0.1";

  /// Bind port; 0 asks the kernel for an ephemeral port (read it back from
  /// Server::port(), or via --port-file in serve_tool for scripts).
  uint16_t port = 0;

  /// Unanswered QUERYs one connection may have outstanding before new ones
  /// are answered kOverloaded. Advertised to clients in HELLO_ACK.
  size_t max_inflight_per_connection = 256;

  /// Zero disables timeouts. Otherwise a QUERY unanswered this long gets a
  /// kTimedOut RESULT (the search still runs to completion internally).
  std::chrono::milliseconds request_timeout{0};

  /// Frame-size cap fed to FrameReader; an announced payload over this
  /// closes the connection.
  size_t max_frame_payload = kDefaultMaxFramePayload;

  /// listen(2) backlog.
  int listen_backlog = 16;
};

/// The listener. Owns sockets and service threads, not the Session.
class Server {
 public:
  /// `session` must outlive the Server and should usually be dedicated to
  /// it (the server competes for the session's admission budget with any
  /// direct submitter).
  Server(Session* session, const ServerOptions& options = {});

  /// Stop() + join, if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the acceptor. IoError on bind failure
  /// (port taken, privileged port, bad host).
  Status Start();

  /// The bound port — the kernel's pick when options.port was 0. Valid
  /// after a successful Start().
  uint16_t port() const;

  /// Stops accepting, severs every connection, joins all threads. Queries
  /// already submitted keep running on the Session; their responses are
  /// dropped. Idempotent.
  void Stop();

  /// Connections currently open (gauge; for tests and the runbook).
  size_t num_connections() const;

  /// Per-connection accounting, exported over /varz.json for serve_top.
  /// Ids are stable anonymous integers assigned in accept order (no peer
  /// address is exported — the telemetry endpoints must stay safe to share).
  struct ConnectionStats {
    uint64_t id = 0;          ///< accept-order id, stable for the conn's life
    uint64_t queries = 0;     ///< QUERY frames received
    uint64_t stats_requests = 0;  ///< STATS frames received
    uint64_t overloaded = 0;  ///< layer-1 (per-connection cap) rejections
    uint64_t bytes_in = 0;    ///< bytes received from the peer
    uint64_t bytes_out = 0;   ///< frame bytes successfully written
    uint64_t inflight = 0;    ///< unanswered QUERYs right now
    uint64_t age_nanos = 0;   ///< since accept
    uint64_t idle_nanos = 0;  ///< since the last byte received
  };

  /// Snapshot of every open connection, unordered. Safe at any time; the
  /// gauges are relaxed reads of live counters (per-field accurate, not a
  /// consistent cut).
  std::vector<ConnectionStats> ConnectionsSnapshot() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace bwtk::serve

#endif  // BWTK_SERVE_SERVER_H_
