// Wire protocol of the TCP serving front-end (serve/server.h): a
// length-prefixed binary framing, fully specified in docs/SERVING.md — the
// doc is the normative reference; this header implements it.
//
// Framing: every message is one frame
//
//   u32  payload_length   (little-endian, excludes these 5 header bytes)
//   u8   frame_type       (FrameType)
//   ...  payload          (payload_length bytes)
//
// All integers on the wire are little-endian, fixed width, unaligned.
// Patterns travel as ASCII (the server decodes them for its configured
// engine, so wildcard syntax works when the Session runs kWildcard).
// Responses carry an explicit WireStatus byte whose values are frozen
// independently of the C++ StatusCode enum — reordering StatusCode can
// never silently change the protocol.
//
// The conversation (client side):
//   connect → send HELLO → read HELLO_ACK (version + engine + limits)
//   → send QUERY frames (each with a client-chosen request_id)
//   → read RESULT frames, matching request_id (responses may arrive in any
//     order; the server completes queries as its workers finish them)
//   → close the socket when done (no goodbye frame).
//
// Encoders append complete frames to a std::string buffer; FrameReader
// splits a receive stream back into frames incrementally; Parse* functions
// decode payloads with full bounds checking (a malformed payload is a
// kCorruption error, never UB).

#ifndef BWTK_SERVE_WIRE_H_
#define BWTK_SERVE_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "search/match.h"
#include "serve/session.h"
#include "util/status.h"

namespace bwtk::serve {

/// First payload field of HELLO: "BWTK" read as a little-endian u32.
inline constexpr uint32_t kWireMagic = 0x4B545742u;

/// Protocol revision. Bumped on any incompatible change; the server
/// rejects HELLOs whose version it does not speak.
inline constexpr uint16_t kWireVersion = 1;

/// Default cap on a single frame's payload; both peers drop the
/// connection on a longer announced payload (defense against garbage
/// length prefixes, not a protocol limit).
inline constexpr size_t kDefaultMaxFramePayload = 1 << 20;

/// Frame type byte. Values are frozen wire constants.
enum class FrameType : uint8_t {
  kHello = 1,        ///< client → server, once, first frame
  kHelloAck = 2,     ///< server → client reply to HELLO
  kQuery = 3,        ///< client → server, one search request
  kResult = 4,       ///< server → client, one QUERY's outcome
  kStats = 5,        ///< client → server, gauges request (empty payload)
  kStatsResult = 6,  ///< server → client reply to STATS
};

/// Response status byte. Values are frozen wire constants, mapped
/// explicitly from StatusCode (ToWireStatus) — never cast an enum across.
enum class WireStatus : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,  ///< bad pattern/k, sharded window overflow
  kOverloaded = 2,       ///< server or connection shed the query; retry later
  kUnavailable = 3,      ///< session draining or stopped
  kTimedOut = 4,         ///< request_timeout elapsed before completion
  kInternal = 5,         ///< any other failure
};

/// Collapses a Status onto the wire vocabulary (unlisted codes → kInternal).
WireStatus ToWireStatus(const Status& status);

/// Reconstitutes a Status a client can surface (kOk → OK()).
Status FromWireStatus(WireStatus status, std::string message);

/// Engine byte carried by the QUERY engine-override trailer. Values are
/// frozen wire constants mapped explicitly to/from BatchEngine — like
/// WireStatus, never cast the C++ enum across (reordering BatchEngine must
/// never change the protocol).
enum class WireEngine : uint8_t {
  kAlgorithmA = 0,
  kSTree = 1,
  kKError = 2,
  kWildcard = 3,
  kDictionary = 4,
  kBidirectional = 5,
  kAuto = 6,
};

/// The frozen wire byte for `engine` (total: every BatchEngine maps).
WireEngine ToWireEngine(BatchEngine engine);

/// Decodes an engine byte; kInvalidArgument for an id this build does not
/// know (a newer client), which the server surfaces as a typed RESULT
/// error rather than dropping the connection.
Result<BatchEngine> FromWireEngine(uint8_t engine);

/// QUERY payload:
///   u64 request_id, i32 k, u32 pattern_length, pattern bytes (ASCII),
///   [optional u8 query_flags,
///    [u8 engine, present iff bit 1 (kQueryFlagEngineOverride) is set]].
/// The flags byte is a backward-compatible trailer: clients that never set
/// a flag omit it entirely (byte-identical to the version-1 encoding), and
/// a missing trailer parses as all-zero flags. Bit 0 (kQueryFlagWantStats)
/// asks the server to attach the per-query stats block to the RESULT.
/// Bit 1 (kQueryFlagEngineOverride) appends one WireEngine byte AFTER the
/// flags byte (append-at-END, docs/SERVING.md §4.4): this query runs under
/// that engine instead of the session's configured one; the server answers
/// kInvalidArgument when the engine is not available (e.g. bidirectional
/// without bidirectional indexes).
struct QueryRequest {
  uint64_t request_id = 0;  ///< client-chosen; echoed in the RESULT
  int32_t k = 0;
  std::string pattern;
  bool want_stats = false;  ///< request the RESULT stats trailer
  /// Per-query engine override (bit 1 + trailing engine byte when set).
  std::optional<BatchEngine> engine_override;

  bool operator==(const QueryRequest&) const = default;
};

/// QUERY flags-byte bits.
inline constexpr uint8_t kQueryFlagWantStats = 1u << 0;
inline constexpr uint8_t kQueryFlagEngineOverride = 1u << 1;

/// RESULT flags-byte bits.
inline constexpr uint8_t kResultFlagCacheServed = 1u << 0;

/// RESULT payload:
///   u64 request_id, u8 status, u32 message_length, message bytes,
///   u32 num_hits, num_hits × { u64 position, i32 mismatches },
///   [optional stats trailer, present iff the QUERY set
///    kQueryFlagWantStats:
///      u8 result_flags (bit 0 = served from the result cache),
///      9 × u64 SearchStats in declaration order (stree_nodes,
///      extend_calls, completed_paths, tau_pruned, budget_pruned,
///      mtree_nodes, mtree_leaves, reused_nodes, derived_runs),
///      u64 queue_ns, u64 search_ns].
/// Hits are position-sorted, byte-identical to the direct engine's output
/// whether or not the trailer is present — the trailer only *describes*
/// the execution, it never changes it.
struct QueryResponse {
  uint64_t request_id = 0;
  WireStatus status = WireStatus::kOk;
  std::string message;  ///< empty on kOk
  std::vector<Occurrence> hits;
  bool has_stats = false;     ///< the trailer below is populated
  bool cache_served = false;  ///< hits came from the result cache
  SearchStats stats;          ///< zero when cache-served sharded (see docs)
  uint64_t queue_ns = 0;      ///< submit → worker pickup
  uint64_t search_ns = 0;     ///< engine execution (or cache lookup) time

  bool operator==(const QueryResponse&) const = default;
};

/// HELLO_ACK payload:
///   u16 version, u32 max_inflight (per-connection admission cap),
///   u8 engine_length, engine name bytes, u8 sharded (0/1).
struct HelloAck {
  uint16_t version = kWireVersion;
  uint32_t max_inflight = 0;
  std::string engine;
  bool sharded = false;

  bool operator==(const HelloAck&) const = default;
};

// --- Encoders (append one complete frame, header included) ---------------

void AppendHelloFrame(std::string* out);
void AppendHelloAckFrame(const HelloAck& ack, std::string* out);
void AppendQueryFrame(const QueryRequest& request, std::string* out);
void AppendResultFrame(const QueryResponse& response, std::string* out);
void AppendStatsFrame(std::string* out);
/// STATS_RESULT payload (count-prefixed since the telemetry revision):
///   u32 field_count, field_count × u64.
/// Fields travel in SessionStats declaration order — queue_depth, running,
/// inflight, submitted, completed, rejected_overloaded,
/// rejected_unavailable, memo_hits, result_cache_hits, result_cache_misses,
/// shard_exact_shortcuts, accepting (0/1) — currently
/// kStatsResultFieldCount of them. Evolution rule (normative text in
/// docs/SERVING.md): new fields append at the END only; parsers zero-fill
/// fields beyond the sender's count and skip fields beyond their own
/// knowledge, so old clients read new servers and vice versa.
void AppendStatsResultFrame(const SessionStats& stats, std::string* out);

/// Fields AppendStatsResultFrame emits / ParseStatsResultPayload knows.
inline constexpr uint32_t kStatsResultFieldCount = 12;

// --- Decoders ------------------------------------------------------------

/// One de-framed message.
struct Frame {
  FrameType type = FrameType::kHello;
  std::string payload;
};

/// Incremental frame splitter: feed whatever the socket produced, pop
/// complete frames. Not thread-safe (one per connection direction).
class FrameReader {
 public:
  explicit FrameReader(size_t max_payload = kDefaultMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Buffers `n` received bytes.
  void Feed(const char* data, size_t n);

  /// The next complete frame, nullopt when more bytes are needed, or
  /// kCorruption when the stream announces a payload over the cap (the
  /// connection is unrecoverable — close it).
  Result<std::optional<Frame>> Next();

  /// Bytes buffered but not yet returned as frames.
  size_t pending_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already handed out
  size_t max_payload_;
};

/// Payload parsers: bounds-checked, kCorruption on any malformed payload.
Status ValidateHelloPayload(std::string_view payload);
Result<HelloAck> ParseHelloAckPayload(std::string_view payload);
Result<QueryRequest> ParseQueryPayload(std::string_view payload);
Result<QueryResponse> ParseResultPayload(std::string_view payload);
Result<SessionStats> ParseStatsResultPayload(std::string_view payload);

}  // namespace bwtk::serve

#endif  // BWTK_SERVE_WIRE_H_
