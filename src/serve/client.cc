#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace bwtk::serve {

namespace {

bool WriteAll(int fd, std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::send(fd, data.data() + written, data.size() - written,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port,
                                                size_t max_frame_payload) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket: " + std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad server address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IoError("connect to " + host + ":" + std::to_string(port) +
                           ": " + error);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::unique_ptr<Client> client(new Client());
  client->fd_ = fd;
  client->reader_ = FrameReader(max_frame_payload);
  std::string hello;
  AppendHelloFrame(&hello);
  BWTK_RETURN_IF_ERROR(client->SendFrame(hello));
  BWTK_ASSIGN_OR_RETURN(const Frame ack,
                        client->ReceiveFrame(FrameType::kHelloAck));
  BWTK_ASSIGN_OR_RETURN(client->hello_, ParseHelloAckPayload(ack.payload));
  if (client->hello_.version != kWireVersion) {
    return Status::InvalidArgument(
        "server speaks wire version " +
        std::to_string(client->hello_.version) + ", this client speaks " +
        std::to_string(kWireVersion));
  }
  return client;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::SendFrame(std::string_view frame) {
  if (!WriteAll(fd_, frame)) {
    return Status::IoError("send: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Result<Frame> Client::ReceiveFrame(FrameType want) {
  char buffer[64 * 1024];
  for (;;) {
    Result<std::optional<Frame>> next = reader_.Next();
    BWTK_RETURN_IF_ERROR(next.status());
    if (next.value().has_value()) {
      Frame frame = std::move(next.value()).value();
      if (frame.type != want) {
        return Status::Corruption(
            "unexpected frame type " +
            std::to_string(static_cast<int>(frame.type)) + " (wanted " +
            std::to_string(static_cast<int>(want)) + ")");
      }
      return frame;
    }
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) return Status::IoError("server closed the connection");
    if (n < 0) {
      return Status::IoError("recv: " + std::string(std::strerror(errno)));
    }
    reader_.Feed(buffer, static_cast<size_t>(n));
  }
}

Result<uint64_t> Client::SendQuery(std::string_view pattern, int32_t k,
                                   bool want_stats,
                                   std::optional<BatchEngine> engine) {
  QueryRequest request;
  request.request_id = next_request_id_++;
  request.k = k;
  request.pattern.assign(pattern);
  request.want_stats = want_stats;
  request.engine_override = engine;
  std::string frame;
  AppendQueryFrame(request, &frame);
  BWTK_RETURN_IF_ERROR(SendFrame(frame));
  return request.request_id;
}

Result<QueryResponse> Client::ReceiveResponse() {
  if (!queued_.empty()) {
    QueryResponse response = std::move(queued_.front());
    queued_.erase(queued_.begin());
    return response;
  }
  BWTK_ASSIGN_OR_RETURN(const Frame frame, ReceiveFrame(FrameType::kResult));
  return ParseResultPayload(frame.payload);
}

Result<QueryResponse> Client::Query(std::string_view pattern, int32_t k,
                                    bool want_stats,
                                    std::optional<BatchEngine> engine) {
  BWTK_ASSIGN_OR_RETURN(const uint64_t request_id,
                        SendQuery(pattern, k, want_stats, engine));
  // Responses come back in completion order; park any that belong to other
  // outstanding pipelined requests.
  for (size_t i = 0; i < queued_.size(); ++i) {
    if (queued_[i].request_id == request_id) {
      QueryResponse response = std::move(queued_[i]);
      queued_.erase(queued_.begin() + static_cast<ptrdiff_t>(i));
      return response;
    }
  }
  for (;;) {
    BWTK_ASSIGN_OR_RETURN(const Frame frame, ReceiveFrame(FrameType::kResult));
    BWTK_ASSIGN_OR_RETURN(QueryResponse response,
                          ParseResultPayload(frame.payload));
    if (response.request_id == request_id) return response;
    queued_.push_back(std::move(response));
  }
}

Result<SessionStats> Client::GetStats() {
  std::string frame;
  AppendStatsFrame(&frame);
  BWTK_RETURN_IF_ERROR(SendFrame(frame));
  BWTK_ASSIGN_OR_RETURN(const Frame reply,
                        ReceiveFrame(FrameType::kStatsResult));
  return ParseStatsResultPayload(reply.payload);
}

}  // namespace bwtk::serve
