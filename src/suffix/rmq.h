// Range-minimum queries with linear space: values are grouped into fixed
// blocks, a sparse table is kept over block minima only, and partial blocks
// are scanned directly. Queries cost O(kBlockSize) — effectively constant —
// while space stays O(n), which matters because LcpIndex instantiates this
// over genome-length LCP arrays.

#ifndef BWTK_SUFFIX_RMQ_H_
#define BWTK_SUFFIX_RMQ_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace bwtk {

/// Immutable range-minimum structure over a vector of comparable values.
template <typename T>
class RangeMinQuery {
 public:
  static constexpr size_t kBlockSize = 32;

  RangeMinQuery() = default;

  explicit RangeMinQuery(std::vector<T> values) { Reset(std::move(values)); }

  /// Rebuilds over `values`.
  void Reset(std::vector<T> values) {
    values_ = std::move(values);
    levels_.clear();
    const size_t blocks = (values_.size() + kBlockSize - 1) / kBlockSize;
    std::vector<T> block_min(blocks);
    for (size_t b = 0; b < blocks; ++b) {
      const size_t lo = b * kBlockSize;
      const size_t hi = std::min(values_.size(), lo + kBlockSize);
      T best = values_[lo];
      for (size_t i = lo + 1; i < hi; ++i) best = std::min(best, values_[i]);
      block_min[b] = best;
    }
    // Sparse table over block minima.
    levels_.push_back(std::move(block_min));
    for (size_t span = 2; span <= blocks; span *= 2) {
      const std::vector<T>& prev = levels_.back();
      std::vector<T> next(blocks - span + 1);
      for (size_t i = 0; i + span <= blocks; ++i) {
        next[i] = std::min(prev[i], prev[i + span / 2]);
      }
      levels_.push_back(std::move(next));
    }
  }

  size_t size() const { return values_.size(); }

  /// Minimum of values[lo..hi], inclusive. Requires lo <= hi < size().
  T Min(size_t lo, size_t hi) const {
    BWTK_DCHECK_LE(lo, hi);
    BWTK_DCHECK_LT(hi, size());
    const size_t first_block = lo / kBlockSize;
    const size_t last_block = hi / kBlockSize;
    if (first_block == last_block) return ScanMin(lo, hi);
    // Partial blocks at both ends.
    T best = ScanMin(lo, (first_block + 1) * kBlockSize - 1);
    best = std::min(best, ScanMin(last_block * kBlockSize, hi));
    // Whole blocks strictly between, via the sparse table.
    if (first_block + 1 < last_block) {
      best = std::min(best, BlockMin(first_block + 1, last_block - 1));
    }
    return best;
  }

 private:
  T ScanMin(size_t lo, size_t hi) const {
    T best = values_[lo];
    for (size_t i = lo + 1; i <= hi; ++i) best = std::min(best, values_[i]);
    return best;
  }

  T BlockMin(size_t lo, size_t hi) const {
    const size_t width = hi - lo + 1;
    const int level = std::bit_width(width) - 1;  // floor(log2(width))
    const size_t span = size_t{1} << level;
    return std::min(levels_[level][lo], levels_[level][hi + 1 - span]);
  }

  std::vector<T> values_;
  // levels_[k][b] = min of block minima b .. b + 2^k - 1.
  std::vector<std::vector<T>> levels_;
};

}  // namespace bwtk

#endif  // BWTK_SUFFIX_RMQ_H_
