#include "suffix/suffix_array.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace bwtk {

namespace {

constexpr SaIndex kEmpty = -1;

// ---------------------------------------------------------------------------
// SA-IS (Nong, Zhang & Chan, "Two Efficient Algorithms for Linear Time Suffix
// Array Construction"). Operates on a text whose final symbol is the unique
// minimum (value 0); recursion reduces to the sorted order of LMS substrings.
// ---------------------------------------------------------------------------

// counts[c] = multiplicity of symbol c.
void CountSymbols(const uint32_t* t, size_t n, uint32_t alphabet,
                  std::vector<SaIndex>* counts) {
  counts->assign(alphabet, 0);
  for (size_t i = 0; i < n; ++i) ++(*counts)[t[i]];
}

// buckets[c] = first slot of bucket c (ends=false) or one past its last slot
// (ends=true).
void ComputeBuckets(const std::vector<SaIndex>& counts,
                    std::vector<SaIndex>* buckets, bool ends) {
  buckets->resize(counts.size());
  SaIndex sum = 0;
  for (size_t c = 0; c < counts.size(); ++c) {
    sum += counts[c];
    (*buckets)[c] = ends ? sum : sum - counts[c];
  }
}

inline bool IsLms(const std::vector<bool>& is_s, size_t i) {
  return i > 0 && is_s[i] && !is_s[i - 1];
}

// Given LMS suffixes already placed in `sa`, induce the order of all L-type
// then all S-type suffixes.
void InduceSort(const uint32_t* t, size_t n, const std::vector<bool>& is_s,
                const std::vector<SaIndex>& counts, std::vector<SaIndex>* sa) {
  std::vector<SaIndex> buckets;
  // Left-to-right pass places L-type suffixes at bucket fronts.
  ComputeBuckets(counts, &buckets, /*ends=*/false);
  for (size_t i = 0; i < n; ++i) {
    const SaIndex j = (*sa)[i];
    if (j > 0 && !is_s[j - 1]) {
      (*sa)[buckets[t[j - 1]]++] = j - 1;
    }
  }
  // Right-to-left pass places S-type suffixes at bucket ends.
  ComputeBuckets(counts, &buckets, /*ends=*/true);
  for (size_t i = n; i-- > 0;) {
    const SaIndex j = (*sa)[i];
    if (j > 0 && is_s[j - 1]) {
      (*sa)[--buckets[t[j - 1]]] = j - 1;
    }
  }
}

// Core recursion. `t[n-1]` must be the unique minimal symbol (0).
void SaIsImpl(const uint32_t* t, size_t n, uint32_t alphabet,
              std::vector<SaIndex>* sa) {
  sa->assign(n, kEmpty);
  if (n == 0) return;
  if (n == 1) {
    (*sa)[0] = 0;
    return;
  }

  // Classify suffixes: S-type if smaller than its right neighbour suffix.
  std::vector<bool> is_s(n);
  is_s[n - 1] = true;
  for (size_t i = n - 1; i-- > 0;) {
    is_s[i] = t[i] < t[i + 1] || (t[i] == t[i + 1] && is_s[i + 1]);
  }

  std::vector<SaIndex> counts;
  CountSymbols(t, n, alphabet, &counts);

  // Stage 1: approximate — drop LMS suffixes into bucket ends in text order,
  // then induce. This sorts the LMS *substrings*.
  {
    std::vector<SaIndex> buckets;
    ComputeBuckets(counts, &buckets, /*ends=*/true);
    for (size_t i = 1; i < n; ++i) {
      if (IsLms(is_s, i)) (*sa)[--buckets[t[i]]] = static_cast<SaIndex>(i);
    }
  }
  InduceSort(t, n, is_s, counts, sa);

  // Collect LMS positions in the order they now appear in `sa`.
  std::vector<SaIndex> lms_sorted;
  for (size_t i = 0; i < n; ++i) {
    const SaIndex j = (*sa)[i];
    if (j != kEmpty && IsLms(is_s, static_cast<size_t>(j))) {
      lms_sorted.push_back(j);
    }
  }
  const size_t num_lms = lms_sorted.size();

  // Name the LMS substrings. Two LMS substrings are equal iff they have the
  // same length and characters (their interior types are then forced).
  std::vector<SaIndex> name_of(n, kEmpty);
  SaIndex next_name = 0;
  SaIndex prev = kEmpty;
  auto lms_end = [&](size_t start) {
    size_t j = start + 1;
    while (j < n && !IsLms(is_s, j)) ++j;
    return j;  // position of next LMS (or n); substring is [start, j]
  };
  for (const SaIndex pos : lms_sorted) {
    bool same = false;
    if (prev != kEmpty) {
      const size_t end_a = lms_end(static_cast<size_t>(prev));
      const size_t end_b = lms_end(static_cast<size_t>(pos));
      if (end_a - static_cast<size_t>(prev) ==
          end_b - static_cast<size_t>(pos)) {
        same = true;
        const size_t len = end_b - static_cast<size_t>(pos);
        for (size_t d = 0; d <= len; ++d) {
          const size_t a = static_cast<size_t>(prev) + d;
          const size_t b = static_cast<size_t>(pos) + d;
          if (a >= n || b >= n || t[a] != t[b]) {
            same = false;
            break;
          }
        }
      }
    }
    if (!same) ++next_name;
    name_of[pos] = next_name - 1;
    prev = pos;
  }

  // Reduced problem: names of LMS substrings in text order.
  std::vector<SaIndex> lms_positions;
  lms_positions.reserve(num_lms);
  std::vector<uint32_t> reduced;
  reduced.reserve(num_lms);
  for (size_t i = 1; i < n; ++i) {
    if (IsLms(is_s, i)) {
      lms_positions.push_back(static_cast<SaIndex>(i));
      reduced.push_back(static_cast<uint32_t>(name_of[i]));
    }
  }

  // Exact order of LMS suffixes: direct if names are unique, else recurse.
  std::vector<SaIndex> lms_order(num_lms);
  if (static_cast<size_t>(next_name) == num_lms) {
    for (size_t i = 0; i < num_lms; ++i) lms_order[reduced[i]] = i;
  } else {
    std::vector<SaIndex> sub_sa;
    SaIsImpl(reduced.data(), num_lms, static_cast<uint32_t>(next_name),
             &sub_sa);
    lms_order = std::move(sub_sa);
  }

  // Stage 2: exact — place LMS suffixes in their true order, then induce.
  sa->assign(n, kEmpty);
  {
    std::vector<SaIndex> buckets;
    ComputeBuckets(counts, &buckets, /*ends=*/true);
    for (size_t i = num_lms; i-- > 0;) {
      const SaIndex pos = lms_positions[lms_order[i]];
      (*sa)[--buckets[t[pos]]] = pos;
    }
  }
  InduceSort(t, n, is_s, counts, sa);
}

}  // namespace

Result<std::vector<SaIndex>> BuildSuffixArray(
    const std::vector<uint32_t>& text, uint32_t alphabet_size) {
  if (text.size() >=
      static_cast<size_t>(std::numeric_limits<SaIndex>::max()) - 1) {
    return Status::InvalidArgument("text too long for 32-bit suffix array");
  }
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] >= alphabet_size) {
      return Status::InvalidArgument("symbol " + std::to_string(text[i]) +
                                     " at offset " + std::to_string(i) +
                                     " outside alphabet of size " +
                                     std::to_string(alphabet_size));
    }
  }
  // Augment: shift symbols up by one and append the 0 sentinel so the core
  // precondition (unique minimal final symbol) holds.
  const size_t n = text.size() + 1;
  std::vector<uint32_t> augmented(n);
  for (size_t i = 0; i + 1 < n; ++i) augmented[i] = text[i] + 1;
  augmented[n - 1] = 0;
  std::vector<SaIndex> sa;
  SaIsImpl(augmented.data(), n, alphabet_size + 1, &sa);
  return sa;
}

Result<std::vector<SaIndex>> BuildSuffixArrayDna(
    const std::vector<DnaCode>& text) {
  std::vector<uint32_t> widened(text.begin(), text.end());
  return BuildSuffixArray(widened, kDnaAlphabetSize);
}

std::vector<SaIndex> BuildSuffixArrayNaive(const std::vector<uint32_t>& text) {
  const size_t n = text.size() + 1;
  std::vector<SaIndex> sa(n);
  for (size_t i = 0; i < n; ++i) sa[i] = static_cast<SaIndex>(i);
  std::sort(sa.begin(), sa.end(), [&](SaIndex a, SaIndex b) {
    // Compare suffixes text[a..) and text[b..); the shorter one (which hits
    // the virtual sentinel first) sorts earlier on a tie.
    size_t i = a;
    size_t j = b;
    while (i < text.size() && j < text.size()) {
      if (text[i] != text[j]) return text[i] < text[j];
      ++i;
      ++j;
    }
    return i > j;  // suffix that ran out first (larger start) is smaller
  });
  return sa;
}

std::vector<SaIndex> BuildSuffixArrayNaiveDna(
    const std::vector<DnaCode>& text) {
  std::vector<uint32_t> widened(text.begin(), text.end());
  return BuildSuffixArrayNaive(widened);
}

std::vector<SaIndex> InvertSuffixArray(const std::vector<SaIndex>& sa) {
  std::vector<SaIndex> rank(sa.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    BWTK_CHECK_LT(static_cast<size_t>(sa[i]), sa.size());
    rank[sa[i]] = static_cast<SaIndex>(i);
  }
  return rank;
}

}  // namespace bwtk
