// Ukkonen suffix tree.
//
// This is the index substrate for the Cole-style baseline (the paper's
// "Cole's" competitor builds a suffix tree over the target and brute-force
// searches it, Section V). It is deliberately a plain pointer-machine
// suffix tree so the space comparison against the BWT index in
// bench_index_build mirrors the paper's Section II discussion.

#ifndef BWTK_SUFFIX_SUFFIX_TREE_H_
#define BWTK_SUFFIX_SUFFIX_TREE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "alphabet/dna.h"
#include "suffix/suffix_array.h"
#include "util/status.h"

namespace bwtk {

/// Suffix tree over a DNA text terminated by an internal sentinel symbol.
/// Built online with Ukkonen's algorithm in O(n) time.
class SuffixTree {
 public:
  /// Internal alphabet: DNA codes 0..3 plus the sentinel symbol 4.
  static constexpr int kTreeAlphabet = kDnaAlphabetSize + 1;
  static constexpr uint8_t kSentinelSymbol = kDnaAlphabetSize;
  static constexpr SaIndex kNoNode = -1;

  struct Node {
    /// Edge label: text [start, end) on the edge from the parent.
    SaIndex start = 0;
    SaIndex end = 0;
    SaIndex suffix_link = kNoNode;
    /// For leaves: the starting position of the suffix this leaf spells
    /// (in the sentinel-terminated text). kNoNode for internal nodes.
    SaIndex suffix_index = kNoNode;
    std::array<SaIndex, kTreeAlphabet> children;

    Node() { children.fill(kNoNode); }
    bool is_leaf() const { return suffix_index != kNoNode; }
  };

  /// Builds the tree for `text` (sentinel appended internally).
  static Result<SuffixTree> Build(const std::vector<DnaCode>& text);

  /// Root node id (always 0).
  SaIndex root() const { return 0; }
  const Node& node(SaIndex id) const { return nodes_[id]; }
  size_t node_count() const { return nodes_.size(); }

  /// Sentinel-terminated text the edge labels refer to (symbols 0..4).
  const std::vector<uint8_t>& text() const { return text_; }
  /// Length of the original text (without sentinel).
  size_t text_size() const { return text_.size() - 1; }

  /// All starting positions of exact occurrences of `pattern`, unsorted.
  std::vector<SaIndex> FindExact(const std::vector<DnaCode>& pattern) const;

  /// Appends the suffix indices of every leaf below `id` (including `id`
  /// itself if it is a leaf) to `out`.
  void CollectLeaves(SaIndex id, std::vector<SaIndex>* out) const;

  /// Approximate heap footprint in bytes (the number the paper's suffix
  /// tree vs BWT space comparison is about).
  size_t MemoryUsage() const {
    return nodes_.capacity() * sizeof(Node) + text_.capacity();
  }

 private:
  SuffixTree() = default;

  // Ukkonen machinery (used only during Build).
  SaIndex NewNode(SaIndex start, SaIndex end);
  SaIndex EdgeLength(SaIndex id, SaIndex pos) const;
  void ExtendWith(SaIndex pos);
  void AssignSuffixIndices();

  std::vector<uint8_t> text_;
  std::vector<Node> nodes_;

  // Active point state during construction.
  SaIndex active_node_ = 0;
  SaIndex active_edge_ = 0;
  SaIndex active_length_ = 0;
  SaIndex remaining_ = 0;
  static constexpr SaIndex kOpenEnd = INT32_MAX;
};

}  // namespace bwtk

#endif  // BWTK_SUFFIX_SUFFIX_TREE_H_
