// Suffix array construction.
//
// Two constructions are provided:
//  * BuildSuffixArray      — SA-IS (Nong, Zhang & Chan), linear time and the
//                            workhorse for genome-scale indexing. The paper
//                            builds BWT(s) from the suffix array of s
//                            (Section III.B, equation (3)); this is that
//                            substrate.
//  * BuildSuffixArrayNaive — comparison sort, O(n^2 log n) worst case; kept
//                            as the oracle for property tests.
//
// Convention: for a text of length n the returned array has length n + 1 and
// ranks the suffixes of text#  where '#' is a virtual sentinel strictly
// smaller than every symbol. SA[0] == n always (the empty suffix/sentinel).

#ifndef BWTK_SUFFIX_SUFFIX_ARRAY_H_
#define BWTK_SUFFIX_SUFFIX_ARRAY_H_

#include <cstdint>
#include <vector>

#include "alphabet/dna.h"
#include "util/status.h"

namespace bwtk {

/// Index type for suffix arrays; int32 supports texts up to 2^31-2 symbols,
/// which covers every genome in the paper's Table 1 at half the memory of
/// int64.
using SaIndex = int32_t;

/// Builds the suffix array of `text` (symbols in [0, alphabet_size)) with
/// SA-IS. Returns InvalidArgument if a symbol is out of range or the text is
/// longer than SaIndex can address.
Result<std::vector<SaIndex>> BuildSuffixArray(const std::vector<uint32_t>& text,
                                              uint32_t alphabet_size);

/// SA-IS over a DNA code sequence (alphabet size 4).
Result<std::vector<SaIndex>> BuildSuffixArrayDna(
    const std::vector<DnaCode>& text);

/// Oracle construction by direct suffix comparison. Small inputs only.
std::vector<SaIndex> BuildSuffixArrayNaive(const std::vector<uint32_t>& text);

/// Oracle construction for DNA codes.
std::vector<SaIndex> BuildSuffixArrayNaiveDna(const std::vector<DnaCode>& text);

/// Inverse permutation: rank[SA[i]] = i. Input must be a permutation of
/// 0..SA.size()-1.
std::vector<SaIndex> InvertSuffixArray(const std::vector<SaIndex>& sa);

}  // namespace bwtk

#endif  // BWTK_SUFFIX_SUFFIX_ARRAY_H_
