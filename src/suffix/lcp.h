// Longest-common-prefix machinery.
//
// LcpIndex bundles a suffix array, its inverse, the Kasai LCP array, and a
// sparse-table RMQ so that the LCP of *any* two suffixes is an O(1) query.
// This powers the "kangaroo jumps" used to build the paper's R_i mismatch
// tables (Section IV.B) and the Galil–Giancarlo style online baseline.

#ifndef BWTK_SUFFIX_LCP_H_
#define BWTK_SUFFIX_LCP_H_

#include <cstdint>
#include <vector>

#include "suffix/rmq.h"
#include "suffix/suffix_array.h"
#include "util/status.h"

namespace bwtk {

/// Kasai et al. linear-time LCP array. `lcp[i]` = LCP of suffixes SA[i-1]
/// and SA[i] (and lcp[0] = 0). `sa` must include the sentinel entry
/// (SA[0] == text.size()).
std::vector<SaIndex> BuildLcpArrayKasai(const std::vector<uint32_t>& text,
                                        const std::vector<SaIndex>& sa);

/// O(1) LCP queries between arbitrary suffixes of one text.
class LcpIndex {
 public:
  /// Empty index; assign from Build() before use.
  LcpIndex() = default;

  /// Builds SA + inverse + LCP + RMQ for `text` (generic symbols).
  static Result<LcpIndex> Build(std::vector<uint32_t> text,
                                uint32_t alphabet_size);

  /// Length of the longest common prefix of text[a..) and text[b..).
  /// Positions may equal text.size() (empty suffix -> 0).
  SaIndex Lcp(size_t a, size_t b) const;

  size_t text_size() const { return text_.size(); }
  const std::vector<uint32_t>& text() const { return text_; }
  const std::vector<SaIndex>& suffix_array() const { return sa_; }
  const std::vector<SaIndex>& lcp_array() const { return lcp_; }

 private:
  std::vector<uint32_t> text_;
  std::vector<SaIndex> sa_;
  std::vector<SaIndex> rank_;
  std::vector<SaIndex> lcp_;
  RangeMinQuery<SaIndex> rmq_;
};

}  // namespace bwtk

#endif  // BWTK_SUFFIX_LCP_H_
