#include "suffix/lcp.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace bwtk {

std::vector<SaIndex> BuildLcpArrayKasai(const std::vector<uint32_t>& text,
                                        const std::vector<SaIndex>& sa) {
  const size_t n = sa.size();  // == text.size() + 1 (includes sentinel)
  BWTK_CHECK_EQ(n, text.size() + 1);
  std::vector<SaIndex> rank = InvertSuffixArray(sa);
  std::vector<SaIndex> lcp(n, 0);
  SaIndex h = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    const SaIndex r = rank[i];
    if (r > 0) {
      const size_t j = static_cast<size_t>(sa[r - 1]);
      size_t a = i + static_cast<size_t>(h);
      size_t b = j + static_cast<size_t>(h);
      while (a < text.size() && b < text.size() && text[a] == text[b]) {
        ++a;
        ++b;
        ++h;
      }
      lcp[r] = h;
      if (h > 0) --h;
    } else {
      h = 0;
    }
  }
  return lcp;
}

Result<LcpIndex> LcpIndex::Build(std::vector<uint32_t> text,
                                 uint32_t alphabet_size) {
  LcpIndex index;
  BWTK_ASSIGN_OR_RETURN(index.sa_, BuildSuffixArray(text, alphabet_size));
  index.lcp_ = BuildLcpArrayKasai(text, index.sa_);
  index.rank_ = InvertSuffixArray(index.sa_);
  index.rmq_.Reset(index.lcp_);
  index.text_ = std::move(text);
  return index;
}

SaIndex LcpIndex::Lcp(size_t a, size_t b) const {
  BWTK_DCHECK_LE(a, text_.size());
  BWTK_DCHECK_LE(b, text_.size());
  if (a == b) return static_cast<SaIndex>(text_.size() - a);
  if (a == text_.size() || b == text_.size()) return 0;
  SaIndex ra = rank_[a];
  SaIndex rb = rank_[b];
  if (ra > rb) std::swap(ra, rb);
  // LCP of two suffixes is the min of adjacent LCPs strictly between their
  // ranks in the suffix array.
  return rmq_.Min(static_cast<size_t>(ra) + 1, static_cast<size_t>(rb));
}

}  // namespace bwtk
