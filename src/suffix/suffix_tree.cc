#include "suffix/suffix_tree.h"

#include <limits>
#include <utility>

#include "util/logging.h"

namespace bwtk {

SaIndex SuffixTree::NewNode(SaIndex start, SaIndex end) {
  nodes_.emplace_back();
  Node& node = nodes_.back();
  node.start = start;
  node.end = end;
  node.suffix_link = 0;  // default link to root
  return static_cast<SaIndex>(nodes_.size() - 1);
}

SaIndex SuffixTree::EdgeLength(SaIndex id, SaIndex pos) const {
  const Node& node = nodes_[id];
  const SaIndex end = node.end == kOpenEnd ? pos + 1 : node.end;
  return end - node.start;
}

void SuffixTree::ExtendWith(SaIndex pos) {
  ++remaining_;
  SaIndex last_new_node = kNoNode;
  while (remaining_ > 0) {
    if (active_length_ == 0) active_edge_ = pos;
    const uint8_t edge_symbol = text_[active_edge_];
    SaIndex child = nodes_[active_node_].children[edge_symbol];
    if (child == kNoNode) {
      // Rule 2: new leaf directly off the active node.
      nodes_[active_node_].children[edge_symbol] = NewNode(pos, kOpenEnd);
      if (last_new_node != kNoNode) {
        nodes_[last_new_node].suffix_link = active_node_;
        last_new_node = kNoNode;
      }
    } else {
      const SaIndex edge_len = EdgeLength(child, pos);
      if (active_length_ >= edge_len) {
        // Walk down: the active point lies beyond this edge.
        active_edge_ += edge_len;
        active_length_ -= edge_len;
        active_node_ = child;
        continue;
      }
      if (text_[nodes_[child].start + active_length_] == text_[pos]) {
        // Rule 3: the symbol is already present; this phase is done.
        if (last_new_node != kNoNode && active_node_ != 0) {
          nodes_[last_new_node].suffix_link = active_node_;
          last_new_node = kNoNode;
        }
        ++active_length_;
        break;
      }
      // Rule 2 with split: the edge diverges mid-label.
      const SaIndex split =
          NewNode(nodes_[child].start, nodes_[child].start + active_length_);
      nodes_[active_node_].children[edge_symbol] = split;
      const SaIndex leaf = NewNode(pos, kOpenEnd);
      nodes_[split].children[text_[pos]] = leaf;
      nodes_[child].start += active_length_;
      nodes_[split].children[text_[nodes_[child].start]] = child;
      if (last_new_node != kNoNode) {
        nodes_[last_new_node].suffix_link = split;
      }
      last_new_node = split;
    }
    --remaining_;
    if (active_node_ == 0 && active_length_ > 0) {
      --active_length_;
      active_edge_ = pos - remaining_ + 1;
    } else if (active_node_ != 0) {
      active_node_ = nodes_[active_node_].suffix_link;
    }
  }
}

void SuffixTree::AssignSuffixIndices() {
  const SaIndex n = static_cast<SaIndex>(text_.size());
  // Close open leaf edges and assign suffix indices with an iterative DFS
  // carrying the string depth.
  struct Frame {
    SaIndex id;
    SaIndex depth;  // string depth *above* this node's edge
  };
  std::vector<Frame> stack;
  stack.push_back({0, 0});
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    Node& node = nodes_[frame.id];
    SaIndex depth = frame.depth;
    if (frame.id != 0) {
      if (node.end == kOpenEnd) node.end = n;
      depth += node.end - node.start;
    }
    bool has_child = false;
    for (const SaIndex child : node.children) {
      if (child != kNoNode) {
        has_child = true;
        stack.push_back({child, depth});
      }
    }
    if (!has_child && frame.id != 0) {
      node.suffix_index = n - depth;
    }
  }
}

Result<SuffixTree> SuffixTree::Build(const std::vector<DnaCode>& text) {
  if (text.size() >=
      static_cast<size_t>(std::numeric_limits<SaIndex>::max()) - 2) {
    return Status::InvalidArgument("text too long for 32-bit suffix tree");
  }
  SuffixTree tree;
  tree.text_.reserve(text.size() + 1);
  for (const DnaCode c : text) {
    BWTK_CHECK_LT(c, kDnaAlphabetSize);
    tree.text_.push_back(c);
  }
  tree.text_.push_back(kSentinelSymbol);
  tree.nodes_.reserve(2 * tree.text_.size());
  tree.NewNode(0, 0);  // root (id 0); its start/end are unused
  for (size_t pos = 0; pos < tree.text_.size(); ++pos) {
    tree.ExtendWith(static_cast<SaIndex>(pos));
  }
  tree.AssignSuffixIndices();
  return tree;
}

std::vector<SaIndex> SuffixTree::FindExact(
    const std::vector<DnaCode>& pattern) const {
  std::vector<SaIndex> out;
  SaIndex node_id = 0;
  size_t matched = 0;
  while (matched < pattern.size()) {
    const SaIndex child = nodes_[node_id].children[pattern[matched]];
    if (child == kNoNode) return out;
    const Node& edge = nodes_[child];
    for (SaIndex p = edge.start; p < edge.end && matched < pattern.size();
         ++p, ++matched) {
      if (text_[p] != pattern[matched]) return out;
    }
    node_id = child;
  }
  CollectLeaves(node_id, &out);
  // Drop positions whose occurrence would run past the original text (the
  // sentinel leaf can never match a nonempty DNA pattern, but guard anyway).
  std::vector<SaIndex> filtered;
  filtered.reserve(out.size());
  for (const SaIndex p : out) {
    if (static_cast<size_t>(p) + pattern.size() <= text_size()) {
      filtered.push_back(p);
    }
  }
  return filtered;
}

void SuffixTree::CollectLeaves(SaIndex id, std::vector<SaIndex>* out) const {
  std::vector<SaIndex> stack = {id};
  while (!stack.empty()) {
    const SaIndex cur = stack.back();
    stack.pop_back();
    const Node& node = nodes_[cur];
    if (node.is_leaf()) {
      out->push_back(node.suffix_index);
      continue;
    }
    for (const SaIndex child : node.children) {
      if (child != kNoNode) stack.push_back(child);
    }
  }
}

}  // namespace bwtk
