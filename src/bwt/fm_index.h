// FM-index over the *reverse* of the target text.
//
// The paper searches the pattern r against BWT(reverse(s)) so that
// backward-search steps consume r's characters left to right (Section III.A
// and Definition 1). FmIndex packages that convention: Extend() performs one
// search() step of the paper — narrowing a pair <x, [α, β]> to its
// sub-range for the next character — and Locate() maps final rows back to
// occurrence start positions in the original, un-reversed text.

#ifndef BWTK_BWT_FM_INDEX_H_
#define BWTK_BWT_FM_INDEX_H_

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "alphabet/dna.h"
#include "bwt/bwt.h"
#include "bwt/occ_table.h"
#include "bwt/prefix_table.h"
#include "obs/metrics.h"
#include "suffix/suffix_array.h"
#include "util/bit_vector.h"
#include "util/status.h"

namespace bwtk {

/// Self-index supporting backward search and occurrence location.
///
/// Thread safety: an FmIndex is immutable once Build()/Load() returns, and
/// every query method (Extend, ExtendAll, MatchForward, Locate,
/// SuffixArrayValue, ...) is const and free of hidden mutable state — no
/// caches, no lazy initialization. Any number of threads may therefore query
/// one shared index concurrently without synchronization; this is the
/// contract BatchSearcher relies on. Mutating operations (move-assignment,
/// destruction) must still be externally ordered against readers.
class FmIndex {
 public:
  struct Options {
    /// Rankall checkpoint spacing (rows per checkpoint, multiple of 32).
    uint32_t checkpoint_rate = OccTable::kDefaultCheckpointRate;
    /// Suffix-array sample spacing (every rate-th text position).
    uint32_t sa_sample_rate = 8;
    /// q-gram size of the precomputed prefix interval table (0 = no table;
    /// max PrefixIntervalTable::kMaxQ). A table costs 8 * 4^q bytes — 128 MB
    /// at q = 12 — and lets engines replace the first q backward-search
    /// steps of a descent with one lookup. See bwt/prefix_table.h.
    uint32_t prefix_table_q = 0;
    /// Checkpoint-gap rank kernel. kAuto resolves at Build to AVX2 when the
    /// host supports it, the portable word-parallel kernel otherwise.
    OccTable::RankKernel rank_kernel = OccTable::RankKernel::kAuto;
  };

  /// A half-open row interval [lo, hi) of the conceptual sorted-rotation
  /// matrix; the in-code form of the paper's pair <x, [α, β]>.
  struct Range {
    SaIndex lo = 0;
    SaIndex hi = 0;
    bool empty() const { return lo >= hi; }
    SaIndex count() const { return hi - lo; }
    bool operator==(const Range&) const = default;
  };

  /// Indexes `text`. The reversal, suffix array, BWT, rank checkpoints and
  /// SA samples are all constructed here; `text` itself is not retained.
  static Result<FmIndex> Build(const std::vector<DnaCode>& text,
                               const Options& options);
  static Result<FmIndex> Build(const std::vector<DnaCode>& text) {
    return Build(text, Options());
  }

  /// Length of the indexed text (excluding the sentinel).
  size_t text_size() const { return n_; }
  /// Number of BWT rows (text_size() + 1).
  size_t rows() const { return n_ + 1; }

  /// The range of every row: the virtual root <-, [0, n]> of the S-tree.
  Range WholeRange() const { return {0, static_cast<SaIndex>(rows())}; }

  /// One backward-search step: rows of `range` whose suffix, prefixed with
  /// `c`, still occurs. Equals the paper's search(c, L_range). May be empty.
  ///
  /// Deliberately NOT hooked into the metrics registry: Extend/ExtendAll
  /// are the innermost search operations (tens of ns), so callers on the
  /// query path count their invocations locally and flush the totals to
  /// the registry once per query (see the note in occ_table.h).
  Range Extend(Range range, DnaCode c) const {
    uint32_t rank_lo;
    uint32_t rank_hi;
    occ_.RankPair(c, static_cast<size_t>(range.lo),
                  static_cast<size_t>(range.hi), &rank_lo, &rank_hi);
    return {static_cast<SaIndex>(first_row_[c] + rank_lo),
            static_cast<SaIndex>(first_row_[c] + rank_hi)};
  }

  /// All four one-symbol extensions of `range` at once; cheaper than four
  /// Extend calls because the rank scans are shared. `out[c]` may be empty.
  void ExtendAll(Range range, Range out[kDnaAlphabetSize]) const {
    uint32_t lo_ranks[kDnaAlphabetSize];
    uint32_t hi_ranks[kDnaAlphabetSize];
    occ_.Prefetch(static_cast<size_t>(range.hi));
    occ_.RankAll(range.lo, lo_ranks);
    occ_.RankAll(range.hi, hi_ranks);
    for (unsigned c = 0; c < kDnaAlphabetSize; ++c) {
      out[c] = {static_cast<SaIndex>(first_row_[c] + lo_ranks[c]),
                static_cast<SaIndex>(first_row_[c] + hi_ranks[c])};
    }
  }

  /// Feeds `pattern` left to right through Extend; the resulting range
  /// covers exactly the occurrences of `pattern` in the original text.
  Range MatchForward(const std::vector<DnaCode>& pattern) const;

  /// Number of occurrences of `pattern` in the text.
  size_t CountOccurrences(const std::vector<DnaCode>& pattern) const {
    const Range range = MatchForward(pattern);
    return range.empty() ? 0 : static_cast<size_t>(range.count());
  }

  /// Start positions (in the original text) of the occurrences represented
  /// by `range` after extending `depth` characters. Unsorted.
  std::vector<size_t> Locate(Range range, size_t depth) const;

  /// Suffix-array value of `row` (position in the reversed text), recovered
  /// from the samples by LF-walking.
  size_t SuffixArrayValue(SaIndex row) const;

  const Bwt& bwt() const { return *bwt_; }
  const OccTable& occ() const { return occ_; }
  const Options& options() const { return options_; }

  /// The q-gram prefix interval table, or nullptr when built with
  /// prefix_table_q = 0 (or loaded from a file saved without one).
  const PrefixIntervalTable* prefix_table() const {
    return prefix_table_.get();
  }
  /// q of the attached prefix table, 0 when absent.
  uint32_t prefix_table_q() const {
    return prefix_table_ ? prefix_table_->q() : 0;
  }

  /// (Re)builds the q-gram prefix table from the live index — the upgrade
  /// path for format-v1 files, which load without one (index_tool's
  /// `upgrade` mode drives this; see docs/API.md). q = 0 removes the table.
  /// The result is byte-identical to having built the index with
  /// Options::prefix_table_q = q; Save() then persists it.
  ///
  /// This is the one post-construction mutation the class allows, and it
  /// breaks the concurrent-reader contract while running: callers must
  /// ensure no other thread queries the index until it returns.
  Status RebuildPrefixTable(uint32_t q);
  /// Name of the rank kernel resolved at build time ("word64", "avx2", ...).
  std::string_view rank_kernel_name() const { return occ_.kernel_name(); }

  /// Approximate heap footprint in bytes of the whole index.
  size_t MemoryUsage() const;

  // --- Serialization (implemented in bwt/serialize.cc) ------------------
  Status Save(std::ostream& out) const;
  static Result<FmIndex> Load(std::istream& in);
  Status SaveToFile(const std::string& path) const;
  static Result<FmIndex> LoadFromFile(const std::string& path);

 private:
  friend class FmIndexSerializer;

  FmIndex() = default;

  /// LF mapping: row of the suffix one position to the left.
  SaIndex LfStep(SaIndex row) const;

  /// Rebuilds occ_ / first_row_ after bwt_ and samples are in place.
  Status FinishConstruction();

  size_t n_ = 0;
  Options options_;
  std::unique_ptr<Bwt> bwt_;  // heap-stable so occ_ can point at it
  OccTable occ_;
  /// first_row_[c] = first row whose suffix starts with symbol c; entry
  /// [kDnaAlphabetSize] caps the table at rows().
  std::array<SaIndex, kDnaAlphabetSize + 1> first_row_{};
  /// sampled_rows_[row] marks rows whose SA value is a multiple of the
  /// sample rate; sa_samples_ stores those values in row order.
  BitVectorRank sampled_rows_;
  std::vector<SaIndex> sa_samples_;
  /// Optional q-gram shortcut table (Options::prefix_table_q > 0).
  std::unique_ptr<PrefixIntervalTable> prefix_table_;
};

}  // namespace bwtk

#endif  // BWTK_BWT_FM_INDEX_H_
