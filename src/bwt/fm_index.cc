#include "bwt/fm_index.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/logging.h"

namespace bwtk {

Result<FmIndex> FmIndex::Build(const std::vector<DnaCode>& text,
                               const Options& options) {
  BWTK_SCOPED_TIMER(kPhaseIndexBuild);
  if (options.sa_sample_rate == 0) {
    return Status::InvalidArgument("sa_sample_rate must be positive");
  }
  if (options.prefix_table_q > PrefixIntervalTable::kMaxQ) {
    return Status::InvalidArgument(
        "prefix_table_q must be at most " +
        std::to_string(PrefixIntervalTable::kMaxQ) + ", got " +
        std::to_string(options.prefix_table_q));
  }
  FmIndex index;
  index.n_ = text.size();
  index.options_ = options;

  // Index the reversed text so search steps consume the pattern in order.
  std::vector<DnaCode> reversed(text.rbegin(), text.rend());
  BWTK_ASSIGN_OR_RETURN(auto sa, BuildSuffixArrayDna(reversed));
  index.bwt_ = std::make_unique<Bwt>(BwtFromSuffixArray(reversed, sa));

  // Sample the suffix array before discarding it.
  index.sampled_rows_ = BitVectorRank(sa.size());
  for (size_t row = 0; row < sa.size(); ++row) {
    if (static_cast<uint32_t>(sa[row]) % options.sa_sample_rate == 0) {
      index.sampled_rows_.Set(row);
      index.sa_samples_.push_back(sa[row]);
    }
  }
  index.sampled_rows_.FinalizeRank();

  BWTK_RETURN_IF_ERROR(index.FinishConstruction());
  if (options.prefix_table_q > 0) {
    BWTK_ASSIGN_OR_RETURN(
        auto table, PrefixIntervalTable::Build(index.occ_,
                                               index.first_row_.data(),
                                               options.prefix_table_q));
    index.prefix_table_ =
        std::make_unique<PrefixIntervalTable>(std::move(table));
  }
  return index;
}

Status FmIndex::RebuildPrefixTable(uint32_t q) {
  if (q > PrefixIntervalTable::kMaxQ) {
    return Status::InvalidArgument(
        "prefix_table_q must be at most " +
        std::to_string(PrefixIntervalTable::kMaxQ) + ", got " +
        std::to_string(q));
  }
  if (q == 0) {
    prefix_table_.reset();
    options_.prefix_table_q = 0;
    return Status::OK();
  }
  // Built from the live rank structure exactly as Build() does, so the
  // upgraded index is indistinguishable from one built with this q.
  BWTK_ASSIGN_OR_RETURN(
      auto table, PrefixIntervalTable::Build(occ_, first_row_.data(), q));
  prefix_table_ = std::make_unique<PrefixIntervalTable>(std::move(table));
  options_.prefix_table_q = q;
  return Status::OK();
}

Status FmIndex::FinishConstruction() {
  BWTK_ASSIGN_OR_RETURN(occ_, OccTable::Build(bwt_.get(),
                                              options_.checkpoint_rate,
                                              options_.rank_kernel));
  // first_row_: cumulative symbol counts, offset by 1 for the sentinel row.
  SaIndex sum = 1;
  for (unsigned c = 0; c < kDnaAlphabetSize; ++c) {
    first_row_[c] = sum;
    sum += static_cast<SaIndex>(occ_.Total(static_cast<DnaCode>(c)));
  }
  first_row_[kDnaAlphabetSize] = sum;
  if (static_cast<size_t>(sum) != rows()) {
    return Status::Corruption("symbol totals do not cover the BWT rows");
  }
  return Status::OK();
}

FmIndex::Range FmIndex::MatchForward(
    const std::vector<DnaCode>& pattern) const {
  Range range = WholeRange();
  size_t i = 0;
  const uint32_t q = prefix_table_q();
  if (q > 0 && pattern.size() >= q) {
    SaIndex lo;
    SaIndex hi;
    if (prefix_table_->Lookup(PrefixIntervalTable::PackKey(pattern.data(), q),
                              &lo, &hi)) {
      range = {lo, hi};
      i = q;
      BWTK_METRIC_COUNT2(kCounterPrefixTableHits, 1,
                         kCounterPrefixTableSkippedSteps, q);
    }
    // On a miss the q-gram is absent, so fall through to stepping from
    // scratch: the walk stops at the same empty range the unaccelerated
    // loop would return, keeping the result byte-identical.
  }
  uint64_t steps = 0;
  for (; i < pattern.size(); ++i) {
    range = Extend(range, pattern[i]);
    ++steps;
    if (range.empty()) break;
  }
  BWTK_METRIC_COUNT2(kCounterExtendCalls, steps, kCounterRankCalls, 2 * steps);
  return range;
}

SaIndex FmIndex::LfStep(SaIndex row) const {
  BWTK_DCHECK_NE(static_cast<size_t>(row), bwt_->sentinel_row);
  BWTK_METRIC_COUNT2(kCounterLfSteps, 1, kCounterRankCalls, 1);
  const DnaCode c = bwt_->codes.at(static_cast<size_t>(row));
  return static_cast<SaIndex>(first_row_[c] +
                              occ_.Rank(c, static_cast<size_t>(row)));
}

size_t FmIndex::SuffixArrayValue(SaIndex row) const {
  size_t steps = 0;
  while (!sampled_rows_.Get(static_cast<size_t>(row))) {
    row = LfStep(row);
    ++steps;
  }
  const size_t sample =
      static_cast<size_t>(sa_samples_[sampled_rows_.Rank1(row)]);
  return sample + steps;
}

std::vector<size_t> FmIndex::Locate(Range range, size_t depth) const {
  std::vector<size_t> positions;
  if (range.empty()) return positions;
  BWTK_SCOPED_TIMER(kPhaseLocate);
  BWTK_METRIC_COUNT(kCounterLocateCalls);
  positions.reserve(static_cast<size_t>(range.count()));
  for (SaIndex row = range.lo; row < range.hi; ++row) {
    const size_t p = SuffixArrayValue(row);
    // Row matches `depth` characters starting at position p of the reversed
    // text; in the original text the occurrence starts at n - depth - p.
    BWTK_DCHECK_LE(p + depth, n_);
    positions.push_back(n_ - depth - p);
  }
  return positions;
}

size_t FmIndex::MemoryUsage() const {
  return bwt_->codes.MemoryUsage() + occ_.MemoryUsage() +
         sampled_rows_.MemoryUsage() +
         sa_samples_.capacity() * sizeof(SaIndex) +
         (prefix_table_ ? prefix_table_->MemoryUsage() : 0);
}

}  // namespace bwtk
