#include "bwt/serialize.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <utility>
#include <vector>

#include "bwt/fm_index.h"

namespace bwtk {

namespace {

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

template <typename T>
void WriteVector(std::ostream& out, const std::vector<T>& values) {
  WritePod(out, static_cast<uint64_t>(values.size()));
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(T)));
}

template <typename T>
bool ReadVector(std::istream& in, std::vector<T>* values) {
  uint64_t count = 0;
  if (!ReadPod(in, &count)) return false;
  // Reject absurd sizes before allocating (corrupt length field).
  if (count > (uint64_t{1} << 40) / sizeof(T)) return false;
  values->resize(count);
  in.read(reinterpret_cast<char*>(values->data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  return static_cast<bool>(in);
}

// FNV-1a over the structural fields, so bit rot in the payload is caught.
uint64_t HashWords(const std::vector<uint64_t>& words, uint64_t seed) {
  uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (const uint64_t w : words) {
    h ^= w;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

// Friend of FmIndex; performs the actual field-level IO.
class FmIndexSerializer {
 public:
  static Status Save(const FmIndex& index, std::ostream& out) {
    WritePod(out, FmIndexFormat::kMagic);
    WritePod(out, FmIndexFormat::kVersion);
    WritePod(out, static_cast<uint64_t>(index.n_));
    WritePod(out, index.options_.checkpoint_rate);
    WritePod(out, index.options_.sa_sample_rate);
    WritePod(out, static_cast<uint64_t>(index.bwt_->sentinel_row));
    WritePod(out, static_cast<uint64_t>(index.bwt_->codes.size()));
    WriteVector(out, index.bwt_->codes.words());
    WriteVector(out, index.sampled_rows_.words());
    WriteVector(out, index.sa_samples_);
    // Format v2: the optional prefix table rides between the SA samples and
    // the checksum; q = 0 means none.
    const uint32_t prefix_q =
        index.prefix_table_ ? index.prefix_table_->q() : 0;
    WritePod(out, prefix_q);
    if (prefix_q > 0) WriteVector(out, index.prefix_table_->entries());
    const uint64_t checksum =
        HashWords(index.bwt_->codes.words(), index.n_);
    WritePod(out, checksum);
    if (!out) return Status::IoError("FM-index write failed");
    return Status::OK();
  }

  static Result<FmIndex> Load(std::istream& in) {
    uint32_t magic = 0;
    uint32_t version = 0;
    if (!ReadPod(in, &magic) || magic != FmIndexFormat::kMagic) {
      return Status::Corruption("bad magic: not a bwtk FM-index file");
    }
    if (!ReadPod(in, &version) ||
        version < FmIndexFormat::kMinSupportedVersion ||
        version > FmIndexFormat::kVersion) {
      return Status::Corruption("unsupported FM-index version");
    }
    FmIndex index;
    uint64_t n = 0;
    uint64_t sentinel_row = 0;
    uint64_t bwt_size = 0;
    std::vector<uint64_t> bwt_words;
    std::vector<uint64_t> sample_mark_words;
    if (!ReadPod(in, &n) || !ReadPod(in, &index.options_.checkpoint_rate) ||
        !ReadPod(in, &index.options_.sa_sample_rate) ||
        !ReadPod(in, &sentinel_row) || !ReadPod(in, &bwt_size) ||
        !ReadVector(in, &bwt_words) || !ReadVector(in, &sample_mark_words) ||
        !ReadVector(in, &index.sa_samples_)) {
      return Status::Corruption("truncated FM-index file");
    }
    uint32_t prefix_q = 0;
    std::vector<uint64_t> prefix_entries;
    if (version >= 2) {
      if (!ReadPod(in, &prefix_q)) {
        return Status::Corruption("truncated FM-index file");
      }
      if (prefix_q > 0 && !ReadVector(in, &prefix_entries)) {
        return Status::Corruption("truncated FM-index file");
      }
    }
    uint64_t checksum = 0;
    if (!ReadPod(in, &checksum) || checksum != HashWords(bwt_words, n)) {
      return Status::Corruption("FM-index checksum mismatch");
    }
    if (bwt_size != n + 1 || sentinel_row >= bwt_size ||
        bwt_words.size() * 32 < bwt_size) {
      return Status::Corruption("inconsistent FM-index geometry");
    }
    index.n_ = n;
    index.bwt_ = std::make_unique<Bwt>();
    index.bwt_->codes = PackedSequence(std::move(bwt_words), bwt_size);
    index.bwt_->sentinel_row = sentinel_row;
    index.sampled_rows_ = BitVectorRank(bwt_size);
    if (sample_mark_words.size() != index.sampled_rows_.words().size()) {
      return Status::Corruption("inconsistent SA sample bitmap");
    }
    *index.sampled_rows_.mutable_words() = std::move(sample_mark_words);
    index.sampled_rows_.FinalizeRank();
    if (index.sampled_rows_.OneCount() != index.sa_samples_.size()) {
      return Status::Corruption("SA sample count mismatch");
    }
    BWTK_RETURN_IF_ERROR(index.FinishConstruction());
    if (prefix_q > 0) {
      BWTK_ASSIGN_OR_RETURN(
          auto table, PrefixIntervalTable::FromParts(
                          prefix_q, std::move(prefix_entries)));
      index.prefix_table_ =
          std::make_unique<PrefixIntervalTable>(std::move(table));
      index.options_.prefix_table_q = prefix_q;
    }
    return index;
  }
};

Status FmIndex::Save(std::ostream& out) const {
  return FmIndexSerializer::Save(*this, out);
}

Result<FmIndex> FmIndex::Load(std::istream& in) {
  return FmIndexSerializer::Load(in);
}

Status FmIndex::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return Save(out);
}

Result<FmIndex> FmIndex::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open FM-index file: " + path);
  return Load(in);
}

}  // namespace bwtk
