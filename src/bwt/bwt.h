// Burrows–Wheeler transform construction (Section III of the paper).
//
// The BWT array L of text$ is derived from the suffix array by equation (3):
//   L[i] = '$'            if SA[i] == 0
//   L[i] = text[SA[i]-1]  otherwise
// Because sequences are stored 2 bits/base, the sentinel cannot live inside
// the packed array; its row index is carried alongside (the packed slot at
// that row is an ignored placeholder).

#ifndef BWTK_BWT_BWT_H_
#define BWTK_BWT_BWT_H_

#include <cstdint>
#include <vector>

#include "alphabet/dna.h"
#include "alphabet/packed_sequence.h"
#include "suffix/suffix_array.h"
#include "util/status.h"

namespace bwtk {

/// The BWT of text$: `codes.size() == text.size() + 1`, with row
/// `sentinel_row` logically holding '$' (its packed slot is a placeholder).
struct Bwt {
  PackedSequence codes;
  size_t sentinel_row = 0;
};

/// Computes the BWT from a text and its suffix array (`sa.size()` must be
/// `text.size() + 1` with SA[0] == text.size()).
Bwt BwtFromSuffixArray(const std::vector<DnaCode>& text,
                       const std::vector<SaIndex>& sa);

/// Builds the suffix array internally and returns the BWT.
Result<Bwt> BwtFromText(const std::vector<DnaCode>& text);

/// Inverts a BWT back to the original text (LF-walk); used to validate
/// round-trips in tests and the serialized-index integrity check.
std::vector<DnaCode> InvertBwt(const Bwt& bwt);

}  // namespace bwtk

#endif  // BWTK_BWT_BWT_H_
