// Binary (de)serialization of FM-indexes.
//
// Building the BWT of a genome is the expensive step ("once it is created,
// it can be repeatedly used" — Section V); persisting the index makes that
// amortization real. The format is versioned and checksummed so a truncated
// or foreign file fails with Corruption instead of producing wrong matches.

#ifndef BWTK_BWT_SERIALIZE_H_
#define BWTK_BWT_SERIALIZE_H_

#include <cstdint>
#include <iosfwd>

#include "util/status.h"

namespace bwtk {

/// On-disk format constants shared by writer and reader.
///
/// Version history:
///   1 — initial format: header, BWT words, SA sample bitmap + values,
///       trailing FNV-1a checksum over the BWT words.
///   2 — appends the optional prefix interval table (uint32 q, then the
///       4^q packed {lo,hi} entries when q > 0) between the SA samples and
///       the checksum. q = 0 marks "no table".
/// The reader accepts any version in [kMinSupportedVersion, kVersion]; a
/// version-1 file simply loads with no prefix table.
struct FmIndexFormat {
  static constexpr uint32_t kMagic = 0x4257544b;  // "BWTK"
  static constexpr uint32_t kVersion = 2;
  static constexpr uint32_t kMinSupportedVersion = 1;
};

}  // namespace bwtk

#endif  // BWTK_BWT_SERIALIZE_H_
