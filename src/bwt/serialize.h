// Binary (de)serialization of FM-indexes.
//
// Building the BWT of a genome is the expensive step ("once it is created,
// it can be repeatedly used" — Section V); persisting the index makes that
// amortization real. The format is versioned and checksummed so a truncated
// or foreign file fails with Corruption instead of producing wrong matches.

#ifndef BWTK_BWT_SERIALIZE_H_
#define BWTK_BWT_SERIALIZE_H_

#include <cstdint>
#include <iosfwd>

#include "util/status.h"

namespace bwtk {

/// On-disk format constants shared by writer and reader.
struct FmIndexFormat {
  static constexpr uint32_t kMagic = 0x4257544b;  // "BWTK"
  static constexpr uint32_t kVersion = 1;
};

}  // namespace bwtk

#endif  // BWTK_BWT_SERIALIZE_H_
