#include "bwt/bwt.h"

#include <array>

#include "util/logging.h"

namespace bwtk {

Bwt BwtFromSuffixArray(const std::vector<DnaCode>& text,
                       const std::vector<SaIndex>& sa) {
  BWTK_CHECK_EQ(sa.size(), text.size() + 1);
  Bwt bwt;
  std::vector<DnaCode> codes(sa.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    if (sa[i] == 0) {
      bwt.sentinel_row = i;
      codes[i] = 0;  // placeholder; row is logically '$'
    } else {
      codes[i] = text[static_cast<size_t>(sa[i]) - 1];
    }
  }
  bwt.codes = PackedSequence(codes);
  return bwt;
}

Result<Bwt> BwtFromText(const std::vector<DnaCode>& text) {
  BWTK_ASSIGN_OR_RETURN(auto sa, BuildSuffixArrayDna(text));
  return BwtFromSuffixArray(text, sa);
}

std::vector<DnaCode> InvertBwt(const Bwt& bwt) {
  const size_t rows = bwt.codes.size();
  BWTK_CHECK_GE(rows, 1u);
  const size_t n = rows - 1;

  // C[c] = number of rows whose first symbol is smaller than c ('$' counts
  // as the smallest).
  std::array<size_t, kDnaAlphabetSize + 1> counts{};  // [0]='$'
  counts[0] = 1;
  for (size_t i = 0; i < rows; ++i) {
    if (i == bwt.sentinel_row) continue;
    ++counts[bwt.codes.at(i) + 1];
  }
  std::array<size_t, kDnaAlphabetSize + 1> c_array{};
  size_t sum = 0;
  for (size_t c = 0; c <= kDnaAlphabetSize; ++c) {
    c_array[c] = sum;
    sum += counts[c];
  }

  // occ_before[i] = rank of L[i] among equal symbols above row i.
  std::vector<size_t> occ_before(rows);
  std::array<size_t, kDnaAlphabetSize> running{};
  for (size_t i = 0; i < rows; ++i) {
    if (i == bwt.sentinel_row) continue;
    const DnaCode c = bwt.codes.at(i);
    occ_before[i] = running[c]++;
  }

  // Walk LF from the row that ends with the last text character backwards.
  std::vector<DnaCode> text(n);
  size_t row = 0;  // row 0 = "$text", whose L symbol is the last text char
  for (size_t step = n; step-- > 0;) {
    BWTK_CHECK_NE(row, bwt.sentinel_row);
    const DnaCode c = bwt.codes.at(row);
    text[step] = c;
    row = c_array[c + 1] + occ_before[row];
  }
  return text;
}

}  // namespace bwtk
