#include "bwt/prefix_table.h"

#include <string>
#include <thread>

#include "obs/metrics.h"
#include "util/logging.h"

namespace bwtk {

namespace {

// One depth-first expansion over the S-tree below the top-level symbol c0,
// writing the depth-q intervals it reaches into their key slots. Empty
// intervals are pruned immediately (their whole subtree stays all-zero in
// the table), which bounds the work at O(min(4^d, n)) nodes per level.
void BuildSubtree(const OccTable& occ, const SaIndex* first_row, uint32_t q,
                  DnaCode c0, std::vector<uint64_t>* entries) {
  const SaIndex rows = static_cast<SaIndex>(occ.size());
  uint32_t lo_rank = 0;
  uint32_t hi_rank = 0;
  occ.RankPair(c0, 0, static_cast<size_t>(rows), &lo_rank, &hi_rank);
  const SaIndex root_lo = first_row[c0] + static_cast<SaIndex>(lo_rank);
  const SaIndex root_hi = first_row[c0] + static_cast<SaIndex>(hi_rank);
  if (root_lo >= root_hi) return;
  if (q == 1) {
    (*entries)[c0] = (static_cast<uint64_t>(static_cast<uint32_t>(root_lo))
                      << 32) |
                     static_cast<uint32_t>(root_hi);
    return;
  }

  struct Node {
    SaIndex lo;
    SaIndex hi;
    uint64_t key;
    uint32_t depth;
  };
  std::vector<Node> stack;
  stack.reserve(3 * q + 1);
  stack.push_back({root_lo, root_hi, c0, 1});
  uint32_t lo_ranks[kDnaAlphabetSize];
  uint32_t hi_ranks[kDnaAlphabetSize];
  while (!stack.empty()) {
    const Node node = stack.back();
    stack.pop_back();
    occ.RankAll(static_cast<size_t>(node.lo), lo_ranks);
    occ.RankAll(static_cast<size_t>(node.hi), hi_ranks);
    for (DnaCode c = 0; c < kDnaAlphabetSize; ++c) {
      const SaIndex lo = first_row[c] + static_cast<SaIndex>(lo_ranks[c]);
      const SaIndex hi = first_row[c] + static_cast<SaIndex>(hi_ranks[c]);
      if (lo >= hi) continue;
      const uint64_t key = (node.key << 2) | c;
      if (node.depth + 1 == q) {
        (*entries)[key] = (static_cast<uint64_t>(static_cast<uint32_t>(lo))
                           << 32) |
                          static_cast<uint32_t>(hi);
      } else {
        stack.push_back({lo, hi, key, node.depth + 1});
      }
    }
  }
}

}  // namespace

Result<PrefixIntervalTable> PrefixIntervalTable::Build(
    const OccTable& occ, const SaIndex* first_row, uint32_t q) {
  if (q == 0 || q > kMaxQ) {
    return Status::InvalidArgument(
        "prefix table q must be in [1, " + std::to_string(kMaxQ) + "], got " +
        std::to_string(q));
  }
  if (occ.size() == 0) {
    return Status::InvalidArgument("prefix table needs a built rank table");
  }
  BWTK_SCOPED_TIMER(kPhasePrefixTableBuild);
  PrefixIntervalTable table;
  table.q_ = q;
  table.entries_.assign(KeyCount(q), 0);

  // Big-endian keys give each top-level symbol its own contiguous quarter of
  // the table, so the four subtree builders never write the same slot.
  std::vector<std::thread> workers;
  workers.reserve(kDnaAlphabetSize - 1);
  for (DnaCode c0 = 1; c0 < kDnaAlphabetSize; ++c0) {
    workers.emplace_back(BuildSubtree, std::cref(occ), first_row, q, c0,
                         &table.entries_);
  }
  BuildSubtree(occ, first_row, q, 0, &table.entries_);
  for (std::thread& worker : workers) worker.join();
  return table;
}

Result<PrefixIntervalTable> PrefixIntervalTable::FromParts(
    uint32_t q, std::vector<uint64_t> entries) {
  if (q == 0 || q > kMaxQ) {
    return Status::Corruption("prefix table q out of range: " +
                              std::to_string(q));
  }
  if (entries.size() != KeyCount(q)) {
    return Status::Corruption(
        "prefix table entry count mismatch: q=" + std::to_string(q) +
        " expects " + std::to_string(KeyCount(q)) + ", got " +
        std::to_string(entries.size()));
  }
  PrefixIntervalTable table;
  table.q_ = q;
  table.entries_ = std::move(entries);
  return table;
}

}  // namespace bwtk
