#include "bwt/occ_table.h"

#include "util/bit_utils.h"
#include "util/logging.h"

namespace bwtk {

Result<OccTable> OccTable::Build(const Bwt* bwt, uint32_t checkpoint_rate) {
  if (bwt == nullptr) return Status::InvalidArgument("bwt must not be null");
  if (checkpoint_rate == 0 || checkpoint_rate % 32 != 0) {
    return Status::InvalidArgument(
        "checkpoint_rate must be a positive multiple of 32, got " +
        std::to_string(checkpoint_rate));
  }
  OccTable table;
  table.bwt_ = bwt;
  table.rate_ = checkpoint_rate;

  const size_t rows = bwt->codes.size();
  const size_t blocks = rows / checkpoint_rate + 1;
  table.checkpoints_.assign(blocks * kDnaAlphabetSize, 0);

  std::array<uint32_t, kDnaAlphabetSize> running{};
  const std::vector<uint64_t>& words = bwt->codes.words();
  const uint32_t words_per_block = checkpoint_rate / 32;
  for (size_t block = 1; block < blocks; ++block) {
    // Accumulate the raw symbol counts of the previous block's words.
    const size_t first_word = (block - 1) * words_per_block;
    for (size_t w = first_word; w < first_word + words_per_block; ++w) {
      const uint64_t word = w < words.size() ? words[w] : 0;
      for (unsigned c = 0; c < kDnaAlphabetSize; ++c) {
        running[c] += Count2BitSymbols(word, c, 32);
      }
    }
    for (unsigned c = 0; c < kDnaAlphabetSize; ++c) {
      table.checkpoints_[block * kDnaAlphabetSize + c] = running[c];
    }
  }

  for (unsigned c = 0; c < kDnaAlphabetSize; ++c) {
    table.totals_[c] = table.Rank(static_cast<DnaCode>(c), rows);
  }
  return table;
}

uint32_t OccTable::Rank(DnaCode c, size_t pos) const {
  BWTK_DCHECK_LE(pos, bwt_->codes.size());
  const size_t block = pos / rate_;
  uint32_t count = checkpoints_[block * kDnaAlphabetSize + c];
  // Scan the tail: whole packed words first, then the partial word.
  const std::vector<uint64_t>& words = bwt_->codes.words();
  size_t cursor = block * rate_;
  while (cursor + 32 <= pos) {
    count += Count2BitSymbols(words[cursor >> 5], c, 32);
    cursor += 32;
  }
  if (cursor < pos) {
    count += Count2BitSymbols(words[cursor >> 5], c,
                              static_cast<unsigned>(pos - cursor));
  }
  // The sentinel row's packed slot holds a placeholder 'a'; it must never
  // count as a real symbol.
  if (c == 0 && bwt_->sentinel_row < pos) --count;
  return count;
}

void OccTable::RankAll(size_t pos, uint32_t out[kDnaAlphabetSize]) const {
  BWTK_DCHECK_LE(pos, bwt_->codes.size());
  const size_t block = pos / rate_;
  for (unsigned c = 0; c < kDnaAlphabetSize; ++c) {
    out[c] = checkpoints_[block * kDnaAlphabetSize + c];
  }
  const std::vector<uint64_t>& words = bwt_->codes.words();
  size_t cursor = block * rate_;
  while (cursor + 32 <= pos) {
    const uint64_t word = words[cursor >> 5];
    for (unsigned c = 0; c < kDnaAlphabetSize; ++c) {
      out[c] += Count2BitSymbols(word, c, 32);
    }
    cursor += 32;
  }
  if (cursor < pos) {
    const uint64_t word = words[cursor >> 5];
    const unsigned tail = static_cast<unsigned>(pos - cursor);
    for (unsigned c = 0; c < kDnaAlphabetSize; ++c) {
      out[c] += Count2BitSymbols(word, c, tail);
    }
  }
  if (bwt_->sentinel_row < pos) --out[0];
}

}  // namespace bwtk
