#include "bwt/occ_table.h"

#include <algorithm>
#include <string>

#include "util/bit_utils.h"
#include "util/logging.h"

// The AVX2 kernel is compiled whenever the toolchain can target it (the
// functions carry their own target("avx2") attribute, so no -mavx2 flag is
// needed) and selected at runtime only on hosts that support it.
// -DBWTK_DISABLE_AVX2=ON forces the portable word64 kernel at compile time —
// CI runs the test suite both ways.
#if !defined(BWTK_DISABLE_AVX2) &&                        \
    (defined(__x86_64__) || defined(__i386__)) &&         \
    (defined(__GNUC__) || defined(__clang__))
#define BWTK_HAVE_AVX2_KERNEL 1
#include <immintrin.h>
#else
#define BWTK_HAVE_AVX2_KERNEL 0
#endif

namespace bwtk {

namespace {

// Adds the symbol counts of the first `prefix_len` (1..32) slots of `word`
// to out[0..3]. Three popcounts classify symbols 1..3 directly from the
// low/high bit planes of the 2-bit slots; symbol 0 is whatever remains.
inline void AccumulateWord64(uint64_t word, unsigned prefix_len,
                             uint32_t out[kDnaAlphabetSize]) {
  constexpr uint64_t kOdd = 0x5555555555555555ULL;
  uint64_t slot_mask = kOdd;
  if (prefix_len < 32) slot_mask &= (uint64_t{1} << (2 * prefix_len)) - 1;
  const uint64_t low = word & kOdd;          // bit 0 of each slot
  const uint64_t high = (word >> 1) & kOdd;  // bit 1 of each slot
  const uint32_t c3 = static_cast<uint32_t>(Popcount64(low & high & slot_mask));
  const uint32_t c2 =
      static_cast<uint32_t>(Popcount64(high & ~low & slot_mask));
  const uint32_t c1 =
      static_cast<uint32_t>(Popcount64(low & ~high & slot_mask));
  out[3] += c3;
  out[2] += c2;
  out[1] += c1;
  out[0] += prefix_len - c1 - c2 - c3;
}

#if BWTK_HAVE_AVX2_KERNEL

// Per-byte popcount via the classic pshufb nibble lookup.
__attribute__((target("avx2"))) inline __m256i PopcountBytesAvx2(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

// Match bits for all four symbols at once: broadcast the word into the four
// 64-bit lanes, XOR lane c with symbol c replicated into all slots, and a
// slot matches iff both its bits went to zero.
__attribute__((target("avx2"))) inline __m256i MatchLanesAvx2(
    uint64_t word, __m256i patterns, __m256i odd) {
  const __m256i w = _mm256_set1_epi64x(static_cast<long long>(word));
  const __m256i diff = _mm256_xor_si256(w, patterns);
  const __m256i any = _mm256_or_si256(diff, _mm256_srli_epi64(diff, 1));
  return _mm256_andnot_si256(any, odd);
}

// Adds the symbol counts of full_words whole words plus a `tail`-slot
// partial word starting at `wp` to out[0..3]. Lane c of the accumulator
// counts symbol c; _mm256_sad_epu8 horizontally sums the per-byte popcounts
// within each 64-bit lane.
__attribute__((target("avx2"))) void AccumulateGapAvx2(
    const uint64_t* wp, size_t full_words, unsigned tail,
    uint32_t out[kDnaAlphabetSize]) {
  const __m256i patterns = _mm256_setr_epi64x(
      0, 0x5555555555555555LL,
      static_cast<long long>(0xAAAAAAAAAAAAAAAAULL), -1LL);
  const __m256i odd = _mm256_set1_epi64x(0x5555555555555555LL);
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  for (size_t w = 0; w < full_words; ++w) {
    const __m256i match = MatchLanesAvx2(wp[w], patterns, odd);
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(PopcountBytesAvx2(match),
                                                zero));
  }
  if (tail != 0) {
    const uint64_t tail_mask = (uint64_t{1} << (2 * tail)) - 1;
    __m256i match = MatchLanesAvx2(wp[full_words], patterns, odd);
    match = _mm256_and_si256(
        match, _mm256_set1_epi64x(static_cast<long long>(tail_mask)));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(PopcountBytesAvx2(match),
                                                zero));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  for (unsigned c = 0; c < kDnaAlphabetSize; ++c) {
    out[c] += static_cast<uint32_t>(lanes[c]);
  }
}

#endif  // BWTK_HAVE_AVX2_KERNEL

}  // namespace

bool OccTable::Avx2Available() {
#if BWTK_HAVE_AVX2_KERNEL
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

std::string_view OccTable::KernelName(RankKernel kernel) {
  switch (kernel) {
    case RankKernel::kAuto:
      return "auto";
    case RankKernel::kScalar:
      return "scalar";
    case RankKernel::kWord64:
      return "word64";
    case RankKernel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Result<OccTable> OccTable::Build(const Bwt* bwt, uint32_t checkpoint_rate,
                                 RankKernel kernel) {
  if (bwt == nullptr) return Status::InvalidArgument("bwt must not be null");
  if (checkpoint_rate == 0 || checkpoint_rate % 32 != 0) {
    return Status::InvalidArgument(
        "checkpoint_rate must be a positive multiple of 32, got " +
        std::to_string(checkpoint_rate));
  }
  if (kernel == RankKernel::kAuto) {
    kernel = Avx2Available() ? RankKernel::kAvx2 : RankKernel::kWord64;
  } else if (kernel == RankKernel::kAvx2 && !Avx2Available()) {
    return Status::InvalidArgument(
        "avx2 rank kernel requested but not available on this host/build");
  }
  OccTable table;
  table.bwt_ = bwt;
  table.rate_ = checkpoint_rate;
  table.kernel_ = kernel;

  const size_t rows = bwt->codes.size();
  const size_t blocks = rows / checkpoint_rate + 1;
  table.checkpoints_.assign(blocks * kDnaAlphabetSize, 0);

  std::array<uint32_t, kDnaAlphabetSize> running{};
  const std::vector<uint64_t>& words = bwt->codes.words();
  const uint32_t words_per_block = checkpoint_rate / 32;
  for (size_t block = 1; block < blocks; ++block) {
    // Accumulate the raw symbol counts of the previous block's words.
    const size_t first_word = (block - 1) * words_per_block;
    for (size_t w = first_word; w < first_word + words_per_block; ++w) {
      const uint64_t word = w < words.size() ? words[w] : 0;
      AccumulateWord64(word, 32, running.data());
    }
    for (unsigned c = 0; c < kDnaAlphabetSize; ++c) {
      table.checkpoints_[block * kDnaAlphabetSize + c] = running[c];
    }
  }

  for (unsigned c = 0; c < kDnaAlphabetSize; ++c) {
    table.totals_[c] = table.Rank(static_cast<DnaCode>(c), rows);
  }
  return table;
}

uint32_t OccTable::RawRank(DnaCode c, size_t pos) const {
  BWTK_DCHECK_LE(pos, bwt_->codes.size());
  const size_t block = pos / rate_;
  uint32_t count = checkpoints_[block * kDnaAlphabetSize + c];
  // Scan the tail: whole packed words first, then the partial word. One
  // popcount per word regardless of kernel — single-symbol rank is already
  // minimal, so the kernels only differentiate RankAll's 4-symbol scan.
  const std::vector<uint64_t>& words = bwt_->codes.words();
  size_t cursor = block * rate_;
  while (cursor + 32 <= pos) {
    count += Count2BitSymbols(words[cursor >> 5], c, 32);
    cursor += 32;
  }
  if (cursor < pos) {
    count += Count2BitSymbols(words[cursor >> 5], c,
                              static_cast<unsigned>(pos - cursor));
  }
  return count;
}

uint32_t OccTable::RawCountInRange(DnaCode c, size_t lo, size_t hi) const {
  const std::vector<uint64_t>& words = bwt_->codes.words();
  uint32_t count = 0;
  size_t cursor = lo;
  const unsigned offset = static_cast<unsigned>(cursor & 31);
  if (offset != 0 && cursor < hi) {
    // Shift the first word so slot `offset` becomes slot 0; the zero-fill
    // from the shift is masked off by the prefix_len argument.
    const unsigned take =
        static_cast<unsigned>(std::min<size_t>(32 - offset, hi - cursor));
    count += Count2BitSymbols(words[cursor >> 5] >> (2 * offset), c, take);
    cursor += take;
  }
  while (cursor + 32 <= hi) {
    count += Count2BitSymbols(words[cursor >> 5], c, 32);
    cursor += 32;
  }
  if (cursor < hi) {
    count += Count2BitSymbols(words[cursor >> 5], c,
                              static_cast<unsigned>(hi - cursor));
  }
  return count;
}

void OccTable::RankPair(DnaCode c, size_t lo, size_t hi, uint32_t* rank_lo,
                        uint32_t* rank_hi) const {
  BWTK_DCHECK_LE(lo, hi);
  BWTK_DCHECK_LE(hi, bwt_->codes.size());
  uint32_t count_lo;
  uint32_t count_hi;
  if (lo / rate_ == hi / rate_) {
    // Same checkpoint block: share the checkpoint load and the scan up to
    // lo, then count only the [lo, hi) gap on top.
    count_lo = RawRank(c, lo);
    count_hi = count_lo + RawCountInRange(c, lo, hi);
  } else {
    Prefetch(hi);  // overlap hi's cache misses with lo's scan
    count_lo = RawRank(c, lo);
    count_hi = RawRank(c, hi);
  }
  if (c == 0) {
    if (bwt_->sentinel_row < lo) --count_lo;
    if (bwt_->sentinel_row < hi) --count_hi;
  }
  *rank_lo = count_lo;
  *rank_hi = count_hi;
}

void OccTable::RankAll(size_t pos, uint32_t out[kDnaAlphabetSize]) const {
  BWTK_DCHECK_LE(pos, bwt_->codes.size());
  const size_t block = pos / rate_;
  for (unsigned c = 0; c < kDnaAlphabetSize; ++c) {
    out[c] = checkpoints_[block * kDnaAlphabetSize + c];
  }
  const std::vector<uint64_t>& words = bwt_->codes.words();
  const size_t begin = block * rate_;
  const uint64_t* wp = words.data() + (begin >> 5);
  const size_t full_words = (pos - begin) / 32;
  const unsigned tail = static_cast<unsigned>((pos - begin) % 32);
  switch (kernel_) {
    case RankKernel::kScalar:
      for (size_t w = 0; w < full_words; ++w) {
        for (unsigned c = 0; c < kDnaAlphabetSize; ++c) {
          out[c] += Count2BitSymbols(wp[w], c, 32);
        }
      }
      if (tail != 0) {
        for (unsigned c = 0; c < kDnaAlphabetSize; ++c) {
          out[c] += Count2BitSymbols(wp[full_words], c, tail);
        }
      }
      break;
#if BWTK_HAVE_AVX2_KERNEL
    case RankKernel::kAvx2:
      AccumulateGapAvx2(wp, full_words, tail, out);
      break;
#endif
    default:  // kWord64; also kAvx2 in a no-AVX2 build, which Build rejects
      for (size_t w = 0; w < full_words; ++w) {
        AccumulateWord64(wp[w], 32, out);
      }
      if (tail != 0) AccumulateWord64(wp[full_words], tail, out);
      break;
  }
  if (bwt_->sentinel_row < pos) --out[0];
}

}  // namespace bwtk
