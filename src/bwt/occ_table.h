// The "rankall" structure of Section III.A (Fig. 2): for each DNA symbol x,
// A_x[i] = number of occurrences of x in L[0..i). The paper stores one
// rankall value per symbol for every 4 BWT elements; we generalize the
// checkpoint rate (one checkpoint block per `rate` rows, rate a multiple of
// 32) and fill the gap with word-level popcounts over the 2-bit packed BWT.
// The rate is the space/time knob exercised by bench_ablation_rankall.

#ifndef BWTK_BWT_OCC_TABLE_H_
#define BWTK_BWT_OCC_TABLE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "alphabet/dna.h"
#include "alphabet/packed_sequence.h"
#include "bwt/bwt.h"
#include "util/status.h"

namespace bwtk {

/// Occurrence (rank) table over a BWT array.
///
/// Thread safety: immutable after Build(). Rank/RankAll/Total read only the
/// checkpoint directory and the (also immutable) BWT it points at, so
/// concurrent queries from any number of threads need no locking — the
/// const-method guarantee FmIndex extends to the whole query path.
///
/// Paper mapping: Rank(c, i) is the rankall value A_c[i] of Section III.A,
/// and one search() step of the paper (Definition 1) costs two Rank calls —
/// that per-step rank work is the unit its cost model charges, and what the
/// `extend_calls` counter of SearchStats and the `rank_calls` /
/// `rankall_calls` observability counters measure.
///
/// Observability: rank invocations are never counted here, nor per call at
/// the FmIndex layer — a Rank is ~30-50 ns, so even one thread-local
/// increment per backward-search step costs a measurable few percent. The
/// query path instead tallies steps in engine-local counters and flushes
/// totals to the registry once per query (MatchForward and the S-tree /
/// Algorithm A engines; see obs/metrics.h). Per-call *timing* of rank is
/// never done either; the bench harness estimates the rank phase by
/// calibration (docs/OBSERVABILITY.md).
class OccTable {
 public:
  static constexpr uint32_t kDefaultCheckpointRate = 64;

  OccTable() = default;

  /// Builds checkpoints for `bwt`. `checkpoint_rate` must be a positive
  /// multiple of 32 (so checkpoints align with packed words).
  static Result<OccTable> Build(const Bwt* bwt, uint32_t checkpoint_rate =
                                                    kDefaultCheckpointRate);

  /// Number of occurrences of `c` in L[0..pos). The sentinel row never
  /// counts toward any symbol. O(rate/32) word operations.
  uint32_t Rank(DnaCode c, size_t pos) const;

  /// Ranks of all four symbols at once — one pass over the checkpoint gap
  /// instead of four (this is why the paper's rankall stores all four
  /// counters per checkpoint). `out[c]` = Rank(c, pos).
  void RankAll(size_t pos, uint32_t out[kDnaAlphabetSize]) const;

  /// Occurrences of `c` in the whole BWT.
  uint32_t Total(DnaCode c) const { return totals_[c]; }

  uint32_t checkpoint_rate() const { return rate_; }
  size_t size() const { return bwt_ == nullptr ? 0 : bwt_->codes.size(); }

  /// Heap bytes used by the checkpoint directory (excludes the BWT itself).
  size_t MemoryUsage() const {
    return checkpoints_.capacity() * sizeof(uint32_t);
  }

 private:
  const Bwt* bwt_ = nullptr;  // not owned
  uint32_t rate_ = kDefaultCheckpointRate;
  // checkpoints_[4 * block + c] = count of symbol c in L[0 .. block*rate),
  // counting the sentinel row's placeholder slot (corrected at query time).
  std::vector<uint32_t> checkpoints_;
  std::array<uint32_t, kDnaAlphabetSize> totals_{};
};

}  // namespace bwtk

#endif  // BWTK_BWT_OCC_TABLE_H_
