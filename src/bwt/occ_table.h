// The "rankall" structure of Section III.A (Fig. 2): for each DNA symbol x,
// A_x[i] = number of occurrences of x in L[0..i). The paper stores one
// rankall value per symbol for every 4 BWT elements; we generalize the
// checkpoint rate (one checkpoint block per `rate` rows, rate a multiple of
// 32) and fill the gap with word-level popcounts over the 2-bit packed BWT.
// The rate is the space/time knob exercised by bench_ablation_rankall.
//
// The gap scan of RankAll is served by one of three kernels, chosen once at
// Build time (see RankKernel): the original per-symbol scalar loop, a
// word-parallel kernel that classifies all four symbols of a word with three
// popcounts, and an AVX2 kernel that counts all four symbols in parallel
// SIMD lanes. bench_rank_kernel measures them against each other.

#ifndef BWTK_BWT_OCC_TABLE_H_
#define BWTK_BWT_OCC_TABLE_H_

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "alphabet/dna.h"
#include "alphabet/packed_sequence.h"
#include "bwt/bwt.h"
#include "util/status.h"

namespace bwtk {

/// Occurrence (rank) table over a BWT array.
///
/// Thread safety: immutable after Build(). Rank/RankAll/Total read only the
/// checkpoint directory and the (also immutable) BWT it points at, so
/// concurrent queries from any number of threads need no locking — the
/// const-method guarantee FmIndex extends to the whole query path.
///
/// Paper mapping: Rank(c, i) is the rankall value A_c[i] of Section III.A,
/// and one search() step of the paper (Definition 1) costs two Rank calls —
/// that per-step rank work is the unit its cost model charges, and what the
/// `extend_calls` counter of SearchStats and the `rank_calls` /
/// `rankall_calls` observability counters measure.
///
/// Observability: rank invocations are never counted here, nor per call at
/// the FmIndex layer — a Rank is ~30-50 ns, so even one thread-local
/// increment per backward-search step costs a measurable few percent. The
/// query path instead tallies steps in engine-local counters and flushes
/// totals to the registry once per query (MatchForward and the S-tree /
/// Algorithm A engines; see obs/metrics.h). Per-call *timing* of rank is
/// never done either; the bench harness estimates the rank phase by
/// calibration (docs/OBSERVABILITY.md).
class OccTable {
 public:
  static constexpr uint32_t kDefaultCheckpointRate = 64;

  /// Implementation of the checkpoint-gap scan.
  enum class RankKernel : uint8_t {
    /// Resolve at Build time: kAvx2 when compiled in and the CPU supports
    /// it, kWord64 otherwise. This is the default everywhere.
    kAuto,
    /// One Count2BitSymbols (XOR + popcount) pass per symbol per word — the
    /// original implementation, kept as the bench baseline.
    kScalar,
    /// Portable word-parallel kernel: three popcounts classify all four
    /// symbols of a 32-slot word at once (symbol 0 derived by subtraction).
    kWord64,
    /// AVX2: the four symbols are counted in parallel 64-bit SIMD lanes
    /// (broadcast word, per-lane XOR pattern, pshufb-LUT popcount).
    /// Requires a build without BWTK_DISABLE_AVX2 and a host with AVX2;
    /// Build() fails with InvalidArgument otherwise.
    kAvx2,
  };

  /// True when the AVX2 kernel is compiled in and this CPU supports it.
  static bool Avx2Available();

  /// Stable lowercase kernel name ("auto"/"scalar"/"word64"/"avx2") — the
  /// self-description recorded in bench JSONs and SearchReport.
  static std::string_view KernelName(RankKernel kernel);

  OccTable() = default;

  /// Builds checkpoints for `bwt`. `checkpoint_rate` must be a positive
  /// multiple of 32 (so checkpoints align with packed words). `kernel`
  /// selects the gap-scan implementation; kAuto picks the fastest
  /// available one.
  static Result<OccTable> Build(const Bwt* bwt,
                                uint32_t checkpoint_rate =
                                    kDefaultCheckpointRate,
                                RankKernel kernel = RankKernel::kAuto);

  /// Number of occurrences of `c` in L[0..pos). The sentinel row never
  /// counts toward any symbol. O(rate/32) word operations. Single-symbol
  /// rank is one popcount per word under every kernel — the kernels
  /// differentiate the 4-symbol gap scan of RankAll.
  uint32_t Rank(DnaCode c, size_t pos) const {
    uint32_t count = RawRank(c, pos);
    if (c == 0 && bwt_->sentinel_row < pos) --count;
    return count;
  }

  /// Fused Rank(c, lo) + Rank(c, hi) for lo <= hi — one backward-search
  /// step's worth of rank work (FmIndex::Extend). When both positions land
  /// in the same checkpoint block (the common case once a descent has
  /// narrowed its range) the checkpoint load and the scan up to `lo` are
  /// shared and only the [lo, hi) gap is scanned twice-free; otherwise the
  /// two scans are independent but hi's cache lines are prefetched first.
  void RankPair(DnaCode c, size_t lo, size_t hi, uint32_t* rank_lo,
                uint32_t* rank_hi) const;

  /// Ranks of all four symbols at once — one pass over the checkpoint gap
  /// instead of four (this is why the paper's rankall stores all four
  /// counters per checkpoint). `out[c]` = Rank(c, pos).
  void RankAll(size_t pos, uint32_t out[kDnaAlphabetSize]) const;

  /// Hints the cache that a Rank/RankAll at `pos` is imminent: prefetches
  /// the checkpoint entry and the first gap word. Used by FmIndex::ExtendAll
  /// to overlap the second RankAll's loads with the first's scan.
  void Prefetch(size_t pos) const {
    const size_t block = pos / rate_;
    __builtin_prefetch(checkpoints_.data() + block * kDnaAlphabetSize);
    const std::vector<uint64_t>& words = bwt_->codes.words();
    const size_t word = (block * static_cast<size_t>(rate_)) >> 5;
    if (word < words.size()) __builtin_prefetch(words.data() + word);
  }

  /// Occurrences of `c` in the whole BWT.
  uint32_t Total(DnaCode c) const { return totals_[c]; }

  uint32_t checkpoint_rate() const { return rate_; }
  /// The kernel resolved at Build time (never kAuto on a built table).
  RankKernel kernel() const { return kernel_; }
  std::string_view kernel_name() const { return KernelName(kernel_); }
  size_t size() const { return bwt_ == nullptr ? 0 : bwt_->codes.size(); }

  /// Heap bytes used by the checkpoint directory (excludes the BWT itself).
  size_t MemoryUsage() const {
    return checkpoints_.capacity() * sizeof(uint32_t);
  }

 private:
  /// Rank without the sentinel correction (the placeholder 'a' in the
  /// sentinel row's packed slot still counts).
  uint32_t RawRank(DnaCode c, size_t pos) const;

  /// Raw occurrences of `c` in L[lo, hi) by direct word scan (no
  /// checkpoint), for the same-block fast path of RankPair.
  uint32_t RawCountInRange(DnaCode c, size_t lo, size_t hi) const;

  const Bwt* bwt_ = nullptr;  // not owned
  uint32_t rate_ = kDefaultCheckpointRate;
  RankKernel kernel_ = RankKernel::kScalar;
  // checkpoints_[4 * block + c] = count of symbol c in L[0 .. block*rate),
  // counting the sentinel row's placeholder slot (corrected at query time).
  std::vector<uint32_t> checkpoints_;
  std::array<uint32_t, kDnaAlphabetSize> totals_{};
};

}  // namespace bwtk

#endif  // BWTK_BWT_OCC_TABLE_H_
