// Precomputed FM-ranges for every DNA q-gram — the "ftab" of production
// FM-indexes (BWA/Bowtie), adapted to the paper's search() primitive.
//
// One backward-search descent of Definition 1 costs two rank operations per
// character. But the result of the first q steps depends only on the q
// characters consumed, and over the 4-letter DNA alphabet there are only 4^q
// such prefixes — few enough to precompute. The table stores, for every
// length-q string w, the pair <w, [α, β)> that q search() steps from the
// root would produce, so a descent whose first q characters are known in
// advance replaces q Extend calls (2q rank operations) with one load.
//
// Correctness is by construction: entries are produced by running the real
// search() steps over the same index at build time (a breadth-first interval
// expansion that prunes empty ranges), so a table hit is byte-identical to
// stepping. Consumers (stree_search, algorithm_a, kerror_search,
// FmIndex::MatchForward, ComputeTau) only take the shortcut when the first q
// characters of the descent are fully determined; see each call site for the
// engine-specific argument.
//
// Space: 8 bytes per entry, 4^q entries — 8 MB at q = 10, 128 MB at the
// default q = 12 used by the bench grid. The q knob lives in
// FmIndex::Options::prefix_table_q (0 = no table).

#ifndef BWTK_BWT_PREFIX_TABLE_H_
#define BWTK_BWT_PREFIX_TABLE_H_

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "alphabet/dna.h"
#include "bwt/occ_table.h"
#include "suffix/suffix_array.h"
#include "util/status.h"

namespace bwtk {

/// FM-range for every DNA q-gram. Immutable after Build()/FromParts(); safe
/// for concurrent readers (the same contract as OccTable).
class PrefixIntervalTable {
 public:
  /// Hard ceiling on q: 4^13 entries is 512 MB, already past any sensible
  /// space/time trade-off for this codebase's genome sizes.
  static constexpr uint32_t kMaxQ = 13;

  /// Largest mismatch budget for which the k-mismatch engines seed their
  /// enumeration from the table (see ForEachVariant). The number of length-q
  /// variants within Hamming distance j of a fixed q-gram is
  /// sum_{i<=j} C(q,i)·3^i — 703 at q = 12, j = 2, but 2.7 M at j = 5. Past
  /// j = 2 the lookups (each a potential DRAM miss into a 4^q-entry array)
  /// cost more than the cache-resident tree walk they replace.
  static constexpr int32_t kMaxSeedMismatches = 2;

  /// Number of table entries for a given q.
  static constexpr uint64_t KeyCount(uint32_t q) { return uint64_t{1} << (2 * q); }

  PrefixIntervalTable() = default;

  /// Builds the table by breadth-first interval expansion over the index
  /// (O(q·n) rank work, parallelized across the 4 top-level subtrees, which
  /// own disjoint key blocks). `first_row` is FmIndex's C array (5 entries);
  /// `occ` supplies the rank structure. Requires 1 <= q <= kMaxQ.
  static Result<PrefixIntervalTable> Build(const OccTable& occ,
                                           const SaIndex* first_row,
                                           uint32_t q);

  /// Reassembles a table from serialized parts, validating geometry
  /// (used by the FM-index loader; see bwt/serialize.cc).
  static Result<PrefixIntervalTable> FromParts(uint32_t q,
                                               std::vector<uint64_t> entries);

  uint32_t q() const { return q_; }
  size_t size() const { return entries_.size(); }

  /// Packs a q-gram into its table key. Big-endian: the FIRST character
  /// lands in the most significant 2 bits, so the 4^(q-d) extensions of any
  /// length-d prefix occupy one contiguous key block — the property the
  /// parallel subtree build and the rolling-window key update rely on.
  static uint64_t PackKey(const DnaCode* gram, uint32_t q) {
    uint64_t key = 0;
    for (uint32_t i = 0; i < q; ++i) key = (key << 2) | gram[i];
    return key;
  }

  /// The FM-range q search() steps from the root would produce for the
  /// q-gram `key`. Returns false (and an empty range) when the q-gram does
  /// not occur in the text. One array load.
  bool Lookup(uint64_t key, SaIndex* lo, SaIndex* hi) const {
    const uint64_t entry = entries_[key];
    *lo = static_cast<SaIndex>(entry >> 32);
    *hi = static_cast<SaIndex>(static_cast<uint32_t>(entry));
    return *lo < *hi;
  }

  /// Hints the cache that `key`'s entry is about to be loaded. Lookups are
  /// single loads into a table far larger than cache, so callers that know
  /// their next key (e.g. ComputeTau's rolling window) hide the DRAM
  /// latency behind their current work.
  void Prefetch(uint64_t key) const {
    __builtin_prefetch(entries_.data() + key);
  }

  /// One length-q string within Hamming distance kMaxSeedMismatches of the
  /// enumerated q-gram: its table key plus the substitutions that produced
  /// it (pattern position, substituted symbol), in position order.
  struct Variant {
    uint64_t key = 0;
    int32_t mismatches = 0;
    std::array<std::pair<uint16_t, DnaCode>, kMaxSeedMismatches> subs{};
  };

  /// Invokes `fn(const Variant&)` for every length-q string within Hamming
  /// distance `budget` of gram[0..q) — the complete set of depth-q S-tree
  /// states a k-mismatch enumeration (k = budget) can reach. Seeding a
  /// search from the non-empty variants is therefore result-identical to
  /// enumerating the first q levels with search() steps. Requires
  /// 0 <= budget <= kMaxSeedMismatches.
  template <typename Fn>
  void ForEachVariant(const DnaCode* gram, int32_t budget, Fn&& fn) const {
    Variant v;
    EnumerateVariants(gram, budget, 0, 0, &v, fn);
  }

  /// Heap bytes held by the table.
  size_t MemoryUsage() const { return entries_.capacity() * sizeof(uint64_t); }

  /// Serialized payload: entry i is (lo << 32) | hi for q-gram key i.
  const std::vector<uint64_t>& entries() const { return entries_; }

 private:
  static uint64_t PackEntry(SaIndex lo, SaIndex hi) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(lo)) << 32) |
           static_cast<uint32_t>(hi);
  }

  template <typename Fn>
  void EnumerateVariants(const DnaCode* gram, int32_t budget, uint32_t pos,
                         uint64_t key, Variant* v, Fn& fn) const {
    if (pos == q_) {
      v->key = key;
      fn(static_cast<const Variant&>(*v));
      return;
    }
    EnumerateVariants(gram, budget, pos + 1,
                      (key << 2) | gram[pos], v, fn);
    if (budget == 0) return;
    for (DnaCode c = 0; c < kDnaAlphabetSize; ++c) {
      if (c == gram[pos]) continue;
      v->subs[v->mismatches] = {static_cast<uint16_t>(pos), c};
      ++v->mismatches;
      EnumerateVariants(gram, budget - 1, pos + 1, (key << 2) | c, v, fn);
      --v->mismatches;
    }
  }

  uint32_t q_ = 0;
  std::vector<uint64_t> entries_;  // 4^q packed {lo, hi} pairs, key-indexed
};

}  // namespace bwtk

#endif  // BWTK_BWT_PREFIX_TABLE_H_
