// Word-level bit manipulation shared by the packed-sequence and rank
// structures.

#ifndef BWTK_UTIL_BIT_UTILS_H_
#define BWTK_UTIL_BIT_UTILS_H_

#include <bit>
#include <cstdint>

namespace bwtk {

/// Number of set bits in `x`.
inline int Popcount64(uint64_t x) { return std::popcount(x); }

/// Rounds `x` up to the next multiple of `multiple` (a power of two).
inline uint64_t RoundUpPow2(uint64_t x, uint64_t multiple) {
  return (x + multiple - 1) & ~(multiple - 1);
}

/// Ceiling division for unsigned values.
inline uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// Counts occurrences of the 2-bit symbol `code` among the first
/// `prefix_len` (<= 32) 2-bit slots of `word`. Slot i occupies bits
/// [2i, 2i+1], slot 0 in the least significant bits.
///
/// This is the inner loop of the BWT rankall structure: we XOR the word with
/// a mask that turns the target code into 00 in every slot, then detect
/// all-zero slots with one popcount.
inline int Count2BitSymbols(uint64_t word, unsigned code,
                            unsigned prefix_len) {
  if (prefix_len == 0) return 0;
  // Replicate `code` into all 32 slots.
  const uint64_t pattern = code * 0x5555555555555555ULL;
  uint64_t diff = word ^ pattern;  // slot == 00 iff symbol matched
  // A slot matches iff both its bits are zero in `diff`.
  uint64_t match = ~(diff | (diff >> 1)) & 0x5555555555555555ULL;
  if (prefix_len < 32) {
    match &= (uint64_t{1} << (2 * prefix_len)) - 1;
  }
  return Popcount64(match);
}

}  // namespace bwtk

#endif  // BWTK_UTIL_BIT_UTILS_H_
