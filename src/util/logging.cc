#include "util/logging.h"

#include <cstdio>

namespace bwtk {

namespace {

LogLevel g_log_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (fatal_ || level_ >= g_log_level) {
    std::fputs(stream_.str().c_str(), stderr);
    std::fputc('\n', stderr);
  }
  if (fatal_) std::abort();
}

}  // namespace internal_logging

}  // namespace bwtk
