// Wall-clock timing for the benchmark harness and examples.

#ifndef BWTK_UTIL_STOPWATCH_H_
#define BWTK_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace bwtk {

/// Measures elapsed wall time from construction or the last Restart().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bwtk

#endif  // BWTK_UTIL_STOPWATCH_H_
