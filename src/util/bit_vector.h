// Succinct bit vector with O(1) rank support. Used by the FM-index to mark
// suffix-array sample rows.

#ifndef BWTK_UTIL_BIT_VECTOR_H_
#define BWTK_UTIL_BIT_VECTOR_H_

#include <cstdint>
#include <vector>

#include "util/bit_utils.h"
#include "util/logging.h"

namespace bwtk {

/// Fixed-size bit vector; call FinalizeRank() after the last Set() to enable
/// Rank1() queries.
class BitVectorRank {
 public:
  BitVectorRank() = default;

  explicit BitVectorRank(size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  size_t size() const { return size_; }

  void Set(size_t pos) {
    BWTK_DCHECK_LT(pos, size_);
    words_[pos >> 6] |= uint64_t{1} << (pos & 63);
    finalized_ = false;
  }

  bool Get(size_t pos) const {
    BWTK_DCHECK_LT(pos, size_);
    return (words_[pos >> 6] >> (pos & 63)) & 1;
  }

  /// Builds the per-word cumulative popcount directory.
  void FinalizeRank() {
    rank_blocks_.resize(words_.size() + 1);
    uint64_t total = 0;
    for (size_t w = 0; w < words_.size(); ++w) {
      rank_blocks_[w] = total;
      total += Popcount64(words_[w]);
    }
    rank_blocks_[words_.size()] = total;
    finalized_ = true;
  }

  /// Number of set bits in [0, pos). Requires FinalizeRank() after mutation.
  uint64_t Rank1(size_t pos) const {
    BWTK_DCHECK(finalized_);
    BWTK_DCHECK_LE(pos, size_);
    const size_t w = pos >> 6;
    uint64_t count = rank_blocks_[w];
    const unsigned rem = pos & 63;
    if (rem != 0) {
      count += Popcount64(words_[w] & ((uint64_t{1} << rem) - 1));
    }
    return count;
  }

  uint64_t OneCount() const {
    BWTK_DCHECK(finalized_);
    return rank_blocks_.back();
  }

  const std::vector<uint64_t>& words() const { return words_; }
  std::vector<uint64_t>* mutable_words() { return &words_; }
  void set_size(size_t size) { size_ = size; }

  size_t MemoryUsage() const {
    return (words_.capacity() + rank_blocks_.capacity()) * sizeof(uint64_t);
  }

 private:
  size_t size_ = 0;
  bool finalized_ = false;
  std::vector<uint64_t> words_;
  std::vector<uint64_t> rank_blocks_;
};

}  // namespace bwtk

#endif  // BWTK_UTIL_BIT_VECTOR_H_
