#include "util/status.h"

namespace bwtk {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kTimedOut:
      return "TimedOut";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace bwtk
