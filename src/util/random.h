// Deterministic pseudo-random number generation for simulators, tests and
// benchmarks. A fixed, seedable generator keeps workloads reproducible
// across runs and machines (std::mt19937 distributions are not guaranteed
// to be portable across standard library implementations, so distribution
// logic lives here too).

#ifndef BWTK_UTIL_RANDOM_H_
#define BWTK_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bwtk {

/// xoshiro256** generator: small state, excellent statistical quality,
/// identical streams on every platform for a given seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). `bound` must be > 0. Uses rejection sampling so
  /// the result is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool NextBool(double p);

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Requires a non-empty vector with a positive sum.
  size_t NextWeighted(const std::vector<double>& weights);

 private:
  uint64_t state_[4];
};

}  // namespace bwtk

#endif  // BWTK_UTIL_RANDOM_H_
