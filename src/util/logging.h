// Minimal leveled logging and checked assertions for bwtk.
//
// BWTK_CHECK* macros are always on (they guard index invariants whose
// violation would silently corrupt search results); BWTK_DCHECK* compile out
// in NDEBUG builds.

#ifndef BWTK_UTIL_LOGGING_H_
#define BWTK_UTIL_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace bwtk {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

namespace internal_logging {

/// Accumulates a message and emits it (to stderr) on destruction.
/// `fatal` messages abort the process after emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Messages below `level` are suppressed. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

#define BWTK_LOG(level)                                                  \
  ::bwtk::internal_logging::LogMessage(::bwtk::LogLevel::k##level,       \
                                       __FILE__, __LINE__)               \
      .stream()

#define BWTK_CHECK(cond)                                                   \
  if (!(cond))                                                             \
  ::bwtk::internal_logging::LogMessage(::bwtk::LogLevel::kError, __FILE__, \
                                       __LINE__, /*fatal=*/true)           \
          .stream()                                                        \
      << "Check failed: " #cond " "

#define BWTK_CHECK_EQ(a, b) BWTK_CHECK((a) == (b))
#define BWTK_CHECK_NE(a, b) BWTK_CHECK((a) != (b))
#define BWTK_CHECK_LT(a, b) BWTK_CHECK((a) < (b))
#define BWTK_CHECK_LE(a, b) BWTK_CHECK((a) <= (b))
#define BWTK_CHECK_GT(a, b) BWTK_CHECK((a) > (b))
#define BWTK_CHECK_GE(a, b) BWTK_CHECK((a) >= (b))

#ifdef NDEBUG
#define BWTK_DCHECK(cond) \
  while (false) BWTK_CHECK(cond)
#else
#define BWTK_DCHECK(cond) BWTK_CHECK(cond)
#endif

#define BWTK_DCHECK_EQ(a, b) BWTK_DCHECK((a) == (b))
#define BWTK_DCHECK_NE(a, b) BWTK_DCHECK((a) != (b))
#define BWTK_DCHECK_LT(a, b) BWTK_DCHECK((a) < (b))
#define BWTK_DCHECK_LE(a, b) BWTK_DCHECK((a) <= (b))
#define BWTK_DCHECK_GT(a, b) BWTK_DCHECK((a) > (b))
#define BWTK_DCHECK_GE(a, b) BWTK_DCHECK((a) >= (b))

}  // namespace bwtk

#endif  // BWTK_UTIL_LOGGING_H_
