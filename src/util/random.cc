#include "util/random.h"

#include "util/logging.h"

namespace bwtk {

namespace {

inline uint64_t Rotl(uint64_t x, int s) { return (x << s) | (x >> (64 - s)); }

// splitmix64, used only to expand the seed into the full generator state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  BWTK_CHECK_GT(bound, 0u);
  // Rejection sampling over the largest multiple of `bound` below 2^64.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t x = Next();
    if (x >= threshold) return x % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  BWTK_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  BWTK_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  BWTK_CHECK_GT(total, 0.0);
  double x = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace bwtk
