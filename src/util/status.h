// Error handling for bwtk: a lightweight Status / Result<T> pair in the
// style used by database engines (Arrow, RocksDB, LevelDB). The library does
// not throw exceptions; every fallible operation returns a Status or a
// Result<T>, and callers are expected to check before use.

#ifndef BWTK_UTIL_STATUS_H_
#define BWTK_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace bwtk {

/// Machine-readable failure category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kCorruption,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  /// The target exists but is not accepting work right now (e.g. a serving
  /// Session that has started draining). Retrying against a live target may
  /// succeed; this request was refused before any work ran.
  kUnavailable,
  /// Admission control refused the request because a bounded resource
  /// (submit queue, per-client in-flight budget) is full. The canonical
  /// serving-layer rejection: explicit, immediate, and retryable after
  /// backoff. See docs/SERVING.md.
  kOverloaded,
  /// A wait deadline elapsed before the operation completed. The operation
  /// itself may still finish; only this wait gave up.
  kTimedOut,
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument",
/// ...).
const char* StatusCodeToString(StatusCode code);

/// The outcome of a fallible operation: either OK, or a code plus message.
///
/// Statuses are cheap to copy when OK (no allocation) and must be consumed:
/// call ok() before relying on any result the operation produced.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>"; intended for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or an error. Result<T> is the return type of fallible functions
/// that produce a value; access to the value requires ok().
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return some_t;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status: `return Status::IoError(...);`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result from Status requires a failure status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// The contained value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status to the caller. Usage:
//   BWTK_RETURN_IF_ERROR(DoThing());
#define BWTK_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::bwtk::Status bwtk_status__ = (expr);    \
    if (!bwtk_status__.ok()) return bwtk_status__; \
  } while (false)

// Unwraps a Result into `lhs`, propagating errors. Usage:
//   BWTK_ASSIGN_OR_RETURN(auto index, FmIndex::Build(text));
#define BWTK_ASSIGN_OR_RETURN(lhs, expr)                       \
  BWTK_ASSIGN_OR_RETURN_IMPL_(                                 \
      BWTK_STATUS_CONCAT_(bwtk_result__, __LINE__), lhs, expr)

#define BWTK_STATUS_CONCAT_INNER_(a, b) a##b
#define BWTK_STATUS_CONCAT_(a, b) BWTK_STATUS_CONCAT_INNER_(a, b)
#define BWTK_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                                \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).value()

}  // namespace bwtk

#endif  // BWTK_UTIL_STATUS_H_
