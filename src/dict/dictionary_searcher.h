// Multi-pattern k-mismatch search: the PatternSetTrie walked jointly with
// the FM-index descent, so every shared pattern prefix is searched once.
//
// A single-pattern S-tree walk (search/stree_search.h) explores states
// <range, depth, mismatches>; the joint walk adds the trie node reached by
// the pattern characters consumed so far: <trie node, range, depth,
// mismatches>. One ExtendAll at each state answers for *every* pattern that
// shares the depth-long prefix the state's trie node represents — with N
// patterns of length m drawn from a real barcode set, the distinct trie
// paths number far fewer than N·m, and that difference is the amortization
// BENCH_dictionary.json measures. Restricting the walk to the frames whose
// trie node lies on one pattern's root-to-leaf path replays exactly the
// single-pattern S-tree walk for that pattern, which is why SearchAll is
// byte-identical, per pattern, to running each pattern alone (the proof
// sketch lives in DESIGN.md §2f).
//
// Like the single-pattern engines, the descent is seeded from the index's
// PrefixIntervalTable when the trie is at least q deep: each depth-q trie
// node's q-gram is expanded into its Hamming-ball variants and looked up,
// replacing the first q levels of the joint walk.

#ifndef BWTK_DICT_DICTIONARY_SEARCHER_H_
#define BWTK_DICT_DICTIONARY_SEARCHER_H_

#include <cstdint>
#include <vector>

#include "bwt/fm_index.h"
#include "dict/pattern_set_trie.h"
#include "search/match.h"

namespace bwtk {

struct DictionaryOptions {
  /// Seed the joint descent from the index's q-gram prefix table when one
  /// is attached, the trie is at least q deep, and k is within the table's
  /// seeding budget. Never changes results (the identity the prefix-table
  /// tests already prove per pattern); off forces the stepped walk.
  bool use_prefix_table = true;
};

/// The best assignment SearchBest found for a pattern set against the text:
/// the pattern with the fewest-mismatch occurrence, kaori-style.
struct DictionaryBestHit {
  /// Canonical id of the winning pattern, -1 when nothing matched within k.
  int32_t pattern = -1;
  /// Mismatch count of the winning occurrence (-1 when none).
  int32_t mismatches = -1;
  /// True when two *different* (canonical) patterns tie at the best
  /// mismatch count — the read cannot be assigned. `pattern` then holds the
  /// first of the tied patterns encountered.
  bool ambiguous = false;
  /// Smallest text position among the winner's best-count occurrences.
  size_t position = 0;
};

/// Searches a whole PatternSetTrie against one FmIndex. Stateless apart
/// from the options; safe for concurrent use on a shared index.
class DictionarySearcher {
 public:
  explicit DictionarySearcher(const FmIndex* index,
                              const DictionaryOptions& options = {})
      : index_(index), options_(options) {}

  /// All occurrences of every pattern with at most k mismatches.
  /// result[id] answers trie.pattern(id), position-sorted — byte-identical
  /// to searching each pattern independently. Duplicate patterns (when the
  /// trie allowed them) receive copies of their canonical pattern's hits.
  std::vector<std::vector<Occurrence>> SearchAll(const PatternSetTrie& trie,
                                                 int32_t k,
                                                 SearchStats* stats = nullptr) const;

  /// The kaori assignment walk: the single best-mismatch hit across the
  /// whole set, with the budget capped at the best count found so far (a
  /// strictly shrinking cap prunes far more than SearchAll's fixed k) and
  /// ambiguity detection when two different patterns tie at the best count.
  DictionaryBestHit SearchBest(const PatternSetTrie& trie, int32_t k,
                               SearchStats* stats = nullptr) const;

  const FmIndex& index() const { return *index_; }
  const DictionaryOptions& options() const { return options_; }

 private:
  const FmIndex* index_;
  DictionaryOptions options_;
};

}  // namespace bwtk

#endif  // BWTK_DICT_DICTIONARY_SEARCHER_H_
