// Read demultiplexing on top of DictionarySearcher::SearchBest: assign each
// read to the barcode with the fewest-mismatch occurrence anywhere in the
// read, kaori-style — ties between different barcodes make the read
// ambiguous, no hit within the budget leaves it unassigned.
//
// Each read is indexed (a throw-away FM-index over the read itself) and the
// whole barcode trie is searched against it in one joint descent. Reads are
// short, so the per-read index build is microseconds; the win is on the
// barcode side, where thousands of barcodes cost one walk. examples/
// demux_tool.cpp drives this end to end and docs/DICTIONARY.md walks the
// tutorial.

#ifndef BWTK_DICT_DEMUX_H_
#define BWTK_DICT_DEMUX_H_

#include <cstdint>
#include <vector>

#include "alphabet/dna.h"
#include "dict/pattern_set_trie.h"
#include "util/status.h"

namespace bwtk {

struct DemuxOptions {
  /// Largest barcode mismatch count still considered a match.
  int32_t max_mismatches = 1;
};

/// Where one read ended up.
struct DemuxAssignment {
  enum class Outcome : uint8_t {
    kAssigned,    ///< exactly one best barcode within the budget
    kAmbiguous,   ///< two different barcodes tied at the best count
    kUnassigned,  ///< no barcode occurs within the budget
  };
  Outcome outcome = Outcome::kUnassigned;
  /// Canonical barcode id (valid for kAssigned and kAmbiguous — for the
  /// latter it is the first of the tied barcodes); -1 when unassigned.
  int32_t barcode = -1;
  /// Mismatches of the best hit; -1 when unassigned.
  int32_t mismatches = -1;
  /// Smallest read offset of the winning barcode's best hit.
  size_t position = 0;
};

/// Assigns every read against the barcode trie. result[i] answers reads[i].
/// Fails only on malformed input (a read shorter than the barcode length is
/// not an error — it is simply unassigned).
Result<std::vector<DemuxAssignment>> DemuxReads(
    const PatternSetTrie& barcodes,
    const std::vector<std::vector<DnaCode>>& reads,
    const DemuxOptions& options = {});

}  // namespace bwtk

#endif  // BWTK_DICT_DEMUX_H_
