// A trie over a set of equal-length DNA patterns (barcodes, adapters,
// probes), built once and walked jointly with the FM-index descent by
// DictionarySearcher so that every shared pattern prefix is searched once.
//
// The layout follows kaori's MismatchTrie: one flat int32_t array, four
// child slots per node, root at offset 0. A slot holds -1 when the edge is
// absent; at every depth below the last it holds the byte offset of the
// child node, and at the last depth it holds the id of the pattern that
// ends there (all patterns have the same length, so a slot's meaning is
// determined by its depth alone — there are no interior leaves).
//
// Ambiguity is resolved at build time: duplicate patterns are rejected by
// default (the error names both colliding pattern indices), or — with
// Options::allow_duplicates — deduplicated so that every duplicate maps to
// the first (canonical) pattern with the same sequence via canonical_of().

#ifndef BWTK_DICT_PATTERN_SET_TRIE_H_
#define BWTK_DICT_PATTERN_SET_TRIE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "alphabet/dna.h"
#include "util/status.h"

namespace bwtk {

class PatternSetTrie {
 public:
  /// An empty trie: length 0, no patterns, just the root. The value
  /// Build({}) returns; also the default so the trie can live by value in
  /// batch-dispatch structures.
  PatternSetTrie() : nodes_(kDnaAlphabetSize, -1) {}

  struct Options {
    /// Accept byte-identical duplicate patterns. Each duplicate is mapped
    /// to the first pattern with that sequence (see canonical_of()); the
    /// default rejects duplicates with an error naming both indices, the
    /// behaviour a barcode set wants at configuration time.
    bool allow_duplicates = false;
  };

  /// Builds the trie from 2-bit-coded patterns. All patterns must be
  /// non-empty and share one length; violations (and duplicates, unless
  /// allowed) yield InvalidArgument naming the offending pattern index.
  /// An empty pattern list is valid and produces an empty trie.
  static Result<PatternSetTrie> Build(
      const std::vector<std::vector<DnaCode>>& patterns,
      const Options& options);
  static Result<PatternSetTrie> Build(
      const std::vector<std::vector<DnaCode>>& patterns) {
    return Build(patterns, Options());
  }

  /// ASCII convenience overload: each pattern is validated by EncodeDna, so
  /// ambiguous bases ('N', IUPAC codes, ...) are rejected here with an
  /// error naming the pattern index and the offending character — the trie
  /// stores only the 4-letter alphabet.
  static Result<PatternSetTrie> Build(const std::vector<std::string>& patterns,
                                      const Options& options);
  static Result<PatternSetTrie> Build(
      const std::vector<std::string>& patterns) {
    return Build(patterns, Options());
  }

  /// Shared length of every pattern (0 for the empty set).
  size_t length() const { return length_; }
  /// Number of patterns the trie was built from, duplicates included.
  size_t num_patterns() const { return patterns_.size(); }
  /// Trie nodes allocated (≥ 1: the root always exists).
  size_t node_count() const { return nodes_.size() / kDnaAlphabetSize; }

  /// Offset of the root node.
  int32_t root() const { return 0; }

  /// Child slot of `node` for symbol `c`: -1 when absent; otherwise the
  /// child node offset, or — when `node` sits at depth length()-1 — the
  /// canonical id of the pattern ending through that edge.
  int32_t Child(int32_t node, DnaCode c) const {
    return nodes_[static_cast<size_t>(node) + c];
  }

  /// First pattern index with the same sequence as pattern `id` (== `id`
  /// unless duplicates were allowed and `id` is a duplicate).
  int32_t canonical_of(int32_t id) const {
    return canonical_[static_cast<size_t>(id)];
  }

  /// The id-th pattern as given to Build.
  const std::vector<DnaCode>& pattern(int32_t id) const {
    return patterns_[static_cast<size_t>(id)];
  }

 private:
  size_t length_ = 0;
  /// Flat node pool: node i occupies nodes_[i .. i+3] (offsets, not ids,
  /// so Child() is one load with no multiply).
  std::vector<int32_t> nodes_;
  std::vector<int32_t> canonical_;
  std::vector<std::vector<DnaCode>> patterns_;
};

}  // namespace bwtk

#endif  // BWTK_DICT_PATTERN_SET_TRIE_H_
