#include "dict/pattern_set_trie.h"

#include <string>
#include <utility>

#include "obs/metrics.h"

namespace bwtk {

Result<PatternSetTrie> PatternSetTrie::Build(
    const std::vector<std::vector<DnaCode>>& patterns,
    const Options& options) {
  PatternSetTrie trie;
  // The root always exists, so an empty set still walks (to zero depth).
  trie.nodes_.assign(kDnaAlphabetSize, -1);
  if (patterns.empty()) return trie;

  trie.length_ = patterns[0].size();
  if (trie.length_ == 0) {
    return Status::InvalidArgument("pattern 0 is empty");
  }
  trie.canonical_.reserve(patterns.size());
  trie.patterns_ = patterns;

  for (size_t id = 0; id < patterns.size(); ++id) {
    const std::vector<DnaCode>& pattern = patterns[id];
    if (pattern.size() != trie.length_) {
      return Status::InvalidArgument(
          "pattern " + std::to_string(id) + " has length " +
          std::to_string(pattern.size()) + " but pattern 0 has length " +
          std::to_string(trie.length_) +
          " (a dictionary holds equal-length patterns)");
    }
    for (size_t pos = 0; pos < pattern.size(); ++pos) {
      // Wildcard/sentinel codes have no trie edge; catch them here rather
      // than index out of a node's 4 child slots.
      if (pattern[pos] >= kDnaAlphabetSize) {
        return Status::InvalidArgument(
            "pattern " + std::to_string(id) + " has non-DNA code " +
            std::to_string(static_cast<int>(pattern[pos])) + " at offset " +
            std::to_string(pos));
      }
    }
    int32_t node = trie.root();
    for (size_t depth = 0; depth + 1 < trie.length_; ++depth) {
      const size_t slot = static_cast<size_t>(node) + pattern[depth];
      if (trie.nodes_[slot] < 0) {
        const int32_t child = static_cast<int32_t>(trie.nodes_.size());
        trie.nodes_[slot] = child;
        trie.nodes_.insert(trie.nodes_.end(), kDnaAlphabetSize, -1);
      }
      node = trie.nodes_[slot];
    }
    const size_t leaf_slot =
        static_cast<size_t>(node) + pattern[trie.length_ - 1];
    const int32_t existing = trie.nodes_[leaf_slot];
    if (existing >= 0) {
      if (!options.allow_duplicates) {
        return Status::InvalidArgument(
            "pattern " + std::to_string(id) + " duplicates pattern " +
            std::to_string(existing) +
            " (set Options::allow_duplicates to deduplicate instead)");
      }
      trie.canonical_.push_back(existing);
    } else {
      trie.nodes_[leaf_slot] = static_cast<int32_t>(id);
      trie.canonical_.push_back(static_cast<int32_t>(id));
    }
  }
  BWTK_METRIC_COUNT_N(kCounterDictTrieNodes, trie.node_count());
  return trie;
}

Result<PatternSetTrie> PatternSetTrie::Build(
    const std::vector<std::string>& patterns, const Options& options) {
  std::vector<std::vector<DnaCode>> encoded;
  encoded.reserve(patterns.size());
  for (size_t id = 0; id < patterns.size(); ++id) {
    Result<std::vector<DnaCode>> codes = EncodeDna(patterns[id]);
    if (!codes.ok()) {
      return Status::InvalidArgument("pattern " + std::to_string(id) + ": " +
                                     codes.status().message());
    }
    encoded.push_back(std::move(codes).value());
  }
  return Build(encoded, options);
}

}  // namespace bwtk
