#include "dict/dictionary_searcher.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace bwtk {

namespace {

/// One state of the joint trie ∩ FM-index descent. Compared to the
/// single-pattern S-tree frame this adds the trie node the consumed
/// characters lead to; `node` is a pattern id (not a node offset) exactly
/// when depth == trie.length(), which the walk never stores — completion is
/// handled at push time.
struct Frame {
  int32_t node;
  FmIndex::Range range;
  uint32_t depth;
  int32_t mismatches;
};

/// Invokes fn(value, gram) for every depth-q trie path, where gram[0..q) is
/// the path's character sequence and `value` is the slot content reached —
/// a node offset when q < trie.length(), the pattern id when q == length().
template <typename Fn>
void WalkTrieToDepth(const PatternSetTrie& trie, int32_t node, uint32_t depth,
                     uint32_t q, DnaCode* gram, Fn& fn) {
  if (depth == q) {
    fn(node, static_cast<const DnaCode*>(gram));
    return;
  }
  for (DnaCode c = 0; c < kDnaAlphabetSize; ++c) {
    const int32_t child = trie.Child(node, c);
    if (child < 0) continue;
    gram[depth] = c;
    WalkTrieToDepth(trie, child, depth + 1, q, gram, fn);
  }
}

}  // namespace

std::vector<std::vector<Occurrence>> DictionarySearcher::SearchAll(
    const PatternSetTrie& trie, int32_t k, SearchStats* stats) const {
  BWTK_SCOPED_HIST_TIMER(kHistQueryNanos);
  [[maybe_unused]] obs::Trace* const trace = BWTK_TRACE_ACTIVE();
  SearchStats local_stats;
  std::vector<std::vector<Occurrence>> results(trie.num_patterns());
  const size_t m = trie.length();
  if (trie.num_patterns() == 0 || m == 0 || m > index_->text_size() ||
      k < 0) {
    if (stats != nullptr) *stats = local_stats;
    return results;
  }

  std::vector<Frame> stack;
  uint64_t shared_extends = 0;
  const PrefixIntervalTable* table =
      options_.use_prefix_table ? index_->prefix_table() : nullptr;
  const uint32_t q = table ? table->q() : 0;
  if (q > 0 && m >= q && k <= PrefixIntervalTable::kMaxSeedMismatches) {
    // Seed every depth-q trie path from the table at once: per path this is
    // the single-pattern seeding of stree_search.cc (the variant set of the
    // path's q-gram is exactly the depth-q states a k-mismatch walk of that
    // prefix reaches), so per-pattern byte-identity is preserved.
    BWTK_TRACE_SPAN(trace, "dict_seed");
    uint64_t hits = 0;
    std::vector<DnaCode> gram(q);
    auto seed_path = [&](int32_t value, const DnaCode* path_gram) {
      table->ForEachVariant(
          path_gram, k, [&](const PrefixIntervalTable::Variant& v) {
            SaIndex lo;
            SaIndex hi;
            if (!table->Lookup(v.key, &lo, &hi)) return;
            ++hits;
            ++local_stats.stree_nodes;
            BWTK_TRACE_NODE(trace, q);
            if (q == m) {
              // The trie is exactly q deep: `value` is the pattern id and
              // the variant range is already a completed path.
              ++local_stats.completed_paths;
              for (const size_t pos : index_->Locate({lo, hi}, m)) {
                results[value].push_back({pos, v.mismatches});
              }
            } else {
              stack.push_back({value, {lo, hi}, q, v.mismatches});
            }
          });
    };
    WalkTrieToDepth(trie, trie.root(), 0, q, gram.data(), seed_path);
    BWTK_METRIC_COUNT2(kCounterPrefixTableHits, hits,
                       kCounterPrefixTableSkippedSteps, hits * q);
    BWTK_TRACE_PREFIX_HITS(trace, hits);
  } else {
    stack.push_back({trie.root(), index_->WholeRange(), 0, 0});
  }

  {
    BWTK_SCOPED_TIMER(kPhaseTreeTraversal);
    BWTK_TRACE_SPAN(trace, "tree_traversal");
    FmIndex::Range children[kDnaAlphabetSize];
    while (!stack.empty()) {
      const Frame frame = stack.back();
      stack.pop_back();
      // One rank pass answers for every pattern sharing this prefix — the
      // amortization the engine exists for.
      index_->ExtendAll(frame.range, children);
      local_stats.extend_calls += kDnaAlphabetSize;
      const bool leaf_depth = frame.depth + 1 == m;
      int live_edges = 0;
      for (DnaCode e = 0; e < kDnaAlphabetSize; ++e) {
        const int32_t next_node = trie.Child(frame.node, e);
        if (next_node < 0) continue;
        ++live_edges;
        for (DnaCode c = 0; c < kDnaAlphabetSize; ++c) {
          const FmIndex::Range next = children[c];
          if (next.empty()) continue;
          ++local_stats.stree_nodes;
          BWTK_TRACE_NODE(trace, frame.depth + 1);
          const int32_t mismatches =
              frame.mismatches + (c != e ? 1 : 0);
          if (mismatches > k) {
            ++local_stats.budget_pruned;
            continue;
          }
          if (leaf_depth) {
            ++local_stats.completed_paths;
            for (const size_t pos : index_->Locate(next, m)) {
              results[next_node].push_back({pos, mismatches});
            }
          } else {
            stack.push_back({next_node, next, frame.depth + 1, mismatches});
          }
        }
      }
      if (live_edges >= 2) ++shared_extends;
    }
  }

  uint64_t total_hits = 0;
  for (std::vector<Occurrence>& r : results) {
    NormalizeOccurrences(&r);
    total_hits += r.size();
  }
  for (size_t id = 0; id < results.size(); ++id) {
    const int32_t canonical = trie.canonical_of(static_cast<int32_t>(id));
    if (canonical != static_cast<int32_t>(id)) {
      results[id] = results[canonical];
      total_hits += results[id].size();
    }
  }

  const uint64_t extend_alls = local_stats.extend_calls / kDnaAlphabetSize;
  BWTK_METRIC_COUNT2(kCounterExtendAllCalls, extend_alls,
                     kCounterRankAllCalls, 2 * extend_alls);
  BWTK_METRIC_COUNT2(kCounterDictSearches, 1, kCounterDictPatterns,
                     trie.num_patterns());
  BWTK_METRIC_COUNT_N(kCounterDictSharedExtends, shared_extends);
  BWTK_METRIC_OBSERVE(kHistHitsPerQuery, total_hits);
  if (stats != nullptr) *stats = local_stats;
  return results;
}

DictionaryBestHit DictionarySearcher::SearchBest(const PatternSetTrie& trie,
                                                 int32_t k,
                                                 SearchStats* stats) const {
  BWTK_SCOPED_HIST_TIMER(kHistQueryNanos);
  [[maybe_unused]] obs::Trace* const trace = BWTK_TRACE_ACTIVE();
  SearchStats local_stats;
  DictionaryBestHit best;
  const size_t m = trie.length();
  if (trie.num_patterns() == 0 || m == 0 || m > index_->text_size() ||
      k < 0) {
    if (stats != nullptr) *stats = local_stats;
    return best;
  }

  // The cap shrinks to the best mismatch count found so far (kaori's
  // refinement): a state already worse than the best complete hit can
  // neither win nor tie, so it is pruned. Ties at the cap must still be
  // explored — they are what ambiguity detection observes.
  int32_t cap = k;
  auto complete = [&](int32_t pattern_id, FmIndex::Range range,
                      int32_t mismatches) {
    ++local_stats.completed_paths;
    size_t min_pos = static_cast<size_t>(-1);
    for (const size_t pos : index_->Locate(range, m)) {
      min_pos = std::min(min_pos, pos);
    }
    if (best.pattern < 0 || mismatches < best.mismatches) {
      best = {pattern_id, mismatches, false, min_pos};
      cap = mismatches;
    } else if (mismatches == best.mismatches) {
      if (pattern_id != best.pattern) {
        best.ambiguous = true;
      } else {
        best.position = std::min(best.position, min_pos);
      }
    }
  };

  std::vector<Frame> stack;
  uint64_t shared_extends = 0;
  const PrefixIntervalTable* table =
      options_.use_prefix_table ? index_->prefix_table() : nullptr;
  const uint32_t q = table ? table->q() : 0;
  if (q > 0 && m >= q && k <= PrefixIntervalTable::kMaxSeedMismatches) {
    BWTK_TRACE_SPAN(trace, "dict_seed");
    uint64_t hits = 0;
    std::vector<DnaCode> gram(q);
    auto seed_path = [&](int32_t value, const DnaCode* path_gram) {
      table->ForEachVariant(
          path_gram, k, [&](const PrefixIntervalTable::Variant& v) {
            SaIndex lo;
            SaIndex hi;
            if (!table->Lookup(v.key, &lo, &hi)) return;
            ++hits;
            ++local_stats.stree_nodes;
            BWTK_TRACE_NODE(trace, q);
            if (v.mismatches > cap) {
              ++local_stats.budget_pruned;
              return;
            }
            if (q == m) {
              complete(value, {lo, hi}, v.mismatches);
            } else {
              stack.push_back({value, {lo, hi}, q, v.mismatches});
            }
          });
    };
    WalkTrieToDepth(trie, trie.root(), 0, q, gram.data(), seed_path);
    BWTK_METRIC_COUNT2(kCounterPrefixTableHits, hits,
                       kCounterPrefixTableSkippedSteps, hits * q);
    BWTK_TRACE_PREFIX_HITS(trace, hits);
  } else {
    stack.push_back({trie.root(), index_->WholeRange(), 0, 0});
  }

  {
    BWTK_SCOPED_TIMER(kPhaseTreeTraversal);
    BWTK_TRACE_SPAN(trace, "tree_traversal");
    FmIndex::Range children[kDnaAlphabetSize];
    while (!stack.empty()) {
      const Frame frame = stack.back();
      stack.pop_back();
      if (frame.mismatches > cap) {  // cap may have shrunk since the push
        ++local_stats.budget_pruned;
        continue;
      }
      index_->ExtendAll(frame.range, children);
      local_stats.extend_calls += kDnaAlphabetSize;
      const bool leaf_depth = frame.depth + 1 == m;
      int live_edges = 0;
      for (DnaCode e = 0; e < kDnaAlphabetSize; ++e) {
        const int32_t next_node = trie.Child(frame.node, e);
        if (next_node < 0) continue;
        ++live_edges;
        for (DnaCode c = 0; c < kDnaAlphabetSize; ++c) {
          const FmIndex::Range next = children[c];
          if (next.empty()) continue;
          ++local_stats.stree_nodes;
          BWTK_TRACE_NODE(trace, frame.depth + 1);
          const int32_t mismatches =
              frame.mismatches + (c != e ? 1 : 0);
          if (mismatches > cap) {
            ++local_stats.budget_pruned;
            continue;
          }
          if (leaf_depth) {
            complete(next_node, next, mismatches);
          } else {
            stack.push_back({next_node, next, frame.depth + 1, mismatches});
          }
        }
      }
      if (live_edges >= 2) ++shared_extends;
    }
  }

  const uint64_t extend_alls = local_stats.extend_calls / kDnaAlphabetSize;
  BWTK_METRIC_COUNT2(kCounterExtendAllCalls, extend_alls,
                     kCounterRankAllCalls, 2 * extend_alls);
  BWTK_METRIC_COUNT2(kCounterDictSearches, 1, kCounterDictPatterns,
                     trie.num_patterns());
  BWTK_METRIC_COUNT_N(kCounterDictSharedExtends, shared_extends);
  BWTK_METRIC_OBSERVE(kHistHitsPerQuery, best.pattern >= 0 ? 1 : 0);
  if (stats != nullptr) *stats = local_stats;
  return best;
}

}  // namespace bwtk
